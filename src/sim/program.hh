/**
 * @file
 * Kernel programs and launch descriptors.
 *
 * A Program is a straight vector of Instr plus resource metadata (register
 * count, shared/constant memory bytes).  A KernelLaunch pairs a program with
 * a CUDA-style grid/block geometry — the same (gridDim, blockDim) pairs the
 * paper lists in Table III.
 */

#ifndef TANGO_SIM_PROGRAM_HH
#define TANGO_SIM_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/isa.hh"

namespace tango::sim {

/** CUDA-style 3-component dimension. */
struct Dim3
{
    uint32_t x = 1, y = 1, z = 1;

    uint64_t count() const { return uint64_t(x) * y * z; }
    bool operator==(const Dim3 &o) const = default;
};

/** A compiled kernel program. */
struct Program
{
    std::string name;            ///< kernel name, e.g. "alexnet.conv1_1"
    std::vector<Instr> code;     ///< the instruction stream
    uint32_t numRegs = 0;        ///< architectural registers per thread
    uint32_t numPreds = 0;       ///< predicate registers per thread
    uint32_t smemBytes = 0;      ///< static shared memory per CTA
    uint32_t cmemBytes = 0;      ///< constant-bank bytes referenced

    /** @return maximum number of simultaneously live registers
     *  (linear-scan def/use approximation; always <= numRegs). */
    uint32_t maxLiveRegs() const;

    /** @return full disassembly, one instruction per line. */
    std::string disassemble() const;

    /** Sanity-check operands, targets and register bounds; panics on error. */
    void validate() const;
};

/** One kernel launch: program + geometry + parameter block. */
struct KernelLaunch
{
    std::shared_ptr<const Program> program;
    Dim3 grid;
    Dim3 block;
    /** Kernel parameters (32-bit words; pointers are global addresses). */
    std::vector<uint32_t> params;
    /** Constant-bank contents for this launch (dims, scales, ...). */
    std::vector<uint8_t> constData;

    uint64_t totalThreads() const { return grid.count() * block.count(); }
    uint32_t threadsPerCta() const
    {
        return static_cast<uint32_t>(block.count());
    }
    uint32_t warpsPerCta() const { return (threadsPerCta() + 31) / 32; }
};

} // namespace tango::sim

#endif // TANGO_SIM_PROGRAM_HH
