/**
 * @file
 * Fig 11 reproduction: maximum device memory usage per network, measured
 * on the TX1 configuration (log scale in the paper).
 *
 * Paper shape to hold (Observation 9): GRU/LSTM fit in < 500 KB; every
 * CNN needs at least ~1 MB, with AlexNet and VGGNet in the
 * hundreds-of-MB range (model-size dominated).
 */

#include "bench_util.hh"

#include <cmath>

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : nn::models::allNames()) {
        bench::RunKey key{net};
        key.platform = "TX1";
        key.l1dBytes = sim::maxwellTX1().l1dBytes;
        keys.push_back(key);
    }
    bench::prefetch(keys);

    Table t("Fig 11: max device memory usage (KB, TX1)");
    t.header({"network", "device memory (KB)", "log10(KB)"});
    for (const auto &net : nn::models::allNames()) {
        bench::RunKey key{net};
        key.platform = "TX1";
        key.l1dBytes = sim::maxwellTX1().l1dBytes;
        const rt::NetRun &run = bench::netRun(key);
        const double kb = static_cast<double>(run.deviceBytes) / 1024.0;
        t.row({net, Table::num(kb, 0),
               Table::num(kb > 0 ? std::log10(kb) : 0.0, 2)});
        bench::registerValue("fig11/" + net, "KB", kb);
    }
    t.print(std::cout);
    std::cout << "Observation 9: RNNs < 500 KB (fit on PynQ); CNNs >= "
                 "1 MB and need per-layer partitioning on the FPGA.\n";

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
