/**
 * @file
 * tango-serve end-to-end tests: protocol framing, request/response
 * parsing, and the daemon's production properties — in-flight dedup
 * (two clients submitting the identical cold JobSpec trigger exactly
 * one Engine simulation and both receive stats bit-identical to the
 * committed golden fixture), bounded admission (queue_full rejects),
 * and graceful drain (in-flight requests answered, new ones refused,
 * clean exit).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/json.hh"
#include "metrics/scrape.hh"
#include "runtime/job.hh"
#include "runtime/run_cache.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

#ifndef TANGO_GOLDEN_DIR
#error "TANGO_GOLDEN_DIR must point at tests/golden"
#endif

namespace tango {
namespace {

using rt::JobResult;
using rt::JobSpec;
using rt::NetRun;

// ------------------------------------------------------------------ framing

TEST(ServeProtocol, FrameRoundTrip)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    const std::string payloads[] = {"", "x", std::string(100000, 'j'),
                                    "{\"type\":\"ping\"}"};
    for (const std::string &p : payloads) {
        ASSERT_TRUE(serve::writeFrame(sv[0], p));
        std::string got;
        ASSERT_EQ(serve::readFrame(sv[1], got), serve::FrameStatus::Ok);
        EXPECT_EQ(got, p);
    }

    // Clean close at a frame boundary is Eof, not Error.
    ::close(sv[0]);
    std::string got;
    EXPECT_EQ(serve::readFrame(sv[1], got), serve::FrameStatus::Eof);
    ::close(sv[1]);
}

TEST(ServeProtocol, OversizedFrameRejected)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    // A length prefix past the cap must be refused without allocating.
    const uint8_t hdr[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(sv[0], hdr, 4), 4);
    std::string got;
    EXPECT_EQ(serve::readFrame(sv[1], got), serve::FrameStatus::Error);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServeProtocol, RequestRoundTrip)
{
    JobSpec job;
    job.net = "lstm";
    job.policy = "exact";
    job.functional = true;
    job.seqLen = 16;

    serve::Request req;
    std::string err;
    ASSERT_TRUE(serve::parseRequest(serve::makeRunRequest(7, job), req,
                                    &err))
        << err;
    EXPECT_EQ(req.type, serve::Request::Type::Run);
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.job.toJson(), job.toJson());

    ASSERT_TRUE(serve::parseRequest(serve::makeStatsRequest(), req, &err));
    EXPECT_EQ(req.type, serve::Request::Type::Stats);
    ASSERT_TRUE(
        serve::parseRequest(serve::makeMetricsRequest(), req, &err));
    EXPECT_EQ(req.type, serve::Request::Type::Metrics);
    ASSERT_TRUE(serve::parseRequest(serve::makePingRequest(), req, &err));
    EXPECT_EQ(req.type, serve::Request::Type::Ping);
    ASSERT_TRUE(
        serve::parseRequest(serve::makeShutdownRequest(), req, &err));
    EXPECT_EQ(req.type, serve::Request::Type::Shutdown);

    EXPECT_FALSE(serve::parseRequest("{\"type\":\"dance\"}", req, &err));
    EXPECT_FALSE(serve::parseRequest("{\"type\":\"run\",\"id\":1}", req,
                                     &err))
        << "run without a job object must be rejected";
}

TEST(ServeProtocol, ResultResponseRoundTrip)
{
    JobResult res;
    res.ok = false;
    res.error = "queue_full";
    res.served = "reject";
    res.latencyMs = 0.25;

    uint64_t id = 0;
    JobResult back;
    std::string err;
    ASSERT_TRUE(serve::parseResultResponse(
        serve::makeResultResponse(42, res), id, back, &err))
        << err;
    EXPECT_EQ(id, 42u);
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, "queue_full");
    EXPECT_EQ(back.served, "reject");
}

// ----------------------------------------------------------------- harness

/** A started server on an ephemeral port plus a connect helper. */
struct TestServer
{
    explicit TestServer(serve::ServerOptions opt = {})
        : server(std::move(opt))
    {
        std::string err;
        if (!server.start(&err))
            ADD_FAILURE() << "server start failed: " << err;
    }

    serve::Client connect()
    {
        serve::Client c;
        std::string err;
        if (!c.connect("127.0.0.1", server.port(), &err))
            ADD_FAILURE() << "connect failed: " << err;
        return c;
    }

    serve::Server server;
};

JobSpec
gruExactJob()
{
    // Matches tests/golden/gru.json: full (unreduced) GRU, default
    // seqLen, policy "exact" with functional outputs, on the default
    // GP102 configuration.
    JobSpec job;
    job.net = "gru";
    job.policy = "exact";
    job.functional = true;
    return job;
}

std::string
goldenFixture(const std::string &name)
{
    std::ifstream in(std::string(TANGO_GOLDEN_DIR) + "/" + name + ".json",
                     std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden fixture " << name;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Serialize with the launch-memoization meta-counters pinned: they
 *  record how launches were *served*, not what was simulated, and are
 *  the one legitimate run-to-run difference (see test_golden_stats). */
std::string
canonicalRun(NetRun run)
{
    run.totals.set("mem.replayed_launches", 0.0);
    run.totals.set("mem.simulated_launches", 0.0);
    return rt::serializeNetRun(run);
}

/** Accounting invariant: every run request is resolved exactly once —
 *  rejected (draining / queue-full), refused as an invalid spec, or
 *  served from one of the four sources.  @p invalidSpecs is the number
 *  of run requests with a bad JobSpec (Metrics::invalid also counts
 *  malformed frames, which never reach runRequests, so the caller says
 *  how many of the invalids were run requests).  failures happen to
 *  already-served requests, so they bound rather than add. */
void
expectRunsAccounted(const serve::Server::Metrics &m,
                    uint64_t invalidSpecs = 0)
{
    EXPECT_EQ(m.runRequests, m.rejectedDraining + m.rejectedQueueFull +
                                 invalidSpecs + m.servedSim +
                                 m.servedJoin + m.servedMem + m.servedDisk)
        << "run=" << m.runRequests << " drain=" << m.rejectedDraining
        << " full=" << m.rejectedQueueFull << " invalid=" << invalidSpecs
        << " sim=" << m.servedSim << " join=" << m.servedJoin
        << " mem=" << m.servedMem << " disk=" << m.servedDisk;
    EXPECT_LE(m.failures,
              m.servedSim + m.servedJoin + m.servedMem + m.servedDisk);
}

// ------------------------------------------------------------------- serving

TEST(Serve, PingStatsAndInvalidSpec)
{
    TestServer ts;
    serve::Client client = ts.connect();

    std::string err;
    EXPECT_TRUE(client.ping(&err)) << err;

    std::string stats;
    ASSERT_TRUE(client.stats(stats, &err)) << err;
    const json::Reader::Value v = json::Reader(stats).parse();
    EXPECT_EQ(v.strOr("type"), "stats");
    EXPECT_EQ(v.u64Or("run_requests", 999), 0u);

    JobSpec bad;
    bad.net = "transformer";
    JobResult res;
    ASSERT_TRUE(client.run(bad, res, &err)) << err;
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("unknown network"), std::string::npos);

    JobSpec traced = gruExactJob();
    traced.trace = true;
    ASSERT_TRUE(client.run(traced, res, &err)) << err;
    EXPECT_FALSE(res.ok) << "traced jobs must be refused";

    // Both run requests were refused as invalid specs; nothing served.
    expectRunsAccounted(ts.server.metrics(), 2);
}

TEST(Serve, ConcurrentIdenticalColdJobsSimulateOnceBitIdenticalToGolden)
{
    serve::ServerOptions opt;
    // Hold every simulation briefly so the second client's request
    // arrives while the first is still in flight — the dedup window.
    opt.runner = [](sim::Gpu &gpu, const JobSpec &spec) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        return rt::runJob(gpu, spec);
    };
    TestServer ts(opt);

    const JobSpec job = gruExactJob();
    auto submit = [&]() -> JobResult {
        serve::Client client = ts.connect();
        JobResult res;
        std::string err;
        EXPECT_TRUE(client.run(job, res, &err)) << err;
        return res;
    };
    auto fa = std::async(std::launch::async, submit);
    auto fb = std::async(std::launch::async, submit);
    const JobResult a = fa.get();
    const JobResult b = fb.get();

    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;

    // Exactly one simulation: the Engine's miss counter is the number
    // of jobs actually simulated.
    const rt::Engine::CacheStats cache = ts.server.engine().cacheStats();
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_EQ(cache.failures, 0u);

    // One request simulated; the other joined it (or, if it lost the
    // race entirely, was served the resident result).
    const serve::Server::Metrics m = ts.server.metrics();
    EXPECT_EQ(m.servedSim, 1u);
    EXPECT_EQ(m.servedJoin + m.servedMem, 1u);

    // Both clients got stats bit-identical to the committed fixture.
    NetRun golden;
    ASSERT_TRUE(rt::parseNetRunJson(goldenFixture("gru"), golden));
    const std::string want = canonicalRun(golden);
    EXPECT_EQ(canonicalRun(a.run), want);
    EXPECT_EQ(canonicalRun(b.run), want);

    // A repeat of the same job is now a warm memory hit.
    const JobResult warm = submit();
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.served, "mem");
    EXPECT_EQ(canonicalRun(warm.run), want);
    EXPECT_EQ(ts.server.engine().cacheStats().misses, 1u);
    expectRunsAccounted(ts.server.metrics());
}

TEST(Serve, QueueFullRejectsNewSimulationsButAdmitsJoins)
{
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();

    serve::ServerOptions opt;
    opt.queueMax = 1;
    opt.runner = [gate](sim::Gpu &gpu, const JobSpec &spec) {
        gate.wait();
        return rt::runJob(gpu, spec);
    };
    TestServer ts(opt);

    JobSpec small = gruExactJob();   // cheap exact model

    // First job occupies the single admission slot.
    auto first = std::async(std::launch::async, [&]() -> JobResult {
        serve::Client client = ts.connect();
        JobResult res;
        std::string err;
        EXPECT_TRUE(client.run(small, res, &err)) << err;
        return res;
    });
    while (ts.server.engine().inFlightSims() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // A different job would need a second simulation: rejected.
    JobSpec other = small;
    other.net = "lstm";
    {
        serve::Client client = ts.connect();
        JobResult res;
        std::string err;
        ASSERT_TRUE(client.run(other, res, &err)) << err;
        EXPECT_FALSE(res.ok);
        EXPECT_EQ(res.error, "queue_full");
    }

    // The identical job joins the in-flight simulation: admitted even
    // at the admission bound (it costs no new slot).
    auto joined = std::async(std::launch::async, [&]() -> JobResult {
        serve::Client client = ts.connect();
        JobResult res;
        std::string err;
        EXPECT_TRUE(client.run(small, res, &err)) << err;
        return res;
    });

    release.set_value();
    const JobResult a = first.get();
    const JobResult j = joined.get();
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(j.ok) << j.error;

    const serve::Server::Metrics m = ts.server.metrics();
    EXPECT_EQ(m.rejectedQueueFull, 1u);
    EXPECT_EQ(m.servedSim, 1u);
    EXPECT_EQ(ts.server.engine().cacheStats().misses, 1u);
    expectRunsAccounted(m);
}

TEST(Serve, GracefulDrainFinishesInFlightAndRefusesNew)
{
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();

    serve::ServerOptions opt;
    opt.runner = [gate](sim::Gpu &gpu, const JobSpec &spec) {
        gate.wait();
        return rt::runJob(gpu, spec);
    };
    TestServer ts(opt);

    // Open both connections BEFORE the drain: draining refuses new run
    // requests on live connections (the listener itself is closed).
    serve::Client late = ts.connect();

    auto inflight = std::async(std::launch::async, [&]() -> JobResult {
        serve::Client client = ts.connect();
        JobResult res;
        std::string err;
        EXPECT_TRUE(client.run(gruExactJob(), res, &err)) << err;
        return res;
    });
    while (ts.server.engine().inFlightSims() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    ts.server.requestDrain();
    while (!ts.server.draining())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // A run request during the drain is refused...
    JobResult res;
    std::string err;
    ASSERT_TRUE(late.run(gruExactJob(), res, &err)) << err;
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "draining");

    // ...but the in-flight one completes and is answered.
    release.set_value();
    const JobResult done = inflight.get();
    ASSERT_TRUE(done.ok) << done.error;

    ts.server.waitDrained();
    const serve::Server::Metrics m = ts.server.metrics();
    EXPECT_EQ(m.rejectedDraining, 1u);
    EXPECT_EQ(m.servedSim, 1u);
    expectRunsAccounted(m);
}

TEST(Serve, MetricsFrameScrapeDeltas)
{
    // The registry is process-wide and cumulative across every Server
    // in this binary, so the frame is asserted on DELTAS around one
    // served run, not absolute values.
    TestServer ts;
    serve::Client client = ts.connect();
    std::string err, text;

    ASSERT_TRUE(client.metrics(text, &err)) << err;
    metrics::Scrape before;
    ASSERT_TRUE(metrics::Scrape::parse(text, before, &err)) << err;

    JobResult res;
    ASSERT_TRUE(client.run(gruExactJob(), res, &err)) << err;
    ASSERT_TRUE(res.ok) << res.error;

    ASSERT_TRUE(client.metrics(text, &err)) << err;
    metrics::Scrape after;
    ASSERT_TRUE(metrics::Scrape::parse(text, after, &err)) << err;

    const auto delta = [&](const char *family) {
        return after.sum(family) - before.sum(family);
    };
    EXPECT_EQ(delta("tango_serve_run_requests_total"), 1.0);
    EXPECT_EQ(delta("tango_serve_served_total"), 1.0);
    EXPECT_EQ(delta("tango_serve_rejects_total"), 0.0);
    // Every served run was admitted under exactly one accuracy tier.
    EXPECT_EQ(delta("tango_serve_tier_total"),
              delta("tango_serve_served_total"));
    const metrics::Sample *sim =
        after.find("tango_serve_served_total", "how", "sim");
    ASSERT_NE(sim, nullptr);
    EXPECT_GE(sim->value, 1.0);

    // The engine saw one miss for the cold job, and its in-flight gauge
    // is back to zero now that the run was answered.
    EXPECT_EQ(delta("tango_engine_cache_total"), 1.0);
    const metrics::Sample *depth =
        after.find("tango_engine_inflight_sims");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->value, 0.0);

    // The scrape-side latency histogram counted the run too.
    metrics::HistogramSnapshot hb, ha;
    const double countBefore =
        before.histogram("tango_serve_latency_us", hb)
            ? double(hb.count())
            : 0.0;
    ASSERT_TRUE(after.histogram("tango_serve_latency_us", ha));
    EXPECT_EQ(double(ha.count()) - countBefore, 1.0);

    // And the stats reply's bucket-bound percentiles agree with this
    // server's own view: one run recorded, p99 >= p50 >= 0.
    std::string stats;
    ASSERT_TRUE(client.stats(stats, &err)) << err;
    const json::Reader::Value v = json::Reader(stats).parse();
    const json::Reader::Value *lat = v.find("latency_ms");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->u64Or("count", 0), 1u);
    EXPECT_GE(lat->numOr("p99", -1.0), lat->numOr("p50", -1.0));
    EXPECT_GE(lat->numOr("p50", -1.0), 0.0);
}

TEST(Serve, ShutdownRequestTriggersDrain)
{
    TestServer ts;
    serve::Client client = ts.connect();
    std::string err;
    ASSERT_TRUE(client.shutdown(&err)) << err;
    ts.server.waitDrained();
    EXPECT_TRUE(ts.server.draining());
}

} // namespace
} // namespace tango
