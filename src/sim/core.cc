#include "sim/core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/digest.hh"

namespace tango::sim {

namespace {

/** Sentinel "will not become ready by itself" cycle (barrier waits). */
constexpr uint64_t farFuture = ~0ULL;

/** Extra latency charged when an MSHR file is full (back-pressure). */
constexpr uint64_t throttlePenalty = 25;

} // namespace

SmCore::SmCore(const GpuConfig &cfg, DeviceMemory &gmem, Cache &l2,
               Dram &dram)
    : cfg_(cfg), gmem_(gmem), l2_(l2), dram_(dram)
{
    CacheConfig l1cfg;
    l1cfg.sizeBytes = cfg.l1dBytes;
    l1cfg.assoc = cfg.l1dAssoc;
    l1cfg.lineBytes = cfg.lineBytes;
    l1cfg.mshrs = cfg.l1dMshrs;
    l1cfg.writeAllocate = false;
    l1d_ = std::make_unique<Cache>(l1cfg);

    CacheConfig ccfg;
    ccfg.sizeBytes = cfg.constCacheBytes;
    ccfg.assoc = 4;
    ccfg.lineBytes = 64;
    ccfg.mshrs = 8;
    ccfg.writeAllocate = false;
    constCache_ = std::make_unique<Cache>(ccfg);

    sched_ = makeScheduler(cfg.scheduler);

    trace_ = trace::threadSink();
    l1d_->setTrace(trace_, trace::CacheLevel::L1D);
    constCache_->setTrace(trace_, trace::CacheLevel::Const);
}

Dim3
SmCore::ctaCoord(const Dim3 &grid, uint64_t linear)
{
    Dim3 c;
    c.x = static_cast<uint32_t>(linear % grid.x);
    c.y = static_cast<uint32_t>((linear / grid.x) % grid.y);
    c.z = static_cast<uint32_t>(linear / (uint64_t(grid.x) * grid.y));
    return c;
}

void
SmCore::launchCta(const KernelLaunch &launch, uint64_t linear_id,
                  const std::vector<uint32_t> &warp_ids)
{
    // Find a free CTA slot.
    uint32_t slot = 0;
    for (; slot < ctas_.size(); slot++) {
        if (!ctas_[slot].active)
            break;
    }
    TANGO_ASSERT(slot < ctas_.size(), "no free CTA slot");
    CtaSlot &cta = ctas_[slot];
    cta.active = true;
    freeCtas_--;
    cta.barrierArrived = 0;
    cta.smem.assign(std::max<uint32_t>(launch.program->smemBytes, 1), 0);
    cta.warpSlots.clear();

    const Dim3 coord = ctaCoord(launch.grid, linear_id);
    const uint32_t ctaOrder = ctaOrderCounter_++;
    uint32_t warpOrder = 0;
    for (uint32_t w : warp_ids) {
        uint32_t ws = 0;
        for (; ws < warps_.size(); ws++) {
            if (!warps_[ws].active)
                break;
        }
        TANGO_ASSERT(ws < warps_.size(), "no free warp slot");
        WarpSlot &slotRef = warps_[ws];
        slotRef.exec = std::make_unique<WarpExec>(launch, coord, w, gmem_,
                                                  cta.smem, decoded_);
        if (hashing_)
            slotRef.exec->enableStreamHash();
        slotRef.regReady.assign(launch.program->numRegs, 0);
        slotRef.regPendKind.assign(launch.program->numRegs, 0);
        slotRef.fetchReady = 0;
        slotRef.cta = slot;
        slotRef.active = !slotRef.exec->done();
        slotRef.atBarrier = false;
        slotRef.age = warpAgeCounter_++;
        slotRef.nextDec =
            slotRef.active ? &slotRef.exec->peekDecoded() : nullptr;
        slotRef.l1Hint = Cache::WayHint{};
        slotRef.l2Hint = Cache::WayHint{};
        slotRef.constHint = Cache::WayHint{};
        slotRef.hashSlot =
            ctaOrder * static_cast<uint32_t>(warp_ids.size()) + warpOrder++;
        if (profiling_)
            slotPc_[ws] = slotRef.active ? slotRef.exec->pc() : 0;
        evalDirty_[ws] = slotRef.active ? 1 : 0;
        activeF_[ws] = slotRef.active ? 1 : 0;
        ages_[ws] = slotRef.age;
        // Not chargeable until the first evaluation (the incremental stall
        // buckets in run() treat NumStalls as "no bucket").
        issuable_[ws] = 0;
        why_[ws] = Stall::NumStalls;
        if (slotRef.active) {
            cta.warpSlots.push_back(ws);
            liveWarpTotal_++;
        }
    }
    cta.liveWarps = static_cast<uint32_t>(cta.warpSlots.size());
}

bool
SmCore::issuableSlot(uint32_t slot, uint64_t now, Stall &why,
                     uint64_t &earliest)
{
    WarpSlot &w = warps_[slot];
    earliest = farFuture;
    if (w.atBarrier) {
        why = Stall::Sync;
        return false;   // released by another warp's issue
    }
    if (w.fetchReady > now) {
        why = Stall::InstFetch;
        earliest = w.fetchReady;
        return false;
    }
    const DecodedInstr &d = *w.nextDec;

    // Scoreboard: all sources and the destination must be ready.
    uint64_t depReady = 0;
    uint8_t depKind = 0;
    for (uint32_t i = 0; i < d.numSrcRegs; i++) {
        const uint8_t r = d.srcRegs[i];
        if (w.regReady[r] > now && w.regReady[r] > depReady) {
            depReady = w.regReady[r];
            depKind = w.regPendKind[r];
        }
    }
    if (d.writesReg && w.regReady[d.dst] > now &&
        w.regReady[d.dst] > depReady) {
        depReady = w.regReady[d.dst];
        depKind = w.regPendKind[d.dst];
    }
    if (depReady > now) {
        why = depKind == 1 ? Stall::MemoryDependency
            : depKind == 2 ? Stall::ConstantMemoryDependency
                           : Stall::ExecDependency;
        earliest = depReady;
        return false;
    }

    if (d.isLdSt && ldstThrottleUntil_ > now) {
        why = Stall::MemoryThrottle;
        earliest = ldstThrottleUntil_;
        return false;
    }
    if (unitBusy_[static_cast<size_t>(d.unit)] > now) {
        why = Stall::PipeBusy;
        earliest = unitBusy_[static_cast<size_t>(d.unit)];
        return false;
    }
    why = Stall::NotSelected;
    earliest = now;
    return true;
}

uint64_t
SmCore::memoryLatency(const Step &st, uint64_t now, WarpSlot &w)
{
    const bool write = st.isStore;
    uint64_t maxLat = 1;

    auto l2Path = [&](uint32_t addr) -> uint64_t {
        raw_.noc += 2;
        raw_.l2++;
        const Cache::Result r = l2_.access(addr, write, now, &w.l2Hint);
        // The cache's own miss counter increments on every non-hit
        // (MSHR merges included), so charge on exactly that condition.
        if (profiling_ && !r.hit)
            pcL2Miss_[profPc_]++;
        if (r.hit || r.mshrMerged) {
            // A hit on an in-flight line waits for its fill.
            const uint64_t fill = r.fillCycle;
            return std::max<uint64_t>(cfg_.l2HitLatency,
                                      fill > now ? fill - now : 0);
        }
        uint64_t extra = 0;
        const bool haveMshr = l2_.mshrAvailable(addr, now);
        if (!haveMshr) {
            ldstThrottleUntil_ =
                std::max(ldstThrottleUntil_, now + throttlePenalty);
            extra = throttlePenalty;
        }
        raw_.mc++;
        raw_.dram++;
        if (profiling_)
            pcDram_[profPc_]++;
        const uint64_t avail = dram_.schedule(now) + cfg_.dramLatency;
        if (haveMshr)
            l2_.allocateMshr(addr, avail, now);
        return (avail - now) + cfg_.l2HitLatency / 4 + extra;
    };

    switch (st.space) {
      case Space::Global: {
        raw_.globalMemInsts++;
        raw_.coalescedSegments += st.numSegments;
        for (uint32_t s = 0; s < st.numSegments; s++) {
            const uint32_t addr = st.segments[s];
            uint64_t lat;
            if (!l1d_->bypassed()) {
                raw_.l1d++;
                const Cache::Result r =
                    l1d_->access(addr, write, now, &w.l1Hint);
                if (profiling_ && !r.hit)
                    pcL1dMiss_[profPc_]++;
                if (write) {
                    // Write-through, no-allocate: latency is the L1 pipe,
                    // but the line still traverses NOC/L2.
                    l2Path(addr);
                    lat = cfg_.l1HitLatency;
                } else if (r.hit || r.mshrMerged) {
                    const uint64_t fill = r.fillCycle;
                    lat = std::max<uint64_t>(
                        cfg_.l1HitLatency, fill > now ? fill - now : 0);
                } else {
                    uint64_t extra = 0;
                    const bool haveMshr = l1d_->mshrAvailable(addr, now);
                    if (!haveMshr) {
                        ldstThrottleUntil_ = std::max(
                            ldstThrottleUntil_, now + throttlePenalty);
                        extra = throttlePenalty;
                    }
                    lat = cfg_.l1HitLatency + l2Path(addr) + extra;
                    if (haveMshr)
                        l1d_->allocateMshr(addr, now + lat, now);
                }
            } else {
                lat = l2Path(addr) + 10;  // interconnect traversal
            }
            maxLat = std::max(maxLat, lat);
        }
        // Multiple segments serialize at the LDST unit.
        if (st.numSegments > 1)
            maxLat += st.numSegments - 1;
        break;
      }
      case Space::Shared: {
        raw_.shrd += st.sharedSerialization;
        maxLat = cfg_.smemLatency + 2ull * (st.sharedSerialization - 1);
        break;
      }
      case Space::Const: {
        const uint32_t accesses = st.constUniform ? 1 : 2;
        raw_.cc += accesses;
        // Model the constant cache with real tag state keyed on the
        // immediate-offset address of lane 0's access.
        const Cache::Result r =
            constCache_->access(st.segments[0], false, now, &w.constHint);
        maxLat = r.hit ? cfg_.constHitLatency
                       : cfg_.constHitLatency + cfg_.l2HitLatency;
        if (!st.constUniform)
            maxLat += cfg_.constHitLatency;
        break;
      }
      case Space::Param: {
        raw_.cc++;
        maxLat = cfg_.constHitLatency;
        break;
      }
    }
    return maxLat;
}

void
SmCore::windowAccum(double pj, uint64_t now)
{
    if (now >= windowStart_ + windowCycles) {
        const double seconds =
            windowCycles / (cfg_.coreClockGhz * 1e9);
        const double w = windowEnergyPj_ * 1e-12 / seconds;
        peakWindowDynW_ = std::max(peakWindowDynW_, w);
        // Jump the window to the current cycle (skipped windows are idle).
        windowStart_ = now - (now % windowCycles);
        windowEnergyPj_ = 0.0;
    }
    windowEnergyPj_ += pj;
}

void
SmCore::issue(uint32_t slot, uint64_t now)
{
    WarpSlot &w = warps_[slot];
    // nextDec points into the per-kernel DecodedProgram (stable storage),
    // so the reference stays valid across step().
    const DecodedInstr &d = *w.nextDec;
    // Attribution pc must be read before step() advances the warp; it is
    // cheap here because peekDecoded() already resolved reconvergence.
    uint32_t ipc = 0;
    if (profiling_)
        ipc = w.exec->pc();
    const Step st = w.exec->step();
    if (hashing_ && st.warpDone)
        streamHashes_[w.hashSlot] = w.exec->streamHash();
    if (!st.warpDone)
        w.nextDec = &w.exec->peekDecoded();
    if (profiling_) {
        profPc_ = ipc;
        pcIssued_[ipc]++;
        slotPc_[slot] = st.warpDone ? 0 : w.exec->pc();
    }
    const PowerParams &p = cfg_.power;

    // --- instruction accounting -----------------------------------------
    raw_.issued++;
    raw_.op[static_cast<size_t>(st.op)] += st.activeCount;
    if (st.type != DType::None && st.type != DType::Pred &&
        st.activeCount > 0) {
        raw_.dtype[static_cast<size_t>(st.type)] += st.activeCount;
    }
    raw_.ic++;
    raw_.ib++;
    raw_.pipe++;
    const uint32_t rfOps = st.numSrcRegs + (st.writesReg ? 1 : 0);
    raw_.rfOperand += rfOps;

    double pj = p.icAccess + p.ibAccess + p.pipeIssue + rfOps * p.rfOperand;
    switch (st.unit) {
      case Unit::SP:
        raw_.sp++;
        pj += p.spOp;
        break;
      case Unit::FPU:
        raw_.fpu++;
        pj += p.fpuOp;
        break;
      case Unit::SFU:
        raw_.sfu++;
        pj += p.sfuOp;
        break;
      default:
        break;
    }

    // --- functional unit occupancy --------------------------------------
    uint64_t occ = 1;
    if (st.unit == Unit::SFU)
        occ = 4;
    if (st.unit == Unit::LDST) {
        occ = 1;
        if (st.numSegments > 1)
            occ += st.numSegments - 1;
        if (st.sharedSerialization > 1)
            occ += st.sharedSerialization - 1;
    }
    unitBusy_[static_cast<size_t>(st.unit)] = now + occ;

    // --- dependencies / memory ------------------------------------------
    if (st.isMem) {
        const uint64_t lat = memoryLatency(st, now, w);
        if (!st.isStore && st.writesReg) {
            w.regReady[d.dst] = now + lat;
            w.regPendKind[d.dst] =
                (st.space == Space::Const || st.space == Space::Param) ? 2
                                                                       : 1;
        }
        if (st.space == Space::Global) {
            pj += st.numSegments * (l1d_->bypassed() ? 0.0 : p.dcAccess);
            sched_->notifyLongLatency(slot);
        } else if (st.space == Space::Shared) {
            pj += st.sharedSerialization * p.shrdAccess;
        } else {
            pj += p.ccAccess;
        }
    } else if (st.writesReg) {
        w.regReady[d.dst] = now + d.latency;
        w.regPendKind[d.dst] = 0;
    }

    windowAccum(pj, now);

    // --- control ----------------------------------------------------------
    w.fetchReady = now + (st.controlTransfer ? 3 : 1);

    if (st.op == Op::Bar && !st.warpDone) {
        CtaSlot &cta = ctas_[w.cta];
        w.atBarrier = true;
        cta.barrierArrived++;
        if (cta.barrierArrived >= cta.liveWarps) {
            for (uint32_t ws : cta.warpSlots) {
                if (warps_[ws].active) {
                    warps_[ws].atBarrier = false;
                    evalDirty_[ws] = 1;
                }
            }
            cta.barrierArrived = 0;
        }
    }

    if (st.warpDone) {
        CtaSlot &cta = ctas_[w.cta];
        w.active = false;
        w.nextDec = nullptr;
        activeF_[slot] = 0;
        w.exec.reset();
        sched_->notifyRetired(slot);
        TANGO_ASSERT(liveWarpTotal_ > 0 && cta.liveWarps > 0,
                     "warp accounting underflow");
        liveWarpTotal_--;
        cta.liveWarps--;
        if (cta.liveWarps == 0) {
            cta.active = false;
            freeCtas_++;
            cta.warpSlots.clear();
        } else if (cta.barrierArrived >= cta.liveWarps &&
                   cta.barrierArrived > 0) {
            // The retiring warp was the last one not at the barrier.
            for (uint32_t ws : cta.warpSlots) {
                if (warps_[ws].active) {
                    warps_[ws].atBarrier = false;
                    evalDirty_[ws] = 1;
                }
            }
            cta.barrierArrived = 0;
        }
    }
}

KernelStats
SmCore::run(const KernelLaunch &launch, const std::vector<uint64_t> &cta_ids,
            const std::vector<uint32_t> &warp_ids, uint32_t resident_ctas,
            const SimPolicy &policy, uint64_t *stream_hash)
{
    TANGO_ASSERT(launch.program != nullptr, "launch without program");
    const Program &prog = *launch.program;

    // Decode once per kernel; every warp of every CTA shares the result.
    const DecodedProgram decoded(prog);
    decoded_ = &decoded;

    launch_ = &launch;
    raw_ = RawCounts{};
    stalls_.fill(0);
    stats_.clear();
    l1d_->reset();
    constCache_->reset();
    peakWindowDynW_ = 0.0;
    windowStart_ = 0;
    windowEnergyPj_ = 0.0;
    ldstThrottleUntil_ = 0;
    std::fill(std::begin(unitBusy_), std::end(unitBusy_), 0);
    warpAgeCounter_ = 0;
    liveWarpTotal_ = 0;
    ctaOrderCounter_ = 0;
    hashing_ = stream_hash != nullptr;
    if (hashing_) {
        streamHashes_.assign(cta_ids.size() * warp_ids.size(),
                             digest::kInit);
    }

    const uint32_t warpsPerCta =
        static_cast<uint32_t>(warp_ids.size());
    TANGO_ASSERT(warpsPerCta > 0, "no warps to simulate");
    ctas_.assign(resident_ctas, CtaSlot{});
    warps_.clear();
    warps_.resize(size_t(resident_ctas) * warpsPerCta);
    pendingCtas_ = cta_ids;
    nextPending_ = 0;
    freeCtas_ = resident_ctas;
    const uint32_t nSlots = static_cast<uint32_t>(warps_.size());
    // Inactive slots carry earliest_ == farFuture and a clear dirty flag,
    // so the per-cycle scan needs no activity check: the re-evaluation
    // condition can only fire for live warps, and far-future sentinels
    // fall out of the wake-up minimum by themselves.
    evalDirty_.assign(nSlots, 0);
    activeF_.assign(nSlots, 0);
    issuable_.assign(nSlots, 0);
    why_.assign(nSlots, Stall::NumStalls);
    ages_.assign(nSlots, 0);
    earliest_.assign(nSlots, farFuture);
    sched_->reset(nSlots);

    profiling_ = policy.profile;
    if (profiling_) {
        const size_t nPcs = prog.code.size();
        pcIssued_.assign(nPcs, 0);
        pcStalls_.assign(nPcs * numStalls, 0);
        pcL1dMiss_.assign(nPcs, 0);
        pcL2Miss_.assign(nPcs, 0);
        pcDram_.assign(nPcs, 0);
        slotPc_.assign(nSlots, 0);
        profPc_ = 0;
    }

    // Incremental stall accounting: bucketOf(i) maps a slot to the stall
    // reason the per-cycle accounting would charge it (or -1 for "none"),
    // and stallCnt[] holds how many slots sit in each bucket.  Every write
    // to activeF_/issuable_/why_ keeps the counts in step, so each cycle
    // charges numStalls counters instead of walking every warp slot.
    // issuableCnt tracks how many slots are currently issuable; the
    // scheduler is only asked to scan when at least one is.
    uint64_t stallCnt[numStalls] = {};
    uint32_t issuableCnt = 0;
    const auto bucketOf = [&](uint32_t i) -> int {
        if (!activeF_[i] || why_[i] == Stall::NumStalls)
            return -1;
        return static_cast<int>(issuable_[i] ? Stall::NotSelected : why_[i]);
    };

    // Tracing flags, hoisted so the hot loop pays one predictable branch
    // per decision point when tracing is off (trace_ == nullptr).
    const bool traceStalls =
        trace_ && trace_->wants(trace::EventKind::StallTransition);
    const bool traceOcc =
        trace_ && (trace_->wants(trace::EventKind::OccupancySample) ||
                   trace_->wants(trace::EventKind::MshrSample));
    const uint64_t samplePeriod = trace_ ? trace_->samplePeriod() : 0;
    uint64_t nextSample = 0;
    const auto recordStall = [&](uint32_t slot, int ob, int nb,
                                 uint64_t cyc) {
        trace::Event e;
        e.kind = trace::EventKind::StallTransition;
        e.cycle = cyc;
        e.arg = (static_cast<uint32_t>(ob + 1) << 8) |
                static_cast<uint32_t>(nb + 1);
        e.warp = static_cast<uint16_t>(slot);
        trace_->record(e);
    };

    uint64_t now = 0;

    while (liveWarpTotal_ > 0 || nextPending_ < pendingCtas_.size()) {
        if (now > policy.maxCycles) {
            fatal("kernel %s exceeded the %llu-cycle safety cap",
                  prog.name.c_str(),
                  static_cast<unsigned long long>(policy.maxCycles));
        }
        // Fill free CTA slots.  launchCta resets the relaunched slots to
        // the "not chargeable" state, so the buckets stay consistent.
        while (nextPending_ < pendingCtas_.size() && freeCtas_ > 0)
            launchCta(launch, pendingCtas_[nextPending_++], warp_ids);
        if (liveWarpTotal_ == 0)
            continue;   // CTA produced no live warps (empty block)

        // Evaluate issuability.  Warps whose cached stall points to a
        // future event keep their cached reason (exact accounting, less
        // scanning); dirty or due warps are re-evaluated.  The pass also
        // collects the earliest wake-up event over all live warps: no
        // later step this cycle changes earliest_ or (when nothing ends
        // up issuing) the live set, so the minimum is already exact.
        uint64_t nextEvent = farFuture;
        for (uint32_t i = 0; i < nSlots; i++) {
            if (evalDirty_[i] || earliest_[i] <= now) {
                const int ob = bucketOf(i);
                const bool oi = issuable_[i] != 0;
                issuable_[i] =
                    issuableSlot(i, now, why_[i], earliest_[i]) ? 1 : 0;
                evalDirty_[i] = 0;
                const int nb = bucketOf(i);
                if (ob != nb) {
                    if (ob >= 0)
                        stallCnt[ob]--;
                    if (nb >= 0)
                        stallCnt[nb]++;
                    if (traceStalls)
                        recordStall(i, ob, nb, now);
                }
                if (oi != (issuable_[i] != 0))
                    issuableCnt += issuable_[i] ? 1 : -1;
            }
            nextEvent = std::min(nextEvent, earliest_[i]);
        }

        // Issue up to issueWidth instructions.  With at least one issuable
        // slot every scheduler finds one, so a pick() scan that would come
        // back empty is skipped (its only state effect is replicated by
        // notifyNoneIssuable).
        uint32_t issuedNow = 0;
        for (uint32_t k = 0; k < cfg_.issueWidth; k++) {
            if (issuableCnt == 0) {
                sched_->notifyNoneIssuable();
                break;
            }
            const int pickIdx = sched_->pick(issuable_, ages_);
            if (pickIdx < 0)
                break;
            issue(static_cast<uint32_t>(pickIdx), now);
            // The picked slot was issuable, i.e. bucketed NotSelected.
            stallCnt[static_cast<size_t>(Stall::NotSelected)]--;
            issuableCnt--;
            if (traceStalls) {
                // NotSelected -> issued (-1 = no bucket).
                recordStall(static_cast<uint32_t>(pickIdx),
                            static_cast<int>(Stall::NotSelected), -1, now);
            }
            issuable_[pickIdx] = 0;
            why_[pickIdx] = Stall::NumStalls;  // issued: no stall charged
            if (activeF_[pickIdx]) {
                evalDirty_[pickIdx] = 1;
            } else {
                // Retired with this issue: park the slot on the inactive
                // sentinels so the per-cycle scan skips it.
                evalDirty_[pickIdx] = 0;
                earliest_[pickIdx] = farFuture;
            }
            issuedNow++;
        }

        // Determine how far we can fast-forward when nothing issued.
        uint64_t skip = 1;
        if (issuedNow == 0) {
            if (nextEvent == farFuture) {
                panic("deadlock in kernel %s at cycle %llu (all warps "
                      "waiting at barriers)",
                      prog.name.c_str(),
                      static_cast<unsigned long long>(now));
            }
            skip = std::max<uint64_t>(1, nextEvent - now);
        }

        // Stall accounting: every active, non-issued warp is charged its
        // reason for each skipped cycle; the scheduler is active the whole
        // time.
        for (size_t s = 0; s < numStalls; s++)
            stalls_[s] += stallCnt[s] * skip;
        if (profiling_) {
            // Per-PC attribution walk, mirroring bucketOf() exactly so the
            // per-PC sums reproduce stalls_[] bit-for-bit: each stalled
            // warp charges the pc of the instruction it is waiting to
            // issue.
            for (uint32_t i = 0; i < nSlots; i++) {
                const int bkt = bucketOf(i);
                if (bkt >= 0)
                    pcStalls_[size_t(slotPc_[i]) * numStalls + bkt] += skip;
            }
        }
        raw_.sched += skip;
        now += skip;

        // Periodic occupancy / MSHR counter samples (trace-only; a skip
        // past several windows records one sample — idle windows carry no
        // new information).
        if (traceOcc && now >= nextSample) {
            if (trace_->wants(trace::EventKind::OccupancySample)) {
                trace::Event e;
                e.kind = trace::EventKind::OccupancySample;
                e.cycle = now;
                e.payload = liveWarpTotal_;
                e.arg = static_cast<uint32_t>(ctas_.size()) - freeCtas_;
                trace_->record(e);
            }
            if (trace_->wants(trace::EventKind::MshrSample)) {
                trace::Event e;
                e.kind = trace::EventKind::MshrSample;
                e.cycle = now;
                e.payload = l1d_->liveMshrs();
                e.arg = l2_.liveMshrs();
                trace_->record(e);
            }
            nextSample = now + samplePeriod;
        }
    }

    // --- fold raw counters into the stat set -----------------------------
    KernelStats ks;
    ks.name = prog.name;
    ks.grid = launch.grid;
    ks.block = launch.block;
    ks.smCycles = now;
    ks.regsPerThread = prog.numRegs;
    ks.maxLiveRegs = prog.maxLiveRegs();
    ks.smemBytes = prog.smemBytes;
    ks.cmemBytes = prog.cmemBytes;
    ks.residentCtas = resident_ctas;
    ks.peakWindowDynW = peakWindowDynW_;

    StatSet &st = ks.stats;
    for (size_t i = 0; i < static_cast<size_t>(Op::NumOps); i++) {
        if (raw_.op[i]) {
            st.set(std::string("op.") + opName(static_cast<Op>(i)),
                   static_cast<double>(raw_.op[i]));
        }
    }
    static const DType dts[5] = {DType::F32, DType::U32, DType::S32,
                                 DType::U16, DType::S16};
    for (DType t : dts) {
        const auto i = static_cast<size_t>(t);
        if (raw_.dtype[i]) {
            st.set(std::string("dtype.") + dtypeName(t),
                   static_cast<double>(raw_.dtype[i]));
        }
    }
    st.set("evt.ic", double(raw_.ic));
    st.set("evt.ib", double(raw_.ib));
    st.set("evt.pipe", double(raw_.pipe));
    st.set("evt.rf_operand", double(raw_.rfOperand));
    st.set("evt.sp", double(raw_.sp));
    st.set("evt.fpu", double(raw_.fpu));
    st.set("evt.sfu", double(raw_.sfu));
    st.set("evt.sched", double(raw_.sched));
    st.set("evt.l1d", double(raw_.l1d));
    st.set("evt.cc", double(raw_.cc));
    st.set("evt.shrd", double(raw_.shrd));
    st.set("evt.l2", double(raw_.l2));
    st.set("evt.noc", double(raw_.noc));
    st.set("evt.mc", double(raw_.mc));
    st.set("evt.dram", double(raw_.dram));
    st.set("issued", double(raw_.issued));
    st.set("mem.coalesced_segments", double(raw_.coalescedSegments));
    st.set("mem.global_insts", double(raw_.globalMemInsts));
    for (size_t i = 0; i < numStalls; i++) {
        st.set(std::string("stall.") + stallName(static_cast<Stall>(i)),
               static_cast<double>(stalls_[i]));
    }
    const CacheStats &l1s = l1d_->stats();
    st.set("mem.l1d.accesses", double(l1s.accesses));
    st.set("mem.l1d.hits", double(l1s.hits));
    st.set("mem.l1d.misses", double(l1s.misses));
    const CacheStats &l2s = l2_.stats();
    st.set("mem.l2.accesses", double(l2s.accesses));
    st.set("mem.l2.hits", double(l2s.hits));
    st.set("mem.l2.misses", double(l2s.misses));
    st.set("dram.accesses", double(dram_.accesses()));
    st.set("dram.queue_cycles", double(dram_.totalQueueCycles()));

    // Flush the final (partial) power window.
    if (windowEnergyPj_ > 0.0) {
        const double seconds = windowCycles / (cfg_.coreClockGhz * 1e9);
        peakWindowDynW_ =
            std::max(peakWindowDynW_, windowEnergyPj_ * 1e-12 / seconds);
        ks.peakWindowDynW = peakWindowDynW_;
    }
    if (hashing_) {
        // Warps still resident here (e.g. after a maxCycles truncation)
        // were never captured at retirement; sweep their partial digests.
        for (const WarpSlot &w : warps_) {
            if (w.exec && w.active)
                streamHashes_[w.hashSlot] = w.exec->streamHash();
        }
        // Same fold as runFunctionalOnly(): per-warp digests in launch
        // position, so the two executions are directly comparable.
        uint64_t combined = digest::kInit;
        for (uint64_t h : streamHashes_)
            digest::mix(combined, h);
        *stream_hash = combined;
        hashing_ = false;
    }
    if (profiling_) {
        auto prof = std::make_shared<KernelProfile>();
        prof->labels = prog.debug.labels;
        prof->pcLabel = prog.debug.pcLabel;
        prof->pcLabel.resize(prog.code.size(), 0);
        prof->disasm.reserve(prog.code.size());
        for (const Instr &ins : prog.code)
            prof->disasm.push_back(disasm(ins));
        prof->issued = std::move(pcIssued_);
        prof->stalls = std::move(pcStalls_);
        prof->l1dMisses = std::move(pcL1dMiss_);
        prof->l2Misses = std::move(pcL2Miss_);
        prof->dramTxns = std::move(pcDram_);
        prof->lineBytes = cfg_.lineBytes;
        ks.profile = std::move(prof);
        profiling_ = false;
    }
    decoded_ = nullptr;
    return ks;
}

uint64_t
SmCore::stateDigest() const
{
    uint64_t h = digest::kInit;
    digest::mix(h, l1d_->stateDigest());
    digest::mix(h, constCache_->stateDigest());
    return h;
}

} // namespace tango::sim
