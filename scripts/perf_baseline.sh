#!/usr/bin/env bash
# Machine-readable wall-time baseline of the simulator itself.
#
# Runs the three paper-figure benches that dominate suite runtime (fig01,
# fig07, fig15) plus cold single-net GRU/LSTM simulations through
# tango-run, each RUNS times, and writes BENCH_simwall.json mapping each
# entry to its minimum user-CPU seconds (minimum, not mean: the machines
# this runs on are shared, and min-of-N is the standard noise filter for
# wall-clock perf tracking).
#
# The RNN entries also run with TANGO_NO_MEMO=1 so the launch-memoization
# speedup is recorded alongside (<net>_memo_off and <net>_memo_speedup);
# the ISSUE-4 acceptance bar is gru/lstm_memo_speedup >= 3.
#
# A "wall_seconds_sharded" section records cold fig01/fig15 WALL times
# at TANGO_SIM_SHARDS=1,2,4 with TANGO_ENGINE_THREADS=1, so the
# intra-run sharding speedup (ISSUE-7: fig15 >=2x at 4 shards on a
# 4-core host) is tracked per machine.
#
#   scripts/perf_baseline.sh                # writes BENCH_simwall.json
#   RUNS=5 SEQLEN=1024 scripts/perf_baseline.sh
#   OUT=/tmp/w.json scripts/perf_baseline.sh
#
# Unless SKIP_SERVE=1, also boots a tango-serve daemon on an ephemeral
# port and drives it with tango-load (the default mix: all seven nets x
# the bench policy — never exact on the big CNNs — at both the sim and
# estimate tiers), writing the serving baseline (cold/warm QPS, p50/p99,
# warm-over-cold ratio, per-tier breakdown) to BENCH_serve.json
# (override with SERVE_OUT).  If a previous BENCH_serve.json exists, the
# fresh warm QPS must stay within 2% of it — SKIP_PROF_GUARD=1 skips
# this guard along with the profiling-off one.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
SEQLEN="${SEQLEN:-512}"
OUT="${OUT:-BENCH_simwall.json}"

if [[ ! -x build/tools/tango-run || ! -x build/bench/fig01_layer_time_breakdown ]]; then
    echo "building (cmake default tree at build/) ..." >&2
    cmake -B build -S . >/dev/null
    cmake --build build -j >/dev/null
fi

# min_user <cmd...> — minimum user-CPU seconds over $RUNS runs.
min_user() {
    local best="" t
    for _ in $(seq "$RUNS"); do
        t=$( { time "$@" >/dev/null 2>/dev/null; } 2>&1 |
             awk '/^user/ { sub("s", "", $2); split($2, a, "m");
                            printf "%.3f", a[1] * 60 + a[2] }' )
        if [[ -z $best ]] || awk -v a="$t" -v b="$best" \
                                 'BEGIN { exit !(a < b) }'; then
            best=$t
        fi
    done
    echo "$best"
}

# min_real <cmd...> — minimum WALL-CLOCK seconds over $RUNS runs.  The
# sharded entries below need wall time, not user time: intra-run
# sharding spends the same simulated work across K threads, so its
# speedup only shows on the real-time axis (user seconds go slightly UP
# from the fork/join overhead).
min_real() {
    local best="" t
    for _ in $(seq "$RUNS"); do
        t=$( { time "$@" >/dev/null 2>/dev/null; } 2>&1 |
             awk '/^real/ { sub("s", "", $2); split($2, a, "m");
                            printf "%.3f", a[1] * 60 + a[2] }' )
        if [[ -z $best ]] || awk -v a="$t" -v b="$best" \
                                 'BEGIN { exit !(a < b) }'; then
            best=$t
        fi
    done
    echo "$best"
}

declare -A wall
for fig in fig01_layer_time_breakdown fig07_stall_breakdown \
           fig15_scheduler_sensitivity; do
    echo "measuring $fig (${RUNS}x) ..." >&2
    wall[$fig]=$(min_user "build/bench/$fig")
done
for net in gru lstm; do
    echo "measuring $net cold, seq-len $SEQLEN, memo on/off (${RUNS}x each) ..." >&2
    wall[$net]=$(min_user build/tools/tango-run exact "$net" \
                          --seq-len "$SEQLEN")
    wall[${net}_memo_off]=$(min_user env TANGO_NO_MEMO=1 \
                            build/tools/tango-run exact "$net" \
                            --seq-len "$SEQLEN")
done

# Intra-run CTA sharding: cold fig01/fig15 WALL time per shard count.
# TANGO_ENGINE_THREADS=1 pins run-level parallelism at one worker so the
# measured speedup is the intra-run (shard-level) one alone; the ISSUE-7
# acceptance bar is fig15_shards4 <= fig15_shards1 / 2 on a >=4-core
# host.
for k in 1 2 4; do
    echo "measuring sharded fig01/fig15 wall time, TANGO_SIM_SHARDS=$k (${RUNS}x each) ..." >&2
    wall[fig01_shards$k]=$(min_real env TANGO_SIM_SHARDS=$k \
                           TANGO_ENGINE_THREADS=1 \
                           build/bench/fig01_layer_time_breakdown)
    wall[fig15_shards$k]=$(min_real env TANGO_SIM_SHARDS=$k \
                           TANGO_ENGINE_THREADS=1 \
                           build/bench/fig15_scheduler_sensitivity)
done

# Profiling-off guard: the per-PC profiler (SimPolicy::profile) must
# cost nothing when off — the hot loop gains exactly one predictable
# branch.  If a previous baseline exists, the fresh cold fig01 run
# (profiling off, as always in the benches) must stay within 2% of it.
# SKIP_PROF_GUARD=1 skips the check (e.g. first run on a new machine).
if [[ "${SKIP_PROF_GUARD:-0}" != "1" && -f "$OUT" ]]; then
    old=$(awk -F': ' '/"fig01_layer_time_breakdown"/ \
                      {gsub(/[ ,]/, "", $2); print $2; exit}' "$OUT")
    new="${wall[fig01_layer_time_breakdown]}"
    if [[ -n $old ]]; then
        if ! awk -v old="$old" -v new="$new" \
                 'BEGIN { exit !(new <= old * 1.02) }'; then
            echo "profiling-off guard FAILED: cold fig01 ${new}s is more" \
                 "than 2% over the $OUT baseline ${old}s" >&2
            exit 1
        fi
        echo "profiling-off guard: cold fig01 ${new}s within 2%" \
             "of baseline ${old}s" >&2
    fi
fi

{
    echo "{"
    echo "  \"runs\": $RUNS,"
    echo "  \"seq_len\": $SEQLEN,"
    echo "  \"user_seconds\": {"
    sep=""
    for k in fig01_layer_time_breakdown fig07_stall_breakdown \
             fig15_scheduler_sensitivity gru gru_memo_off lstm \
             lstm_memo_off; do
        printf '%s    "%s": %s' "$sep" "$k" "${wall[$k]}"
        sep=$',\n'
    done
    printf '\n  },\n'
    echo "  \"wall_seconds_sharded\": {"
    sep=""
    for k in 1 2 4; do
        for fig in fig01 fig15; do
            printf '%s    "%s_shards%s": %s' "$sep" "$fig" "$k" \
                   "${wall[${fig}_shards$k]}"
            sep=$',\n'
        done
    done
    printf '\n  },\n'
    echo "  \"memo_speedup\": {"
    for net in gru lstm; do
        ratio=$(awk -v off="${wall[${net}_memo_off]}" -v on="${wall[$net]}" \
                    'BEGIN { printf "%.2f", off / on }')
        [[ $net == gru ]] && comma="," || comma=""
        echo "    \"$net\": $ratio$comma"
    done
    echo "  }"
    echo "}"
} > "$OUT"

echo "wrote $OUT:" >&2
cat "$OUT"

if [[ "${SKIP_SERVE:-0}" != "1" ]]; then
    SERVE_OUT="${SERVE_OUT:-BENCH_serve.json}"
    echo "measuring tango-serve cold vs warm QPS (sim + estimate tiers) ..." >&2
    servedir=$(mktemp -d)
    build/tools/tango-serve --port 0 --port-file "$servedir/port" &
    serve_pid=$!
    for _ in $(seq 100); do [[ -s "$servedir/port" ]] && break; sleep 0.1; done
    [[ -s "$servedir/port" ]] || { echo "tango-serve never bound" >&2; exit 1; }
    build/tools/tango-load --port "$(cat "$servedir/port")" \
        --conns 4 --requests 200 --tier sim,estimate \
        --json "$servedir/serve.json"
    kill -TERM "$serve_pid"
    wait "$serve_pid"

    # Serving-rate guard: the fresh warm QPS must stay within 2% of the
    # published baseline (the warm path is pure cache/dedup serving, so
    # any regression here is daemon overhead, not simulator speed).
    if [[ "${SKIP_PROF_GUARD:-0}" != "1" && -f "$SERVE_OUT" ]]; then
        old_qps=$(python3 -c 'import json,sys
print(json.load(open(sys.argv[1]))["warm"]["qps"])' "$SERVE_OUT")
        new_qps=$(python3 -c 'import json,sys
print(json.load(open(sys.argv[1]))["warm"]["qps"])' "$servedir/serve.json")
        if ! awk -v old="$old_qps" -v new="$new_qps" \
                 'BEGIN { exit !(new >= old * 0.98) }'; then
            echo "serve-QPS guard FAILED: warm ${new_qps} QPS is more than" \
                 "2% below the $SERVE_OUT baseline ${old_qps} QPS" >&2
            rm -rf "$servedir"
            exit 1
        fi
        echo "serve-QPS guard: warm ${new_qps} QPS within 2% of" \
             "baseline ${old_qps} QPS" >&2
    fi
    mv "$servedir/serve.json" "$SERVE_OUT"
    rm -rf "$servedir"
    echo "wrote $SERVE_OUT" >&2
fi
