/**
 * @file
 * Shared emission helpers for the layer kernels (internal).
 */

#ifndef TANGO_KERNELS_EMIT_UTIL_HH
#define TANGO_KERNELS_EMIT_UTIL_HH

#include <cstring>
#include <initializer_list>
#include <optional>
#include <vector>

#include "kernels/builder.hh"

namespace tango::kern::detail {

/**
 * Emit a strided loop: for (v = init; v < bound; v += step) body().
 *
 * The exit test is divergent whenever `init` differs across the lanes of a
 * warp (thread-id based strides), so the loop is wrapped in an SSY region:
 * lanes that exit early park at the reconvergence point until the rest of
 * the warp catches up.  Without this, early lanes would run ahead past
 * barriers and read shared memory before it is written.
 *
 * When @p label is given, the loop-control instructions (and, unless it
 * sets its own mark(), the body) are tagged with it in the program's
 * DebugInfo table.
 */
inline void
stridedLoop(Builder &b, Reg v, Reg init, Reg bound, uint32_t step,
            const std::function<void()> &body, const char *label = nullptr)
{
    std::optional<Builder::Mark> m;
    if (label)
        m.emplace(b.mark(label));
    Label head = b.label();
    Label done = b.label();
    PredReg p = b.pred();
    b.ssy(done);
    b.movR(v, init);
    b.bind(head);
    b.setp(p, DType::S32, Cmp::Ge, v, bound);
    b.braIf(done, p);
    body();
    b.emit3i(Op::Add, DType::S32, v, v, step);
    b.bra(head);
    b.bind(done);
}

/** Pack 32-bit values into a constant-bank byte image. */
inline std::vector<uint8_t>
packConst(std::initializer_list<uint32_t> vals)
{
    std::vector<uint8_t> out(vals.size() * 4);
    size_t i = 0;
    for (uint32_t v : vals) {
        std::memcpy(out.data() + i * 4, &v, 4);
        i++;
    }
    return out;
}

} // namespace tango::kern::detail

#endif // TANGO_KERNELS_EMIT_UTIL_HH
