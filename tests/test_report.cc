/**
 * @file
 * Edge-case tests for the report printers (runtime/report.cc): empty
 * series, percent formatting of all-zero breakdowns (a zero-sum series
 * reaches printSeries as literal zeros), and ragged stacked input where
 * groups/labels disagree with the value matrix shape.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/report.hh"

namespace tango::rt {
namespace {

TEST(Report, PrintSeriesEmpty)
{
    std::ostringstream os;
    printSeries(os, "empty-series", {});
    const std::string out = os.str();
    EXPECT_NE(out.find("empty-series"), std::string::npos);
    EXPECT_NE(out.find("label"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(Report, PrintSeriesPercentWithZeroSum)
{
    // Breakdown helpers emit v/total = 0.0 for every entry when the
    // total is zero; the printer must render plain zero percentages,
    // not NaN or inf.
    std::ostringstream os;
    printSeries(os, "zeros", {{"a", 0.0}, {"b", 0.0}}, true);
    const std::string out = os.str();
    EXPECT_NE(out.find("0.0%"), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("inf"), std::string::npos);
}

TEST(Report, PrintSeriesPlainValues)
{
    std::ostringstream os;
    printSeries(os, "plain", {{"x", 1.5}});
    EXPECT_NE(os.str().find("1.5"), std::string::npos);
}

TEST(Report, PrintStackedRaggedValuesFillZero)
{
    // values is ragged: group g1 is missing label "y" entirely and
    // group g2 is missing altogether.  Missing cells print as 0.
    std::ostringstream os;
    printStacked(os, "ragged", {"g1", "g2"}, {"x", "y"}, {{1.0}});
    const std::string out = os.str();
    EXPECT_NE(out.find("g1"), std::string::npos);
    EXPECT_NE(out.find("g2"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
    EXPECT_NE(out.find("y"), std::string::npos);
    EXPECT_NE(out.find("1.0000"), std::string::npos);
    EXPECT_NE(out.find("0.0000"), std::string::npos);
}

TEST(Report, PrintStackedEmptyGroups)
{
    std::ostringstream os;
    printStacked(os, "no-groups", {}, {"only-label"}, {});
    const std::string out = os.str();
    EXPECT_NE(out.find("no-groups"), std::string::npos);
    EXPECT_NE(out.find("only-label"), std::string::npos);
}

TEST(Report, PrintStackedPercentZeroSum)
{
    std::ostringstream os;
    printStacked(os, "pct", {"g"}, {"a", "b"}, {{0.0, 0.0}}, true);
    const std::string out = os.str();
    EXPECT_NE(out.find("0.0%"), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
}

} // namespace
} // namespace tango::rt
