#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace tango {

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() > header_.size())
        cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::pct(double fraction, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); i++)
            width[i] = std::max(width[i], cells[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < ncols; i++) {
            const std::string &c = i < cells.size() ? cells[i] : std::string();
            os << std::left << std::setw(static_cast<int>(width[i]) + 2) << c;
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    os.flush();
}

void
Table::printCsv(std::ostream &os) const
{
    if (!title_.empty())
        os << "# " << title_ << "\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); i++) {
            if (i)
                os << ",";
            os << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    os.flush();
}

} // namespace tango
