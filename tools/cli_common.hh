/**
 * @file
 * Argument-parsing helpers shared by the tango-* command line tools
 * (tango-run, tango-trace, tango-prof): lowercase normalization, integer
 * flag parsing, platform validation, and the common
 * `[<policy>] <network>...` positional convention validated against the
 * single network registry (nn::models::runnableNames()).
 */

#ifndef TANGO_TOOLS_CLI_COMMON_HH
#define TANGO_TOOLS_CLI_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/job.hh"

namespace tango::tools {

/** @return @p s lowercased (ASCII). */
std::string lower(std::string s);

/** Parse a non-negative integer flag value; fatal()s on garbage. */
uint64_t parseUint(const char *flag, const std::string &v);

/** @return whether @p name (already lowercased) names a RunPolicy,
 *  including the "fig" alias for the figure benches' policy. */
bool isPolicyName(const std::string &name);

/** Resolve policy aliases: "fig" -> "bench", anything else unchanged. */
std::string canonicalPolicy(const std::string &name);

/** fatal()s unless @p platform is one of GP102 | GK210 | TX1. */
void validatePlatform(const std::string &platform);

/** Networks + policy picked from the positional arguments. */
struct NetSelection
{
    std::string policy;
    std::vector<std::string> nets;
};

/**
 * Interpret positional arguments as `[<policy>] <network>...`: a leading
 * positional naming a policy (or the "fig" alias) selects it, every
 * remaining one must be in nn::models::runnableNames().  fatal()s on an
 * unknown network or an empty network list.
 */
NetSelection parseNetArgs(const std::vector<std::string> &positional,
                          const std::string &default_policy = "bench");

/** Comma-separated runnableNames() — for usage/error text. */
std::string knownNetworksLine();

/**
 * The flag-derived parts of a job, shared by every tango-* tool; one
 * per invocation, combined with each positional network.
 */
struct JobSpecArgs
{
    std::string policy = "bench";
    std::string platform = "GP102";
    uint32_t seqLen = 0;       ///< 0 = model default (RNNs only)
    /** Accuracy tier name ("sim" | "replay" | "estimate"); "" resolves
     *  the TANGO_TIER environment knob, itself defaulting to "sim". */
    std::string tier;
    bool functional = false;
    bool profile = false;
    bool trace = false;
};

/** @return the rt::JobSpec for running @p net under @p args; fatal()s
 *  with the validation reason if the combination is not runnable. */
rt::JobSpec makeJobSpec(const std::string &net, const JobSpecArgs &args);

} // namespace tango::tools

#endif // TANGO_TOOLS_CLI_COMMON_HH
