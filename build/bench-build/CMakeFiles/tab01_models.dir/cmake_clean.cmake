file(REMOVE_RECURSE
  "../bench/tab01_models"
  "../bench/tab01_models.pdb"
  "CMakeFiles/tab01_models.dir/tab01_models.cc.o"
  "CMakeFiles/tab01_models.dir/tab01_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
