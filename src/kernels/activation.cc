#include "kernels/kernels.hh"

#include <cstring>

#include "common/logging.hh"
#include "kernels/builder.hh"
#include "kernels/emit_util.hh"

namespace tango::kern {

namespace {

constexpr float log2e = 1.4426950408889634f;

} // namespace

std::shared_ptr<Program>
buildMap(const MapDesc &d)
{
    Builder b(d.name);
    auto mSetup = b.mark("map.setup");
    b.constant(12);    // C H W

    Reg pA = b.param(0);
    Reg pB = b.param(1);       // second input / gamma / mean
    Reg pC = b.param(2);       // beta / var
    Reg pOut = b.param(3);

    Reg rH = b.ldc(DType::U32, 4);
    Reg rWd = b.ldc(DType::U32, 8);

    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);

    Reg k;
    switch (d.channelSrc) {
      case ChannelSrc::GridX:
        k = b.movS(SReg::CtaIdX);
        break;
      case ChannelSrc::GridZ:
        k = b.movS(SReg::CtaIdZ);
        break;
      case ChannelSrc::Loop:
        k = b.reg();
        break;
    }

    // Per-channel parameters, hoisted out of the pixel loops.
    Reg g = b.reg(), be = b.reg(), tOff = b.reg(), tAddr = b.reg();
    auto loadChannelParams = [&] {
        auto m = b.mark("map.params");
        if (d.kind == MapKind::Scale) {
            b.emit3i(Op::Shl, DType::U32, tOff, k, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pB, tOff);
            b.ld(DType::F32, Space::Global, g, tAddr);
            b.emit3(Op::Add, DType::U32, tAddr, pC, tOff);
            b.ld(DType::F32, Space::Global, be, tAddr);
        } else if (d.kind == MapKind::BatchNorm) {
            b.emit3i(Op::Shl, DType::U32, tOff, k, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pB, tOff);
            b.ld(DType::F32, Space::Global, be, tAddr);   // mean
            b.emit3(Op::Add, DType::U32, tAddr, pC, tOff);
            b.ld(DType::F32, Space::Global, g, tAddr);    // var
            b.emit3f(Op::Add, g, g, d.eps);
            b.emit2(Op::Rsqrt, DType::F32, g, g);         // 1/sqrt(var+eps)
        }
    };

    Reg tV = b.reg(), tV2 = b.reg(), tBase = b.reg();
    auto emitElem = [&](Reg x, Reg y) {
        {
            auto m = b.mark("map.idx");
            // idx = (k*H + y)*W + x
            b.emit3(Op::Mul, DType::U32, tBase, k, rH);
            b.emit3(Op::Add, DType::U32, tBase, tBase, y);
            b.emit3(Op::Mul, DType::U32, tBase, tBase, rWd);
            b.emit3(Op::Add, DType::U32, tBase, tBase, x);
            b.emit3i(Op::Shl, DType::U32, tBase, tBase, 2);
        }
        auto mElem = b.mark("map.elem");
        b.emit3(Op::Add, DType::U32, tAddr, pA, tBase);
        b.ld(DType::F32, Space::Global, tV, tAddr);
        switch (d.kind) {
          case MapKind::Relu:
            b.emit3f(Op::Max, tV, tV, 0.0f);
            break;
          case MapKind::Scale:
            // v = v*gamma + beta
            b.mad(DType::F32, tV, tV, g, be);
            break;
          case MapKind::BatchNorm:
            b.emit3(Op::Sub, DType::F32, tV, tV, be);
            b.emit3(Op::Mul, DType::F32, tV, tV, g);
            break;
          case MapKind::Eltwise:
            b.emit3(Op::Add, DType::U32, tAddr, pB, tBase);
            b.ld(DType::F32, Space::Global, tV2, tAddr);
            b.emit3(Op::Add, DType::F32, tV, tV, tV2);
            break;
        }
        if (d.relu)
            b.emit3f(Op::Max, tV, tV, 0.0f);
        {
            auto m = b.mark("map.store");
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tBase);
            b.st(DType::F32, Space::Global, tAddr, tV);
        }
    };

    auto withPixels = [&] {
        switch (d.pixelMap) {
          case PixelMap::StrideLoop: {
            Reg yy = b.reg(), xx = b.reg();
            detail::stridedLoop(b, yy, ty, rH, d.block.y, [&] {
                detail::stridedLoop(b, xx, tx, rWd, d.block.x,
                            [&] { emitElem(xx, yy); }, "map.pixloop");
            }, "map.pixloop");
            break;
          }
          case PixelMap::RowBlock: {
            Reg y = b.movS(SReg::CtaIdX);
            emitElem(tx, y);
            break;
          }
          case PixelMap::FromGridXY: {
            Reg bx = b.movS(SReg::CtaIdX);
            Reg by = b.movS(SReg::CtaIdY);
            Reg x = b.reg(), y = b.reg();
            b.emit3i(Op::Mul, DType::U32, x, bx, d.block.x);
            b.emit3(Op::Add, DType::U32, x, x, tx);
            b.emit3i(Op::Mul, DType::U32, y, by, d.block.y);
            b.emit3(Op::Add, DType::U32, y, y, ty);
            emitElem(x, y);
            break;
          }
          case PixelMap::TileOrigin:
            emitElem(tx, ty);
            break;
        }
    };

    if (d.channelSrc == ChannelSrc::Loop) {
        b.forLoopI(k, 0, d.C, [&] {
            loadChannelParams();
            withPixels();
        });
    } else {
        loadChannelParams();
        withPixels();
    }

    return b.finish();
}

KernelLaunch
makeMapLaunch(const MapDesc &d, uint32_t a, uint32_t bptr, uint32_t c,
              uint32_t out)
{
    KernelLaunch l;
    l.program = buildMap(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {a, bptr, c, out};
    l.constData = detail::packConst({d.C, d.H, d.W});
    return l;
}

std::shared_ptr<Program>
buildSoftmax(const SoftmaxDesc &d)
{
    Builder b(d.name);
    auto mSetup = b.mark("softmax.setup");
    b.constant(4);    // n
    const uint32_t T = d.threads;
    const uint32_t shOff = b.shared(T * 4);

    Reg pIn = b.param(0);
    Reg pOut = b.param(1);
    Reg rN = b.ldc(DType::U32, 0);
    Reg tx = b.movS(SReg::TidX);

    Reg tV = b.reg(), tOff = b.reg(), tAddr = b.reg();
    Reg m = b.reg(), s = b.reg(), i = b.reg();

    // Phase 1: strided local max, then an all-threads serial reduction of
    // the T partials in shared memory (the naive but branch-free pattern).
    {
        auto mPhase = b.mark("softmax.max");
        b.movF(m, -3.4e38f);
        detail::stridedLoop(b, i, tx, rN, T, [&] {
            b.emit3i(Op::Shl, DType::U32, tOff, i, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
            b.ld(DType::F32, Space::Global, tV, tAddr);
            b.emit3(Op::Max, DType::F32, m, m, tV);
        });
        b.emit3i(Op::Shl, DType::U32, tOff, tx, 2);
        b.emit3i(Op::Add, DType::U32, tAddr, tOff, shOff);
        b.st(DType::F32, Space::Shared, tAddr, m);
        b.bar();
        b.movF(m, -3.4e38f);
        b.forLoopI(i, 0, T, [&] {
            b.emit3i(Op::Shl, DType::U32, tAddr, i, 2);
            b.ld(DType::F32, Space::Shared, tV, tAddr, shOff);
            b.emit3(Op::Max, DType::F32, m, m, tV);
        });
        b.bar();
    }

    // Phase 2: out[i] = exp(in[i]-m) and strided local sum.
    {
        auto mPhase = b.mark("softmax.exp");
        b.movF(s, 0.0f);
        detail::stridedLoop(b, i, tx, rN, T, [&] {
            b.emit3i(Op::Shl, DType::U32, tOff, i, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
            b.ld(DType::F32, Space::Global, tV, tAddr);
            b.emit3(Op::Sub, DType::F32, tV, tV, m);
            b.emit3f(Op::Mul, tV, tV, log2e);
            b.emit2(Op::Ex2, DType::F32, tV, tV);
            b.emit3(Op::Add, DType::F32, s, s, tV);
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
            b.st(DType::F32, Space::Global, tAddr, tV);
        });
        b.emit3i(Op::Shl, DType::U32, tOff, tx, 2);
        b.emit3i(Op::Add, DType::U32, tAddr, tOff, shOff);
        b.st(DType::F32, Space::Shared, tAddr, s);
        b.bar();
        b.movF(s, 0.0f);
        b.forLoopI(i, 0, T, [&] {
            b.emit3i(Op::Shl, DType::U32, tAddr, i, 2);
            b.ld(DType::F32, Space::Shared, tV, tAddr, shOff);
            b.emit3(Op::Add, DType::F32, s, s, tV);
        });
        b.emit2(Op::Rcp, DType::F32, s, s);
    }

    // Phase 3: normalize in place.
    {
        auto mPhase = b.mark("softmax.norm");
        detail::stridedLoop(b, i, tx, rN, T, [&] {
            b.emit3i(Op::Shl, DType::U32, tOff, i, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
            b.ld(DType::F32, Space::Global, tV, tAddr);
            b.emit3(Op::Mul, DType::F32, tV, tV, s);
            b.st(DType::F32, Space::Global, tAddr, tV);
        });
    }

    return b.finish();
}

KernelLaunch
makeSoftmaxLaunch(const SoftmaxDesc &d, uint32_t in, uint32_t out)
{
    KernelLaunch l;
    l.program = buildSoftmax(d);
    l.grid = {1, 1, 1};
    l.block = {d.threads, 1, 1};
    l.params = {in, out};
    l.constData = detail::packConst({d.n});
    return l;
}

} // namespace tango::kern
