/**
 * @file
 * Characterize: the suite's command-line workhorse.
 *
 *     characterize [network] [--platform GP102|GK210|TX1]
 *                  [--sched gto|lrr|tlv] [--l1 KB] [--quant] [--exact]
 *
 * Runs one network (default: all seven) under the chosen configuration
 * and prints the full characterization: per-layer-type time, instruction
 * and data-type mixes, stall breakdown, cache statistics, power and
 * footprint — the per-network view behind every figure in the paper.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "profiler/profiler.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace {

using namespace tango;

struct Options
{
    std::vector<std::string> nets;
    std::string platform = "GP102";
    sim::SchedPolicy sched = sim::SchedPolicy::GTO;
    int l1Kb = -1;
    bool quant = false;
    bool exact = false;
};

void
usage()
{
    std::cout
        << "usage: characterize [network ...] [--platform GP102|GK210|"
           "TX1]\n"
           "                    [--sched gto|lrr|tlv] [--l1 KB] [--quant]"
           " [--exact]\n"
           "networks: gru lstm cifarnet alexnet squeezenet resnet vggnet"
           " mobilenet\n";
}

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--platform") {
            const char *v = next();
            if (!v)
                return false;
            opt.platform = v;
        } else if (a == "--sched") {
            const char *v = next();
            if (!v)
                return false;
            const std::string s = v;
            opt.sched = s == "lrr"   ? sim::SchedPolicy::LRR
                        : s == "tlv" ? sim::SchedPolicy::TLV
                                     : sim::SchedPolicy::GTO;
        } else if (a == "--l1") {
            const char *v = next();
            if (!v)
                return false;
            opt.l1Kb = std::atoi(v);
        } else if (a == "--quant") {
            opt.quant = true;
        } else if (a == "--exact") {
            opt.exact = true;
        } else if (a == "--help" || a == "-h") {
            return false;
        } else {
            opt.nets.push_back(a);
        }
    }
    if (opt.nets.empty())
        opt.nets = nn::models::allNames();
    return true;
}

void
characterize(const Options &opt, const std::string &name)
{
    sim::GpuConfig cfg = opt.platform == "GK210" ? sim::keplerGK210()
                         : opt.platform == "TX1" ? sim::maxwellTX1()
                                                 : sim::pascalGP102();
    if (opt.l1Kb >= 0)
        cfg.l1dBytes = static_cast<uint32_t>(opt.l1Kb) * 1024;
    cfg.scheduler = opt.sched;
    sim::Gpu gpu(cfg);

    rt::RunPolicy policy = rt::benchPolicy();
    if (opt.exact) {
        policy = rt::RunPolicy{};
        policy.sim.fullSim = true;
        policy.sim.maxResidentCtas = 0;
    }

    rt::NetRun run;
    if (name == "gru" || name == "lstm") {
        nn::RnnModel m = name == "gru" ? nn::models::buildGru()
                                       : nn::models::buildLstm();
        rt::Runtime rtm(gpu);
        run = rtm.runRnn(m, policy);
    } else {
        nn::Network net = nn::models::buildCnn(name);
        if (opt.quant) {
            nn::initWeights(net);
            nn::quantizeConvWeights(net);
        }
        rt::Runtime rtm(gpu);
        run = rtm.runCnn(net, policy);
    }

    std::cout << "\n##### " << name << " on " << cfg.name
              << " (l1=" << cfg.l1dBytes / 1024
              << "KB, sched=" << sim::schedName(cfg.scheduler)
              << (opt.quant ? ", quantized" : "") << ")\n";
    rt::printRunSummary(std::cout, run);
    rt::printSeries(std::cout, "time per layer type",
                    prof::layerTimeBreakdown(run), true);
    rt::printSeries(std::cout, "top operations",
                    prof::topN(prof::opBreakdown(run.totals), 10), true);
    rt::printSeries(std::cout, "data types",
                    prof::dtypeBreakdown(run.totals), true);
    rt::printSeries(std::cout, "stall cycles",
                    prof::stallBreakdown(run.totals), true);

    Table mem("memory system");
    mem.header({"metric", "value"});
    const double l1a = run.totals.get("mem.l1d.accesses");
    const double l2a = run.totals.get("mem.l2.accesses");
    mem.row({"L1D accesses", Table::num(l1a, 0)});
    mem.row({"L1D miss ratio",
             Table::pct(l1a > 0 ? run.totals.get("mem.l1d.misses") / l1a
                                : 0.0)});
    mem.row({"L2 accesses", Table::num(l2a, 0)});
    mem.row({"L2 miss ratio",
             Table::pct(l2a > 0 ? run.totals.get("mem.l2.misses") / l2a
                                : 0.0)});
    mem.row({"DRAM bursts", Table::num(run.totals.get("dram.accesses"),
                                       0)});
    mem.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opt;
    if (!parse(argc, argv, opt)) {
        usage();
        return 1;
    }
    for (const auto &name : opt.nets)
        characterize(opt, name);
    std::cout << "\ncharacterize: OK\n";
    return 0;
}
