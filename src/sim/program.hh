/**
 * @file
 * Kernel programs and launch descriptors.
 *
 * A Program is a straight vector of Instr plus resource metadata (register
 * count, shared/constant memory bytes).  A KernelLaunch pairs a program with
 * a CUDA-style grid/block geometry — the same (gridDim, blockDim) pairs the
 * paper lists in Table III.
 */

#ifndef TANGO_SIM_PROGRAM_HH
#define TANGO_SIM_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/isa.hh"

namespace tango::sim {

/** CUDA-style 3-component dimension. */
struct Dim3
{
    uint32_t x = 1, y = 1, z = 1;

    uint64_t count() const { return uint64_t(x) * y * z; }
    bool operator==(const Dim3 &o) const = default;
};

/**
 * DSL source mapping: which kernel-DSL statement emitted each instruction.
 *
 * The kernel builder's scoped mark("label") API records the active label
 * for every instruction it appends, so per-PC profile counters can be
 * rolled back up to the statement that emitted them (conv.mac,
 * gru.gate_sigmoid, ...).  Label ids are interned; id 0 is always the
 * empty (unlabeled) string.  pcLabel is in lock-step with Program::code;
 * an empty table means "no debug info" and every pc maps to label 0.
 */
struct DebugInfo
{
    std::vector<std::string> labels{std::string()}; ///< id -> label text
    std::vector<uint16_t> pcLabel;                  ///< pc -> label id

    /** Intern @p label, returning its id (0 for the empty string). */
    uint16_t intern(const std::string &label);

    /** @return label id of @p pc (0 when out of range / unlabeled). */
    uint16_t labelId(uint32_t pc) const
    {
        return pc < pcLabel.size() ? pcLabel[pc] : 0;
    }

    /** @return label text of @p pc ("" when unlabeled). */
    const std::string &labelAt(uint32_t pc) const
    {
        return labels[labelId(pc)];
    }
};

/** A compiled kernel program. */
struct Program
{
    std::string name;            ///< kernel name, e.g. "alexnet.conv1_1"
    std::vector<Instr> code;     ///< the instruction stream
    uint32_t numRegs = 0;        ///< architectural registers per thread
    uint32_t numPreds = 0;       ///< predicate registers per thread
    uint32_t smemBytes = 0;      ///< static shared memory per CTA
    uint32_t cmemBytes = 0;      ///< constant-bank bytes referenced
    DebugInfo debug;             ///< pc -> DSL statement label mapping

    /** @return maximum number of simultaneously live registers
     *  (linear-scan def/use approximation; always <= numRegs). */
    uint32_t maxLiveRegs() const;

    /** @return full disassembly, one instruction per line. */
    std::string disassemble() const;

    /** Sanity-check operands, targets and register bounds; panics on error. */
    void validate() const;
};

/**
 * One predecoded instruction: every per-instruction property the hot loops
 * of the interpreter and SM core would otherwise recompute per *dynamic*
 * instruction (unit lookups, scoreboard source-register extraction, result
 * latency, operand arity).  All fields are pure functions of the Instr, so
 * decoding once per kernel cannot change any simulated statistic.
 */
struct DecodedInstr
{
    Unit unit = Unit::SP;       ///< opUnitTyped(op, type)
    uint8_t dst = 0;            ///< Instr::dst
    /** Scoreboard source registers (instrSourceRegs; immediates and
     *  predicate-file indices excluded).  Also equals Step::numSrcRegs. */
    uint8_t srcRegs[3] = {};
    uint8_t numSrcRegs = 0;
    uint8_t nsrc = 2;           ///< operand arity of the ALU execute path
    bool writesReg = false;     ///< instrWritesReg
    bool isLdSt = false;        ///< Op::Ld or Op::St
    uint32_t latency = 1;       ///< opLatency(op)
};

/** A kernel program decoded once into a flat DecodedInstr array, indexed by
 *  pc in lock-step with Program::code. */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const Program &prog);

    const DecodedInstr &operator[](uint32_t pc) const { return ops_[pc]; }
    size_t size() const { return ops_.size(); }

  private:
    std::vector<DecodedInstr> ops_;
};

/** One kernel launch: program + geometry + parameter block. */
struct KernelLaunch
{
    std::shared_ptr<const Program> program;
    Dim3 grid;
    Dim3 block;
    /** Kernel parameters (32-bit words; pointers are global addresses). */
    std::vector<uint32_t> params;
    /** Constant-bank contents for this launch (dims, scales, ...). */
    std::vector<uint8_t> constData;

    uint64_t totalThreads() const { return grid.count() * block.count(); }
    uint32_t threadsPerCta() const
    {
        return static_cast<uint32_t>(block.count());
    }
    uint32_t warpsPerCta() const { return (threadsPerCta() + 31) / 32; }
};

} // namespace tango::sim

#endif // TANGO_SIM_PROGRAM_HH
