# Empty compiler generated dependencies file for test_mobilenet.
# This may be replaced when dependencies are built.
