file(REMOVE_RECURSE
  "../bench/fig16_alexnet_scheduler_layers"
  "../bench/fig16_alexnet_scheduler_layers.pdb"
  "CMakeFiles/fig16_alexnet_scheduler_layers.dir/fig16_alexnet_scheduler_layers.cc.o"
  "CMakeFiles/fig16_alexnet_scheduler_layers.dir/fig16_alexnet_scheduler_layers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_alexnet_scheduler_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
