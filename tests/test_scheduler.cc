/**
 * @file
 * Warp scheduler unit tests: GTO greediness and oldest-first fallback,
 * LRR rotation and fairness, TLV active-set management.
 */

#include <gtest/gtest.h>

#include "sim/scheduler.hh"

namespace tango::sim {
namespace {

std::vector<uint64_t>
agesInOrder(uint32_t n)
{
    std::vector<uint64_t> a(n);
    for (uint32_t i = 0; i < n; i++)
        a[i] = i;
    return a;
}

TEST(Gto, StaysGreedyOnSameWarp)
{
    auto s = makeScheduler(SchedPolicy::GTO);
    s->reset(4);
    std::vector<uint8_t> issuable = {1, 1, 1, 1};
    const auto ages = agesInOrder(4);
    const int first = s->pick(issuable, ages);
    for (int k = 0; k < 5; k++)
        EXPECT_EQ(s->pick(issuable, ages), first);
}

TEST(Gto, FallsBackToOldest)
{
    auto s = makeScheduler(SchedPolicy::GTO);
    s->reset(4);
    // Ages: slot 2 is oldest.
    std::vector<uint64_t> ages = {5, 7, 1, 9};
    std::vector<uint8_t> issuable = {1, 1, 1, 1};
    EXPECT_EQ(s->pick(issuable, ages), 2);
    // Current warp stalls: next-oldest issuable picked.
    issuable[2] = 0;
    EXPECT_EQ(s->pick(issuable, ages), 0);
    // And it becomes the new greedy target.
    issuable[2] = 1;
    EXPECT_EQ(s->pick(issuable, ages), 0);
}

TEST(Gto, RetirementClearsGreedyTarget)
{
    auto s = makeScheduler(SchedPolicy::GTO);
    s->reset(3);
    std::vector<uint64_t> ages = {0, 1, 2};
    std::vector<uint8_t> issuable = {1, 1, 1};
    EXPECT_EQ(s->pick(issuable, ages), 0);
    s->notifyRetired(0);
    issuable[0] = 0;
    EXPECT_EQ(s->pick(issuable, ages), 1);
}

TEST(Lrr, RotatesThroughAllWarps)
{
    auto s = makeScheduler(SchedPolicy::LRR);
    s->reset(4);
    std::vector<uint8_t> issuable = {1, 1, 1, 1};
    const auto ages = agesInOrder(4);
    std::vector<int> picks;
    for (int k = 0; k < 8; k++)
        picks.push_back(s->pick(issuable, ages));
    EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Lrr, SkipsStalledWarps)
{
    auto s = makeScheduler(SchedPolicy::LRR);
    s->reset(4);
    std::vector<uint8_t> issuable = {1, 0, 1, 0};
    const auto ages = agesInOrder(4);
    EXPECT_EQ(s->pick(issuable, ages), 0);
    EXPECT_EQ(s->pick(issuable, ages), 2);
    EXPECT_EQ(s->pick(issuable, ages), 0);
}

TEST(Lrr, NoneIssuable)
{
    auto s = makeScheduler(SchedPolicy::LRR);
    s->reset(3);
    std::vector<uint8_t> issuable = {0, 0, 0};
    EXPECT_EQ(s->pick(issuable, agesInOrder(3)), -1);
}

TEST(Tlv, PrefersActiveSet)
{
    auto s = makeScheduler(SchedPolicy::TLV);
    s->reset(16);   // active set = first 8
    std::vector<uint8_t> issuable(16, 1);
    const auto ages = agesInOrder(16);
    // All picks stay within the initial active set.
    for (int k = 0; k < 16; k++)
        EXPECT_LT(s->pick(issuable, ages), 8);
}

TEST(Tlv, PromotesWhenActiveSetStalls)
{
    auto s = makeScheduler(SchedPolicy::TLV);
    s->reset(16);
    std::vector<uint8_t> issuable(16, 0);
    for (uint32_t i = 8; i < 16; i++)
        issuable[i] = 1;
    const auto ages = agesInOrder(16);
    const int p = s->pick(issuable, ages);
    EXPECT_GE(p, 8);
    EXPECT_EQ(p, 8);   // oldest pending
}

TEST(Tlv, DemotionOnLongLatency)
{
    auto s = makeScheduler(SchedPolicy::TLV);
    s->reset(4);
    std::vector<uint8_t> issuable = {1, 1, 1, 1};
    const auto ages = agesInOrder(4);
    const int first = s->pick(issuable, ages);
    s->notifyLongLatency(static_cast<uint32_t>(first));
    // The demoted warp is not picked while others are issuable.
    for (int k = 0; k < 3; k++)
        EXPECT_NE(s->pick(issuable, ages), first);
}

TEST(AllPolicies, EmptyAndSingleSlot)
{
    for (auto pol : {SchedPolicy::GTO, SchedPolicy::LRR,
                     SchedPolicy::TLV}) {
        auto s = makeScheduler(pol);
        s->reset(1);
        std::vector<uint8_t> one = {1};
        EXPECT_EQ(s->pick(one, agesInOrder(1)), 0) << schedName(pol);
        one[0] = 0;
        EXPECT_EQ(s->pick(one, agesInOrder(1)), -1) << schedName(pol);
    }
}

} // namespace
} // namespace tango::sim
