/**
 * @file
 * tango-serve — the simulation-as-a-service daemon.
 *
 *   tango-serve [options]
 *
 * Listens on TCP, speaks the length-prefixed JSON protocol of
 * serve/protocol.hh, and serves rt::JobSpec run requests from an
 * rt::Engine worker pool with a keyed result cache: identical jobs in
 * flight are deduplicated onto one simulation, repeats are cache hits,
 * and admission is bounded (--queue-max) so a request storm gets fast
 * "queue_full" rejects instead of an unbounded backlog.
 *
 * SIGTERM/SIGINT (or a client "shutdown" request) drains gracefully:
 * new run requests are refused with "draining", in-flight ones finish
 * and are answered, the disk spill is flushed, and the process exits 0.
 *
 * Observability: the "metrics" frame serves the process-wide registry
 * as a Prometheus scrape (watch it with tango-top), and
 * TANGO_METRICS_DUMP=<path>,<ms> additionally writes periodic JSON
 * snapshots for post-mortems.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "cli_common.hh"
#include "common/logging.hh"
#include "metrics/metrics.hh"
#include "serve/server.hh"

namespace {

using namespace tango;

// The one thing a signal handler may do: poke the drain self-pipe.
volatile int g_drainFd = -1;

extern "C" void
onSignal(int)
{
    const int fd = g_drainFd;
    if (fd >= 0) {
        const char c = 'd';
        (void)!::write(fd, &c, 1);
    }
}

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-serve [options]\n"
        "\n"
        "options:\n"
        "  --host H         listen address (default 127.0.0.1)\n"
        "  --port N         TCP port; 0 = ephemeral (default 0)\n"
        "  --port-file F    write the bound port to F (for scripts)\n"
        "  --queue-max N    max simulations in flight before run\n"
        "                   requests are rejected (default 32)\n"
        "  --threads N      engine worker threads (default: cores)\n"
        "  --cache FILE     persistent result cache (JSON spill)\n"
        "  -h, --help       this message\n"
        "\n"
        "environment: TANGO_SERVE_HOST, TANGO_SERVE_PORT,\n"
        "TANGO_SERVE_QUEUE_MAX, TANGO_ENGINE_THREADS, TANGO_ENGINE_CACHE,\n"
        "TANGO_ENGINE_CACHE_MAX_MB (flags win over environment).\n"
        "TANGO_METRICS_DUMP=<path>,<ms> writes a periodic JSON metrics\n"
        "snapshot; TANGO_LOG_JSON=1 switches log lines to JSON.  A live\n"
        "Prometheus scrape is served on the \"metrics\" frame (tango-top).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opt = serve::ServerOptions::fromEnv();
    std::string portFile;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--host") {
            opt.host = value();
        } else if (arg == "--port") {
            opt.port = static_cast<uint16_t>(
                tools::parseUint("--port", value()));
        } else if (arg == "--port-file") {
            portFile = value();
        } else if (arg == "--queue-max") {
            opt.queueMax = static_cast<unsigned>(
                tools::parseUint("--queue-max", value()));
            if (opt.queueMax == 0)
                fatal("--queue-max must be > 0");
        } else if (arg == "--threads") {
            opt.engine.threads = static_cast<unsigned>(
                tools::parseUint("--threads", value()));
        } else if (arg == "--cache") {
            opt.engine.cachePath = value();
        } else {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    // Instantiate the registry up front so TANGO_METRICS_DUMP starts
    // its periodic snapshot writer even before the first request.
    metrics::Registry::global();

    serve::Server server(opt);
    std::string err;
    if (!server.start(&err))
        fatal("tango-serve: %s", err.c_str());

    if (!portFile.empty()) {
        FILE *f = std::fopen(portFile.c_str(), "w");
        if (!f)
            fatal("cannot write --port-file '%s'", portFile.c_str());
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
    }

    g_drainFd = server.drainFd();
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    inform("tango-serve: listening on %s:%u (queue-max %u, %u worker%s)",
           opt.host.c_str(), server.port(), opt.queueMax,
           server.engine().threads(),
           server.engine().threads() == 1 ? "" : "s");

    server.waitDrained();

    const serve::Server::Metrics m = server.metrics();
    inform("tango-serve: drained after %llu request%s "
           "(%llu sim, %llu join, %llu mem, %llu disk, %llu rejected)",
           static_cast<unsigned long long>(m.requests),
           m.requests == 1 ? "" : "s",
           static_cast<unsigned long long>(m.servedSim),
           static_cast<unsigned long long>(m.servedJoin),
           static_cast<unsigned long long>(m.servedMem),
           static_cast<unsigned long long>(m.servedDisk),
           static_cast<unsigned long long>(m.rejectedQueueFull +
                                           m.rejectedDraining));
    return 0;
}
