# Empty compiler generated dependencies file for fig01_layer_time_breakdown.
# This may be replaced when dependencies are built.
