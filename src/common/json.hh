/**
 * @file
 * Minimal JSON reading and writing shared by every tango serialization
 * surface: the rt::Engine disk spill (runtime/run_cache), the JobSpec /
 * JobResult wire format (runtime/job) and the tango-serve framed
 * protocol (serve/protocol).
 *
 * The writer is a handful of append helpers over std::string — doubles
 * are written with 17 significant digits so every value round-trips
 * bit-exactly.  The reader is a small recursive-descent parser whose
 * token-level primitives (peek/next/expect/string/value) are public so
 * callers can walk a document incrementally (the run cache uses this to
 * salvage the valid prefix of a damaged file).
 */

#ifndef TANGO_COMMON_JSON_HH
#define TANGO_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tango::json {

/** Append @p s as a quoted, escaped JSON string. */
void appendEscaped(std::string &out, const std::string &s);

/** Append @p v with 17 significant digits (exact double round trip). */
void appendDouble(std::string &out, double v);

/** Append @p v as a decimal integer. */
void appendU64(std::string &out, uint64_t v);

/** Emits `"name":value` sequences inside one JSON object. */
class ObjWriter
{
  public:
    explicit ObjWriter(std::string &out) : out_(out) { out_ += '{'; }
    void close() { out_ += '}'; }

    void key(const char *name)
    {
        if (!first_)
            out_ += ',';
        first_ = false;
        // Escape: keys are usually literals, but metric series ids
        // carry quoted label values (name{k="v"}).
        appendEscaped(out_, name);
        out_ += ':';
    }
    void num(const char *name, double v) { key(name); appendDouble(out_, v); }
    void u64(const char *name, uint64_t v) { key(name); appendU64(out_, v); }
    void boolean(const char *name, bool v)
    {
        key(name);
        out_ += v ? "true" : "false";
    }
    void str(const char *name, const std::string &v)
    {
        key(name);
        appendEscaped(out_, v);
    }

  private:
    std::string &out_;
    bool first_ = true;
};

/** A recursive-descent JSON reader over an in-memory buffer.
 *  Parse errors throw std::runtime_error. */
class Reader
{
  public:
    struct Value
    {
        enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
        bool b = false;
        double num = 0.0;
        std::string str;
        std::vector<Value> arr;
        std::vector<std::pair<std::string, Value>> obj;

        const Value *find(const char *key) const
        {
            for (const auto &[k, v] : obj) {
                if (k == key)
                    return &v;
            }
            return nullptr;
        }
        double numOr(const char *key, double dflt = 0.0) const
        {
            const Value *v = find(key);
            return v && v->kind == Kind::Num ? v->num : dflt;
        }
        uint64_t u64Or(const char *key, uint64_t dflt = 0) const
        {
            return static_cast<uint64_t>(numOr(key, double(dflt)));
        }
        bool boolOr(const char *key, bool dflt = false) const
        {
            const Value *v = find(key);
            return v && v->kind == Kind::Bool ? v->b : dflt;
        }
        std::string strOr(const char *key) const
        {
            const Value *v = find(key);
            return v && v->kind == Kind::Str ? v->str : std::string();
        }
    };

    explicit Reader(const std::string &text) : s_(text) {}

    /** Parse the whole buffer as one document (no trailing bytes). */
    Value parse()
    {
        Value v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }
    char next()
    {
        const char c = peek();
        pos_++;
        return c;
    }
    void expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        pos_++;
    }

    std::string string();
    Value value();

  private:
    [[noreturn]] void fail(const char *what);
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            pos_++;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** Serialize a parsed Value back to compact JSON (numbers with 17
 *  significant digits, object fields in parsed order). */
void appendValue(std::string &out, const Reader::Value &v);

} // namespace tango::json

#endif // TANGO_COMMON_JSON_HH
