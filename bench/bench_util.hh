/**
 * @file
 * Shared infrastructure for the benchmark harness.
 *
 * Every bench binary reproduces one table or figure of the paper: it
 * prefetches the relevant simulation points into the process-wide
 * rt::Engine (which shards them across worker threads and memoizes the
 * results, so repeated queries are free), prints the figure's series as
 * aligned tables, and registers google-benchmark entries whose counters
 * carry the headline numbers (so the values also appear in
 * benchmark-formatted output and JSON).
 *
 * Environment knobs (see rt::EngineOptions::fromEnv):
 *   TANGO_ENGINE_THREADS  worker count (default: hardware concurrency)
 *   TANGO_ENGINE_CACHE    JSON result-spill path; repeated invocations
 *                         then skip re-simulation entirely
 */

#ifndef TANGO_BENCH_BENCH_UTIL_HH
#define TANGO_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "kernels/kernels.hh"
#include "nn/models/models.hh"
#include "profiler/profiler.hh"
#include "runtime/engine.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango::bench {

using rt::RunKey;
using rt::makeConfig;

/** The process-wide simulation engine every bench binary shares. */
inline rt::Engine &
engine()
{
    return rt::Engine::global();
}

/** Submit simulation points ahead of use so the engine's workers
 *  simulate them concurrently; later netRun() calls only wait. */
inline void
prefetch(const std::vector<RunKey> &keys)
{
    engine().prefetch(keys);
}

/** Run (or recall) a network under a configuration. */
inline const rt::NetRun &
netRun(const RunKey &key)
{
    return engine().run(key);
}

/** Register a no-op benchmark whose counter carries a reproduced value. */
inline void
registerValue(const std::string &name, const std::string &counter,
              double value)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [counter, value](benchmark::State &state) {
            for (auto _ : state) {
                benchmark::DoNotOptimize(value);
            }
            state.counters[counter] = value;
        })
        ->Iterations(1);
}

/** A real timing benchmark: simulate one small conv kernel end to end
 *  (measures this machine's simulation throughput). */
inline void
registerSimSpeed()
{
    benchmark::RegisterBenchmark(
        "BM_SimulateConvKernel", [](benchmark::State &state) {
            sim::Gpu gpu(sim::pascalGP102());
            kern::ConvDesc d;
            d.C = 3;
            d.H = d.W = 12;
            d.K = 4;
            d.R = d.S = 3;
            d.pad = 1;
            d.filterSrc = kern::ChannelSrc::GridX;
            d.pixelMap = kern::PixelMap::TileOrigin;
            d.grid = {4, 1, 1};
            d.block = {12, 12, 1};
            const uint32_t in = gpu.mem().allocate(4 * 3 * 12 * 12);
            const uint32_t w = gpu.mem().allocate(4 * 4 * 3 * 3 * 3);
            const uint32_t b = gpu.mem().allocate(4 * 4);
            const uint32_t out = gpu.mem().allocate(4 * 4 * 12 * 12);
            auto launch = kern::makeConvLaunch(d, in, w, b, out);
            sim::SimPolicy p;
            p.fullSim = true;
            uint64_t instr = 0;
            for (auto _ : state) {
                auto ks = gpu.launch(launch, p);
                instr += static_cast<uint64_t>(ks.stats.get("issued"));
            }
            state.counters["warp_instrs_per_s"] = benchmark::Counter(
                static_cast<double>(instr), benchmark::Counter::kIsRate);
        });
}

/** Standard bench epilogue: init + run google-benchmark. */
inline int
runHarness(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace tango::bench

#endif // TANGO_BENCH_BENCH_UTIL_HH
