#include "estimate/model.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/json.hh"
#include "common/logging.hh"
#include "runtime/run_cache.hh"
#include "sim/digest.hh"

namespace tango::estimate {

namespace {

using json::ObjWriter;
using json::Reader;

/** Ridge strength.  Tiny: it only conditions the normal equations when a
 *  family has fewer distinct shapes than weights; it does not noticeably
 *  bias a well-populated fit. */
constexpr double kRidgeLambda = 1e-4;

const char *const kFamilyNames[kNumFamilies] = {
    "conv", "fc", "pool", "norm", "activation", "rnn-cell",
};

const char *const kTargetNames[kNumTargets] = {
    "cycles", "stalls", "l1dMisses", "l2Misses", "dramAccesses", "energyJ",
};

/** Parameter elements from the layer *description* — Layer::paramCount()
 *  counts loaded tensors, which timing-only model builds leave empty. */
uint64_t
paramElems(const nn::Layer &l)
{
    switch (l.kind) {
    case nn::LayerKind::Conv:
        return uint64_t(l.K) * l.C * l.R * l.S + (l.bias ? l.K : 0);
    case nn::LayerKind::Depthwise:
        return uint64_t(l.C) * l.R * l.S + (l.bias ? l.C : 0);
    case nn::LayerKind::FC:
        return uint64_t(l.outN) * l.inN + (l.bias ? l.outN : 0);
    case nn::LayerKind::BatchNorm:
    case nn::LayerKind::Scale:
        return 2ull * l.C;
    default:
        return 0;
    }
}

} // namespace

// ---------------------------------------------------------------- families

const char *
familyName(Family f)
{
    return kFamilyNames[static_cast<int>(f)];
}

bool
familyFromName(const std::string &name, Family &out)
{
    for (int i = 0; i < kNumFamilies; i++) {
        if (name == kFamilyNames[i]) {
            out = static_cast<Family>(i);
            return true;
        }
    }
    return false;
}

bool
layerFamily(nn::LayerKind kind, Family &out)
{
    switch (kind) {
    case nn::LayerKind::Conv:
    case nn::LayerKind::Depthwise:
        out = Family::Conv;
        return true;
    case nn::LayerKind::FC:
        out = Family::Fc;
        return true;
    case nn::LayerKind::Pool:
        out = Family::Pool;
        return true;
    case nn::LayerKind::LRN:
    case nn::LayerKind::BatchNorm:
    case nn::LayerKind::Scale:
        out = Family::Norm;
        return true;
    case nn::LayerKind::ReLU:
    case nn::LayerKind::Eltwise:
    case nn::LayerKind::Softmax:
        out = Family::Activation;
        return true;
    case nn::LayerKind::Input:
    case nn::LayerKind::Concat:
        return false;   // no kernels, nothing to model
    }
    return false;
}

// ---------------------------------------------------------------- features

std::string
Features::key() const
{
    std::string out;
    char buf[32];
    for (int i = 0; i < kNumFeatures; i++) {
        std::snprintf(buf, sizeof buf, "%.17g", v[i]);
        if (i)
            out += ',';
        out += buf;
    }
    return out;
}

Features
layerFeatures(const nn::Layer &l)
{
    Features f;
    const auto &h = l.hint;
    const uint64_t gridCtas = uint64_t(std::max(1u, h.grid.x)) *
                              std::max(1u, h.grid.y) *
                              std::max(1u, h.grid.z);
    const uint64_t tileKernels = std::max<size_t>(1, h.tiles.size());
    const uint64_t filterKernels =
        h.filtersPerKernel
            ? (l.K + h.filtersPerKernel - 1) / h.filtersPerKernel
            : 1;
    const uint64_t threads = std::max<uint64_t>(
        1, uint64_t(std::max(1u, h.block.x)) * std::max(1u, h.block.y) *
               std::max(1u, h.block.z));

    const bool fcShaped = l.kind == nn::LayerKind::FC ||
                          (l.C == 0 && l.inN != 0);
    f.v[0] = double(l.macs());
    f.v[1] = double(l.outputSize());
    f.v[2] = fcShaped ? double(l.inN)
                      : double(uint64_t(l.C) * l.H * l.W);
    f.v[3] = double(paramElems(l));
    f.v[4] = double(gridCtas * tileKernels * filterKernels);
    f.v[5] = double(threads);
    f.v[6] = double(std::max<uint64_t>(1, uint64_t(l.R) * l.S));
    f.v[7] = double(fcShaped ? l.inN : l.C);
    return f;
}

Features
rnnCellFeatures(const nn::RnnModel &m)
{
    // Mirrors lowerRnn(): GRU launches a fixed 10x10 block, LSTM one
    // thread per hidden unit; both one CTA per step.
    const uint64_t gates = m.lstm ? 4 : 3;
    const uint64_t in = uint64_t(m.inputSize) + m.hidden;
    Features f;
    f.v[0] = double(gates * m.hidden * in);
    f.v[1] = double(m.hidden) * (m.lstm ? 2.0 : 1.0);   // h (and c)
    f.v[2] = double(in);
    f.v[3] = double(gates * m.hidden * (in + 1));
    f.v[4] = 1.0;
    f.v[5] = m.lstm ? double(m.hidden) : 100.0;
    f.v[6] = 1.0;
    f.v[7] = double(m.hidden);
    return f;
}

Features
rnnReadoutFeatures(const nn::RnnModel &m)
{
    // The dense readout (hidden -> 1) launches one hidden-wide CTA.
    Features f;
    f.v[0] = double(m.hidden);
    f.v[1] = 1.0;
    f.v[2] = double(m.hidden);
    f.v[3] = double(m.hidden) + 1.0;
    f.v[4] = 1.0;
    f.v[5] = double(m.hidden);
    f.v[6] = 1.0;
    f.v[7] = double(m.hidden);
    return f;
}

// ----------------------------------------------------------------- targets

const char *
targetName(Target t)
{
    return kTargetNames[static_cast<int>(t)];
}

// ------------------------------------------------------------------ models

bool
FamilyModel::lookup(const Features &f, double out[kNumTargets]) const
{
    TANGO_ASSERT(fitted, "lookup() on an unfitted family model");
    const std::string key = f.key();
    const auto it = std::lower_bound(
        table.begin(), table.end(), key,
        [](const TableEntry &e, const std::string &k) { return e.key < k; });
    if (it == table.end() || it->key != key)
        return false;
    for (int ti = 0; ti < kNumTargets; ti++)
        out[ti] = std::max(0.0, std::expm1(it->logTarget[ti]));
    return true;
}

double
FamilyModel::predict(Target t, const Features &f) const
{
    TANGO_ASSERT(fitted, "predict() on an unfitted family model");
    const TargetModel &m = targets[static_cast<int>(t)];
    double y = m.w[0];
    for (int i = 0; i < kNumFeatures; i++)
        y += m.w[i + 1] * std::log1p(f.v[i]);
    return std::max(0.0, std::expm1(y));
}

std::string
Bundle::toJson() const
{
    std::string out;
    ObjWriter o(out);
    o.u64("version", kBundleVersion);
    o.u64("statsVersion", rt::kSimStatsVersion);
    o.str("policy", policy);
    o.str("platform", platform);
    o.key("families");
    {
        ObjWriter fams(out);
        for (int fi = 0; fi < kNumFamilies; fi++) {
            const FamilyModel &fm = families[fi];
            if (!fm.fitted)
                continue;
            fams.key(kFamilyNames[fi]);
            ObjWriter fo(out);
            fo.u64("trainRows", fm.trainRows);
            fo.u64("holdoutRows", fm.holdoutRows);
            fo.num("tableP50", fm.tableP50);
            fo.num("tableP95", fm.tableP95);
            fo.key("table");
            out += '[';
            for (size_t ei = 0; ei < fm.table.size(); ei++) {
                const TableEntry &e = fm.table[ei];
                if (ei)
                    out += ',';
                out += '[';
                for (int i = 0; i < kNumFeatures; i++) {
                    if (i)
                        out += ',';
                    json::appendDouble(out, e.feat.v[i]);
                }
                for (int ti = 0; ti < kNumTargets; ti++) {
                    out += ',';
                    json::appendDouble(out, e.logTarget[ti]);
                }
                out += ',';
                json::appendU64(out, e.rows);
                out += ']';
            }
            out += ']';
            fo.key("targets");
            {
                ObjWriter tgts(out);
                for (int ti = 0; ti < kNumTargets; ti++) {
                    const TargetModel &tm = fm.targets[ti];
                    tgts.key(kTargetNames[ti]);
                    ObjWriter to(out);
                    to.key("w");
                    out += '[';
                    for (int wi = 0; wi <= kNumFeatures; wi++) {
                        if (wi)
                            out += ',';
                        json::appendDouble(out, tm.w[wi]);
                    }
                    out += ']';
                    to.num("p50", tm.p50);
                    to.num("p95", tm.p95);
                    to.close();
                }
                tgts.close();
            }
            fo.close();
        }
        fams.close();
    }
    o.close();
    return out;
}

bool
Bundle::fromJson(const std::string &text, Bundle &out, std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    Reader::Value v;
    try {
        v = Reader(text).parse();
    } catch (const std::exception &e) {
        return fail(e.what());
    }
    if (v.kind != Reader::Value::Kind::Obj)
        return fail("bundle must be a JSON object");

    const int version = static_cast<int>(v.u64Or("version", 0));
    if (version != kBundleVersion)
        return fail("bundle version " + std::to_string(version) +
                    " != expected " + std::to_string(kBundleVersion));
    const int stats = static_cast<int>(v.u64Or("statsVersion", 0));
    if (stats != rt::kSimStatsVersion)
        return fail("bundle stats version " + std::to_string(stats) +
                    " != simulator " +
                    std::to_string(rt::kSimStatsVersion) +
                    " (refit with tango-fit)");

    Bundle b;
    b.policy = v.strOr("policy");
    b.platform = v.strOr("platform");
    const Reader::Value *fams = v.find("families");
    if (!fams || fams->kind != Reader::Value::Kind::Obj)
        return fail("bundle is missing its 'families' object");
    for (const auto &[name, fv] : fams->obj) {
        Family fam;
        if (!familyFromName(name, fam))
            return fail("unknown family '" + name + "'");
        FamilyModel &fm = b.family(fam);
        fm.fitted = true;
        fm.trainRows = fv.u64Or("trainRows");
        fm.holdoutRows = fv.u64Or("holdoutRows");
        fm.tableP50 = fv.numOr("tableP50");
        fm.tableP95 = fv.numOr("tableP95");
        const Reader::Value *tbl = fv.find("table");
        if (!tbl || tbl->kind != Reader::Value::Kind::Arr)
            return fail("family '" + name + "' has no shape table");
        for (const Reader::Value &ev : tbl->arr) {
            if (ev.kind != Reader::Value::Kind::Arr ||
                ev.arr.size() != size_t(kNumFeatures) + kNumTargets + 1)
                return fail("family '" + name + "': bad table entry");
            TableEntry e;
            for (int i = 0; i < kNumFeatures; i++)
                e.feat.v[i] = ev.arr[i].num;
            for (int ti = 0; ti < kNumTargets; ti++)
                e.logTarget[ti] = ev.arr[kNumFeatures + ti].num;
            e.rows = static_cast<uint32_t>(
                ev.arr[kNumFeatures + kNumTargets].num);
            e.key = e.feat.key();
            fm.table.push_back(std::move(e));
        }
        std::sort(fm.table.begin(), fm.table.end(),
                  [](const TableEntry &a, const TableEntry &b2) {
                      return a.key < b2.key;
                  });
        const Reader::Value *tgts = fv.find("targets");
        if (!tgts || tgts->kind != Reader::Value::Kind::Obj)
            return fail("family '" + name + "' has no targets");
        for (int ti = 0; ti < kNumTargets; ti++) {
            const Reader::Value *tv = tgts->find(kTargetNames[ti]);
            if (!tv)
                return fail("family '" + name + "' is missing target '" +
                            std::string(kTargetNames[ti]) + "'");
            TargetModel &tm = fm.targets[ti];
            const Reader::Value *w = tv->find("w");
            if (!w || w->kind != Reader::Value::Kind::Arr ||
                w->arr.size() != size_t(kNumFeatures) + 1) {
                return fail("family '" + name + "' target '" +
                            std::string(kTargetNames[ti]) +
                            "': bad weight vector");
            }
            for (size_t wi = 0; wi < w->arr.size(); wi++)
                tm.w[wi] = w->arr[wi].num;
            tm.p50 = tv->numOr("p50");
            tm.p95 = tv->numOr("p95");
        }
    }
    out = std::move(b);
    return true;
}

std::string
Bundle::fileName(const std::string &policy, const std::string &platform)
{
    return policy + "_" + platform + ".json";
}

// ----------------------------------------------------------------- fitting

namespace {

/** Solve (A)x = b for a small dense symmetric system by Gaussian
 *  elimination with partial pivoting.  N = kNumFeatures + 1. */
constexpr int kN = kNumFeatures + 1;

void
solveNormal(double a[kN][kN], double b[kN], double out[kN])
{
    int perm[kN];
    for (int i = 0; i < kN; i++)
        perm[i] = i;
    for (int col = 0; col < kN; col++) {
        int best = col;
        for (int r = col + 1; r < kN; r++) {
            if (std::fabs(a[r][col]) > std::fabs(a[best][col]))
                best = r;
        }
        if (best != col) {
            for (int c = 0; c < kN; c++)
                std::swap(a[col][c], a[best][c]);
            std::swap(b[col], b[best]);
        }
        const double pivot = a[col][col];
        if (std::fabs(pivot) < 1e-12)
            continue;   // ridge keeps this from mattering in practice
        for (int r = col + 1; r < kN; r++) {
            const double m = a[r][col] / pivot;
            if (m == 0.0)
                continue;
            for (int c = col; c < kN; c++)
                a[r][c] -= m * a[col][c];
            b[r] -= m * b[col];
        }
    }
    for (int r = kN - 1; r >= 0; r--) {
        double sum = b[r];
        for (int c = r + 1; c < kN; c++)
            sum -= a[r][c] * out[c];
        out[r] = std::fabs(a[r][r]) < 1e-12 ? 0.0 : sum / a[r][r];
    }
}

void
phiOf(const Features &f, double phi[kN])
{
    phi[0] = 1.0;
    for (int i = 0; i < kNumFeatures; i++)
        phi[i + 1] = std::log1p(f.v[i]);
}

double
relErr(double pred, double truth)
{
    return std::fabs(pred - truth) / std::max(truth, 1.0);
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * double(sorted.size() - 1) + 0.5));
    return sorted[idx];
}

} // namespace

Bundle
fit(const std::vector<Row> &rows, const std::string &policy,
    const std::string &platform)
{
    Bundle b;
    b.policy = policy;
    b.platform = platform;

    for (int fi = 0; fi < kNumFamilies; fi++) {
        const Family fam = static_cast<Family>(fi);

        // Split by feature identity, not by row: the RNN sweep emits one
        // identical cell row per timestep, and letting copies of one
        // shape land on both sides of the split would make the holdout
        // error a lie.
        std::vector<const Row *> train, holdout;
        for (const Row &r : rows) {
            if (r.family != fam)
                continue;
            uint64_t h = sim::digest::kInit;
            const std::string key = r.feat.key();
            sim::digest::mixBytes(h, key.data(), key.size());
            ((h % 5) == 4 ? holdout : train).push_back(&r);
        }
        if (train.empty() && holdout.empty())
            continue;   // family absent from the sweep: stays unfitted
        if (train.empty())
            train.swap(holdout);

        FamilyModel &fm = b.family(fam);
        fm.fitted = true;
        fm.trainRows = train.size();
        fm.holdoutRows = holdout.size();
        // No holdout (tiny sweep): bounds degrade to train-set error,
        // honestly labelled by holdoutRows == 0.
        const std::vector<const Row *> &eval =
            holdout.empty() ? train : holdout;

        // The exact-shape table memorizes EVERY swept shape (the split
        // above only keeps the regressors' holdout honest; memorization
        // is the table's whole point).  A shape observed more than once
        // stores the log-space mean, and the spread of those duplicates
        // around it is the table's validated cycle-error bound.
        {
            std::map<std::string, std::vector<const Row *>> byKey;
            for (const Row &r : rows) {
                if (r.family == fam)
                    byKey[r.feat.key()].push_back(&r);
            }
            std::vector<double> spread;
            for (const auto &[key, group] : byKey) {
                TableEntry e;
                e.feat = group.front()->feat;
                e.key = key;
                e.rows = static_cast<uint32_t>(group.size());
                for (int ti = 0; ti < kNumTargets; ti++) {
                    double sum = 0.0;
                    for (const Row *r : group)
                        sum += std::log1p(std::max(0.0, r->target[ti]));
                    e.logTarget[ti] = sum / double(group.size());
                }
                if (group.size() > 1) {
                    const double mean = std::max(
                        0.0, std::expm1(e.logTarget[static_cast<int>(
                                 Target::Cycles)]));
                    for (const Row *r : group)
                        spread.push_back(relErr(
                            mean, r->target[static_cast<int>(
                                      Target::Cycles)]));
                }
                fm.table.push_back(std::move(e));
            }
            std::sort(spread.begin(), spread.end());
            fm.tableP50 = percentileSorted(spread, 0.50);
            fm.tableP95 = percentileSorted(spread, 0.95);
            // byKey iterates sorted, so the table is already ordered.
        }

        for (int ti = 0; ti < kNumTargets; ti++) {
            double a[kN][kN] = {};
            double bvec[kN] = {};
            for (const Row *r : train) {
                double phi[kN];
                phiOf(r->feat, phi);
                const double y = std::log1p(std::max(0.0, r->target[ti]));
                for (int i = 0; i < kN; i++) {
                    bvec[i] += phi[i] * y;
                    for (int j = 0; j < kN; j++)
                        a[i][j] += phi[i] * phi[j];
                }
            }
            for (int i = 1; i < kN; i++)
                a[i][i] += kRidgeLambda;   // intercept unpenalized

            TargetModel &tm = fm.targets[ti];
            solveNormal(a, bvec, tm.w);

            std::vector<double> errs;
            errs.reserve(eval.size());
            for (const Row *r : eval)
                errs.push_back(relErr(fm.predict(static_cast<Target>(ti),
                                                 r->feat),
                                      r->target[ti]));
            std::sort(errs.begin(), errs.end());
            tm.p50 = percentileSorted(errs, 0.50);
            tm.p95 = percentileSorted(errs, 0.95);
        }
    }
    return b;
}

} // namespace tango::estimate
