file(REMOVE_RECURSE
  "../bench/ext_quantization"
  "../bench/ext_quantization.pdb"
  "CMakeFiles/ext_quantization.dir/ext_quantization.cc.o"
  "CMakeFiles/ext_quantization.dir/ext_quantization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
