/**
 * @file
 * The Tango runtime: runs a network on a virtual GPU and collects the
 * per-layer and whole-network statistics the paper's figures are built
 * from.
 *
 * Two execution modes compose:
 *  - functional: the CPU reference computes each layer's true output and
 *    writes it into device memory after the layer's kernels run, so CTA
 *    sampling never corrupts downstream inputs; with `check`, simulated
 *    outputs are instead compared against the reference (small networks,
 *    fullSim).
 *  - timing-only (functional=false): buffers hold garbage, which is fine —
 *    the kernels' control flow and addresses are data-independent.
 */

#ifndef TANGO_RUNTIME_RUNTIME_HH
#define TANGO_RUNTIME_RUNTIME_HH

#include <string>
#include <vector>

#include "nn/network.hh"
#include "runtime/lowering.hh"
#include "sim/gpu.hh"

namespace tango::rt {

/** Execution policy for one network run. */
struct RunPolicy
{
    sim::SimPolicy sim;
    bool functional = false;   ///< write reference outputs after each layer
    bool check = false;        ///< compare device outputs vs the reference
    float tolerance = 1e-4f;   ///< relative tolerance for check
    /** Timing-only loop-channel sampling (see rt::lower); ignored when
     *  functional or check is set. */
    uint32_t maxLoopChannels = 0;
};

/** Statistics of one layer (possibly several kernels). */
struct LayerRun
{
    int layerIndex = -1;
    std::string name;
    std::string figType;
    std::vector<sim::KernelStats> kernels;

    double timeSec() const;
    double energyJ() const;
    double gpuCycles() const;
};

/** Statistics of a full network run. */
struct NetRun
{
    std::string netName;
    std::vector<LayerRun> layers;
    uint64_t deviceBytes = 0;
    StatSet totals;          ///< merged op/dtype/evt/stall counters
    double totalTimeSec = 0.0;
    double totalEnergyJ = 0.0;
    double peakPowerW = 0.0;      ///< max over kernels (paper Fig 3)
    uint32_t maxRegsPerThread = 0;
    uint32_t maxLiveRegs = 0;
    uint32_t maxResidentWarps = 0;   ///< warps/SM at the widest kernel
    uint64_t checkFailures = 0;   ///< mismatches found in check mode

    /** Sum a counter over layers whose figType is @p fig. */
    double figTypeStat(const std::string &fig,
                       const std::string &stat) const;
    /** Total time of layers with figType @p fig. */
    double figTypeTime(const std::string &fig) const;
    /** All distinct figTypes in first-appearance order. */
    std::vector<std::string> figTypes() const;
};

/** Runs networks on a Gpu. */
class Runtime
{
  public:
    explicit Runtime(sim::Gpu &gpu) : gpu_(gpu) {}

    /** Run a CNN.  @param input network input (nullptr = synthetic). */
    NetRun runCnn(const nn::Network &net, const RunPolicy &policy,
                  const nn::Tensor *input = nullptr);

    /** Run an RNN model over a price sequence (nullptr = synthetic).
     *  The device-predicted value is returned in *prediction if given. */
    NetRun runRnn(const nn::RnnModel &model, const RunPolicy &policy,
                  const std::vector<float> *sequence = nullptr,
                  float *prediction = nullptr);

  private:
    sim::Gpu &gpu_;
};

/** Build + run a network by name ("gru", "lstm", or a CNN name) with
 *  weights left ungenerated — the standard timing-study entry point. */
NetRun runNetworkByName(sim::Gpu &gpu, const std::string &name,
                        const RunPolicy &policy);

/** The sampling policy the benchmark harness uses: a ~16-warp budget per
 *  SM, 6 sampled warps per CTA — a few seconds per network, with every
 *  statistic extrapolated to the full grid. */
RunPolicy benchPolicy();

/** The policy for memory-locality studies (Figs 13/14): many co-resident
 *  CTAs with few warps each, so cross-CTA data reuse (filters sharing
 *  the same input planes) is visible to the shared L2 the way it is on
 *  real hardware. */
RunPolicy memStudyPolicy();

/** The policy for stall-cycle studies (Fig 7): a near-hardware warp
 *  residency so latency hiding behaves realistically and the stall mix
 *  is not trivially memory-dependency-bound. */
RunPolicy stallStudyPolicy();

} // namespace tango::rt

#endif // TANGO_RUNTIME_RUNTIME_HH
