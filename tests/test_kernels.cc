/**
 * @file
 * End-to-end kernel correctness: every layer kernel is executed fully
 * (all CTAs, cycle-level) on the virtual GPU and its device output is
 * compared against the CPU reference implementation — across all four
 * pixel mappings and all three channel sources of Table III.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/kernels.hh"
#include "nn/network.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using kern::ChannelSrc;
using kern::PixelMap;
using nn::Layer;
using nn::LayerKind;
using nn::Tensor;
using sim::Gpu;
using sim::SimPolicy;

SimPolicy
fullSim()
{
    SimPolicy p;
    p.fullSim = true;
    return p;
}

Tensor
randomTensor(std::vector<uint32_t> shape, uint64_t seed, float scale = 1.f)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (uint64_t i = 0; i < t.size(); i++)
        t[i] = rng.gaussian() * scale;
    return t;
}

uint32_t
upload(Gpu &gpu, const Tensor &t)
{
    const uint32_t addr =
        gpu.mem().allocate(std::max<uint64_t>(t.bytes(), 4));
    if (t.size())
        gpu.mem().copyIn(addr, t.data(), t.bytes());
    return addr;
}

void
expectMatches(const Gpu &gpu, uint32_t addr, const Tensor &ref, float tol,
              const char *what)
{
    uint64_t bad = 0;
    for (uint64_t i = 0; i < ref.size(); i++) {
        const float got = gpu.mem().read<float>(addr + 4 * i);
        const float err = std::fabs(got - ref[i]);
        const float lim = tol * std::max(1.0f, std::fabs(ref[i]));
        if (!(err <= lim)) {
            if (bad < 5) {
                ADD_FAILURE() << what << "[" << i << "]: got " << got
                              << " want " << ref[i];
            }
            bad++;
        }
    }
    EXPECT_EQ(bad, 0u) << what;
}

// ---------------------------------------------------------------------
// Convolution across every mapping.

struct ConvCase
{
    const char *name;
    ChannelSrc chan;
    PixelMap pix;
};

class ConvMapping : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvMapping, MatchesReference)
{
    const ConvCase &cs = GetParam();

    Layer l;
    l.kind = LayerKind::Conv;
    l.name = "conv";
    l.C = 3;
    l.H = l.W = 12;
    l.K = 4;
    l.R = l.S = 3;
    l.stride = 1;
    l.pad = 1;
    l.P = l.Q = 12;
    l.relu = true;
    l.weights = randomTensor({l.K, l.C, l.R, l.S}, 1, 0.3f);
    l.biasT = randomTensor({l.K}, 2, 0.1f);

    const Tensor in = randomTensor({l.C, l.H, l.W}, 3);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t wA = upload(gpu, l.weights);
    const uint32_t bA = upload(gpu, l.biasT);
    Tensor outT({l.K, l.P, l.Q});
    const uint32_t outA = upload(gpu, outT);

    kern::ConvDesc d;
    d.name = cs.name;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.K = l.K;
    d.R = l.R;
    d.S = l.S;
    d.stride = l.stride;
    d.pad = l.pad;
    d.relu = l.relu;
    d.filterSrc = cs.chan;
    d.pixelMap = cs.pix;
    switch (cs.pix) {
      case PixelMap::TileOrigin:
        d.block = {l.Q, l.P, 1};
        break;
      case PixelMap::FromGridXY:
        d.block = {4, 4, 1};
        break;
      case PixelMap::RowBlock:
        d.block = {l.Q, 1, 1};
        break;
      case PixelMap::StrideLoop:
        d.block = {8, 8, 1};
        break;
    }
    // Grid: channels where needed, tiles where needed.
    d.grid = {1, 1, 1};
    if (cs.pix == PixelMap::FromGridXY)
        d.grid = {3, 3, 1};
    if (cs.pix == PixelMap::RowBlock)
        d.grid = {l.P, 1, 1};
    switch (cs.chan) {
      case ChannelSrc::GridX:
        ASSERT_NE(cs.pix, PixelMap::RowBlock);
        d.grid.x = l.K;
        break;
      case ChannelSrc::GridZ:
        d.grid.z = l.K;
        break;
      case ChannelSrc::Loop:
        break;
    }

    auto launch = kern::makeConvLaunch(d, inA, wA, bA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-5f, cs.name);
}

INSTANTIATE_TEST_SUITE_P(
    Mappings, ConvMapping,
    ::testing::Values(
        ConvCase{"cifar_style", ChannelSrc::Loop, PixelMap::TileOrigin},
        ConvCase{"alex_style", ChannelSrc::GridX, PixelMap::TileOrigin},
        ConvCase{"squeeze_style", ChannelSrc::Loop, PixelMap::RowBlock},
        ConvCase{"resnet_style", ChannelSrc::GridX, PixelMap::StrideLoop},
        ConvCase{"vgg_style", ChannelSrc::GridZ, PixelMap::FromGridXY}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(ConvKernel, StridedNoPadding)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = 3;
    l.H = l.W = 11;
    l.K = 2;
    l.R = l.S = 5;
    l.stride = 2;
    l.pad = 0;
    l.P = l.Q = (11 - 5) / 2 + 1;   // 4
    l.weights = randomTensor({l.K, l.C, l.R, l.S}, 4, 0.2f);
    l.biasT = randomTensor({l.K}, 5, 0.1f);

    const Tensor in = randomTensor({l.C, l.H, l.W}, 6);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t wA = upload(gpu, l.weights);
    const uint32_t bA = upload(gpu, l.biasT);
    Tensor outT({l.K, l.P, l.Q});
    const uint32_t outA = upload(gpu, outT);

    kern::ConvDesc d;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.K = l.K;
    d.R = l.R;
    d.S = l.S;
    d.stride = 2;
    d.filterSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::TileOrigin;
    d.grid = {l.K, 1, 1};
    d.block = {l.Q, l.P, 1};
    auto launch = kern::makeConvLaunch(d, inA, wA, bA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-5f, "strided");
}

TEST(ConvKernel, PartitionedFiltersAndTiles)
{
    // AlexNet style: filters split over two kernels, plane split into
    // 2x2 tiles of different sizes (5+3).
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = 2;
    l.H = l.W = 8;
    l.K = 6;
    l.R = l.S = 3;
    l.stride = 1;
    l.pad = 1;
    l.P = l.Q = 8;
    l.weights = randomTensor({l.K, l.C, l.R, l.S}, 7, 0.3f);
    l.biasT = randomTensor({l.K}, 8, 0.1f);

    const Tensor in = randomTensor({l.C, l.H, l.W}, 9);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t wA = upload(gpu, l.weights);
    const uint32_t bA = upload(gpu, l.biasT);
    Tensor outT({l.K, l.P, l.Q});
    const uint32_t outA = upload(gpu, outT);

    const struct { uint32_t tx, ty, bw, bh; } tiles[4] = {
        {0, 0, 5, 5}, {5, 0, 3, 5}, {0, 5, 5, 3}, {5, 5, 3, 3}};
    for (uint32_t fb = 0; fb < l.K; fb += 3) {
        for (const auto &t : tiles) {
            kern::ConvDesc d;
            d.C = l.C;
            d.H = l.H;
            d.W = l.W;
            d.K = l.K;
            d.R = l.R;
            d.S = l.S;
            d.pad = 1;
            d.filterSrc = ChannelSrc::GridX;
            d.pixelMap = PixelMap::TileOrigin;
            d.filterBase = fb;
            d.tileX = t.tx;
            d.tileY = t.ty;
            d.grid = {3, 1, 1};
            d.block = {t.bw, t.bh, 1};
            auto launch = kern::makeConvLaunch(d, inA, wA, bA, outA);
            gpu.launch(launch, fullSim());
        }
    }
    expectMatches(gpu, outA, ref, 1e-5f, "partitioned");
}

// ---------------------------------------------------------------------
// Pooling.

struct PoolCase
{
    const char *name;
    bool avg;
    uint32_t win, stride, pad;
};

class PoolKinds : public ::testing::TestWithParam<PoolCase>
{
};

TEST_P(PoolKinds, MatchesReference)
{
    const PoolCase &pc = GetParam();
    Layer l;
    l.kind = LayerKind::Pool;
    l.C = 5;
    l.H = l.W = 13;
    l.R = l.S = pc.win;
    l.stride = pc.stride;
    l.pad = pc.pad;
    l.avg = pc.avg;
    l.P = l.Q = (l.H + 2 * pc.pad - pc.win) / pc.stride + 1;

    const Tensor in = randomTensor({l.C, l.H, l.W}, 10);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    Tensor outT({l.C, l.P, l.Q});
    const uint32_t outA = upload(gpu, outT);

    kern::PoolDesc d;
    d.name = pc.name;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.win = pc.win;
    d.stride = pc.stride;
    d.pad = pc.pad;
    d.avg = pc.avg;
    d.channelSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::TileOrigin;
    d.grid = {l.C, 1, 1};
    d.block = {l.Q, l.P, 1};
    auto launch = kern::makePoolLaunch(d, inA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-5f, pc.name);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PoolKinds,
    ::testing::Values(PoolCase{"max3s2", false, 3, 2, 0},
                      PoolCase{"avg3s2", true, 3, 2, 0},
                      PoolCase{"max2s2", false, 2, 2, 0},
                      PoolCase{"max3s2p1", false, 3, 2, 1},
                      PoolCase{"avg5s3", true, 5, 3, 0}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(PoolKernel, GlobalAverage)
{
    Layer l;
    l.kind = LayerKind::Pool;
    l.C = 37;
    l.H = l.W = 9;
    l.globalAvg = true;
    l.avg = true;
    l.P = l.Q = 1;

    const Tensor in = randomTensor({l.C, l.H, l.W}, 11);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    Tensor outT({l.C});
    const uint32_t outA = upload(gpu, outT);

    kern::PoolDesc d;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.globalAvg = true;
    d.grid = {2, 1, 1};          // channels split over two blocks
    d.block = {20, 1, 1};
    auto launch = kern::makePoolLaunch(d, inA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-5f, "globalavg");
}

// ---------------------------------------------------------------------
// Fully connected.

TEST(FcKernel, SingleThreadBlocks)
{
    Layer l;
    l.kind = LayerKind::FC;
    l.inN = 50;
    l.outN = 30;
    l.relu = true;
    l.weights = randomTensor({l.outN, l.inN}, 12, 0.2f);
    l.biasT = randomTensor({l.outN}, 13, 0.1f);

    const Tensor in = randomTensor({l.inN}, 14);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t wA = upload(gpu, l.weights);
    const uint32_t bA = upload(gpu, l.biasT);
    Tensor outT({l.outN});
    const uint32_t outA = upload(gpu, outT);

    kern::FcDesc d;
    d.inN = l.inN;
    d.outN = l.outN;
    d.relu = true;
    d.grid = {l.outN, 1, 1};     // AlexNet style: one block per neuron
    d.block = {1, 1, 1};
    auto launch = kern::makeFcLaunch(d, inA, wA, bA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-5f, "fc-1thread");
}

TEST(FcKernel, MultiDimGridVggStyle)
{
    Layer l;
    l.kind = LayerKind::FC;
    l.inN = 40;
    l.outN = 100;
    l.weights = randomTensor({l.outN, l.inN}, 15, 0.2f);
    l.biasT = randomTensor({l.outN}, 16, 0.1f);

    const Tensor in = randomTensor({l.inN}, 17);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t wA = upload(gpu, l.weights);
    const uint32_t bA = upload(gpu, l.biasT);
    Tensor outT({l.outN});
    const uint32_t outA = upload(gpu, outT);

    kern::FcDesc d;
    d.inN = l.inN;
    d.outN = l.outN;
    d.grid = {2, 2, 2};          // 8 blocks of 16 -> 128 threads, guarded
    d.block = {4, 4, 1};
    auto launch = kern::makeFcLaunch(d, inA, wA, bA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-5f, "fc-grid");
}

// ---------------------------------------------------------------------
// Map kernels (ReLU / Scale / BatchNorm / Eltwise).

TEST(MapKernel, Relu)
{
    Layer l;
    l.kind = LayerKind::ReLU;
    l.C = 4;
    l.H = l.W = 9;
    const Tensor in = randomTensor({l.C, l.H, l.W}, 18);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    Tensor outT({l.C, l.H, l.W});
    const uint32_t outA = upload(gpu, outT);

    kern::MapDesc d;
    d.kind = kern::MapKind::Relu;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.channelSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::StrideLoop;
    d.grid = {l.C, 1, 1};
    d.block = {4, 4, 1};
    auto launch = kern::makeMapLaunch(d, inA, 0, 0, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 0.0f, "relu");
}

TEST(MapKernel, Scale)
{
    Layer l;
    l.kind = LayerKind::Scale;
    l.C = 6;
    l.H = l.W = 7;
    l.gamma = randomTensor({l.C}, 19, 0.5f);
    l.betaT = randomTensor({l.C}, 20, 0.5f);
    const Tensor in = randomTensor({l.C, l.H, l.W}, 21);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t gA = upload(gpu, l.gamma);
    const uint32_t bA = upload(gpu, l.betaT);
    Tensor outT({l.C, l.H, l.W});
    const uint32_t outA = upload(gpu, outT);

    kern::MapDesc d;
    d.kind = kern::MapKind::Scale;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.channelSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::StrideLoop;
    d.grid = {l.C, 1, 1};
    d.block = {8, 8, 1};
    auto launch = kern::makeMapLaunch(d, inA, gA, bA, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 1e-6f, "scale");
}

TEST(MapKernel, BatchNorm)
{
    Layer l;
    l.kind = LayerKind::BatchNorm;
    l.C = 5;
    l.H = l.W = 6;
    l.mean = randomTensor({l.C}, 22, 0.3f);
    l.var = Tensor({l.C});
    Rng rng(23);
    for (uint32_t c = 0; c < l.C; c++)
        l.var[c] = 0.5f + rng.uniform();
    const Tensor in = randomTensor({l.C, l.H, l.W}, 24);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    const uint32_t mA = upload(gpu, l.mean);
    const uint32_t vA = upload(gpu, l.var);
    Tensor outT({l.C, l.H, l.W});
    const uint32_t outA = upload(gpu, outT);

    kern::MapDesc d;
    d.kind = kern::MapKind::BatchNorm;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.eps = l.eps;
    d.channelSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::StrideLoop;
    d.grid = {l.C, 1, 1};
    d.block = {8, 8, 1};
    auto launch = kern::makeMapLaunch(d, inA, mA, vA, outA);
    gpu.launch(launch, fullSim());
    // rsqrt vs 1/sqrt: tolerate small relative error.
    expectMatches(gpu, outA, ref, 1e-4f, "batchnorm");
}

TEST(MapKernel, EltwiseWithFusedRelu)
{
    Layer l;
    l.kind = LayerKind::Eltwise;
    l.C = 3;
    l.H = l.W = 10;
    l.relu = true;
    l.inputs = {-1, -1};
    const Tensor a = randomTensor({l.C, l.H, l.W}, 25);
    const Tensor b2 = randomTensor({l.C, l.H, l.W}, 26);
    const Tensor ref = referenceForward(l, {&a, &b2});

    Gpu gpu(sim::pascalGP102());
    const uint32_t aA = upload(gpu, a);
    const uint32_t bA = upload(gpu, b2);
    Tensor outT({l.C, l.H, l.W});
    const uint32_t outA = upload(gpu, outT);

    kern::MapDesc d;
    d.kind = kern::MapKind::Eltwise;
    d.relu = true;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.channelSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::StrideLoop;
    d.grid = {l.C, 1, 1};
    d.block = {8, 8, 1};
    auto launch = kern::makeMapLaunch(d, aA, bA, 0, outA);
    gpu.launch(launch, fullSim());
    expectMatches(gpu, outA, ref, 0.0f, "eltwise");
}

// ---------------------------------------------------------------------
// Softmax, LRN, RNN cells.

TEST(SoftmaxKernel, SumsToOneAndMatches)
{
    for (uint32_t n : {9u, 50u, 1000u}) {
        Layer l;
        l.kind = LayerKind::Softmax;
        l.inN = l.outN = n;
        const Tensor in = randomTensor({n}, 27 + n, 2.0f);
        const Tensor ref = referenceForward(l, {&in});

        Gpu gpu(sim::pascalGP102());
        const uint32_t inA = upload(gpu, in);
        Tensor outT({n});
        const uint32_t outA = upload(gpu, outT);

        kern::SoftmaxDesc d;
        d.n = n;
        d.threads = 32;
        auto launch = kern::makeSoftmaxLaunch(d, inA, outA);
        gpu.launch(launch, fullSim());
        expectMatches(gpu, outA, ref, 1e-3f, "softmax");

        double sum = 0.0;
        for (uint32_t i = 0; i < n; i++)
            sum += gpu.mem().read<float>(outA + 4 * i);
        EXPECT_NEAR(sum, 1.0, 1e-3);
    }
}

TEST(LrnKernel, MatchesReference)
{
    Layer l;
    l.kind = LayerKind::LRN;
    l.C = 8;
    l.H = l.W = 9;
    l.localSize = 5;
    const Tensor in = randomTensor({l.C, l.H, l.W}, 30);
    const Tensor ref = referenceForward(l, {&in});

    Gpu gpu(sim::pascalGP102());
    const uint32_t inA = upload(gpu, in);
    Tensor outT({l.C, l.H, l.W});
    const uint32_t outA = upload(gpu, outT);

    kern::LrnDesc d;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.localSize = 5;
    d.alpha = l.alpha;
    d.beta = l.beta;
    d.k = l.lrnK;
    d.grid = {l.C, 1, 1};
    d.block = {l.W, l.H, 1};
    auto launch = kern::makeLrnLaunch(d, inA, outA);
    gpu.launch(launch, fullSim());
    // exp2/log2-based pow vs std::pow: small relative tolerance.
    expectMatches(gpu, outA, ref, 1e-3f, "lrn");
}

class RnnCellKind : public ::testing::TestWithParam<bool>
{
};

TEST_P(RnnCellKind, SingleStepMatchesReference)
{
    const bool lstm = GetParam();
    nn::RnnModel m;
    m.name = lstm ? "lstm" : "gru";
    m.lstm = lstm;
    m.inputSize = 3;
    m.hidden = 24;
    const uint32_t G = lstm ? 4 : 3;
    const uint32_t n = G * m.hidden * m.inputSize +
                       G * m.hidden * m.hidden + G * m.hidden;
    m.weights = randomTensor({n}, 31, 0.2f);

    std::vector<float> x = {0.3f, -0.1f, 0.7f};
    std::vector<float> h0(m.hidden), c0(m.hidden);
    Rng rng(32);
    for (uint32_t i = 0; i < m.hidden; i++) {
        h0[i] = rng.gaussian() * 0.3f;
        c0[i] = rng.gaussian() * 0.3f;
    }
    std::vector<float> h = h0, c = c0;
    m.step(x, h, c);

    Gpu gpu(sim::pascalGP102());
    auto &mem = gpu.mem();
    const uint32_t xA = mem.allocate(4 * m.inputSize);
    mem.copyIn(xA, x.data(), 4 * m.inputSize);
    const uint32_t hA = mem.allocate(4 * m.hidden);
    mem.copyIn(hA, h0.data(), 4 * m.hidden);
    const uint32_t cA = mem.allocate(4 * m.hidden);
    mem.copyIn(cA, c0.data(), 4 * m.hidden);
    const uint32_t wA = mem.allocate(m.weights.bytes());
    mem.copyIn(wA, m.weights.data(), m.weights.bytes());
    const uint32_t hOutA = mem.allocate(4 * m.hidden);
    const uint32_t cOutA = mem.allocate(4 * m.hidden);

    kern::RnnCellDesc d;
    d.lstm = lstm;
    d.inputSize = m.inputSize;
    d.hidden = m.hidden;
    d.grid = {1, 1, 1};
    d.block = lstm ? kern::Dim3{m.hidden, 1, 1} : kern::Dim3{6, 4, 1};
    auto launch = kern::makeRnnCellLaunch(d, xA, hA, cA, wA, hOutA, cOutA);
    gpu.launch(launch, fullSim());

    nn::Tensor refH({m.hidden});
    std::copy(h.begin(), h.end(), refH.data());
    expectMatches(gpu, hOutA, refH, 1e-4f, "rnn.h");
    if (lstm) {
        nn::Tensor refC({m.hidden});
        std::copy(c.begin(), c.end(), refC.data());
        expectMatches(gpu, cOutA, refC, 1e-4f, "rnn.c");
    }
}

INSTANTIATE_TEST_SUITE_P(Cells, RnnCellKind, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? std::string("lstm")
                                               : std::string("gru");
                         });

} // namespace
} // namespace tango
