file(REMOVE_RECURSE
  "CMakeFiles/characterize.dir/characterize.cpp.o"
  "CMakeFiles/characterize.dir/characterize.cpp.o.d"
  "characterize"
  "characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
