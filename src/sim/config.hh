/**
 * @file
 * GPU platform configurations (the paper's Table II) and the power-model
 * parameter block.
 *
 * Three presets mirror the platforms of the paper: the Pascal GP102
 * simulator configuration (GPGPU-Sim development branch), the Kepler GK210
 * server GPU, and the Maxwell Tegra X1 mobile GPU.
 */

#ifndef TANGO_SIM_CONFIG_HH
#define TANGO_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace tango::sim {

/** Warp scheduling policies (paper Section IV-F). */
enum class SchedPolicy : uint8_t {
    GTO,  ///< greedy-then-oldest (GPGPU-Sim default)
    LRR,  ///< loose round-robin
    TLV   ///< two-level (active/pending queues)
};

/** @return "gto" / "lrr" / "tlv". */
const char *schedName(SchedPolicy p);

/** Parse a schedName() string (case-sensitive, lowercase).
 *  @return false (out untouched) on an unknown name. */
bool schedFromName(const std::string &name, SchedPolicy &out);

/** Per-event dynamic energies (picojoules) and static power (watts). */
struct PowerParams
{
    // Dynamic energy per event, in pJ.  Calibrated GPUWattch-style: a
    // warp instruction moves 32 lanes of data, so per-warp-event energies
    // are in the hundreds of pJ and a DRAM burst costs several nJ.
    double icAccess = 120.0;       ///< instruction cache read (per issue)
    double ibAccess = 40.0;        ///< instruction buffer access (per issue)
    double dcAccess = 320.0;       ///< L1 data cache access (per segment)
    double tcAccess = 200.0;       ///< texture cache access (unused by DNNs)
    double ccAccess = 90.0;        ///< constant cache access
    double shrdAccess = 160.0;     ///< shared memory access
    double rfOperand = 110.0;      ///< register file per warp-operand
    double spOp = 100.0;           ///< integer/simple ALU warp instruction
    double fpuOp = 220.0;          ///< fp32 warp instruction
    double sfuOp = 820.0;          ///< transcendental warp instruction
    double schedCycle = 60.0;      ///< scheduler arbitration per active cycle
    double l2Access = 900.0;       ///< L2 bank access
    double mcAccess = 500.0;       ///< memory-controller transaction
    double nocFlit = 350.0;        ///< one L1<->L2 interconnect transfer
    double dramAccess = 8000.0;    ///< one DRAM burst (line fill)
    double pipeIssue = 150.0;      ///< pipeline latch/drive per issue

    // Static / background power, in watts.
    double idleCoreW = 1.05;       ///< leakage per SM
    double constDynamicW = 0.45;   ///< clock tree etc. per SM while clocked
    double boardStaticW = 9.0;     ///< device-level constant draw
};

/** Full GPU configuration (one SM class replicated numSms times). */
struct GpuConfig
{
    std::string name;

    // Machine organization.
    uint32_t numSms = 28;
    uint32_t coresPerSm = 128;
    uint32_t maxWarpsPerSm = 64;
    uint32_t maxCtasPerSm = 32;
    uint32_t maxThreadsPerSm = 2048;
    uint32_t regFileBytesPerSm = 256 * 1024;
    uint32_t smemBytesPerSm = 96 * 1024;
    uint32_t issueWidth = 2;       ///< warp instructions issued per cycle
    uint32_t numSchedulers = 4;    ///< warp schedulers per SM

    // Memory system.
    uint32_t lineBytes = 128;
    uint32_t l1dBytes = 64 * 1024; ///< 0 = L1D bypassed
    uint32_t l1dAssoc = 4;
    uint32_t l1dMshrs = 32;
    uint32_t l1HitLatency = 28;
    uint32_t constCacheBytes = 8 * 1024;
    uint32_t constHitLatency = 10;
    uint32_t smemLatency = 24;
    uint32_t l2Bytes = 3 * 1024 * 1024;
    uint32_t l2Assoc = 16;
    uint32_t l2Mshrs = 64;
    uint32_t l2HitLatency = 190;
    uint32_t dramLatency = 230;    ///< additional cycles beyond L2
    double dramIssueInterval = 2.0;///< min core cycles between DRAM bursts

    // Clocks.
    double coreClockGhz = 1.48;

    // Scheduling.
    SchedPolicy scheduler = SchedPolicy::GTO;

    PowerParams power;

    /** @return concurrent CTAs per SM for a kernel footprint
     *  (threads/CTA, regs/thread, smem/CTA), honouring all four limits. */
    uint32_t occupancyCtas(uint32_t threads_per_cta, uint32_t regs_per_thread,
                           uint32_t smem_per_cta) const;
};

/** Pascal GP102 — the paper's GPGPU-Sim configuration (Table II). */
GpuConfig pascalGP102();

/** Kepler GK210 — the server GPU of Table II. */
GpuConfig keplerGK210();

/** Maxwell Tegra X1 — the mobile GPU of Table II. */
GpuConfig maxwellTX1();

} // namespace tango::sim

#endif // TANGO_SIM_CONFIG_HH
