#include "metrics/metrics.hh"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json.hh"
#include "common/logging.hh"

namespace tango::metrics {

// ----------------------------------------------------------------- Buckets

unsigned
Buckets::index(uint64_t v)
{
    if (v < kSub)
        return static_cast<unsigned>(v);
    const unsigned e = 63 - static_cast<unsigned>(std::countl_zero(v));
    const unsigned g = e - kSubBits + 1;
    const unsigned sub =
        static_cast<unsigned>((v >> (e - kSubBits)) & (kSub - 1));
    const unsigned idx = g * kSub + sub;
    return idx < kCount ? idx : kCount - 1;
}

uint64_t
Buckets::lower(unsigned idx)
{
    const unsigned g = idx / kSub, sub = idx % kSub;
    if (g == 0)
        return sub;
    return static_cast<uint64_t>(kSub + sub) << (g - 1);
}

uint64_t
Buckets::upper(unsigned idx)
{
    const unsigned g = idx / kSub;
    if (g == 0)
        return lower(idx);
    return lower(idx) + ((uint64_t(1) << (g - 1)) - 1);
}

// ------------------------------------------------------- HistogramSnapshot

uint64_t
HistogramSnapshot::count() const
{
    uint64_t n = 0;
    for (uint64_t b : buckets)
        n += b;
    return n;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (buckets.empty())
        buckets.assign(Buckets::kCount, 0);
    for (size_t i = 0; i < other.buckets.size(); i++)
        buckets[i] += other.buckets[i];
    sum += other.sum;
}

namespace {

/** Index of the bucket holding the rank-⌈p·count⌉ sample, or -1. */
int
percentileBucket(const HistogramSnapshot &s, double p)
{
    const uint64_t n = s.count();
    if (n == 0)
        return -1;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(std::clamp(p, 0.0, 1.0) * double(n)));
    rank = std::clamp<uint64_t>(rank, 1, n);
    uint64_t cum = 0;
    for (size_t i = 0; i < s.buckets.size(); i++) {
        cum += s.buckets[i];
        if (cum >= rank)
            return static_cast<int>(i);
    }
    return static_cast<int>(s.buckets.size()) - 1;   // unreachable
}

} // namespace

double
HistogramSnapshot::percentileUpper(double p) const
{
    const int idx = percentileBucket(*this, p);
    return idx < 0 ? 0.0 : double(Buckets::upper(unsigned(idx)));
}

double
HistogramSnapshot::percentileLower(double p) const
{
    const int idx = percentileBucket(*this, p);
    return idx < 0 ? 0.0 : double(Buckets::lower(unsigned(idx)));
}

// --------------------------------------------------------------- Histogram

Histogram::Histogram()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.buckets.resize(Buckets::kCount);
    for (unsigned i = 0; i < Buckets::kCount; i++)
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
}

// ---------------------------------------------------------------- Registry

struct Registry::Instrument
{
    enum Kind { KCounter, KGauge, KHistogram };

    std::string name;    ///< family name (no labels)
    std::string help;
    Labels labels;       ///< sorted by key
    int kind = KCounter;

    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;   ///< KHistogram only (big)

    /** `name{k="v",...}` series id (just the name when unlabeled). */
    std::string seriesId(const Labels &extra = {}) const
    {
        std::string out = name;
        if (labels.empty() && extra.empty())
            return out;
        out += '{';
        bool first = true;
        for (const Labels *ls : {&labels, &extra}) {
            for (const auto &[k, v] : *ls) {
                if (!first)
                    out += ',';
                first = false;
                out += k;
                out += "=\"";
                for (char c : v) {   // minimal escaping, \ and "
                    if (c == '\\' || c == '"')
                        out += '\\';
                    out += c;
                }
                out += '"';
            }
        }
        out += '}';
        return out;
    }
};

Registry::Registry() = default;

Registry::~Registry()
{
    stopDumper();
}

Registry::Instrument &
Registry::intern(const std::string &name, const std::string &help,
                 const Labels &labels, int kind)
{
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &ins : instruments_) {
        if (ins->name == name && ins->labels == sorted) {
            if (ins->kind != kind)
                panic("metrics: instrument '%s' re-registered as a "
                      "different kind", name.c_str());
            return *ins;
        }
        if (ins->name == name && ins->kind != kind)
            panic("metrics: family '%s' mixes instrument kinds",
                  name.c_str());
    }
    auto ins = std::make_unique<Instrument>();
    ins->name = name;
    ins->help = help;
    ins->labels = std::move(sorted);
    ins->kind = kind;
    if (kind == Instrument::KHistogram)
        ins->histogram = std::make_unique<Histogram>();
    instruments_.push_back(std::move(ins));
    return *instruments_.back();
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    return intern(name, help, labels, Instrument::KCounter).counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    return intern(name, help, labels, Instrument::KGauge).gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    const Labels &labels)
{
    return *intern(name, help, labels, Instrument::KHistogram).histogram;
}

namespace {

void
appendNumber(std::string &out, double v)
{
    char buf[32];
    // Counters/bucket counts are integers; print them as such so the
    // text round-trips exactly.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

std::string
Registry::renderPrometheus() const
{
    // Stable output: families sorted by name, series in registration
    // order within a family, HELP/TYPE emitted once per family.
    std::vector<const Instrument *> sorted;
    {
        std::lock_guard<std::mutex> lock(mu_);
        sorted.reserve(instruments_.size());
        for (const auto &ins : instruments_)
            sorted.push_back(ins.get());
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Instrument *a, const Instrument *b) {
                         return a->name < b->name;
                     });

    std::string out;
    const std::string *lastFamily = nullptr;
    for (const Instrument *ins : sorted) {
        if (!lastFamily || *lastFamily != ins->name) {
            lastFamily = &ins->name;
            out += "# HELP " + ins->name + " " + ins->help + "\n";
            out += "# TYPE " + ins->name + " ";
            out += ins->kind == Instrument::KCounter   ? "counter"
                   : ins->kind == Instrument::KGauge   ? "gauge"
                                                       : "histogram";
            out += '\n';
        }
        switch (ins->kind) {
        case Instrument::KCounter:
            out += ins->seriesId();
            out += ' ';
            appendNumber(out, double(ins->counter.value()));
            out += '\n';
            break;
        case Instrument::KGauge:
            out += ins->seriesId();
            out += ' ';
            appendNumber(out, double(ins->gauge.value()));
            out += '\n';
            break;
        case Instrument::KHistogram: {
            const HistogramSnapshot s = ins->histogram->snapshot();
            // Cumulative buckets; empty buckets are elided (their le
            // boundary adds no information) except +Inf, which is
            // mandatory and equals _count.
            Instrument bucketIns = {};
            bucketIns.name = ins->name + "_bucket";
            bucketIns.labels = ins->labels;
            uint64_t cum = 0;
            for (unsigned i = 0; i < s.buckets.size(); i++) {
                if (s.buckets[i] == 0)
                    continue;
                cum += s.buckets[i];
                out += bucketIns.seriesId(
                    {{"le", std::to_string(Buckets::upper(i))}});
                out += ' ';
                appendNumber(out, double(cum));
                out += '\n';
            }
            out += bucketIns.seriesId({{"le", "+Inf"}});
            out += ' ';
            appendNumber(out, double(cum));
            out += '\n';
            Instrument aux = {};
            aux.labels = ins->labels;
            aux.name = ins->name + "_sum";
            out += aux.seriesId();
            out += ' ';
            appendNumber(out, double(s.sum));
            out += '\n';
            aux.name = ins->name + "_count";
            out += aux.seriesId();
            out += ' ';
            appendNumber(out, double(cum));
            out += '\n';
            break;
        }
        }
    }
    return out;
}

std::string
Registry::renderJson() const
{
    std::vector<const Instrument *> all;
    {
        std::lock_guard<std::mutex> lock(mu_);
        all.reserve(instruments_.size());
        for (const auto &ins : instruments_)
            all.push_back(ins.get());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Instrument *a, const Instrument *b) {
                         return a->name < b->name;
                     });

    std::string out;
    json::ObjWriter o(out);
    for (int kind : {Instrument::KCounter, Instrument::KGauge,
                     Instrument::KHistogram}) {
        o.key(kind == Instrument::KCounter   ? "counters"
              : kind == Instrument::KGauge   ? "gauges"
                                             : "histograms");
        json::ObjWriter section(out);
        for (const Instrument *ins : all) {
            if (ins->kind != kind)
                continue;
            const std::string series = ins->seriesId();
            switch (kind) {
            case Instrument::KCounter:
                section.u64(series.c_str(), ins->counter.value());
                break;
            case Instrument::KGauge:
                section.num(series.c_str(), double(ins->gauge.value()));
                break;
            case Instrument::KHistogram: {
                const HistogramSnapshot s = ins->histogram->snapshot();
                section.key(series.c_str());
                json::ObjWriter h(out);
                h.u64("count", s.count());
                h.u64("sum", s.sum);
                h.num("p50", s.percentileUpper(0.50));
                h.num("p99", s.percentileUpper(0.99));
                h.key("buckets");
                out += '[';
                bool first = true;
                for (unsigned i = 0; i < s.buckets.size(); i++) {
                    if (s.buckets[i] == 0)
                        continue;
                    if (!first)
                        out += ',';
                    first = false;
                    out += '[';
                    json::appendU64(out, Buckets::upper(i));
                    out += ',';
                    json::appendU64(out, s.buckets[i]);
                    out += ']';
                }
                out += ']';
                h.close();
                break;
            }
            }
        }
        section.close();
    }
    o.close();
    return out;
}

// ------------------------------------------------------------------ dumper

void
Registry::writeSnapshot() const
{
    std::lock_guard<std::mutex> lock(dumpMu_);
    const std::string tmp = dumpPath_ + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("metrics: cannot write snapshot '%s': %s", tmp.c_str(),
             std::strerror(errno));
        return;
    }
    const std::string body = renderJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (std::rename(tmp.c_str(), dumpPath_.c_str()) != 0)
        warn("metrics: cannot rename snapshot onto '%s': %s",
             dumpPath_.c_str(), std::strerror(errno));
}

void
Registry::dumperLoop()
{
    using namespace std::chrono;
    auto next = steady_clock::now() + milliseconds(dumpPeriodMs_);
    while (!dumperStop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(milliseconds(
            std::min<uint64_t>(dumpPeriodMs_, 50)));
        if (steady_clock::now() < next)
            continue;
        next = steady_clock::now() + milliseconds(dumpPeriodMs_);
        writeSnapshot();
    }
    writeSnapshot();   // final state on clean stop
}

void
Registry::startDumper(const std::string &path, uint64_t periodMs)
{
    if (dumper_.joinable())
        return;   // already running
    dumpPath_ = path;
    dumpPeriodMs_ = periodMs ? periodMs : 1000;
    dumperStop_.store(false, std::memory_order_release);
    dumper_ = std::thread([this] { dumperLoop(); });
}

void
Registry::stopDumper()
{
    if (!dumper_.joinable())
        return;
    dumperStop_.store(true, std::memory_order_release);
    dumper_.join();
}

void
Registry::dumpNow()
{
    if (!dumpPath_.empty())
        writeSnapshot();
}

Registry &
Registry::global()
{
    // Leaked like Engine::global(): instruments must outlive any worker
    // thread still bumping counters while exit() runs static dtors.
    static Registry *g = [] {
        Registry *r = new Registry();
        if (const char *env = std::getenv("TANGO_METRICS_DUMP")) {
            const std::string spec = env;
            const size_t comma = spec.rfind(',');
            uint64_t ms = 0;
            bool ok = comma != std::string::npos && comma > 0 &&
                      comma + 1 < spec.size();
            if (ok) {
                for (size_t i = comma + 1; i < spec.size(); i++) {
                    if (spec[i] < '0' || spec[i] > '9') {
                        ok = false;
                        break;
                    }
                    ms = ms * 10 + uint64_t(spec[i] - '0');
                }
            }
            if (!ok)
                fatal("TANGO_METRICS_DUMP='%s': expected <path>,<ms>",
                      spec.c_str());
            r->startDumper(spec.substr(0, comma), ms);
            std::atexit([] { Registry::global().dumpNow(); });
        }
        return r;
    }();
    return *g;
}

Counter &
counter(const std::string &name, const std::string &help,
        const Labels &labels)
{
    return Registry::global().counter(name, help, labels);
}

Gauge &
gauge(const std::string &name, const std::string &help, const Labels &labels)
{
    return Registry::global().gauge(name, help, labels);
}

Histogram &
histogram(const std::string &name, const std::string &help,
          const Labels &labels)
{
    return Registry::global().histogram(name, help, labels);
}

} // namespace tango::metrics
