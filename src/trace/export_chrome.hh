/**
 * @file
 * Chrome trace-event (Perfetto-compatible) export of a recorded trace.
 *
 * The JSON object format is the one chrome://tracing and ui.perfetto.dev
 * both load: {"traceEvents": [...], ...}.  Mapping:
 *  - layer and kernel spans become nested "B"/"E" duration events on one
 *    "layers/kernels" track (spans nest because layers strictly contain
 *    their kernels on the global cycle timeline);
 *  - occupancy and MSHR samples become "C" counter events (tracks
 *    "active_warps" and "mshrs_in_flight");
 *  - stall transitions become instant events on a per-core "SM<n> stalls"
 *    track, named after the new stall reason;
 *  - cache misses become instants and cache fills / DRAM transactions
 *    become complete ("X") events with their latency as the duration, on
 *    a per-core "SM<n> memory" track.
 *
 * Timestamps are microseconds of simulated GPU time
 * (cycle / coreClockGhz / 1000); "otherData" carries the cycle clock,
 * recorded/dropped event counts and the exporting network's name.
 */

#ifndef TANGO_TRACE_EXPORT_CHROME_HH
#define TANGO_TRACE_EXPORT_CHROME_HH

#include <string>

#include "trace/trace.hh"

namespace tango::trace {

/** Export knobs (clock for cycle → time conversion, labelling). */
struct ChromeExportOptions
{
    /** Core clock used to convert cycles to microseconds. */
    double coreClockGhz = 1.0;
    /** Free-form label recorded in otherData (e.g. the network name). */
    std::string label;
};

/** @return the trace as one Chrome trace-event JSON document. */
std::string chromeTraceJson(const RingSink &sink,
                            const ChromeExportOptions &opt = {});

/**
 * Write chromeTraceJson() to @p path.
 * @return false on I/O failure (never throws).
 */
bool writeChromeTrace(const RingSink &sink, const std::string &path,
                      const ChromeExportOptions &opt = {});

} // namespace tango::trace

#endif // TANGO_TRACE_EXPORT_CHROME_HH
