file(REMOVE_RECURSE
  "CMakeFiles/test_timing_properties.dir/test_timing_properties.cc.o"
  "CMakeFiles/test_timing_properties.dir/test_timing_properties.cc.o.d"
  "test_timing_properties"
  "test_timing_properties.pdb"
  "test_timing_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
