file(REMOVE_RECURSE
  "../bench/fig04_power_per_layer"
  "../bench/fig04_power_per_layer.pdb"
  "CMakeFiles/fig04_power_per_layer.dir/fig04_power_per_layer.cc.o"
  "CMakeFiles/fig04_power_per_layer.dir/fig04_power_per_layer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_power_per_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
