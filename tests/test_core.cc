/**
 * @file
 * SM core / GPU timing-model tests: cycle accounting, stall
 * classification, occupancy, CTA/warp sampling scaling, power plumbing.
 */

#include <gtest/gtest.h>

#include "kernels/builder.hh"
#include "sim/gpu.hh"

namespace tango::sim {
namespace {

/** A tiny ALU-only kernel: per-thread dependent chain of n adds. */
KernelLaunch
chainKernel(uint32_t n, Dim3 grid, Dim3 block)
{
    kern::Builder b("chain");
    kern::Reg acc = b.immU(1);
    for (uint32_t i = 0; i < n; i++)
        b.emit3i(Op::Add, DType::U32, acc, acc, 1);
    KernelLaunch l;
    l.program = b.finish();
    l.grid = grid;
    l.block = block;
    return l;
}

/** A load-heavy kernel: each thread streams over a buffer.
 *  @param passes walks over the same addresses (reuse for the caches). */
KernelLaunch
streamKernel(uint32_t words, uint32_t buf, Dim3 grid, Dim3 block,
             uint32_t passes = 1)
{
    kern::Builder b("stream");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg addr = b.shli(tx, 2);
    b.emit3i(Op::Add, DType::U32, addr, addr, buf);
    kern::Reg v = b.reg();
    kern::Reg sum = b.immF(0.0f);
    for (uint32_t p = 0; p < passes; p++) {
        for (uint32_t i = 0; i < words; i++) {
            b.ld(DType::F32, Space::Global, v, addr, i * 512);
            b.emit3(Op::Add, DType::F32, sum, sum, v);
        }
    }
    KernelLaunch l;
    l.program = b.finish();
    l.grid = grid;
    l.block = block;
    return l;
}

TEST(Core, DependentChainTakesLatencyPerOp)
{
    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    const auto ks = gpu.launch(chainKernel(100, {1, 1, 1}, {32, 1, 1}),
                               p);
    // One warp, fully dependent adds: >= latency * n cycles.
    EXPECT_GE(ks.smCycles, 100u * opLatency(Op::Add));
    EXPECT_LT(ks.smCycles, 100u * opLatency(Op::Add) * 3);
    EXPECT_EQ(ks.stats.get("op.add"), 100.0 * 32);
}

TEST(Core, MoreWarpsHideLatency)
{
    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    const auto one = gpu.launch(chainKernel(200, {1, 1, 1}, {32, 1, 1}),
                                p);
    const auto eight =
        gpu.launch(chainKernel(200, {1, 1, 1}, {256, 1, 1}), p);
    // Eight warps interleave: far less than 8x the single-warp time.
    EXPECT_LT(eight.smCycles, one.smCycles * 3);
}

TEST(Core, ExecDependencyStallsDominateChains)
{
    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    const auto ks = gpu.launch(chainKernel(300, {1, 1, 1}, {32, 1, 1}),
                               p);
    const double execDep = ks.stats.get("stall.exec_dependency");
    double total = 0.0;
    for (size_t i = 0; i < numStalls; i++) {
        total += ks.stats.get(std::string("stall.") +
                              stallName(static_cast<Stall>(i)));
    }
    EXPECT_GT(execDep / total, 0.5);
}

TEST(Core, MemoryDependencyStallsDominateStreams)
{
    Gpu gpu(pascalGP102());
    const uint32_t buf = gpu.mem().allocate(1 << 20);
    SimPolicy p;
    p.fullSim = true;
    const auto ks =
        gpu.launch(streamKernel(64, buf, {1, 1, 1}, {32, 1, 1}), p);
    const double memDep = ks.stats.get("stall.memory_dependency");
    EXPECT_GT(memDep, ks.stats.get("stall.exec_dependency"));
}

TEST(Core, L1CachingReducesCycles)
{
    GpuConfig with = pascalGP102();
    GpuConfig without = pascalGP102();
    without.l1dBytes = 0;
    SimPolicy p;
    p.fullSim = true;

    Gpu g1(with);
    const uint32_t b1 = g1.mem().allocate(1 << 20);
    // Walk the same 32KB of lines four times: the 64KB L1 captures them
    // after the first pass.
    const auto hot = streamKernel(64, b1, {1, 1, 1}, {32, 1, 1}, 4);
    const auto k1 = g1.launch(hot, p);

    Gpu g0(without);
    const uint32_t b0 = g0.mem().allocate(1 << 20);
    EXPECT_EQ(b0, b1);
    const auto k0 = g0.launch(hot, p);

    EXPECT_LT(k1.smCycles, k0.smCycles);
    EXPECT_GT(k1.stats.get("mem.l1d.hits"), 0.0);
}

TEST(Core, OccupancyLimits)
{
    const GpuConfig cfg = pascalGP102();
    // Thread-limited: 2048 threads / 1024 per CTA.
    EXPECT_EQ(cfg.occupancyCtas(1024, 16, 0), 2u);
    // CTA-count-limited for tiny blocks.
    EXPECT_EQ(cfg.occupancyCtas(1, 16, 0), cfg.maxCtasPerSm);
    // Register-limited: 256 regs x 512 threads x 4B = 512KB > 256KB.
    EXPECT_EQ(cfg.occupancyCtas(512, 250, 0), 0u + 1u);
    // Shared-memory-limited.
    EXPECT_EQ(cfg.occupancyCtas(32, 16, cfg.smemBytesPerSm), 1u);
}

TEST(Core, CtaSamplingScalesStats)
{
    Gpu gpu(pascalGP102());
    // 64 identical CTAs; sample vs full must agree after scaling.
    const auto launch = chainKernel(50, {64, 1, 1}, {32, 1, 1});
    SimPolicy full;
    full.fullSim = true;
    full.maxResidentCtas = 4;
    const auto kf = gpu.launch(launch, full);

    SimPolicy sampled;
    sampled.maxResidentCtas = 4;
    sampled.maxSampledCtas = 8;
    const auto ks = gpu.launch(launch, sampled);

    EXPECT_EQ(ks.sampledCtas, 8u);
    EXPECT_DOUBLE_EQ(ks.scale, 8.0);
    EXPECT_NEAR(ks.stats.get("op.add"), kf.stats.get("op.add"),
                kf.stats.get("op.add") * 0.01);
    // Extrapolated whole-GPU cycles within 25% of the full simulation.
    EXPECT_NEAR(ks.gpuCycles, kf.gpuCycles, kf.gpuCycles * 0.25);
}

TEST(Core, WarpSamplingScalesStats)
{
    Gpu gpu(pascalGP102());
    const auto launch = chainKernel(50, {4, 1, 1}, {256, 1, 1});
    SimPolicy full;
    full.fullSim = true;
    const auto kf = gpu.launch(launch, full);

    SimPolicy sampled;
    sampled.maxWarpsPerCta = 2;
    sampled.maxSampledCtas = 4;
    const auto ks = gpu.launch(launch, sampled);

    EXPECT_EQ(ks.sampledWarpsPerCta, 2u);
    EXPECT_EQ(ks.totalWarpsPerCta, 8u);
    EXPECT_NEAR(ks.stats.get("op.add"), kf.stats.get("op.add"),
                kf.stats.get("op.add") * 0.01);
}

TEST(Core, WarpSamplingDisabledByBarriers)
{
    kern::Builder b("withbar");
    kern::Reg acc = b.immU(0);
    b.emit3i(Op::Add, DType::U32, acc, acc, 1);
    b.bar();
    b.emit3i(Op::Add, DType::U32, acc, acc, 1);
    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {128, 1, 1};

    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.maxWarpsPerCta = 1;
    const auto ks = gpu.launch(l, p);
    EXPECT_EQ(ks.sampledWarpsPerCta, 4u);   // sampling refused
}

TEST(Core, PowerAndEnergyArePositiveAndConsistent)
{
    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    const auto ks = gpu.launch(chainKernel(100, {8, 1, 1}, {64, 1, 1}),
                               p);
    EXPECT_GT(ks.energyJ, 0.0);
    EXPECT_GT(ks.timeSec, 0.0);
    EXPECT_GT(ks.peakPowerW, gpu.staticPowerW(1) * 0.99);
    EXPECT_NEAR(ks.avgPowerW, ks.energyJ / ks.timeSec,
                ks.avgPowerW * 1e-9);
}

TEST(Core, ConstCacheStallsClassified)
{
    kern::Builder b("constload");
    b.constant(64);
    kern::Reg v = b.reg();
    kern::Reg sum = b.immU(0);
    for (int i = 0; i < 8; i++) {
        v = b.ldc(DType::U32, (i % 4) * 4);
        b.emit3(Op::Add, DType::U32, sum, sum, v);
    }
    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    l.constData.resize(64, 0);

    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    const auto ks = gpu.launch(l, p);
    EXPECT_GT(ks.stats.get("evt.cc"), 0.0);
    EXPECT_GT(ks.stats.get("stall.constant_memory_dependency"), 0.0);
}

TEST(Core, ActiveSmEstimate)
{
    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    // One CTA can only keep one SM busy.
    const auto one = gpu.launch(chainKernel(10, {1, 1, 1}, {32, 1, 1}),
                                p);
    EXPECT_EQ(one.activeSms, 1u);
    // Hundreds of CTAs keep the whole die busy.
    SimPolicy s;
    s.maxSampledCtas = 4;
    const auto many =
        gpu.launch(chainKernel(10, {512, 1, 1}, {32, 1, 1}), s);
    EXPECT_EQ(many.activeSms, gpu.config().numSms);
}

} // namespace
} // namespace tango::sim
