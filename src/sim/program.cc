#include "sim/program.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tango::sim {

uint32_t
Program::maxLiveRegs() const
{
    // Linear-scan liveness approximation: a register is live from its first
    // write to its last read.  Control flow is ignored, which matches the
    // "max live" metric closely for the mostly-structured kernels we build.
    std::vector<int> firstWrite(numRegs, -1);
    std::vector<int> lastRead(numRegs, -1);
    uint8_t srcs[3];
    for (size_t pc = 0; pc < code.size(); pc++) {
        const Instr &ins = code[pc];
        const int n = instrSourceRegs(ins, srcs);
        for (int i = 0; i < n; i++) {
            if (srcs[i] < numRegs)
                lastRead[srcs[i]] = static_cast<int>(pc);
        }
        if (instrWritesReg(ins) && ins.dst < numRegs &&
            firstWrite[ins.dst] < 0) {
            firstWrite[ins.dst] = static_cast<int>(pc);
        }
    }
    // Sweep program points, counting intervals covering each point.
    uint32_t live = 0, maxLive = 0;
    std::vector<int> delta(code.size() + 1, 0);
    for (uint32_t r = 0; r < numRegs; r++) {
        if (firstWrite[r] < 0)
            continue;
        int end = std::max(lastRead[r], firstWrite[r]);
        delta[firstWrite[r]] += 1;
        delta[end + 1] -= 1;
    }
    for (size_t pc = 0; pc <= code.size(); pc++) {
        live += delta[pc];
        maxLive = std::max(maxLive, live);
    }
    return maxLive;
}

DecodedProgram::DecodedProgram(const Program &prog)
{
    ops_.resize(prog.code.size());
    for (size_t pc = 0; pc < prog.code.size(); pc++) {
        const Instr &ins = prog.code[pc];
        DecodedInstr &d = ops_[pc];
        d.unit = opUnitTyped(ins.op, ins.type);
        d.dst = ins.dst;
        d.numSrcRegs =
            static_cast<uint8_t>(instrSourceRegs(ins, d.srcRegs));
        d.writesReg = instrWritesReg(ins);
        d.isLdSt = ins.op == Op::Ld || ins.op == Op::St;
        d.latency = opLatency(ins.op);
        switch (ins.op) {
          case Op::Abs: case Op::Not: case Op::Cvt: case Op::Rcp:
          case Op::Rsqrt: case Op::Sqrt: case Op::Ex2: case Op::Lg2:
            d.nsrc = 1;
            break;
          case Op::Mad: case Op::Mad24:
            d.nsrc = 3;
            break;
          default:
            d.nsrc = 2;
            break;
        }
    }
}

uint16_t
DebugInfo::intern(const std::string &label)
{
    for (size_t i = 0; i < labels.size(); i++) {
        if (labels[i] == label)
            return static_cast<uint16_t>(i);
    }
    TANGO_ASSERT(labels.size() < 0xffff, "label table overflow");
    labels.push_back(label);
    return static_cast<uint16_t>(labels.size() - 1);
}

std::string
Program::disassemble() const
{
    std::string out;
    char buf[32];
    for (size_t i = 0; i < code.size(); i++) {
        std::snprintf(buf, sizeof(buf), "%4zu: ", i);
        out += buf;
        out += disasm(code[i]);
        out += "\n";
    }
    return out;
}

void
Program::validate() const
{
    uint8_t srcs[3];
    for (size_t pc = 0; pc < code.size(); pc++) {
        const Instr &ins = code[pc];
        if (instrWritesReg(ins) && ins.dst >= numRegs)
            panic("%s: pc %zu writes r%u >= numRegs %u", name.c_str(), pc,
                  ins.dst, numRegs);
        const int n = instrSourceRegs(ins, srcs);
        for (int i = 0; i < n; i++) {
            if (srcs[i] >= numRegs)
                panic("%s: pc %zu reads r%u >= numRegs %u", name.c_str(),
                      pc, srcs[i], numRegs);
        }
        if (ins.pred != noPred && ins.pred >= numPreds)
            panic("%s: pc %zu guarded by p%u >= numPreds %u", name.c_str(),
                  pc, ins.pred, numPreds);
        if ((ins.op == Op::Bra || ins.op == Op::Ssy) &&
            (ins.target < 0 ||
             static_cast<size_t>(ins.target) > code.size())) {
            panic("%s: pc %zu branch target %d out of range", name.c_str(),
                  pc, ins.target);
        }
        if (ins.op == Op::Set && ins.dstIsPred && ins.dst >= numPreds)
            panic("%s: pc %zu sets p%u >= numPreds %u", name.c_str(), pc,
                  ins.dst, numPreds);
    }
    if (code.empty() || code.back().op != Op::Exit)
        panic("%s: program must end with exit", name.c_str());
    if (!debug.pcLabel.empty() && debug.pcLabel.size() != code.size())
        panic("%s: debug pcLabel covers %zu of %zu instructions",
              name.c_str(), debug.pcLabel.size(), code.size());
    for (uint16_t id : debug.pcLabel) {
        if (id >= debug.labels.size())
            panic("%s: debug label id %u out of range", name.c_str(), id);
    }
}

} // namespace tango::sim
