#!/usr/bin/env bash
# One-command CI gate: default build + full test suite (including the
# golden-stats corpus) + a tango-trace export validated as JSON +
# ThreadSanitizer engine/trace tests.
#
#   scripts/ci.sh            # everything
#   SKIP_TSAN=1 scripts/ci.sh  # skip the sanitizer stage (e.g. no tsan rt)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== configure + build (default preset) ==="
cmake --preset default
cmake --build --preset default -j

echo "=== tier-1 tests (includes -L golden and -L trace) ==="
ctest --preset default -j

echo "=== tango-trace export validates as JSON ==="
tracedir=$(mktemp -d)
build/tools/tango-trace --out "$tracedir" fig alexnet
python3 -m json.tool "$tracedir/alexnet.trace.json" > /dev/null
echo "alexnet.trace.json: valid"

echo "=== launch memoization replays steady-state RNN timesteps ==="
build/tools/tango-trace --summary --out "$tracedir" gru |
    grep -E 'launches: replayed=[1-9][0-9]* simulated=[1-9]'
rm -rf "$tracedir"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
    echo "=== ThreadSanitizer engine + trace tests ==="
    cmake --preset tsan
    cmake --build --preset tsan -j
    ctest --preset tsan -j
fi

echo "=== CI gate passed ==="
