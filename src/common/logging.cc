#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <vector>

#include "common/json.hh"

namespace tango {

namespace {
bool verboseFlag = true;

/** printf the varargs into a std::string (any length). */
std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    char stack[256];
    const int n = std::vsnprintf(stack, sizeof stack, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;   // formatting failed; the raw format beats nothing
    }
    if (static_cast<size_t>(n) < sizeof stack) {
        va_end(ap2);
        return std::string(stack, static_cast<size_t>(n));
    }
    std::vector<char> heap(static_cast<size_t>(n) + 1);
    std::vsnprintf(heap.data(), heap.size(), fmt, ap2);
    va_end(ap2);
    return std::string(heap.data(), static_cast<size_t>(n));
}

void
vreport(FILE *to, const char *tag, const char *fmt, va_list ap)
{
    const std::string line = logLine(tag, vformat(fmt, ap));
    std::fprintf(to, "%s\n", line.c_str());
}
} // namespace

std::string
logTimestampUtc()
{
    timespec ts{};
    clock_gettime(CLOCK_REALTIME, &ts);
    tm tm{};
    gmtime_r(&ts.tv_sec, &tm);
    char buf[40];
    const size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
    std::snprintf(buf + n, sizeof buf - n, ".%03ldZ",
                  ts.tv_nsec / 1000000);
    return buf;
}

bool
logJsonMode()
{
    // Read per call (not cached): cheap, lets tests flip the knob, and
    // never calls back into fatal() the way strict env parsing would.
    const char *e = std::getenv("TANGO_LOG_JSON");
    return e && std::strcmp(e, "1") == 0;
}

std::string
logLine(const char *tag, const std::string &msg)
{
    const std::string ts = logTimestampUtc();
    if (!logJsonMode())
        return "[" + ts + "] " + tag + ": " + msg;
    std::string out = "{\"ts\":";
    json::appendEscaped(out, ts);
    out += ",\"level\":";
    json::appendEscaped(out, tag);
    out += ",\"msg\":";
    json::appendEscaped(out, msg);
    out += '}';
    return out;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info", fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

} // namespace tango
