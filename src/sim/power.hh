/**
 * @file
 * GPUWattch-style power model.
 *
 * The core records raw micro-architectural event counts (register operands,
 * ALU ops, cache accesses, DRAM bursts, ...).  This model converts those
 * counts into per-component dynamic energy, adds per-cycle static/idle
 * power, and reports the component breakdown of the paper's Fig 5 plus the
 * windowed peak power of Fig 3.
 */

#ifndef TANGO_SIM_POWER_HH
#define TANGO_SIM_POWER_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "sim/config.hh"

namespace tango::sim {

/** The micro-architecture components of the paper's Fig 5 legend. */
enum class PowerComp : uint8_t {
    IB, IC, DC, TC, CC, SHRD, RF, SP, SFU, FPU, SCHED,
    L2C, MC, NOC, DRAM, PIPE, IDLE_CORE, CONST_DYNAMIC,
    NumComps
};

inline constexpr size_t numPowerComps =
    static_cast<size_t>(PowerComp::NumComps);

/** @return the paper's label for a component ("RFP", "L2CP", ...). */
const char *powerCompName(PowerComp c);

/** Energy per component for one kernel (or one aggregated run). */
struct PowerBreakdown
{
    /** Energy per component in joules. */
    std::array<double, numPowerComps> energyJ{};

    /** @return total energy in joules. */
    double totalJ() const;

    /** Accumulate another breakdown. */
    void merge(const PowerBreakdown &other);
};

/**
 * Convert event counters into a component energy breakdown.
 *
 * @param events  raw event counters (see core.cc for the names).
 * @param cfg     platform (supplies per-event energies + static power).
 * @param cycles  core cycles the events span.
 * @param active_sms SMs that were busy (idle power applies to all SMs,
 *                   dynamic events are already whole-GPU counts).
 * @return per-component energy in joules.
 */
PowerBreakdown computeBreakdown(const StatSet &events, const GpuConfig &cfg,
                                double cycles, double active_sms);

/** @return average power in watts for a breakdown spanning @p seconds. */
double averagePowerW(const PowerBreakdown &b, double seconds);

} // namespace tango::sim

#endif // TANGO_SIM_POWER_HH
