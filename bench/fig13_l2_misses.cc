/**
 * @file
 * Fig 13 reproduction: total L2 misses per layer type with the L1D
 * bypassed (log scale in the paper).
 *
 * Paper shape to hold: convolution and fully-connected layers are the
 * most data-intensive; in CifarNet the FC misses rival the conv misses,
 * and in AlexNet the FC layers out-miss the convolutions.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

const std::vector<std::string> figNets = {"cifarnet", "alexnet",
                                          "squeezenet", "resnet"};
const std::vector<std::string> figLayers = {"Conv",  "Pooling", "FC",
                                            "Norm",  "Fire",    "Relu",
                                            "Scale", "Eltwise"};

double
figStat(const rt::NetRun &run, const std::string &fig,
        const std::string &stat)
{
    double total = 0.0;
    for (const auto &l : run.layers) {
        std::string f = l.figType;
        if (f == "Fire_Squeeze" || f == "Fire_Expand")
            f = "Fire";
        if (f != fig)
            continue;
        for (const auto &k : l.kernels)
            total += k.stats.get(stat);
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : figNets) {
        bench::RunKey key{net};
        key.l1dBytes = 0;
        key.policy = "mem";
        keys.push_back(key);
    }
    bench::prefetch(keys);

    std::vector<std::vector<double>> values;   // [net][layer] log10(misses)
    for (const auto &net : figNets) {
        bench::RunKey key{net};
        key.l1dBytes = 0;       // paper: L1D bypassed
        key.policy = "mem";     // preserve cross-CTA reuse
        const rt::NetRun &run = bench::netRun(key);
        std::vector<double> col;
        for (const auto &fig : figLayers) {
            const double m = figStat(run, fig, "mem.l2.misses");
            col.push_back(m);
        }
        values.push_back(col);
    }

    rt::printStacked(std::cout,
                     "Fig 13: total L2 misses per layer type (no L1D)",
                     figNets, figLayers, values);

    // Headline: AlexNet FC misses vs conv misses.
    bench::RunKey ak{"alexnet"};
    ak.l1dBytes = 0;
    ak.policy = "mem";
    const rt::NetRun &alex = bench::netRun(ak);
    const double fcM = figStat(alex, "FC", "mem.l2.misses");
    const double convM = figStat(alex, "Conv", "mem.l2.misses");
    std::cout << "Headline: AlexNet FC/conv L2-miss ratio = "
              << Table::num(convM > 0 ? fcM / convM : 0.0, 2)
              << " (paper: FC > conv)\n";
    bench::registerValue("fig13/alexnet_fc_over_conv", "ratio",
                         convM > 0 ? fcM / convM : 0.0);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
