/**
 * @file
 * Launch-memoization tests (sim/gpu.cc).
 *
 * The memoization layer may only ever change *how fast* a launch is
 * served, never a single statistic or data value.  These tests pin the
 * full protocol: arming after two identical full simulations, stat
 * splicing on replay, functional (real-value) execution under replay,
 * the self-validating fallback when a data-dependent kernel diverges,
 * per-signature isolation, the TANGO_NO_MEMO kill switch, and the
 * order-stability of the µ-arch state digests the fingerprint is built
 * from.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "kernels/builder.hh"
#include "sim/cache.hh"
#include "sim/gpu.hh"

namespace tango::sim {
namespace {

/** y[i] = 2 * x[i] for one 32-thread block: input-independent control
 *  flow and addresses, so it reaches a steady state immediately. */
KernelLaunch
doubleKernel(uint32_t x, uint32_t y)
{
    kern::Builder b("memo.double");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg xa = b.addi(DType::U32, off, x);
    kern::Reg ya = b.addi(DType::U32, off, y);
    kern::Reg v = b.reg();
    b.ld(DType::F32, Space::Global, v, xa);
    b.emit3(Op::Add, DType::F32, v, v, v);
    b.st(DType::F32, Space::Global, ya, v);
    b.exit();
    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    l.params = {x, y};
    return l;
}

/** y[i] = x[i] summed n times, with the trip count n *loaded from
 *  memory*: changing n changes the executed Step stream, which is
 *  exactly the divergence replay must catch. */
KernelLaunch
dataDependentKernel(uint32_t n_addr, uint32_t x, uint32_t y)
{
    kern::Builder b("memo.datadep");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg xa = b.addi(DType::U32, off, x);
    kern::Reg ya = b.addi(DType::U32, off, y);
    kern::Reg na = b.immU(n_addr);
    kern::Reg n = b.reg();
    b.ld(DType::U32, Space::Global, n, na);
    kern::Reg v = b.reg();
    b.ld(DType::F32, Space::Global, v, xa);
    kern::Reg sum = b.immF(0.0f);
    kern::Reg i = b.immU(0);
    kern::PredReg p = b.pred();
    kern::Label top = b.label();
    kern::Label done = b.label();
    b.ssy(done);
    b.bind(top);
    b.setp(p, DType::U32, Cmp::Ge, i, n);
    b.braIf(done, p);
    b.emit3(Op::Add, DType::F32, sum, sum, v);
    b.emit3i(Op::Add, DType::U32, i, i, 1);
    b.bra(top);
    b.bind(done);
    b.st(DType::F32, Space::Global, ya, sum);
    b.exit();
    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    l.params = {n_addr, x, y};
    return l;
}

void
fillInput(Gpu &gpu, uint32_t addr, float base)
{
    float vals[32];
    for (int i = 0; i < 32; i++)
        vals[i] = base + float(i);
    gpu.mem().copyIn(addr, vals, sizeof vals);
}

SimPolicy
exactPolicy()
{
    SimPolicy p;
    p.fullSim = true;
    p.maxResidentCtas = 0;
    return p;
}

TEST(Memo, SteadyStateArmsAfterThreeOccurrencesAndReplays)
{
    Gpu gpu(pascalGP102());
    const uint32_t x = gpu.mem().allocate(4 * 32);
    const uint32_t y = gpu.mem().allocate(4 * 32);
    fillInput(gpu, x, 1.0f);
    const KernelLaunch l = doubleKernel(x, y);

    // Occurrences 1-3: full simulation (count, baseline, arm).
    KernelStats third;
    for (int occ = 1; occ <= 3; occ++) {
        const KernelStats ks = gpu.launch(l, exactPolicy());
        EXPECT_FALSE(ks.replayed) << "occurrence " << occ;
        third = ks;
    }
    // Occurrence 4+: replayed, statistics spliced bit-identically.
    for (int occ = 4; occ <= 6; occ++) {
        const KernelStats ks = gpu.launch(l, exactPolicy());
        EXPECT_TRUE(ks.replayed) << "occurrence " << occ;
        EXPECT_EQ(ks.smCycles, third.smCycles);
        EXPECT_EQ(ks.stats.all(), third.stats.all());
        EXPECT_DOUBLE_EQ(ks.energyJ, third.energyJ);
    }
}

TEST(Memo, ReplayExecutesLanesForRealValues)
{
    Gpu gpu(pascalGP102());
    const uint32_t x = gpu.mem().allocate(4 * 32);
    const uint32_t y = gpu.mem().allocate(4 * 32);
    fillInput(gpu, x, 1.0f);
    const KernelLaunch l = doubleKernel(x, y);
    for (int occ = 1; occ <= 3; occ++)
        gpu.launch(l, exactPolicy());

    // Value-only input mutation: timing is value-independent, so the
    // launch must stay replayed — and the functional fast path must
    // still compute the *new* outputs exactly.
    fillInput(gpu, x, 100.0f);
    const KernelStats ks = gpu.launch(l, exactPolicy());
    EXPECT_TRUE(ks.replayed);
    for (int i = 0; i < 32; i++) {
        const float out = gpu.mem().read<float>(y + 4 * i);
        EXPECT_EQ(out, 2.0f * (100.0f + float(i))) << "lane " << i;
    }
}

TEST(Memo, DataDependentDivergenceFallsBackAndStaysCorrect)
{
    Gpu gpu(pascalGP102());
    const uint32_t na = gpu.mem().allocate(4);
    const uint32_t x = gpu.mem().allocate(4 * 32);
    const uint32_t y = gpu.mem().allocate(4 * 32);
    fillInput(gpu, x, 1.0f);
    const KernelLaunch l = dataDependentKernel(na, x, y);

    const uint32_t four = 4;
    gpu.mem().copyIn(na, &four, 4);
    KernelStats armedStats;
    for (int occ = 1; occ <= 3; occ++)
        armedStats = gpu.launch(l, exactPolicy());
    EXPECT_TRUE(gpu.launch(l, exactPolicy()).replayed);

    // Flip the loaded trip count: the replay's Step-stream digest no
    // longer matches, so the launch must fall back to full simulation —
    // with memory restored first, so the result is still exact.
    const uint32_t eight = 8;
    gpu.mem().copyIn(na, &eight, 4);
    const KernelStats diverged = gpu.launch(l, exactPolicy());
    EXPECT_FALSE(diverged.replayed);
    EXPECT_GT(diverged.stats.get("op.add"), armedStats.stats.get("op.add"));
    for (int i = 0; i < 32; i++) {
        const float out = gpu.mem().read<float>(y + 4 * i);
        EXPECT_EQ(out, 8.0f * (1.0f + float(i))) << "lane " << i;
    }

    // The divergence re-baselined; one more identical full simulation
    // confirms the new behaviour and re-arms (the signature is already
    // warm, so re-arming is one occurrence cheaper than first arming).
    const KernelStats rearmed = gpu.launch(l, exactPolicy());
    EXPECT_FALSE(rearmed.replayed);
    const KernelStats replayedAgain = gpu.launch(l, exactPolicy());
    EXPECT_TRUE(replayedAgain.replayed);
    EXPECT_EQ(replayedAgain.smCycles, rearmed.smCycles);
}

TEST(Memo, AlternatingSignaturesArmIndependently)
{
    // The RNN h/c ping-pong shape: two interleaved signatures must keep
    // separate baselines and both reach replay.
    Gpu gpu(pascalGP102());
    const uint32_t x = gpu.mem().allocate(4 * 32);
    const uint32_t y0 = gpu.mem().allocate(4 * 32);
    const uint32_t y1 = gpu.mem().allocate(4 * 32);
    fillInput(gpu, x, 1.0f);
    const KernelLaunch a = doubleKernel(x, y0);
    const KernelLaunch b = doubleKernel(x, y1);

    for (int occ = 1; occ <= 3; occ++) {
        EXPECT_FALSE(gpu.launch(a, exactPolicy()).replayed);
        EXPECT_FALSE(gpu.launch(b, exactPolicy()).replayed);
    }
    EXPECT_TRUE(gpu.launch(a, exactPolicy()).replayed);
    EXPECT_TRUE(gpu.launch(b, exactPolicy()).replayed);
}

TEST(Memo, ColdStartDropsBaselines)
{
    Gpu gpu(pascalGP102());
    const uint32_t x = gpu.mem().allocate(4 * 32);
    const uint32_t y = gpu.mem().allocate(4 * 32);
    fillInput(gpu, x, 1.0f);
    const KernelLaunch l = doubleKernel(x, y);
    for (int occ = 1; occ <= 3; occ++)
        gpu.launch(l, exactPolicy());
    EXPECT_TRUE(gpu.launch(l, exactPolicy()).replayed);

    gpu.coldStart();
    EXPECT_FALSE(gpu.launch(l, exactPolicy()).replayed);
}

TEST(Memo, EnvKillSwitchDisablesReplayInProcess)
{
    Gpu gpu(pascalGP102());
    const uint32_t x = gpu.mem().allocate(4 * 32);
    const uint32_t y = gpu.mem().allocate(4 * 32);
    fillInput(gpu, x, 1.0f);
    const KernelLaunch l = doubleKernel(x, y);
    for (int occ = 1; occ <= 3; occ++)
        gpu.launch(l, exactPolicy());
    EXPECT_TRUE(gpu.launch(l, exactPolicy()).replayed);

    setenv("TANGO_NO_MEMO", "1", 1);
    EXPECT_FALSE(gpu.launch(l, exactPolicy()).replayed);
    unsetenv("TANGO_NO_MEMO");
    EXPECT_TRUE(gpu.launch(l, exactPolicy()).replayed);

    // SimPolicy::memoize=false disables it structurally too.
    SimPolicy off = exactPolicy();
    off.memoize = false;
    EXPECT_FALSE(gpu.launch(l, off).replayed);
}

TEST(Memo, CacheStateDigestIsRecencyOrderStable)
{
    CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.assoc = 4;
    cfg.lineBytes = 128;
    cfg.mshrs = 8;

    // Same final tag content and recency *order*, different raw access
    // counts: the digest must canonicalize to the order, because the
    // internal use counter keeps growing across launches even in a
    // steady state.
    Cache c1(cfg);
    Cache c2(cfg);
    c1.access(0, false, 0);
    c1.access(4096, false, 1);
    c2.access(0, false, 0);
    c2.access(0, false, 1);
    c2.access(0, false, 2);
    c2.access(4096, false, 3);
    EXPECT_EQ(c1.stateDigest(), c2.stateDigest());

    // Flipping the recency order must change the digest.
    Cache c3(cfg);
    c3.access(4096, false, 0);
    c3.access(0, false, 1);
    EXPECT_NE(c1.stateDigest(), c3.stateDigest());

    // Different tag content must change the digest.
    Cache c4(cfg);
    c4.access(0, false, 0);
    c4.access(8192, false, 1);
    EXPECT_NE(c1.stateDigest(), c4.stateDigest());
}

} // namespace
} // namespace tango::sim
