/**
 * @file
 * Fig 4 reproduction: average power (energy) breakdown per layer type
 * for the CNNs.
 *
 * Paper shape to hold (Observation 4): although convolution dominates
 * execution *time*, the *power* distribution is more balanced — pooling
 * draws nearly as much as convolution in CifarNet, and ResNet's
 * Scale/Relu/Norm layers together rival its convolutions — because every
 * layer type hammers the caches and memory.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

const std::vector<std::string> figNets = {"cifarnet", "alexnet",
                                          "squeezenet", "resnet"};
const std::vector<std::string> figLayers = {"Conv",    "Pooling", "FC",
                                            "Norm",    "Fire",    "Relu",
                                            "Scale",   "Eltwise", "Others"};

double
avgPowerOfFig(const rt::NetRun &run, const std::string &fig)
{
    // Average power of a layer class = its energy / its time.
    double e = 0.0, t = 0.0;
    for (const auto &l : run.layers) {
        std::string f = l.figType;
        if (f == "Fire_Squeeze" || f == "Fire_Expand")
            f = "Fire";
        if (f != fig)
            continue;
        e += l.energyJ();
        t += l.timeSec();
    }
    return t > 0 ? e / t : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : figNets)
        keys.push_back({net});
    bench::prefetch(keys);

    std::vector<std::vector<double>> values;   // [net][layer]
    for (const auto &net : figNets) {
        const rt::NetRun &run = bench::netRun({net});
        std::vector<double> col;
        for (const auto &fig : figLayers)
            col.push_back(avgPowerOfFig(run, fig));
        values.push_back(col);
    }

    rt::printStacked(std::cout,
                     "Fig 4: average power per layer type (W)", figNets,
                     figLayers, values);

    // Observation 4 headline: pooling-vs-conv power ratio in CifarNet
    // should be far closer to 1 than the time ratio is.
    const rt::NetRun &cifar = bench::netRun({"cifarnet"});
    const double convP = avgPowerOfFig(cifar, "Conv");
    const double poolP = avgPowerOfFig(cifar, "Pooling");
    const double convT = cifar.figTypeTime("Conv");
    const double poolT = cifar.figTypeTime("Pooling");
    std::cout << "Observation 4 (CifarNet): pool/conv power ratio = "
              << Table::num(convP > 0 ? poolP / convP : 0.0, 2)
              << " vs pool/conv time ratio = "
              << Table::num(convT > 0 ? poolT / convT : 0.0, 3) << "\n";
    bench::registerValue("fig04/cifarnet/pool_conv_power_ratio", "ratio",
                         convP > 0 ? poolP / convP : 0.0);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
