# Empty dependencies file for test_layers.
# This may be replaced when dependencies are built.
