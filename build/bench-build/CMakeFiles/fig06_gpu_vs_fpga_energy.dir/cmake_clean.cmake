file(REMOVE_RECURSE
  "../bench/fig06_gpu_vs_fpga_energy"
  "../bench/fig06_gpu_vs_fpga_energy.pdb"
  "CMakeFiles/fig06_gpu_vs_fpga_energy.dir/fig06_gpu_vs_fpga_energy.cc.o"
  "CMakeFiles/fig06_gpu_vs_fpga_energy.dir/fig06_gpu_vs_fpga_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gpu_vs_fpga_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
