#include "sim/config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tango::sim {

const char *
schedName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::GTO: return "gto";
      case SchedPolicy::LRR: return "lrr";
      case SchedPolicy::TLV: return "tlv";
    }
    return "?";
}

bool
schedFromName(const std::string &name, SchedPolicy &out)
{
    for (SchedPolicy p :
         {SchedPolicy::GTO, SchedPolicy::LRR, SchedPolicy::TLV}) {
        if (name == schedName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

uint32_t
GpuConfig::occupancyCtas(uint32_t threads_per_cta, uint32_t regs_per_thread,
                         uint32_t smem_per_cta) const
{
    TANGO_ASSERT(threads_per_cta > 0, "empty CTA");
    uint32_t limit = maxCtasPerSm;
    limit = std::min(limit, maxThreadsPerSm / threads_per_cta);
    uint32_t warps = (threads_per_cta + 31) / 32;
    limit = std::min(limit, maxWarpsPerSm / std::max(1u, warps));
    uint32_t reg_bytes = std::max(1u, regs_per_thread) * 4 * threads_per_cta;
    limit = std::min(limit, regFileBytesPerSm / reg_bytes);
    if (smem_per_cta > 0)
        limit = std::min(limit, smemBytesPerSm / smem_per_cta);
    return std::max(1u, limit);
}

GpuConfig
pascalGP102()
{
    GpuConfig c;
    c.name = "GP102";
    c.numSms = 28;
    c.coresPerSm = 128;
    c.maxWarpsPerSm = 64;
    c.regFileBytesPerSm = 256 * 1024;
    c.smemBytesPerSm = 96 * 1024;
    c.l1dBytes = 64 * 1024;          // paper: 64KB default, 128/256 swept
    c.l2Bytes = 3 * 1024 * 1024;
    c.coreClockGhz = 1.48;
    c.scheduler = SchedPolicy::GTO;  // paper: gto default; lrr, tlv swept
    return c;
}

GpuConfig
keplerGK210()
{
    GpuConfig c;
    c.name = "GK210";
    c.numSms = 15;                   // 2880 cores / 192 per SMX
    c.coresPerSm = 192;
    c.maxWarpsPerSm = 64;
    c.regFileBytesPerSm = 512 * 1024;
    c.smemBytesPerSm = 128 * 1024;   // paper: 128KB shared/L1 per block
    c.l1dBytes = 48 * 1024;
    c.l2Bytes = 1536 * 1024;
    c.l2HitLatency = 220;
    c.dramLatency = 280;
    c.coreClockGhz = 0.875;
    c.issueWidth = 2;
    // Kepler-class process burns more static power per SM.
    c.power.idleCoreW = 1.9;
    c.power.constDynamicW = 0.8;
    c.power.boardStaticW = 18.0;
    return c;
}

GpuConfig
maxwellTX1()
{
    GpuConfig c;
    c.name = "TX1";
    c.numSms = 2;                    // 256 cores / 128 per SMM
    c.coresPerSm = 128;
    c.maxWarpsPerSm = 64;
    c.regFileBytesPerSm = 128 * 1024; // paper: 32768 regs
    c.smemBytesPerSm = 48 * 1024;
    c.l1dBytes = 24 * 1024;
    c.l2Bytes = 256 * 1024;
    c.l2HitLatency = 160;
    c.dramLatency = 300;             // LPDDR4
    c.dramIssueInterval = 6.0;       // much lower bandwidth than server GDDR
    c.coreClockGhz = 0.998;
    c.issueWidth = 2;
    // Mobile part: low leakage, but the whole-board draw (DRAM, SoC
    // fabric, regulators) that a Wattsup meter sees is a few watts.
    c.power.idleCoreW = 0.9;
    c.power.constDynamicW = 0.4;
    c.power.boardStaticW = 3.4;
    return c;
}

} // namespace tango::sim
