# Empty dependencies file for fig15_scheduler_sensitivity.
# This may be replaced when dependencies are built.
