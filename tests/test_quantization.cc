/**
 * @file
 * Quantization-extension tests (the paper's stated future work): s16
 * Q-format conv weights must agree with the dequantized CPU reference
 * bit-for-bit, end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/kernels.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using nn::Layer;
using nn::LayerKind;
using nn::Tensor;

TEST(Quantization, RoundTripBoundedError)
{
    nn::Network net = nn::models::buildCifarNet();
    nn::initWeights(net);
    // Keep pre-quantization copies.
    std::vector<Tensor> orig;
    for (const auto &l : net.layers())
        orig.push_back(l.weights);

    const int quantized = nn::quantizeConvWeights(net);
    EXPECT_EQ(quantized, 3);   // three conv layers

    for (size_t i = 0; i < net.layers().size(); i++) {
        const Layer &l = net.layers()[i];
        if (l.kind != LayerKind::Conv)
            continue;
        EXPECT_TRUE(l.quantWeights);
        EXPECT_GT(l.weightScale, 0.0f);
        float maxAbs = 0.0f;
        for (uint64_t j = 0; j < orig[i].size(); j++)
            maxAbs = std::max(maxAbs, std::fabs(orig[i][j]));
        for (uint64_t j = 0; j < l.weights.size(); j++) {
            // Quantization error bounded by half a step.
            EXPECT_NEAR(l.weights[j], orig[i][j],
                        0.51f * maxAbs / 32767.0f);
            // Integer values fit in s16.
            EXPECT_LE(std::fabs(l.weightsQ[j]), 32767.0f);
            EXPECT_EQ(l.weightsQ[j], std::round(l.weightsQ[j]));
        }
    }
}

TEST(Quantization, KernelMatchesDequantizedReference)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.name = "qconv";
    l.C = 3;
    l.H = l.W = 10;
    l.K = 4;
    l.R = l.S = 3;
    l.pad = 1;
    l.P = l.Q = 10;
    l.relu = true;
    Rng rng(5);
    l.weights = Tensor({l.K, l.C, l.R, l.S});
    for (uint64_t i = 0; i < l.weights.size(); i++)
        l.weights[i] = rng.gaussian() * 0.4f;
    l.biasT = Tensor({l.K});
    for (uint64_t i = 0; i < l.biasT.size(); i++)
        l.biasT[i] = rng.gaussian() * 0.1f;

    // Quantize in place (network-level helper needs a Network; do the
    // same math here via a one-layer network).
    nn::Network net;
    net.name = "q";
    net.inC = l.C;
    net.inH = net.inW = l.H;
    l.inputs = {-1};
    net.add(l);
    ASSERT_EQ(nn::quantizeConvWeights(net), 1);
    const Layer &ql = net.layers()[0];

    Tensor in({l.C, l.H, l.W});
    for (uint64_t i = 0; i < in.size(); i++)
        in[i] = rng.gaussian();
    const Tensor ref = referenceForward(ql, {&in});

    sim::Gpu gpu(sim::pascalGP102());
    auto &mem = gpu.mem();
    const uint32_t inA = mem.allocate(in.bytes());
    mem.copyIn(inA, in.data(), in.bytes());
    const uint32_t wA = mem.allocate(2ull * ql.weightsQ.size());
    std::vector<int16_t> packed(ql.weightsQ.size());
    for (uint64_t i = 0; i < ql.weightsQ.size(); i++)
        packed[i] = static_cast<int16_t>(ql.weightsQ[i]);
    mem.copyIn(wA, packed.data(), packed.size() * 2);
    const uint32_t bA = mem.allocate(ql.biasT.bytes());
    mem.copyIn(bA, ql.biasT.data(), ql.biasT.bytes());
    const uint32_t outA = mem.allocate(4ull * l.K * l.P * l.Q);

    kern::ConvDesc d;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.K = l.K;
    d.R = l.R;
    d.S = l.S;
    d.pad = 1;
    d.relu = true;
    d.quantWeights = true;
    d.filterSrc = kern::ChannelSrc::GridX;
    d.pixelMap = kern::PixelMap::TileOrigin;
    d.grid = {l.K, 1, 1};
    d.block = {l.Q, l.P, 1};
    sim::SimPolicy full;
    full.fullSim = true;
    gpu.launch(kern::makeConvLaunch(d, inA, wA, bA, outA, ql.weightScale),
               full);

    for (uint64_t i = 0; i < ref.size(); i++) {
        const float got = mem.read<float>(outA + 4 * i);
        ASSERT_EQ(got, ref[i]) << "elem " << i;   // bit-exact
    }
}

TEST(Quantization, EndToEndCifarNetStillChecks)
{
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildCifarNet());
    nn::initWeights(model);
    nn::quantizeConvWeights(model.cnn());

    rt::RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 2e-4f;
    rt::Runtime rtm(gpu);
    const rt::NetRun run = rtm.run(model, p);
    EXPECT_EQ(run.checkFailures, 0u);
    // Quantized kernels execute s16 loads: visible in the dtype mix.
    EXPECT_GT(run.totals.get("dtype.s16"), 0.0);
}

TEST(Quantization, HalvesConvWeightFootprint)
{
    nn::Network f32 = nn::models::buildAlexNet();
    nn::Network q = nn::models::buildAlexNet();
    nn::initWeights(q);
    nn::quantizeConvWeights(q);

    uint64_t f32Bytes = 0, qBytes = 0;
    for (size_t i = 0; i < f32.layers().size(); i++) {
        if (f32.layers()[i].kind != LayerKind::Conv)
            continue;
        f32Bytes += rt::layerWeightBytes(f32.layers()[i]);
        qBytes += rt::layerWeightBytes(q.layers()[i]);
    }
    EXPECT_LT(qBytes, f32Bytes * 0.55);
    EXPECT_GT(qBytes, f32Bytes * 0.45);
}

TEST(Quantization, ClassificationAgreesWithF32)
{
    // Top-1 class of the quantized model matches the f32 model on the
    // synthetic input (quantization noise is far below the logit gaps).
    nn::Network f32 = nn::models::buildCifarNet();
    nn::initWeights(f32);
    nn::Network q = nn::models::buildCifarNet();
    nn::initWeights(q);
    nn::quantizeConvWeights(q);

    const Tensor in = nn::models::makeInputImage(3, 32, 32);
    EXPECT_EQ(f32.forward(in).argmax(), q.forward(in).argmax());
}

} // namespace
} // namespace tango
