/**
 * @file
 * Network model structure tests: layer counts, shape chaining, Table III
 * launch geometries, parameter counts against the published model sizes.
 */

#include <gtest/gtest.h>

#include "nn/models/models.hh"
#include "nn/weights.hh"

namespace tango::nn {
namespace {

/** Verify producer/consumer shape chaining through the whole net. */
void
checkShapes(const Network &net)
{
    const auto &ls = net.layers();
    for (size_t i = 0; i < ls.size(); i++) {
        const Layer &l = ls[i];
        for (int p : l.inputs) {
            ASSERT_LT(p, static_cast<int>(i));
            uint64_t prodSize;
            if (p < 0) {
                prodSize = uint64_t(net.inC) * net.inH * net.inW;
            } else {
                prodSize = ls[p].outputSize();
            }
            uint64_t consSize;
            switch (l.kind) {
              case LayerKind::Conv:
                consSize = uint64_t(l.C) * l.H * l.W;
                break;
              case LayerKind::FC:
              case LayerKind::Softmax:
                consSize = l.inN;
                break;
              case LayerKind::Concat:
                continue;   // checked via channel sum below
              default:
                consSize = uint64_t(l.C) * l.H * l.W;
                break;
            }
            EXPECT_EQ(prodSize, consSize)
                << net.name << "." << l.name << " input from " << p;
        }
        if (l.kind == LayerKind::Concat) {
            uint32_t channels = 0;
            for (int p : l.inputs)
                channels += ls[p].K;
            EXPECT_EQ(channels, l.K) << net.name << "." << l.name;
        }
    }
}

TEST(Models, CifarNetStructure)
{
    const Network net = models::buildCifarNet();
    EXPECT_EQ(net.layers().size(), 9u);
    checkShapes(net);
    // 3 conv + 2 fc + softmax; output 9 classes.
    EXPECT_EQ(net.layers().back().outN, 9u);
}

TEST(Models, AlexNetStructure)
{
    Network net = models::buildAlexNet();
    checkShapes(net);
    int convs = 0, fcs = 0, norms = 0, pools = 0;
    for (const auto &l : net.layers()) {
        convs += l.kind == LayerKind::Conv;
        fcs += l.kind == LayerKind::FC;
        norms += l.kind == LayerKind::LRN;
        pools += l.kind == LayerKind::Pool;
    }
    EXPECT_EQ(convs, 5);
    EXPECT_EQ(fcs, 3);
    EXPECT_EQ(norms, 2);
    EXPECT_EQ(pools, 3);
    // ~61M parameters (BVLC AlexNet without groups is ~61-65M).
    initWeights(net);
    EXPECT_GT(net.totalParams(), 55'000'000u);
    EXPECT_LT(net.totalParams(), 75'000'000u);
}

TEST(Models, SqueezeNetStructure)
{
    Network net = models::buildSqueezeNet();
    checkShapes(net);
    int fires = 0;
    for (const auto &l : net.layers())
        fires += (l.kind == LayerKind::Concat);
    EXPECT_EQ(fires, 8);   // fire2..fire9
    initWeights(net);
    // SqueezeNet v1.0: ~1.25M parameters ("50x fewer than AlexNet").
    EXPECT_GT(net.totalParams(), 1'000'000u);
    EXPECT_LT(net.totalParams(), 1'500'000u);
}

TEST(Models, ResNet50Structure)
{
    const Network net = models::buildResNet50();
    checkShapes(net);
    int convs = 0, eltwise = 0;
    for (const auto &l : net.layers()) {
        convs += l.kind == LayerKind::Conv;
        eltwise += l.kind == LayerKind::Eltwise;
    }
    // 1 stem + 16 blocks x 3 + 4 projections = 53 convolution layers.
    EXPECT_EQ(convs, 53);
    EXPECT_EQ(eltwise, 16);
    EXPECT_EQ(net.layers().back().outN, 1000u);
}

TEST(Models, ResNet50ParamCount)
{
    Network net = models::buildResNet50();
    initWeights(net);
    // ~25.5M weights + BN/scale params.
    EXPECT_GT(net.totalParams(), 23'000'000u);
    EXPECT_LT(net.totalParams(), 28'000'000u);
}

TEST(Models, Vgg16Structure)
{
    Network net = models::buildVgg16();
    checkShapes(net);
    int convs = 0, fcs = 0, pools = 0;
    for (const auto &l : net.layers()) {
        convs += l.kind == LayerKind::Conv;
        fcs += l.kind == LayerKind::FC;
        pools += l.kind == LayerKind::Pool;
    }
    EXPECT_EQ(convs, 13);
    EXPECT_EQ(fcs, 3);
    EXPECT_EQ(pools, 5);
    initWeights(net);
    // ~138M parameters.
    EXPECT_GT(net.totalParams(), 130'000'000u);
    EXPECT_LT(net.totalParams(), 145'000'000u);
}

TEST(Models, TableIIIGeometries)
{
    // Spot-check the launch hints against the paper's Table III.
    const Network cifar = models::buildCifarNet();
    EXPECT_EQ(cifar.layers()[0].hint.block, (kern::Dim3{32, 32, 1}));
    EXPECT_EQ(cifar.layers()[0].hint.grid, (kern::Dim3{1, 1, 1}));

    const Network alex = models::buildAlexNet();
    // conv1: four tiles of 32/23.
    EXPECT_EQ(alex.layers()[0].hint.tiles.size(), 4u);
    EXPECT_EQ(alex.layers()[0].hint.tiles[0].bw, 32u);
    EXPECT_EQ(alex.layers()[0].hint.tiles[3].bw, 23u);
    // fc6: one single-thread block per neuron.
    for (const auto &l : alex.layers()) {
        if (l.name == "fc6") {
            EXPECT_EQ(l.hint.grid.x, 4096u);
            EXPECT_EQ(l.hint.block.count(), 1u);
        }
    }

    const Network vgg = models::buildVgg16();
    // conv1_1: (16,16,64) grid of (14,14) blocks.
    EXPECT_EQ(vgg.layers()[0].hint.grid, (kern::Dim3{16, 16, 64}));
    EXPECT_EQ(vgg.layers()[0].hint.block, (kern::Dim3{14, 14, 1}));

    const Network sq = models::buildSqueezeNet();
    // conv1 output 111x111 -> RowBlock (111)(111).
    EXPECT_EQ(sq.layers()[0].hint.grid.x, 111u);
    EXPECT_EQ(sq.layers()[0].hint.block.x, 111u);
}

TEST(Models, RnnGeometries)
{
    const RnnModel gru = models::buildGru();
    EXPECT_FALSE(gru.lstm);
    EXPECT_EQ(gru.hidden, 100u);
    EXPECT_EQ(gru.seqLen, models::kDefaultRnnSeqLen);
    EXPECT_EQ(gru.seqLen % 2, 0u);   // parity contract, see models.hh
    // The paper's exact Table I unroll stays constructible.
    EXPECT_EQ(models::buildGru(2).seqLen, 2u);
    const RnnModel lstm = models::buildLstm();
    EXPECT_TRUE(lstm.lstm);
    EXPECT_EQ(lstm.hidden, 100u);
    EXPECT_EQ(lstm.seqLen, models::kDefaultRnnSeqLen);
}

TEST(Models, BuildByNameMatchesDirect)
{
    for (const auto &name : models::cnnNames()) {
        const Network net = models::buildCnn(name);
        EXPECT_EQ(net.name, name);
        EXPECT_FALSE(net.layers().empty());
    }
}

TEST(Models, SyntheticInputsAreDeterministic)
{
    const Tensor a = models::makeInputImage(3, 16, 16, 5);
    const Tensor b = models::makeInputImage(3, 16, 16, 5);
    const Tensor c = models::makeInputImage(3, 16, 16, 6);
    for (uint64_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i], b[i]);
    bool differ = false;
    for (uint64_t i = 0; i < a.size(); i++)
        differ |= (a[i] != c[i]);
    EXPECT_TRUE(differ);

    const auto s1 = models::makeStockSequence(8, 3);
    const auto s2 = models::makeStockSequence(8, 3);
    EXPECT_EQ(s1, s2);
    for (float v : s1) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Models, CifarNetForwardShapes)
{
    Network net = models::buildCifarNet();
    initWeights(net);
    const Tensor in = models::makeInputImage(3, 32, 32);
    const auto outs = net.forwardAll(in);
    EXPECT_EQ(outs[0].shape(), (std::vector<uint32_t>{32, 32, 32}));
    EXPECT_EQ(outs[1].shape(), (std::vector<uint32_t>{32, 15, 15}));
    EXPECT_EQ(outs.back().shape(), (std::vector<uint32_t>{9}));
}

} // namespace
} // namespace tango::nn
