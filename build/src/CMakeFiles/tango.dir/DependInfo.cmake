
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tango.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tango.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/tango.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/tango.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/tango.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/tango.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/tango.dir/common/table.cc.o" "gcc" "src/CMakeFiles/tango.dir/common/table.cc.o.d"
  "/root/repo/src/fpga/pynq.cc" "src/CMakeFiles/tango.dir/fpga/pynq.cc.o" "gcc" "src/CMakeFiles/tango.dir/fpga/pynq.cc.o.d"
  "/root/repo/src/kernels/activation.cc" "src/CMakeFiles/tango.dir/kernels/activation.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/activation.cc.o.d"
  "/root/repo/src/kernels/builder.cc" "src/CMakeFiles/tango.dir/kernels/builder.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/builder.cc.o.d"
  "/root/repo/src/kernels/conv.cc" "src/CMakeFiles/tango.dir/kernels/conv.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/conv.cc.o.d"
  "/root/repo/src/kernels/depthwise.cc" "src/CMakeFiles/tango.dir/kernels/depthwise.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/depthwise.cc.o.d"
  "/root/repo/src/kernels/fc.cc" "src/CMakeFiles/tango.dir/kernels/fc.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/fc.cc.o.d"
  "/root/repo/src/kernels/norm.cc" "src/CMakeFiles/tango.dir/kernels/norm.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/norm.cc.o.d"
  "/root/repo/src/kernels/pool.cc" "src/CMakeFiles/tango.dir/kernels/pool.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/pool.cc.o.d"
  "/root/repo/src/kernels/rnn.cc" "src/CMakeFiles/tango.dir/kernels/rnn.cc.o" "gcc" "src/CMakeFiles/tango.dir/kernels/rnn.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/tango.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/tango.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/models/alexnet.cc" "src/CMakeFiles/tango.dir/nn/models/alexnet.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/alexnet.cc.o.d"
  "/root/repo/src/nn/models/cifarnet.cc" "src/CMakeFiles/tango.dir/nn/models/cifarnet.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/cifarnet.cc.o.d"
  "/root/repo/src/nn/models/mobilenet.cc" "src/CMakeFiles/tango.dir/nn/models/mobilenet.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/mobilenet.cc.o.d"
  "/root/repo/src/nn/models/resnet.cc" "src/CMakeFiles/tango.dir/nn/models/resnet.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/resnet.cc.o.d"
  "/root/repo/src/nn/models/rnn_models.cc" "src/CMakeFiles/tango.dir/nn/models/rnn_models.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/rnn_models.cc.o.d"
  "/root/repo/src/nn/models/squeezenet.cc" "src/CMakeFiles/tango.dir/nn/models/squeezenet.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/squeezenet.cc.o.d"
  "/root/repo/src/nn/models/vggnet.cc" "src/CMakeFiles/tango.dir/nn/models/vggnet.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/models/vggnet.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/tango.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/tango.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/weights.cc" "src/CMakeFiles/tango.dir/nn/weights.cc.o" "gcc" "src/CMakeFiles/tango.dir/nn/weights.cc.o.d"
  "/root/repo/src/profiler/profiler.cc" "src/CMakeFiles/tango.dir/profiler/profiler.cc.o" "gcc" "src/CMakeFiles/tango.dir/profiler/profiler.cc.o.d"
  "/root/repo/src/runtime/lowering.cc" "src/CMakeFiles/tango.dir/runtime/lowering.cc.o" "gcc" "src/CMakeFiles/tango.dir/runtime/lowering.cc.o.d"
  "/root/repo/src/runtime/report.cc" "src/CMakeFiles/tango.dir/runtime/report.cc.o" "gcc" "src/CMakeFiles/tango.dir/runtime/report.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/CMakeFiles/tango.dir/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/tango.dir/runtime/runtime.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/tango.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/tango.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/CMakeFiles/tango.dir/sim/core.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/core.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/CMakeFiles/tango.dir/sim/dram.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/dram.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/CMakeFiles/tango.dir/sim/gpu.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/gpu.cc.o.d"
  "/root/repo/src/sim/interp.cc" "src/CMakeFiles/tango.dir/sim/interp.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/interp.cc.o.d"
  "/root/repo/src/sim/isa.cc" "src/CMakeFiles/tango.dir/sim/isa.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/isa.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/tango.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/power.cc" "src/CMakeFiles/tango.dir/sim/power.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/power.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/CMakeFiles/tango.dir/sim/program.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/program.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/tango.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/stall.cc" "src/CMakeFiles/tango.dir/sim/stall.cc.o" "gcc" "src/CMakeFiles/tango.dir/sim/stall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
