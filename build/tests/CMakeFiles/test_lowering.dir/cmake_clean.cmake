file(REMOVE_RECURSE
  "CMakeFiles/test_lowering.dir/test_lowering.cc.o"
  "CMakeFiles/test_lowering.dir/test_lowering.cc.o.d"
  "test_lowering"
  "test_lowering.pdb"
  "test_lowering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
