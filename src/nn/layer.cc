#include "nn/layer.hh"

#include "common/logging.hh"

namespace tango::nn {

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Input: return "Input";
      case LayerKind::Conv: return "Conv";
      case LayerKind::Depthwise: return "Depthwise";
      case LayerKind::Pool: return "Pool";
      case LayerKind::FC: return "FC";
      case LayerKind::LRN: return "LRN";
      case LayerKind::BatchNorm: return "BatchNorm";
      case LayerKind::Scale: return "Scale";
      case LayerKind::ReLU: return "ReLU";
      case LayerKind::Eltwise: return "Eltwise";
      case LayerKind::Softmax: return "Softmax";
      case LayerKind::Concat: return "Concat";
    }
    return "?";
}

uint64_t
Layer::outputSize() const
{
    switch (kind) {
      case LayerKind::FC:
      case LayerKind::Softmax:
        return outN;
      case LayerKind::Conv:
        return uint64_t(K) * P * Q;
      case LayerKind::Depthwise:
        return uint64_t(C) * P * Q;
      case LayerKind::Pool:
        return globalAvg ? C : uint64_t(C) * P * Q;
      case LayerKind::Concat:
        return uint64_t(K) * P * Q;
      default:
        // Shape-preserving layers.
        return uint64_t(C) * H * W;
    }
}

std::vector<uint32_t>
Layer::outputShape() const
{
    switch (kind) {
      case LayerKind::FC:
      case LayerKind::Softmax:
        return {outN};
      case LayerKind::Conv:
      case LayerKind::Concat:
        return {K, P, Q};
      case LayerKind::Depthwise:
        return {C, P, Q};
      case LayerKind::Pool:
        return globalAvg ? std::vector<uint32_t>{C}
                         : std::vector<uint32_t>{C, P, Q};
      default:
        return {C, H, W};
    }
}

uint64_t
Layer::macs() const
{
    switch (kind) {
      case LayerKind::Conv:
        return uint64_t(K) * P * Q * C * R * S;
      case LayerKind::Depthwise:
        return uint64_t(C) * P * Q * R * S;
      case LayerKind::FC:
        return uint64_t(outN) * inN;
      case LayerKind::Pool:
        return globalAvg ? uint64_t(C) * H * W
                         : uint64_t(C) * P * Q * R * S;
      case LayerKind::LRN:
        return uint64_t(C) * H * W * localSize;
      default:
        return outputSize();
    }
}

uint64_t
Layer::paramCount() const
{
    return weights.size() + biasT.size() + mean.size() + var.size() +
           gamma.size() + betaT.size();
}

} // namespace tango::nn
