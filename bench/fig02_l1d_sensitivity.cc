/**
 * @file
 * Fig 2 reproduction: normalized execution time while sweeping the L1D
 * size — bypassed (No L1), 64 KB (Pascal default), 128 KB, 256 KB — for
 * every network.
 *
 * Paper shape to hold (Observation 2): CNNs speed up substantially with
 * an L1D (AlexNet ~2x at 64 KB, small further gains beyond); RNNs are
 * insensitive.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

const std::vector<uint32_t> sizes = {0, 64 * 1024, 128 * 1024, 256 * 1024};
const std::vector<std::string> sizeNames = {"No L1", "L1(64K)", "2xL1",
                                            "4xL1"};

} // namespace

int
main(int argc, char **argv)
{
    tango::setVerbose(false);

    const auto nets = nn::models::allNames();

    std::vector<bench::RunKey> keys;
    for (const auto &net : nets) {
        for (uint32_t size : sizes) {
            bench::RunKey key{net};
            key.l1dBytes = size;
            keys.push_back(key);
        }
    }
    bench::prefetch(keys);

    std::vector<std::vector<double>> values;   // [net][size]
    for (const auto &net : nets) {
        double base = 0.0;
        std::vector<double> col;
        for (size_t i = 0; i < sizes.size(); i++) {
            bench::RunKey key{net};
            key.l1dBytes = sizes[i];
            const rt::NetRun &run = bench::netRun(key);
            if (i == 0)
                base = run.totalTimeSec;
            col.push_back(base > 0 ? run.totalTimeSec / base : 0.0);
        }
        values.push_back(col);
        bench::registerValue("fig02/" + net + "/speedup_64K", "speedup",
                             col[1] > 0 ? 1.0 / col[1] : 0.0);
    }

    rt::printStacked(std::cout,
                     "Fig 2: execution time vs L1D size (normalized to "
                     "No L1)",
                     nets, sizeNames, values);

    Table obs("Observation 2: 64KB-L1D speedup over bypassed L1");
    obs.header({"network", "speedup"});
    for (size_t i = 0; i < nets.size(); i++) {
        obs.row({nets[i],
                 Table::num(values[i][1] > 0 ? 1.0 / values[i][1] : 0.0, 2) +
                     "x"});
    }
    obs.print(std::cout);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
