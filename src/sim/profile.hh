/**
 * @file
 * Per-PC attribution profile of one kernel launch (tango::prof backend).
 *
 * When SimPolicy::profile is set, SmCore charges issued cycles, per-reason
 * stall cycles, L1D/L2 misses and DRAM transactions to flat per-PC counter
 * arrays while it simulates, and attaches the result to the launch's
 * KernelStats.  The counters are kept as *raw* (unscaled) integers from the
 * simulated CTA/warp population; the scale factors that were applied to the
 * owning StatSet ride along so rollups can reproduce the scaled totals
 * bit-for-bit (profileConsistent() checks exactly that).
 *
 * The profile also carries its own copy of the source mapping (statement
 * labels from the kernel DSL's mark() API) and the per-PC disassembly text:
 * profiles ride on NetRun through the engine's result cache and disk spill,
 * where the Program itself does not survive.
 */

#ifndef TANGO_SIM_PROFILE_HH
#define TANGO_SIM_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/stall.hh"

namespace tango::sim {

struct KernelProfile
{
    // Source mapping + listing (lock-step with the program's code).
    std::vector<std::string> labels;    ///< label id -> text; [0] = ""
    std::vector<uint16_t> pcLabel;      ///< pc -> label id
    std::vector<std::string> disasm;    ///< pc -> disassembled instruction

    // Raw per-PC counters of the simulated population (unscaled).
    std::vector<uint64_t> issued;       ///< [pc] instruction issues
    std::vector<uint64_t> stalls;       ///< [pc * numStalls + reason] cycles
    std::vector<uint64_t> l1dMisses;    ///< [pc]
    std::vector<uint64_t> l2Misses;     ///< [pc]
    std::vector<uint64_t> dramTxns;     ///< [pc] DRAM transactions

    /** Bytes per DRAM transaction (the L2 line size), for byte rollups. */
    uint32_t lineBytes = 128;

    /**
     * Scale factors applied to the owning KernelStats' stats, in
     * application order: first `scale` (CTA x warp extrapolation,
     * Gpu::launch), then `workScale` (the runtime's loop-channel
     * extrapolation).  scaled() reproduces the StatSet's arithmetic
     * exactly, so integer counter sums map bitwise onto scaled totals.
     */
    double scale = 1.0;
    double workScale = 1.0;

    uint32_t numPcs() const { return static_cast<uint32_t>(issued.size()); }

    uint64_t stallAt(uint32_t pc, size_t reason) const
    {
        return stalls[size_t(pc) * numStalls + reason];
    }

    /** Total stall cycles charged to @p pc across all reasons. */
    uint64_t stallTotalAt(uint32_t pc) const;

    /** Map a raw counter onto the owning StatSet's scale, bit-exactly. */
    double scaled(uint64_t raw) const
    {
        double v = static_cast<double>(raw);
        v *= scale;
        v *= workScale;
        return v;
    }

    /** @return statement label of @p pc ("" when unlabeled). */
    const std::string &labelAt(uint32_t pc) const
    {
        return labels[pc < pcLabel.size() ? pcLabel[pc] : 0];
    }

    bool operator==(const KernelProfile &o) const = default;
};

/**
 * Verify that @p prof's per-PC counters sum exactly (bit-for-bit after
 * scaling) to the whole-kernel totals in @p stats: "issued", every
 * "stall.<reason>", "mem.l1d.misses", "mem.l2.misses" and "evt.dram".
 *
 * @param why when non-null, receives a description of the first mismatch.
 * @return whether every total matches.
 */
bool profileConsistent(const KernelProfile &prof, const StatSet &stats,
                       std::string *why = nullptr);

} // namespace tango::sim

#endif // TANGO_SIM_PROFILE_HH
