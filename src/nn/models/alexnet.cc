#include "nn/models/models.hh"

#include "common/logging.hh"

namespace tango::nn::models {

Network
buildAlexNet()
{
    // AlexNet (no channel groups), 3x227x227 -> 1000 classes.
    // Table III mapping: one block per filter; the 55x55 plane of the
    // first stage is tiled as 32+23 across four kernels (Conv 1-1..1-4 and
    // Norm 1-1..1-4); wide later stages split filters across two kernels.
    Network net;
    net.name = "alexnet";
    net.inC = 3;
    net.inH = net.inW = 227;

    int prev = -1;

    const std::vector<TileSplit> split55 = {
        {0, 0, 32, 32}, {32, 0, 23, 32}, {0, 32, 32, 23}, {32, 32, 23, 23}};

    auto conv = [&](const std::string &name, uint32_t c, uint32_t hw,
                    uint32_t k, uint32_t rs, uint32_t stride, uint32_t pad,
                    uint32_t filters_per_kernel, uint32_t block_hw,
                    const std::vector<TileSplit> &tiles) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = hw;
        l.K = k;
        l.R = l.S = rs;
        l.stride = stride;
        l.pad = pad;
        l.P = l.Q = (hw + 2 * pad - rs) / stride + 1;
        l.relu = true;
        l.inputs = {prev};
        l.hint.chanSrc = kern::ChannelSrc::GridX;
        l.hint.pixMap = kern::PixelMap::TileOrigin;
        l.hint.filtersPerKernel = filters_per_kernel;
        l.hint.grid = {filters_per_kernel ? filters_per_kernel : k, 1, 1};
        l.hint.block = {block_hw, block_hw, 1};
        l.hint.tiles = tiles;
        prev = net.add(l);
        return l.P;
    };
    auto lrn = [&](const std::string &name, uint32_t c, uint32_t hw,
                   uint32_t block_hw, const std::vector<TileSplit> &tiles) {
        Layer l;
        l.kind = LayerKind::LRN;
        l.name = name;
        l.figType = "Norm";
        l.C = c;
        l.H = l.W = hw;
        l.localSize = 5;
        l.inputs = {prev};
        l.hint.chanSrc = kern::ChannelSrc::GridX;
        l.hint.pixMap = kern::PixelMap::TileOrigin;
        l.hint.grid = {c, 1, 1};
        l.hint.block = {block_hw, block_hw, 1};
        l.hint.tiles = tiles;
        prev = net.add(l);
    };
    auto pool = [&](const std::string &name, uint32_t c, uint32_t hw) {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = name;
        l.figType = "Pooling";
        l.C = c;
        l.H = l.W = hw;
        l.R = l.S = 3;
        l.stride = 2;
        l.P = l.Q = (hw - 3) / 2 + 1;
        l.inputs = {prev};
        l.hint.chanSrc = kern::ChannelSrc::GridX;
        l.hint.pixMap = kern::PixelMap::TileOrigin;
        l.hint.grid = {c, 1, 1};
        l.hint.block = {l.P, l.Q, 1};
        prev = net.add(l);
        return l.P;
    };
    auto fc = [&](const std::string &name, uint32_t in, uint32_t out,
                  bool relu) {
        Layer l;
        l.kind = LayerKind::FC;
        l.name = name;
        l.figType = "FC";
        l.inN = in;
        l.outN = out;
        l.relu = relu;
        l.inputs = {prev};
        // Table III: one single-thread block per output neuron.
        l.hint.grid = {out, 1, 1};
        l.hint.block = {1, 1, 1};
        prev = net.add(l);
    };

    // conv1: 11x11/4, 96 filters, 227 -> 55 (four output tiles).
    conv("conv1", 3, 227, 96, 11, 4, 0, 0, 32, split55);
    lrn("norm1", 96, 55, 32, split55);
    pool("pool1", 96, 55);                       // -> 27
    // conv2: 5x5 pad 2, 256 filters over two 128-filter kernels.
    conv("conv2", 96, 27, 256, 5, 1, 2, 128, 27, {});
    lrn("norm2", 256, 27, 27, {});
    pool("pool2", 256, 27);                      // -> 13
    conv("conv3", 256, 13, 384, 3, 1, 1, 0, 13, {});
    conv("conv4", 384, 13, 384, 3, 1, 1, 192, 13, {});
    conv("conv5", 384, 13, 256, 3, 1, 1, 128, 13, {});
    pool("pool3", 256, 13);                      // -> 6

    fc("fc6", 256 * 6 * 6, 4096, true);
    fc("fc7", 4096, 4096, true);
    fc("fc8", 4096, 1000, false);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 1000;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);

    return net;
}

} // namespace tango::nn::models
