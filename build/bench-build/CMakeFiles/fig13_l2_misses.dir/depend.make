# Empty dependencies file for fig13_l2_misses.
# This may be replaced when dependencies are built.
