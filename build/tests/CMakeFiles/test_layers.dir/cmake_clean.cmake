file(REMOVE_RECURSE
  "CMakeFiles/test_layers.dir/test_layers.cc.o"
  "CMakeFiles/test_layers.dir/test_layers.cc.o.d"
  "test_layers"
  "test_layers.pdb"
  "test_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
