/**
 * @file
 * The SIMT warp interpreter: functional execution of kernel programs.
 *
 * Unlike a trace generator, the interpreter computes *real values* — loads
 * read and stores write actual device memory, arithmetic produces real
 * results.  Small kernels can therefore run end-to-end on the simulator and
 * be checked bit-for-bit against the CPU reference implementation, while
 * the same execution drives the timing model through the Step records.
 *
 * Branch divergence is handled with a PDOM-style reconvergence stack keyed
 * by SSY-declared reconvergence points, as in real NVIDIA hardware.
 */

#ifndef TANGO_SIM_INTERP_HH
#define TANGO_SIM_INTERP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/memory.hh"
#include "sim/program.hh"

namespace tango::sim {

/** Threads per warp. */
inline constexpr uint32_t warpSize = 32;

/** A lane mask (bit i = lane i active). */
using Mask = uint32_t;

/** Everything the timing model needs to know about one executed warp
 *  instruction. */
struct Step
{
    Op op = Op::Nop;
    DType type = DType::None;
    Unit unit = Unit::SP;
    uint32_t activeCount = 0;   ///< lanes that actually executed
    bool warpDone = false;      ///< warp retired with this step

    // Memory information (valid when isMem).
    bool isMem = false;
    bool isStore = false;
    Space space = Space::Global;
    uint32_t numSegments = 0;   ///< coalesced 128B global segments
    /** Segment base byte addresses.  Only [0, numSegments) are defined
     *  (plus [0] for Const loads); left uninitialized on purpose — zeroing
     *  128 bytes per dynamic instruction dominates small steps. */
    uint32_t segments[warpSize];
    uint32_t sharedSerialization = 1; ///< shared-memory bank conflict factor
    bool constUniform = true;   ///< constant access was a broadcast

    bool controlTransfer = false; ///< pc changed non-sequentially
    uint32_t numSrcRegs = 0;    ///< register-file read operands
    bool writesReg = false;     ///< register-file write-back
};

/**
 * Coalesce the active lanes' global addresses into 128-byte segments.
 *
 * Segments are emitted in first-appearance order over ascending lane index
 * (the order the per-lane memory model observes them), deduplicated with a
 * last-segment fast path — warps overwhelmingly touch runs of consecutive
 * addresses, so most lanes resolve without scanning the emitted list.
 *
 * @param addrs per-lane byte addresses (entries of inactive lanes ignored).
 * @param exec  active-lane mask.
 * @param out   receives the segment base addresses.
 * @return number of distinct segments written to @p out.
 */
uint32_t coalesceSegments(const uint32_t addrs[warpSize], Mask exec,
                          uint32_t out[warpSize]);

/**
 * Execution state of one warp.
 *
 * The owning core provides global memory, the CTA's shared-memory block and
 * the launch's constant bank.
 */
class WarpExec
{
  public:
    /**
     * @param launch kernel being executed.
     * @param cta_id this warp's CTA coordinates.
     * @param warp_in_cta warp index within the CTA.
     * @param gmem device global memory.
     * @param smem the CTA's shared-memory block (smemBytes long).
     * @param dec  predecoded form of the launch's program; pass the shared
     *             per-kernel instance to decode once instead of per warp
     *             (nullptr = decode privately).
     */
    WarpExec(const KernelLaunch &launch, Dim3 cta_id, uint32_t warp_in_cta,
             DeviceMemory &gmem, std::vector<uint8_t> &smem,
             const DecodedProgram *dec = nullptr);

    /** @return whether every lane has retired. */
    bool done() const { return done_; }

    /** @return the next instruction to issue (after reconvergence). */
    const Instr &peek();

    /** @return the predecoded form of the next instruction to issue. */
    const DecodedInstr &peekDecoded();

    /** @return current pc (after reconvergence resolution). */
    uint32_t pc();

    /** Execute the next instruction for all active lanes. */
    Step step();

    /** @return warp index within the CTA. */
    uint32_t warpInCta() const { return warpInCta_; }

  private:
    struct StackEntry
    {
        uint32_t pc;
        int32_t rpc;
        Mask mask;
        bool isReconv;
    };

    /** Pop/reconverge until the current path is executable. */
    void resolve();

    uint32_t readReg(uint32_t lane, uint8_t r) const;
    void writeReg(uint32_t lane, uint8_t r, uint32_t v);
    uint32_t operand(uint32_t lane, const Instr &ins, int i) const;

    const KernelLaunch &launch_;
    const Program &prog_;
    const DecodedProgram *dec_ = nullptr;
    std::unique_ptr<DecodedProgram> ownDec_;  ///< used when none was shared
    DeviceMemory &gmem_;
    std::vector<uint8_t> &smem_;

    // Register state: reg-major [reg][lane].
    std::vector<uint32_t> regs_;
    std::vector<Mask> preds_;

    // Per-lane thread coordinates.
    uint32_t tidX_[warpSize], tidY_[warpSize], tidZ_[warpSize];
    Dim3 ctaId_;
    uint32_t warpInCta_ = 0;

    // Control flow.
    uint32_t pc_ = 0;
    int32_t rpc_ = -1;
    Mask active_ = 0;
    std::vector<StackEntry> stack_;
    bool done_ = false;
};

} // namespace tango::sim

#endif // TANGO_SIM_INTERP_HH
