/**
 * @file
 * tango::metrics — the process-wide runtime metrics registry.
 *
 * Every runtime layer (rt::Engine, serve::Server, sim::Gpu, the
 * estimate tier) records its operational counters here, so one scrape
 * shows the whole serving picture: request mix, cache effectiveness,
 * launch memoization, queue depth, latency percentiles.  Three
 * instrument kinds:
 *
 *  - Counter   — monotonic uint64 (requests served, cache misses);
 *  - Gauge     — signed level that moves both ways (in-flight sims);
 *  - Histogram — fixed log2-bucket value distribution (latencies,
 *                sim wall times).  Buckets are powers of two split
 *                into 8 linear sub-buckets, so every reported
 *                percentile is an exact bucket bound within 12.5% of
 *                the true sample.
 *
 * Hot-path updates are single relaxed atomic RMWs — no locks, no
 * allocation, safe from any thread (the sim worker pool, per-connection
 * serve threads).  Readers snapshot bucket arrays value-by-value and
 * merge snapshots; merging is associative and exact (integer adds), so
 * per-shard or per-interval snapshots compose.
 *
 * Exposition: renderPrometheus() (text format v0.0.4; the serve
 * protocol's "metrics" frame and tango-top consume this) and
 * renderJson() (the TANGO_METRICS_DUMP periodic snapshot file, and
 * what tango-load embeds into BENCH_serve.json).
 */

#ifndef TANGO_METRICS_METRICS_HH
#define TANGO_METRICS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tango::metrics {

/** One `key="value"` instrument label. */
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/** A monotonically increasing counter. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** A level that can move both ways (queue depths, in-flight work). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    void sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * The fixed log2 bucket layout shared by every Histogram: values
 * 0..7 get exact one-value buckets (group 0); each later group g
 * covers [2^(g+2), 2^(g+3)) split into 8 equal sub-buckets of width
 * 2^(g-1).  The layout is a compile-time constant, which is what makes
 * snapshot merging exact and percentile bounds honest: a reported
 * percentile is the upper bound of the bucket holding the rank-p
 * sample, never an interpolation.
 */
struct Buckets
{
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kSub = 1u << kSubBits;   // 8 sub-buckets
    static constexpr unsigned kGroups = 44;
    static constexpr unsigned kCount = kGroups * kSub;  // 352 buckets

    /** The bucket @p v falls into (values beyond the last bucket clamp
     *  into it). */
    static unsigned index(uint64_t v);
    /** Smallest / largest value bucket @p idx holds. */
    static uint64_t lower(unsigned idx);
    static uint64_t upper(unsigned idx);
};

/** A point-in-time copy of one histogram; merge() composes them. */
struct HistogramSnapshot
{
    std::vector<uint64_t> buckets;   ///< kCount entries (empty = zero)
    uint64_t sum = 0;                ///< sum of observed values

    uint64_t count() const;
    /** Add @p other in (associative, exact integer arithmetic). */
    void merge(const HistogramSnapshot &other);

    /** Upper / lower bound of the bucket holding the rank-⌈p·count⌉
     *  sample (0 when empty).  The true percentile lies in
     *  [percentileLower(p), percentileUpper(p)] — pinned by
     *  test_metrics. */
    double percentileUpper(double p) const;
    double percentileLower(double p) const;
};

/** A fixed-log2-bucket histogram over non-negative integer values
 *  (microseconds, milliseconds — the name carries the unit). */
class Histogram
{
  public:
    Histogram();

    void observe(uint64_t v)
    {
        buckets_[Buckets::index(v)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;

  private:
    std::atomic<uint64_t> buckets_[Buckets::kCount];
    std::atomic<uint64_t> sum_{0};
};

/**
 * The instrument registry.  Registration (counter()/gauge()/histogram())
 * takes a mutex and interns by (family name, labels) — re-registering
 * returns the SAME instrument, so call sites can hold references in
 * function-local statics and update lock-free forever after.
 * Instruments live as long as the registry; global() is leaked (like
 * rt::Engine::global()) so instruments stay valid during exit.
 */
class Registry
{
  public:
    Registry();   // out of line: members need the full Instrument type
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram &histogram(const std::string &name, const std::string &help,
                         const Labels &labels = {});

    /** Prometheus text exposition (HELP/TYPE per family, cumulative
     *  `_bucket{le=...}` + `_sum` + `_count` per histogram). */
    std::string renderPrometheus() const;

    /** One JSON object: {"counters":{series:value},"gauges":{...},
     *  "histograms":{series:{count,sum,p50,p99,buckets:[[le,n],...]}}}. */
    std::string renderJson() const;

    /** Start a background thread writing renderJson() to @p path every
     *  @p periodMs (atomic tmp+rename).  stopDumper() joins it. */
    void startDumper(const std::string &path, uint64_t periodMs);
    void stopDumper();
    /** Write one snapshot to the dumper path now (no-op when no dumper
     *  was started). */
    void dumpNow();

    /** The process-wide registry.  First use honours
     *  TANGO_METRICS_DUMP=<path>,<ms> by starting the dumper. */
    static Registry &global();

  private:
    struct Instrument;
    Instrument &intern(const std::string &name, const std::string &help,
                       const Labels &labels, int kind);
    void dumperLoop();
    void writeSnapshot() const;

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Instrument>> instruments_;

    std::thread dumper_;
    std::atomic<bool> dumperStop_{false};
    std::string dumpPath_;
    uint64_t dumpPeriodMs_ = 0;
    mutable std::mutex dumpMu_;   ///< serializes snapshot file writes
};

// Convenience forwarders onto Registry::global() — what instrumentation
// sites use:
//   static auto &hits = metrics::counter("tango_engine_cache_total",
//                                        "...", {{"result", "mem_hit"}});
Counter &counter(const std::string &name, const std::string &help,
                 const Labels &labels = {});
Gauge &gauge(const std::string &name, const std::string &help,
             const Labels &labels = {});
Histogram &histogram(const std::string &name, const std::string &help,
                     const Labels &labels = {});

} // namespace tango::metrics

#endif // TANGO_METRICS_METRICS_HH
