#include "fpga/pynq.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "runtime/lowering.hh"

namespace tango::fpga {

FpgaRun
runOnPynq(const nn::Network &net, const PynqConfig &cfg)
{
    FpgaRun run;
    run.netName = net.name;
    run.peakPowerW = cfg.boardPowerW;

    const double macsPerSec =
        cfg.dspSlices * cfg.dspUtilization * cfg.clockMhz * 1e6;

    for (const auto &l : net.layers()) {
        if (l.kind == nn::LayerKind::Input ||
            l.kind == nn::LayerKind::Concat) {
            continue;
        }
        FpgaLayerRun fr;
        fr.name = l.name;

        // Dedicated pipeline: one MAC per DSP per cycle once full.
        fr.computeSec = static_cast<double>(l.macs()) / macsPerSec;

        // Working set: input + output + weights.  When it exceeds BRAM,
        // the layer is split into sub-kernels that each reload code and
        // re-stream their slice of the data (paper Section IV-E1).
        const uint64_t inBytes = 4ull * l.C * l.H * l.W;
        const uint64_t outBytes = 4ull * l.outputSize();
        const uint64_t wBytes = rt::layerWeightBytes(l);
        const uint64_t workingSet = inBytes + outBytes + wBytes;
        fr.subKernels = static_cast<uint32_t>(
            std::max<uint64_t>(1, (workingSet + cfg.bramBytes - 1) /
                                      cfg.bramBytes));
        fr.streamSec =
            static_cast<double>(workingSet) / cfg.ddrBytesPerSec;
        fr.loadSec = cfg.kernelLoadSec * fr.subKernels;

        run.totalTimeSec += fr.totalSec();
        run.layers.push_back(fr);
    }
    run.totalEnergyJ = run.totalTimeSec * cfg.boardPowerW;
    return run;
}

} // namespace tango::fpga
