#include "nn/models/models.hh"

#include "common/logging.hh"

namespace tango::nn::models {

namespace {

/** MobileNet mapping: one block per channel striding the plane (the
 *  depthwise structure maps naturally onto the ResNet-style hint). */
LaunchHint
mobiHint(uint32_t channels)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::GridX;
    h.pixMap = kern::PixelMap::StrideLoop;
    h.grid = {channels, 1, 1};
    h.block = {16, 16, 1};
    return h;
}

} // namespace

Network
buildMobileNet()
{
    // MobileNet v1 (width 1.0, 224x224) — the extension network the
    // paper names as in development (Section III): a stem convolution
    // followed by 13 depthwise-separable blocks (depthwise 3x3 +
    // pointwise 1x1), global average pooling and a classifier.
    Network net;
    net.name = "mobilenet";
    net.inC = 3;
    net.inH = net.inW = 224;

    int prev = -1;
    uint32_t c = 3, h = 224;

    auto conv = [&](const std::string &name, uint32_t k, uint32_t rs,
                    uint32_t stride, uint32_t pad) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = h;
        l.K = k;
        l.R = l.S = rs;
        l.stride = stride;
        l.pad = pad;
        l.P = l.Q = (h + 2 * pad - rs) / stride + 1;
        l.relu = true;
        l.inputs = {prev};
        l.hint = mobiHint(k);
        prev = net.add(l);
        c = k;
        h = l.P;
    };
    auto dw = [&](const std::string &name, uint32_t stride) {
        Layer l;
        l.kind = LayerKind::Depthwise;
        l.name = name;
        l.figType = "Conv";   // depthwise counts as convolution work
        l.C = c;
        l.H = l.W = h;
        l.K = c;
        l.R = l.S = 3;
        l.stride = stride;
        l.pad = 1;
        l.P = l.Q = (h + 2 - 3) / stride + 1;
        l.relu = true;
        l.inputs = {prev};
        l.hint = mobiHint(c);
        prev = net.add(l);
        h = l.P;
    };

    conv("conv1", 32, 3, 2, 1);        // 224 -> 112
    const struct
    {
        uint32_t out;
        uint32_t stride;
    } blocks[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                  {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                  {512, 1}, {1024, 2}, {1024, 1}};
    int bi = 2;
    for (const auto &blk : blocks) {
        dw("conv" + std::to_string(bi) + "_dw", blk.stride);
        conv("conv" + std::to_string(bi) + "_pw", blk.out, 1, 1, 0);
        bi++;
    }

    Layer gap;
    gap.kind = LayerKind::Pool;
    gap.name = "global_avg_pool";
    gap.figType = "Pooling";
    gap.C = 1024;
    gap.H = gap.W = h;   // 7
    gap.globalAvg = true;
    gap.avg = true;
    gap.P = gap.Q = 1;
    gap.inputs = {prev};
    gap.hint.grid = {1, 1, 1};
    gap.hint.block = {1024, 1, 1};
    prev = net.add(gap);

    Layer fc;
    fc.kind = LayerKind::FC;
    fc.name = "fc1000";
    fc.figType = "FC";
    fc.inN = 1024;
    fc.outN = 1000;
    fc.inputs = {prev};
    fc.hint.grid = {1000, 1, 1};
    fc.hint.block = {1, 1, 1};
    prev = net.add(fc);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 1000;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);

    return net;
}

} // namespace tango::nn::models
