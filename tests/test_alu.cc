/**
 * @file
 * Exhaustive ALU semantics: every arithmetic/logic opcode of the virtual
 * ISA executed on the interpreter against a C++ reference, over a sweep
 * of random operands and all integer types.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.hh"
#include "kernels/builder.hh"
#include "sim/interp.hh"
#include "sim/memory.hh"

namespace tango::sim {
namespace {

/** Execute `dst = op(a, b, c)` for one warp and return lane 0's result. */
uint32_t
runOp(Op op, DType t, uint32_t a, uint32_t b, uint32_t c,
      DType srcType = DType::None)
{
    DeviceMemory mem(1 << 16);
    const uint32_t out = mem.allocate(16);

    kern::Builder bld("alu");
    kern::Reg ra = bld.immU(a);
    kern::Reg rb = bld.immU(b);
    kern::Reg rc = bld.immU(c);
    kern::Reg rd = bld.reg();
    switch (op) {
      case Op::Mad:
        bld.mad(t, rd, ra, rb, rc);
        break;
      case Op::Cvt:
        rd = bld.cvt(t, srcType, ra);
        break;
      case Op::Abs:
      case Op::Not:
      case Op::Rcp:
      case Op::Rsqrt:
      case Op::Sqrt:
      case Op::Ex2:
      case Op::Lg2:
        bld.emit2(op, t, rd, ra);
        break;
      default:
        bld.emit3(op, t, rd, ra, rb);
        break;
    }
    kern::Reg addr = bld.immU(out);
    bld.st(DType::U32, Space::Global, addr, rd);
    KernelLaunch l;
    l.program = bld.finish();
    l.grid = l.block = {1, 1, 1};
    std::vector<uint8_t> smem(1);
    WarpExec w(l, {0, 0, 0}, 0, mem, smem);
    while (!w.done())
        w.step();
    return mem.read<uint32_t>(out);
}

float
f(uint32_t u)
{
    return std::bit_cast<float>(u);
}

uint32_t
u(float x)
{
    return std::bit_cast<uint32_t>(x);
}

class AluRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AluRandom, IntegerOpsMatchCpp)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 50; iter++) {
        const uint32_t a = rng.next();
        const uint32_t b = rng.next();
        EXPECT_EQ(runOp(Op::Add, DType::U32, a, b, 0), a + b);
        EXPECT_EQ(runOp(Op::Sub, DType::U32, a, b, 0), a - b);
        EXPECT_EQ(runOp(Op::Mul, DType::U32, a, b, 0), a * b);
        EXPECT_EQ(runOp(Op::And, DType::U32, a, b, 0), a & b);
        EXPECT_EQ(runOp(Op::Or, DType::U32, a, b, 0), a | b);
        EXPECT_EQ(runOp(Op::Xor, DType::U32, a, b, 0), a ^ b);
        EXPECT_EQ(runOp(Op::Not, DType::U32, a, 0, 0), ~a);
        EXPECT_EQ(runOp(Op::Shl, DType::U32, a, b, 0), a << (b & 31));
        EXPECT_EQ(runOp(Op::Shr, DType::U32, a, b, 0), a >> (b & 31));
        EXPECT_EQ(runOp(Op::Shr, DType::S32, a, b, 0),
                  uint32_t(int32_t(a) >> (b & 31)));
        EXPECT_EQ(runOp(Op::Min, DType::U32, a, b, 0), std::min(a, b));
        EXPECT_EQ(runOp(Op::Max, DType::U32, a, b, 0), std::max(a, b));
        EXPECT_EQ(runOp(Op::Min, DType::S32, a, b, 0),
                  uint32_t(std::min(int32_t(a), int32_t(b))));
        EXPECT_EQ(runOp(Op::Max, DType::S32, a, b, 0),
                  uint32_t(std::max(int32_t(a), int32_t(b))));
        EXPECT_EQ(runOp(Op::Abs, DType::S32, a, 0, 0),
                  uint32_t(std::abs(int32_t(a))));
        if (b != 0) {
            EXPECT_EQ(runOp(Op::Div, DType::U32, a, b, 0), a / b);
        }
    }
}

TEST_P(AluRandom, FloatOpsMatchCpp)
{
    Rng rng(GetParam() + 7);
    for (int iter = 0; iter < 50; iter++) {
        const float x = rng.gaussian() * 10.0f;
        const float y = rng.gaussian() * 10.0f + 0.1f;
        const uint32_t a = u(x), b = u(y);
        EXPECT_EQ(f(runOp(Op::Add, DType::F32, a, b, 0)), x + y);
        EXPECT_EQ(f(runOp(Op::Sub, DType::F32, a, b, 0)), x - y);
        EXPECT_EQ(f(runOp(Op::Mul, DType::F32, a, b, 0)), x * y);
        EXPECT_EQ(f(runOp(Op::Div, DType::F32, a, b, 0)), x / y);
        EXPECT_EQ(f(runOp(Op::Min, DType::F32, a, b, 0)),
                  std::fmin(x, y));
        EXPECT_EQ(f(runOp(Op::Max, DType::F32, a, b, 0)),
                  std::fmax(x, y));
        EXPECT_EQ(f(runOp(Op::Abs, DType::F32, a, 0, 0)), std::fabs(x));
        const float ax = std::fabs(x) + 0.01f;
        EXPECT_NEAR(f(runOp(Op::Sqrt, DType::F32, u(ax), 0, 0)),
                    std::sqrt(ax), 1e-5f * std::sqrt(ax) + 1e-7f);
        EXPECT_NEAR(f(runOp(Op::Rcp, DType::F32, u(ax), 0, 0)), 1.0f / ax,
                    1e-5f / ax);
        EXPECT_NEAR(f(runOp(Op::Rsqrt, DType::F32, u(ax), 0, 0)),
                    1.0f / std::sqrt(ax), 2e-5f);
    }
}

TEST_P(AluRandom, NarrowTypesCanonicalize)
{
    Rng rng(GetParam() + 13);
    for (int iter = 0; iter < 50; iter++) {
        const uint32_t a = rng.next();
        const uint32_t b = rng.next();
        EXPECT_EQ(runOp(Op::Add, DType::U16, a, b, 0), (a + b) & 0xffff);
        const uint32_t s = runOp(Op::Add, DType::S16, a, b, 0);
        EXPECT_EQ(s, uint32_t(int32_t(int16_t((a + b) & 0xffff))));
        EXPECT_EQ(runOp(Op::And, DType::U16, a, b, 0), (a & b) & 0xffff);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(AluEdge, Mad24MasksTo24Bits)
{
    // Raw-instruction program: d = mad24(a, b, c).
    DeviceMemory mem(1 << 16);
    const uint32_t out = mem.allocate(16);
    Program p;
    p.name = "mad24";
    p.numRegs = 5;
    auto movU = [&](uint8_t dst, uint32_t v) {
        Instr i;
        i.op = Op::Mov;
        i.type = DType::U32;
        i.dst = dst;
        i.src[0] = Instr::immReg;
        i.imm = v;
        p.code.push_back(i);
    };
    const uint32_t a = 0x12345678, b = 0x0abcdef0, c = 99;
    movU(0, a);
    movU(1, b);
    movU(2, c);
    movU(3, out);
    Instr mad;
    mad.op = Op::Mad24;
    mad.type = DType::U32;
    mad.dst = 4;
    mad.src[0] = 0;
    mad.src[1] = 1;
    mad.src[2] = 2;
    p.code.push_back(mad);
    Instr st;
    st.op = Op::St;
    st.type = DType::U32;
    st.space = Space::Global;
    st.src[0] = 3;
    st.src[1] = 4;
    p.code.push_back(st);
    Instr ex;
    ex.op = Op::Exit;
    p.code.push_back(ex);
    p.validate();

    KernelLaunch l;
    l.program = std::make_shared<Program>(p);
    l.grid = l.block = {1, 1, 1};
    std::vector<uint8_t> smem(1);
    WarpExec w(l, {0, 0, 0}, 0, mem, smem);
    while (!w.done())
        w.step();
    EXPECT_EQ(mem.read<uint32_t>(out),
              (a & 0xffffffu) * (b & 0xffffffu) + c);
}

TEST(AluEdge, CvtConversions)
{
    // f32 -> s32 truncates toward zero; s32 -> f32 exact for small ints.
    EXPECT_EQ(runOp(Op::Cvt, DType::S32, u(3.9f), 0, 0, DType::F32), 3u);
    EXPECT_EQ(runOp(Op::Cvt, DType::S32, u(-3.9f), 0, 0, DType::F32),
              uint32_t(-3));
    EXPECT_EQ(f(runOp(Op::Cvt, DType::F32, uint32_t(-7), 0, 0,
                      DType::S32)),
              -7.0f);
    EXPECT_EQ(f(runOp(Op::Cvt, DType::F32, 42u, 0, 0, DType::U32)),
              42.0f);
    // f32 -> u32 clamps negatives to zero.
    EXPECT_EQ(runOp(Op::Cvt, DType::U32, u(-5.0f), 0, 0, DType::F32), 0u);
}

TEST(AluEdge, DivByZeroIsZero)
{
    EXPECT_EQ(runOp(Op::Div, DType::U32, 42, 0, 0), 0u);
    EXPECT_EQ(runOp(Op::Div, DType::S32, 42, 0, 0), 0u);
}

TEST(AluEdge, ShiftsMaskAmount)
{
    EXPECT_EQ(runOp(Op::Shl, DType::U32, 1, 33, 0), 2u);   // 33 & 31 = 1
    EXPECT_EQ(runOp(Op::Shr, DType::U32, 4, 33, 0), 2u);
}

TEST(AluEdge, FloatSpecials)
{
    // exp2/log2 round trip.
    const float x = 3.0f;
    const float e = f(runOp(Op::Ex2, DType::F32, u(x), 0, 0));
    EXPECT_NEAR(e, 8.0f, 1e-4f);
    const float l = f(runOp(Op::Lg2, DType::F32, u(8.0f), 0, 0));
    EXPECT_NEAR(l, 3.0f, 1e-5f);
    // rcp(inf) = 0.
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(f(runOp(Op::Rcp, DType::F32, u(inf), 0, 0)), 0.0f);
}

TEST(AluEdge, MadIsFused)
{
    // mad.f32 must behave like fmaf (single rounding).
    DeviceMemory mem(1 << 16);
    const uint32_t out = mem.allocate(16);
    kern::Builder bld("fma");
    kern::Reg a = bld.immF(1.0f + 0x1p-23f);
    kern::Reg b = bld.immF(1.0f - 0x1p-23f);
    kern::Reg c = bld.immF(-1.0f);
    kern::Reg d = bld.reg();
    bld.mad(DType::F32, d, a, b, c);
    kern::Reg addr = bld.immU(out);
    bld.st(DType::F32, Space::Global, addr, d);
    KernelLaunch l;
    l.program = bld.finish();
    l.grid = l.block = {1, 1, 1};
    std::vector<uint8_t> smem(1);
    WarpExec w(l, {0, 0, 0}, 0, mem, smem);
    while (!w.done())
        w.step();
    const float got = mem.read<float>(out);
    const float want =
        std::fmaf(1.0f + 0x1p-23f, 1.0f - 0x1p-23f, -1.0f);
    EXPECT_EQ(got, want);
    EXPECT_NE(got, 0.0f);   // non-fused would round to exactly 0
}

} // namespace
} // namespace tango::sim
