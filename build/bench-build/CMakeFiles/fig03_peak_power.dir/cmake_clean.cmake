file(REMOVE_RECURSE
  "../bench/fig03_peak_power"
  "../bench/fig03_peak_power.pdb"
  "CMakeFiles/fig03_peak_power.dir/fig03_peak_power.cc.o"
  "CMakeFiles/fig03_peak_power.dir/fig03_peak_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_peak_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
