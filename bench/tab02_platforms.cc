/**
 * @file
 * Table II + Table IV reproduction: the GPU platform configurations
 * (server GK210, mobile TX1, simulated GP102) and the PynQ-Z1 FPGA
 * platform the energy comparison models.
 */

#include "bench_util.hh"

#include "fpga/pynq.hh"

namespace {

using namespace tango;

void
printGpus()
{
    const sim::GpuConfig cfgs[] = {sim::keplerGK210(), sim::maxwellTX1(),
                                   sim::pascalGP102()};
    Table t("Table II: GPU architectures used for evaluation");
    t.header({"parameter", "Server (GK210)", "Mobile (TX1)",
              "Simulator (GP102)"});
    auto row = [&](const std::string &name, auto get) {
        std::vector<std::string> cells = {name};
        for (const auto &c : cfgs)
            cells.push_back(get(c));
        t.row(cells);
    };
    row("CUDA cores", [](const sim::GpuConfig &c) {
        return std::to_string(c.numSms * c.coresPerSm);
    });
    row("SMs", [](const sim::GpuConfig &c) {
        return std::to_string(c.numSms);
    });
    row("L1D per SM", [](const sim::GpuConfig &c) {
        return std::to_string(c.l1dBytes / 1024) + " KB";
    });
    row("L2", [](const sim::GpuConfig &c) {
        return std::to_string(c.l2Bytes / 1024) + " KB";
    });
    row("Registers per SM", [](const sim::GpuConfig &c) {
        return std::to_string(c.regFileBytesPerSm / 4);
    });
    row("Shared mem per SM", [](const sim::GpuConfig &c) {
        return std::to_string(c.smemBytesPerSm / 1024) + " KB";
    });
    row("Core clock", [](const sim::GpuConfig &c) {
        return Table::num(c.coreClockGhz, 3) + " GHz";
    });
    row("Warp scheduler", [](const sim::GpuConfig &c) {
        return std::string(sim::schedName(c.scheduler)) +
               " (default; lrr, tlv selectable)";
    });
    t.print(std::cout);
}

void
printFpga()
{
    fpga::PynqConfig c;
    Table t("Table IV: FPGA platform used for evaluation (PynQ-Z1)");
    t.header({"parameter", "value"});
    t.row({"Programmable logic", "Xilinx Zynq Z7020 (modelled)"});
    t.row({"DSP slices", std::to_string(c.dspSlices)});
    t.row({"BRAM", std::to_string(c.bramBytes / 1024) + " KB"});
    t.row({"Kernel clock", Table::num(c.clockMhz, 0) + " MHz"});
    t.row({"DDR bandwidth share",
           Table::num(c.ddrBytesPerSec / 1e6, 0) + " MB/s"});
    t.row({"Board power", Table::num(c.boardPowerW, 1) + " W"});
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    tango::setVerbose(false);
    printGpus();
    std::cout << "\n";
    printFpga();
    tango::bench::registerSimSpeed();
    return tango::bench::runHarness(argc, argv);
}
