/**
 * @file
 * Layer and network descriptions.
 *
 * A Layer couples three things:
 *  1. the layer's mathematical definition (kind + hyper-parameters +
 *     weight tensors) used by the CPU reference implementation;
 *  2. the dataflow graph edge list (producer indices);
 *  3. the *launch hint*: the grid/block mapping this layer uses on the
 *     GPU, reproducing the per-network kernel geometries of the paper's
 *     Table III (including AlexNet's multi-kernel output tiling).
 */

#ifndef TANGO_NN_LAYER_HH
#define TANGO_NN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/kernels.hh"
#include "nn/tensor.hh"

namespace tango::nn {

/** Layer kinds implemented by the suite. */
enum class LayerKind : uint8_t {
    Input,      ///< placeholder for the network input
    Conv,
    Depthwise,  ///< per-channel conv (MobileNet extension)
    Pool,
    FC,
    LRN,        ///< AlexNet's across-channel normalization
    BatchNorm,
    Scale,
    ReLU,
    Eltwise,    ///< two-input addition (ResNet shortcut)
    Softmax,
    Concat      ///< channel concatenation (implemented as aliased outputs)
};

/** @return printable kind name. */
const char *layerKindName(LayerKind k);

/** One output-tile partition for multi-kernel launches (AlexNet conv1). */
struct TileSplit
{
    uint32_t tileX = 0, tileY = 0;  ///< output tile origin
    uint32_t bw = 0, bh = 0;        ///< blockDim for this partition
};

/** How a layer maps onto kernels (Table III geometry). */
struct LaunchHint
{
    kern::ChannelSrc chanSrc = kern::ChannelSrc::GridX;
    kern::PixelMap pixMap = kern::PixelMap::TileOrigin;
    kern::Dim3 grid{1, 1, 1};
    kern::Dim3 block{1, 1, 1};
    /** Output-tile partitions; empty = single kernel. */
    std::vector<TileSplit> tiles;
    /** Filter partitions (count per kernel); 0 = all in one kernel. */
    uint32_t filtersPerKernel = 0;
};

/** One network layer. */
struct Layer
{
    LayerKind kind = LayerKind::Input;
    std::string name;       ///< e.g. "conv2_1"
    std::string figType;    ///< figure bucket: Conv/Pooling/FC/Norm/Fire_*/...

    // Shapes: input (C,H,W) and output (K,P,Q); FC uses inN/outN.
    uint32_t C = 0, H = 0, W = 0;
    uint32_t K = 0, R = 0, S = 0;
    uint32_t stride = 1, pad = 0;
    uint32_t P = 0, Q = 0;
    uint32_t inN = 0, outN = 0;

    bool relu = false;      ///< fused ReLU
    bool avg = false;       ///< average pooling
    bool globalAvg = false;
    bool bias = true;

    // LRN / BatchNorm parameters.
    uint32_t localSize = 5;
    float alpha = 1e-4f, beta = 0.75f, lrnK = 2.0f;
    float eps = 1e-5f;

    /** Quantization extension (conv): weights shipped to the device as
     *  s16 Q-format with a per-layer scale; `weights` then holds the
     *  *dequantized* values so the CPU reference matches the kernel
     *  bit-for-bit. */
    bool quantWeights = false;
    float weightScale = 0.0f;
    Tensor weightsQ;        ///< integer weight values (stored as floats)

    // Parameters (filled by the weight store).
    Tensor weights;         ///< conv: (K,C,R,S); fc: (outN,inN)
    Tensor biasT;           ///< (K) or (outN)
    Tensor mean, var;       ///< BatchNorm
    Tensor gamma, betaT;    ///< Scale

    /** Producer layer indices (-1 = the network input). */
    std::vector<int> inputs{-1};

    /** Concat-target layer index: when >= 0 this layer's device output is
     *  written directly into that Concat layer's buffer (zero-copy). */
    int concatInto = -1;
    /** Channel offset within the concat target's buffer. */
    uint32_t outChannelOffset = 0;

    LaunchHint hint;

    /** @return output element count. */
    uint64_t outputSize() const;
    /** @return output shape (C,H,W) or (N). */
    std::vector<uint32_t> outputShape() const;
    /** @return multiply-accumulate count of this layer. */
    uint64_t macs() const;
    /** @return parameter (weight + bias) element count. */
    uint64_t paramCount() const;
};

} // namespace tango::nn

#endif // TANGO_NN_LAYER_HH
