/**
 * @file
 * The tango virtual GPU ISA.
 *
 * A small PTX-like register ISA: enough to express the one-thread-per-neuron
 * DNN kernels of the Tango suite while exposing the same opcode vocabulary
 * the paper reports in its instruction-mix figures (Fig 8/9): add, mad, mul,
 * shl, set, mov, ld, ssy, nop, bra, and so on.
 *
 * Instructions are typed (f32/u32/s32/u16/s16) so the simulator can report
 * the data-type mix of Fig 10 directly.
 */

#ifndef TANGO_SIM_ISA_HH
#define TANGO_SIM_ISA_HH

#include <cstdint>
#include <string>

namespace tango::sim {

/** Opcodes.  The set mirrors the legend of the paper's Fig 8. */
enum class Op : uint8_t {
    Abs, Add, And, Bar, Bra, Callp, Cvt, Div, Ex2, Exit,
    Ld, Lg2, Mad, Mad24, Max, Min, Mov, Mul, Nop, Not,
    Or, Rcp, Retp, Rsqrt, Selp, Set, Shl, Shr, Sqrt, Ssy,
    St, Sub, Xor,
    NumOps
};

/** Operand / instruction data types (paper Fig 10 vocabulary + Pred). */
enum class DType : uint8_t { F32, U32, S32, U16, S16, Pred, None };

/** Comparison operators for Set/Selp. */
enum class Cmp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** Memory spaces for Ld/St. */
enum class Space : uint8_t { Global, Shared, Const, Param };

/** Special (hardware) registers readable through Mov. */
enum class SReg : uint8_t {
    None, TidX, TidY, TidZ, CtaIdX, CtaIdY, CtaIdZ,
    NTidX, NTidY, NTidZ, LaneId, WarpId
};

/** Functional-unit classes used by the SM timing model. */
enum class Unit : uint8_t { SP, FPU, SFU, LDST, CTRL };

/** No-guard-predicate sentinel for Instr::pred. */
inline constexpr uint8_t noPred = 0xff;

/**
 * One decoded instruction.
 *
 * Register operands index into the per-thread register file; a source may
 * instead be the immediate (src == immReg).  Predicated execution uses a
 * small separate predicate file.
 */
struct Instr
{
    /** Marks a source operand as "the immediate field". */
    static constexpr uint8_t immReg = 0xff;

    Op op = Op::Nop;
    DType type = DType::None;
    DType type2 = DType::None;  ///< source type for Cvt
    uint8_t dst = 0;            ///< destination register (or predicate for Set/Pred)
    uint8_t src[3] = {0, 0, 0}; ///< source registers (immReg -> use imm)
    uint32_t imm = 0;           ///< immediate bits (f32 or integer, per type)
    Cmp cmp = Cmp::Eq;          ///< comparison for Set
    Space space = Space::Global;///< memory space for Ld/St
    SReg sreg = SReg::None;     ///< special-register source for Mov
    uint8_t pred = noPred;      ///< guard predicate register (noPred = always)
    bool predNeg = false;       ///< execute when guard predicate is false
    bool dstIsPred = false;     ///< Set writes a predicate instead of a register
    int32_t target = -1;        ///< branch target / SSY reconvergence point
};

/** @return the mnemonic for an opcode ("add", "mad", ...). */
const char *opName(Op op);

/** @return the printable name of a data type ("f32", "u32", ...). */
const char *dtypeName(DType t);

/** @return the printable name of a functional unit. */
const char *unitName(Unit u);

/** @return the functional unit an opcode executes on. */
Unit opUnit(Op op);

/** @return the result latency (in core cycles) for a non-memory opcode. */
uint32_t opLatency(Op op);

/** @return the size in bytes of one element of @p t (pred counts as 1). */
uint32_t dtypeBytes(DType t);

/** @return the functional unit accounting for the data type (fp32 ALU ops
 *  execute on the FPU rather than the integer SP pipe). */
Unit opUnitTyped(Op op, DType t);

/** Collect the general-purpose source registers of @p ins into @p out.
 *  @return the number of register sources (immediates excluded). */
int instrSourceRegs(const Instr &ins, uint8_t out[3]);

/** @return whether @p ins writes a general-purpose destination register. */
bool instrWritesReg(const Instr &ins);

/** Render one instruction as assembly text (targets as absolute indices). */
std::string disasm(const Instr &ins);

} // namespace tango::sim

#endif // TANGO_SIM_ISA_HH
