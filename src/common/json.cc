#include "common/json.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace tango::json {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    // 17 significant digits round-trip any IEEE-754 double exactly.
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, uint64_t v)
{
    out += std::to_string(v);
}

std::string
Reader::string()
{
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
        char c = s_[pos_++];
        if (c == '\\') {
            if (pos_ >= s_.size())
                fail("bad escape");
            char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("bad \\u escape");
                const unsigned cp = static_cast<unsigned>(std::strtoul(
                    s_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // Tango strings are ASCII; anything else is replaced.
                out += cp < 0x80 ? static_cast<char>(cp) : '?';
                break;
            }
            default: fail("bad escape");
            }
        } else {
            out += c;
        }
    }
    if (pos_ >= s_.size())
        fail("unterminated string");
    pos_++;   // closing quote
    return out;
}

Reader::Value
Reader::value()
{
    const char c = peek();
    Value v;
    if (c == '{') {
        pos_++;
        v.kind = Value::Kind::Obj;
        if (peek() == '}') {
            pos_++;
            return v;
        }
        for (;;) {
            std::string key = string();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            const char n = peek();
            pos_++;
            if (n == '}')
                return v;
            if (n != ',')
                fail("expected , or }");
        }
    }
    if (c == '[') {
        pos_++;
        v.kind = Value::Kind::Arr;
        if (peek() == ']') {
            pos_++;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            const char n = peek();
            pos_++;
            if (n == ']')
                return v;
            if (n != ',')
                fail("expected , or ]");
        }
    }
    if (c == '"') {
        v.kind = Value::Kind::Str;
        v.str = string();
        return v;
    }
    if (c == 't' || c == 'f' || c == 'n') {
        const char *word = c == 't' ? "true" : c == 'f' ? "false" : "null";
        const size_t len = std::strlen(word);
        if (s_.compare(pos_, len, word) != 0)
            fail("bad literal");
        pos_ += len;
        v.kind = c == 'n' ? Value::Kind::Null : Value::Kind::Bool;
        v.b = c == 't';
        return v;
    }
    // Number.
    const char *start = s_.c_str() + pos_;
    char *end = nullptr;
    v.num = std::strtod(start, &end);
    if (end == start)
        fail("bad number");
    pos_ += static_cast<size_t>(end - start);
    v.kind = Value::Kind::Num;
    return v;
}

void
Reader::fail(const char *what)
{
    throw std::runtime_error(std::string("json: ") + what + " at " +
                             std::to_string(pos_));
}

void
appendValue(std::string &out, const Reader::Value &v)
{
    using Kind = Reader::Value::Kind;
    switch (v.kind) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += v.b ? "true" : "false";
        break;
    case Kind::Num:
        appendDouble(out, v.num);
        break;
    case Kind::Str:
        appendEscaped(out, v.str);
        break;
    case Kind::Arr: {
        out += '[';
        bool first = true;
        for (const Reader::Value &e : v.arr) {
            if (!first)
                out += ',';
            first = false;
            appendValue(out, e);
        }
        out += ']';
        break;
    }
    case Kind::Obj: {
        out += '{';
        bool first = true;
        for (const auto &[k, e] : v.obj) {
            if (!first)
                out += ',';
            first = false;
            appendEscaped(out, k);
            out += ':';
            appendValue(out, e);
        }
        out += '}';
        break;
    }
    }
}

} // namespace tango::json
