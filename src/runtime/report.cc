#include "runtime/report.hh"

#include "common/table.hh"

namespace tango::rt {

void
printSeries(std::ostream &os, const std::string &title,
            const std::vector<std::pair<std::string, double>> &series,
            bool as_percent)
{
    Table t(title);
    t.header({"label", "value"});
    for (const auto &[k, v] : series) {
        t.row({k, as_percent ? Table::pct(v) : Table::num(v, 6)});
    }
    t.print(os);
}

void
printStacked(std::ostream &os, const std::string &title,
             const std::vector<std::string> &groups,
             const std::vector<std::string> &labels,
             const std::vector<std::vector<double>> &values,
             bool as_percent)
{
    Table t(title);
    std::vector<std::string> hdr = {"label"};
    for (const auto &g : groups)
        hdr.push_back(g);
    t.header(hdr);
    for (size_t li = 0; li < labels.size(); li++) {
        std::vector<std::string> row = {labels[li]};
        for (size_t gi = 0; gi < groups.size(); gi++) {
            const double v =
                gi < values.size() && li < values[gi].size()
                    ? values[gi][li]
                    : 0.0;
            row.push_back(as_percent ? Table::pct(v) : Table::num(v, 4));
        }
        t.row(row);
    }
    t.print(os);
}

void
printRunSummary(std::ostream &os, const NetRun &run)
{
    Table t("summary: " + run.netName);
    t.header({"metric", "value"});
    t.row({"kernels launched",
           std::to_string([&] {
               size_t n = 0;
               for (const auto &l : run.layers)
                   n += l.kernels.size();
               return n;
           }())});
    t.row({"estimated time (ms)", Table::num(run.totalTimeSec * 1e3, 3)});
    t.row({"energy (J)", Table::num(run.totalEnergyJ, 4)});
    t.row({"peak power (W)", Table::num(run.peakPowerW, 1)});
    t.row({"thread instructions",
           Table::num(run.totals.sumPrefix("op."), 0)});
    t.row({"device memory (KB)",
           Table::num(static_cast<double>(run.deviceBytes) / 1024.0, 0)});
    t.print(os);
}

} // namespace tango::rt
