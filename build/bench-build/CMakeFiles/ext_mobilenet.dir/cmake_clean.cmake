file(REMOVE_RECURSE
  "../bench/ext_mobilenet"
  "../bench/ext_mobilenet.pdb"
  "CMakeFiles/ext_mobilenet.dir/ext_mobilenet.cc.o"
  "CMakeFiles/ext_mobilenet.dir/ext_mobilenet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mobilenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
