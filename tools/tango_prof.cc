/**
 * @file
 * tango-prof — per-PC hotspot attribution profiler.
 *
 *   tango-prof [options] [<policy>] <network>...
 *
 * Runs each network with SimPolicy::profile on: the simulator charges
 * issued cycles, stall cycles, cache misses and DRAM traffic to every
 * program counter, and the kernel DSL's statement labels (conv.mac,
 * fc.mac, gru.gate_sigmoid, ...) roll the counters up into a hotspot
 * table.  Memoized steady-state replays splice the armed launch's cached
 * profile, so long RNN sequences profile at replay speed; their share of
 * each hotspot shows up in the `replayed` column.
 *
 * --annotate <kernel> prints a perf-annotate style disassembly listing
 * with per-line counters; --folded <file> writes folded stacks
 * (`net;layer;kernel;label cycles`) for the usual flamegraph tools.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "common/logging.hh"
#include "nn/models/models.hh"
#include "profiler/profiler.hh"
#include "runtime/job.hh"
#include "sim/gpu.hh"

namespace {

using namespace tango;

struct Options
{
    tools::JobSpecArgs args;
    size_t top = 20;
    std::string annotate;      // kernel name; empty = off
    std::string foldedPath;    // output file; empty = off
    std::vector<std::string> nets;
};

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-prof [options] [<policy>] <network>...\n"
        "\n"
        "networks: %s\n"
        "policies: bench (alias: fig), mem, stall, exact\n"
        "\n"
        "options:\n"
        "  --top N          hotspot rows to print (default 20)\n"
        "  --annotate K     annotated disassembly of kernel K\n"
        "  --folded FILE    write flamegraph folded stacks to FILE\n"
        "  --seq-len N      RNN sequence length (default %u)\n"
        "  --platform P     GP102 | GK210 | TX1 (default GP102)\n"
        "  -h, --help       this message\n"
        "\n"
        "TANGO_PROFILE=1 forces profiling on in any tool; TANGO_NO_MEMO=1\n"
        "disables steady-state launch memoization (no replayed column).\n",
        tools::knownNetworksLine().c_str(),
        nn::models::kDefaultRnnSeqLen);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--top") {
            opt.top = static_cast<size_t>(
                tools::parseUint("--top", value()));
            if (opt.top == 0)
                fatal("--top must be > 0");
        } else if (arg == "--annotate") {
            opt.annotate = value();
        } else if (arg == "--folded") {
            opt.foldedPath = value();
        } else if (arg == "--seq-len") {
            const uint64_t n = tools::parseUint("--seq-len", value());
            if (n == 0 || n > (1u << 20))
                fatal("--seq-len must be in [1, %u]", 1u << 20);
            opt.args.seqLen = static_cast<uint32_t>(n);
        } else if (arg == "--platform") {
            opt.args.platform = value();
            tools::validatePlatform(opt.args.platform);
        } else if (!arg.empty() && arg[0] == '-') {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.empty()) {
        usage(stderr);
        fatal("no network given");
    }
    const tools::NetSelection sel = tools::parseNetArgs(positional);
    opt.args.policy = sel.policy;
    opt.args.profile = true;
    opt.nets = sel.nets;
    return opt;
}

void
printHotspots(const rt::NetRun &run, size_t top)
{
    const std::vector<prof::Hotspot> rows = prof::hotspots(run);
    if (rows.empty()) {
        std::printf("  (no profiled kernels)\n");
        return;
    }
    double total = 0.0;
    for (const auto &h : rows)
        total += h.cycles;

    std::printf("  %-24s %-16s %9s %6s %12s %12s %9s %9s %8s\n",
                "kernel", "label", "cycles%", "repl%", "issued",
                "stall_cyc", "l1d_miss", "l2_miss", "dram_MB");
    size_t n = 0;
    for (const auto &h : rows) {
        if (n++ >= top)
            break;
        std::printf("  %-24s %-16s %8.2f%% %5.0f%% %12.5g %12.5g %9.4g "
                    "%9.4g %8.3g\n",
                    h.kernel.c_str(),
                    h.label.empty() ? "(unlabeled)" : h.label.c_str(),
                    total > 0 ? 100.0 * h.cycles / total : 0.0,
                    h.cycles > 0 ? 100.0 * h.replayedCycles / h.cycles : 0.0,
                    h.issued, h.stallCycles, h.l1dMisses, h.l2Misses,
                    h.dramBytes / 1e6);
    }
    if (rows.size() > top)
        std::printf("  ... %zu more rows (--top to widen)\n",
                    rows.size() - top);
}

void
printAnnotated(const rt::NetRun &run, const std::string &kernel)
{
    const std::vector<prof::AnnotatedLine> lines =
        prof::annotateKernel(run, kernel);
    if (lines.empty()) {
        std::printf("  --annotate: kernel '%s' not found in this run\n",
                    kernel.c_str());
        return;
    }
    std::printf("  annotated %s (%zu instructions):\n", kernel.c_str(),
                lines.size());
    std::printf("  %5s %-16s %12s %12s %9s %9s  %s\n", "pc", "label",
                "issued", "stall_cyc", "l1d_miss", "l2_miss", "instruction");
    for (const auto &l : lines) {
        std::printf("  %5u %-16s %12.5g %12.5g %9.4g %9.4g  %s\n", l.pc,
                    l.label.empty() ? "" : l.label.c_str(), l.issued,
                    l.stallCycles, l.l1dMisses, l.l2Misses, l.text.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    sim::Gpu gpu(tools::makeJobSpec(opt.nets[0], opt.args).gpuConfig());

    std::string folded;
    int failures = 0;
    for (const std::string &net : opt.nets) {
        const rt::NetRun run =
            rt::runJob(gpu, tools::makeJobSpec(net, opt.args));

        std::printf("%-12s policy=%s  sim_time=%.6gs  launches: "
                    "replayed=%llu simulated=%llu\n",
                    net.c_str(), opt.args.policy.c_str(), run.totalTimeSec,
                    static_cast<unsigned long long>(
                        run.totals.get("mem.replayed_launches")),
                    static_cast<unsigned long long>(
                        run.totals.get("mem.simulated_launches")));

        std::string why;
        if (!prof::checkProfileConsistency(run, &why)) {
            std::fprintf(stderr,
                         "tango-prof: profile consistency FAILED: %s\n",
                         why.c_str());
            failures++;
        }

        printHotspots(run, opt.top);
        if (!opt.annotate.empty())
            printAnnotated(run, opt.annotate);
        if (!opt.foldedPath.empty())
            folded += prof::foldedStacks(run);
    }

    if (!opt.foldedPath.empty()) {
        std::ofstream f(opt.foldedPath, std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "tango-prof: cannot write '%s'\n",
                         opt.foldedPath.c_str());
            return 1;
        }
        f << folded;
        std::printf("wrote %s\n", opt.foldedPath.c_str());
    }
    return failures == 0 ? 0 : 1;
}
