#include "kernels/kernels.hh"

#include <cstring>

#include "common/logging.hh"
#include "kernels/builder.hh"

namespace tango::kern {

namespace {

std::vector<uint8_t>
packConst(std::initializer_list<uint32_t> vals)
{
    std::vector<uint8_t> out(vals.size() * 4);
    size_t i = 0;
    for (uint32_t v : vals) {
        std::memcpy(out.data() + i * 4, &v, 4);
        i++;
    }
    return out;
}

} // namespace

std::shared_ptr<Program>
buildFc(const FcDesc &d)
{
    Builder b(d.name);
    auto mSetup = b.mark("fc.setup");
    b.constant(8);    // inN outN

    Reg pIn = b.param(0);
    Reg pW = b.param(1);
    Reg pB = b.param(2);
    Reg pOut = b.param(3);

    Reg rIn = b.ldc(DType::U32, 0);
    Reg rOut = b.ldc(DType::U32, 4);

    // Linear output-neuron index from block and thread coordinates:
    // n = ((cz*gy + cy)*gx + cx) * blockSize + (ty*ntx + tx).
    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);
    Reg n = b.movS(SReg::CtaIdX);
    if (d.grid.y > 1 || d.grid.z > 1) {
        Reg cy = b.movS(SReg::CtaIdY);
        Reg cz = b.movS(SReg::CtaIdZ);
        b.emit3i(Op::Mul, DType::U32, cz, cz, d.grid.y);
        b.emit3(Op::Add, DType::U32, cy, cy, cz);
        b.emit3i(Op::Mul, DType::U32, cy, cy, d.grid.x);
        b.emit3(Op::Add, DType::U32, n, n, cy);
    }
    const uint32_t blockSize = static_cast<uint32_t>(d.block.count());
    if (blockSize > 1) {
        b.emit3i(Op::Mul, DType::U32, n, n, blockSize);
        Reg tl = b.reg();
        b.emit3i(Op::Mul, DType::U32, tl, ty, d.block.x);
        b.emit3(Op::Add, DType::U32, tl, tl, tx);
        b.emit3(Op::Add, DType::U32, n, n, tl);
    }

    PredReg pN = b.pred();
    b.setp(pN, DType::U32, Cmp::Lt, n, rOut);

    Reg acc = b.reg(), tV = b.reg(), tWv = b.reg();
    Reg tOff = b.reg(), tAddr = b.reg(), nIn = b.reg();
    Reg i = b.reg();

    {
        auto m = b.mark("fc.bias");
        if (d.bias) {
            b.emit3i(Op::Shl, DType::U32, tOff, n, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pB, tOff);
            b.movF(acc, 0.0f);
            b.guard(pN);
            b.ld(DType::F32, Space::Global, acc, tAddr);
            b.endGuard();
        } else {
            b.movF(acc, 0.0f);
        }
    }

    {
        // The whole dot-product loop is the `acc += in[i] * w[n][i]`
        // statement (loop control included).
        auto m = b.mark("fc.mac");
        b.emit3(Op::Mul, DType::U32, nIn, n, rIn);
        b.forLoop(i, 0, rIn, [&] {
            b.emit3i(Op::Shl, DType::U32, tOff, i, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
            b.ld(DType::F32, Space::Global, tV, tAddr);
            b.emit3(Op::Add, DType::U32, tOff, nIn, i);
            b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
            b.movF(tWv, 0.0f);
            b.guard(pN);
            b.ld(DType::F32, Space::Global, tWv, tAddr);
            b.endGuard();
            b.mad(DType::F32, acc, tV, tWv, acc);
        });
    }

    if (d.relu) {
        auto m = b.mark("fc.relu");
        b.emit3f(Op::Max, acc, acc, 0.0f);
    }

    {
        auto m = b.mark("fc.store");
        b.emit3i(Op::Shl, DType::U32, tOff, n, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
        b.guard(pN);
        b.st(DType::F32, Space::Global, tAddr, acc);
        b.endGuard();
    }

    return b.finish();
}

KernelLaunch
makeFcLaunch(const FcDesc &d, uint32_t in, uint32_t weights, uint32_t bias,
             uint32_t out)
{
    KernelLaunch l;
    l.program = buildFc(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {in, weights, bias, out};
    l.constData = packConst({d.inN, d.outN});
    return l;
}

} // namespace tango::kern
