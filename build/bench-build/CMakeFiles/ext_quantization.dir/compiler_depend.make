# Empty compiler generated dependencies file for ext_quantization.
# This may be replaced when dependencies are built.
