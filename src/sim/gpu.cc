#include "sim/gpu.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sim/cache.hh"
#include "trace/trace.hh"

namespace tango::sim {

namespace {

/**
 * Reject configurations that would divide by zero, build a cache smaller
 * than one set, or otherwise hit internal asserts deep inside a launch.
 * Reported with fatal() so callers (config sweeps, CLI flags) get a clean
 * diagnostic instead of an internal panic.
 */
void
validateConfig(const GpuConfig &cfg)
{
    if (cfg.numSms == 0 || cfg.coresPerSm == 0)
        fatal("invalid GPU config: numSms and coresPerSm must be > 0");
    if (cfg.maxWarpsPerSm == 0 || cfg.maxCtasPerSm == 0 ||
        cfg.maxThreadsPerSm == 0) {
        fatal("invalid GPU config: SM occupancy limits must be > 0");
    }
    if (cfg.issueWidth == 0 || cfg.numSchedulers == 0)
        fatal("invalid GPU config: issueWidth and numSchedulers must be > 0");
    if (cfg.lineBytes == 0)
        fatal("invalid GPU config: lineBytes must be > 0");
    if (cfg.l1dBytes > 0 &&
        (cfg.l1dAssoc == 0 ||
         cfg.l1dBytes < uint64_t(cfg.lineBytes) * cfg.l1dAssoc)) {
        fatal("invalid GPU config: l1dBytes %u cannot hold one set of "
              "%u-way %u-byte lines",
              cfg.l1dBytes, cfg.l1dAssoc, cfg.lineBytes);
    }
    if (cfg.l2Bytes > 0 &&
        (cfg.l2Assoc == 0 ||
         cfg.l2Bytes < uint64_t(cfg.lineBytes) * cfg.l2Assoc)) {
        fatal("invalid GPU config: l2Bytes %u cannot hold one set of "
              "%u-way %u-byte lines",
              cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes);
    }
    if (!(cfg.coreClockGhz > 0.0))
        fatal("invalid GPU config: coreClockGhz must be > 0");
    if (!(cfg.dramIssueInterval > 0.0))
        fatal("invalid GPU config: dramIssueInterval must be > 0");
}

} // namespace

Gpu::Gpu(GpuConfig cfg) : cfg_(std::move(cfg))
{
    validateConfig(cfg_);
    ensureMemorySystem();
}

void
Gpu::ensureMemorySystem()
{
    if (l2_ && l2BytesBuilt_ == cfg_.l2Bytes)
        return;
    CacheConfig l2cfg;
    l2cfg.sizeBytes = cfg_.l2Bytes;
    l2cfg.assoc = cfg_.l2Assoc;
    l2cfg.lineBytes = cfg_.lineBytes;
    l2cfg.mshrs = cfg_.l2Mshrs;
    l2cfg.writeAllocate = true;
    l2_ = std::make_unique<Cache>(l2cfg);
    dram_ = std::make_unique<Dram>(cfg_.dramLatency, cfg_.dramIssueInterval);
    l2BytesBuilt_ = cfg_.l2Bytes;
}

void
Gpu::reconfigure(GpuConfig cfg)
{
    validateConfig(cfg);
    cfg_ = std::move(cfg);
    // Force the rebuild: the new config may change associativity, line
    // size, MSHRs or DRAM timing without changing l2Bytes, which the
    // lazy ensureMemorySystem() guard would miss.
    l2_.reset();
    dram_.reset();
    l2BytesBuilt_ = 0;
    ensureMemorySystem();
    coldStart();
}

void
Gpu::coldStart()
{
    if (l2_)
        l2_->reset();
    if (dram_)
        dram_->reset();
}

double
Gpu::staticPowerW(uint32_t active_sms) const
{
    const PowerParams &p = cfg_.power;
    return p.idleCoreW * cfg_.numSms +
           p.constDynamicW * std::max(1u, active_sms) + p.boardStaticW;
}

KernelStats
Gpu::launch(const KernelLaunch &launch, const SimPolicy &policy)
{
    TANGO_ASSERT(launch.program != nullptr, "launch without a program");
    launch.program->validate();

    const uint64_t totalCtas = launch.grid.count();
    const uint32_t threadsPerCta = launch.threadsPerCta();

    const uint32_t occupancy = cfg_.occupancyCtas(
        threadsPerCta, launch.program->numRegs, launch.program->smemBytes);
    uint32_t resident = occupancy;
    if (policy.maxResidentCtas > 0)
        resident = std::min(resident, policy.maxResidentCtas);
    if (policy.maxResidentWarps > 0) {
        // Warp-budget cap evaluated against the *simulated* warps per
        // CTA (warp sampling below shrinks large blocks).  Single-warp
        // CTAs (AlexNet's one-thread-per-neuron FC blocks) are cheap to
        // simulate and latency-critical, so they get twice the budget —
        // closer to the 32-CTA hardware residency.
        const uint32_t wpc =
            std::min(launch.warpsPerCta(),
                     policy.maxWarpsPerCta > 0 ? policy.maxWarpsPerCta
                                               : launch.warpsPerCta());
        uint32_t budget = policy.maxResidentWarps;
        if (wpc == 1)
            budget *= 2;
        resident = std::min(
            resident, std::max(1u, budget / std::max(1u, wpc)));
    }
    resident = static_cast<uint32_t>(
        std::min<uint64_t>(resident, totalCtas));
    resident = std::max(resident, 1u);

    // Pick the CTAs to simulate: everything for small grids or fullSim,
    // otherwise an evenly-strided sample (keeps spatial locality diverse).
    uint64_t sampled = policy.fullSim
                           ? totalCtas
                           : (policy.maxSampledCtas ? policy.maxSampledCtas
                                                    : resident);
    sampled = std::min(sampled, totalCtas);
    sampled = std::max<uint64_t>(sampled, 1);

    std::vector<uint64_t> ids(sampled);
    if (sampled == totalCtas) {
        for (uint64_t i = 0; i < sampled; i++)
            ids[i] = i;
    } else {
        for (uint64_t i = 0; i < sampled; i++)
            ids[i] = i * totalCtas / sampled;
    }

    // Warp sampling within CTAs: only for barrier-free kernels (their
    // warps are independent) and never when full functional outputs are
    // requested.
    const uint32_t warpsTotal = launch.warpsPerCta();
    uint32_t warpsSampled = warpsTotal;
    if (!policy.fullSim && policy.maxWarpsPerCta > 0 &&
        policy.maxWarpsPerCta < warpsTotal) {
        bool hasBar = false;
        for (const Instr &ins : launch.program->code) {
            if (ins.op == Op::Bar) {
                hasBar = true;
                break;
            }
        }
        if (!hasBar)
            warpsSampled = policy.maxWarpsPerCta;
    }
    std::vector<uint32_t> warpIds(warpsSampled);
    for (uint32_t i = 0; i < warpsSampled; i++)
        warpIds[i] = i * warpsTotal / warpsSampled;
    const double warpScale =
        static_cast<double>(warpsTotal) / warpsSampled;

    // The L2 and DRAM persist across launches (a layer's consumer reads
    // the data the producer just wrote through a warm L2, as on real
    // hardware); only the statistics window is per-kernel.
    ensureMemorySystem();
    l2_->clearStats();
    l2_->newTimeDomain();   // the kernel clock restarts at zero
    dram_->reset();         // queue times are absolute cycles too

    // Tracing: attach this thread's sink (if any) for the launch and open
    // the kernel span at the kernel's cycle 0.  The sink rebases kernel-
    // local cycles onto the run's global timeline (TraceSink::record).
    trace::TraceSink *ts = trace::threadSink();
    l2_->setTrace(ts, trace::CacheLevel::L2);
    dram_->setTrace(ts);
    uint32_t traceNameId = 0;
    if (ts && ts->wants(trace::EventKind::KernelBegin)) {
        traceNameId = ts->intern(launch.program->name);
        trace::Event e;
        e.kind = trace::EventKind::KernelBegin;
        e.cycle = 0;
        e.payload = totalCtas;
        e.arg = traceNameId;
        ts->record(e);
    }

    SmCore core(cfg_, mem_, *l2_, *dram_);
    KernelStats ks = core.run(launch, ids, warpIds, resident, policy);

    if (ts) {
        if (ts->wants(trace::EventKind::KernelEnd)) {
            trace::Event e;
            e.kind = trace::EventKind::KernelEnd;
            e.cycle = ks.smCycles;
            e.payload = ks.stats.has("issued")
                            ? static_cast<uint64_t>(ks.stats.get("issued"))
                            : 0;
            e.arg = traceNameId ? traceNameId
                                : ts->intern(launch.program->name);
            ts->record(e);
        }
        // Later kernels (whose local clocks restart at zero) land after
        // this one on the global trace timeline.
        ts->advanceCycles(ks.smCycles);
    }

    ks.totalCtas = totalCtas;
    ks.sampledCtas = sampled;
    ks.occupancyCtas = static_cast<uint32_t>(
        std::min<uint64_t>(occupancy, totalCtas));
    ks.totalWarpsPerCta = warpsTotal;
    ks.sampledWarpsPerCta = warpsSampled;
    ks.scale = static_cast<double>(totalCtas) / static_cast<double>(sampled) *
               warpScale;
    ks.stats.scale(ks.scale);

    // Whole-GPU time extrapolation by CTA waves; warp sampling
    // extrapolates linearly (exact for compute-bound kernels).
    const uint64_t ctasPerWaveGpu = uint64_t(resident) * cfg_.numSms;
    const double wavesTotal =
        std::ceil(static_cast<double>(totalCtas) / ctasPerWaveGpu);
    const double wavesSim =
        std::ceil(static_cast<double>(sampled) / resident);
    ks.gpuCycles = static_cast<double>(ks.smCycles) * wavesTotal / wavesSim *
                   warpScale;
    ks.timeSec = ks.gpuCycles / (cfg_.coreClockGhz * 1e9);
    ks.activeSms = static_cast<uint32_t>(std::min<uint64_t>(
        cfg_.numSms, (totalCtas + resident - 1) / resident));

    // Power: dynamic energy from (scaled) events + static over the run.
    const PowerBreakdown pb =
        computeBreakdown(ks.stats, cfg_, ks.gpuCycles, ks.activeSms);
    ks.energyJ = pb.totalJ();
    ks.avgPowerW = ks.timeSec > 0 ? ks.energyJ / ks.timeSec : 0.0;

    // Peak power: the measured busiest window, extrapolated to the full
    // warp population, but never beyond the issue-saturated rate (energy
    // per issue x issue width x clock).
    double dynJ = 0.0;
    for (size_t i = 0; i < numPowerComps; i++) {
        const auto c = static_cast<PowerComp>(i);
        if (c != PowerComp::IDLE_CORE && c != PowerComp::CONST_DYNAMIC)
            dynJ += pb.energyJ[i];
    }
    const double issued = std::max(1.0, ks.stats.get("issued"));
    const double perIssueJ = dynJ / issued;
    const double clockHz = cfg_.coreClockGhz * 1e9;
    const double saturatedW = perIssueJ * cfg_.issueWidth * clockHz;
    const double windowW =
        std::min(ks.peakWindowDynW * warpScale, saturatedW);
    ks.peakPowerW = windowW * ks.activeSms + staticPowerW(ks.activeSms);
    return ks;
}

} // namespace tango::sim
