/**
 * @file
 * Profiler-style aggregation of simulator statistics into the series the
 * paper's figures plot: stall-cycle fractions (Fig 7), opcode mixes
 * (Figs 8-9), data-type mixes (Fig 10) and layer-type breakdowns
 * (Figs 1, 4, 13, 14).
 */

#ifndef TANGO_PROFILER_PROFILER_HH
#define TANGO_PROFILER_PROFILER_HH

#include <string>
#include <utility>
#include <vector>

#include "runtime/runtime.hh"
#include "sim/stall.hh"

namespace tango::prof {

/** (label, value) series. */
using Series = std::vector<std::pair<std::string, double>>;

/** Stall-cycle fractions per nvprof category (sums to 1). */
Series stallBreakdown(const StatSet &stats);

/** Opcode mix as fractions of executed thread instructions, sorted
 *  descending. */
Series opBreakdown(const StatSet &stats);

/** Data-type mix as fractions of typed instructions. */
Series dtypeBreakdown(const StatSet &stats);

/** Top-N entries of a series, with the rest folded into "Others". */
Series topN(const Series &s, size_t n);

/** Exec-time fraction per figure layer type for a network run. */
Series layerTimeBreakdown(const rt::NetRun &run);

/** Energy fraction per figure layer type. */
Series layerEnergyBreakdown(const rt::NetRun &run);

/** Sum of a raw counter per figure layer type. */
Series layerStat(const rt::NetRun &run, const std::string &stat);

/** Merge several stat sets (e.g. across networks for Fig 9). */
StatSet mergeTotals(const std::vector<const rt::NetRun *> &runs);

} // namespace tango::prof

#endif // TANGO_PROFILER_PROFILER_HH
