#include "nn/models/models.hh"

#include "common/logging.hh"

namespace tango::nn::models {

namespace {

/** Tile edge for a plane of extent p (Table III block sizes). */
uint32_t
vggTile(uint32_t p)
{
    if (p >= 112)
        return 14;
    if (p >= 56)
        return 7;
    if (p >= 28)
        return 4;
    return 2;
}

/** VGG / Table III mapping: plane tiled over grid (x, y), channel on
 *  grid z. */
LaunchHint
vggHint(uint32_t channels, uint32_t p, uint32_t q)
{
    const uint32_t t = vggTile(p);
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::GridZ;
    h.pixMap = kern::PixelMap::FromGridXY;
    h.grid = {(q + t - 1) / t, (p + t - 1) / t, channels};
    h.block = {t, t, 1};
    return h;
}

} // namespace

Network
buildVgg16()
{
    Network net;
    net.name = "vggnet";
    net.inC = 3;
    net.inH = net.inW = 224;

    int prev = -1;
    uint32_t c = 3, h = 224;

    auto conv = [&](const std::string &name, uint32_t k) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = h;
        l.K = k;
        l.R = l.S = 3;
        l.stride = 1;
        l.pad = 1;
        l.P = l.Q = h;
        l.relu = true;
        l.inputs = {prev};
        l.hint = vggHint(k, l.P, l.Q);
        prev = net.add(l);
        c = k;
    };
    auto pool = [&](const std::string &name) {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = name;
        l.figType = "Pooling";
        l.C = c;
        l.H = l.W = h;
        l.R = l.S = 2;
        l.stride = 2;
        l.P = l.Q = h / 2;
        l.inputs = {prev};
        l.hint = vggHint(c, l.P, l.Q);
        prev = net.add(l);
        h /= 2;
    };

    conv("conv1_1", 64);
    conv("conv1_2", 64);
    pool("pool1");                 // -> 112
    conv("conv2_1", 128);
    conv("conv2_2", 128);
    pool("pool2");                 // -> 56
    conv("conv3_1", 256);
    conv("conv3_2", 256);
    conv("conv3_3", 256);
    pool("pool3");                 // -> 28
    conv("conv4_1", 512);
    conv("conv4_2", 512);
    conv("conv4_3", 512);
    pool("pool4");                 // -> 14
    conv("conv5_1", 512);
    conv("conv5_2", 512);
    conv("conv5_3", 512);
    pool("pool5");                 // -> 7

    auto fc = [&](const std::string &name, uint32_t in, uint32_t out,
                  bool relu, kern::Dim3 grid, kern::Dim3 block) {
        Layer l;
        l.kind = LayerKind::FC;
        l.name = name;
        l.figType = "FC";
        l.inN = in;
        l.outN = out;
        l.relu = relu;
        l.inputs = {prev};
        l.hint.grid = grid;
        l.hint.block = block;
        prev = net.add(l);
    };

    // Table III: FC (4,4,4) blocks of (8,8) threads; FC (1,1,10) of
    // (10,10) threads for the classifier.
    fc("fc6", 512 * 7 * 7, 4096, true, {4, 4, 4}, {8, 8, 1});
    fc("fc7", 4096, 4096, true, {4, 4, 4}, {8, 8, 1});
    fc("fc8", 4096, 1000, false, {1, 1, 10}, {10, 10, 1});

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 1000;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);

    return net;
}

} // namespace tango::nn::models
