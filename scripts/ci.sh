#!/usr/bin/env bash
# One-command CI gate: default build + full test suite (including the
# golden-stats corpus) + ThreadSanitizer engine tests.
#
#   scripts/ci.sh            # everything
#   SKIP_TSAN=1 scripts/ci.sh  # skip the sanitizer stage (e.g. no tsan rt)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== configure + build (default preset) ==="
cmake --preset default
cmake --build --preset default -j

echo "=== tier-1 tests (includes -L golden) ==="
ctest --preset default -j

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
    echo "=== ThreadSanitizer engine tests ==="
    cmake --preset tsan
    cmake --build --preset tsan -j
    ctest --preset tsan -j
fi

echo "=== CI gate passed ==="
