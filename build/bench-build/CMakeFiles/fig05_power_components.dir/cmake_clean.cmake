file(REMOVE_RECURSE
  "../bench/fig05_power_components"
  "../bench/fig05_power_components.pdb"
  "CMakeFiles/fig05_power_components.dir/fig05_power_components.cc.o"
  "CMakeFiles/fig05_power_components.dir/fig05_power_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_power_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
