#include "sim/shard.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/digest.hh"

namespace tango::sim {

uint32_t
envSimShards()
{
    const uint64_t v = envUint("TANGO_SIM_SHARDS", 1);
    if (v > kMaxShards)
        fatal("TANGO_SIM_SHARDS=%llu exceeds the maximum of %u",
              static_cast<unsigned long long>(v), kMaxShards);
    return v == 0 ? 1 : static_cast<uint32_t>(v);
}

uint32_t
effectiveShards(const SimPolicy &policy)
{
    if (policy.shards > 0) {
        if (policy.shards > kMaxShards)
            fatal("SimPolicy::shards=%u exceeds the maximum of %u",
                  policy.shards, kMaxShards);
        return policy.shards;
    }
    return envSimShards();
}

std::vector<CtaShard>
planCtaShards(uint64_t sampled, uint32_t resident, uint32_t k)
{
    TANGO_ASSERT(resident > 0, "shard plan needs a positive wave size");
    const uint64_t waves = (sampled + resident - 1) / resident;
    std::vector<CtaShard> plan;

    if (waves >= 2 || k <= 1) {
        // Wave regime: whole waves per shard, launch residency.
        const uint64_t shards =
            std::max<uint64_t>(1, std::min<uint64_t>(k, waves));
        const uint64_t base = waves / shards;
        const uint64_t extra = waves % shards;
        plan.reserve(shards);
        uint64_t wave = 0;
        for (uint64_t i = 0; i < shards; i++) {
            const uint64_t take = base + (i < extra ? 1 : 0);
            CtaShard s;
            s.begin = wave * resident;
            wave += take;
            s.end = std::min(wave * resident, sampled);
            s.resident = resident;
            plan.push_back(s);
        }
        return plan;
    }

    // Intra-wave regime: split the single wave's CTAs into contiguous
    // even slices, each its own one-wave core.
    const uint64_t shards = std::min<uint64_t>(k, sampled);
    const uint64_t base = sampled / shards;
    const uint64_t extra = sampled % shards;
    plan.reserve(shards);
    uint64_t at = 0;
    for (uint64_t i = 0; i < shards; i++) {
        const uint64_t take = base + (i < extra ? 1 : 0);
        CtaShard s;
        s.begin = at;
        at += take;
        s.end = at;
        s.resident = static_cast<uint32_t>(take);
        plan.push_back(s);
    }
    return plan;
}

void
foldShardStats(KernelStats &acc, const KernelStats &frag)
{
    acc.smCycles += frag.smCycles;
    acc.peakWindowDynW = std::max(acc.peakWindowDynW, frag.peakWindowDynW);
    acc.stats.merge(frag.stats);
    if (acc.profile && frag.profile)
        foldShardProfile(*acc.profile, *frag.profile);
}

void
foldShardProfile(KernelProfile &acc, const KernelProfile &frag)
{
    if (acc.issued.size() != frag.issued.size() ||
        acc.stalls.size() != frag.stalls.size()) {
        fatal("shard profile shape mismatch: %zu/%zu pcs, %zu/%zu stalls",
              acc.issued.size(), frag.issued.size(), acc.stalls.size(),
              frag.stalls.size());
    }
    for (size_t i = 0; i < acc.issued.size(); i++)
        acc.issued[i] += frag.issued[i];
    for (size_t i = 0; i < acc.stalls.size(); i++)
        acc.stalls[i] += frag.stalls[i];
    for (size_t i = 0; i < acc.l1dMisses.size(); i++)
        acc.l1dMisses[i] += frag.l1dMisses[i];
    for (size_t i = 0; i < acc.l2Misses.size(); i++)
        acc.l2Misses[i] += frag.l2Misses[i];
    for (size_t i = 0; i < acc.dramTxns.size(); i++)
        acc.dramTxns[i] += frag.dramTxns[i];
}

uint64_t
combineStreamDigests(const std::vector<std::vector<uint64_t>> &per_shard)
{
    uint64_t combined = digest::kInit;
    for (const auto &shard : per_shard)
        for (uint64_t h : shard)
            digest::mix(combined, h);
    return combined;
}

} // namespace tango::sim
