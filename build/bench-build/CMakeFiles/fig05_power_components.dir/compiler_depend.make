# Empty compiler generated dependencies file for fig05_power_components.
# This may be replaced when dependencies are built.
