/**
 * @file
 * A simple DRAM service model: fixed access latency plus a serialization
 * queue that bounds sustained bandwidth (one burst every `issueInterval`
 * core cycles).  Queueing delay feeds back into load latencies so
 * bandwidth-bound kernels slow down, and queue saturation is visible to the
 * core as memory throttling.
 */

#ifndef TANGO_SIM_DRAM_HH
#define TANGO_SIM_DRAM_HH

#include <cstdint>

#include "trace/trace.hh"

namespace tango::sim {

/** Aggregate DRAM channel model. */
class Dram
{
  public:
    /**
     * @param latency intrinsic access latency in core cycles.
     * @param issue_interval min core cycles between burst starts.
     */
    Dram(uint32_t latency, double issue_interval);

    /**
     * Schedule one burst (line fill) at cycle @p now.
     * @return the absolute cycle at which the data is available.
     */
    uint64_t schedule(uint64_t now);

    /** @return queueing delay a burst issued at @p now would see. */
    uint64_t queueDelay(uint64_t now) const;

    /** @return total bursts served. */
    uint64_t accesses() const { return accesses_; }

    /** @return total queueing cycles accumulated (contention measure). */
    uint64_t totalQueueCycles() const { return queueCycles_; }

    /** Clear queue state and statistics. */
    void reset();

    /** Deterministic digest of the queue state (launch-local: reset()
     *  restarts the queue clock at every launch).  Fingerprint input for
     *  the launch-memoization layer (sim/gpu.cc). */
    uint64_t stateDigest() const;

    /** Zero the statistics but keep the queue state. */
    void
    clearStats()
    {
        accesses_ = 0;
        queueCycles_ = 0;
    }

    /** Attach (or with nullptr detach) a trace sink; each schedule()
     *  records one DramAccess event (observational only). */
    void
    setTrace(trace::TraceSink *sink, uint8_t core = 0)
    {
        trace_ = sink;
        traceCore_ = core;
    }

  private:
    uint32_t latency_;
    double issueInterval_;
    double nextFree_ = 0.0;
    uint64_t accesses_ = 0;
    uint64_t queueCycles_ = 0;
    trace::TraceSink *trace_ = nullptr;
    uint8_t traceCore_ = 0;
};

} // namespace tango::sim

#endif // TANGO_SIM_DRAM_HH
