/**
 * @file
 * Device (global) memory: a byte-addressed backing store with a bump
 * allocator and a high-water-mark footprint tracker (paper Fig 11).
 *
 * Addresses are 32-bit, matching the index arithmetic the kernels perform
 * (the paper's kernels compute u32 addresses; that integer index math is a
 * large share of the instruction mix, see Obs 8).  The backing store grows
 * lazily so instantiating a GPU does not commit gigabytes of host RAM.
 */

#ifndef TANGO_SIM_MEMORY_HH
#define TANGO_SIM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tango::sim {

/** The GPU's global memory: backing bytes + allocation bookkeeping. */
class DeviceMemory
{
  public:
    /** @param capacity total device memory in bytes (default 3 GiB). */
    explicit DeviceMemory(uint64_t capacity = 3ULL << 30);
    ~DeviceMemory();
    DeviceMemory(const DeviceMemory &) = delete;
    DeviceMemory &operator=(const DeviceMemory &) = delete;

    /**
     * Allocate @p bytes, 256-byte aligned (cudaMalloc-style).
     * @param label owner name recorded for error messages.
     * @return the device address of the block.
     */
    uint32_t allocate(uint64_t bytes, const std::string &label = "");

    /** Release everything and reset the footprint *except* the peak. */
    void reset();

    /** Release everything including the peak footprint statistic. */
    void resetAll();

    /** @return bytes currently allocated. */
    uint64_t used() const { return top_; }

    /** @return the high-water mark of allocated bytes. */
    uint64_t peakUsed() const { return peak_; }

    /** Raw byte access used by the interpreter's Ld/St. */
    uint8_t *data() { return store_; }
    const uint8_t *data() const { return store_; }

    /** @return capacity in bytes. */
    uint64_t capacity() const { return capacity_; }

    /** @return addressable bytes (same as capacity; pages commit
     *  lazily). */
    uint64_t backed() const { return capacity_; }

    /** Typed convenience accessors (host-side setup and checking). */
    template <typename T>
    T
    read(uint32_t addr) const
    {
        T v;
        std::memcpy(&v, store_ + addr, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(uint32_t addr, T v)
    {
        std::memcpy(store_ + addr, &v, sizeof(T));
    }

    /** Copy a host buffer into device memory. */
    void copyIn(uint32_t addr, const void *src, uint64_t bytes);

    /** Copy device memory out to a host buffer. */
    void copyOut(void *dst, uint32_t addr, uint64_t bytes) const;

  private:
    uint8_t *store_ = nullptr;
    uint64_t capacity_;
    uint64_t top_ = 0;
    uint64_t peak_ = 0;
};

} // namespace tango::sim

#endif // TANGO_SIM_MEMORY_HH
