#include "kernels/kernels.hh"

#include "common/logging.hh"
#include "kernels/builder.hh"
#include "kernels/emit_util.hh"

namespace tango::kern {

namespace {

constexpr float log2e = 1.4426950408889634f;

} // namespace

uint64_t
rnnWeightBytes(const RnnCellDesc &d)
{
    const uint64_t g = d.lstm ? 4 : 3;
    return 4ull * (g * d.hidden * d.inputSize +   // W
                   g * d.hidden * d.hidden +      // U
                   g * d.hidden);                 // b
}

std::shared_ptr<Program>
buildRnnCell(const RnnCellDesc &d)
{
    const uint32_t G = d.lstm ? 4 : 3;
    const uint32_t in = d.inputSize;
    const uint32_t hid = d.hidden;
    const uint32_t wBase = 0;                       // W[g][hid][in]
    const uint32_t uBase = G * hid * in;            // U[g][hid][hid]
    const uint32_t bBase = uBase + G * hid * hid;   // b[g][hid]

    const char *cell = d.lstm ? "lstm" : "gru";
    auto lbl = [cell](const char *stmt) {
        return std::string(cell) + "." + stmt;
    };

    Builder b(d.name);
    auto mSetup = b.mark(lbl("setup"));
    b.constant(8);    // inputSize hidden

    Reg pX = b.param(0);
    Reg pH = b.param(1);
    Reg pC = b.param(2);
    Reg pW = b.param(3);
    Reg pHOut = b.param(4);
    Reg pCOut = b.param(5);

    Reg rIn = b.ldc(DType::U32, 0);
    Reg rHid = b.ldc(DType::U32, 4);

    const uint32_t shX = b.shared(in * 4);
    const uint32_t shH = b.shared(hid * 4);
    const uint32_t blockSize = static_cast<uint32_t>(d.block.count());

    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);
    // Linear thread id == hidden unit index j.
    Reg j = b.reg();
    b.emit3i(Op::Mul, DType::U32, j, ty, d.block.x);
    b.emit3(Op::Add, DType::U32, j, j, tx);

    Reg tV = b.reg(), tOff = b.reg(), tAddr = b.reg(), i = b.reg();

    // Cooperatively stage x and h into shared memory.
    detail::stridedLoop(b, i, j, rIn, blockSize, [&] {
        b.emit3i(Op::Shl, DType::U32, tOff, i, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pX, tOff);
        b.ld(DType::F32, Space::Global, tV, tAddr);
        b.emit3i(Op::Add, DType::U32, tAddr, tOff, shX);
        b.st(DType::F32, Space::Shared, tAddr, tV);
    }, lbl("stage_x").c_str());
    detail::stridedLoop(b, i, j, rHid, blockSize, [&] {
        b.emit3i(Op::Shl, DType::U32, tOff, i, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pH, tOff);
        b.ld(DType::F32, Space::Global, tV, tAddr);
        b.emit3i(Op::Add, DType::U32, tAddr, tOff, shH);
        b.st(DType::F32, Space::Shared, tAddr, tV);
    }, lbl("stage_h").c_str());
    b.bar();

    PredReg pJ = b.pred();
    b.setp(pJ, DType::U32, Cmp::Lt, j, rHid);

    Reg tWv = b.reg(), tSv = b.reg();

    // acc = b[g][j] + Mat[g]^T . (shared vector).  Weights are stored
    // input-major — Mat[g][i][j] — so the warp's lane-j loads coalesce
    // into one segment per iteration (each weight is touched exactly
    // once; this is why the paper's RNNs see no benefit from the L1D).
    auto gateAccum = [&](Reg acc, uint32_t gate, bool over_hidden) {
        const uint32_t len = over_hidden ? hid : in;
        const uint32_t mat = over_hidden ? uBase + gate * hid * hid
                                         : wBase + gate * hid * in;
        const uint32_t sh = over_hidden ? shH : shX;
        auto m = b.mark(lbl("gate_mac"));
        b.forLoopI(i, 0, len, [&] {
            // off = mat + i*hidden + j
            b.mad(DType::U32, tOff, i, rHid, j);
            b.emit3i(Op::Add, DType::U32, tOff, tOff, mat);
            b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
            b.movF(tWv, 0.0f);
            b.guard(pJ);
            b.ld(DType::F32, Space::Global, tWv, tAddr);
            b.endGuard();
            b.emit3i(Op::Shl, DType::U32, tAddr, i, 2);
            b.ld(DType::F32, Space::Shared, tSv, tAddr, sh);
            b.mad(DType::F32, acc, tWv, tSv, acc);
        });
    };
    auto gateInit = [&](Reg acc, uint32_t gate) {
        auto m = b.mark(lbl("gate_bias"));
        b.emit3i(Op::Add, DType::U32, tOff, j, bBase + gate * hid);
        b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
        b.movF(acc, 0.0f);
        b.guard(pJ);
        b.ld(DType::F32, Space::Global, acc, tAddr);
        b.endGuard();
    };
    // v = sigmoid(v) = 1 / (1 + 2^(-v*log2e))
    auto sigmoid = [&](Reg v) {
        auto m = b.mark(lbl("gate_sigmoid"));
        b.emit3f(Op::Mul, v, v, -log2e);
        b.emit2(Op::Ex2, DType::F32, v, v);
        b.emit3f(Op::Add, v, v, 1.0f);
        b.emit2(Op::Rcp, DType::F32, v, v);
    };
    // v = tanh(v) = 2*sigmoid(2v) - 1  (interior labeled gate_sigmoid)
    auto tanhf = [&](Reg v) {
        auto m = b.mark(lbl("gate_tanh"));
        b.emit3f(Op::Mul, v, v, 2.0f);
        sigmoid(v);
        b.emit3f(Op::Mul, v, v, 2.0f);
        b.emit3f(Op::Add, v, v, -1.0f);
    };
    // Threads past the last hidden unit exist only when the fixed block
    // is larger than hidden; their h[j] shared read would fall outside
    // the staged vector, so only that geometry pays for a guard (the
    // suite's hidden == blockSize cell keeps its exact instruction
    // stream, which the golden fixtures pin).
    const bool jCanExceedHidden = blockSize > hid;
    auto loadSharedH = [&](Reg dst) {
        b.emit3i(Op::Shl, DType::U32, tAddr, j, 2);
        if (jCanExceedHidden) {
            b.movF(dst, 0.0f);
            b.guard(pJ);
            b.ld(DType::F32, Space::Shared, dst, tAddr, shH);
            b.endGuard();
        } else {
            b.ld(DType::F32, Space::Shared, dst, tAddr, shH);
        }
    };
    auto storeOut = [&](Reg ptr, Reg v) {
        auto m = b.mark(lbl("store"));
        b.emit3i(Op::Shl, DType::U32, tOff, j, 2);
        b.emit3(Op::Add, DType::U32, tAddr, ptr, tOff);
        b.guard(pJ);
        b.st(DType::F32, Space::Global, tAddr, v);
        b.endGuard();
    };

    if (!d.lstm) {
        // GRU: z (update), r (reset), n (candidate).
        Reg az = b.reg(), ar = b.reg(), anx = b.reg(), anh = b.reg();
        gateInit(az, 0);
        gateAccum(az, 0, false);
        gateAccum(az, 0, true);
        gateInit(ar, 1);
        gateAccum(ar, 1, false);
        gateAccum(ar, 1, true);
        gateInit(anx, 2);
        gateAccum(anx, 2, false);
        b.movF(anh, 0.0f);
        gateAccum(anh, 2, true);
        sigmoid(az);
        sigmoid(ar);
        {
            auto m = b.mark("gru.combine");
            // n = tanh(anx + r * anh)
            b.mad(DType::F32, anx, ar, anh, anx);
            tanhf(anx);
            // h' = n + z*(h - n)
            Reg hj = b.reg();
            loadSharedH(hj);
            b.emit3(Op::Sub, DType::F32, hj, hj, anx);
            b.mad(DType::F32, anx, az, hj, anx);
        }
        storeOut(pHOut, anx);
        (void)pC;
        (void)pCOut;
    } else {
        // LSTM: i, f, g, o.
        Reg ai = b.reg(), af = b.reg(), ag = b.reg(), ao = b.reg();
        for (uint32_t g = 0; g < 4; g++) {
            Reg acc = (g == 0) ? ai : (g == 1) ? af : (g == 2) ? ag : ao;
            gateInit(acc, g);
            gateAccum(acc, g, false);
            gateAccum(acc, g, true);
        }
        sigmoid(ai);
        sigmoid(af);
        tanhf(ag);
        sigmoid(ao);
        // c' = f*c + i*g
        Reg cj = b.reg();
        {
            auto m = b.mark("lstm.combine");
            b.emit3i(Op::Shl, DType::U32, tOff, j, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pC, tOff);
            b.movF(cj, 0.0f);
            b.guard(pJ);
            b.ld(DType::F32, Space::Global, cj, tAddr);
            b.endGuard();
            b.emit3(Op::Mul, DType::F32, ai, ai, ag);      // i*g
            b.emit3(Op::Mul, DType::F32, cj, af, cj);      // f*c
            b.emit3(Op::Add, DType::F32, cj, cj, ai);      // c'
        }
        storeOut(pCOut, cj);
        // h' = o * tanh(c')
        Reg th = b.reg();
        b.movR(th, cj, DType::F32);
        tanhf(th);
        {
            auto m = b.mark("lstm.combine");
            b.emit3(Op::Mul, DType::F32, th, ao, th);
        }
        storeOut(pHOut, th);
    }

    return b.finish();
}

std::shared_ptr<Program>
buildRnnReadout(const RnnReadoutDesc &d)
{
    Builder b(d.name);
    auto mSetup = b.mark("readout.setup");
    b.constant(4);    // hidden
    const uint32_t sh = b.shared(d.hidden * 4);

    Reg pH = b.param(0);
    Reg pW = b.param(1);
    Reg pB = b.param(2);
    Reg pOut = b.param(3);
    Reg rHid = b.ldc(DType::U32, 0);

    Reg tx = b.movS(SReg::TidX);
    Reg tOff = b.reg(), tAddr = b.reg(), tW = b.reg(), tH = b.reg();
    PredReg pJ = b.pred();
    b.setp(pJ, DType::U32, Cmp::Lt, tx, rHid);

    {
        auto m = b.mark("readout.partial");
        // partial[j] = w[j] * h[j]  (coalesced global reads, used once)
        b.emit3i(Op::Shl, DType::U32, tOff, tx, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
        b.movF(tW, 0.0f);
        b.guard(pJ);
        b.ld(DType::F32, Space::Global, tW, tAddr);
        b.endGuard();
        b.emit3(Op::Add, DType::U32, tAddr, pH, tOff);
        b.movF(tH, 0.0f);
        b.guard(pJ);
        b.ld(DType::F32, Space::Global, tH, tAddr);
        b.endGuard();
        b.emit3(Op::Mul, DType::F32, tW, tW, tH);
        b.emit3i(Op::Add, DType::U32, tAddr, tOff, sh);
        b.st(DType::F32, Space::Shared, tAddr, tW);
        b.bar();
    }

    // Thread 0 reduces the partials from shared memory (latency ~smem,
    // not DRAM) and adds the bias.  The divergent region is SSY-fenced.
    auto mReduce = b.mark("readout.reduce");
    PredReg p0 = b.pred();
    b.setpi(p0, DType::U32, Cmp::Ne, tx, 0);
    Label done = b.label();
    b.ssy(done);
    b.braIf(done, p0);
    Reg acc = b.reg(), i = b.reg(), tV = b.reg();
    Reg bAddr = b.reg();
    b.movR(bAddr, pB);
    b.ld(DType::F32, Space::Global, acc, bAddr);
    b.forLoop(i, 0, rHid, [&] {
        b.emit3i(Op::Shl, DType::U32, tAddr, i, 2);
        b.ld(DType::F32, Space::Shared, tV, tAddr, sh);
        b.emit3(Op::Add, DType::F32, acc, acc, tV);
    });
    b.st(DType::F32, Space::Global, pOut, acc);
    b.bind(done);

    return b.finish();
}

KernelLaunch
makeRnnReadoutLaunch(const RnnReadoutDesc &d, uint32_t h, uint32_t w,
                     uint32_t bias, uint32_t out)
{
    KernelLaunch l;
    l.program = buildRnnReadout(d);
    l.grid = {1, 1, 1};
    l.block = {d.hidden, 1, 1};
    l.params = {h, w, bias, out};
    l.constData = detail::packConst({d.hidden});
    return l;
}

KernelLaunch
makeRnnCellLaunch(const RnnCellDesc &d, uint32_t x, uint32_t h, uint32_t c,
                  uint32_t w, uint32_t hOut, uint32_t cOut)
{
    KernelLaunch l;
    l.program = buildRnnCell(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {x, h, c, w, hOut, cOut};
    l.constData = detail::packConst({d.inputSize, d.hidden});
    return l;
}

} // namespace tango::kern
