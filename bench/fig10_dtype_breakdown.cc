/**
 * @file
 * Fig 10 reproduction: instruction data-type breakdown throughout the
 * execution of ResNet (layer by layer, in invocation order).
 *
 * Paper shape to hold (Observation 8): f32 is NOT the dominant type —
 * unsigned integers (index arithmetic, warp-unit address math) dominate,
 * with f32 around ~20% early and shrinking in deeper layers.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    const rt::NetRun &run = bench::netRun({"resnet"});

    // Per-layer series in invocation order (sampled every N layers so the
    // table stays readable; ResNet-50 has ~175 layers).
    Table t("Fig 10: instruction type breakdown through ResNet execution");
    t.header({"layer", "f32", "u32", "u16", "s32", "s16"});
    const size_t step = std::max<size_t>(1, run.layers.size() / 24);
    for (size_t i = 0; i < run.layers.size(); i += step) {
        StatSet st;
        for (const auto &k : run.layers[i].kernels)
            st.merge(k.stats);
        const prof::Series d = prof::dtypeBreakdown(st);
        std::vector<std::string> row = {run.layers[i].name};
        for (const auto &[name, frac] : d)
            row.push_back(Table::pct(frac));
        t.row(row);
    }
    t.print(std::cout);

    // Whole-network mix.
    const prof::Series whole = prof::dtypeBreakdown(run.totals);
    rt::printSeries(std::cout, "Fig 10 (aggregate): ResNet dtype mix",
                    whole, /*as_percent=*/true);
    double f32 = 0.0, uint_share = 0.0;
    for (const auto &[name, frac] : whole) {
        if (name == "f32")
            f32 = frac;
        if (name == "u32" || name == "u16")
            uint_share += frac;
    }
    std::cout << "Observation 8: f32 share = " << Table::pct(f32)
              << " (paper: ~20% and below); unsigned-int share = "
              << Table::pct(uint_share) << " (dominant)\n";

    bench::registerValue("fig10/f32_share", "share", f32);
    bench::registerValue("fig10/uint_share", "share", uint_share);
    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
