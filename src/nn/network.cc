#include "nn/network.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tango::nn {

int
Network::add(Layer l)
{
    layers_.push_back(std::move(l));
    return static_cast<int>(layers_.size()) - 1;
}

std::vector<Tensor>
Network::forwardAll(const Tensor &input) const
{
    std::vector<Tensor> outs(layers_.size());
    for (size_t i = 0; i < layers_.size(); i++) {
        const Layer &l = layers_[i];
        std::vector<const Tensor *> ins;
        for (int p : l.inputs) {
            if (p < 0) {
                ins.push_back(&input);
            } else {
                TANGO_ASSERT(p < static_cast<int>(i),
                             "layer input must precede it");
                ins.push_back(&outs[p]);
            }
        }
        outs[i] = referenceForward(l, ins);
    }
    return outs;
}

Tensor
Network::forward(const Tensor &input) const
{
    TANGO_ASSERT(!layers_.empty(), "empty network");
    auto outs = forwardAll(input);
    return std::move(outs.back());
}

uint64_t
Network::totalMacs() const
{
    uint64_t total = 0;
    for (const Layer &l : layers_)
        total += l.macs();
    return total;
}

uint64_t
Network::totalParams() const
{
    uint64_t total = 0;
    for (const Layer &l : layers_)
        total += l.paramCount();
    return total;
}

namespace {

inline float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp2(-x * 1.4426950408889634f));
}

inline float
tanhApprox(float x)
{
    // Matches the kernel's tanh(x) = 2*sigmoid(2x) - 1 exactly.
    return 2.0f * sigmoid(2.0f * x) - 1.0f;
}

} // namespace

void
RnnModel::step(const std::vector<float> &x, std::vector<float> &h,
               std::vector<float> &c) const
{
    const uint32_t G = lstm ? 4 : 3;
    const uint32_t in = inputSize;
    const uint32_t hid = hidden;
    const float *w = weights.data();
    const uint64_t uBase = uint64_t(G) * hid * in;
    const uint64_t bBase = uBase + uint64_t(G) * hid * hid;

    // Weights are input-major (Mat[g][i][j]) so the kernel's lane-j
    // loads coalesce; the reference uses the identical layout and
    // accumulation order.
    auto gate = [&](uint32_t g, uint32_t j, bool with_u) {
        float acc = w[bBase + uint64_t(g) * hid + j];
        for (uint32_t i = 0; i < in; i++) {
            acc = std::fmaf(w[uint64_t(g) * hid * in + uint64_t(i) * hid + j],
                            x[i], acc);
        }
        if (with_u) {
            for (uint32_t i = 0; i < hid; i++) {
                acc = std::fmaf(
                    w[uBase + uint64_t(g) * hid * hid + uint64_t(i) * hid +
                      j],
                    h[i], acc);
            }
        }
        return acc;
    };
    auto uOnly = [&](uint32_t g, uint32_t j) {
        float acc = 0.0f;
        for (uint32_t i = 0; i < hid; i++) {
            acc = std::fmaf(
                w[uBase + uint64_t(g) * hid * hid + uint64_t(i) * hid + j],
                h[i], acc);
        }
        return acc;
    };

    std::vector<float> hNew(hid), cNew(hid);
    if (!lstm) {
        for (uint32_t j = 0; j < hid; j++) {
            const float z = sigmoid(gate(0, j, true));
            const float r = sigmoid(gate(1, j, true));
            // n = tanh(b + Wn.x + r * (Un.h)), accumulated as in the kernel
            const float n =
                tanhApprox(std::fmaf(r, uOnly(2, j), gate(2, j, false)));
            // h' = n + z*(h - n), fused exactly as the kernel computes it
            hNew[j] = std::fmaf(z, h[j] - n, n);
        }
    } else {
        for (uint32_t j = 0; j < hid; j++) {
            const float i = sigmoid(gate(0, j, true));
            const float f = sigmoid(gate(1, j, true));
            const float g = tanhApprox(gate(2, j, true));
            const float o = sigmoid(gate(3, j, true));
            // Separate mul/mul/add, matching the kernel's instruction
            // sequence (no contraction).
            const float ig = i * g;
            const float fc = f * c[j];
            cNew[j] = fc + ig;
            hNew[j] = o * tanhApprox(cNew[j]);
        }
        c = std::move(cNew);
    }
    h = std::move(hNew);
}

float
RnnModel::forward(const std::vector<float> &sequence) const
{
    TANGO_ASSERT(sequence.size() % inputSize == 0,
                 "sequence length not a multiple of the input size");
    std::vector<float> h(hidden, 0.0f), c(hidden, 0.0f);
    std::vector<float> x(inputSize);
    const size_t steps = sequence.size() / inputSize;
    for (size_t t = 0; t < steps; t++) {
        std::copy_n(sequence.begin() + t * inputSize, inputSize, x.begin());
        step(x, h, c);
    }
    // Dense readout.
    float out = fcB.size() ? fcB[0] : 0.0f;
    for (uint32_t i = 0; i < hidden; i++)
        out = std::fmaf(fcW[i], h[i], out);
    return out;
}

const std::string &
AnyModel::name() const
{
    return isRnn() ? std::get<RnnModel>(m_).name
                   : std::get<Network>(m_).name;
}

const Network &
AnyModel::cnn() const
{
    TANGO_ASSERT(!isRnn(), "AnyModel holds an RnnModel");
    return std::get<Network>(m_);
}

Network &
AnyModel::cnn()
{
    TANGO_ASSERT(!isRnn(), "AnyModel holds an RnnModel");
    return std::get<Network>(m_);
}

const RnnModel &
AnyModel::rnn() const
{
    TANGO_ASSERT(isRnn(), "AnyModel holds a Network");
    return std::get<RnnModel>(m_);
}

RnnModel &
AnyModel::rnn()
{
    TANGO_ASSERT(isRnn(), "AnyModel holds a Network");
    return std::get<RnnModel>(m_);
}

} // namespace tango::nn
