/**
 * @file
 * Fig 12 reproduction: per-SM register file usage — maximum allocated
 * registers vs maximum live registers — for every network (Pascal
 * configuration, 256 KB register file per SM).
 *
 * Paper shape to hold (Observation 10): even the biggest networks leave
 * the register file under-utilized; RNNs use a tiny fraction.
 */

#include "bench_util.hh"

#include <cmath>

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : nn::models::allNames())
        keys.push_back({net});
    bench::prefetch(keys);

    const sim::GpuConfig cfg = sim::pascalGP102();
    const double rfKb = cfg.regFileBytesPerSm / 1024.0;

    Table t("Fig 12: per-SM register file usage (KB; RF = " +
            Table::num(rfKb, 0) + " KB)");
    t.header({"network", "max allocated (KB)", "max live (KB)",
              "allocated share"});
    for (const auto &net : nn::models::allNames()) {
        const rt::NetRun &run = bench::netRun({net});
        // Allocated = regs/thread x resident threads at the widest kernel.
        double allocKb = 0.0, liveKb = 0.0;
        for (const auto &l : run.layers) {
            for (const auto &k : l.kernels) {
                // Hardware occupancy, not the simulation's warp budget.
                const double threads =
                    double(k.occupancyCtas) *
                    double(k.block.count());
                allocKb = std::max(allocKb,
                                   k.regsPerThread * threads * 4 / 1024.0);
                liveKb = std::max(liveKb,
                                  k.maxLiveRegs * threads * 4 / 1024.0);
            }
        }
        t.row({net, Table::num(allocKb, 1), Table::num(liveKb, 1),
               Table::pct(allocKb / rfKb)});
        bench::registerValue("fig12/" + net + "/alloc_kb", "KB", allocKb);
        bench::registerValue("fig12/" + net + "/live_kb", "KB", liveKb);
    }
    t.print(std::cout);
    std::cout << "Observation 10: the register file is significantly "
                 "under-utilized even by the large CNNs.\n";

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
