#include "estimate/estimator.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "metrics/metrics.hh"
#include "nn/models/models.hh"

#ifndef TANGO_DEFAULT_ESTIMATE_WEIGHTS
#define TANGO_DEFAULT_ESTIMATE_WEIGHTS "weights/estimate"
#endif

namespace tango::estimate {

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Synthesize the KernelStats one model evaluation stands in for.
 *  @p targets holds every predicted statistic in raw units. */
sim::KernelStats
predictKernel(const double targets[kNumTargets], const Features &f,
              const std::string &name, const kern::Dim3 &grid,
              const kern::Dim3 &block, double core_clock_ghz)
{
    sim::KernelStats k;
    k.name = name;
    k.grid = grid;
    k.block = block;
    k.totalCtas = static_cast<uint64_t>(
        f.v[4]);   // the ctas feature: CTAs across the layer's kernels
    k.totalWarpsPerCta =
        (static_cast<uint32_t>(block.count()) + 31) / 32;

    const double cycles = targets[static_cast<int>(Target::Cycles)];
    k.gpuCycles = cycles;
    k.smCycles = static_cast<uint64_t>(std::llround(cycles));
    k.timeSec = cycles / (core_clock_ghz * 1e9);
    k.energyJ = targets[static_cast<int>(Target::EnergyJ)];
    if (k.timeSec > 0) {
        k.avgPowerW = k.energyJ / k.timeSec;
        k.peakPowerW = k.avgPowerW;
    }
    // One aggregate stall counter: the models predict the stall total,
    // not the per-reason mix, and sumPrefix("stall.") still finds it.
    k.stats.set("stall.total",
                targets[static_cast<int>(Target::Stalls)]);
    k.stats.set("mem.l1d.misses",
                targets[static_cast<int>(Target::L1dMisses)]);
    k.stats.set("mem.l2.misses",
                targets[static_cast<int>(Target::L2Misses)]);
    k.stats.set("dram.accesses",
                targets[static_cast<int>(Target::DramAccesses)]);
    return k;
}

/** Fold one estimated layer into the run's whole-network totals. */
void
accumulate(rt::NetRun &run, const rt::LayerRun &lr)
{
    for (const sim::KernelStats &k : lr.kernels) {
        run.totals.merge(k.stats);
        run.totalTimeSec += k.timeSec;
        run.totalEnergyJ += k.energyJ;
        run.peakPowerW = std::max(run.peakPowerW, k.peakPowerW);
    }
}

} // namespace

Estimator::Estimator(std::string weights_dir) : dir_(std::move(weights_dir))
{
}

const Estimator::Entry &
Estimator::load(const std::string &policy, const std::string &platform)
{
    const std::string file = Bundle::fileName(policy, platform);
    auto it = cache_.find(file);
    if (it != cache_.end())
        return it->second;

    Entry e;
    const std::string path = dir_ + "/" + file;
    std::string text;
    if (!readFile(path, text)) {
        e.error = "no fitted bundle at " + path;
    } else {
        auto bundle = std::make_unique<Bundle>();
        std::string why;
        if (!Bundle::fromJson(text, *bundle, &why))
            e.error = path + ": " + why;
        else
            e.bundle = std::move(bundle);
    }
    if (!e.bundle)
        inform("estimate: %s", e.error.c_str());
    return cache_.emplace(file, std::move(e)).first->second;
}

bool
Estimator::estimate(const rt::JobSpec &spec, rt::NetRun &run,
                    std::string *reason)
{
    // Answered vs fell-back-and-why, scrapeable live: the fallback mix
    // is the first thing to look at when the estimate tier stops
    // holding its <1ms promise (a missing bundle turns every request
    // into a full simulation).
    const auto fallCounter = [](const char *slug) -> metrics::Counter & {
        return metrics::counter("tango_estimate_fallbacks_total",
                                "Estimate-tier jobs that fell back to "
                                "simulation, by reason",
                                {{"reason", slug}});
    };
    const auto fall = [&](const char *slug, const std::string &why) {
        fallCounter(slug).inc();
        if (reason)
            *reason = why;
        return false;
    };
    if (spec.hasInlinePolicy)
        return fall("inline_policy", "inline policies have no fitted bundle");
    if (spec.functional || spec.profile)
        return fall("needs_simulator",
                    "functional/profile runs need the simulator");

    std::lock_guard<std::mutex> lock(mu_);
    const Entry &entry = load(spec.policy, spec.platform);
    if (!entry.bundle)
        return fall("no_bundle", entry.error);
    const Bundle &bundle = *entry.bundle;

    // Collect (family, features, name-parts) per layer first so an
    // unfitted family rejects the job before any output is built.
    struct Pending
    {
        int layerIndex;
        std::string name;
        std::string figType;
        Family family;
        Features feat;
        kern::Dim3 grid, block;
        double targets[kNumTargets];
    };
    std::vector<Pending> pending;

    const bool rnn = spec.net == "gru" || spec.net == "lstm";
    if (rnn) {
        nn::RnnModel model = spec.net == "gru"
                                 ? nn::models::buildGru()
                                 : nn::models::buildLstm();
        if (spec.seqLen)
            model.seqLen = spec.seqLen;
        const char *fig = model.lstm ? "LSTM" : "GRU";
        const Features cellF = rnnCellFeatures(model);
        const kern::Dim3 cellBlock =
            model.lstm ? kern::Dim3{model.hidden, 1, 1}
                       : kern::Dim3{10, 10, 1};
        for (uint32_t t = 0; t < model.seqLen; t++) {
            pending.push_back({static_cast<int>(t),
                               model.name + ".cell#" + std::to_string(t),
                               fig, Family::RnnCell, cellF,
                               kern::Dim3{1, 1, 1}, cellBlock});
        }
        pending.push_back(
            {static_cast<int>(model.seqLen),
             model.name + ".fc#" + std::to_string(model.seqLen), fig,
             Family::Fc, rnnReadoutFeatures(model), kern::Dim3{1, 1, 1},
             kern::Dim3{model.hidden, 1, 1}});
        run.netName = model.name;
    } else {
        const nn::Network net = nn::models::buildCnn(spec.net);
        const auto &layers = net.layers();
        for (size_t i = 0; i < layers.size(); i++) {
            const nn::Layer &l = layers[i];
            Family fam;
            if (!layerFamily(l.kind, fam))
                continue;   // Input/Concat: no kernels, nothing to predict
            pending.push_back({static_cast<int>(i), l.name, l.figType,
                               fam, layerFeatures(l), l.hint.grid,
                               l.hint.block});
        }
        run.netName = net.name;
    }

    // Resolve every layer before building any output, so a refusal
    // (unfitted family, bound violation) leaves run untouched.  A shape
    // the sweep memorized answers from the table and carries only its
    // duplicate-row spread as error; a novel shape regresses and
    // carries the family's holdout bounds.
    double p50 = 0.0, p95 = 0.0;
    for (Pending &p : pending) {
        const FamilyModel &fm = bundle.family(p.family);
        if (!fm.fitted)
            return fall("unfitted_family",
                        std::string("no fitted model for family ") +
                            familyName(p.family));
        double layerP50, layerP95;
        if (fm.lookup(p.feat, p.targets)) {
            layerP50 = fm.tableP50;
            layerP95 = fm.tableP95;
        } else {
            for (int ti = 0; ti < kNumTargets; ti++)
                p.targets[ti] =
                    fm.predict(static_cast<Target>(ti), p.feat);
            const TargetModel &cyc =
                fm.targets[static_cast<int>(Target::Cycles)];
            layerP50 = cyc.p50;
            layerP95 = cyc.p95;
        }
        if (spec.maxRelErr > 0 && layerP95 > spec.maxRelErr) {
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "layer %s (family %s) validated p95 %.3f "
                          "exceeds requested bound %.3f",
                          p.name.c_str(), familyName(p.family), layerP95,
                          spec.maxRelErr);
            return fall("bound_exceeded", buf);
        }
        p50 = std::max(p50, layerP50);
        p95 = std::max(p95, layerP95);
    }

    const double clockGhz = spec.gpuConfig().coreClockGhz;
    const std::string prefix = run.netName + ".";
    for (const Pending &p : pending) {
        rt::LayerRun lr;
        lr.layerIndex = p.layerIndex;
        lr.name = p.name;
        lr.figType = p.figType;
        lr.kernels.push_back(
            predictKernel(p.targets, p.feat,
                          rnn ? p.name : prefix + p.name, p.grid,
                          p.block, clockGhz));
        accumulate(run, lr);
        run.layers.push_back(std::move(lr));
    }

    run.estimated = true;
    run.estErrP50 = p50;
    run.estErrP95 = p95;
    static metrics::Counter &answers =
        metrics::counter("tango_estimate_answers_total",
                         "Estimate-tier jobs answered from fitted "
                         "bundles (no simulation)");
    answers.inc();
    return true;
}

Estimator &
Estimator::global()
{
    static Estimator *g = [] {
        const char *env = std::getenv("TANGO_ESTIMATE_WEIGHTS");
        return new Estimator(env && *env ? env
                                         : TANGO_DEFAULT_ESTIMATE_WEIGHTS);
    }();
    return *g;
}

} // namespace tango::estimate
