/**
 * @file
 * Weight store tests: determinism, per-layer independence, weight-file
 * round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/models/models.hh"
#include "nn/weights.hh"

namespace tango::nn {
namespace {

TEST(Weights, Deterministic)
{
    Network a = models::buildCifarNet();
    Network b = models::buildCifarNet();
    initWeights(a);
    initWeights(b);
    for (size_t i = 0; i < a.layers().size(); i++) {
        const Tensor &wa = a.layers()[i].weights;
        const Tensor &wb = b.layers()[i].weights;
        ASSERT_EQ(wa.size(), wb.size());
        for (uint64_t j = 0; j < wa.size(); j++)
            ASSERT_EQ(wa[j], wb[j]);
    }
}

TEST(Weights, PerLayerStreamsIndependent)
{
    // The same layer name in different networks gets different weights;
    // different layers in the same network get different weights.
    Network a = models::buildCifarNet();
    initWeights(a);
    const Tensor &w1 = a.layers()[0].weights;   // conv1
    const Tensor &w2 = a.layers()[2].weights;   // conv2
    bool differ = false;
    for (uint64_t j = 0; j < std::min(w1.size(), w2.size()); j++)
        differ |= (w1[j] != w2[j]);
    EXPECT_TRUE(differ);
}

TEST(Weights, HeInitScale)
{
    Network net = models::buildCifarNet();
    initWeights(net);
    const Layer &conv1 = net.layers()[0];
    // std should be ~sqrt(2/(3*5*5)) = 0.163.
    double sq = 0.0;
    for (uint64_t i = 0; i < conv1.weights.size(); i++)
        sq += double(conv1.weights[i]) * conv1.weights[i];
    const double std = std::sqrt(sq / conv1.weights.size());
    EXPECT_NEAR(std, std::sqrt(2.0 / 75.0), 0.02);
}

TEST(Weights, BatchNormVarPositive)
{
    Network net = models::buildResNet50();
    initWeights(net);
    for (const auto &l : net.layers()) {
        if (l.kind != LayerKind::BatchNorm)
            continue;
        for (uint64_t i = 0; i < l.var.size(); i++)
            ASSERT_GT(l.var[i], 0.0f);
    }
}

TEST(Weights, FileRoundTrip)
{
    const std::string dir = "test_weights_tmp";
    Network net = models::buildCifarNet();
    initWeights(net);
    const int written = saveWeightFiles(net, dir);
    EXPECT_GT(written, 0);

    // Load into a structurally identical but weightless network.
    Network fresh = models::buildCifarNet();
    const int read = loadWeightFiles(fresh, dir);
    EXPECT_EQ(read, written);
    for (size_t i = 0; i < net.layers().size(); i++) {
        const Tensor &a = net.layers()[i].weights;
        const Tensor &b = fresh.layers()[i].weights;
        ASSERT_EQ(a.size(), b.size()) << net.layers()[i].name;
        for (uint64_t j = 0; j < a.size(); j++)
            ASSERT_EQ(a[j], b[j]);
        const Tensor &ba = net.layers()[i].biasT;
        const Tensor &bb = fresh.layers()[i].biasT;
        ASSERT_EQ(ba.size(), bb.size());
        for (uint64_t j = 0; j < ba.size(); j++)
            ASSERT_EQ(ba[j], bb[j]);
    }
    std::filesystem::remove_all(dir);
}

TEST(Weights, LoadedNetworkComputesSameOutput)
{
    const std::string dir = "test_weights_tmp2";
    Network net = models::buildCifarNet();
    initWeights(net);
    saveWeightFiles(net, dir);
    Network fresh = models::buildCifarNet();
    loadWeightFiles(fresh, dir);

    const Tensor in = models::makeInputImage(3, 32, 32);
    const Tensor a = net.forward(in);
    const Tensor b = fresh.forward(in);
    for (uint64_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i], b[i]);
    std::filesystem::remove_all(dir);
}

TEST(Weights, RnnPacking)
{
    RnnModel gru = models::buildGru();
    initWeights(gru);
    EXPECT_EQ(gru.weights.size(),
              3u * 100 * 1 + 3u * 100 * 100 + 3u * 100);
    RnnModel lstm = models::buildLstm();
    initWeights(lstm);
    EXPECT_EQ(lstm.weights.size(),
              4u * 100 * 1 + 4u * 100 * 100 + 4u * 100);
    EXPECT_EQ(lstm.fcW.size(), 100u);
    EXPECT_EQ(lstm.fcB.size(), 1u);
}

} // namespace
} // namespace tango::nn
