/**
 * @file
 * Output helpers shared by the benchmark harness: uniform printing of
 * label/value series and per-network summaries, so every bench binary
 * emits the paper's rows in the same format.
 */

#ifndef TANGO_RUNTIME_REPORT_HH
#define TANGO_RUNTIME_REPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/runtime.hh"

namespace tango::rt {

/** Print a (label, value) series as an aligned two-column table. */
void printSeries(std::ostream &os, const std::string &title,
                 const std::vector<std::pair<std::string, double>> &series,
                 bool as_percent = false);

/** Print a stacked table: one row per label, one column per group. */
void printStacked(
    std::ostream &os, const std::string &title,
    const std::vector<std::string> &groups,
    const std::vector<std::string> &labels,
    const std::vector<std::vector<double>> &values /* [group][label] */,
    bool as_percent = false);

/** One-paragraph summary of a network run (time, energy, instr counts). */
void printRunSummary(std::ostream &os, const NetRun &run);

} // namespace tango::rt

#endif // TANGO_RUNTIME_REPORT_HH
