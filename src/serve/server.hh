/**
 * @file
 * serve::Server — the tango-serve daemon core.
 *
 * A Server listens on TCP, speaks the framed protocol of
 * serve/protocol.hh, and fronts one rt::Engine: every run request
 * becomes an Engine::submitJob() under the job's canonical cache key.
 * That single design choice buys the production properties for free:
 *
 *  - in-flight dedup: the Engine slot map IS the dedup table — N
 *    clients submitting the same cold JobSpec trigger exactly one
 *    simulation, and all N block on its shared future;
 *  - warm serving: repeat jobs are memory (or disk-spill) hits and
 *    return in microseconds;
 *  - backpressure: admission is bounded — a run request that would
 *    start a NEW simulation while queueMax are already in flight is
 *    rejected with a "queue_full" error result (hits and joins are
 *    always admitted).
 *
 * Threading: one accept thread plus one thread per connection, each
 * handling its connection's requests sequentially (clients get
 * concurrency by opening more connections).  Graceful drain
 * (requestDrain(), a shutdown request, or — in tango_serve.cc — a
 * SIGTERM via the self-pipe drainFd()): stop accepting, finish every
 * in-flight run request, answer later run requests with a "draining"
 * reject, then close all connections and return from waitDrained().
 */

#ifndef TANGO_SERVE_SERVER_HH
#define TANGO_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hh"
#include "runtime/engine.hh"
#include "serve/protocol.hh"

namespace tango::serve {

struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 = ephemeral (read the bound port from port()). */
    uint16_t port = 0;
    /** Max simulations in flight before new (non-dedupable) run
     *  requests are rejected with "queue_full". */
    unsigned queueMax = 32;
    /** The fronted Engine's knobs (worker pool, disk spill). */
    rt::EngineOptions engine;
    /** Test seam: replaces the standard job body runJob(gpu, spec). */
    std::function<rt::NetRun(sim::Gpu &, const rt::JobSpec &)> runner;

    /** Read TANGO_SERVE_PORT / TANGO_SERVE_QUEUE_MAX (strict integers,
     *  see envUint) and rt::EngineOptions::fromEnv(). */
    static ServerOptions fromEnv();
};

class Server
{
  public:
    explicit Server(ServerOptions opt = {});

    /** Drains (abandoning nothing in flight) and joins every thread. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and start accepting.  @return false with @p err on
     *  bind failure (port in use, bad host). */
    bool start(std::string *err = nullptr);

    /** The bound port (the real one when options asked for 0). */
    uint16_t port() const { return port_; }

    /** Begin graceful drain from thread context. */
    void requestDrain();

    /** Write end of the drain self-pipe: a signal handler write()s one
     *  byte here to trigger drain (async-signal-safe; this is the ONLY
     *  server entry point a handler may touch). */
    int drainFd() const { return pipeW_; }

    /** Block until drain completes and all connections are closed.
     *  Returns immediately if start() was never called. */
    void waitDrained();

    bool draining() const;

    /** The fronted engine (tests inspect its cacheStats()). */
    rt::Engine &engine() { return engine_; }

    /** Counter snapshot (also served as the "stats" response). */
    struct Metrics
    {
        uint64_t requests = 0;          ///< frames parsed OK
        uint64_t invalid = 0;           ///< malformed frames/specs
        uint64_t runRequests = 0;
        uint64_t rejectedQueueFull = 0;
        uint64_t rejectedDraining = 0;
        uint64_t servedSim = 0;
        uint64_t servedJoin = 0;        ///< dedup onto in-flight job
        uint64_t servedMem = 0;
        uint64_t servedDisk = 0;
        uint64_t failures = 0;          ///< simulations that threw
        // Admitted run requests by requested tier (JobSpec::tier).
        uint64_t tierSim = 0;
        uint64_t tierReplay = 0;
        uint64_t tierEstimate = 0;
    };
    Metrics metrics() const;

    /** The "stats" response payload: metrics, cache hit rate, queue
     *  depth and service-time percentiles as one JSON object.  The
     *  p50/p99 values are exact log2-bucket upper bounds from the
     *  run-latency histogram (metrics.hh), aggregated over every
     *  request this server ever served — no sample ring, no cap. */
    std::string statsJson() const;

  private:
    struct Conn
    {
        int fd = -1;
        std::thread thread;
    };

    void acceptLoop();
    void connectionLoop(int fd);
    std::string handleRequest(const std::string &payload);
    std::string handleRun(const Request &req);
    void recordLatency(double ms);

    ServerOptions opt_;
    rt::Engine engine_;

    int listenFd_ = -1;
    int pipeR_ = -1, pipeW_ = -1;   ///< drain self-pipe
    uint16_t port_ = 0;
    std::thread acceptThread_;
    bool started_ = false;
    bool drained_ = false;   ///< waitDrained() already completed

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::list<Conn> conns_;
    bool draining_ = false;
    unsigned activeRuns_ = 0;   ///< run requests being served right now
    Metrics metrics_;
    /** End-to-end run-request latency (µs).  Per-server (the stats
     *  reply is this server's view); the process-wide registry carries
     *  a second copy under tango_serve_latency_us for scrapes. */
    metrics::Histogram latencyUs_;
};

} // namespace tango::serve

#endif // TANGO_SERVE_SERVER_HH
