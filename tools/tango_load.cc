/**
 * @file
 * tango-load — load generator and benchmark client for tango-serve.
 *
 *   tango-load --port N [options]
 *
 * Two phases against a running daemon:
 *
 *  - cold: every distinct job (nets x policies) once, sequentially, on
 *    one connection — the price of actually simulating;
 *  - warm: --conns connections each firing --requests requests, jobs
 *    drawn zipf-distributed (deterministic seed) from the same list —
 *    the cache/dedup serving rate.
 *
 * Prints a summary and, with --json, writes the BENCH_serve.json record
 * (cold/warm QPS, p50/p99 latency, final server stats) that
 * scripts/perf_baseline.sh publishes.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/scrape.hh"
#include "nn/models/models.hh"
#include "serve/protocol.hh"

namespace {

using namespace tango;
using Clock = std::chrono::steady_clock;

struct Options
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    unsigned conns = 4;
    unsigned requests = 50;     ///< per connection, warm phase
    std::vector<std::string> nets;
    std::vector<std::string> policies = {"bench"};
    std::vector<std::string> tiers = {"sim"};
    std::string platform = "GP102";
    uint64_t seed = 1;
    bool skipCold = false;
    std::string jsonPath;
};

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-load --port N [options]\n"
        "\n"
        "options:\n"
        "  --host H         server address (default 127.0.0.1)\n"
        "  --port N         server port (required)\n"
        "  --conns N        warm-phase connections (default 4)\n"
        "  --requests M     warm requests per connection (default 50)\n"
        "  --nets LIST      comma list of networks (default: all seven)\n"
        "  --policies LIST  comma list of policies (default: bench)\n"
        "  --tier LIST      comma list of accuracy tiers to mix into the\n"
        "                   job list: sim | replay | estimate (default: sim)\n"
        "  --platform P     GP102 | GK210 | TX1 (default GP102)\n"
        "  --seed N         zipf sampling seed (default 1)\n"
        "  --skip-cold      skip the cold phase (server already warm)\n"
        "  --json FILE      write the benchmark record to FILE\n"
        "  -h, --help       this message\n");
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!item.empty())
            out.push_back(tools::lower(item));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--host") {
            opt.host = value();
        } else if (arg == "--port") {
            opt.port = static_cast<uint16_t>(
                tools::parseUint("--port", value()));
        } else if (arg == "--conns") {
            opt.conns = static_cast<unsigned>(
                tools::parseUint("--conns", value()));
            if (opt.conns == 0)
                fatal("--conns must be > 0");
        } else if (arg == "--requests") {
            opt.requests = static_cast<unsigned>(
                tools::parseUint("--requests", value()));
        } else if (arg == "--nets") {
            opt.nets = splitList(value());
        } else if (arg == "--policies") {
            opt.policies = splitList(value());
        } else if (arg == "--tier") {
            opt.tiers = splitList(value());
        } else if (arg == "--platform") {
            opt.platform = value();
            tools::validatePlatform(opt.platform);
        } else if (arg == "--seed") {
            opt.seed = tools::parseUint("--seed", value());
        } else if (arg == "--skip-cold") {
            opt.skipCold = true;
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (opt.port == 0) {
        usage(stderr);
        fatal("--port is required");
    }
    if (opt.nets.empty())
        opt.nets = nn::models::allNames();
    if (opt.policies.empty())
        fatal("--policies selected nothing");
    if (opt.tiers.empty())
        fatal("--tier selected nothing");
    for (const std::string &tier : opt.tiers) {
        rt::Tier t;
        if (!rt::tierFromName(tier, t))
            fatal("unknown tier '%s' (known: sim, replay, estimate)",
                  tier.c_str());
    }
    return opt;
}

/** Zipf(s=1) sampler over [0, n): rank r with weight 1/(r+1). */
class Zipf
{
  public:
    explicit Zipf(size_t n)
    {
        cdf_.reserve(n);
        double sum = 0.0;
        for (size_t r = 0; r < n; r++) {
            sum += 1.0 / double(r + 1);
            cdf_.push_back(sum);
        }
        for (double &c : cdf_)
            c /= sum;
    }
    size_t sample(Rng &rng) const
    {
        const double u = rng.uniform();
        return size_t(std::lower_bound(cdf_.begin(), cdf_.end(), u) -
                      cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

struct WarmShard
{
    unsigned sent = 0;
    unsigned ok = 0;
    unsigned rejected = 0;   ///< server said "reject" (queue full/draining)
    unsigned errors = 0;     ///< any other failed result (sim threw, ...)
    std::vector<double> latenciesMs;
    std::vector<size_t> tierIdx;   ///< per request, parallel to latenciesMs
    std::vector<bool> okFlags;     ///< per request, parallel to latenciesMs
    std::string error;   ///< transport failure, if any
};

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * double(sorted.size() - 1) + 0.5));
    return sorted[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    // The job list: nets x policies x tiers, in rank order for the zipf
    // draw (tier varies fastest, so the head of the zipf still spans
    // every tier when several are mixed).
    std::vector<rt::JobSpec> jobs;
    std::vector<size_t> jobTier;   ///< index into opt.tiers, per job
    for (const std::string &net : opt.nets) {
        for (const std::string &policy : opt.policies) {
            for (size_t t = 0; t < opt.tiers.size(); t++) {
                tools::JobSpecArgs args;
                args.policy = policy;
                args.platform = opt.platform;
                args.tier = opt.tiers[t];
                jobs.push_back(tools::makeJobSpec(net, args));
                jobTier.push_back(t);
            }
        }
    }

    // ---------------------------------------------------------- cold
    struct TierAgg
    {
        unsigned coldOk = 0;
        double coldSec = 0.0;
        unsigned warmCount = 0;
        unsigned warmOk = 0;
        std::vector<double> warmLatMs;
    };
    std::vector<TierAgg> tierAgg(opt.tiers.size());

    double coldSec = 0.0;
    unsigned coldOk = 0;
    if (!opt.skipCold) {
        serve::Client client;
        std::string err;
        if (!client.connect(opt.host, opt.port, &err))
            fatal("tango-load: %s", err.c_str());
        const auto t0 = Clock::now();
        for (size_t j = 0; j < jobs.size(); j++) {
            const rt::JobSpec &job = jobs[j];
            rt::JobResult res;
            const auto c0 = Clock::now();
            if (!client.run(job, res, &err))
                fatal("tango-load: cold %s: %s",
                      job.cacheKey().str.c_str(), err.c_str());
            TierAgg &agg = tierAgg[jobTier[j]];
            agg.coldSec +=
                std::chrono::duration<double>(Clock::now() - c0).count();
            if (res.ok) {
                coldOk++;
                agg.coldOk++;
            } else {
                warn("cold %s: %s", job.cacheKey().str.c_str(),
                     res.error.c_str());
            }
        }
        coldSec = std::chrono::duration<double>(Clock::now() - t0).count();
        std::printf("cold:  %u/%zu jobs in %.3fs  (%.2f QPS)\n", coldOk,
                    jobs.size(), coldSec,
                    coldSec > 0 ? double(coldOk) / coldSec : 0.0);
    }

    // ---------------------------------------------------------- warm
    const Zipf zipf(jobs.size());
    std::vector<WarmShard> shards(opt.conns);
    std::vector<std::thread> threads;
    const auto w0 = Clock::now();
    for (unsigned t = 0; t < opt.conns; t++) {
        threads.emplace_back([&, t] {
            WarmShard &shard = shards[t];
            serve::Client client;
            std::string err;
            if (!client.connect(opt.host, opt.port, &err)) {
                shard.error = err;
                return;
            }
            Rng rng(opt.seed + t * 0x9e3779b9ULL);
            for (unsigned i = 0; i < opt.requests; i++) {
                const size_t pick = zipf.sample(rng);
                const rt::JobSpec &job = jobs[pick];
                rt::JobResult res;
                const auto r0 = Clock::now();
                if (!client.run(job, res, &err)) {
                    shard.error = err;
                    return;
                }
                shard.sent++;
                shard.latenciesMs.push_back(
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - r0)
                        .count());
                shard.tierIdx.push_back(jobTier[pick]);
                shard.okFlags.push_back(res.ok);
                if (res.ok)
                    shard.ok++;
                else if (res.served == "reject")
                    shard.rejected++;
                else
                    shard.errors++;
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    const double warmSec =
        std::chrono::duration<double>(Clock::now() - w0).count();

    unsigned warmSent = 0, warmOk = 0, warmRejected = 0, warmErrors = 0;
    std::vector<double> latencies;
    for (const WarmShard &s : shards) {
        if (!s.error.empty())
            fatal("tango-load: warm: %s", s.error.c_str());
        warmSent += s.sent;
        warmOk += s.ok;
        warmRejected += s.rejected;
        warmErrors += s.errors;
        latencies.insert(latencies.end(), s.latenciesMs.begin(),
                         s.latenciesMs.end());
        for (size_t i = 0; i < s.tierIdx.size(); i++) {
            TierAgg &agg = tierAgg[s.tierIdx[i]];
            agg.warmCount++;
            if (s.okFlags[i])
                agg.warmOk++;
            agg.warmLatMs.push_back(s.latenciesMs[i]);
        }
    }
    std::sort(latencies.begin(), latencies.end());
    const double warmQps = warmSec > 0 ? double(warmSent) / warmSec : 0.0;
    const double p50 = percentileSorted(latencies, 0.50);
    const double p99 = percentileSorted(latencies, 0.99);
    std::printf("warm:  %u requests (%u ok, %u rejected, %u errors) on "
                "%u conns in %.3fs  (%.1f QPS, p50 %.3fms, p99 %.3fms)\n",
                warmSent, warmOk, warmRejected, warmErrors, opt.conns,
                warmSec, warmQps, p50, p99);
    if (opt.tiers.size() > 1) {
        for (size_t t = 0; t < opt.tiers.size(); t++) {
            TierAgg &agg = tierAgg[t];
            std::sort(agg.warmLatMs.begin(), agg.warmLatMs.end());
            std::printf("  tier %-8s warm %u ok/%u  p50 %.3fms  "
                        "p99 %.3fms\n",
                        opt.tiers[t].c_str(), agg.warmOk, agg.warmCount,
                        percentileSorted(agg.warmLatMs, 0.50),
                        percentileSorted(agg.warmLatMs, 0.99));
        }
    }

    // Final server-side view (dedup/hit counters live there), plus the
    // full Prometheus scrape for the benchmark record.
    std::string statsJson, metricsText;
    {
        serve::Client client;
        std::string err;
        if (client.connect(opt.host, opt.port, &err)) {
            client.stats(statsJson, &err);
            client.metrics(metricsText, &err);
        }
    }

    if (!opt.jsonPath.empty()) {
        std::string out;
        json::ObjWriter o(out);
        o.str("bench", "serve");
        o.u64("jobs", jobs.size());
        o.key("cold");
        {
            json::ObjWriter c(out);
            c.boolean("skipped", opt.skipCold);
            c.u64("ok", coldOk);
            c.num("seconds", coldSec);
            c.num("qps", coldSec > 0 ? double(coldOk) / coldSec : 0.0);
            c.close();
        }
        o.key("warm");
        {
            json::ObjWriter w(out);
            w.u64("connections", opt.conns);
            w.u64("requests", warmSent);
            w.u64("ok", warmOk);
            w.u64("rejected", warmRejected);
            w.u64("errors", warmErrors);
            w.num("seconds", warmSec);
            w.num("qps", warmQps);
            w.num("p50_ms", p50);
            w.num("p99_ms", p99);
            w.close();
        }
        if (!opt.skipCold && coldSec > 0) {
            o.num("warm_over_cold_qps",
                  coldOk ? warmQps / (double(coldOk) / coldSec) : 0.0);
        }
        // Per-tier cold/warm breakdown, side by side.  Always present
        // (even for the default single-tier run) so downstream guards
        // can read one shape.
        o.key("tiers");
        {
            std::string &t_out = out;
            t_out += '{';
            for (size_t t = 0; t < opt.tiers.size(); t++) {
                if (t)
                    t_out += ',';
                json::appendEscaped(t_out, opt.tiers[t]);
                t_out += ':';
                TierAgg &agg = tierAgg[t];
                std::sort(agg.warmLatMs.begin(), agg.warmLatMs.end());
                json::ObjWriter to(t_out);
                to.key("cold");
                {
                    json::ObjWriter c(t_out);
                    c.boolean("skipped", opt.skipCold);
                    c.u64("ok", agg.coldOk);
                    c.num("seconds", agg.coldSec);
                    c.num("qps", agg.coldSec > 0
                                     ? double(agg.coldOk) / agg.coldSec
                                     : 0.0);
                    c.close();
                }
                to.key("warm");
                {
                    json::ObjWriter w(t_out);
                    w.u64("requests", agg.warmCount);
                    w.u64("ok", agg.warmOk);
                    w.num("qps", warmSec > 0
                                     ? double(agg.warmCount) / warmSec
                                     : 0.0);
                    w.num("p50_ms",
                          percentileSorted(agg.warmLatMs, 0.50));
                    w.num("p99_ms",
                          percentileSorted(agg.warmLatMs, 0.99));
                    w.close();
                }
                to.close();
            }
            t_out += '}';
        }
        if (!statsJson.empty()) {
            o.key("server_stats");
            out += statsJson;
        }
        // The daemon's final metrics scrape, flattened to one value per
        // series ('name{k="v"}' keys) so the record carries the same
        // counters tango-top renders live.
        metrics::Scrape scrape;
        if (!metricsText.empty() &&
            metrics::Scrape::parse(metricsText, scrape)) {
            o.key("server_metrics");
            out += '{';
            bool first = true;
            for (const metrics::Sample &s : scrape.samples()) {
                if (!first)
                    out += ',';
                first = false;
                std::string series = s.name;
                if (!s.labels.empty()) {
                    series += '{';
                    for (size_t l = 0; l < s.labels.size(); l++) {
                        if (l)
                            series += ',';
                        series += s.labels[l].first;
                        series += "=\"";
                        series += s.labels[l].second;
                        series += '"';
                    }
                    series += '}';
                }
                json::appendEscaped(out, series);
                out += ':';
                json::appendDouble(out, s.value);
            }
            out += '}';
        }
        o.close();
        std::ofstream f(opt.jsonPath, std::ios::trunc);
        if (!f)
            fatal("cannot write '%s'", opt.jsonPath.c_str());
        f << out << "\n";
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
