/**
 * @file
 * Tiny deterministic 64-bit digest used by the launch-memoization layer
 * (sim/gpu.cc): launch signatures, µ-architectural state fingerprints and
 * Step-stream hashes all fold through the same word-at-a-time mixer.
 *
 * The digest only ever feeds *equality* checks (never indexing or
 * persistence), and every memoization decision it gates is additionally
 * cross-checked against bit-identical KernelStats and a replay-time
 * Step-stream hash, so a multiply-xor mixer is strong enough.  Determinism
 * matters more than avalanche quality: the same state must digest to the
 * same value on every platform and in every run.
 */

#ifndef TANGO_SIM_DIGEST_HH
#define TANGO_SIM_DIGEST_HH

#include <cstdint>
#include <cstring>

namespace tango::sim::digest {

/** FNV-1a offset basis; the conventional non-zero starting value. */
inline constexpr uint64_t kInit = 1469598103934665603ull;

/** Fold one 64-bit word into @p h (FNV-style multiply-xor per word). */
inline void
mix(uint64_t &h, uint64_t v)
{
    h = (h ^ v) * 1099511628211ull;
}

/** Fold a raw byte range into @p h, eight bytes at a time. */
inline void
mixBytes(uint64_t &h, const void *p, size_t n)
{
    const auto *b = static_cast<const uint8_t *>(p);
    while (n >= 8) {
        uint64_t w;
        std::memcpy(&w, b, 8);
        mix(h, w);
        b += 8;
        n -= 8;
    }
    if (n > 0) {
        uint64_t w = 0;
        std::memcpy(&w, b, n);
        mix(h, w | (uint64_t(n) << 56));
    }
}

/** Fold a double by bit pattern (bit-identity, not numeric equality). */
inline void
mixDouble(uint64_t &h, double d)
{
    uint64_t w;
    std::memcpy(&w, &d, sizeof w);
    mix(h, w);
}

} // namespace tango::sim::digest

#endif // TANGO_SIM_DIGEST_HH
