# Empty compiler generated dependencies file for fig07_stall_breakdown.
# This may be replaced when dependencies are built.
