file(REMOVE_RECURSE
  "../bench/fig13_l2_misses"
  "../bench/fig13_l2_misses.pdb"
  "CMakeFiles/fig13_l2_misses.dir/fig13_l2_misses.cc.o"
  "CMakeFiles/fig13_l2_misses.dir/fig13_l2_misses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_l2_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
