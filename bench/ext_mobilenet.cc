/**
 * @file
 * Extension: MobileNet v1 characterization.
 *
 * The paper lists MobileNet as "currently developing" (Section III);
 * this bench adds it to the suite and re-runs the headline
 * characterizations: layer-time breakdown, instruction mix, footprint,
 * and the L1D sweep — contrasting the depthwise-separable structure
 * against AlexNet.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    std::vector<bench::RunKey> keys = {{"mobilenet"}, {"alexnet"}};
    for (uint32_t l1 : {0u, 64u * 1024, 128u * 1024}) {
        bench::RunKey key{"mobilenet"};
        key.l1dBytes = l1;
        keys.push_back(key);
    }
    bench::prefetch(keys);

    const rt::NetRun &run = bench::netRun({"mobilenet"});
    const rt::NetRun &alex = bench::netRun({"alexnet"});

    Table t("MobileNet v1 (extension) vs AlexNet");
    t.header({"metric", "mobilenet", "alexnet"});
    t.row({"est. time (ms)", Table::num(run.totalTimeSec * 1e3, 2),
           Table::num(alex.totalTimeSec * 1e3, 2)});
    t.row({"device memory (KB)",
           Table::num(double(run.deviceBytes) / 1024, 0),
           Table::num(double(alex.deviceBytes) / 1024, 0)});
    t.row({"thread instructions",
           Table::num(run.totals.sumPrefix("op."), 0),
           Table::num(alex.totals.sumPrefix("op."), 0)});
    t.row({"peak power (W)", Table::num(run.peakPowerW, 1),
           Table::num(alex.peakPowerW, 1)});
    t.print(std::cout);

    rt::printSeries(std::cout, "MobileNet: execution time per layer type",
                    prof::layerTimeBreakdown(run), true);
    rt::printSeries(std::cout, "MobileNet: top operations",
                    prof::topN(prof::opBreakdown(run.totals), 8), true);

    // L1D sweep for the new network (Fig 2 shape check).
    Table sweep("MobileNet: L1D sensitivity (normalized to No L1)");
    sweep.header({"config", "norm. time"});
    double base = 0.0;
    for (uint32_t l1 : {0u, 64u * 1024, 128u * 1024}) {
        bench::RunKey key{"mobilenet"};
        key.l1dBytes = l1;
        const rt::NetRun &r = bench::netRun(key);
        if (l1 == 0)
            base = r.totalTimeSec;
        sweep.row({l1 ? std::to_string(l1 / 1024) + "KB" : "No L1",
                   Table::num(base > 0 ? r.totalTimeSec / base : 0, 3)});
    }
    sweep.print(std::cout);

    bench::registerValue("ext_mobilenet/time_ms", "ms",
                         run.totalTimeSec * 1e3);
    bench::registerValue("ext_mobilenet/mem_kb", "KB",
                         double(run.deviceBytes) / 1024);
    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
