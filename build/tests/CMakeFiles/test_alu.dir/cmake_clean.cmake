file(REMOVE_RECURSE
  "CMakeFiles/test_alu.dir/test_alu.cc.o"
  "CMakeFiles/test_alu.dir/test_alu.cc.o.d"
  "test_alu"
  "test_alu.pdb"
  "test_alu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
