file(REMOVE_RECURSE
  "../bench/fig12_register_usage"
  "../bench/fig12_register_usage.pdb"
  "CMakeFiles/fig12_register_usage.dir/fig12_register_usage.cc.o"
  "CMakeFiles/fig12_register_usage.dir/fig12_register_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_register_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
