/**
 * @file
 * The top-level virtual GPU: device memory + an SM model + the shared L2
 * and DRAM, with CTA sampling and whole-GPU extrapolation.
 *
 * One SM is simulated in cycle detail; statistics are scaled by
 * (total CTAs / simulated CTAs) and execution time is extrapolated by CTA
 * waves across all SMs, in the spirit of sampled simulation (the paper ran
 * full networks on GPGPU-Sim over many hours; the benches here must finish
 * in seconds).  Small kernels — and anything launched with
 * SimPolicy::fullSim — are simulated exactly and functionally.
 */

#ifndef TANGO_SIM_GPU_HH
#define TANGO_SIM_GPU_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/memory.hh"
#include "sim/power.hh"

namespace tango::sim {

/** A virtual GPU device. */
class Gpu
{
  public:
    /** @param cfg the platform to model. */
    explicit Gpu(GpuConfig cfg);

    /** @return the device's global memory. */
    DeviceMemory &mem() { return mem_; }
    const DeviceMemory &mem() const { return mem_; }

    /** @return the platform configuration. */
    const GpuConfig &config() const { return cfg_; }

    /**
     * Switch the device to a new platform configuration (config sweeps,
     * worker reuse in rt::Engine).  Rebuilds the L2/DRAM memory system
     * unconditionally and cold-starts it, so no warm state or stale
     * cache geometry survives the switch.  Never call mid-launch.
     */
    void reconfigure(GpuConfig cfg);

    /**
     * Launch a kernel and simulate it under @p policy.
     * @return complete, scaled statistics including power.
     */
    KernelStats launch(const KernelLaunch &launch,
                       const SimPolicy &policy = {});

    /** @return the static (always-on) power of the whole device in W. */
    double staticPowerW(uint32_t active_sms) const;

    /** Drop all warm L2/DRAM state (e.g. between unrelated networks). */
    void coldStart();

  private:
    /** (Re)build the shared L2 + DRAM if the config changed. */
    void ensureMemorySystem();

    GpuConfig cfg_;
    DeviceMemory mem_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Dram> dram_;
    uint32_t l2BytesBuilt_ = 0;
};

} // namespace tango::sim

#endif // TANGO_SIM_GPU_HH
