/**
 * @file
 * A minimal dense float tensor (CHW layout for feature maps).
 *
 * This is deliberately small: the suite needs exactly one dtype (f32, as
 * the paper's kernels use) and contiguous row-major storage that matches
 * the device-memory layout the kernels index into.
 */

#ifndef TANGO_NN_TENSOR_HH
#define TANGO_NN_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tango::nn {

/** Dense row-major float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<uint32_t> shape);

    /** @return total element count. */
    uint64_t size() const { return data_.size(); }

    /** @return size in bytes. */
    uint64_t bytes() const { return data_.size() * 4; }

    const std::vector<uint32_t> &shape() const { return shape_; }

    /** @return extent of dimension @p i (1 if absent). */
    uint32_t dim(size_t i) const
    {
        return i < shape_.size() ? shape_[i] : 1;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &operator[](uint64_t i) { return data_[i]; }
    float operator[](uint64_t i) const { return data_[i]; }

    /** 3-D accessor for (c, y, x) tensors. */
    float &
    at(uint32_t c, uint32_t y, uint32_t x)
    {
        return data_[(uint64_t(c) * shape_[1] + y) * shape_[2] + x];
    }
    float
    at(uint32_t c, uint32_t y, uint32_t x) const
    {
        return data_[(uint64_t(c) * shape_[1] + y) * shape_[2] + x];
    }

    /** 4-D accessor for (k, c, r, s) weight tensors. */
    float &
    at4(uint32_t k, uint32_t c, uint32_t r, uint32_t s)
    {
        return data_[((uint64_t(k) * shape_[1] + c) * shape_[2] + r) *
                         shape_[3] +
                     s];
    }
    float
    at4(uint32_t k, uint32_t c, uint32_t r, uint32_t s) const
    {
        return data_[((uint64_t(k) * shape_[1] + c) * shape_[2] + r) *
                         shape_[3] +
                     s];
    }

    /** @return "3x224x224"-style shape string. */
    std::string shapeStr() const;

    /** @return index of the maximum element (argmax). */
    uint64_t argmax() const;

  private:
    std::vector<uint32_t> shape_;
    std::vector<float> data_;
};

} // namespace tango::nn

#endif // TANGO_NN_TENSOR_HH
