#include "sim/isa.hh"

#include <array>
#include <cstdio>

#include "common/logging.hh"

namespace tango::sim {

namespace {

struct OpInfo
{
    const char *name;
    Unit unit;
    uint32_t latency;
};

// Latencies are core-clock result latencies in the style of GPGPU-Sim's
// Pascal configuration: simple int ops 4-6, fp32 6, SFU transcendentals ~20.
constexpr std::array<OpInfo, static_cast<size_t>(Op::NumOps)> opTable = {{
    {"abs",   Unit::SP,   4},
    {"add",   Unit::SP,   4},   // FPU when type is F32; see opUnit()
    {"and",   Unit::SP,   4},
    {"bar",   Unit::CTRL, 4},
    {"bra",   Unit::CTRL, 4},
    {"callp", Unit::CTRL, 8},
    {"cvt",   Unit::SP,   6},
    {"div",   Unit::SFU,  40},
    {"ex2",   Unit::SFU,  20},
    {"exit",  Unit::CTRL, 1},
    {"ld",    Unit::LDST, 2},   // memory latency comes from the cache model
    {"lg2",   Unit::SFU,  20},
    {"mad",   Unit::SP,   6},
    {"mad24", Unit::SP,   5},
    {"max",   Unit::SP,   4},
    {"min",   Unit::SP,   4},
    {"mov",   Unit::SP,   2},
    {"mul",   Unit::SP,   5},
    {"nop",   Unit::SP,   1},
    {"not",   Unit::SP,   4},
    {"or",    Unit::SP,   4},
    {"rcp",   Unit::SFU,  20},
    {"retp",  Unit::CTRL, 8},
    {"rsqrt", Unit::SFU,  20},
    {"selp",  Unit::SP,   4},
    {"set",   Unit::SP,   4},
    {"shl",   Unit::SP,   4},
    {"shr",   Unit::SP,   4},
    {"sqrt",  Unit::SFU,  22},
    {"ssy",   Unit::CTRL, 1},
    {"st",    Unit::LDST, 2},
    {"sub",   Unit::SP,   4},
    {"xor",   Unit::SP,   4},
}};

const OpInfo &
info(Op op)
{
    auto idx = static_cast<size_t>(op);
    TANGO_ASSERT(idx < opTable.size(), "bad opcode");
    return opTable[idx];
}

} // namespace

const char *
opName(Op op)
{
    return info(op).name;
}

const char *
dtypeName(DType t)
{
    switch (t) {
      case DType::F32: return "f32";
      case DType::U32: return "u32";
      case DType::S32: return "s32";
      case DType::U16: return "u16";
      case DType::S16: return "s16";
      case DType::Pred: return "pred";
      case DType::None: return "none";
    }
    return "?";
}

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::SP: return "SP";
      case Unit::FPU: return "FPU";
      case Unit::SFU: return "SFU";
      case Unit::LDST: return "LDST";
      case Unit::CTRL: return "CTRL";
    }
    return "?";
}

Unit
opUnit(Op op)
{
    return info(op).unit;
}

uint32_t
opLatency(Op op)
{
    return info(op).latency;
}

uint32_t
dtypeBytes(DType t)
{
    switch (t) {
      case DType::F32:
      case DType::U32:
      case DType::S32:
        return 4;
      case DType::U16:
      case DType::S16:
        return 2;
      case DType::Pred:
      case DType::None:
        return 1;
    }
    return 4;
}

Unit
opUnitTyped(Op op, DType t)
{
    Unit u = opUnit(op);
    if (u == Unit::SP && t == DType::F32) {
        switch (op) {
          case Op::Add: case Op::Sub: case Op::Mul: case Op::Mad:
          case Op::Min: case Op::Max: case Op::Abs: case Op::Set:
          case Op::Cvt: case Op::Selp:
            return Unit::FPU;
          default:
            break;
        }
    }
    return u;
}

int
instrSourceRegs(const Instr &ins, uint8_t out[3])
{
    int nsrc;
    switch (ins.op) {
      case Op::Nop: case Op::Exit: case Op::Bar: case Op::Bra:
      case Op::Ssy: case Op::Retp: case Op::Callp:
        nsrc = 0;
        break;
      case Op::Mov:
        nsrc = ins.sreg == SReg::None ? 1 : 0;
        break;
      case Op::Abs: case Op::Not: case Op::Cvt: case Op::Rcp:
      case Op::Rsqrt: case Op::Sqrt: case Op::Ex2: case Op::Lg2:
      case Op::Ld:
        nsrc = 1;
        break;
      case Op::Mad: case Op::Mad24:
        nsrc = 3;
        break;
      case Op::Selp:
        nsrc = 2;   // src[2] is a predicate-file index, not a register
        break;
      default:
        nsrc = 2;
        break;
    }
    int n = 0;
    for (int i = 0; i < nsrc; i++) {
        if (ins.src[i] != Instr::immReg)
            out[n++] = ins.src[i];
    }
    return n;
}

bool
instrWritesReg(const Instr &ins)
{
    switch (ins.op) {
      case Op::St:
      case Op::Bra:
      case Op::Ssy:
      case Op::Bar:
      case Op::Exit:
      case Op::Nop:
      case Op::Retp:
      case Op::Callp:
        return false;
      case Op::Set:
        return !ins.dstIsPred;
      default:
        return true;
    }
}

std::string
disasm(const Instr &ins)
{
    char buf[160];
    std::string out;
    if (ins.pred != noPred) {
        std::snprintf(buf, sizeof(buf), "@%sp%u ", ins.predNeg ? "!" : "",
                      ins.pred);
        out += buf;
    }
    out += opName(ins.op);
    if (ins.type != DType::None) {
        out += ".";
        out += dtypeName(ins.type);
    }
    auto srcStr = [&](int i) -> std::string {
        if (ins.src[i] == Instr::immReg) {
            if (ins.type == DType::F32) {
                float f;
                __builtin_memcpy(&f, &ins.imm, 4);
                std::snprintf(buf, sizeof(buf), "%g", f);
            } else {
                std::snprintf(buf, sizeof(buf), "%u", ins.imm);
            }
            return buf;
        }
        std::snprintf(buf, sizeof(buf), "r%u", ins.src[i]);
        return buf;
    };
    switch (ins.op) {
      case Op::Bra:
        std::snprintf(buf, sizeof(buf), " -> %d", ins.target);
        out += buf;
        break;
      case Op::Ssy:
        std::snprintf(buf, sizeof(buf), " reconv %d", ins.target);
        out += buf;
        break;
      case Op::Exit:
      case Op::Nop:
      case Op::Bar:
      case Op::Retp:
        break;
      case Op::Ld:
        std::snprintf(buf, sizeof(buf), " r%u, [%s + %u]", ins.dst,
                      srcStr(0).c_str(), ins.imm);
        out += buf;
        break;
      case Op::St:
        std::snprintf(buf, sizeof(buf), " [%s + %u], %s", srcStr(0).c_str(),
                      ins.imm, srcStr(1).c_str());
        out += buf;
        break;
      case Op::Mov:
        if (ins.sreg != SReg::None) {
            static const char *sregNames[] = {
                "none", "%tid.x", "%tid.y", "%tid.z", "%ctaid.x", "%ctaid.y",
                "%ctaid.z", "%ntid.x", "%ntid.y", "%ntid.z", "%laneid",
                "%warpid"
            };
            std::snprintf(buf, sizeof(buf), " r%u, %s", ins.dst,
                          sregNames[static_cast<int>(ins.sreg)]);
        } else {
            std::snprintf(buf, sizeof(buf), " r%u, %s", ins.dst,
                          srcStr(0).c_str());
        }
        out += buf;
        break;
      case Op::Set:
        std::snprintf(buf, sizeof(buf), " %s%u, %s, %s",
                      ins.dstIsPred ? "p" : "r", ins.dst, srcStr(0).c_str(),
                      srcStr(1).c_str());
        out += buf;
        break;
      case Op::Mad:
      case Op::Mad24:
      case Op::Selp:
        std::snprintf(buf, sizeof(buf), " r%u, %s, %s, %s", ins.dst,
                      srcStr(0).c_str(), srcStr(1).c_str(),
                      srcStr(2).c_str());
        out += buf;
        break;
      case Op::Abs:
      case Op::Not:
      case Op::Cvt:
      case Op::Rcp:
      case Op::Rsqrt:
      case Op::Sqrt:
      case Op::Ex2:
      case Op::Lg2:
        std::snprintf(buf, sizeof(buf), " r%u, %s", ins.dst,
                      srcStr(0).c_str());
        out += buf;
        break;
      default:
        std::snprintf(buf, sizeof(buf), " r%u, %s, %s", ins.dst,
                      srcStr(0).c_str(), srcStr(1).c_str());
        out += buf;
        break;
    }
    return out;
}

} // namespace tango::sim
