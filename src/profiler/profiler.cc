#include "profiler/profiler.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "sim/isa.hh"
#include "sim/profile.hh"

namespace tango::prof {

Series
stallBreakdown(const StatSet &stats)
{
    Series out;
    double total = 0.0;
    for (size_t i = 0; i < sim::numStalls; i++) {
        const std::string key =
            std::string("stall.") +
            sim::stallName(static_cast<sim::Stall>(i));
        total += stats.get(key);
    }
    for (size_t i = 0; i < sim::numStalls; i++) {
        const char *name = sim::stallName(static_cast<sim::Stall>(i));
        const double v = stats.get(std::string("stall.") + name);
        out.emplace_back(name, total > 0 ? v / total : 0.0);
    }
    return out;
}

Series
opBreakdown(const StatSet &stats)
{
    Series out;
    const double total = stats.sumPrefix("op.");
    if (total <= 0)
        return out;
    for (const auto &[k, v] : stats.all()) {
        if (k.rfind("op.", 0) == 0 && v > 0)
            out.emplace_back(k.substr(3), v / total);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

Series
dtypeBreakdown(const StatSet &stats)
{
    Series out;
    const double total = stats.sumPrefix("dtype.");
    if (total <= 0)
        return out;
    // Keep the paper's legend order: f32, u32, u16, s32, s16.
    for (const char *t : {"f32", "u32", "u16", "s32", "s16"}) {
        const double v = stats.get(std::string("dtype.") + t);
        out.emplace_back(t, v / total);
    }
    return out;
}

Series
topN(const Series &s, size_t n)
{
    Series out;
    double rest = 0.0;
    for (size_t i = 0; i < s.size(); i++) {
        if (i < n)
            out.push_back(s[i]);
        else
            rest += s[i].second;
    }
    if (rest > 0.0)
        out.emplace_back("Others", rest);
    return out;
}

Series
layerTimeBreakdown(const rt::NetRun &run)
{
    Series out;
    double total = 0.0;
    for (const std::string &fig : run.figTypes())
        total += run.figTypeTime(fig);
    for (const std::string &fig : run.figTypes()) {
        out.emplace_back(fig,
                         total > 0 ? run.figTypeTime(fig) / total : 0.0);
    }
    return out;
}

Series
layerEnergyBreakdown(const rt::NetRun &run)
{
    Series out;
    double total = 0.0;
    std::vector<std::pair<std::string, double>> vals;
    for (const std::string &fig : run.figTypes()) {
        double e = 0.0;
        for (const auto &l : run.layers) {
            if (l.figType == fig)
                e += l.energyJ();
        }
        vals.emplace_back(fig, e);
        total += e;
    }
    for (auto &[fig, e] : vals)
        out.emplace_back(fig, total > 0 ? e / total : 0.0);
    return out;
}

Series
layerStat(const rt::NetRun &run, const std::string &stat)
{
    Series out;
    for (const std::string &fig : run.figTypes())
        out.emplace_back(fig, run.figTypeStat(fig, stat));
    return out;
}

StatSet
mergeTotals(const std::vector<const rt::NetRun *> &runs)
{
    StatSet out;
    for (const rt::NetRun *r : runs)
        out.merge(r->totals);
    return out;
}

// --------------------------------------------------- per-PC attribution

std::vector<Hotspot>
hotspots(const rt::NetRun &run)
{
    // Aggregation key: kernel name + '\0' + label (both are '\0'-free).
    std::map<std::string, Hotspot> agg;
    for (const auto &layer : run.layers) {
        for (const auto &ks : layer.kernels) {
            if (!ks.profile)
                continue;
            const sim::KernelProfile &p = *ks.profile;
            for (uint32_t pc = 0; pc < p.numPcs(); pc++) {
                const std::string &label = p.labelAt(pc);
                Hotspot &h =
                    agg[ks.name + std::string(1, '\0') + label];
                h.kernel = ks.name;
                h.label = label;
                const double issued = p.scaled(p.issued[pc]);
                const double stalled = p.scaled(p.stallTotalAt(pc));
                h.issued += issued;
                h.stallCycles += stalled;
                h.cycles += issued + stalled;
                if (ks.replayed)
                    h.replayedCycles += issued + stalled;
                h.l1dMisses += p.scaled(p.l1dMisses[pc]);
                h.l2Misses += p.scaled(p.l2Misses[pc]);
                h.dramBytes += p.scaled(p.dramTxns[pc]) * p.lineBytes;
            }
        }
    }
    std::vector<Hotspot> out;
    out.reserve(agg.size());
    for (auto &[key, h] : agg)
        out.push_back(std::move(h));
    std::sort(out.begin(), out.end(), [](const Hotspot &a, const Hotspot &b) {
        if (a.cycles != b.cycles)
            return a.cycles > b.cycles;
        return std::tie(a.kernel, a.label) < std::tie(b.kernel, b.label);
    });
    return out;
}

std::vector<AnnotatedLine>
annotateKernel(const rt::NetRun &run, const std::string &kernel)
{
    std::vector<AnnotatedLine> out;
    for (const auto &layer : run.layers) {
        for (const auto &ks : layer.kernels) {
            if (ks.name != kernel || !ks.profile)
                continue;
            const sim::KernelProfile &p = *ks.profile;
            if (out.size() < p.numPcs())
                out.resize(p.numPcs());
            for (uint32_t pc = 0; pc < p.numPcs(); pc++) {
                AnnotatedLine &l = out[pc];
                l.pc = pc;
                if (l.text.empty() && pc < p.disasm.size())
                    l.text = p.disasm[pc];
                if (l.label.empty())
                    l.label = p.labelAt(pc);
                l.issued += p.scaled(p.issued[pc]);
                l.stallCycles += p.scaled(p.stallTotalAt(pc));
                l.l1dMisses += p.scaled(p.l1dMisses[pc]);
                l.l2Misses += p.scaled(p.l2Misses[pc]);
                l.dramBytes += p.scaled(p.dramTxns[pc]) * p.lineBytes;
            }
        }
    }
    return out;
}

std::string
foldedStacks(const rt::NetRun &run)
{
    // One folded line per (layer, kernel, label), in run order: flamegraph
    // tools merge equal stacks themselves, but emitting them pre-merged
    // keeps the file small and diffable.
    std::string out;
    for (const auto &layer : run.layers) {
        std::map<std::string, double> stacks;   // stack -> cycles
        for (const auto &ks : layer.kernels) {
            if (!ks.profile)
                continue;
            const sim::KernelProfile &p = *ks.profile;
            for (uint32_t pc = 0; pc < p.numPcs(); pc++) {
                const std::string &label = p.labelAt(pc);
                const double cycles =
                    p.scaled(p.issued[pc] + p.stallTotalAt(pc));
                if (cycles <= 0.0)
                    continue;
                stacks[run.netName + ";" + layer.name + ";" + ks.name +
                       ";" + (label.empty() ? "(unlabeled)" : label)] +=
                    cycles;
            }
        }
        for (const auto &[stack, cycles] : stacks) {
            out += stack;
            out += ' ';
            out += std::to_string(
                static_cast<unsigned long long>(cycles + 0.5));
            out += '\n';
        }
    }
    return out;
}

bool
checkProfileConsistency(const rt::NetRun &run, std::string *why)
{
    for (const auto &layer : run.layers) {
        for (const auto &ks : layer.kernels) {
            if (!ks.profile)
                continue;
            std::string detail;
            if (!sim::profileConsistent(*ks.profile, ks.stats, &detail)) {
                if (why)
                    *why = layer.name + "/" + ks.name + ": " + detail;
                return false;
            }
        }
    }
    return true;
}

} // namespace tango::prof
