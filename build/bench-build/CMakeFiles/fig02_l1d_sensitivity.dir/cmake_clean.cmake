file(REMOVE_RECURSE
  "../bench/fig02_l1d_sensitivity"
  "../bench/fig02_l1d_sensitivity.pdb"
  "CMakeFiles/fig02_l1d_sensitivity.dir/fig02_l1d_sensitivity.cc.o"
  "CMakeFiles/fig02_l1d_sensitivity.dir/fig02_l1d_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_l1d_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
