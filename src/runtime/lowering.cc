#include "runtime/lowering.hh"

#include "common/logging.hh"
#include "kernels/kernels.hh"

namespace tango::rt {

using nn::Layer;
using nn::LayerKind;

uint64_t
layerWeightBytes(const Layer &l)
{
    switch (l.kind) {
      case LayerKind::Conv: {
        const uint64_t bytesPerW = l.quantWeights ? 2 : 4;
        return bytesPerW * l.K * l.C * l.R * l.S +
               (l.bias ? 4ull * l.K : 0);
      }
      case LayerKind::Depthwise:
        return 4ull * l.C * l.R * l.S + (l.bias ? 4ull * l.C : 0);
      case LayerKind::FC:
        return 4ull * l.outN * l.inN + (l.bias ? 4ull * l.outN : 0);
      case LayerKind::BatchNorm:
      case LayerKind::Scale:
        return 8ull * l.C;
      default:
        return 0;
    }
}

namespace {

/** Upload a tensor if it holds data; otherwise leave the garbage bytes
 *  (timing-only runs never read results). */
void
maybeUpload(sim::DeviceMemory &mem, uint32_t addr, const nn::Tensor &t,
            bool upload)
{
    if (upload && t.size())
        mem.copyIn(addr, t.data(), t.bytes());
}

} // namespace

LoweredNet
lower(const nn::Network &net, sim::DeviceMemory &mem, bool upload_weights,
      uint32_t max_loop_channels)
{
    TANGO_ASSERT(!(upload_weights && max_loop_channels),
                 "loop-channel sampling is timing-only");
    LoweredNet out;
    const auto &layers = net.layers();
    out.layerOut.assign(layers.size(), 0);

    const uint64_t startBytes = mem.used();
    out.inputAddr = mem.allocate(4ull * net.inC * net.inH * net.inW,
                                 net.name + ".input");

    // Pass 1: output buffers.  Concat members alias the concat buffer, so
    // concat buffers must exist before their producers are visited.
    for (size_t i = 0; i < layers.size(); i++) {
        const Layer &l = layers[i];
        if (l.concatInto >= 0)
            continue;   // aliases the concat buffer (pass 1.5)
        out.layerOut[i] =
            mem.allocate(4ull * l.outputSize(), net.name + "." + l.name);
    }
    for (size_t i = 0; i < layers.size(); i++) {
        const Layer &l = layers[i];
        if (l.concatInto < 0)
            continue;
        TANGO_ASSERT(l.concatInto > static_cast<int>(i),
                     "concat target must follow its members");
        const Layer &target = layers[l.concatInto];
        out.layerOut[i] = out.layerOut[l.concatInto] +
                          4u * l.outChannelOffset * target.P * target.Q;
    }

    auto inAddr = [&](const Layer &l, int which = 0) -> uint32_t {
        const int p = l.inputs[which];
        return p < 0 ? out.inputAddr : out.layerOut[p];
    };

    // Pass 2: weights + kernels.
    for (size_t i = 0; i < layers.size(); i++) {
        const Layer &l = layers[i];
        double workScale = 1.0;
        auto addKernel = [&](sim::KernelLaunch launch) {
            LoweredKernel lk;
            lk.launch = std::move(launch);
            lk.layerIndex = static_cast<int>(i);
            lk.figType = l.figType;
            lk.workScale = workScale;
            out.kernels.push_back(std::move(lk));
        };
        const std::string prefix = net.name + "." + l.name;

        switch (l.kind) {
          case LayerKind::Conv: {
            const uint64_t bytesPerW = l.quantWeights ? 2 : 4;
            const uint32_t w = mem.allocate(
                bytesPerW * l.K * l.C * l.R * l.S, prefix + ".w");
            if (l.quantWeights) {
                if (upload_weights && l.weightsQ.size()) {
                    // Pack the integer weight values as s16.
                    std::vector<int16_t> packed(l.weightsQ.size());
                    for (uint64_t qi = 0; qi < l.weightsQ.size(); qi++)
                        packed[qi] = static_cast<int16_t>(l.weightsQ[qi]);
                    mem.copyIn(w, packed.data(), packed.size() * 2);
                }
            } else {
                maybeUpload(mem, w, l.weights, upload_weights);
            }
            uint32_t bAddr = 0;
            if (l.bias) {
                bAddr = mem.allocate(4ull * l.K, prefix + ".b");
                maybeUpload(mem, bAddr, l.biasT, upload_weights);
            }
            kern::ConvDesc d;
            d.C = l.C;
            d.H = l.H;
            d.W = l.W;
            d.K = l.K;
            if (max_loop_channels &&
                l.hint.chanSrc == kern::ChannelSrc::Loop &&
                l.K > max_loop_channels) {
                d.K = max_loop_channels;
                workScale = double(l.K) / max_loop_channels;
            }
            d.R = l.R;
            d.S = l.S;
            d.stride = l.stride;
            d.pad = l.pad;
            d.P = l.P;
            d.Q = l.Q;
            d.relu = l.relu;
            d.bias = l.bias;
            d.quantWeights = l.quantWeights;
            d.filterSrc = l.hint.chanSrc;
            d.pixelMap = l.hint.pixMap;

            const uint32_t fpk =
                l.hint.filtersPerKernel ? l.hint.filtersPerKernel : l.K;
            int part = 1;
            for (uint32_t fb = 0; fb < l.K; fb += fpk, part++) {
                kern::ConvDesc dk = d;
                dk.filterBase =
                    (l.hint.chanSrc == kern::ChannelSrc::GridX) ? fb : 0;
                dk.grid = l.hint.grid;
                if (l.hint.chanSrc == kern::ChannelSrc::GridX)
                    dk.grid.x = std::min(fpk, l.K - fb);
                dk.block = l.hint.block;
                if (!l.hint.tiles.empty()) {
                    int tile = 1;
                    for (const auto &t : l.hint.tiles) {
                        kern::ConvDesc dt = dk;
                        dt.name = prefix + "_" + std::to_string(part) +
                                  "-" + std::to_string(tile++);
                        dt.tileX = t.tileX;
                        dt.tileY = t.tileY;
                        dt.block = {t.bw, t.bh, 1};
                        addKernel(kern::makeConvLaunch(
                            dt, inAddr(l), w, bAddr, out.layerOut[i],
                            l.weightScale));
                    }
                } else {
                    dk.name = l.K > fpk
                                  ? prefix + "_" + std::to_string(part)
                                  : prefix;
                    addKernel(kern::makeConvLaunch(dk, inAddr(l), w, bAddr,
                                                   out.layerOut[i],
                                                   l.weightScale));
                }
                if (l.hint.chanSrc != kern::ChannelSrc::GridX)
                    break;   // Loop/GridZ kernels cover every filter
            }
            break;
          }
          case LayerKind::Depthwise: {
            const uint32_t w = mem.allocate(4ull * l.C * l.R * l.S,
                                            prefix + ".w");
            maybeUpload(mem, w, l.weights, upload_weights);
            uint32_t bAddr = 0;
            if (l.bias) {
                bAddr = mem.allocate(4ull * l.C, prefix + ".b");
                maybeUpload(mem, bAddr, l.biasT, upload_weights);
            }
            kern::DepthwiseDesc d;
            d.name = prefix;
            d.C = l.C;
            d.H = l.H;
            d.W = l.W;
            d.R = l.R;
            d.S = l.S;
            d.stride = l.stride;
            d.pad = l.pad;
            d.P = l.P;
            d.Q = l.Q;
            d.relu = l.relu;
            d.bias = l.bias;
            d.grid = l.hint.grid;
            d.block = l.hint.block;
            addKernel(kern::makeDepthwiseLaunch(d, inAddr(l), w, bAddr,
                                                out.layerOut[i]));
            break;
          }
          case LayerKind::Pool: {
            kern::PoolDesc d;
            d.name = prefix;
            d.C = l.C;
            if (max_loop_channels &&
                l.hint.chanSrc == kern::ChannelSrc::Loop && !l.globalAvg &&
                l.C > max_loop_channels) {
                d.C = max_loop_channels;
                workScale = double(l.C) / max_loop_channels;
            }
            d.H = l.H;
            d.W = l.W;
            d.win = l.R;
            d.stride = l.stride;
            d.pad = l.pad;
            d.P = l.P;
            d.Q = l.Q;
            d.avg = l.avg;
            d.globalAvg = l.globalAvg;
            d.channelSrc = l.hint.chanSrc;
            d.pixelMap = l.hint.pixMap;
            d.grid = l.hint.grid;
            d.block = l.hint.block;
            addKernel(kern::makePoolLaunch(d, inAddr(l), out.layerOut[i]));
            break;
          }
          case LayerKind::FC: {
            const uint32_t w =
                mem.allocate(4ull * l.outN * l.inN, prefix + ".w");
            maybeUpload(mem, w, l.weights, upload_weights);
            uint32_t bAddr = 0;
            if (l.bias) {
                bAddr = mem.allocate(4ull * l.outN, prefix + ".b");
                maybeUpload(mem, bAddr, l.biasT, upload_weights);
            }
            kern::FcDesc d;
            d.name = prefix;
            d.inN = l.inN;
            d.outN = l.outN;
            d.relu = l.relu;
            d.bias = l.bias;
            d.grid = l.hint.grid;
            d.block = l.hint.block;
            addKernel(kern::makeFcLaunch(d, inAddr(l), w, bAddr,
                                         out.layerOut[i]));
            break;
          }
          case LayerKind::LRN: {
            kern::LrnDesc d;
            d.C = l.C;
            d.H = l.H;
            d.W = l.W;
            d.localSize = l.localSize;
            d.alpha = l.alpha;
            d.beta = l.beta;
            d.k = l.lrnK;
            d.grid = l.hint.grid;
            if (!l.hint.tiles.empty()) {
                int tile = 1;
                for (const auto &t : l.hint.tiles) {
                    kern::LrnDesc dt = d;
                    dt.name = prefix + "-" + std::to_string(tile++);
                    dt.tileX = t.tileX;
                    dt.tileY = t.tileY;
                    dt.block = {t.bw, t.bh, 1};
                    addKernel(kern::makeLrnLaunch(dt, inAddr(l),
                                                  out.layerOut[i]));
                }
            } else {
                d.name = prefix;
                d.block = l.hint.block;
                addKernel(kern::makeLrnLaunch(d, inAddr(l),
                                              out.layerOut[i]));
            }
            break;
          }
          case LayerKind::BatchNorm:
          case LayerKind::Scale:
          case LayerKind::ReLU:
          case LayerKind::Eltwise: {
            kern::MapDesc d;
            d.name = prefix;
            d.C = l.C;
            d.H = l.H;
            d.W = l.W;
            d.relu = l.relu;
            d.eps = l.eps;
            d.channelSrc = l.hint.chanSrc;
            d.pixelMap = l.hint.pixMap;
            d.grid = l.hint.grid;
            d.block = l.hint.block;
            uint32_t pb = 0, pc = 0;
            switch (l.kind) {
              case LayerKind::BatchNorm: {
                d.kind = kern::MapKind::BatchNorm;
                pb = mem.allocate(4ull * l.C, prefix + ".mean");
                pc = mem.allocate(4ull * l.C, prefix + ".var");
                maybeUpload(mem, pb, l.mean, upload_weights);
                maybeUpload(mem, pc, l.var, upload_weights);
                // Timing-only runs never upload, but rsqrt of garbage can
                // produce NaN storms that are still harmless; leave as-is.
                break;
              }
              case LayerKind::Scale: {
                d.kind = kern::MapKind::Scale;
                pb = mem.allocate(4ull * l.C, prefix + ".gamma");
                pc = mem.allocate(4ull * l.C, prefix + ".beta");
                maybeUpload(mem, pb, l.gamma, upload_weights);
                maybeUpload(mem, pc, l.betaT, upload_weights);
                break;
              }
              case LayerKind::ReLU:
                d.kind = kern::MapKind::Relu;
                break;
              default: {
                d.kind = kern::MapKind::Eltwise;
                TANGO_ASSERT(l.inputs.size() == 2, "eltwise arity");
                pb = inAddr(l, 1);
                break;
              }
            }
            addKernel(kern::makeMapLaunch(d, inAddr(l), pb, pc,
                                          out.layerOut[i]));
            break;
          }
          case LayerKind::Softmax: {
            kern::SoftmaxDesc d;
            d.name = prefix;
            d.n = l.outN;
            d.threads = l.hint.block.x ? l.hint.block.x : 32;
            addKernel(kern::makeSoftmaxLaunch(d, inAddr(l),
                                              out.layerOut[i]));
            break;
          }
          case LayerKind::Concat:
          case LayerKind::Input:
            break;   // no kernel
        }
    }

    out.deviceBytes = mem.used() - startBytes;
    return out;
}

LoweredRnn
lowerRnn(const nn::RnnModel &model, sim::DeviceMemory &mem,
         bool upload_weights)
{
    LoweredRnn out;
    const uint64_t startBytes = mem.used();

    kern::RnnCellDesc cell;
    cell.name = model.name + ".cell";
    cell.lstm = model.lstm;
    cell.inputSize = model.inputSize;
    cell.hidden = model.hidden;
    // Table III geometries: GRU (10,10), LSTM (100,1,1).
    cell.grid = {1, 1, 1};
    cell.block = model.lstm ? kern::Dim3{model.hidden, 1, 1}
                            : kern::Dim3{10, 10, 1};

    const uint32_t w =
        mem.allocate(kern::rnnWeightBytes(cell), model.name + ".w");
    maybeUpload(mem, w, model.weights, upload_weights);

    out.xAddr = mem.allocate(4ull * model.inputSize, model.name + ".x");
    for (int i = 0; i < 2; i++) {
        out.hAddr[i] =
            mem.allocate(4ull * model.hidden, model.name + ".h");
        out.cAddr[i] =
            mem.allocate(4ull * model.hidden, model.name + ".c");
    }
    out.outAddr = mem.allocate(4, model.name + ".out");

    // The shared cell program is built once and launched per step.
    auto program = kern::buildRnnCell(cell);
    for (uint32_t t = 0; t < model.seqLen; t++) {
        const uint32_t hIn = out.hAddr[t & 1];
        const uint32_t hOut = out.hAddr[(t + 1) & 1];
        const uint32_t cIn = out.cAddr[t & 1];
        const uint32_t cOut = out.cAddr[(t + 1) & 1];
        sim::KernelLaunch l;
        l.program = program;
        l.grid = cell.grid;
        l.block = cell.block;
        l.params = {out.xAddr, hIn, cIn, w, hOut, cOut};
        l.constData.resize(8);
        std::memcpy(l.constData.data(), &cell.inputSize, 4);
        std::memcpy(l.constData.data() + 4, &cell.hidden, 4);
        LoweredKernel lk;
        lk.launch = std::move(l);
        lk.layerIndex = static_cast<int>(t);
        lk.figType = model.lstm ? "LSTM" : "GRU";
        out.kernels.push_back(std::move(lk));
    }
    out.finalH = out.hAddr[model.seqLen & 1];

    // Dense readout: hidden -> 1, as a parallel reduction.
    const uint32_t fw =
        mem.allocate(4ull * model.hidden, model.name + ".fc.w");
    const uint32_t fb = mem.allocate(4, model.name + ".fc.b");
    maybeUpload(mem, fw, model.fcW, upload_weights);
    maybeUpload(mem, fb, model.fcB, upload_weights);
    kern::RnnReadoutDesc fc;
    fc.name = model.name + ".fc";
    fc.hidden = model.hidden;
    LoweredKernel lk;
    lk.launch =
        kern::makeRnnReadoutLaunch(fc, out.finalH, fw, fb, out.outAddr);
    lk.layerIndex = static_cast<int>(model.seqLen);
    lk.figType = model.lstm ? "LSTM" : "GRU";
    out.kernels.push_back(std::move(lk));

    out.deviceBytes = mem.used() - startBytes;
    return out;
}

} // namespace tango::rt
