file(REMOVE_RECURSE
  "../bench/fig08_op_breakdown"
  "../bench/fig08_op_breakdown.pdb"
  "CMakeFiles/fig08_op_breakdown.dir/fig08_op_breakdown.cc.o"
  "CMakeFiles/fig08_op_breakdown.dir/fig08_op_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_op_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
