/**
 * @file
 * Property tests for the batched memory coalescer: for every address
 * pattern a warp can produce, coalesceSegments() must emit exactly the
 * segments a straightforward per-lane reference implementation emits, in
 * the same order.  The production version's last-segment fast path is an
 * optimization only — these tests pin it to the reference semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/interp.hh"

namespace tango::sim {
namespace {

/** The obvious per-lane implementation: walk active lanes in ascending
 *  order, append each lane's 128B segment unless already emitted. */
std::vector<uint32_t>
referenceCoalesce(const uint32_t addrs[warpSize], Mask exec)
{
    std::vector<uint32_t> segs;
    for (uint32_t lane = 0; lane < warpSize; lane++) {
        if (!(exec & (Mask(1) << lane)))
            continue;
        const uint32_t seg = addrs[lane] & ~127u;
        bool found = false;
        for (uint32_t s : segs) {
            if (s == seg) {
                found = true;
                break;
            }
        }
        if (!found)
            segs.push_back(seg);
    }
    return segs;
}

/** Run both implementations and require identical count and addresses. */
void
expectMatchesReference(const uint32_t addrs[warpSize], Mask exec)
{
    uint32_t out[warpSize];
    const uint32_t n = coalesceSegments(addrs, exec, out);
    const std::vector<uint32_t> ref = referenceCoalesce(addrs, exec);
    ASSERT_EQ(n, ref.size()) << "segment count diverged, exec=0x" << std::hex
                             << exec;
    for (uint32_t s = 0; s < n; s++) {
        EXPECT_EQ(out[s], ref[s]) << "segment " << s << " diverged, exec=0x"
                                  << std::hex << exec;
    }
}

TEST(CoalescerProperties, Stride1FullWarp)
{
    // lane i -> base + 4*i: one warp-wide load = 1 segment when aligned,
    // 2 when the warp straddles a 128B boundary.
    for (uint32_t base : {0u, 128u, 4096u, 4096u + 4u, 4096u + 64u}) {
        uint32_t addrs[warpSize];
        for (uint32_t l = 0; l < warpSize; l++)
            addrs[l] = base + 4 * l;
        expectMatchesReference(addrs, ~Mask(0));

        uint32_t out[warpSize];
        const uint32_t n = coalesceSegments(addrs, ~Mask(0), out);
        EXPECT_EQ(n, base % 128 == 0 ? 1u : 2u);
    }
}

TEST(CoalescerProperties, Broadcast)
{
    // Every lane reads the same address: always exactly 1 segment.
    uint32_t addrs[warpSize];
    for (uint32_t l = 0; l < warpSize; l++)
        addrs[l] = 0x1234u;
    expectMatchesReference(addrs, ~Mask(0));

    uint32_t out[warpSize];
    EXPECT_EQ(coalesceSegments(addrs, ~Mask(0), out), 1u);
    EXPECT_EQ(out[0], 0x1234u & ~127u);
}

TEST(CoalescerProperties, StrideN)
{
    // lane i -> base + stride*i for strides up to fully diverged.
    for (uint32_t stride : {8u, 16u, 32u, 64u, 128u, 132u, 256u, 1024u}) {
        uint32_t addrs[warpSize];
        for (uint32_t l = 0; l < warpSize; l++)
            addrs[l] = 512 + stride * l;
        expectMatchesReference(addrs, ~Mask(0));
    }
    // stride >= 128 from an aligned base: every lane its own segment.
    uint32_t addrs[warpSize];
    for (uint32_t l = 0; l < warpSize; l++)
        addrs[l] = 128 * l;
    uint32_t out[warpSize];
    EXPECT_EQ(coalesceSegments(addrs, ~Mask(0), out), uint32_t(warpSize));
}

TEST(CoalescerProperties, CrossLinePairs)
{
    // Adjacent lanes alternate between two lines — defeats the
    // last-segment fast path on every other lane.
    uint32_t addrs[warpSize];
    for (uint32_t l = 0; l < warpSize; l++)
        addrs[l] = (l % 2) ? 4096u : 0u;
    expectMatchesReference(addrs, ~Mask(0));

    uint32_t out[warpSize];
    EXPECT_EQ(coalesceSegments(addrs, ~Mask(0), out), 2u);
    EXPECT_EQ(out[0], 0u);     // lane 0 first
    EXPECT_EQ(out[1], 4096u);
}

TEST(CoalescerProperties, PartialAndEmptyMasks)
{
    uint32_t addrs[warpSize];
    for (uint32_t l = 0; l < warpSize; l++)
        addrs[l] = 4 * l;

    uint32_t out[warpSize];
    EXPECT_EQ(coalesceSegments(addrs, Mask(0), out), 0u);

    for (Mask exec : {Mask(1), Mask(0x80000000u), Mask(0x0000ffffu),
                      Mask(0xaaaaaaaau), Mask(0x00010001u)}) {
        expectMatchesReference(addrs, exec);
    }
}

TEST(CoalescerProperties, RandomPatterns)
{
    // Fixed seed: the property must hold for arbitrary address soup and
    // arbitrary active masks, including inactive-lane garbage addresses.
    std::mt19937 rng(12345);
    std::uniform_int_distribution<uint32_t> addrDist(0, 1u << 20);
    std::uniform_int_distribution<uint32_t> maskDist;
    for (int trial = 0; trial < 2000; trial++) {
        uint32_t addrs[warpSize];
        for (uint32_t l = 0; l < warpSize; l++)
            addrs[l] = addrDist(rng);
        expectMatchesReference(addrs, Mask(maskDist(rng)));
    }
}

TEST(CoalescerProperties, RandomClusteredPatterns)
{
    // Realistic case: addresses clustered into a few lines (what strided
    // kernels with minor divergence produce).
    std::mt19937 rng(67890);
    std::uniform_int_distribution<uint32_t> lineDist(0, 7);
    std::uniform_int_distribution<uint32_t> offDist(0, 127);
    std::uniform_int_distribution<uint32_t> maskDist;
    for (int trial = 0; trial < 2000; trial++) {
        uint32_t addrs[warpSize];
        for (uint32_t l = 0; l < warpSize; l++)
            addrs[l] = lineDist(rng) * 128 + offDist(rng);
        expectMatchesReference(addrs, Mask(maskDist(rng)));
    }
}

} // namespace
} // namespace tango::sim
