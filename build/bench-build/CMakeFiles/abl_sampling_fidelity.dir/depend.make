# Empty dependencies file for abl_sampling_fidelity.
# This may be replaced when dependencies are built.
