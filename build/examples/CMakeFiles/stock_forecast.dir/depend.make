# Empty dependencies file for stock_forecast.
# This may be replaced when dependencies are built.
