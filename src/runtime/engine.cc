#include "runtime/engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <tuple>

#include "common/env.hh"
#include "common/logging.hh"
#include "metrics/metrics.hh"
#include "runtime/run_cache.hh"
#include "sim/gpu.hh"
#include "sim/shard.hh"

namespace tango::rt {

namespace {

/** Process-wide engine instruments (see metrics.hh).  Every Engine in
 *  the process feeds the same series — counters are monotonic across
 *  engines and the in-flight gauge moves by deltas, so the composition
 *  stays coherent; per-engine exact counts remain in CacheStats. */
struct EngineMetrics
{
    metrics::Counter &memHits, &diskHits, &misses, &failures;
    metrics::Counter &tierSim, &tierReplay, &tierEstimate;
    metrics::Gauge &inflight;
    metrics::Histogram &simWallUs;

    static EngineMetrics &get()
    {
        static constexpr const char *kCache = "tango_engine_cache_total";
        static constexpr const char *kCacheHelp =
            "Engine cache lookups by result";
        static constexpr const char *kJobs = "tango_engine_jobs_total";
        static constexpr const char *kJobsHelp =
            "Engine submitJob() calls by requested accuracy tier";
        static EngineMetrics m{
            metrics::counter(kCache, kCacheHelp, {{"result", "mem_hit"}}),
            metrics::counter(kCache, kCacheHelp, {{"result", "disk_hit"}}),
            metrics::counter(kCache, kCacheHelp, {{"result", "miss"}}),
            metrics::counter("tango_engine_failures_total",
                             "Simulations that threw (evicted so a "
                             "retry re-simulates)"),
            metrics::counter(kJobs, kJobsHelp, {{"tier", "sim"}}),
            metrics::counter(kJobs, kJobsHelp, {{"tier", "replay"}}),
            metrics::counter(kJobs, kJobsHelp, {{"tier", "estimate"}}),
            metrics::gauge("tango_engine_inflight_sims",
                           "Simulations submitted and not yet finished "
                           "(the admission queue depth)"),
            metrics::histogram("tango_engine_sim_wall_us",
                               "Per-job simulation wall time in "
                               "microseconds (cache hits excluded)"),
        };
        return m;
    }
};

} // namespace

// ------------------------------------------------------------------ RunKey

std::string
RunKey::str() const
{
    const std::string l1 =
        l1dBytes ? std::to_string(l1dBytes / 1024) + "K" : "off";
    return net + "/" + platform + "/l1=" + l1 + "/" +
           sim::schedName(sched) + "/" + policy;
}

bool
RunKey::operator<(const RunKey &o) const
{
    return std::tie(net, platform, l1dBytes, sched, policy) <
           std::tie(o.net, o.platform, o.l1dBytes, o.sched, o.policy);
}

bool
RunKey::operator==(const RunKey &o) const
{
    return std::tie(net, platform, l1dBytes, sched, policy) ==
           std::tie(o.net, o.platform, o.l1dBytes, o.sched, o.policy);
}

sim::GpuConfig
makeConfig(const RunKey &key)
{
    sim::GpuConfig cfg = key.platform == "GK210" ? sim::keplerGK210()
                         : key.platform == "TX1" ? sim::maxwellTX1()
                                                 : sim::pascalGP102();
    cfg.l1dBytes = key.l1dBytes;
    cfg.scheduler = key.sched;
    return cfg;
}

// ----------------------------------------------------------- EngineOptions

EngineOptions
EngineOptions::fromEnv()
{
    EngineOptions opt;
    opt.threads = static_cast<unsigned>(envUint("TANGO_ENGINE_THREADS", 0));
    if (opt.threads == 0) {
        // Share the machine between run-level workers and shard-level
        // workers: with TANGO_SIM_SHARDS=K every launch forks up to K
        // simulation threads, so the default worker count drops by K to
        // keep the total thread budget at hardware concurrency.  The
        // division is static (env only, never load-dependent), so it can
        // never make results differ between machines.  An explicit
        // TANGO_ENGINE_THREADS always wins.
        const uint32_t k = sim::envSimShards();
        if (k > 1) {
            const unsigned hw =
                std::max(1u, std::thread::hardware_concurrency());
            opt.threads = std::max(1u, hw / k);
        }
    }
    if (const char *c = std::getenv("TANGO_ENGINE_CACHE"))
        opt.cachePath = c;
    opt.maxCacheBytes =
        envUint("TANGO_ENGINE_CACHE_MAX_MB", 0) * 1024 * 1024;
    return opt;
}

// ------------------------------------------------------------------ Engine

/** One cache entry: the job closure until it runs, the result after. */
struct Engine::Slot
{
    std::string key;
    sim::GpuConfig cfg;
    JobFn fn;   ///< cleared once the job has run

    std::promise<const NetRun *> promise;
    std::shared_future<const NetRun *> future;
    std::unique_ptr<NetRun> result;   ///< stable address for references
};

Engine::Engine(EngineOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads)
{
    // loadRunCache() rejects files whose kRunCacheVersion *or*
    // kSimStatsVersion differs, so a cached NetRun served here is always
    // bit-identical to what the current simulator would produce.
    if (!opt_.cachePath.empty())
        disk_ = loadRunCache(opt_.cachePath);
}

Engine::~Engine()
{
    pool_.wait();
    flush();
    logCacheStats();
}

sim::Gpu &
Engine::workerGpu(const sim::GpuConfig &cfg)
{
    // One private Gpu per worker thread.  The sim stack is
    // single-threaded internally; the thread_local keeps it that way
    // while letting consecutive jobs on a worker reuse the device
    // (reconfigure() rebuilds the memory system and cold-starts it, so
    // no state leaks between jobs).
    static thread_local std::unique_ptr<sim::Gpu> gpu;
    if (!gpu)
        gpu = std::make_unique<sim::Gpu>(cfg);
    else
        gpu->reconfigure(cfg);
    return *gpu;
}

void
Engine::execute(const std::shared_ptr<Slot> &slot)
{
    EngineMetrics &em = EngineMetrics::get();
    try {
        const auto t0 = std::chrono::steady_clock::now();
        NetRun run = slot->fn(workerGpu(slot->cfg));
        em.simWallUs.observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        em.inflight.sub();
        std::unique_lock<std::mutex> lock(mu_);
        slot->fn = nullptr;
        slot->result = std::make_unique<NetRun>(std::move(run));
        dirty_ = true;
        inflight_--;
        slot->promise.set_value(slot->result.get());
    } catch (...) {
        em.failures.inc();
        em.inflight.sub();
        std::unique_lock<std::mutex> lock(mu_);
        slot->fn = nullptr;
        stats_.failures++;
        inflight_--;
        // Evict so a retry re-simulates; waiters holding the shared
        // future still see the exception through the shared state.
        slots_.erase(slot->key);
        slot->promise.set_exception(std::current_exception());
    }
}

std::shared_future<const NetRun *>
Engine::submitLocked(const std::string &key, const sim::GpuConfig &cfg,
                     JobFn fn)
{
    auto it = slots_.find(key);
    if (it != slots_.end()) {
        stats_.memHits++;
        EngineMetrics::get().memHits.inc();
        return it->second->future;
    }

    auto slot = std::make_shared<Slot>();
    slot->key = key;
    slot->cfg = cfg;
    slot->future = slot->promise.get_future().share();

    auto disk = disk_.find(key);
    if (disk != disk_.end()) {
        // Recalled from the JSON spill: resolve immediately.
        stats_.diskHits++;
        EngineMetrics::get().diskHits.inc();
        slot->result = std::make_unique<NetRun>(std::move(disk->second));
        disk_.erase(disk);
        slot->promise.set_value(slot->result.get());
        auto future = slot->future;
        slots_.emplace(key, std::move(slot));
        return future;
    }

    stats_.misses++;
    inflight_++;
    EngineMetrics::get().misses.inc();
    EngineMetrics::get().inflight.add();
    slot->fn = std::move(fn);
    slots_.emplace(key, slot);
    pool_.submit([this, slot] { execute(slot); });
    return slot->future;
}

std::shared_future<const NetRun *>
Engine::submit(const RunKey &key)
{
    // A RunKey is the all-defaults subset of a JobSpec; its str() and
    // the JobSpec cache key are character-identical (test_job asserts
    // this), so bench sweeps and serve traffic share one cache.  Keying
    // goes through cacheKey() — not key.str() — so environment-driven
    // result changes it encodes (the TANGO_SIM_SHARDS /k=N suffix) can
    // never alias a differently-sharded entry.
    JobSpec spec;
    spec.net = key.net;
    spec.policy = key.policy;
    spec.platform = key.platform;
    spec.l1dBytes = key.l1dBytes;
    spec.sched = key.sched;
    const sim::GpuConfig cfg = spec.gpuConfig();
    std::unique_lock<std::mutex> lock(mu_);
    return submitLocked(spec.cacheKey().str, cfg, [spec](sim::Gpu &gpu) {
        return runJob(gpu, spec);
    });
}

Engine::Submitted
Engine::submitJob(const JobSpec &spec, unsigned maxInFlight, JobFn fn)
{
    JobSpec job = spec;
    job.trace = false;   // a driver concern; never part of the job body
    const std::string key = job.cacheKey().str;
    const sim::GpuConfig cfg = job.gpuConfig();

    EngineMetrics &em = EngineMetrics::get();
    std::unique_lock<std::mutex> lock(mu_);
    switch (job.tier) {
      case Tier::Sim:      stats_.tierSim++; em.tierSim.inc(); break;
      case Tier::Replay:   stats_.tierReplay++; em.tierReplay.inc(); break;
      case Tier::Estimate:
        stats_.tierEstimate++;
        em.tierEstimate.inc();
        break;
    }
    Submitted out;
    auto it = slots_.find(key);
    if (it != slots_.end()) {
        stats_.memHits++;
        em.memHits.inc();
        out.served = it->second->result ? Submitted::Served::MemHit
                                        : Submitted::Served::Joined;
        out.future = it->second->future;
        return out;
    }
    if (disk_.find(key) != disk_.end()) {
        out.served = Submitted::Served::DiskHit;
        out.future = submitLocked(key, cfg, nullptr);
        return out;
    }
    if (maxInFlight && inflight_ >= maxInFlight) {
        out.served = Submitted::Served::Rejected;
        return out;
    }
    out.served = Submitted::Served::Simulated;
    if (!fn)
        fn = [job](sim::Gpu &gpu) { return runJob(gpu, job); };
    out.future = submitLocked(key, cfg, std::move(fn));
    return out;
}

unsigned
Engine::inFlightSims() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return inflight_;
}

std::shared_future<const NetRun *>
Engine::submit(const std::string &key, const sim::GpuConfig &cfg, JobFn fn)
{
    std::unique_lock<std::mutex> lock(mu_);
    return submitLocked(key, cfg, std::move(fn));
}

const NetRun &
Engine::run(const RunKey &key)
{
    return *submit(key).get();
}

const NetRun &
Engine::run(const std::string &key, const sim::GpuConfig &cfg, JobFn fn)
{
    return *submit(key, cfg, std::move(fn)).get();
}

void
Engine::prefetch(const std::vector<RunKey> &keys)
{
    for (const auto &key : keys)
        submit(key);
}

std::vector<const NetRun *>
Engine::runAll(const std::vector<RunKey> &keys)
{
    std::vector<std::shared_future<const NetRun *>> futures;
    futures.reserve(keys.size());
    for (const auto &key : keys)
        futures.push_back(submit(key));
    std::vector<const NetRun *> out;
    out.reserve(keys.size());
    for (auto &f : futures)
        out.push_back(f.get());
    return out;
}

void
Engine::flush()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (opt_.cachePath.empty() || !dirty_)
        return;
    // Everything we computed or loaded goes back out: completed slots
    // plus any spill entries no job has claimed yet.
    std::map<std::string, NetRun> all = disk_;
    for (const auto &[key, slot] : slots_) {
        if (slot->result)
            all.emplace(key, *slot->result);
    }
    if (!saveRunCache(opt_.cachePath, all, opt_.maxCacheBytes)) {
        warn("engine: failed to write result cache '%s'",
             opt_.cachePath.c_str());
    }
    dirty_ = false;
}

void
Engine::logCacheStats()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (statsLogged_)
        return;
    statsLogged_ = true;
    const CacheStats &s = stats_;
    if (s.memHits + s.diskHits + s.misses + s.failures == 0)
        return;   // nothing ran: nothing worth logging
    inform("engine: cache %llu mem hit%s, %llu disk hit%s, "
           "%llu miss%s (simulated), %llu failure%s",
           static_cast<unsigned long long>(s.memHits),
           s.memHits == 1 ? "" : "s",
           static_cast<unsigned long long>(s.diskHits),
           s.diskHits == 1 ? "" : "s",
           static_cast<unsigned long long>(s.misses),
           s.misses == 1 ? "" : "es",
           static_cast<unsigned long long>(s.failures),
           s.failures == 1 ? "" : "s");
    if (s.tierSim + s.tierReplay + s.tierEstimate > 0) {
        inform("engine: tiers %llu sim, %llu replay, %llu estimate",
               static_cast<unsigned long long>(s.tierSim),
               static_cast<unsigned long long>(s.tierReplay),
               static_cast<unsigned long long>(s.tierEstimate));
    }
}

Engine::CacheStats
Engine::cacheStats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
}

Engine &
Engine::global()
{
    // Leaked on purpose.  A job that fatal()s calls exit() from a worker
    // thread; exit() runs static destructors on that same thread, so a
    // static Engine here would have its ThreadPool join the very worker
    // that is exiting — a self-join deadlock.  The atexit hook still
    // flushes the disk spill (it only takes the engine mutex, which the
    // exiting worker never holds across exit()).
    static Engine *engine = [] {
        Engine *e = new Engine(EngineOptions::fromEnv());
        std::atexit([] {
            global().flush();
            global().logCacheStats();
        });
        return e;
    }();
    return *engine;
}

} // namespace tango::rt
