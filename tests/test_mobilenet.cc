/**
 * @file
 * Extension tests: the depthwise-convolution kernel and the MobileNet v1
 * model (the network the paper lists as "currently developing").
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/kernels.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using nn::Layer;
using nn::LayerKind;
using nn::Tensor;

Tensor
randomT(std::vector<uint32_t> shape, uint64_t seed)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (uint64_t i = 0; i < t.size(); i++)
        t[i] = rng.gaussian() * 0.5f;
    return t;
}

TEST(Depthwise, ReferenceHandComputed)
{
    // One channel, 3x3 ones filter, 3x3 input, pad 1: centre output is
    // the sum of all inputs.
    Layer l;
    l.kind = LayerKind::Depthwise;
    l.C = 1;
    l.H = l.W = 3;
    l.K = 1;
    l.R = l.S = 3;
    l.pad = 1;
    l.P = l.Q = 3;
    l.bias = false;
    l.weights = Tensor({1, 3, 3});
    for (int i = 0; i < 9; i++)
        l.weights[i] = 1.0f;
    Tensor in({1, 3, 3});
    float sum = 0.0f;
    for (int i = 0; i < 9; i++) {
        in[i] = float(i + 1);
        sum += in[i];
    }
    const Tensor out = referenceForward(l, {&in});
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), sum);
}

TEST(Depthwise, ChannelsAreIndependent)
{
    Layer l;
    l.kind = LayerKind::Depthwise;
    l.C = 2;
    l.H = l.W = 4;
    l.K = 2;
    l.R = l.S = 3;
    l.pad = 1;
    l.P = l.Q = 4;
    l.bias = false;
    l.weights = Tensor({2, 3, 3});
    // Channel 0 filter zero, channel 1 identity-centre.
    l.weights[9 + 4] = 1.0f;
    const Tensor in = randomT({2, 4, 4}, 1);
    const Tensor out = referenceForward(l, {&in});
    for (uint32_t y = 0; y < 4; y++) {
        for (uint32_t x = 0; x < 4; x++) {
            EXPECT_FLOAT_EQ(out.at(0, y, x), 0.0f);
            EXPECT_FLOAT_EQ(out.at(1, y, x), in.at(1, y, x));
        }
    }
}

TEST(Depthwise, KernelMatchesReference)
{
    Layer l;
    l.kind = LayerKind::Depthwise;
    l.C = 5;
    l.H = l.W = 11;
    l.K = 5;
    l.R = l.S = 3;
    l.stride = 2;
    l.pad = 1;
    l.P = l.Q = (11 + 2 - 3) / 2 + 1;
    l.relu = true;
    l.weights = randomT({5, 3, 3}, 2);
    l.biasT = randomT({5}, 3);

    const Tensor in = randomT({5, 11, 11}, 4);
    const Tensor ref = referenceForward(l, {&in});

    sim::Gpu gpu(sim::pascalGP102());
    auto up = [&](const Tensor &t) {
        const uint32_t a = gpu.mem().allocate(t.bytes());
        gpu.mem().copyIn(a, t.data(), t.bytes());
        return a;
    };
    const uint32_t inA = up(in);
    const uint32_t wA = up(l.weights);
    const uint32_t bA = up(l.biasT);
    const uint32_t outA = gpu.mem().allocate(4ull * l.C * l.P * l.Q);

    kern::DepthwiseDesc d;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.R = l.R;
    d.S = l.S;
    d.stride = l.stride;
    d.pad = l.pad;
    d.relu = true;
    d.grid = {l.C, 1, 1};
    d.block = {4, 4, 1};
    sim::SimPolicy full;
    full.fullSim = true;
    gpu.launch(kern::makeDepthwiseLaunch(d, inA, wA, bA, outA), full);

    for (uint64_t i = 0; i < ref.size(); i++) {
        const float got = gpu.mem().read<float>(outA + 4 * i);
        ASSERT_NEAR(got, ref[i],
                    1e-5f * std::max(1.0f, std::fabs(ref[i])))
            << "elem " << i;
    }
}

TEST(MobileNet, Structure)
{
    nn::Network net = nn::models::buildMobileNet();
    int dws = 0, convs = 0;
    for (const auto &l : net.layers()) {
        dws += l.kind == LayerKind::Depthwise;
        convs += l.kind == LayerKind::Conv;
    }
    EXPECT_EQ(dws, 13);
    EXPECT_EQ(convs, 14);   // stem + 13 pointwise
    nn::initWeights(net);
    // MobileNet v1: ~4.2M parameters.
    EXPECT_GT(net.totalParams(), 3'800'000u);
    EXPECT_LT(net.totalParams(), 4'800'000u);
    // ~569M MACs at 224x224.
    EXPECT_GT(net.totalMacs(), 500'000'000u);
    EXPECT_LT(net.totalMacs(), 650'000'000u);
}

TEST(MobileNet, RunsOnSimulator)
{
    sim::Gpu gpu(sim::pascalGP102());
    const rt::NetRun run =
        rt::runNetworkByName(gpu, "mobilenet",
                             rt::RunPolicy::named("bench"));
    EXPECT_GT(run.totalTimeSec, 0.0);
    EXPECT_GT(run.totals.sumPrefix("op."), 1e8);
    // MobileNet exists to be small: far less device memory than AlexNet.
    EXPECT_LT(run.deviceBytes, 64ull << 20);
}

TEST(MobileNet, FasterThanVggPerInference)
{
    // The whole point of depthwise separability: far fewer MACs.
    nn::Network mobile = nn::models::buildMobileNet();
    nn::Network vgg = nn::models::buildVgg16();
    EXPECT_LT(mobile.totalMacs() * 10, vgg.totalMacs());
}

} // namespace
} // namespace tango
