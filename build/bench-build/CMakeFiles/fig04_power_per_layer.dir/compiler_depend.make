# Empty compiler generated dependencies file for fig04_power_per_layer.
# This may be replaced when dependencies are built.
