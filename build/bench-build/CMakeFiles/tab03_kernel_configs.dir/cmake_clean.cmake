file(REMOVE_RECURSE
  "../bench/tab03_kernel_configs"
  "../bench/tab03_kernel_configs.pdb"
  "CMakeFiles/tab03_kernel_configs.dir/tab03_kernel_configs.cc.o"
  "CMakeFiles/tab03_kernel_configs.dir/tab03_kernel_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_kernel_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
