/**
 * @file
 * Fig 9 reproduction: total operation breakdown aggregated over ALL
 * networks, top-10 plus "Others".
 *
 * Paper shape to hold (Observation 7): the top four operations
 * (add, mad, mul, shl — the paper measured 17/14/12/13 %) make up over
 * half of the executed instructions, and the top ten make up ~95 %.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : nn::models::allNames())
        keys.push_back({net});
    const std::vector<const rt::NetRun *> runs = bench::engine().runAll(keys);
    const StatSet totals = prof::mergeTotals(runs);

    const prof::Series all = prof::opBreakdown(totals);
    const prof::Series top = prof::topN(all, 10);

    rt::printSeries(std::cout,
                    "Fig 9: total operations breakdown across all "
                    "networks (top 10)",
                    top, /*as_percent=*/true);

    double top4 = 0.0, top10 = 0.0;
    for (size_t i = 0; i < all.size(); i++) {
        if (i < 4)
            top4 += all[i].second;
        if (i < 10)
            top10 += all[i].second;
    }
    std::cout << "Observation 7: top-4 ops = " << Table::pct(top4)
              << " (paper: >50%), top-10 ops = " << Table::pct(top10)
              << " (paper: ~95%)\n";

    bench::registerValue("fig09/top4_share", "share", top4);
    bench::registerValue("fig09/top10_share", "share", top10);
    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
