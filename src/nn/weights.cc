#include "nn/weights.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tango::nn {

namespace {

/** FNV-1a hash for stable per-layer seeds. */
uint64_t
nameSeed(const std::string &net, const std::string &layer)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<uint8_t>(c);
            h *= 0x100000001b3ULL;
        }
    };
    mix(net);
    mix("/");
    mix(layer);
    return h;
}

void
fillGaussian(Tensor &t, Rng &rng, float stddev)
{
    for (uint64_t i = 0; i < t.size(); i++)
        t[i] = rng.gaussian() * stddev;
}

void
fillConst(Tensor &t, float v)
{
    for (uint64_t i = 0; i < t.size(); i++)
        t[i] = v;
}

/** Allocate (zeroed) parameter tensors of the right shapes. */
void
shapeLayer(Layer &l)
{
    switch (l.kind) {
      case LayerKind::Conv:
        l.weights = Tensor({l.K, l.C, l.R, l.S});
        if (l.bias)
            l.biasT = Tensor({l.K});
        break;
      case LayerKind::Depthwise:
        l.weights = Tensor({l.C, l.R, l.S});
        if (l.bias)
            l.biasT = Tensor({l.C});
        break;
      case LayerKind::FC:
        l.weights = Tensor({l.outN, l.inN});
        if (l.bias)
            l.biasT = Tensor({l.outN});
        break;
      case LayerKind::BatchNorm:
        l.mean = Tensor({l.C});
        l.var = Tensor({l.C});
        break;
      case LayerKind::Scale:
        l.gamma = Tensor({l.C});
        l.betaT = Tensor({l.C});
        break;
      default:
        break;
    }
}

void
initLayer(const std::string &netName, Layer &l)
{
    Rng rng(nameSeed(netName, l.name));
    shapeLayer(l);
    switch (l.kind) {
      case LayerKind::Conv: {
        const float fanIn = float(l.C) * l.R * l.S;
        fillGaussian(l.weights, rng, std::sqrt(2.0f / fanIn));
        if (l.bias)
            fillGaussian(l.biasT, rng, 0.05f);
        break;
      }
      case LayerKind::Depthwise: {
        fillGaussian(l.weights, rng,
                     std::sqrt(2.0f / float(l.R * l.S)));
        if (l.bias)
            fillGaussian(l.biasT, rng, 0.05f);
        break;
      }
      case LayerKind::FC: {
        fillGaussian(l.weights, rng, std::sqrt(2.0f / float(l.inN)));
        if (l.bias)
            fillGaussian(l.biasT, rng, 0.05f);
        break;
      }
      case LayerKind::BatchNorm: {
        fillGaussian(l.mean, rng, 0.1f);
        for (uint32_t c = 0; c < l.C; c++)
            l.var[c] = 0.5f + rng.uniform();   // strictly positive
        break;
      }
      case LayerKind::Scale: {
        for (uint32_t c = 0; c < l.C; c++)
            l.gamma[c] = 0.8f + 0.4f * rng.uniform();
        fillGaussian(l.betaT, rng, 0.05f);
        break;
      }
      default:
        break;
    }
}

/** Simple binary container: magic, rank, dims, payload. */
constexpr uint32_t weightMagic = 0x544e4757;   // "TGNW"

bool
writeTensor(std::FILE *f, const Tensor &t)
{
    const uint32_t rank = static_cast<uint32_t>(t.shape().size());
    if (std::fwrite(&weightMagic, 4, 1, f) != 1)
        return false;
    if (std::fwrite(&rank, 4, 1, f) != 1)
        return false;
    for (uint32_t d : t.shape()) {
        if (std::fwrite(&d, 4, 1, f) != 1)
            return false;
    }
    return t.size() == 0 ||
           std::fwrite(t.data(), 4, t.size(), f) == t.size();
}

bool
readTensor(std::FILE *f, Tensor &t)
{
    uint32_t magic = 0, rank = 0;
    if (std::fread(&magic, 4, 1, f) != 1 || magic != weightMagic)
        return false;
    if (std::fread(&rank, 4, 1, f) != 1 || rank > 8)
        return false;
    std::vector<uint32_t> shape(rank);
    for (uint32_t i = 0; i < rank; i++) {
        if (std::fread(&shape[i], 4, 1, f) != 1)
            return false;
    }
    Tensor loaded(shape);
    if (loaded.size() &&
        std::fread(loaded.data(), 4, loaded.size(), f) != loaded.size()) {
        return false;
    }
    if (!t.shape().empty() && t.shape() != loaded.shape())
        return false;
    t = std::move(loaded);
    return true;
}

std::vector<Tensor *>
paramTensors(Layer &l)
{
    std::vector<Tensor *> out;
    for (Tensor *t : {&l.weights, &l.biasT, &l.mean, &l.var, &l.gamma,
                      &l.betaT}) {
        if (t->size())
            out.push_back(t);
    }
    return out;
}

} // namespace

void
initWeights(Network &net)
{
    for (Layer &l : net.layers())
        initLayer(net.name, l);
}

void
initWeights(RnnModel &model)
{
    Rng rng(nameSeed(model.name, "cell"));
    const uint32_t G = model.lstm ? 4 : 3;
    const uint64_t n = uint64_t(G) * model.hidden * model.inputSize +
                       uint64_t(G) * model.hidden * model.hidden +
                       uint64_t(G) * model.hidden;
    model.weights = Tensor({static_cast<uint32_t>(n)});
    // Small weights keep multi-step recurrences numerically tame.
    fillGaussian(model.weights, rng,
                 std::sqrt(1.0f / float(model.hidden)));
    model.fcW = Tensor({model.hidden});
    fillGaussian(model.fcW, rng, std::sqrt(1.0f / float(model.hidden)));
    model.fcB = Tensor({1});
    fillConst(model.fcB, 0.01f);
}

int
quantizeConvWeights(Network &net)
{
    int count = 0;
    for (Layer &l : net.layers()) {
        if (l.kind != LayerKind::Conv || l.weights.size() == 0)
            continue;
        float maxAbs = 0.0f;
        for (uint64_t i = 0; i < l.weights.size(); i++)
            maxAbs = std::max(maxAbs, std::fabs(l.weights[i]));
        if (maxAbs == 0.0f)
            continue;
        l.weightScale = maxAbs / 32767.0f;
        l.weightsQ = Tensor(l.weights.shape());
        for (uint64_t i = 0; i < l.weights.size(); i++) {
            const float q =
                std::round(l.weights[i] / l.weightScale);
            l.weightsQ[i] = q;
            l.weights[i] = q * l.weightScale;   // dequantized reference
        }
        l.quantWeights = true;
        count++;
    }
    return count;
}

int
saveWeightFiles(const Network &net, const std::string &dir)
{
    std::filesystem::create_directories(dir);
    int count = 0;
    for (const Layer &l : net.layers()) {
        auto tensors = paramTensors(const_cast<Layer &>(l));
        if (tensors.empty())
            continue;
        const std::string path = dir + "/" + net.name + "." + l.name + ".w";
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (!f)
            fatal("cannot write weight file %s", path.c_str());
        for (Tensor *t : tensors) {
            if (!writeTensor(f, *t))
                fatal("short write to %s", path.c_str());
        }
        std::fclose(f);
        count++;
    }
    return count;
}

int
loadWeightFiles(Network &net, const std::string &dir)
{
    int count = 0;
    for (Layer &l : net.layers()) {
        // Freshly built networks carry no parameter storage yet; size the
        // tensors from the layer structure before reading into them.
        if (paramTensors(l).empty())
            shapeLayer(l);
        auto tensors = paramTensors(l);
        if (tensors.empty())
            continue;
        const std::string path = dir + "/" + net.name + "." + l.name + ".w";
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            fatal("cannot open weight file %s", path.c_str());
        for (Tensor *t : tensors) {
            if (!readTensor(f, *t))
                fatal("corrupt weight file %s", path.c_str());
        }
        std::fclose(f);
        count++;
    }
    return count;
}

void
initWeights(AnyModel &model)
{
    if (model.isRnn())
        initWeights(model.rnn());
    else
        initWeights(model.cnn());
}

} // namespace tango::nn
