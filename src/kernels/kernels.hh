/**
 * @file
 * Layer kernels of the Tango suite, written in the builder DSL.
 *
 * Each descriptor names a layer computation plus its *mapping* — how
 * neurons are assigned to the CUDA-style grid/block geometry.  The
 * mappings reproduce the paper's Table III: CifarNet runs whole layers in
 * a single (32,32) block looping over filters in-thread; AlexNet uses one
 * block per filter with output tiles split across multiple kernels;
 * ResNet blocks stride over the output plane; VGG tiles the plane over
 * grid (x, y) with filters on grid z; fully-connected layers use one
 * thread per output neuron (AlexNet: one *block* per neuron).
 *
 * Every build function returns a validated Program; every makeLaunch
 * function pairs it with geometry, pointer parameters and the constant
 * bank (layer dimensions live in constant memory, as in the original
 * kernels — hence the cmem columns of Table III).
 */

#ifndef TANGO_KERNELS_KERNELS_HH
#define TANGO_KERNELS_KERNELS_HH

#include <memory>
#include <string>

#include "sim/program.hh"

namespace tango::kern {

using sim::Dim3;
using sim::KernelLaunch;
using sim::Program;

/** How a kernel finds its output-filter / channel index. */
enum class ChannelSrc : uint8_t {
    GridX,   ///< k = ctaid.x (+ base)            — AlexNet, ResNet
    GridZ,   ///< k = ctaid.z                     — VGGNet
    Loop     ///< in-thread loop over all filters — CifarNet, SqueezeNet
};

/** How threads map onto the output plane. */
enum class PixelMap : uint8_t {
    TileOrigin,  ///< (x, y) = (tileX + tid.x, tileY + tid.y)  — AlexNet
    FromGridXY,  ///< (x, y) = ctaid.{x,y} * ntid + tid        — VGGNet
    RowBlock,    ///< y = ctaid.x, x = tid.x                   — SqueezeNet
    StrideLoop   ///< block tile strides over the whole plane  — ResNet
};

/** 2-D convolution (+ optional bias and fused ReLU). */
struct ConvDesc
{
    std::string name = "conv";
    // Layer shape.
    uint32_t C = 1, H = 1, W = 1;   ///< input channels / height / width
    uint32_t K = 1, R = 1, S = 1;   ///< filters / kernel height / width
    uint32_t stride = 1, pad = 0;
    uint32_t P = 0, Q = 0;          ///< output dims (0 = derive)
    bool relu = false;
    bool bias = true;
    /** Quantization extension: weights stored as s16 (Q15) and
     *  dequantized in-kernel by a per-layer scale from constant memory. */
    bool quantWeights = false;

    // Mapping.
    ChannelSrc filterSrc = ChannelSrc::GridX;
    PixelMap pixelMap = PixelMap::TileOrigin;
    uint32_t filterBase = 0;        ///< first filter (partitioned launches)
    uint32_t tileX = 0, tileY = 0;  ///< output-tile origin
    Dim3 grid{1, 1, 1}, block{1, 1, 1};

    /** Fill P/Q when left zero. */
    void derive();
};

std::shared_ptr<Program> buildConv(const ConvDesc &d);
/** @param weight_scale Q15 dequantization scale (quantWeights only). */
KernelLaunch makeConvLaunch(const ConvDesc &d, uint32_t in, uint32_t weights,
                            uint32_t bias, uint32_t out,
                            float weight_scale = 0.0f);

/** Depthwise convolution (MobileNet extension): per-channel RxS filter,
 *  no cross-channel reduction. */
struct DepthwiseDesc
{
    std::string name = "dwconv";
    uint32_t C = 1, H = 1, W = 1;   ///< channels / height / width
    uint32_t R = 3, S = 3;          ///< filter size
    uint32_t stride = 1, pad = 1;
    uint32_t P = 0, Q = 0;
    bool relu = false;
    bool bias = true;
    Dim3 grid{1, 1, 1}, block{16, 16, 1};

    void derive();
};

std::shared_ptr<Program> buildDepthwise(const DepthwiseDesc &d);
KernelLaunch makeDepthwiseLaunch(const DepthwiseDesc &d, uint32_t in,
                                 uint32_t weights, uint32_t bias,
                                 uint32_t out);

/** Max/average pooling (also global average pooling). */
struct PoolDesc
{
    std::string name = "pool";
    uint32_t C = 1, H = 1, W = 1;
    uint32_t win = 2, stride = 2, pad = 0;
    uint32_t P = 0, Q = 0;
    bool avg = false;               ///< average instead of max
    bool globalAvg = false;         ///< one thread per channel, whole plane
    ChannelSrc channelSrc = ChannelSrc::GridX;
    PixelMap pixelMap = PixelMap::TileOrigin;
    uint32_t tileX = 0, tileY = 0;
    Dim3 grid{1, 1, 1}, block{1, 1, 1};

    void derive();
};

std::shared_ptr<Program> buildPool(const PoolDesc &d);
KernelLaunch makePoolLaunch(const PoolDesc &d, uint32_t in, uint32_t out);

/** Fully-connected (inner-product) layer. */
struct FcDesc
{
    std::string name = "fc";
    uint32_t inN = 1, outN = 1;
    bool relu = false;
    bool bias = true;
    Dim3 grid{1, 1, 1}, block{1, 1, 1};
};

std::shared_ptr<Program> buildFc(const FcDesc &d);
KernelLaunch makeFcLaunch(const FcDesc &d, uint32_t in, uint32_t weights,
                          uint32_t bias, uint32_t out);

/** Element-wise / per-channel map kernels. */
enum class MapKind : uint8_t {
    Relu,       ///< out = max(0, a)
    Scale,      ///< out = a * gamma[c] + beta[c]
    BatchNorm,  ///< out = (a - mean[c]) * rsqrt(var[c] + eps)
    Eltwise     ///< out = a + b (+ optional fused ReLU)
};

struct MapDesc
{
    std::string name = "map";
    MapKind kind = MapKind::Relu;
    uint32_t C = 1, H = 1, W = 1;
    bool relu = false;              ///< fused ReLU (Eltwise/Scale)
    float eps = 1e-5f;              ///< BatchNorm epsilon
    ChannelSrc channelSrc = ChannelSrc::GridX;
    PixelMap pixelMap = PixelMap::StrideLoop;
    Dim3 grid{1, 1, 1}, block{1, 1, 1};
};

std::shared_ptr<Program> buildMap(const MapDesc &d);
/** @param b second input (Eltwise) or per-channel params, see impl. */
KernelLaunch makeMapLaunch(const MapDesc &d, uint32_t a, uint32_t b,
                           uint32_t c, uint32_t out);

/** Softmax over a vector (single CTA, shared-memory reduction). */
struct SoftmaxDesc
{
    std::string name = "softmax";
    uint32_t n = 1;                 ///< vector length
    uint32_t threads = 32;          ///< CTA width
};

std::shared_ptr<Program> buildSoftmax(const SoftmaxDesc &d);
KernelLaunch makeSoftmaxLaunch(const SoftmaxDesc &d, uint32_t in,
                               uint32_t out);

/** Local response normalization (AlexNet's Norm layers). */
struct LrnDesc
{
    std::string name = "norm";
    uint32_t C = 1, H = 1, W = 1;
    uint32_t localSize = 5;
    float alpha = 1e-4f, beta = 0.75f, k = 2.0f;
    uint32_t tileX = 0, tileY = 0;  ///< plane tile origin (AlexNet split)
    Dim3 grid{1, 1, 1}, block{1, 1, 1};
};

std::shared_ptr<Program> buildLrn(const LrnDesc &d);
KernelLaunch makeLrnLaunch(const LrnDesc &d, uint32_t in, uint32_t out);

/** Recurrent cells: one kernel per time step, one thread per hidden unit.
 *
 * Weight layout (f32):
 *   W[g][hidden][input], U[g][hidden][hidden], b[g][hidden]
 * with g = 2 gates + candidate for GRU (order: update z, reset r, cand n)
 * and 4 gates for LSTM (order: input i, forget f, cell g, output o).
 */
struct RnnCellDesc
{
    std::string name = "rnn";
    bool lstm = false;              ///< LSTM (4 gates) vs GRU (3 matrices)
    uint32_t inputSize = 1;
    uint32_t hidden = 100;
    Dim3 grid{1, 1, 1}, block{1, 1, 1};
};

std::shared_ptr<Program> buildRnnCell(const RnnCellDesc &d);
/**
 * @param x input vector  @param h previous hidden state
 * @param c previous cell state (LSTM; ignored for GRU)
 * @param w packed weights  @param hOut next hidden  @param cOut next cell
 */
KernelLaunch makeRnnCellLaunch(const RnnCellDesc &d, uint32_t x, uint32_t h,
                               uint32_t c, uint32_t w, uint32_t hOut,
                               uint32_t cOut);

/** @return bytes of packed weights for an RNN cell. */
uint64_t rnnWeightBytes(const RnnCellDesc &d);

/**
 * Dense readout for the RNN models: out[0] = b + w . h, computed as a
 * parallel reduction (one thread per hidden unit, shared-memory partials)
 * so the prediction head is not a serial latency chain.
 */
struct RnnReadoutDesc
{
    std::string name = "rnn.fc";
    uint32_t hidden = 100;
};

std::shared_ptr<Program> buildRnnReadout(const RnnReadoutDesc &d);
KernelLaunch makeRnnReadoutLaunch(const RnnReadoutDesc &d, uint32_t h,
                                  uint32_t w, uint32_t bias, uint32_t out);

} // namespace tango::kern

#endif // TANGO_KERNELS_KERNELS_HH
