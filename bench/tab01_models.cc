/**
 * @file
 * Table I reproduction: per-network input data, model provenance and
 * output, plus the structural statistics (layers, parameters, MACs) of
 * the synthetic pre-trained models this reproduction ships.
 */

#include "bench_util.hh"

#include "nn/weights.hh"

namespace {

using namespace tango;

void
printTable()
{
    Table t("Table I: inputs, pre-trained models and outputs");
    t.header({"network", "input data", "pre-trained model", "output",
              "layers", "params(M)", "MACs(M)"});

    auto rnnRow = [&](const nn::RnnModel &m) {
        nn::RnnModel copy = m;
        nn::initWeights(copy);
        const double params =
            double(copy.weights.size() + copy.fcW.size() + copy.fcB.size());
        t.row({m.name,
               "bitcoin prices of past two days (scaled, synthetic walk)",
               "synthetic He-init (paper: kaggle bitcoin predictor)",
               "projected next price", std::to_string(m.seqLen) + " steps",
               Table::num(params / 1e6, 3), Table::num(params / 1e6, 3)});
    };
    rnnRow(nn::models::buildGru(2));   // the paper's Table I unroll
    rnnRow(nn::models::buildLstm(2));

    const struct
    {
        const char *name;
        const char *input;
        const char *model;
        const char *output;
    } cnns[] = {
        {"cifarnet", "speed-limit-35 image (synthetic 3x32x32)",
         "synthetic He-init (paper: traffic-signal CifarNet)",
         "confidence for all 9 classes"},
        {"alexnet", "cat image (synthetic 3x227x227)",
         "synthetic He-init (paper: BVLC AlexNet)", "recognized class id"},
        {"squeezenet", "cat image (synthetic 3x227x227)",
         "synthetic He-init (paper: SqueezeNet v1.0)",
         "recognized class id"},
        {"resnet", "cat image (synthetic 3x224x224)",
         "synthetic He-init (paper: MSRA ResNet-50)",
         "recognized class id"},
        {"vggnet", "killer-whale image (synthetic 3x224x224)",
         "synthetic He-init (paper: VGG-16)", "recognized class id"},
    };
    for (const auto &c : cnns) {
        nn::Network net = nn::models::buildCnn(c.name);
        // Structural statistics need the parameter tensors.
        nn::initWeights(net);
        t.row({c.name, c.input, c.model, c.output,
               std::to_string(net.layers().size()),
               Table::num(double(net.totalParams()) / 1e6, 1),
               Table::num(double(net.totalMacs()) / 1e6, 0)});
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    tango::setVerbose(false);
    printTable();
    tango::bench::registerSimSpeed();
    return tango::bench::runHarness(argc, argv);
}
