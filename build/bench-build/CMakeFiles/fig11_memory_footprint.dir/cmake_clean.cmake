file(REMOVE_RECURSE
  "../bench/fig11_memory_footprint"
  "../bench/fig11_memory_footprint.pdb"
  "CMakeFiles/fig11_memory_footprint.dir/fig11_memory_footprint.cc.o"
  "CMakeFiles/fig11_memory_footprint.dir/fig11_memory_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
