/**
 * @file
 * Fig 7 reproduction: breakdown of issue-stall cycles per layer type of
 * each network, measured on the GK210 (server) configuration as in the
 * paper, using the nvprof stall taxonomy.
 *
 * Paper shapes to hold: fully-connected layers suffer the most memory
 * throttling; convolution/normalization layers see more pipe-busy
 * stalls; pooling layers stall on data (exec) dependencies; GRU patterns
 * resemble convolutions while LSTM shows more data dependency than GRU.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

/** Figure layer types per network, in the paper's column order. */
const std::vector<std::pair<std::string, std::vector<std::string>>> cols = {
    {"gru", {"GRU"}},
    {"lstm", {"LSTM"}},
    {"cifarnet", {"Conv", "Pooling", "FC"}},
    {"alexnet", {"Conv", "Pooling", "FC", "Norm"}},
    {"squeezenet", {"Conv", "Pooling", "Fire"}},
    {"resnet", {"Conv", "Pooling", "FC", "Norm", "Others"}},
    {"vggnet", {"Conv", "Pooling", "FC"}},
};

StatSet
figTypeStats(const rt::NetRun &run, const std::string &fig)
{
    StatSet out;
    for (const auto &l : run.layers) {
        std::string f = l.figType;
        if (f == "Fire_Squeeze" || f == "Fire_Expand")
            f = "Fire";
        if (fig == "Others" &&
            (f == "Scale" || f == "Relu" || f == "Eltwise" ||
             f == "Others")) {
            f = "Others";
        }
        if (f != fig)
            continue;
        for (const auto &k : l.kernels)
            out.merge(k.stats);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &[net, figs] : cols) {
        bench::RunKey key{net};
        key.platform = "GK210";
        key.l1dBytes = sim::keplerGK210().l1dBytes;
        key.policy = "stall";   // near-hardware warp residency
        keys.push_back(key);
    }
    bench::prefetch(keys);

    std::vector<std::string> groups;
    std::vector<std::vector<double>> values;
    std::vector<std::string> stallNames;
    for (size_t i = 0; i < sim::numStalls; i++)
        stallNames.push_back(sim::stallName(static_cast<sim::Stall>(i)));

    for (const auto &[net, figs] : cols) {
        bench::RunKey key{net};
        key.platform = "GK210";
        key.l1dBytes = sim::keplerGK210().l1dBytes;
        key.policy = "stall";   // near-hardware warp residency
        const rt::NetRun &run = bench::netRun(key);
        for (const auto &fig : figs) {
            const StatSet st = figTypeStats(run, fig);
            const prof::Series sb = prof::stallBreakdown(st);
            if (sb.empty())
                continue;
            groups.push_back(net + ":" + fig);
            std::vector<double> col;
            for (const auto &[name, frac] : sb)
                col.push_back(frac);
            values.push_back(col);
        }
    }

    rt::printStacked(std::cout,
                     "Fig 7: breakdown of stall cycles per layer type "
                     "(GK210)",
                     groups, stallNames, values, /*as_percent=*/true);

    // Headline shape checks the paper calls out.
    auto frac = [&](const std::string &group, sim::Stall s) -> double {
        for (size_t g = 0; g < groups.size(); g++) {
            if (groups[g] == group)
                return values[g][static_cast<size_t>(s)];
        }
        return 0.0;
    };
    Table obs("Fig 7 headline patterns");
    obs.header({"pattern", "value"});
    obs.row({"alexnet FC memory_throttle+mem_dep",
             Table::pct(frac("alexnet:FC", sim::Stall::MemoryThrottle) +
                        frac("alexnet:FC", sim::Stall::MemoryDependency))});
    obs.row({"alexnet Conv pipe_busy",
             Table::pct(frac("alexnet:Conv", sim::Stall::PipeBusy))});
    obs.row({"alexnet Pooling exec_dependency",
             Table::pct(frac("alexnet:Pooling",
                             sim::Stall::ExecDependency))});
    obs.row({"lstm exec+mem dependency",
             Table::pct(frac("lstm:LSTM", sim::Stall::ExecDependency) +
                        frac("lstm:LSTM", sim::Stall::MemoryDependency))});
    obs.print(std::cout);

    bench::registerValue("fig07/alexnet_fc_memstall", "frac",
                         frac("alexnet:FC", sim::Stall::MemoryThrottle) +
                             frac("alexnet:FC",
                                  sim::Stall::MemoryDependency));
    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
