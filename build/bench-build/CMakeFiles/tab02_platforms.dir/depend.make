# Empty dependencies file for tab02_platforms.
# This may be replaced when dependencies are built.
