/**
 * @file
 * A feed-forward network: a small DAG of layers with a CPU reference
 * executor.  The reference executor is the functional ground truth the
 * simulator-executed kernels are tested against.
 */

#ifndef TANGO_NN_NETWORK_HH
#define TANGO_NN_NETWORK_HH

#include <string>
#include <variant>
#include <vector>

#include "nn/layer.hh"

namespace tango::nn {

/** A network: named layer DAG plus input geometry. */
class Network
{
  public:
    std::string name;
    uint32_t inC = 0, inH = 0, inW = 0;   ///< input shape (C,H,W)

    /** Append a layer; @return its index. */
    int add(Layer l);

    const std::vector<Layer> &layers() const { return layers_; }
    std::vector<Layer> &layers() { return layers_; }

    /** Run the CPU reference over all layers.
     *  @return every layer's output (indexed like layers()). */
    std::vector<Tensor> forwardAll(const Tensor &input) const;

    /** Run the CPU reference and return only the final output. */
    Tensor forward(const Tensor &input) const;

    /** @return total multiply-accumulates of one inference. */
    uint64_t totalMacs() const;

    /** @return total parameter elements. */
    uint64_t totalParams() const;

  private:
    std::vector<Layer> layers_;
};

/** Evaluate one layer on the CPU reference.
 *  @param ins producer outputs, matching layer.inputs order. */
Tensor referenceForward(const Layer &layer,
                        const std::vector<const Tensor *> &ins);

/** Recurrent model (GRU / LSTM + a dense readout), matching the paper's
 *  bitcoin price predictor: two time steps of a scalar price. */
struct RnnModel
{
    std::string name;
    bool lstm = false;
    uint32_t inputSize = 1;
    uint32_t hidden = 100;
    uint32_t seqLen = 2;
    Tensor weights;        ///< packed gate weights (see kernels/rnn.cc)
    Tensor fcW, fcB;       ///< readout: hidden -> 1

    /** CPU reference: run the sequence, @return the predicted value. */
    float forward(const std::vector<float> &sequence) const;

    /** One reference cell step: h (and c for LSTM) updated in place. */
    void step(const std::vector<float> &x, std::vector<float> &h,
              std::vector<float> &c) const;
};

/**
 * A model of either kind — feed-forward Network or recurrent RnnModel —
 * behind one type, so code that runs models (rt::Runtime::run, the
 * rt::Engine job queue) does not fork on the model kind.
 *
 * Holds the model by value; pass builders' results straight in
 * (AnyModel(models::buildCnn("alexnet"))) so the model is moved, never
 * copied — initialized weights can be hundreds of megabytes.
 */
class AnyModel
{
  public:
    AnyModel(Network net) : m_(std::move(net)) {}
    AnyModel(RnnModel model) : m_(std::move(model)) {}

    /** @return whether this is a recurrent model. */
    bool isRnn() const { return std::holds_alternative<RnnModel>(m_); }

    /** @return the model's name, whichever kind it is. */
    const std::string &name() const;

    /** @return the feed-forward network; panics if isRnn(). */
    const Network &cnn() const;
    Network &cnn();

    /** @return the recurrent model; panics unless isRnn(). */
    const RnnModel &rnn() const;
    RnnModel &rnn();

  private:
    std::variant<Network, RnnModel> m_;
};

} // namespace tango::nn

#endif // TANGO_NN_NETWORK_HH
