/**
 * @file
 * Table III reproduction: per-kernel launch configuration and SRAM usage
 * — gridDim, blockDim, registers per thread, static shared memory and
 * constant memory — for every kernel of every network.
 */

#include "bench_util.hh"

#include "runtime/lowering.hh"

namespace {

using namespace tango;

std::string
dimStr(const sim::Dim3 &d)
{
    return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," +
           std::to_string(d.z) + ")";
}

void
printNet(const std::string &name)
{
    sim::Gpu gpu(sim::pascalGP102());
    Table t("Table III (" + name + "): kernel configuration and SRAM usage");
    t.header({"kernel", "gridDim", "blockDim", "regs", "smem", "cmem"});

    auto addKernels = [&](const std::vector<rt::LoweredKernel> &kernels) {
        for (const auto &k : kernels) {
            const auto &p = *k.launch.program;
            t.row({p.name, dimStr(k.launch.grid), dimStr(k.launch.block),
                   std::to_string(p.numRegs), std::to_string(p.smemBytes),
                   std::to_string(p.cmemBytes)});
        }
    };

    if (name == "gru" || name == "lstm") {
        nn::RnnModel m = name == "gru" ? nn::models::buildGru(2)
                                       : nn::models::buildLstm(2);
        auto low = rt::lowerRnn(m, gpu.mem(), false);
        addKernels(low.kernels);
    } else {
        nn::Network net = nn::models::buildCnn(name);
        auto low = rt::lower(net, gpu.mem(), false);
        addKernels(low.kernels);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    tango::setVerbose(false);
    for (const auto &name : nn::models::allNames())
        printNet(name);
    tango::bench::registerSimSpeed();
    return tango::bench::runHarness(argc, argv);
}
