/**
 * @file
 * Synthetic pre-trained weights and per-layer weight files.
 *
 * The paper ships pre-trained Caffe-zoo model files split into per-layer
 * weight files.  Those learned values are not available here (and the
 * architectural statistics do not depend on them), so the weight store
 * generates deterministic He-initialized weights — the same bits on every
 * platform and every run — and can round-trip them through per-layer
 * binary weight files exactly like the original suite.
 */

#ifndef TANGO_NN_WEIGHTS_HH
#define TANGO_NN_WEIGHTS_HH

#include <string>

#include "nn/network.hh"

namespace tango::nn {

/** Fill every parameter tensor of @p net deterministically.
 *  The stream is keyed on (net.name, layer.name), so adding a layer never
 *  changes any other layer's weights. */
void initWeights(Network &net);

/** Fill an RNN model's parameters deterministically. */
void initWeights(RnnModel &model);

/** Fill either kind of model deterministically. */
void initWeights(AnyModel &model);

/** Quantization extension: convert every convolution layer's weights to
 *  s16 Q-format (per-layer max-abs scale).  The layer's float weights are
 *  replaced by their dequantized values, so the CPU reference and the
 *  quantized kernels agree exactly.
 *  @return number of layers quantized. */
int quantizeConvWeights(Network &net);

/** Write one binary weight file per layer into @p dir (created if needed).
 *  @return number of files written. */
int saveWeightFiles(const Network &net, const std::string &dir);

/** Load per-layer weight files written by saveWeightFiles.
 *  @return number of files loaded; fatal() on shape mismatch. */
int loadWeightFiles(Network &net, const std::string &dir);

} // namespace tango::nn

#endif // TANGO_NN_WEIGHTS_HH
