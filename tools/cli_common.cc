#include "cli_common.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "nn/models/models.hh"
#include "runtime/runtime.hh"

namespace tango::tools {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

uint64_t
parseUint(const char *flag, const std::string &v)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (!end || *end != '\0' || v.empty())
        fatal("%s expects a non-negative integer, got '%s'", flag,
              v.c_str());
    return n;
}

bool
isPolicyName(const std::string &name)
{
    if (name == "fig")
        return true;
    const auto known = rt::RunPolicy::names();
    return std::find(known.begin(), known.end(), name) != known.end();
}

std::string
canonicalPolicy(const std::string &name)
{
    return name == "fig" ? "bench" : name;
}

void
validatePlatform(const std::string &platform)
{
    if (platform != "GP102" && platform != "GK210" && platform != "TX1")
        fatal("unknown --platform '%s' (known: GP102, GK210, TX1)",
              platform.c_str());
}

NetSelection
parseNetArgs(const std::vector<std::string> &positional,
             const std::string &default_policy)
{
    NetSelection sel;
    sel.policy = default_policy;

    size_t first = 0;
    if (!positional.empty() && isPolicyName(lower(positional[0]))) {
        sel.policy = canonicalPolicy(lower(positional[0]));
        first = 1;
    }

    const auto known = nn::models::runnableNames();
    for (size_t i = first; i < positional.size(); i++) {
        const std::string net = lower(positional[i]);
        if (std::find(known.begin(), known.end(), net) == known.end()) {
            fatal("unknown network '%s' (known: %s)", positional[i].c_str(),
                  knownNetworksLine().c_str());
        }
        sel.nets.push_back(net);
    }
    if (sel.nets.empty())
        fatal("no network given");
    return sel;
}

std::string
knownNetworksLine()
{
    std::string out;
    for (const auto &n : nn::models::runnableNames())
        out += (out.empty() ? "" : ", ") + n;
    return out;
}

rt::JobSpec
makeJobSpec(const std::string &net, const JobSpecArgs &args)
{
    rt::JobSpec spec;
    spec.net = net;
    spec.policy = args.policy;
    spec.platform = args.platform;
    spec.seqLen = args.seqLen;
    std::string tier = args.tier;
    if (tier.empty()) {
        const char *env = std::getenv("TANGO_TIER");
        tier = env && *env ? lower(env) : "sim";
    }
    if (!rt::tierFromName(tier, spec.tier))
        fatal("unknown tier '%s' (known: sim, replay, estimate)",
              tier.c_str());
    spec.functional = args.functional;
    spec.profile = args.profile;
    spec.trace = args.trace;
    const std::string why = spec.validate();
    if (!why.empty())
        fatal("%s", why.c_str());
    return spec;
}

} // namespace tango::tools
