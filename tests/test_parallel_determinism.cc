/**
 * @file
 * Parallel-determinism tier (ctest label `parallel`): intra-run CTA
 * sharding (SimPolicy::shards, sim/shard.hh) must be DETERMINISTIC, not
 * merely race-free.  For every network in the suite, a K=2 and a K=4
 * sharded run — with per-PC profiling on, so the reduction of the
 * profile arrays is exercised too — must be bit-identical
 *
 *   (a) across repeated executions in one process (each on a fresh Gpu,
 *       so launch memoization arms the same way and the
 *       mem.*_launches counters must agree exactly, not just the
 *       simulated statistics), and
 *   (b) to a pinned fixture (tests/golden/parallel_k<K>.json) carrying
 *       an FNV-1a digest of the full serialized NetRun — per-PC
 *       profiles included — plus human-readable headline numbers.
 *
 * The fixtures are the K>1 counterpart of the K=1 golden corpus: K>1
 * statistics may differ from K=1 by design (each shard simulates on a
 * private core with cold private L2/DRAM state), and these fixtures pin
 * that documented delta so it can only change deliberately:
 *
 *     TANGO_UPDATE_GOLDEN=1 ctest -L parallel
 *
 * The tier runs under the tsan preset as well (CMakePresets.json filter
 * includes `parallel`), where the shard worker threads are checked for
 * data races while the bit-identity assertions run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "runtime/run_cache.hh"
#include "runtime/runtime.hh"
#include "sim/digest.hh"
#include "sim/gpu.hh"
#include "sim/profile.hh"

#ifndef TANGO_GOLDEN_DIR
#error "TANGO_GOLDEN_DIR must point at tests/golden"
#endif

namespace tango {
namespace {

using rt::NetRun;

const std::vector<std::string> kNets = {"cifarnet", "alexnet",
                                        "squeezenet", "resnet",
                                        "vggnet", "gru", "lstm"};

/** One full-suite network under the bench policy, profiled, split into
 *  @p k shards.  A fresh Gpu per call: repeated executions start from
 *  the same cold state, so even the launch-memoization meta-counters
 *  must reproduce. */
NetRun
runSharded(const std::string &net, uint32_t k)
{
    sim::Gpu gpu(sim::pascalGP102());
    rt::RunPolicy policy = rt::RunPolicy::named("bench");
    policy.sim.profile = true;
    policy.sim.shards = k;
    return rt::runNetworkByName(gpu, net, policy);
}

/** 16-hex-char FNV-1a digest of a serialized NetRun. */
std::string
runDigest(const std::string &serialized)
{
    uint64_t h = sim::digest::kInit;
    sim::digest::mixBytes(h, serialized.data(), serialized.size());
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
updateMode()
{
    const char *env = std::getenv("TANGO_UPDATE_GOLDEN");
    return env && env[0] && std::string(env) != "0";
}

std::string
fixturePath(uint32_t k)
{
    return std::string(TANGO_GOLDEN_DIR) + "/parallel_k" +
           std::to_string(k) + ".json";
}

/** Everything the fixture pins per network. */
struct Headline
{
    std::string digest;
    double totalTimeSec = 0.0;
    double totalEnergyJ = 0.0;
    uint64_t replayed = 0;
    uint64_t simulated = 0;
};

/** The sharded reduction folds raw per-PC counters and applies the
 *  CTA/warp scale exactly once afterwards, so every profile must still
 *  sum bit-exactly to its kernel's scaled StatSet totals. */
void
expectProfilesConsistent(const NetRun &run, const std::string &net)
{
    size_t profiled = 0;
    for (const auto &layer : run.layers) {
        for (const auto &k : layer.kernels) {
            if (!k.profile)
                continue;
            profiled++;
            std::string why;
            EXPECT_TRUE(sim::profileConsistent(*k.profile, k.stats, &why))
                << net << "/" << k.name << ": " << why;
        }
    }
    EXPECT_GT(profiled, 0u) << net << ": no kernel carried a profile";
}

void
checkShardCount(uint32_t k)
{
    std::vector<Headline> headlines;
    headlines.reserve(kNets.size());

    for (const std::string &net : kNets) {
        SCOPED_TRACE(net + " k=" + std::to_string(k));
        const NetRun first = runSharded(net, k);
        const NetRun second = runSharded(net, k);

        // Bit-identity across repeated executions, profiles and memo
        // counters included: serializeNetRun round-trips doubles
        // exactly, so string equality is bit equality.
        const std::string a = rt::serializeNetRun(first);
        const std::string b = rt::serializeNetRun(second);
        EXPECT_EQ(a, b) << net << ": two identical sharded runs diverged";

        expectProfilesConsistent(first, net);

        Headline h;
        h.digest = runDigest(a);
        h.totalTimeSec = first.totalTimeSec;
        h.totalEnergyJ = first.totalEnergyJ;
        h.replayed =
            static_cast<uint64_t>(first.totals.get("mem.replayed_launches"));
        h.simulated = static_cast<uint64_t>(
            first.totals.get("mem.simulated_launches"));
        headlines.push_back(h);
    }

    const std::string path = fixturePath(k);
    if (updateMode()) {
        std::string out;
        json::ObjWriter o(out);
        o.u64("shards", k);
        for (size_t i = 0; i < kNets.size(); i++) {
            o.key(kNets[i].c_str());
            json::ObjWriter n(out);
            n.str("digest", headlines[i].digest);
            n.num("totalTimeSec", headlines[i].totalTimeSec);
            n.num("totalEnergyJ", headlines[i].totalEnergyJ);
            n.u64("replayed", headlines[i].replayed);
            n.u64("simulated", headlines[i].simulated);
            n.close();
        }
        o.close();
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << out << "\n";
        ASSERT_TRUE(f.good()) << "short write to " << path;
        std::printf("[parallel] regenerated %s\n", path.c_str());
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " — regenerate with TANGO_UPDATE_GOLDEN=1 (ctest -L parallel)";
    std::stringstream ss;
    ss << in.rdbuf();
    const json::Reader::Value v = json::Reader(ss.str()).parse();
    EXPECT_EQ(v.u64Or("shards", 0), k);

    for (size_t i = 0; i < kNets.size(); i++) {
        SCOPED_TRACE(kNets[i] + " k=" + std::to_string(k));
        const json::Reader::Value *n = v.find(kNets[i].c_str());
        ASSERT_NE(n, nullptr) << "fixture lacks " << kNets[i];
        EXPECT_EQ(n->strOr("digest"), headlines[i].digest)
            << "sharded statistics drifted from " << path
            << " (if intentional, TANGO_UPDATE_GOLDEN=1)";
        EXPECT_EQ(n->numOr("totalTimeSec"), headlines[i].totalTimeSec);
        EXPECT_EQ(n->numOr("totalEnergyJ"), headlines[i].totalEnergyJ);
        EXPECT_EQ(n->u64Or("replayed", ~0ull), headlines[i].replayed);
        EXPECT_EQ(n->u64Or("simulated", ~0ull), headlines[i].simulated);
    }
}

TEST(ParallelDeterminism, K2BitIdenticalAndPinned) { checkShardCount(2); }
TEST(ParallelDeterminism, K4BitIdenticalAndPinned) { checkShardCount(4); }

/** The delta policy in one assertion: sharding may change statistics
 *  only above K=1, and only for launches that actually split.  A
 *  multi-CTA CNN diverges from the sequential run at K=2; the GRU's
 *  single-CTA cell launches can never split, so its K=4 run stays
 *  bit-identical to K=1. */
TEST(ParallelDeterminism, ShardingChangesStatsOnlyWhenLaunchesSplit)
{
    const std::string alex1 = rt::serializeNetRun(runSharded("alexnet", 1));
    const std::string alex2 = rt::serializeNetRun(runSharded("alexnet", 2));
    EXPECT_NE(alex1, alex2)
        << "alexnet K=2 should exercise the sharded path (private "
           "per-shard L2/DRAM make its stats differ from K=1)";

    const std::string gru1 = rt::serializeNetRun(runSharded("gru", 1));
    const std::string gru4 = rt::serializeNetRun(runSharded("gru", 4));
    EXPECT_EQ(gru1, gru4)
        << "gru's single-CTA launches must fall back to the exact "
           "sequential path at any K";
}

} // namespace
} // namespace tango
