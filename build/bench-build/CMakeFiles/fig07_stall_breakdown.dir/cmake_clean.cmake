file(REMOVE_RECURSE
  "../bench/fig07_stall_breakdown"
  "../bench/fig07_stall_breakdown.pdb"
  "CMakeFiles/fig07_stall_breakdown.dir/fig07_stall_breakdown.cc.o"
  "CMakeFiles/fig07_stall_breakdown.dir/fig07_stall_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stall_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
