#include "kernels/kernels.hh"

#include "common/logging.hh"
#include "kernels/builder.hh"
#include "kernels/emit_util.hh"

namespace tango::kern {

namespace {

constexpr float log2e = 1.4426950408889634f;

} // namespace

std::shared_ptr<Program>
buildLrn(const LrnDesc &d)
{
    // Across-channel local response normalization (AlexNet):
    //   out[c,y,x] = in[c,y,x] / (k + alpha/n * sum_j in[j,y,x]^2)^beta
    // with j in the window of `localSize` channels centred on c.
    Builder b(d.name);
    auto mSetup = b.mark("lrn.setup");
    b.constant(12);    // C H W

    Reg pIn = b.param(0);
    Reg pOut = b.param(1);

    Reg rC = b.ldc(DType::U32, 0);
    Reg rH = b.ldc(DType::U32, 4);
    Reg rWd = b.ldc(DType::U32, 8);

    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);
    Reg k = b.movS(SReg::CtaIdX);

    Reg x = tx, y = ty;
    if (d.tileX) {
        x = b.reg();
        b.emit3i(Op::Add, DType::U32, x, tx, d.tileX);
    }
    if (d.tileY) {
        y = b.reg();
        b.emit3i(Op::Add, DType::U32, y, ty, d.tileY);
    }

    Reg sum = b.reg(), tV = b.reg(), tOff = b.reg(), tAddr = b.reg();
    Reg tJc = b.reg(), tF1 = b.reg(), tF2 = b.reg(), j = b.reg();
    Reg pix = b.reg();
    PredReg pLd = b.pred();
    PredReg pSt = b.pred();

    // pix = y*W + x (plane offset shared by every channel access).
    b.emit3(Op::Mul, DType::U32, pix, y, rWd);
    b.emit3(Op::Add, DType::U32, pix, pix, x);

    b.movF(sum, 0.0f);
    const uint32_t half = d.localSize / 2;
    // The window is a small build constant: fully unrolled.  The whole
    // unrolled window is the `sum += in[jc]^2` statement.
    auto mWin = b.mark("lrn.window");
    for (uint32_t j = 0; j < d.localSize; j++) {
        // jc = k - half + j; valid iff jc < C (unsigned wrap covers < 0)
        b.emit3i(Op::Add, DType::U32, tJc, k,
                 static_cast<uint32_t>(static_cast<int32_t>(j) -
                                       static_cast<int32_t>(half)));
        b.setr(DType::U16, Cmp::Lt, tF1, tJc, rC);
        b.setpi(pLd, DType::U16, Cmp::Ne, tF1, 0);
        b.emit3(Op::Mul, DType::U32, tOff, tJc, rH);
        b.mad(DType::U32, tOff, tOff, rWd, pix);
        b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
        b.movF(tV, 0.0f);
        b.guard(pLd);
        b.ld(DType::F32, Space::Global, tV, tAddr);
        b.endGuard();
        b.mad(DType::F32, sum, tV, tV, sum);
    }

    {
        // scale = k_const + (alpha/n) * sum;  denom = scale^beta
        auto m = b.mark("lrn.scale");
        b.emit3f(Op::Mul, sum, sum, d.alpha / float(d.localSize));
        b.emit3f(Op::Add, sum, sum, d.k);
        // scale^beta = 2^(beta * log2(scale))
        b.emit2(Op::Lg2, DType::F32, sum, sum);
        b.emit3f(Op::Mul, sum, sum, d.beta);
        b.emit2(Op::Ex2, DType::F32, sum, sum);
        b.emit2(Op::Rcp, DType::F32, sum, sum);
    }

    {
        // out[k,y,x] = in[k,y,x] * 1/denom   (guarded for partial tiles)
        auto m = b.mark("lrn.store");
        b.setr(DType::U16, Cmp::Lt, tF1, x, rWd);
        b.setr(DType::U16, Cmp::Lt, tF2, y, rH);
        b.emit3(Op::And, DType::U16, tF1, tF1, tF2);
        b.setpi(pSt, DType::U16, Cmp::Ne, tF1, 0);
        b.emit3(Op::Mul, DType::U32, tOff, k, rH);
        b.mad(DType::U32, tOff, tOff, rWd, pix);
        b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
        b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
        b.movF(tV, 0.0f);
        b.guard(pSt);
        b.ld(DType::F32, Space::Global, tV, tAddr);
        b.endGuard();
        b.emit3(Op::Mul, DType::F32, tV, tV, sum);
        b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
        b.guard(pSt);
        b.st(DType::F32, Space::Global, tAddr, tV);
        b.endGuard();
    }

    (void)log2e;
    return b.finish();
}

KernelLaunch
makeLrnLaunch(const LrnDesc &d, uint32_t in, uint32_t out)
{
    KernelLaunch l;
    l.program = buildLrn(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {in, out};
    l.constData = detail::packConst({d.C, d.H, d.W});
    return l;
}

} // namespace tango::kern
