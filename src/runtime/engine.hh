/**
 * @file
 * tango::rt::Engine — the parallel simulation engine.
 *
 * The paper's evaluation is ~40 independent (network x platform x L1D x
 * scheduler) simulation points; each one is a pure function of its
 * configuration.  The Engine turns those points into jobs, shards them
 * across a worker thread pool — one private sim::Gpu per worker, so the
 * single-threaded Gpu/Core/Cache/Power stack needs no locking — and
 * memoizes the resulting NetRun in a process-wide keyed cache with an
 * optional on-disk JSON spill (run_cache.hh).
 *
 * Determinism: a job derives every random bit from fixed seeds (weights
 * and inputs are seeded per tensor; the simulator itself is
 * deterministic), so results are bit-identical regardless of worker
 * count or completion order.  test_engine.cc asserts this.
 */

#ifndef TANGO_RUNTIME_ENGINE_HH
#define TANGO_RUNTIME_ENGINE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "runtime/job.hh"
#include "runtime/runtime.hh"
#include "sim/config.hh"

namespace tango::sim {
class Gpu;
}

namespace tango::rt {

/**
 * One standard simulation point: which network, on which platform,
 * with which L1D size, warp scheduler, and named RunPolicy.
 * This is the Engine's cache key for named-network jobs.
 */
struct RunKey
{
    std::string net;
    std::string platform = "GP102";    // GP102 | GK210 | TX1
    uint32_t l1dBytes = 64 * 1024;     // 0 = bypassed
    sim::SchedPolicy sched = sim::SchedPolicy::GTO;
    std::string policy = "bench";      // RunPolicy::named() name

    /** Human-readable (and disk-cache) form, e.g.
     *  "alexnet/GP102/l1=64K/gto/bench". */
    std::string str() const;

    bool operator<(const RunKey &o) const;
    bool operator==(const RunKey &o) const;
};

/** @return the GpuConfig a RunKey describes. */
sim::GpuConfig makeConfig(const RunKey &key);

/** Engine construction knobs. */
struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** On-disk JSON spill path; empty = in-memory cache only. */
    std::string cachePath;
    /** Spill size cap in bytes; 0 = unlimited.  Entries past the cap are
     *  not written (they are re-simulated next run). */
    uint64_t maxCacheBytes = 0;

    /** Read TANGO_ENGINE_THREADS / TANGO_ENGINE_CACHE /
     *  TANGO_ENGINE_CACHE_MAX_MB from the environment (unset variables
     *  keep the defaults above).  Malformed numeric values — anything
     *  but a plain non-negative integer — are a fatal() error, never
     *  silently treated as 0.  With TANGO_SIM_SHARDS=K (> 1) and no
     *  explicit thread count, the default worker count becomes
     *  hardware concurrency / K, so run-level and shard-level workers
     *  share one static thread budget. */
    static EngineOptions fromEnv();
};

/**
 * A job-based parallel simulation engine with a keyed result cache.
 *
 * Standard jobs are RunKeys; arbitrary sweeps (quantized weights,
 * custom policies) submit a JobFn under an explicit cache key.  submit()
 * returns a shared future immediately; run() blocks.  Results live for
 * the Engine's lifetime and are returned by reference — repeated run()
 * calls with the same key return the same object.
 *
 * A job that throws fails only its own future: the exception is
 * rethrown from run()/future.get(), the key is evicted (a retry
 * re-simulates), and the worker moves on to the next job.
 */
class Engine
{
  public:
    /** A custom job: simulate something on the worker's Gpu (already
     *  reconfigured to the job's GpuConfig) and return the statistics. */
    using JobFn = std::function<NetRun(sim::Gpu &)>;

    explicit Engine(EngineOptions opt = {});

    /** Waits for outstanding jobs, then flushes the disk spill. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Enqueue a standard simulation point (no-op if cached). */
    std::shared_future<const NetRun *> submit(const RunKey &key);

    /** How a submitJob() was satisfied.  The slot map doubles as an
     *  in-flight dedup table: a job whose key is already being
     *  simulated joins that simulation instead of starting another —
     *  this is what makes tango-serve safe under request storms. */
    struct Submitted
    {
        enum class Served
        {
            Simulated,   ///< started a fresh simulation
            Joined,      ///< deduplicated onto an identical in-flight job
            MemHit,      ///< result already resident
            DiskHit,     ///< recalled from the JSON spill
            Rejected     ///< admission control refused (maxInFlight)
        };
        Served served = Served::Rejected;
        /** Valid unless served == Rejected. */
        std::shared_future<const NetRun *> future;
    };

    /**
     * Enqueue a JobSpec under its canonical cache key.
     * @param maxInFlight if nonzero, reject (rather than enqueue) a job
     *        that would start a NEW simulation while that many are
     *        already in flight — cache hits and joins are always
     *        admitted; they cost nearly nothing.  The check and the
     *        enqueue are one critical section, so the bound is exact.
     * @param fn if given, runs instead of the standard job body
     *        runJob(gpu, spec) — the tango-serve tests inject blocking
     *        runners through this to pin jobs in flight.
     * fatal()s later (on the worker) if the spec is invalid —
     * validate() first.
     */
    Submitted submitJob(const JobSpec &spec, unsigned maxInFlight = 0,
                        JobFn fn = nullptr);

    /** @return jobs currently being simulated (submitted, not done). */
    unsigned inFlightSims() const;

    /** Enqueue a custom job under @p key (no-op if cached). */
    std::shared_future<const NetRun *> submit(const std::string &key,
                                              const sim::GpuConfig &cfg,
                                              JobFn fn);

    /** Run (or recall) a standard simulation point; blocks. */
    const NetRun &run(const RunKey &key);

    /** Run (or recall) a custom job; blocks. */
    const NetRun &run(const std::string &key, const sim::GpuConfig &cfg,
                      JobFn fn);

    /** Submit every key so the pool simulates them concurrently.
     *  Subsequent run() calls then only wait, never simulate. */
    void prefetch(const std::vector<RunKey> &keys);

    /** prefetch() + collect, in input order; blocks for all. */
    std::vector<const NetRun *> runAll(const std::vector<RunKey> &keys);

    /** Write the disk spill now (also done by the destructor). */
    void flush();

    /** @return the worker count. */
    unsigned threads() const { return pool_.threadCount(); }

    /** Cache effectiveness counters (for logs and tests). */
    struct CacheStats
    {
        uint64_t memHits = 0;    ///< key already resident
        uint64_t diskHits = 0;   ///< recalled from the JSON spill
        uint64_t misses = 0;     ///< actually simulated
        uint64_t failures = 0;   ///< jobs that threw
        // Per-tier submitJob() counts (JobSpec::tier; all zero when the
        // engine only saw legacy RunKey / custom-fn traffic).
        uint64_t tierSim = 0;
        uint64_t tierReplay = 0;
        uint64_t tierEstimate = 0;
    };
    CacheStats cacheStats() const;

    /** Log the cache counters once at info level (repeat calls are
     *  no-ops).  Run by the destructor and, for global(), at exit — so
     *  warm-vs-cold behaviour is visible without a debugger. */
    void logCacheStats();

    /** The process-wide engine (configured from the environment).
     *  This is what bench_util and the examples share. */
    static Engine &global();

  private:
    struct Slot;

    std::shared_future<const NetRun *>
    submitLocked(const std::string &key, const sim::GpuConfig &cfg,
                 JobFn fn);
    void execute(const std::shared_ptr<Slot> &slot);
    sim::Gpu &workerGpu(const sim::GpuConfig &cfg);

    EngineOptions opt_;
    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<Slot>> slots_;
    std::map<std::string, NetRun> disk_;   ///< loaded, not-yet-claimed spill
    CacheStats stats_;
    unsigned inflight_ = 0;   ///< simulations submitted but not finished
    bool dirty_ = false;   ///< new results since the last flush
    bool statsLogged_ = false;   ///< logCacheStats() once-guard

    ThreadPool pool_;   ///< declared last: joins before members die
};

} // namespace tango::rt

#endif // TANGO_RUNTIME_ENGINE_HH
