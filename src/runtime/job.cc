#include "runtime/job.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"
#include "estimate/estimator.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/run_cache.hh"
#include "sim/digest.hh"
#include "sim/gpu.hh"
#include "sim/shard.hh"

namespace tango::rt {

namespace {

using json::ObjWriter;
using json::Reader;

bool
isRnnNet(const std::string &net)
{
    return net == "gru" || net == "lstm";
}

// ----------------------------------------------------- RunPolicy <-> JSON
//
// Inline policies travel in full: every SimPolicy field plus the
// RunPolicy wrapper.  The field order is fixed so the serialized form is
// canonical (the content digest below keys the run cache).

void
appendRunPolicy(std::string &out, const RunPolicy &p)
{
    ObjWriter o(out);
    o.key("sim");
    {
        ObjWriter s(out);
        s.u64("maxResidentCtas", p.sim.maxResidentCtas);
        s.u64("maxResidentWarps", p.sim.maxResidentWarps);
        s.u64("maxSampledCtas", p.sim.maxSampledCtas);
        s.boolean("fullSim", p.sim.fullSim);
        s.u64("maxWarpsPerCta", p.sim.maxWarpsPerCta);
        s.u64("maxCycles", p.sim.maxCycles);
        s.boolean("memoize", p.sim.memoize);
        s.boolean("profile", p.sim.profile);
        s.u64("shards", p.sim.shards);
        s.close();
    }
    o.boolean("functional", p.functional);
    o.boolean("check", p.check);
    o.num("tolerance", p.tolerance);
    o.u64("maxLoopChannels", p.maxLoopChannels);
    o.close();
}

RunPolicy
parseRunPolicy(const Reader::Value &v)
{
    RunPolicy p;
    if (const Reader::Value *s = v.find("sim")) {
        p.sim.maxResidentCtas =
            static_cast<uint32_t>(s->u64Or("maxResidentCtas",
                                           p.sim.maxResidentCtas));
        p.sim.maxResidentWarps =
            static_cast<uint32_t>(s->u64Or("maxResidentWarps",
                                           p.sim.maxResidentWarps));
        p.sim.maxSampledCtas = s->u64Or("maxSampledCtas",
                                        p.sim.maxSampledCtas);
        p.sim.fullSim = s->boolOr("fullSim", p.sim.fullSim);
        p.sim.maxWarpsPerCta =
            static_cast<uint32_t>(s->u64Or("maxWarpsPerCta",
                                           p.sim.maxWarpsPerCta));
        p.sim.maxCycles = s->u64Or("maxCycles", p.sim.maxCycles);
        p.sim.memoize = s->boolOr("memoize", p.sim.memoize);
        p.sim.profile = s->boolOr("profile", p.sim.profile);
        p.sim.shards =
            static_cast<uint32_t>(s->u64Or("shards", p.sim.shards));
    }
    p.functional = v.boolOr("functional", p.functional);
    p.check = v.boolOr("check", p.check);
    p.tolerance = static_cast<float>(v.numOr("tolerance", p.tolerance));
    p.maxLoopChannels =
        static_cast<uint32_t>(v.u64Or("maxLoopChannels",
                                      p.maxLoopChannels));
    return p;
}

/** Content digest of an inline policy's canonical JSON, as 16 hex
 *  chars: equal policies key equally no matter how they were built. */
std::string
inlinePolicyTag(const RunPolicy &p)
{
    std::string body;
    appendRunPolicy(body, p);
    uint64_t h = sim::digest::kInit;
    sim::digest::mixBytes(h, body.data(), body.size());
    char buf[32];
    std::snprintf(buf, sizeof buf, "inline-%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

// -------------------------------------------------------------------- Tier

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Sim:      return "sim";
      case Tier::Replay:   return "replay";
      case Tier::Estimate: return "estimate";
    }
    panic("bad tier %d", static_cast<int>(t));
}

bool
tierFromName(const std::string &name, Tier &out)
{
    if (name == "sim")
        out = Tier::Sim;
    else if (name == "replay")
        out = Tier::Replay;
    else if (name == "estimate")
        out = Tier::Estimate;
    else
        return false;
    return true;
}

// ----------------------------------------------------------------- JobSpec

std::string
JobSpec::validate() const
{
    const auto nets = nn::models::runnableNames();
    if (std::find(nets.begin(), nets.end(), net) == nets.end())
        return "unknown network '" + net + "'";
    if (platform != "GP102" && platform != "GK210" && platform != "TX1")
        return "unknown platform '" + platform +
               "' (known: GP102, GK210, TX1)";
    if (!hasInlinePolicy) {
        const auto known = RunPolicy::names();
        if (std::find(known.begin(), known.end(), policy) == known.end())
            return "unknown policy '" + policy + "'";
    }
    if (seqLen > (1u << 20))
        return "seqLen " + std::to_string(seqLen) + " out of range [0, " +
               std::to_string(1u << 20) + "]";
    if (tier == Tier::Estimate && (functional || profile))
        return "estimate-tier jobs cannot be functional or profiled "
               "(the models predict statistics, not outputs)";
    if (maxRelErr < 0.0 || maxRelErr > 1.0)
        return "maxRelErr " + std::to_string(maxRelErr) +
               " out of range [0, 1]";
    if (maxRelErr > 0.0 && tier != Tier::Estimate)
        return "maxRelErr only applies to estimate-tier jobs";
    return "";
}

RunPolicy
JobSpec::resolvedPolicy() const
{
    RunPolicy p =
        hasInlinePolicy ? inlinePolicy : RunPolicy::named(policy);
    p.functional |= functional;
    p.sim.profile |= profile;
    // Replay tier IS the policy with launch memoization forced on; an
    // estimate-tier job that falls back to simulation gets the same.
    if (tier != Tier::Sim)
        p.sim.memoize = true;
    return p;
}

sim::GpuConfig
JobSpec::gpuConfig() const
{
    sim::GpuConfig cfg = platform == "GK210" ? sim::keplerGK210()
                         : platform == "TX1" ? sim::maxwellTX1()
                                             : sim::pascalGP102();
    cfg.l1dBytes = l1dBytes;
    cfg.scheduler = sched;
    return cfg;
}

CacheKey
JobSpec::cacheKey() const
{
    const std::string l1 =
        l1dBytes ? std::to_string(l1dBytes / 1024) + "K" : "off";
    std::string key = net + "/" + platform + "/l1=" + l1 + "/" +
                      sim::schedName(sched) + "/" +
                      (hasInlinePolicy ? inlinePolicyTag(inlinePolicy)
                                       : policy);
    // Normalize the extras away when they are defaults, so a JobSpec
    // that says nothing beyond net x policy x platform keys exactly
    // like the legacy RunKey ("alexnet/GP102/l1=64K/gto/bench") and the
    // serve daemon, the bench binaries and the CLI tools all share one
    // cache entry.  The trace flag never participates: tracing observes
    // a run, it does not change what is simulated.
    const uint32_t seq =
        isRnnNet(net) && seqLen != nn::models::kDefaultRnnSeqLen ? seqLen
                                                                 : 0;
    if (seq)
        key += "/seq=" + std::to_string(seq);
    if (functional)
        key += "/fn";
    if (profile)
        key += "/prof";
    // Intra-run sharding changes the simulated statistics (see
    // SimPolicy::shards), so shard counts > 1 must not collide with the
    // K=1 entries — in memory or in a disk spill shared across processes
    // with different TANGO_SIM_SHARDS.  K=1 stays suffix-free so the base
    // form remains character-identical to RunKey::str().
    const uint32_t k = sim::effectiveShards(resolvedPolicy().sim);
    if (k > 1)
        key += "/k=" + std::to_string(k);
    // Tiers answer with different fidelity, so they must never share a
    // cache entry: an estimated NetRun recalled for a sim-tier job would
    // silently hand model output to a caller who paid for cycle-level
    // truth.  The default tier stays suffix-free (legacy keys unchanged).
    if (tier != Tier::Sim)
        key += std::string("/tier=") + tierName(tier);
    if (maxRelErr > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "/err=%g", maxRelErr);
        key += buf;
    }
    return CacheKey{key};
}

std::string
JobSpec::toJson() const
{
    std::string out;
    ObjWriter o(out);
    o.str("net", net);
    if (hasInlinePolicy) {
        o.key("runPolicy");
        appendRunPolicy(out, inlinePolicy);
    } else {
        o.str("policy", policy);
    }
    o.str("platform", platform);
    o.u64("l1dBytes", l1dBytes);
    o.str("sched", sim::schedName(sched));
    o.u64("seqLen", seqLen);
    if (tier != Tier::Sim)
        o.str("tier", tierName(tier));
    if (maxRelErr > 0.0)
        o.num("maxRelErr", maxRelErr);
    o.boolean("functional", functional);
    o.boolean("profile", profile);
    o.boolean("trace", trace);
    o.close();
    return out;
}

bool
JobSpec::fromJson(const std::string &text, JobSpec &out, std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    Reader::Value v;
    try {
        v = Reader(text).parse();
    } catch (const std::exception &e) {
        return fail(e.what());
    }
    if (v.kind != Reader::Value::Kind::Obj)
        return fail("job spec must be a JSON object");

    JobSpec spec;
    spec.net = v.strOr("net");
    if (spec.net.empty())
        return fail("missing required field 'net'");

    const Reader::Value *inlinePol = v.find("runPolicy");
    const Reader::Value *named = v.find("policy");
    if (inlinePol && named)
        return fail("'policy' and 'runPolicy' are mutually exclusive");
    if (inlinePol) {
        if (inlinePol->kind != Reader::Value::Kind::Obj)
            return fail("'runPolicy' must be an object");
        spec.hasInlinePolicy = true;
        spec.inlinePolicy = parseRunPolicy(*inlinePol);
    } else if (named) {
        if (named->kind != Reader::Value::Kind::Str)
            return fail("'policy' must be a string");
        spec.policy = named->str;
    }

    if (const Reader::Value *p = v.find("platform")) {
        if (p->kind != Reader::Value::Kind::Str)
            return fail("'platform' must be a string");
        spec.platform = p->str;
    }
    spec.l1dBytes = static_cast<uint32_t>(v.u64Or("l1dBytes",
                                                  spec.l1dBytes));
    if (const Reader::Value *s = v.find("sched")) {
        if (s->kind != Reader::Value::Kind::Str ||
            !sim::schedFromName(s->str, spec.sched))
            return fail("unknown scheduler '" + s->strOr("sched") +
                        "' (known: gto, lrr, tlv)");
    }
    spec.seqLen = static_cast<uint32_t>(v.u64Or("seqLen", 0));
    if (const Reader::Value *t = v.find("tier")) {
        if (t->kind != Reader::Value::Kind::Str ||
            !tierFromName(t->str, spec.tier))
            return fail("unknown tier '" + t->str +
                        "' (known: sim, replay, estimate)");
    }
    spec.maxRelErr = v.numOr("maxRelErr", 0.0);
    spec.functional = v.boolOr("functional", false);
    spec.profile = v.boolOr("profile", false);
    spec.trace = v.boolOr("trace", false);
    out = std::move(spec);
    return true;
}

// ---------------------------------------------------------------- JobResult

std::string
JobResult::toJson() const
{
    std::string out;
    ObjWriter o(out);
    o.boolean("ok", ok);
    if (!ok)
        o.str("error", error);
    if (!served.empty())
        o.str("served", served);
    o.num("latencyMs", latencyMs);
    if (ok) {
        o.key("run");
        out += serializeNetRun(run);
    }
    o.close();
    return out;
}

bool
JobResult::fromJson(const std::string &text, JobResult &out,
                    std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    Reader::Value v;
    try {
        v = Reader(text).parse();
    } catch (const std::exception &e) {
        return fail(e.what());
    }
    if (v.kind != Reader::Value::Kind::Obj)
        return fail("job result must be a JSON object");

    JobResult res;
    res.ok = v.boolOr("ok", false);
    res.error = v.strOr("error");
    res.served = v.strOr("served");
    res.latencyMs = v.numOr("latencyMs");
    if (res.ok) {
        const Reader::Value *run = v.find("run");
        if (!run || run->kind != Reader::Value::Kind::Obj)
            return fail("ok result is missing its 'run' object");
        res.run = netRunFromJson(*run);
    }
    out = std::move(res);
    return true;
}

// ------------------------------------------------------------------ running

NetRun
runJob(sim::Gpu &gpu, const JobSpec &spec)
{
    Runtime rt(gpu);
    return rt.run(spec);
}

NetRun
Runtime::run(const JobSpec &spec)
{
    const std::string why = spec.validate();
    if (!why.empty())
        fatal("invalid job %s: %s", spec.toJson().c_str(), why.c_str());

    if (spec.tier == Tier::Estimate) {
        NetRun est;
        std::string reason;
        if (estimate::Estimator::global().estimate(spec, est, &reason))
            return est;
        inform("estimate tier: %s falling back to simulation (%s)",
               spec.cacheKey().str.c_str(), reason.c_str());
    }

    const RunPolicy policy = spec.resolvedPolicy();
    nn::AnyModel model = [&] {
        if (spec.net == "gru")
            return nn::AnyModel(
                spec.seqLen ? nn::models::buildGru(spec.seqLen)
                            : nn::models::buildGru());
        if (spec.net == "lstm")
            return nn::AnyModel(
                spec.seqLen ? nn::models::buildLstm(spec.seqLen)
                            : nn::models::buildLstm());
        return nn::models::buildAny(spec.net);
    }();
    if (policy.functional || policy.check)
        nn::initWeights(model);
    return run(model, policy);
}

} // namespace tango::rt
