file(REMOVE_RECURSE
  "../bench/fig14_l2_miss_ratio"
  "../bench/fig14_l2_miss_ratio.pdb"
  "CMakeFiles/fig14_l2_miss_ratio.dir/fig14_l2_miss_ratio.cc.o"
  "CMakeFiles/fig14_l2_miss_ratio.dir/fig14_l2_miss_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_l2_miss_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
