/**
 * @file
 * Set-associative cache model with LRU replacement and MSHR tracking.
 *
 * Used for both the per-SM L1D and the GPU-shared L2.  The model is a
 * state-plus-latency model (not a full event-driven pipeline): a lookup
 * updates tag state and reports hit/miss; outstanding misses occupy MSHR
 * slots until an absolute fill cycle, and a full MSHR file surfaces as a
 * memory_throttle stall in the core.
 */

#ifndef TANGO_SIM_CACHE_HH
#define TANGO_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tango::sim {

/** Cache geometry + MSHR count. */
struct CacheConfig
{
    uint32_t sizeBytes = 64 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = 128;
    uint32_t mshrs = 32;
    bool writeAllocate = false;     ///< L1: write-through no-allocate
};

/** Running counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writeAccesses = 0;
    uint64_t mshrFullEvents = 0;

    double
    missRatio() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }
};

/** One set-associative LRU cache with a finite MSHR file. */
class Cache
{
  public:
    /** @param cfg geometry; sizeBytes == 0 builds a pass-through (bypass). */
    explicit Cache(const CacheConfig &cfg);

    /** Lookup result. */
    struct Result
    {
        bool hit = false;
        bool mshrMerged = false;    ///< miss merged into an in-flight line
    };

    /**
     * Probe and update the cache for one line-sized access.
     * @param addr byte address (any byte within the line).
     * @param write whether the access is a store.
     * @param now current core cycle (retires expired MSHRs first).
     * @return hit/miss and MSHR-merge information.
     */
    Result access(uint32_t addr, bool write, uint64_t now);

    /** @return whether an MSHR slot (or mergeable entry) is available for
     *  @p addr at cycle @p now; counts a throttle event when not. */
    bool mshrAvailable(uint32_t addr, uint64_t now);

    /** Reserve an MSHR for the line of @p addr until cycle @p fill. */
    void allocateMshr(uint32_t addr, uint64_t fill);

    /** @return the pending fill cycle for @p addr's line, or 0 when the
     *  line is not (or no longer) in flight.  A tag "hit" on a line whose
     *  fill is pending must wait for the fill, not the hit latency. */
    uint64_t pendingFillCycle(uint32_t addr, uint64_t now);

    /** @return true when the cache is a bypass shim (size 0). */
    bool bypassed() const { return sets_ == 0; }

    /** Reset tags, MSHRs and statistics. */
    void reset();

    /** Zero the statistics but keep tag state (per-kernel stat windows
     *  over a warm cache). */
    void clearStats() { stats_ = CacheStats{}; }

    /** Invalidate all MSHRs.  Fill times are absolute cycles, so a new
     *  launch (whose clock restarts at zero) must drop them while keeping
     *  the warm tags. */
    void
    newTimeDomain()
    {
        for (auto &m : mshrs_)
            m.valid = false;
    }

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    struct Mshr
    {
        uint64_t lineAddr = 0;
        uint64_t fillCycle = 0;
        bool valid = false;
    };

    uint64_t lineAddr(uint32_t addr) const { return addr / cfg_.lineBytes; }
    void retireMshrs(uint64_t now);

    CacheConfig cfg_;
    uint32_t sets_ = 0;
    std::vector<Line> lines_;   // sets_ * assoc
    std::vector<Mshr> mshrs_;
    CacheStats stats_;
    uint64_t useClock_ = 0;
};

} // namespace tango::sim

#endif // TANGO_SIM_CACHE_HH
