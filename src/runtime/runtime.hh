/**
 * @file
 * The Tango runtime: runs a network on a virtual GPU and collects the
 * per-layer and whole-network statistics the paper's figures are built
 * from.
 *
 * Two execution modes compose:
 *  - functional: the CPU reference computes each layer's true output and
 *    writes it into device memory after the layer's kernels run, so CTA
 *    sampling never corrupts downstream inputs; with `check`, simulated
 *    outputs are instead compared against the reference (small networks,
 *    fullSim).
 *  - timing-only (functional=false): buffers hold garbage, which is fine —
 *    the kernels' control flow and addresses are data-independent.
 */

#ifndef TANGO_RUNTIME_RUNTIME_HH
#define TANGO_RUNTIME_RUNTIME_HH

#include <string>
#include <vector>

#include "nn/network.hh"
#include "runtime/lowering.hh"
#include "sim/gpu.hh"

namespace tango::rt {

struct JobSpec; // runtime/job.hh

/** Execution policy for one network run. */
struct RunPolicy
{
    sim::SimPolicy sim;
    bool functional = false;   ///< write reference outputs after each layer
    bool check = false;        ///< compare device outputs vs the reference
    float tolerance = 1e-4f;   ///< relative tolerance for check
    /** Timing-only loop-channel sampling (see rt::lower); ignored when
     *  functional or check is set. */
    uint32_t maxLoopChannels = 0;

    /**
     * Look up a policy in the named-policy registry.  Built-ins:
     *  - "bench": the harness sampling policy — ~16-warp budget per SM,
     *    6 sampled warps per CTA; seconds per network, every statistic
     *    extrapolated to the full grid.
     *  - "mem":   memory-locality studies (Figs 13/14) — many
     *    co-resident CTAs with few warps each, so cross-CTA data reuse
     *    reaches the shared L2 the way it does on hardware.
     *  - "stall": stall-cycle studies (Fig 7) — near-hardware warp
     *    residency so latency hiding and the stall mix are realistic.
     *  - "exact": full cycle-accurate simulation of every CTA, no
     *    sampling (small networks only).
     * fatal()s on an unknown name.
     */
    static RunPolicy named(const std::string &name);

    /** Register (or replace) a named policy. */
    static void registerPolicy(const std::string &name, const RunPolicy &p);

    /** @return all registered policy names, sorted. */
    static std::vector<std::string> names();
};

/** Statistics of one layer (possibly several kernels). */
struct LayerRun
{
    int layerIndex = -1;
    std::string name;
    std::string figType;
    std::vector<sim::KernelStats> kernels;

    double timeSec() const;
    double energyJ() const;
    double gpuCycles() const;
};

/** Statistics of a full network run. */
struct NetRun
{
    std::string netName;
    std::vector<LayerRun> layers;
    uint64_t deviceBytes = 0;
    StatSet totals;          ///< merged op/dtype/evt/stall counters
    double totalTimeSec = 0.0;
    double totalEnergyJ = 0.0;
    double peakPowerW = 0.0;      ///< max over kernels (paper Fig 3)
    uint32_t maxRegsPerThread = 0;
    uint32_t maxLiveRegs = 0;
    uint32_t maxResidentWarps = 0;   ///< warps/SM at the widest kernel
    uint64_t checkFailures = 0;   ///< mismatches found in check mode

    /** Whether these statistics are model predictions (estimate tier,
     *  see estimate/estimator.hh) rather than simulation output.  When
     *  set, estErrP50/estErrP95 carry the fitted models' validated
     *  relative cycle error bounds (the worst family used). */
    bool estimated = false;
    double estErrP50 = 0.0;
    double estErrP95 = 0.0;

    /** Sum a counter over layers whose figType is @p fig. */
    double figTypeStat(const std::string &fig,
                       const std::string &stat) const;
    /** Total time of layers with figType @p fig. */
    double figTypeTime(const std::string &fig) const;
    /** All distinct figTypes in first-appearance order. */
    std::vector<std::string> figTypes() const;
};

/** Optional inputs/outputs of one model run. */
struct RunIo
{
    /** CNN input image (nullptr = synthetic; CNN runs only). */
    const nn::Tensor *image = nullptr;
    /** RNN input sequence (nullptr = synthetic; RNN runs only). */
    const std::vector<float> *sequence = nullptr;
    /** If set, receives the RNN's device-predicted value. */
    float *prediction = nullptr;
};

/** Runs models on a Gpu. */
class Runtime
{
  public:
    explicit Runtime(sim::Gpu &gpu) : gpu_(gpu) {}

    /**
     * Run a model of either kind — THE entry point.  CNNs consume
     * io.image, RNNs io.sequence/io.prediction; unused RunIo fields are
     * ignored.  This is what rt::Engine jobs call, which is why it is
     * model-kind-agnostic.
     */
    NetRun run(const nn::AnyModel &model, const RunPolicy &policy,
               const RunIo &io = {});

    /**
     * Run a JobSpec (runtime/job.hh): builds the model it names
     * (honouring seqLen), generates weights only when the resolved
     * policy needs functional outputs, and runs it.  The Gpu this
     * Runtime wraps must already match spec.gpuConfig().  fatal()s on
     * an invalid spec — validate() first.
     */
    NetRun run(const JobSpec &spec);

  private:
    NetRun cnnRun(const nn::Network &net, const RunPolicy &policy,
                  const nn::Tensor *input);
    NetRun rnnRun(const nn::RnnModel &model, const RunPolicy &policy,
                  const std::vector<float> *sequence, float *prediction);

    sim::Gpu &gpu_;
};

/** Build + run a network by name ("gru", "lstm", or a CNN name) with
 *  weights generated only when the policy needs functional outputs —
 *  the standard timing-study entry point (and the rt::Engine job body). */
NetRun runNetworkByName(sim::Gpu &gpu, const std::string &name,
                        const RunPolicy &policy);

} // namespace tango::rt

#endif // TANGO_RUNTIME_RUNTIME_HH
