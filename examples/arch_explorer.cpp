/**
 * @file
 * Architecture explorer: the workflow the benchmark suite exists for.
 * An accelerator designer sweeps cache sizes and warp schedulers over a
 * DNN workload on the simulator — the experiment the paper argues is
 * impossible with library-bound benchmark suites (Section IV-F).
 *
 * Sweeps AlexNet over {L1D size} x {warp scheduler} and prints the
 * execution-time matrix plus the resulting design recommendation. The
 * twelve design points are independent simulations, so the whole sweep
 * is handed to rt::Engine and runs in parallel across worker threads.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "runtime/engine.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

int
main()
{
    using namespace tango;
    setVerbose(false);

    const std::vector<std::pair<std::string, uint32_t>> l1Sizes = {
        {"No L1", 0},
        {"64KB", 64 * 1024},
        {"128KB", 128 * 1024},
        {"256KB", 256 * 1024}};
    const std::vector<sim::SchedPolicy> scheds = {
        sim::SchedPolicy::GTO, sim::SchedPolicy::LRR,
        sim::SchedPolicy::TLV};

    // Enumerate the design space as engine keys and simulate them all
    // concurrently.
    std::vector<rt::RunKey> keys;
    for (const auto &[l1Name, l1Bytes] : l1Sizes) {
        for (auto sched : scheds) {
            rt::RunKey key{"alexnet"};
            key.l1dBytes = l1Bytes;
            key.sched = sched;
            keys.push_back(key);
        }
    }
    const std::vector<const rt::NetRun *> runs =
        rt::Engine::global().runAll(keys);

    Table t("AlexNet execution time (ms) across the design space");
    t.header({"L1D \\ scheduler", "gto", "lrr", "tlv"});

    double best = 1e30;
    std::string bestCfg;
    size_t idx = 0;
    for (const auto &[l1Name, l1Bytes] : l1Sizes) {
        std::vector<std::string> row = {l1Name};
        for (auto sched : scheds) {
            const rt::NetRun &run = *runs[idx++];
            row.push_back(Table::num(run.totalTimeSec * 1e3, 2));
            if (run.totalTimeSec < best) {
                best = run.totalTimeSec;
                bestCfg = l1Name + std::string(" + ") +
                          sim::schedName(sched);
            }
        }
        t.row(row);
    }
    t.print(std::cout);
    std::printf("\nbest configuration for AlexNet: %s (%.2f ms)\n",
                bestCfg.c_str(), best * 1e3);
    std::printf("arch_explorer: OK\n");
    return 0;
}
