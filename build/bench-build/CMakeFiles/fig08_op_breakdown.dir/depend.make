# Empty dependencies file for fig08_op_breakdown.
# This may be replaced when dependencies are built.
