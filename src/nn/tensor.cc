#include "nn/tensor.hh"

#include "common/logging.hh"

namespace tango::nn {

Tensor::Tensor(std::vector<uint32_t> shape) : shape_(std::move(shape))
{
    uint64_t n = 1;
    for (uint32_t d : shape_) {
        TANGO_ASSERT(d > 0, "zero tensor dimension");
        n *= d;
    }
    data_.assign(n, 0.0f);
}

std::string
Tensor::shapeStr() const
{
    std::string s;
    for (size_t i = 0; i < shape_.size(); i++) {
        if (i)
            s += "x";
        s += std::to_string(shape_[i]);
    }
    return s.empty() ? "scalar" : s;
}

uint64_t
Tensor::argmax() const
{
    uint64_t best = 0;
    for (uint64_t i = 1; i < size(); i++) {
        if (data_[i] > data_[best])
            best = i;
    }
    return best;
}

} // namespace tango::nn
