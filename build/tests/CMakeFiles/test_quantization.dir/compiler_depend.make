# Empty compiler generated dependencies file for test_quantization.
# This may be replaced when dependencies are built.
