# Empty compiler generated dependencies file for tab01_models.
# This may be replaced when dependencies are built.
