/**
 * @file
 * Extension: weight quantization (the paper's stated plan: "We plan to
 * apply quantization for the proposed benchmark suite").
 *
 * Runs AlexNet and CifarNet with f32 weights and with s16 Q-format
 * weights, comparing device memory footprint, execution time, and the
 * instruction data-type mix (the s16 loads become visible, shifting the
 * Fig 10 distribution further toward integers).
 */

#include "bench_util.hh"

#include "nn/weights.hh"

namespace {

using namespace tango;

/** Submit one variant as a custom engine job (the f32 variant shares
 *  the standard RunKey cache entry; the quantized one gets "+quant"). */
std::shared_future<const rt::NetRun *>
submitVariant(const std::string &name, bool quantized)
{
    const bench::RunKey base{name};
    const std::string key = base.str() + (quantized ? "+quant" : "");
    return bench::engine().submit(
        key, bench::makeConfig(base), [name, quantized](sim::Gpu &gpu) {
            nn::AnyModel model = nn::models::buildAny(name);
            if (quantized) {
                // Quantization only changes weight storage; the
                // timing-only path needs the flags but not the
                // (expensive) weight values, except that the flags are
                // set by the quantizer, which needs weights.
                nn::initWeights(model);
                nn::quantizeConvWeights(model.cnn());
            }
            rt::Runtime rtm(gpu);
            return rtm.run(model, rt::RunPolicy::named("bench"));
        });
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    // All four variants simulate concurrently.
    for (const char *name : {"cifarnet", "alexnet"}) {
        for (bool quant : {false, true})
            submitVariant(name, quant);
    }

    Table t("Weight quantization: f32 vs s16 (Q15) conv weights");
    t.header({"network", "variant", "device mem (KB)", "time (ms)",
              "f32 ops", "s16 ops"});
    for (const char *name : {"cifarnet", "alexnet"}) {
        for (bool quant : {false, true}) {
            const rt::NetRun &run = *submitVariant(name, quant).get();
            const prof::Series d = prof::dtypeBreakdown(run.totals);
            double f32 = 0.0, s16 = 0.0;
            for (const auto &[k, v] : d) {
                if (k == "f32")
                    f32 = v;
                if (k == "s16")
                    s16 = v;
            }
            t.row({name, quant ? "s16-quant" : "f32",
                   Table::num(double(run.deviceBytes) / 1024, 0),
                   Table::num(run.totalTimeSec * 1e3, 2),
                   Table::pct(f32), Table::pct(s16)});
            bench::registerValue(std::string("ext_quant/") + name + "/" +
                                     (quant ? "s16" : "f32") + "/mem_kb",
                                 "KB", double(run.deviceBytes) / 1024);
        }
    }
    t.print(std::cout);
    std::cout << "Quantized conv weights halve the weight footprint and "
                 "surface s16 loads in the Fig 10 data-type mix; the "
                 "dequantize (cvt+mul) adds a small instruction "
                 "overhead per tap.\n";

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
