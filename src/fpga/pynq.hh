/**
 * @file
 * Analytical model of the Xilinx PynQ-Z1 FPGA platform (paper Table IV).
 *
 * The paper synthesized the OpenCL kernels to RTL with Vivado HLS and ran
 * them on the PynQ's Zynq Z7020 fabric.  No FPGA is available here, so
 * this model reproduces the two effects Fig 6 turns on:
 *  - a dedicated, DSP-limited datapath at a low clock: slower than the
 *    TX1's general-purpose SMs (the paper saw 1.7-1.8x longer runtimes),
 *    amplified by slow code loading and the small on-chip BRAM forcing
 *    layers to be split into sub-kernels streamed from DDR;
 *  - a much lower device power (the paper saw 2.28-3.2x below TX1), so
 *    total energy still ends up 1.34-1.74x *better* than the GPU.
 */

#ifndef TANGO_FPGA_PYNQ_HH
#define TANGO_FPGA_PYNQ_HH

#include <string>
#include <vector>

#include "nn/network.hh"

namespace tango::fpga {

/** PynQ-Z1 resources (Table IV) and model constants. */
struct PynqConfig
{
    double clockMhz = 100.0;          ///< HLS kernel clock
    uint32_t dspSlices = 220;         ///< Z7020 DSP48 count
    double dspUtilization = 0.75;     ///< usable fraction after routing
    uint64_t bramBytes = 630 * 1024;  ///< on-chip buffer (Table IV)
    double ddrBytesPerSec = 350e6;    ///< streaming bandwidth share
    double kernelLoadSec = 0.010;     ///< per-sub-kernel code load (paper:
                                      ///< "slower code loading time")
    double boardPowerW = 2.5;         ///< device-level draw (Wattsup)
};

/** Per-layer model output. */
struct FpgaLayerRun
{
    std::string name;
    double computeSec = 0.0;
    double streamSec = 0.0;
    double loadSec = 0.0;
    uint32_t subKernels = 1;

    double totalSec() const { return computeSec + streamSec + loadSec; }
};

/** Whole-network model output. */
struct FpgaRun
{
    std::string netName;
    std::vector<FpgaLayerRun> layers;
    double totalTimeSec = 0.0;
    double totalEnergyJ = 0.0;
    double peakPowerW = 0.0;
};

/** Model one inference of @p net on the PynQ. */
FpgaRun runOnPynq(const nn::Network &net, const PynqConfig &cfg = {});

} // namespace tango::fpga

#endif // TANGO_FPGA_PYNQ_HH
