#include "serve/server.hh"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "metrics/metrics.hh"

namespace tango::serve {

namespace {

/** Process-wide serve instruments.  The registry view is cumulative
 *  across every Server in the process (one, for the daemon); the
 *  per-server Metrics struct remains the stats-reply source so tests
 *  with several servers still see exact per-server counts. */
struct ServeMetrics
{
    metrics::Counter &requests, &invalid, &runRequests, &failures;
    metrics::Counter &rejectQueueFull, &rejectDraining;
    metrics::Counter &servedSim, &servedJoin, &servedMem, &servedDisk;
    metrics::Counter &tierSim, &tierReplay, &tierEstimate;
    metrics::Histogram &latencyUs;

    static ServeMetrics &get()
    {
        static constexpr const char *kRej = "tango_serve_rejects_total";
        static constexpr const char *kRejHelp =
            "Run requests rejected, by reason";
        static constexpr const char *kSrv = "tango_serve_served_total";
        static constexpr const char *kSrvHelp =
            "Run requests served, by how the engine satisfied them";
        static constexpr const char *kTier = "tango_serve_tier_total";
        static constexpr const char *kTierHelp =
            "Admitted run requests by requested accuracy tier";
        static ServeMetrics m{
            metrics::counter("tango_serve_requests_total",
                             "Frames parsed successfully"),
            metrics::counter("tango_serve_invalid_total",
                             "Malformed frames or invalid job specs"),
            metrics::counter("tango_serve_run_requests_total",
                             "Run requests received"),
            metrics::counter("tango_serve_failures_total",
                             "Admitted runs whose simulation threw"),
            metrics::counter(kRej, kRejHelp, {{"reason", "queue_full"}}),
            metrics::counter(kRej, kRejHelp, {{"reason", "draining"}}),
            metrics::counter(kSrv, kSrvHelp, {{"how", "sim"}}),
            metrics::counter(kSrv, kSrvHelp, {{"how", "join"}}),
            metrics::counter(kSrv, kSrvHelp, {{"how", "mem"}}),
            metrics::counter(kSrv, kSrvHelp, {{"how", "disk"}}),
            metrics::counter(kTier, kTierHelp, {{"tier", "sim"}}),
            metrics::counter(kTier, kTierHelp, {{"tier", "replay"}}),
            metrics::counter(kTier, kTierHelp, {{"tier", "estimate"}}),
            metrics::histogram("tango_serve_latency_us",
                               "End-to-end latency of admitted run "
                               "requests in microseconds"),
        };
        return m;
    }
};

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions opt;
    if (const char *h = std::getenv("TANGO_SERVE_HOST"))
        opt.host = h;
    opt.port = static_cast<uint16_t>(envUint("TANGO_SERVE_PORT", 0));
    opt.queueMax =
        static_cast<unsigned>(envUint("TANGO_SERVE_QUEUE_MAX", 32));
    opt.engine = rt::EngineOptions::fromEnv();
    return opt;
}

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), engine_(opt_.engine)
{
}

Server::~Server()
{
    if (started_) {
        requestDrain();
        waitDrained();
    }
    if (pipeR_ >= 0)
        ::close(pipeR_);
    if (pipeW_ >= 0)
        ::close(pipeW_);
}

bool
Server::start(std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    int pipefd[2];
    if (::pipe(pipefd) != 0)
        return fail(std::string("pipe: ") + std::strerror(errno));
    pipeR_ = pipefd[0];
    pipeW_ = pipefd[1];

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1)
        return fail("bad host '" + opt_.host + "' (IPv4 dotted quad)");
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail(std::string("bind: ") + std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        return fail(std::string("listen: ") + std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return fail(std::string("getsockname: ") + std::strerror(errno));
    port_ = ntohs(bound.sin_port);

    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestDrain()
{
    if (pipeW_ >= 0) {
        const char c = 'd';
        // A full pipe already has a pending drain byte; ignore.
        (void)!::write(pipeW_, &c, 1);
    }
}

bool
Server::draining() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return draining_;
}

void
Server::waitDrained()
{
    if (!started_ || drained_)
        return;
    acceptThread_.join();
    // The accept thread has shut every connection socket down; the
    // connection threads are unblocking from their reads now.
    std::list<Conn> conns;
    {
        std::unique_lock<std::mutex> lock(mu_);
        conns.swap(conns_);
    }
    for (Conn &c : conns) {
        c.thread.join();
        ::close(c.fd);
    }
    drained_ = true;
    engine_.flush();
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0}, {pipeR_, POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", std::strerror(errno));
            break;
        }
        if (fds[1].revents)
            break;   // drain requested
        if (!(fds[0].revents))
            continue;
        const int cfd = ::accept(listenFd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept: %s", std::strerror(errno));
            break;
        }
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        std::unique_lock<std::mutex> lock(mu_);
        conns_.emplace_back();
        Conn &conn = conns_.back();
        conn.fd = cfd;
        conn.thread = std::thread([this, cfd] { connectionLoop(cfd); });
    }

    // Graceful drain: stop accepting, let every in-flight run request
    // finish (new ones are rejected with "draining"), then unblock the
    // connection threads.
    ::close(listenFd_);
    listenFd_ = -1;
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    cv_.wait(lock, [&] { return activeRuns_ == 0; });
    // SHUT_RD only: blocked reads see EOF and the connection threads
    // exit, but a response frame still being written (activeRuns_ is
    // released just before the write) must flush to the client.
    for (Conn &c : conns_)
        ::shutdown(c.fd, SHUT_RD);
}

void
Server::connectionLoop(int fd)
{
    std::string payload;
    for (;;) {
        const FrameStatus st = readFrame(fd, payload);
        if (st != FrameStatus::Ok)
            break;
        const std::string response = handleRequest(payload);
        if (!writeFrame(fd, response))
            break;
    }
    // The joiner owns close(); shutting down here just releases the
    // peer without risking an fd-reuse race.
    ::shutdown(fd, SHUT_RDWR);
}

std::string
Server::handleRequest(const std::string &payload)
{
    Request req;
    std::string why;
    if (!parseRequest(payload, req, &why)) {
        ServeMetrics::get().invalid.inc();
        std::unique_lock<std::mutex> lock(mu_);
        metrics_.invalid++;
        rt::JobResult res;
        res.ok = false;
        res.error = "bad request: " + why;
        return makeResultResponse(0, res);
    }
    ServeMetrics::get().requests.inc();
    {
        std::unique_lock<std::mutex> lock(mu_);
        metrics_.requests++;
    }
    switch (req.type) {
    case Request::Type::Ping:
        return "{\"type\":\"pong\"}";
    case Request::Type::Stats:
        return statsJson();
    case Request::Type::Metrics:
        // The scrape endpoint: the whole process's metrics registry —
        // serve counters, engine cache/queue state, sim launch mix,
        // estimate fallbacks — as one Prometheus text document.  This
        // is what tango-top and the CI invariants consume.
        return metrics::Registry::global().renderPrometheus();
    case Request::Type::Shutdown:
        requestDrain();
        return "{\"type\":\"ok\",\"draining\":true}";
    case Request::Type::Run:
        return handleRun(req);
    }
    return "{\"type\":\"error\"}";   // unreachable
}

std::string
Server::handleRun(const Request &req)
{
    const double t0 = nowMs();
    rt::JobResult res;
    res.ok = false;

    const auto reject = [&](const char *why) {
        res.error = why;
        res.served = "reject";
        res.latencyMs = nowMs() - t0;
        return makeResultResponse(req.id, res);
    };

    ServeMetrics::get().runRequests.inc();
    {
        std::unique_lock<std::mutex> lock(mu_);
        metrics_.runRequests++;
        if (draining_) {
            metrics_.rejectedDraining++;
            lock.unlock();
            ServeMetrics::get().rejectDraining.inc();
            return reject("draining");
        }
        activeRuns_++;
    }
    // From here every exit must release activeRuns_ (drain waits on it).
    const auto release = [&] {
        std::unique_lock<std::mutex> lock(mu_);
        if (--activeRuns_ == 0 && draining_)
            cv_.notify_all();
    };

    std::string why = req.job.validate();
    if (why.empty() && req.job.trace)
        why = "traced jobs are not served (use tango-trace locally)";
    if (!why.empty()) {
        ServeMetrics::get().invalid.inc();
        std::unique_lock<std::mutex> lock(mu_);
        metrics_.invalid++;
        lock.unlock();
        release();
        return reject(why.c_str());
    }

    rt::Engine::JobFn fn;
    if (opt_.runner) {
        const rt::JobSpec job = req.job;
        auto runner = opt_.runner;
        fn = [runner, job](sim::Gpu &gpu) { return runner(gpu, job); };
    }
    const rt::Engine::Submitted sub =
        engine_.submitJob(req.job, opt_.queueMax, std::move(fn));

    using Served = rt::Engine::Submitted::Served;
    if (sub.served == Served::Rejected) {
        ServeMetrics::get().rejectQueueFull.inc();
        std::unique_lock<std::mutex> lock(mu_);
        metrics_.rejectedQueueFull++;
        lock.unlock();
        release();
        return reject("queue_full");
    }
    ServeMetrics &sm = ServeMetrics::get();
    switch (sub.served) {
    case Served::Simulated: sm.servedSim.inc(); break;
    case Served::Joined: sm.servedJoin.inc(); break;
    case Served::MemHit: sm.servedMem.inc(); break;
    case Served::DiskHit: sm.servedDisk.inc(); break;
    case Served::Rejected: break;
    }
    switch (req.job.tier) {
    case rt::Tier::Sim: sm.tierSim.inc(); break;
    case rt::Tier::Replay: sm.tierReplay.inc(); break;
    case rt::Tier::Estimate: sm.tierEstimate.inc(); break;
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        switch (sub.served) {
        case Served::Simulated: metrics_.servedSim++; break;
        case Served::Joined: metrics_.servedJoin++; break;
        case Served::MemHit: metrics_.servedMem++; break;
        case Served::DiskHit: metrics_.servedDisk++; break;
        case Served::Rejected: break;
        }
        switch (req.job.tier) {
        case rt::Tier::Sim: metrics_.tierSim++; break;
        case rt::Tier::Replay: metrics_.tierReplay++; break;
        case rt::Tier::Estimate: metrics_.tierEstimate++; break;
        }
    }

    try {
        const rt::NetRun *run = sub.future.get();
        res.ok = true;
        res.run = *run;
        res.served = sub.served == Served::Simulated ? "sim"
                     : sub.served == Served::Joined  ? "join"
                     : sub.served == Served::MemHit  ? "mem"
                                                     : "disk";
    } catch (const std::exception &e) {
        ServeMetrics::get().failures.inc();
        std::unique_lock<std::mutex> lock(mu_);
        metrics_.failures++;
        res.error = std::string("simulation failed: ") + e.what();
    }
    res.latencyMs = nowMs() - t0;
    recordLatency(res.latencyMs);
    release();
    return makeResultResponse(req.id, res);
}

void
Server::recordLatency(double ms)
{
    // Lock-free: two relaxed atomic adds per histogram.  Every request
    // is recorded — the old fixed sample ring (and its whole-history
    // bias once full) is gone.
    const uint64_t us = ms > 0 ? static_cast<uint64_t>(ms * 1000.0) : 0;
    latencyUs_.observe(us);
    ServeMetrics::get().latencyUs.observe(us);
}

Server::Metrics
Server::metrics() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return metrics_;
}

std::string
Server::statsJson() const
{
    const rt::Engine::CacheStats cache = engine_.cacheStats();
    const unsigned depth = engine_.inFlightSims();

    Metrics m;
    bool draining;
    {
        std::unique_lock<std::mutex> lock(mu_);
        m = metrics_;
        draining = draining_;
    }
    const metrics::HistogramSnapshot lat = latencyUs_.snapshot();

    const uint64_t lookups = cache.memHits + cache.diskHits + cache.misses;
    const double hitRate =
        lookups ? double(cache.memHits + cache.diskHits) / double(lookups)
                : 0.0;

    std::string out;
    json::ObjWriter o(out);
    o.str("type", "stats");
    o.u64("requests", m.requests);
    o.u64("invalid", m.invalid);
    o.u64("run_requests", m.runRequests);
    o.u64("rejected_queue_full", m.rejectedQueueFull);
    o.u64("rejected_draining", m.rejectedDraining);
    o.u64("served_sim", m.servedSim);
    o.u64("served_join", m.servedJoin);
    o.u64("served_mem", m.servedMem);
    o.u64("served_disk", m.servedDisk);
    o.u64("failures", m.failures);
    o.u64("tier_sim", m.tierSim);
    o.u64("tier_replay", m.tierReplay);
    o.u64("tier_estimate", m.tierEstimate);
    o.u64("cache_mem_hits", cache.memHits);
    o.u64("cache_disk_hits", cache.diskHits);
    o.u64("cache_misses", cache.misses);
    o.num("cache_hit_rate", hitRate);
    o.u64("queue_depth", depth);
    o.u64("queue_max", opt_.queueMax);
    o.boolean("draining", draining);
    o.key("latency_ms");
    {
        // Percentiles are exact log2-bucket upper bounds (≤12.5%
        // resolution error) over EVERY run this server served.
        json::ObjWriter l(out);
        l.u64("count", lat.count());
        l.num("p50", double(lat.percentileUpper(0.50)) / 1000.0);
        l.num("p99", double(lat.percentileUpper(0.99)) / 1000.0);
        l.close();
    }
    o.close();
    return out;
}

} // namespace tango::serve
