/**
 * @file
 * Fig 16 reproduction: per-layer warp-scheduler sensitivity of AlexNet
 * (exec time per layer under GTO/LRR/TLV, normalized to GTO).
 *
 * Paper shape to hold: the scheduler differences concentrate in the
 * convolution layers (high data locality lets LRR win there).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    const std::vector<sim::SchedPolicy> scheds = {
        sim::SchedPolicy::GTO, sim::SchedPolicy::LRR,
        sim::SchedPolicy::TLV};
    const std::vector<std::string> schedNames = {"GTO", "LRR", "TLV"};

    // Collect per-layer times under each scheduler (one engine job per
    // scheduler, simulated concurrently).
    std::vector<bench::RunKey> keys;
    for (auto s : scheds) {
        bench::RunKey key{"alexnet"};
        key.sched = s;
        key.policy = "stall";
        keys.push_back(key);
    }
    const std::vector<const rt::NetRun *> runs = bench::engine().runAll(keys);

    std::vector<std::string> layerNames;
    for (const auto &l : runs[0]->layers)
        layerNames.push_back(l.name);

    std::vector<std::vector<double>> values;   // [sched][layer]
    for (size_t s = 0; s < scheds.size(); s++) {
        std::vector<double> col;
        for (size_t li = 0; li < layerNames.size(); li++) {
            const double base = runs[0]->layers[li].timeSec();
            const double t = runs[s]->layers[li].timeSec();
            col.push_back(base > 0 ? t / base : 0.0);
        }
        values.push_back(col);
    }

    rt::printStacked(std::cout,
                     "Fig 16: per-layer warp scheduler sensitivity of "
                     "AlexNet (normalized to GTO)",
                     schedNames, layerNames, values);

    // Headline: conv-layer aggregate sensitivity.
    double convGto = 0.0, convLrr = 0.0;
    for (size_t li = 0; li < layerNames.size(); li++) {
        if (runs[0]->layers[li].figType == "Conv") {
            convGto += runs[0]->layers[li].timeSec();
            convLrr += runs[1]->layers[li].timeSec();
        }
    }
    std::cout << "Headline: AlexNet conv time LRR/GTO = "
              << Table::num(convGto > 0 ? convLrr / convGto : 0.0, 3)
              << " (paper: improvement concentrated in conv layers)\n";
    bench::registerValue("fig16/conv_lrr_vs_gto", "norm_time",
                         convGto > 0 ? convLrr / convGto : 0.0);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
