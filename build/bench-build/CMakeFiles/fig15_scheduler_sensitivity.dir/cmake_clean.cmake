file(REMOVE_RECURSE
  "../bench/fig15_scheduler_sensitivity"
  "../bench/fig15_scheduler_sensitivity.pdb"
  "CMakeFiles/fig15_scheduler_sensitivity.dir/fig15_scheduler_sensitivity.cc.o"
  "CMakeFiles/fig15_scheduler_sensitivity.dir/fig15_scheduler_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scheduler_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
