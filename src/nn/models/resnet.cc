#include "nn/models/models.hh"

#include "common/logging.hh"

namespace tango::nn::models {

namespace {

/** ResNet / Table III mapping: one block per channel, a (32,32) block
 *  striding over the whole output plane. */
LaunchHint
resHint(uint32_t channels)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::GridX;
    h.pixMap = kern::PixelMap::StrideLoop;
    h.grid = {channels, 1, 1};
    h.block = {32, 32, 1};
    return h;
}

} // namespace

Network
buildResNet50()
{
    Network net;
    net.name = "resnet";
    net.inC = 3;
    net.inH = net.inW = 224;

    int prev = -1;

    auto conv = [&](const std::string &name, uint32_t c, uint32_t h,
                    uint32_t k, uint32_t rs, uint32_t stride, uint32_t pad,
                    int from) -> uint32_t {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = h;
        l.K = k;
        l.R = l.S = rs;
        l.stride = stride;
        l.pad = pad;
        l.P = l.Q = (h + 2 * pad - rs) / stride + 1;
        l.bias = false;             // ResNet convs carry no bias (BN does)
        l.inputs = {from};
        l.hint = resHint(k);
        prev = net.add(l);
        return l.P;
    };
    auto bnScaleRelu = [&](const std::string &base, uint32_t c, uint32_t h,
                           bool with_relu) {
        Layer bn;
        bn.kind = LayerKind::BatchNorm;
        bn.name = base + "_bn";
        bn.figType = "Norm";
        bn.C = c;
        bn.H = bn.W = h;
        bn.inputs = {prev};
        bn.hint = resHint(c);
        prev = net.add(bn);

        Layer sc;
        sc.kind = LayerKind::Scale;
        sc.name = base + "_scale";
        sc.figType = "Scale";
        sc.C = c;
        sc.H = sc.W = h;
        sc.inputs = {prev};
        sc.hint = resHint(c);
        prev = net.add(sc);

        if (with_relu) {
            Layer re;
            re.kind = LayerKind::ReLU;
            re.name = base + "_relu";
            re.figType = "Relu";
            re.C = c;
            re.H = re.W = h;
            re.inputs = {prev};
            re.hint = resHint(c);
            prev = net.add(re);
        }
    };

    // Stem: conv 7x7/2 -> BN/Scale/ReLU -> maxpool 3x3/2.
    uint32_t h = conv("conv1", 3, 224, 64, 7, 2, 3, -1);   // -> 112
    bnScaleRelu("conv1", 64, h, true);
    {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = "pool1";
        l.figType = "Pooling";
        l.C = 64;
        l.H = l.W = h;
        l.R = l.S = 3;
        l.stride = 2;
        l.pad = 1;
        l.P = l.Q = (h + 2 - 3) / 2 + 1;                   // -> 56
        l.inputs = {prev};
        l.hint = resHint(64);
        prev = net.add(l);
        h = l.P;
    }

    // Bottleneck stages: [3, 4, 6, 3] blocks, widths 64/128/256/512.
    const uint32_t blocks[4] = {3, 4, 6, 3};
    const uint32_t widths[4] = {64, 128, 256, 512};
    uint32_t inC = 64;
    for (uint32_t s = 0; s < 4; s++) {
        const uint32_t w = widths[s];
        for (uint32_t bidx = 0; bidx < blocks[s]; bidx++) {
            const std::string base =
                "res" + std::to_string(s + 2) + char('a' + bidx);
            const uint32_t stride = (s > 0 && bidx == 0) ? 2 : 1;
            const int blockIn = prev;
            const uint32_t inH = h;

            // Main path: 1x1 (w) -> 3x3 (w, stride) -> 1x1 (4w).
            conv(base + "_branch2a", inC, inH, w, 1, stride, 0, blockIn);
            bnScaleRelu(base + "_branch2a", w, inH / stride, true);
            conv(base + "_branch2b", w, inH / stride, w, 3, 1, 1, prev);
            bnScaleRelu(base + "_branch2b", w, inH / stride, true);
            conv(base + "_branch2c", w, inH / stride, 4 * w, 1, 1, 0,
                 prev);
            bnScaleRelu(base + "_branch2c", 4 * w, inH / stride, false);
            const int mainOut = prev;

            // Shortcut: identity, or projection on the first block.
            int shortcut = blockIn;
            if (bidx == 0) {
                conv(base + "_branch1", inC, inH, 4 * w, 1, stride, 0,
                     blockIn);
                bnScaleRelu(base + "_branch1", 4 * w, inH / stride, false);
                shortcut = prev;
            }

            h = inH / stride;

            Layer el;
            el.kind = LayerKind::Eltwise;
            el.name = base;
            el.figType = "Eltwise";
            el.C = 4 * w;
            el.H = el.W = h;
            el.inputs = {mainOut, shortcut};
            el.hint = resHint(4 * w);
            prev = net.add(el);

            Layer re;
            re.kind = LayerKind::ReLU;
            re.name = base + "_relu";
            re.figType = "Relu";
            re.C = 4 * w;
            re.H = re.W = h;
            re.inputs = {prev};
            re.hint = resHint(4 * w);
            prev = net.add(re);

            inC = 4 * w;
        }
    }

    // Head: global average pool (7x7) -> fc 1000 -> softmax.
    Layer gap;
    gap.kind = LayerKind::Pool;
    gap.name = "pool5";
    gap.figType = "Pooling";
    gap.C = 2048;
    gap.H = gap.W = h;   // 7
    gap.globalAvg = true;
    gap.avg = true;
    gap.P = gap.Q = 1;
    gap.inputs = {prev};
    gap.hint.grid = {2, 1, 1};
    gap.hint.block = {1024, 1, 1};
    gap.hint.chanSrc = kern::ChannelSrc::GridX;
    prev = net.add(gap);

    Layer fc;
    fc.kind = LayerKind::FC;
    fc.name = "fc1000";
    fc.figType = "FC";
    fc.inN = 2048;
    fc.outN = 1000;
    fc.inputs = {prev};
    fc.hint.grid = {1000, 1, 1};
    fc.hint.block = {1, 1, 1};
    prev = net.add(fc);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 1000;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);

    return net;
}

} // namespace tango::nn::models
