#include "nn/models/models.hh"

#include "common/logging.hh"

namespace tango::nn::models {

RnnModel
buildGru(uint32_t seq_len)
{
    // Bitcoin price predictor (paper Table I): scaled scalar prices in,
    // hidden size 100, dense readout to one value.  Table III: GRU Layer
    // runs as one (10,10) block.  seq_len == 2 is the paper's unroll.
    TANGO_ASSERT(seq_len > 0, "RNN needs at least one time step");
    RnnModel m;
    m.name = "gru";
    m.lstm = false;
    m.inputSize = 1;
    m.hidden = 100;
    m.seqLen = seq_len;
    return m;
}

RnnModel
buildLstm(uint32_t seq_len)
{
    // Table III: LSTM Layer runs as one (100,1,1) block.
    TANGO_ASSERT(seq_len > 0, "RNN needs at least one time step");
    RnnModel m;
    m.name = "lstm";
    m.lstm = true;
    m.inputSize = 1;
    m.hidden = 100;
    m.seqLen = seq_len;
    return m;
}

std::vector<std::string>
cnnNames()
{
    return {"cifarnet", "alexnet", "squeezenet", "resnet", "vggnet"};
}

std::vector<std::string>
allNames()
{
    return {"gru", "lstm", "cifarnet", "alexnet", "squeezenet", "resnet",
            "vggnet"};
}

std::vector<std::string>
runnableNames()
{
    std::vector<std::string> names = allNames();
    names.push_back("mobilenet");
    return names;
}

Network
buildCnn(const std::string &name)
{
    if (name == "cifarnet")
        return buildCifarNet();
    if (name == "alexnet")
        return buildAlexNet();
    if (name == "squeezenet")
        return buildSqueezeNet();
    if (name == "resnet")
        return buildResNet50();
    if (name == "vggnet")
        return buildVgg16();
    if (name == "mobilenet")
        return buildMobileNet();
    fatal("unknown CNN '%s'", name.c_str());
}

AnyModel
buildAny(const std::string &name)
{
    if (name == "gru")
        return AnyModel(buildGru());
    if (name == "lstm")
        return AnyModel(buildLstm());
    return AnyModel(buildCnn(name));
}

} // namespace tango::nn::models
