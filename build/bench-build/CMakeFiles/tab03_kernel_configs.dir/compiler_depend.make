# Empty compiler generated dependencies file for tab03_kernel_configs.
# This may be replaced when dependencies are built.
