/**
 * @file
 * rt::JobSpec / rt::JobResult unit tests: JSON round trips, cache-key
 * canonicalization (field order, default normalization, RunKey
 * equivalence — the property that lets serve traffic and bench sweeps
 * share one Engine cache), inline-policy content keying, and the strict
 * envUint() parsing behind EngineOptions::fromEnv().
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"
#include "nn/models/models.hh"
#include "runtime/engine.hh"
#include "runtime/job.hh"
#include "runtime/run_cache.hh"

namespace tango {
namespace {

using rt::JobSpec;
using rt::JobResult;

// ------------------------------------------------------------ JSON round trip

TEST(Job, SpecJsonRoundTrip)
{
    JobSpec spec;
    spec.net = "gru";
    spec.policy = "exact";
    spec.platform = "TX1";
    spec.l1dBytes = 0;
    spec.sched = sim::SchedPolicy::LRR;
    spec.seqLen = 64;
    spec.functional = true;
    spec.profile = true;
    spec.trace = true;

    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(spec.toJson(), back, &err)) << err;
    EXPECT_EQ(back.net, "gru");
    EXPECT_EQ(back.policy, "exact");
    EXPECT_EQ(back.platform, "TX1");
    EXPECT_EQ(back.l1dBytes, 0u);
    EXPECT_EQ(back.sched, sim::SchedPolicy::LRR);
    EXPECT_EQ(back.seqLen, 64u);
    EXPECT_TRUE(back.functional);
    EXPECT_TRUE(back.profile);
    EXPECT_TRUE(back.trace);
    EXPECT_FALSE(back.hasInlinePolicy);
    EXPECT_EQ(back.toJson(), spec.toJson());
    EXPECT_EQ(back.cacheKey().str, spec.cacheKey().str);
}

TEST(Job, SpecFromJsonAcceptsAnyFieldOrderAndUnknownFields)
{
    JobSpec a, b;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(
        R"({"net":"alexnet","policy":"mem","platform":"GK210",)"
        R"("functional":true,"sched":"tlv"})",
        a, &err))
        << err;
    ASSERT_TRUE(JobSpec::fromJson(
        R"({"sched":"tlv","functional":true,"future_knob":123,)"
        R"("platform":"GK210","policy":"mem","net":"alexnet"})",
        b, &err))
        << err;
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.cacheKey().str, b.cacheKey().str);
}

TEST(Job, SpecFromJsonRejectsGarbage)
{
    JobSpec out;
    std::string err;
    EXPECT_FALSE(JobSpec::fromJson("{not json", out, &err));
    EXPECT_FALSE(JobSpec::fromJson("[]", out, &err));
    EXPECT_FALSE(JobSpec::fromJson(R"({"policy":"bench"})", out, &err))
        << "missing net must be rejected";
    EXPECT_FALSE(JobSpec::fromJson(
        R"({"net":"gru","sched":"fifo"})", out, &err))
        << "unknown scheduler must be rejected";
    EXPECT_FALSE(JobSpec::fromJson(
        R"({"net":"gru","policy":"bench","runPolicy":{}})", out, &err))
        << "policy and runPolicy are mutually exclusive";
}

// ----------------------------------------------------------------- cache keys

TEST(Job, CacheKeyMatchesRunKeyString)
{
    // The legacy RunKey and an all-default-extras JobSpec must key
    // character-identically, or serve traffic and bench sweeps would
    // stop sharing one cache.
    const struct
    {
        const char *net, *platform, *policy;
        uint32_t l1d;
        sim::SchedPolicy sched;
    } cases[] = {
        {"alexnet", "GP102", "bench", 64 * 1024, sim::SchedPolicy::GTO},
        {"gru", "TX1", "exact", 0, sim::SchedPolicy::LRR},
        {"vggnet", "GK210", "mem", 128 * 1024, sim::SchedPolicy::TLV},
    };
    for (const auto &c : cases) {
        rt::RunKey key;
        key.net = c.net;
        key.platform = c.platform;
        key.policy = c.policy;
        key.l1dBytes = c.l1d;
        key.sched = c.sched;

        JobSpec spec;
        spec.net = c.net;
        spec.platform = c.platform;
        spec.policy = c.policy;
        spec.l1dBytes = c.l1d;
        spec.sched = c.sched;
        EXPECT_EQ(spec.cacheKey().str, key.str());
    }
}

TEST(Job, CacheKeyNormalizesDefaults)
{
    JobSpec spec;
    spec.net = "gru";
    const std::string base = spec.cacheKey().str;

    // An explicit default seqLen is the same simulation.
    JobSpec explicitSeq = spec;
    explicitSeq.seqLen = nn::models::kDefaultRnnSeqLen;
    EXPECT_EQ(explicitSeq.cacheKey().str, base);

    // A different seqLen is not.
    JobSpec longSeq = spec;
    longSeq.seqLen = 64;
    EXPECT_NE(longSeq.cacheKey().str, base);
    EXPECT_NE(longSeq.cacheKey().str.find("/seq=64"), std::string::npos);

    // CNNs ignore seqLen entirely.
    JobSpec cnn;
    cnn.net = "alexnet";
    JobSpec cnnSeq = cnn;
    cnnSeq.seqLen = 999;
    EXPECT_EQ(cnnSeq.cacheKey().str, cnn.cacheKey().str);

    // trace observes a run without changing it: excluded from the key.
    JobSpec traced = spec;
    traced.trace = true;
    EXPECT_EQ(traced.cacheKey().str, base);

    // functional and profile change what is simulated/recorded.
    JobSpec fn = spec;
    fn.functional = true;
    EXPECT_NE(fn.cacheKey().str, base);
    JobSpec prof = spec;
    prof.profile = true;
    EXPECT_NE(prof.cacheKey().str, base);
    EXPECT_NE(fn.cacheKey().str, prof.cacheKey().str);
}

TEST(Job, InlinePolicyKeysByContent)
{
    JobSpec a;
    a.net = "cifarnet";
    a.hasInlinePolicy = true;
    a.inlinePolicy = rt::RunPolicy::named("bench");

    JobSpec b = a;
    b.inlinePolicy = rt::RunPolicy::named("bench");   // rebuilt, equal
    EXPECT_EQ(a.cacheKey().str, b.cacheKey().str);

    JobSpec c = a;
    c.inlinePolicy.sim.maxCycles = 12345;
    EXPECT_NE(c.cacheKey().str, a.cacheKey().str);

    // Inline policies round-trip through JSON with the key preserved.
    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(a.toJson(), back, &err)) << err;
    EXPECT_TRUE(back.hasInlinePolicy);
    EXPECT_EQ(back.cacheKey().str, a.cacheKey().str);
}

// ----------------------------------------------------------- accuracy tiers

TEST(Job, TierJsonRoundTrip)
{
    JobSpec spec;
    spec.net = "alexnet";
    spec.tier = rt::Tier::Estimate;
    spec.maxRelErr = 0.1;

    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(spec.toJson(), back, &err)) << err;
    EXPECT_EQ(back.tier, rt::Tier::Estimate);
    EXPECT_EQ(back.maxRelErr, 0.1);
    EXPECT_EQ(back.toJson(), spec.toJson());

    spec.tier = rt::Tier::Replay;
    spec.maxRelErr = 0.0;
    ASSERT_TRUE(JobSpec::fromJson(spec.toJson(), back, &err)) << err;
    EXPECT_EQ(back.tier, rt::Tier::Replay);
}

TEST(Job, TierDefaultElidedFromJsonAndKey)
{
    // A default-tier spec serializes without any tier field, so specs
    // written before tiers existed parse to byte-identical JSON...
    JobSpec spec;
    spec.net = "alexnet";
    EXPECT_EQ(spec.toJson().find("tier"), std::string::npos);
    EXPECT_EQ(spec.toJson().find("maxRelErr"), std::string::npos);

    JobSpec legacy;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(
        R"({"net":"alexnet","policy":"bench","platform":"GP102"})",
        legacy, &err))
        << err;
    EXPECT_EQ(legacy.tier, rt::Tier::Sim);
    EXPECT_EQ(legacy.toJson(), spec.toJson());

    // ...and sim-tier cache keys are unchanged: serve traffic and the
    // bench sweeps keep sharing one Engine cache.
    rt::RunKey key;
    key.net = "alexnet";
    EXPECT_EQ(spec.cacheKey().str, key.str());

    // Non-default tiers suffix the key (distinct result spaces).
    JobSpec est = spec;
    est.tier = rt::Tier::Estimate;
    EXPECT_NE(est.cacheKey().str, spec.cacheKey().str);
    EXPECT_NE(est.cacheKey().str.find("/tier=estimate"),
              std::string::npos);
    JobSpec replay = spec;
    replay.tier = rt::Tier::Replay;
    EXPECT_NE(replay.cacheKey().str.find("/tier=replay"),
              std::string::npos);
    EXPECT_NE(est.cacheKey().str, replay.cacheKey().str);

    // A requested error bound keys separately too: a tighter bound can
    // change which tier actually serves the job.
    JobSpec bounded = est;
    bounded.maxRelErr = 0.05;
    EXPECT_NE(bounded.cacheKey().str, est.cacheKey().str);
    EXPECT_NE(bounded.cacheKey().str.find("/err=0.05"),
              std::string::npos);
}

TEST(Job, TierUnknownNameRejected)
{
    JobSpec out;
    std::string err;
    EXPECT_FALSE(JobSpec::fromJson(
        R"({"net":"alexnet","tier":"quantum"})", out, &err));
    EXPECT_NE(err.find("unknown tier"), std::string::npos) << err;
    EXPECT_FALSE(JobSpec::fromJson(
        R"({"net":"alexnet","tier":3})", out, &err))
        << "tier must be a string";

    rt::Tier t;
    EXPECT_TRUE(rt::tierFromName("sim", t));
    EXPECT_EQ(t, rt::Tier::Sim);
    EXPECT_TRUE(rt::tierFromName("replay", t));
    EXPECT_EQ(t, rt::Tier::Replay);
    EXPECT_TRUE(rt::tierFromName("estimate", t));
    EXPECT_EQ(t, rt::Tier::Estimate);
    EXPECT_FALSE(rt::tierFromName("Sim", t));
    EXPECT_FALSE(rt::tierFromName("", t));
}

TEST(Job, TierValidate)
{
    JobSpec spec;
    spec.net = "alexnet";
    spec.tier = rt::Tier::Estimate;
    EXPECT_EQ(spec.validate(), "");

    // The estimate tier produces statistics, not tensors or profiles.
    JobSpec fn = spec;
    fn.functional = true;
    EXPECT_NE(fn.validate(), "");
    JobSpec prof = spec;
    prof.profile = true;
    EXPECT_NE(prof.validate(), "");

    // maxRelErr is a fraction, and only meaningful for estimates.
    JobSpec bad = spec;
    bad.maxRelErr = 1.5;
    EXPECT_NE(bad.validate(), "");
    bad.maxRelErr = -0.1;
    EXPECT_NE(bad.validate(), "");
    JobSpec simBound;
    simBound.net = "alexnet";
    simBound.maxRelErr = 0.1;
    EXPECT_NE(simBound.validate(), "");
}

// ------------------------------------------------------------------ validate

TEST(Job, Validate)
{
    JobSpec spec;
    spec.net = "alexnet";
    EXPECT_EQ(spec.validate(), "");

    JobSpec badNet = spec;
    badNet.net = "transformer";
    EXPECT_NE(badNet.validate(), "");

    JobSpec badPolicy = spec;
    badPolicy.policy = "warp9";
    EXPECT_NE(badPolicy.validate(), "");

    JobSpec badPlatform = spec;
    badPlatform.platform = "H100";
    EXPECT_NE(badPlatform.validate(), "");

    JobSpec badSeq = spec;
    badSeq.net = "gru";
    badSeq.seqLen = (1u << 20) + 1;
    EXPECT_NE(badSeq.validate(), "");

    // An inline policy needs no registry name.
    JobSpec inlineP = spec;
    inlineP.policy = "not-registered";
    inlineP.hasInlinePolicy = true;
    inlineP.inlinePolicy = rt::RunPolicy::named("bench");
    EXPECT_EQ(inlineP.validate(), "");
}

// ------------------------------------------------------------------ JobResult

TEST(Job, ResultJsonRoundTrip)
{
    rt::NetRun run;
    run.netName = "cifarnet";
    run.totalTimeSec = 0.001234567890123456;
    run.totalEnergyJ = 3.25;
    run.peakPowerW = 17.5;
    run.deviceBytes = 123456;
    run.totals.add("sim.cycles", 987654.0);
    run.totals.add("mem.l2_misses", 42.0);

    JobResult res;
    res.ok = true;
    res.served = "sim";
    res.latencyMs = 12.5;
    res.run = run;

    JobResult back;
    std::string err;
    ASSERT_TRUE(JobResult::fromJson(res.toJson(), back, &err)) << err;
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.served, "sim");
    EXPECT_EQ(back.latencyMs, 12.5);
    // The embedded NetRun is the run-cache serialization: comparing the
    // serialized forms compares every field bit-exactly.
    EXPECT_EQ(rt::serializeNetRun(back.run), rt::serializeNetRun(run));
}

TEST(Job, ResultErrorRoundTrip)
{
    JobResult res;
    res.ok = false;
    res.error = "queue_full";
    res.served = "reject";

    JobResult back;
    std::string err;
    ASSERT_TRUE(JobResult::fromJson(res.toJson(), back, &err)) << err;
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, "queue_full");
    EXPECT_EQ(back.served, "reject");
}

// ------------------------------------------------------------ strict env knobs

using JobDeathTest = ::testing::Test;

TEST(JobDeathTest, EnvUintRejectsGarbage)
{
    setenv("TANGO_TEST_KNOB", "abc", 1);
    EXPECT_DEATH(envUint("TANGO_TEST_KNOB", 0), "non-negative integer");
    setenv("TANGO_TEST_KNOB", "12abc", 1);
    EXPECT_DEATH(envUint("TANGO_TEST_KNOB", 0), "non-negative integer");
    setenv("TANGO_TEST_KNOB", "-3", 1);
    EXPECT_DEATH(envUint("TANGO_TEST_KNOB", 0), "non-negative integer");
    setenv("TANGO_TEST_KNOB", "999999999999999999999999", 1);
    EXPECT_DEATH(envUint("TANGO_TEST_KNOB", 0), "out of range");
    unsetenv("TANGO_TEST_KNOB");
}

TEST(JobDeathTest, EnvUintAcceptsPlainIntegersAndDefaults)
{
    unsetenv("TANGO_TEST_KNOB");
    EXPECT_EQ(envUint("TANGO_TEST_KNOB", 7), 7u);
    setenv("TANGO_TEST_KNOB", "", 1);
    EXPECT_EQ(envUint("TANGO_TEST_KNOB", 7), 7u);
    setenv("TANGO_TEST_KNOB", "42", 1);
    EXPECT_EQ(envUint("TANGO_TEST_KNOB", 7), 42u);
    unsetenv("TANGO_TEST_KNOB");
}

TEST(JobDeathTest, EngineOptionsFromEnvRejectsMalformedThreads)
{
    setenv("TANGO_ENGINE_THREADS", "abc", 1);
    EXPECT_DEATH(rt::EngineOptions::fromEnv(), "TANGO_ENGINE_THREADS");
    unsetenv("TANGO_ENGINE_THREADS");

    setenv("TANGO_ENGINE_CACHE_MAX_MB", "10MB", 1);
    EXPECT_DEATH(rt::EngineOptions::fromEnv(), "TANGO_ENGINE_CACHE_MAX_MB");
    unsetenv("TANGO_ENGINE_CACHE_MAX_MB");
}

} // namespace
} // namespace tango
