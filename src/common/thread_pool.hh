/**
 * @file
 * A fixed-size worker thread pool with a FIFO task queue.
 *
 * This is the execution substrate of rt::Engine: simulation jobs are
 * embarrassingly parallel (each one owns a private sim::Gpu), so all the
 * pool has to provide is N workers, a queue, and a way to wait for
 * drain.  Tasks must not throw — wrap fallible work in a try/catch and
 * route the exception through a promise (Engine does exactly that).
 */

#ifndef TANGO_COMMON_THREAD_POOL_HH
#define TANGO_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tango {

/** A fixed pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins the workers after the queue drains. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** @return the number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable workCv_;   ///< workers sleep here
    std::condition_variable idleCv_;   ///< wait() sleeps here
    unsigned busy_ = 0;                ///< tasks currently executing
    bool stop_ = false;
};

} // namespace tango

#endif // TANGO_COMMON_THREAD_POOL_HH
