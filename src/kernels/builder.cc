#include "kernels/builder.hh"

#include <bit>

#include "common/logging.hh"

namespace tango::kern {

Builder::Builder(std::string name) : prog_(std::make_shared<Program>())
{
    prog_->name = std::move(name);
}

Reg
Builder::reg()
{
    if (!freeRegs_.empty()) {
        Reg r{freeRegs_.back()};
        freeRegs_.pop_back();
        return r;
    }
    TANGO_ASSERT(nextReg_ < 250, "register budget exceeded");
    Reg r{static_cast<uint8_t>(nextReg_++)};
    prog_->numRegs = nextReg_;
    return r;
}

void
Builder::release(Reg r)
{
    if (r.valid())
        freeRegs_.push_back(r.idx);
}

PredReg
Builder::pred()
{
    TANGO_ASSERT(nextPred_ < 16, "predicate budget exceeded");
    PredReg p{static_cast<uint8_t>(nextPred_++)};
    prog_->numPreds = nextPred_;
    return p;
}

uint32_t
Builder::shared(uint32_t bytes)
{
    const uint32_t off = prog_->smemBytes;
    prog_->smemBytes += (bytes + 3) & ~3u;
    return off;
}

uint32_t
Builder::constant(uint32_t bytes)
{
    const uint32_t off = prog_->cmemBytes;
    prog_->cmemBytes += (bytes + 3) & ~3u;
    return off;
}

void
Builder::guard(PredReg p, bool negate)
{
    guard_ = p.idx;
    guardNeg_ = negate;
}

void
Builder::endGuard()
{
    guard_ = sim::noPred;
    guardNeg_ = false;
}

Builder::Mark
Builder::mark(const std::string &label)
{
    Mark m(this, curLabel_);
    curLabel_ = prog_->debug.intern(label);
    return m;
}

void
Builder::recordLabel()
{
    prog_->debug.pcLabel.push_back(curLabel_);
}

Instr &
Builder::push(Instr ins)
{
    TANGO_ASSERT(!finished_, "emit after finish()");
    ins.pred = guard_;
    ins.predNeg = guardNeg_;
    prog_->code.push_back(ins);
    recordLabel();
    return prog_->code.back();
}

Reg
Builder::movS(SReg s)
{
    Reg d = reg();
    Instr ins;
    ins.op = Op::Mov;
    ins.type = DType::U32;
    ins.dst = d.idx;
    ins.sreg = s;
    push(ins);
    return d;
}

Reg
Builder::immU(uint32_t v)
{
    Reg d = reg();
    movU(d, v);
    return d;
}

Reg
Builder::immF(float v)
{
    Reg d = reg();
    movF(d, v);
    return d;
}

void
Builder::movR(Reg d, Reg a, DType t)
{
    Instr ins;
    ins.op = Op::Mov;
    ins.type = t;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    push(ins);
}

void
Builder::movU(Reg d, uint32_t v)
{
    Instr ins;
    ins.op = Op::Mov;
    ins.type = DType::U32;
    ins.dst = d.idx;
    ins.src[0] = Instr::immReg;
    ins.imm = v;
    push(ins);
}

void
Builder::movF(Reg d, float v)
{
    Instr ins;
    ins.op = Op::Mov;
    ins.type = DType::F32;
    ins.dst = d.idx;
    ins.src[0] = Instr::immReg;
    ins.imm = std::bit_cast<uint32_t>(v);
    push(ins);
}

void
Builder::emit3(Op op, DType t, Reg d, Reg a, Reg b)
{
    Instr ins;
    ins.op = op;
    ins.type = t;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    ins.src[1] = b.idx;
    push(ins);
}

void
Builder::emit3i(Op op, DType t, Reg d, Reg a, uint32_t imm)
{
    Instr ins;
    ins.op = op;
    ins.type = t;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    ins.src[1] = Instr::immReg;
    ins.imm = imm;
    push(ins);
}

void
Builder::emit3f(Op op, Reg d, Reg a, float imm)
{
    Instr ins;
    ins.op = op;
    ins.type = DType::F32;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    ins.src[1] = Instr::immReg;
    ins.imm = std::bit_cast<uint32_t>(imm);
    push(ins);
}

void
Builder::emit2(Op op, DType t, Reg d, Reg a)
{
    Instr ins;
    ins.op = op;
    ins.type = t;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    push(ins);
}

void
Builder::mad(DType t, Reg d, Reg a, Reg b, Reg c)
{
    Instr ins;
    ins.op = Op::Mad;
    ins.type = t;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    ins.src[1] = b.idx;
    ins.src[2] = c.idx;
    push(ins);
}

Reg
Builder::add(DType t, Reg a, Reg b)
{
    Reg d = reg();
    emit3(Op::Add, t, d, a, b);
    return d;
}

Reg
Builder::addi(DType t, Reg a, uint32_t imm)
{
    Reg d = reg();
    emit3i(Op::Add, t, d, a, imm);
    return d;
}

Reg
Builder::mul(DType t, Reg a, Reg b)
{
    Reg d = reg();
    emit3(Op::Mul, t, d, a, b);
    return d;
}

Reg
Builder::muli(DType t, Reg a, uint32_t imm)
{
    Reg d = reg();
    emit3i(Op::Mul, t, d, a, imm);
    return d;
}

Reg
Builder::shli(Reg a, uint32_t sh)
{
    Reg d = reg();
    emit3i(Op::Shl, DType::U32, d, a, sh);
    return d;
}

Reg
Builder::madr(DType t, Reg a, Reg b, Reg c)
{
    Reg d = reg();
    mad(t, d, a, b, c);
    return d;
}

Reg
Builder::cvt(DType to, DType from, Reg a)
{
    Reg d = reg();
    cvtTo(to, from, d, a);
    return d;
}

void
Builder::cvtTo(DType to, DType from, Reg d, Reg a)
{
    Instr ins;
    ins.op = Op::Cvt;
    ins.type = to;
    ins.type2 = from;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    push(ins);
}

void
Builder::setp(PredReg p, DType t, Cmp c, Reg a, Reg b)
{
    Instr ins;
    ins.op = Op::Set;
    ins.type = t;
    ins.cmp = c;
    ins.dst = p.idx;
    ins.dstIsPred = true;
    ins.src[0] = a.idx;
    ins.src[1] = b.idx;
    push(ins);
}

void
Builder::setpi(PredReg p, DType t, Cmp c, Reg a, uint32_t imm)
{
    Instr ins;
    ins.op = Op::Set;
    ins.type = t;
    ins.cmp = c;
    ins.dst = p.idx;
    ins.dstIsPred = true;
    ins.src[0] = a.idx;
    ins.src[1] = Instr::immReg;
    ins.imm = imm;
    push(ins);
}

void
Builder::selp(DType t, Reg d, Reg a, Reg b, PredReg p)
{
    Instr ins;
    ins.op = Op::Selp;
    ins.type = t;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    ins.src[1] = b.idx;
    ins.src[2] = p.idx;
    push(ins);
}

void
Builder::ld(DType t, Space sp, Reg d, Reg addr, uint32_t off)
{
    Instr ins;
    ins.op = Op::Ld;
    ins.type = t;
    ins.space = sp;
    ins.dst = d.idx;
    ins.src[0] = addr.idx;
    ins.imm = off;
    push(ins);
}

void
Builder::st(DType t, Space sp, Reg addr, Reg v, uint32_t off)
{
    Instr ins;
    ins.op = Op::St;
    ins.type = t;
    ins.space = sp;
    ins.src[0] = addr.idx;
    ins.src[1] = v.idx;
    ins.imm = off;
    push(ins);
}

Reg
Builder::param(uint32_t index)
{
    Reg d = reg();
    Instr ins;
    ins.op = Op::Ld;
    ins.type = DType::U32;
    ins.space = Space::Param;
    ins.dst = d.idx;
    ins.src[0] = Instr::immReg;
    ins.imm = index * 4;
    push(ins);
    return d;
}

Reg
Builder::ldc(DType t, uint32_t off)
{
    Reg d = reg();
    Instr ins;
    ins.op = Op::Ld;
    ins.type = t;
    ins.space = Space::Const;
    ins.dst = d.idx;
    ins.src[0] = Instr::immReg;
    ins.imm = off;
    push(ins);
    return d;
}

void
Builder::setr(DType t, Cmp c, Reg d, Reg a, Reg b)
{
    Instr ins;
    ins.op = Op::Set;
    ins.type = t;
    ins.cmp = c;
    ins.dst = d.idx;
    ins.src[0] = a.idx;
    ins.src[1] = b.idx;
    push(ins);
}

Label
Builder::label()
{
    Label l{static_cast<int>(labelPos_.size())};
    labelPos_.push_back(-1);
    return l;
}

void
Builder::bind(Label l)
{
    TANGO_ASSERT(l.id >= 0 && labelPos_[l.id] < 0, "label rebind");
    labelPos_[l.id] = static_cast<int>(prog_->code.size());
}

void
Builder::bra(Label l)
{
    Instr ins;
    ins.op = Op::Bra;
    push(ins);
    fixups_.emplace_back(prog_->code.size() - 1, l.id);
}

void
Builder::braIf(Label l, PredReg p, bool negate)
{
    Instr ins;
    ins.op = Op::Bra;
    ins.pred = p.idx;       // branch condition, applied regardless of guard
    ins.predNeg = negate;
    prog_->code.push_back(ins);
    recordLabel();
    fixups_.emplace_back(prog_->code.size() - 1, l.id);
}

void
Builder::ssy(Label reconv)
{
    Instr ins;
    ins.op = Op::Ssy;
    push(ins);
    fixups_.emplace_back(prog_->code.size() - 1, reconv.id);
}

void
Builder::bar()
{
    Instr ins;
    ins.op = Op::Bar;
    push(ins);
}

void
Builder::retp()
{
    Instr ins;
    ins.op = Op::Retp;
    push(ins);
}

void
Builder::nop()
{
    Instr ins;
    ins.op = Op::Nop;
    push(ins);
}

void
Builder::exit()
{
    Instr ins;
    ins.op = Op::Exit;
    push(ins);
}

void
Builder::forLoop(Reg i, uint32_t begin, Reg end,
                 const std::function<void()> &body)
{
    // Loop counters use s32 arithmetic, like `for (int i = ...)` in the
    // original CUDA C (this is where the s32 share of Fig 10 comes from).
    movU(i, begin);
    Label head = label();
    Label done = label();
    PredReg p = pred();
    bind(head);
    setp(p, DType::S32, Cmp::Ge, i, end);
    braIf(done, p);
    body();
    emit3i(Op::Add, DType::S32, i, i, 1);
    bra(head);
    bind(done);
}

void
Builder::forLoopI(Reg i, uint32_t begin, uint32_t end,
                  const std::function<void()> &body)
{
    movU(i, begin);
    Label head = label();
    Label done = label();
    PredReg p = pred();
    bind(head);
    setpi(p, DType::S32, Cmp::Ge, i, end);
    braIf(done, p);
    body();
    emit3i(Op::Add, DType::S32, i, i, 1);
    bra(head);
    bind(done);
}

std::shared_ptr<Program>
Builder::finish()
{
    TANGO_ASSERT(!finished_, "double finish()");
    if (prog_->code.empty() || prog_->code.back().op != Op::Exit)
        exit();
    for (const auto &[pc, id] : fixups_) {
        TANGO_ASSERT(id >= 0 && labelPos_[id] >= 0, "unbound label");
        prog_->code[pc].target = labelPos_[id];
    }
    finished_ = true;
    prog_->validate();
    return prog_;
}

} // namespace tango::kern
