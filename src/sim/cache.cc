#include "sim/cache.hh"

#include "common/logging.hh"

namespace tango::sim {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.sizeBytes > 0) {
        TANGO_ASSERT(cfg_.lineBytes > 0 && cfg_.assoc > 0, "bad geometry");
        sets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.assoc);
        TANGO_ASSERT(sets_ > 0, "cache smaller than one set");
        lines_.resize(size_t(sets_) * cfg_.assoc);
    }
    mshrs_.resize(cfg_.mshrs);
}

void
Cache::retireMshrs(uint64_t now)
{
    for (auto &m : mshrs_) {
        if (m.valid && m.fillCycle <= now)
            m.valid = false;
    }
}

Cache::Result
Cache::access(uint32_t addr, bool write, uint64_t now)
{
    Result res;
    stats_.accesses++;
    if (write)
        stats_.writeAccesses++;
    if (bypassed()) {
        stats_.misses++;
        return res;
    }
    retireMshrs(now);

    const uint64_t la = lineAddr(addr);
    const uint32_t set = static_cast<uint32_t>(la % sets_);
    Line *base = &lines_[size_t(set) * cfg_.assoc];

    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        Line &l = base[w];
        if (l.valid && l.tag == la) {
            l.lastUse = ++useClock_;
            stats_.hits++;
            res.hit = true;
            return res;
        }
    }

    // Miss: pick an invalid way, else the LRU way.
    Line *victim = base;
    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }

    stats_.misses++;

    // A miss on a line already being fetched hits in the MSHR file.
    for (const auto &m : mshrs_) {
        if (m.valid && m.lineAddr == la) {
            res.mshrMerged = true;
            break;
        }
    }

    // Fill (allocate) unless this is a no-allocate write.
    if (!write || cfg_.writeAllocate) {
        victim->valid = true;
        victim->tag = la;
        victim->lastUse = ++useClock_;
    }
    return res;
}

bool
Cache::mshrAvailable(uint32_t addr, uint64_t now)
{
    if (bypassed())
        return true;
    retireMshrs(now);
    const uint64_t la = lineAddr(addr);
    for (const auto &m : mshrs_) {
        if (m.valid && m.lineAddr == la)
            return true;    // merge
    }
    for (const auto &m : mshrs_) {
        if (!m.valid)
            return true;
    }
    stats_.mshrFullEvents++;
    return false;
}

void
Cache::allocateMshr(uint32_t addr, uint64_t fill)
{
    if (bypassed())
        return;
    const uint64_t la = lineAddr(addr);
    for (auto &m : mshrs_) {
        if (m.valid && m.lineAddr == la) {
            // Merged: extend to the later fill time.
            if (fill > m.fillCycle)
                m.fillCycle = fill;
            return;
        }
    }
    for (auto &m : mshrs_) {
        if (!m.valid) {
            m.valid = true;
            m.lineAddr = la;
            m.fillCycle = fill;
            return;
        }
    }
    // Caller must check mshrAvailable() first; dropping the reservation
    // only makes timing slightly optimistic, so warn rather than die.
    warn("MSHR allocation with full file (line 0x%llx)",
         static_cast<unsigned long long>(la));
}

uint64_t
Cache::pendingFillCycle(uint32_t addr, uint64_t now)
{
    if (bypassed())
        return 0;
    retireMshrs(now);
    const uint64_t la = lineAddr(addr);
    for (const auto &m : mshrs_) {
        if (m.valid && m.lineAddr == la)
            return m.fillCycle;
    }
    return 0;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    for (auto &m : mshrs_)
        m.valid = false;
    stats_ = CacheStats{};
    useClock_ = 0;
}

} // namespace tango::sim
