#!/usr/bin/env bash
# One-command CI gate: default build + full test suite (including the
# golden-stats corpus) + the TANGO_SIM_SHARDS={1,2,4} golden matrix +
# the parallel-determinism tier + a tango-trace export validated as
# JSON + ThreadSanitizer engine/trace/parallel tests.
#
#   scripts/ci.sh            # everything
#   SKIP_TSAN=1 scripts/ci.sh  # skip the sanitizer stage (e.g. no tsan rt)
#   SKIP_SERVE=1 scripts/ci.sh # skip the tango-serve daemon stage
#   SKIP_FIT=1 scripts/ci.sh   # skip the estimate-tier fit/check stage
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== configure + build (default preset) ==="
cmake --preset default
cmake --build --preset default -j

echo "=== tier-1 tests (includes -L golden and -L trace) ==="
ctest --preset default -j

echo "=== shard matrix: golden corpus at TANGO_SIM_SHARDS=1,2,4 ==="
# Intra-run CTA sharding is pinned per shard count: K=1 against the
# base fixtures, K>1 against the <net>.k<K>.json corpus (the documented
# delta policy — see DESIGN.md "Intra-run sharding").
for k in 1 2 4; do
    echo "--- TANGO_SIM_SHARDS=$k ---"
    TANGO_SIM_SHARDS=$k ctest --test-dir build -L golden \
        --output-on-failure -j
done

echo "=== parallel-determinism tier (sharded runs are bit-reproducible) ==="
ctest --test-dir build -L parallel --output-on-failure -j

echo "=== tango-trace export validates as JSON ==="
tracedir=$(mktemp -d)
build/tools/tango-trace --out "$tracedir" fig alexnet
python3 -m json.tool "$tracedir/alexnet.trace.json" > /dev/null
echo "alexnet.trace.json: valid"

echo "=== launch memoization replays steady-state RNN timesteps ==="
build/tools/tango-trace --summary --out "$tracedir" gru |
    grep -E 'launches: replayed=[1-9][0-9]* simulated=[1-9]'
rm -rf "$tracedir"

echo "=== tango-prof hotspot attribution (folded flamegraph export) ==="
profdir=$(mktemp -d)
build/tools/tango-prof --folded "$profdir/alexnet.folded" fig alexnet \
    > "$profdir/alexnet.txt"
# Aggregate the folded stacks ("net;layer;kernel;label cycles") by label.
# The hottest label of the whole network must be a MAC inner loop, and
# restricted to the conv layers it must be conv.mac (alexnet's fc6 is
# memory-bound and tops the whole-network profile).
top=$(awk '{n = split($1, a, ";"); s[a[n]] += $2}
           END {best = ""
                for (l in s) if (best == "" || s[l] > s[best]) best = l
                print best}' "$profdir/alexnet.folded")
echo "top hotspot label: $top"
echo "$top" | grep -qE '\.mac$'
convtop=$(awk -F';' '$2 ~ /^conv/ {split($4, b, " "); s[b[1]] += b[2]}
           END {best = ""
                for (l in s) if (best == "" || s[l] > s[best]) best = l
                print best}' "$profdir/alexnet.folded")
echo "top conv-layer label: $convtop"
[[ "$convtop" == "conv.mac" ]]
rm -rf "$profdir"

if [[ "${SKIP_SERVE:-0}" != "1" ]]; then
    echo "=== tango-serve: dedup, cache hits, metrics scrape, drain ==="
    servedir=$(mktemp -d)
    build/tools/tango-serve --port 0 --port-file "$servedir/port" &
    serve_pid=$!
    for _ in $(seq 100); do [[ -s "$servedir/port" ]] && break; sleep 0.1; done
    [[ -s "$servedir/port" ]] || { echo "tango-serve never bound" >&2; exit 1; }
    build/tools/tango-load --port "$(cat "$servedir/port")" \
        --nets gru,lstm --conns 4 --requests 25 --json "$servedir/load.json"
    # Every warm request must be served from cache/dedup: the engine's
    # miss counter (actual simulations) stays at the cold job count.
    python3 - "$servedir/load.json" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
stats, warm = rec["server_stats"], rec["warm"]
assert rec["cold"]["ok"] == rec["jobs"], rec["cold"]
assert warm["ok"] == warm["requests"] and warm["requests"] > 0, warm
assert stats["cache_misses"] == rec["jobs"], stats
assert stats["cache_mem_hits"] >= warm["requests"], stats
assert stats["failures"] == 0, stats
print("serve: %d jobs simulated once, %d warm hits (hit rate %.3f)"
      % (stats["cache_misses"], stats["cache_mem_hits"],
         stats["cache_hit_rate"]))
EOF
    # Scrape the live metrics frame (tango-top --raw = one Prometheus
    # scrape) and assert it agrees with itself and the stats endpoint.
    build/tools/tango-top --raw --port "$(cat "$servedir/port")" \
        > "$servedir/metrics.prom"
    python3 - "$servedir/metrics.prom" "$servedir/load.json" <<'EOF'
import json, sys
series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name_labels, value = line.rsplit(" ", 1)
    series[name_labels] = float(value)

def total(family):
    return sum(v for k, v in series.items()
               if k == family or k.startswith(family + "{"))

served = total("tango_serve_served_total")
tiers = total("tango_serve_tier_total")
assert served == tiers > 0, (served, tiers)
rejects = total("tango_serve_rejects_total")
stats = json.load(open(sys.argv[2]))["server_stats"]
assert rejects == stats["rejected_queue_full"] + stats["rejected_draining"], \
    (rejects, stats)
assert served == (stats["served_sim"] + stats["served_join"] +
                  stats["served_mem"] + stats["served_disk"]), (served, stats)
depth = series.get("tango_engine_inflight_sims", -1)
assert depth == 0, "queue depth %r after drain" % depth
assert total("tango_serve_latency_us_count") == served, series
print("metrics scrape: %d served == tier sum, %d rejects, queue drained"
      % (served, rejects))
EOF
    # SIGTERM must drain gracefully and exit 0 (set -e enforces it).
    kill -TERM "$serve_pid"
    wait "$serve_pid"
    echo "tango-serve drained cleanly on SIGTERM"
    rm -rf "$servedir"
fi

if [[ "${SKIP_FIT:-0}" != "1" ]]; then
    echo "=== tango-fit: estimate tier holds its accuracy contract ==="
    # Fit fresh models from a reduced sweep, then check them against
    # fresh cycle-level truth: per-layer p95 relative cycle error <= 15%
    # on alexnet + gru, and estimate-tier per-figType cycle totals must
    # rank layers exactly as the simulator does.  The engine disk cache
    # is shared between the two steps so the check's ground-truth sims
    # replay from the sweep instead of re-simulating.
    fitdir=$(mktemp -d)
    TANGO_ENGINE_CACHE="$fitdir/cache.json" \
        build/tools/tango-fit --reduced --out "$fitdir/weights"
    TANGO_ENGINE_CACHE="$fitdir/cache.json" \
        build/tools/tango-fit --check --weights "$fitdir/weights" \
        --nets alexnet,gru --max-p95 0.15
    rm -rf "$fitdir"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
    echo "=== ThreadSanitizer engine + trace tests ==="
    cmake --preset tsan
    cmake --build --preset tsan -j
    ctest --preset tsan -j
fi

echo "=== CI gate passed ==="
