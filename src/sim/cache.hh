/**
 * @file
 * Set-associative cache model with LRU replacement and MSHR tracking.
 *
 * Used for both the per-SM L1D and the GPU-shared L2.  The model is a
 * state-plus-latency model (not a full event-driven pipeline): a lookup
 * updates tag state and reports hit/miss; outstanding misses occupy MSHR
 * slots until an absolute fill cycle, and a full MSHR file surfaces as a
 * memory_throttle stall in the core.
 *
 * Storage layout is optimized for the simulator's hot path: tags live in
 * one flat contiguous array (a set's ways are adjacent, so the hit scan
 * is a short linear sweep of one cache line of host memory), power-of-two
 * set counts index with a mask, in-flight MSHRs are kept as a compact
 * prefix so scans touch only live entries, and callers may carry a
 * one-entry way predictor (WayHint) that short-circuits the set lookup
 * when a warp re-touches the line it used last.  None of this changes any
 * observable decision: hits, misses, merges, LRU victims and fill cycles
 * are bit-identical to the naive per-set-node implementation (pinned by
 * tests/golden).
 */

#ifndef TANGO_SIM_CACHE_HH
#define TANGO_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tango::sim {

/** Cache geometry + MSHR count. */
struct CacheConfig
{
    uint32_t sizeBytes = 64 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = 128;
    uint32_t mshrs = 32;
    bool writeAllocate = false;     ///< L1: write-through no-allocate
};

/** Running counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writeAccesses = 0;
    uint64_t mshrFullEvents = 0;

    double
    missRatio() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }
};

/** One set-associative LRU cache with a finite MSHR file. */
class Cache
{
  public:
    /** @param cfg geometry; sizeBytes == 0 builds a pass-through (bypass). */
    explicit Cache(const CacheConfig &cfg);

    /** Lookup result. */
    struct Result
    {
        bool hit = false;
        bool mshrMerged = false;    ///< miss merged into an in-flight line
        /** Pending fill cycle of the accessed line (0 = not in flight).
         *  Equals pendingFillCycle(addr, now) at the access, saving the
         *  separate MSHR scan on the hit path. */
        uint64_t fillCycle = 0;
    };

    /** One-entry way predictor, owned by the caller (typically one per
     *  warp): remembers the flat tag index of the last line touched. */
    struct WayHint
    {
        uint64_t lineAddr = ~0ull;
        uint32_t index = 0;
    };

    /**
     * Probe and update the cache for one line-sized access.
     * @param addr byte address (any byte within the line).
     * @param write whether the access is a store.
     * @param now current core cycle (retires expired MSHRs first).
     * @param hint optional way predictor; purely an access accelerator —
     *        results are identical with or without it.
     * @return hit/miss, MSHR-merge and pending-fill information.
     */
    Result access(uint32_t addr, bool write, uint64_t now,
                  WayHint *hint = nullptr);

    /** @return whether an MSHR slot (or mergeable entry) is available for
     *  @p addr at cycle @p now; counts a throttle event when not. */
    bool mshrAvailable(uint32_t addr, uint64_t now);

    /** Reserve an MSHR for the line of @p addr until cycle @p fill.
     *  @p now is the requesting access's cycle (trace stamping only). */
    void allocateMshr(uint32_t addr, uint64_t fill, uint64_t now);

    /** @return the pending fill cycle for @p addr's line, or 0 when the
     *  line is not (or no longer) in flight.  A tag "hit" on a line whose
     *  fill is pending must wait for the fill, not the hit latency. */
    uint64_t pendingFillCycle(uint32_t addr, uint64_t now);

    /** @return true when the cache is a bypass shim (size 0). */
    bool bypassed() const { return sets_ == 0; }

    /** Reset tags, MSHRs and statistics. */
    void reset();

    /** Zero the statistics but keep tag state (per-kernel stat windows
     *  over a warm cache). */
    void clearStats() { stats_ = CacheStats{}; }

    /** Invalidate all MSHRs.  Fill times are absolute cycles, so a new
     *  launch (whose clock restarts at zero) must drop them while keeping
     *  the warm tags. */
    void newTimeDomain();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }

    /**
     * Deterministic digest of the cache's *observable* state: resident
     * tags, per-set recency (LRU) order, pending-fill sidecar values and
     * the in-flight MSHR file.  Two caches digest equal iff every future
     * access sequence behaves identically on both.
     *
     * The raw `lastUse_` clocks are intentionally NOT digested: the use
     * clock counts monotonically across launches, so two bit-different
     * clock vectors can describe the same replacement behavior.  Each
     * set's ways are instead folded in most-recently-used-first order
     * (ties — only possible among never-touched ways — broken by way
     * index), which makes the digest order-stable: it depends on the
     * recency *ordering* alone.  Used by the launch-memoization layer
     * (sim/gpu.cc) to fingerprint end-of-launch µ-arch state.
     */
    uint64_t stateDigest() const;

    /** @return MSHRs currently in flight (counter-track sampling). */
    uint32_t liveMshrs() const { return mshrLive_; }

    /** Attach (or with nullptr detach) a trace sink.  Miss and fill
     *  events are tagged with @p level and @p core; purely observational
     *  (no timing or replacement decision reads the sink). */
    void
    setTrace(trace::TraceSink *sink, trace::CacheLevel level,
             uint8_t core = 0)
    {
        trace_ = sink;
        traceLevel_ = level;
        traceCore_ = core;
    }

  private:
    /** Tag value of an empty way (real tags are small line numbers). */
    static constexpr uint64_t invalidTag = ~0ull;

    struct Mshr
    {
        uint64_t lineAddr = 0;
        uint64_t fillCycle = 0;
    };

    uint64_t
    lineAddr(uint32_t addr) const
    {
        return lineShift_ ? (addr >> lineShift_) : (addr / cfg_.lineBytes);
    }
    uint32_t
    setIndex(uint64_t la) const
    {
        if (setMask_)
            return static_cast<uint32_t>(la & setMask_);
        // Lemire fastmod: exact for 32-bit la (line numbers of a 32-bit
        // address space), avoiding the hardware divide of la % sets_.
        const uint64_t frac = modM_ * la;
        return static_cast<uint32_t>(
            (static_cast<unsigned __int128>(frac) * sets_) >> 64);
    }

    /** Drop MSHRs whose fill is due; O(1) when none are (the common case,
     *  tracked by minFill_). */
    void retireMshrs(uint64_t now);
    /** @return index of the live MSHR holding @p la, or -1. */
    int findMshr(uint64_t la) const;

    CacheConfig cfg_;
    uint32_t sets_ = 0;
    uint32_t lineShift_ = 0;   ///< log2(lineBytes), 0 = divide
    uint64_t setMask_ = 0;     ///< sets_-1 when a power of two, 0 = fastmod
    uint64_t modM_ = 0;        ///< Lemire magic for non-power-of-two sets_

    // Flat tag store, one entry per way: index = set * assoc + way.
    std::vector<uint64_t> tag_;
    std::vector<uint64_t> lastUse_;
    /** Pending-fill sidecar: fillAt_[i] is the absolute fill cycle the way
     *  was last filled with (0 when filled without an MSHR).  A value
     *  <= now means the fill has completed, so hits read their pending
     *  fill from here instead of scanning the MSHR file; allocateMshr
     *  mirrors new and merge-extended fill times into it. */
    std::vector<uint64_t> fillAt_;

    // Compact MSHR file: entries [0, mshrLive_) are in flight.
    std::vector<Mshr> mshrs_;
    uint32_t mshrLive_ = 0;
    uint64_t minFill_ = ~0ull;   ///< lower bound on live fill cycles

    CacheStats stats_;
    uint64_t useClock_ = 0;

    // Tracing (off unless a sink is attached; one branch per miss/fill).
    trace::TraceSink *trace_ = nullptr;
    trace::CacheLevel traceLevel_ = trace::CacheLevel::L1D;
    uint8_t traceCore_ = 0;
};

} // namespace tango::sim

#endif // TANGO_SIM_CACHE_HH
