/**
 * @file
 * Fig 15 reproduction: execution time under the GTO, LRR and TLV warp
 * schedulers, normalized to GTO — the experiment that is only possible
 * on an architecture simulator (the paper's core motivation).
 *
 * Paper shape to hold (Observation 12): the RNNs barely react; the
 * conv-heavy CNNs run as fast or faster under plain round-robin (LRR)
 * because convolution's high data locality makes aggressive
 * memory-latency-tolerant scheduling unnecessary.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    const std::vector<sim::SchedPolicy> scheds = {
        sim::SchedPolicy::GTO, sim::SchedPolicy::LRR,
        sim::SchedPolicy::TLV};
    const std::vector<std::string> schedNames = {"GTO", "LRR", "TLV"};

    const auto nets = nn::models::allNames();

    std::vector<bench::RunKey> keys;
    for (const auto &net : nets) {
        for (auto sched : scheds) {
            bench::RunKey key{net};
            key.sched = sched;
            key.policy = "stall";
            keys.push_back(key);
        }
    }
    bench::prefetch(keys);

    std::vector<std::vector<double>> values;   // [net][sched]
    for (const auto &net : nets) {
        double base = 0.0;
        std::vector<double> col;
        for (size_t s = 0; s < scheds.size(); s++) {
            bench::RunKey key{net};
            key.sched = scheds[s];
            key.policy = "stall";   // scheduling needs warps to pick from
            const rt::NetRun &run = bench::netRun(key);
            if (s == 0)
                base = run.totalTimeSec;
            col.push_back(base > 0 ? run.totalTimeSec / base : 0.0);
        }
        values.push_back(col);
        bench::registerValue("fig15/" + net + "/lrr_vs_gto", "norm_time",
                             col[1]);
    }

    rt::printStacked(std::cout,
                     "Fig 15: warp scheduler sensitivity (exec time "
                     "normalized to GTO)",
                     nets, schedNames, values);
    std::cout << "Observation 12: LRR is good enough for neural networks "
                 "(high conv data locality); RNNs barely react.\n";

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
