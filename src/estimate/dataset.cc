#include "estimate/dataset.hh"

#include <algorithm>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/models/models.hh"
#include "runtime/run_cache.hh"

namespace tango::estimate {

namespace {

using json::ObjWriter;
using json::Reader;

// ------------------------------------------------------- rows from NetRuns

/** Sum one LayerRun's kernels into the six model targets. */
void
layerTargets(const rt::LayerRun &lr, double out[kNumTargets])
{
    for (int i = 0; i < kNumTargets; i++)
        out[i] = 0.0;
    for (const sim::KernelStats &k : lr.kernels) {
        out[static_cast<int>(Target::Cycles)] += k.gpuCycles;
        out[static_cast<int>(Target::Stalls)] +=
            k.stats.sumPrefix("stall.");
        out[static_cast<int>(Target::L1dMisses)] +=
            k.stats.get("mem.l1d.misses");
        out[static_cast<int>(Target::L2Misses)] +=
            k.stats.get("mem.l2.misses");
        out[static_cast<int>(Target::DramAccesses)] +=
            k.stats.get("dram.accesses");
        out[static_cast<int>(Target::EnergyJ)] += k.energyJ;
    }
}

void
rowsFromCnnRun(const nn::Network &net, const rt::NetRun &run,
               const std::string &source, std::vector<Row> &out)
{
    const auto &layers = net.layers();
    for (const rt::LayerRun &lr : run.layers) {
        if (lr.kernels.empty())
            continue;   // Concat placeholder
        TANGO_ASSERT(lr.layerIndex >= 0 &&
                         size_t(lr.layerIndex) < layers.size(),
                     "layer index out of range");
        const nn::Layer &l = layers[lr.layerIndex];
        Row row;
        if (!layerFamily(l.kind, row.family))
            continue;
        row.feat = layerFeatures(l);
        layerTargets(lr, row.target);
        row.source = source + ":" + lr.name;
        out.push_back(std::move(row));
    }
}

void
rowsFromRnnRun(const nn::RnnModel &model, const rt::NetRun &run,
               const std::string &source, std::vector<Row> &out)
{
    for (const rt::LayerRun &lr : run.layers) {
        if (lr.kernels.empty())
            continue;
        Row row;
        // Layer list shape (runtime/lowering): seqLen cell steps, then
        // the dense readout at index seqLen.
        const bool cell = lr.layerIndex < static_cast<int>(model.seqLen);
        row.family = cell ? Family::RnnCell : Family::Fc;
        row.feat =
            cell ? rnnCellFeatures(model) : rnnReadoutFeatures(model);
        layerTargets(lr, row.target);
        row.source = source + ":" + lr.name;
        out.push_back(std::move(row));
    }
}

// ------------------------------------------------------- synthetic sweeps

/** Launch-hint styles from the suite's Table III mappings. */
nn::LaunchHint
synthHint(Rng &rng, uint32_t out_channels, uint32_t p, uint32_t q)
{
    nn::LaunchHint h;
    switch (rng.below(4)) {
    case 0:
        // In-thread channel loop, one block covering the plane
        // (CifarNet style); only where a plane-sized block is legal.
        if (uint64_t(p) * q <= 1024) {
            h.chanSrc = kern::ChannelSrc::Loop;
            h.pixMap = kern::PixelMap::TileOrigin;
            h.grid = {1, 1, 1};
            h.block = {q, p, 1};
            break;
        }
        [[fallthrough]];
    case 1:
        // One block per output row (SqueezeNet style).
        h.chanSrc = kern::ChannelSrc::Loop;
        h.pixMap = kern::PixelMap::RowBlock;
        h.grid = {p, 1, 1};
        h.block = {q, 1, 1};
        break;
    case 2:
        // One block per channel, block strides the plane (ResNet style).
        h.chanSrc = kern::ChannelSrc::GridX;
        h.pixMap = kern::PixelMap::StrideLoop;
        h.grid = {out_channels, 1, 1};
        h.block = {std::min(q, 16u), std::min(p, 16u), 1};
        break;
    default: {
        // Plane tiled over grid x/y, channel on grid z (VGG style).
        const uint32_t tile = std::min({8u, p, q});
        h.chanSrc = kern::ChannelSrc::GridZ;
        h.pixMap = kern::PixelMap::FromGridXY;
        h.grid = {(q + tile - 1) / tile, (p + tile - 1) / tile,
                  out_channels};
        h.block = {tile, tile, 1};
        break;
    }
    }
    return h;
}

/** One randomized single-layer network.  Shapes and hint styles span
 *  the ranges the suite's layers occupy so the fitted models
 *  interpolate at serve time instead of extrapolating. */
nn::Network
makeSynthetic(uint32_t idx, Rng &rng)
{
    static const uint32_t kChan[] = {3, 8, 16, 32, 64};
    static const uint32_t kPlane[] = {6, 8, 12, 16, 24, 32, 48};
    static const uint32_t kFilt[] = {8, 16, 32, 64, 96};
    static const uint32_t kFcIn[] = {64, 256, 1024, 4096};
    static const uint32_t kFcOut[] = {16, 64, 256, 1024};
    static const nn::LayerKind kKinds[] = {
        nn::LayerKind::Conv,      nn::LayerKind::Conv,
        nn::LayerKind::Depthwise, nn::LayerKind::Pool,
        nn::LayerKind::FC,        nn::LayerKind::LRN,
        nn::LayerKind::BatchNorm, nn::LayerKind::ReLU,
        nn::LayerKind::Softmax,
    };

    nn::Network net;
    net.name = "fitsyn" + std::to_string(idx);

    nn::Layer l;
    l.kind = kKinds[rng.below(sizeof kKinds / sizeof kKinds[0])];
    l.name = "syn";
    l.inputs = {-1};

    if (l.kind == nn::LayerKind::FC || l.kind == nn::LayerKind::Softmax) {
        l.figType = l.kind == nn::LayerKind::FC ? "FC" : "Others";
        l.inN = kFcIn[rng.below(4)];
        l.outN = l.kind == nn::LayerKind::Softmax ? l.inN
                                                  : kFcOut[rng.below(4)];
        net.inC = l.inN;
        net.inH = net.inW = 1;
        if (l.kind == nn::LayerKind::Softmax) {
            l.hint.grid = {1, 1, 1};
            l.hint.block = {32, 1, 1};
        } else if (rng.below(2)) {
            // Table III: one single-thread block per output neuron.
            l.hint.grid = {l.outN, 1, 1};
            l.hint.block = {1, 1, 1};
        } else {
            // Wide blocks over a linear neuron index.
            const uint32_t bw = std::min(l.outN, 256u);
            l.hint.grid = {(l.outN + bw - 1) / bw, 1, 1};
            l.hint.block = {bw, 1, 1};
        }
        net.add(l);
        return net;
    }

    l.C = kChan[rng.below(5)];
    l.H = l.W = kPlane[rng.below(7)];
    net.inC = l.C;
    net.inH = net.inW = l.H;

    switch (l.kind) {
    case nn::LayerKind::Conv: {
        l.figType = "Conv";
        l.K = kFilt[rng.below(5)];
        l.R = l.S = 1 + 2 * rng.below(3);   // 1, 3, 5
        l.stride = l.H > l.R + 2 && rng.below(2) ? 2 : 1;
        l.pad = l.R / 2;
        l.relu = rng.below(2) != 0;
        l.P = l.Q = (l.H + 2 * l.pad - l.R) / l.stride + 1;
        l.hint = synthHint(rng, l.K, l.P, l.Q);
        break;
    }
    case nn::LayerKind::Depthwise: {
        l.figType = "Conv";
        l.K = l.C;
        l.R = l.S = 3;
        l.stride = l.H > 5 && rng.below(2) ? 2 : 1;
        l.pad = 1;
        l.relu = rng.below(2) != 0;
        l.P = l.Q = (l.H + 2 * l.pad - l.R) / l.stride + 1;
        // The depthwise kernel's mapping is fixed: one block per
        // channel, the block striding the output plane.
        l.hint.chanSrc = kern::ChannelSrc::GridX;
        l.hint.pixMap = kern::PixelMap::StrideLoop;
        l.hint.grid = {l.C, 1, 1};
        l.hint.block = {std::min(l.Q, 16u), std::min(l.P, 16u), 1};
        break;
    }
    case nn::LayerKind::Pool: {
        l.figType = "Pooling";
        l.R = l.S = rng.below(2) ? 3 : 2;
        l.stride = 2;
        l.avg = rng.below(2) != 0;
        l.P = l.Q = l.H >= l.R ? (l.H - l.R) / l.stride + 1 : 1;
        l.hint = synthHint(rng, l.C, l.P, l.Q);
        break;
    }
    case nn::LayerKind::LRN: {
        // The LRN kernel's geometry is fixed (channel from ctaid.x,
        // pixel from tid), so only the plane-per-block mapping is legal.
        l.figType = "Norm";
        l.localSize = 5;
        l.H = l.W = std::min(l.H, 27u);
        net.inH = net.inW = l.H;
        l.hint.chanSrc = kern::ChannelSrc::GridX;
        l.hint.pixMap = kern::PixelMap::TileOrigin;
        l.hint.grid = {l.C, 1, 1};
        l.hint.block = {l.W, l.H, 1};
        break;
    }
    case nn::LayerKind::BatchNorm: {
        l.figType = "Norm";
        l.hint = synthHint(rng, l.C, l.H, l.W);
        break;
    }
    default: {   // ReLU
        l.figType = "Others";
        l.relu = true;
        l.hint = synthHint(rng, l.C, l.H, l.W);
        break;
    }
    }
    net.add(l);
    return net;
}

} // namespace

// ----------------------------------------------------------------- sweeps

std::vector<Row>
generate(rt::Engine &engine, const SweepOptions &opt,
         const std::string &policy, const std::string &platform)
{
    const std::vector<std::string> nets =
        opt.nets.empty() ? nn::models::runnableNames() : opt.nets;

    // Phase 1: submit everything, so the worker pool overlaps the
    // simulations; collect afterwards.
    struct NamedJob
    {
        rt::JobSpec spec;
        std::shared_future<const rt::NetRun *> future;
    };
    std::vector<NamedJob> named;
    for (const std::string &net : nets) {
        rt::JobSpec spec;
        spec.net = net;
        spec.policy = policy;
        spec.platform = platform;
        if (net == "gru" || net == "lstm")
            spec.seqLen = opt.rnnSeqLen;
        const std::string why = spec.validate();
        if (!why.empty())
            fatal("tango-fit sweep: %s", why.c_str());
        NamedJob job;
        job.spec = spec;
        job.future = engine.submitJob(spec).future;
        named.push_back(std::move(job));
    }

    rt::JobSpec proto;   // carries platform -> GpuConfig for custom jobs
    proto.platform = platform;
    const sim::GpuConfig cfg = proto.gpuConfig();
    const rt::RunPolicy runPolicy = rt::RunPolicy::named(policy);

    struct CustomJob
    {
        nn::AnyModel model;
        std::string key;
        std::shared_future<const rt::NetRun *> future;
    };
    std::vector<CustomJob> custom;

    Rng rng(opt.seed);
    for (uint32_t i = 0; i < opt.synthetic; i++) {
        CustomJob job{nn::AnyModel(makeSynthetic(i, rng)),
                      "fitsyn/" + std::to_string(i) + "/" + platform +
                          "/" + policy,
                      {}};
        const nn::AnyModel &model = job.model;
        job.future = engine.submit(job.key, cfg,
                                   [model, runPolicy](sim::Gpu &gpu) {
                                       rt::Runtime rt(gpu);
                                       return rt.run(model, runPolicy);
                                   });
        custom.push_back(std::move(job));
    }
    for (uint32_t i = 0; i < opt.rnnHiddenSweep; i++) {
        // Hidden-size sweep around the suite's hidden=100 cell.
        const uint32_t hidden = 32 + 32 * rng.below(7);   // 32..224
        for (const bool lstm : {false, true}) {
            nn::RnnModel m = lstm ? nn::models::buildLstm(opt.rnnSeqLen)
                                  : nn::models::buildGru(opt.rnnSeqLen);
            m.hidden = hidden;
            CustomJob job{nn::AnyModel(std::move(m)),
                          "fitrnn/" + std::string(lstm ? "lstm" : "gru") +
                              "/h" + std::to_string(hidden) + "/s" +
                              std::to_string(opt.rnnSeqLen) + "/" +
                              platform + "/" + policy,
                          {}};
            const nn::AnyModel &model = job.model;
            job.future = engine.submit(job.key, cfg,
                                       [model, runPolicy](sim::Gpu &gpu) {
                                           rt::Runtime rt(gpu);
                                           return rt.run(model, runPolicy);
                                       });
            custom.push_back(std::move(job));
        }
    }

    // Phase 2: collect into rows.
    std::vector<Row> rows;
    for (const NamedJob &job : named) {
        const rt::NetRun &run = *job.future.get();
        const std::string source = job.spec.cacheKey().str;
        if (job.spec.net == "gru" || job.spec.net == "lstm") {
            const nn::RnnModel model =
                job.spec.net == "gru"
                    ? nn::models::buildGru(opt.rnnSeqLen)
                    : nn::models::buildLstm(opt.rnnSeqLen);
            rowsFromRnnRun(model, run, source, rows);
        } else {
            const nn::Network net = nn::models::buildCnn(job.spec.net);
            rowsFromCnnRun(net, run, source, rows);
        }
    }
    for (const CustomJob &job : custom) {
        const rt::NetRun &run = *job.future.get();
        if (job.model.isRnn())
            rowsFromRnnRun(job.model.rnn(), run, job.key, rows);
        else
            rowsFromCnnRun(job.model.cnn(), run, job.key, rows);
    }
    return rows;
}

// ------------------------------------------------------------------- JSON

std::string
rowsToJson(const std::vector<Row> &rows, const std::string &policy,
           const std::string &platform)
{
    std::string out;
    out.reserve(rows.size() * 256 + 128);
    ObjWriter o(out);
    o.u64("version", kBundleVersion);
    o.u64("statsVersion", rt::kSimStatsVersion);
    o.str("policy", policy);
    o.str("platform", platform);
    o.key("rows");
    out += '[';
    for (size_t i = 0; i < rows.size(); i++) {
        if (i)
            out += ',';
        const Row &r = rows[i];
        ObjWriter ro(out);
        ro.str("family", familyName(r.family));
        ro.key("features");
        out += '[';
        for (int fi = 0; fi < kNumFeatures; fi++) {
            if (fi)
                out += ',';
            json::appendDouble(out, r.feat.v[fi]);
        }
        out += ']';
        ro.key("targets");
        {
            ObjWriter to(out);
            for (int ti = 0; ti < kNumTargets; ti++)
                to.num(targetName(static_cast<Target>(ti)), r.target[ti]);
            to.close();
        }
        ro.str("source", r.source);
        ro.close();
    }
    out += ']';
    o.close();
    return out;
}

bool
rowsFromJson(const std::string &text, std::vector<Row> &out,
             std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    Reader::Value v;
    try {
        v = Reader(text).parse();
    } catch (const std::exception &e) {
        return fail(e.what());
    }
    if (v.kind != Reader::Value::Kind::Obj)
        return fail("dataset must be a JSON object");
    const int stats = static_cast<int>(v.u64Or("statsVersion", 0));
    if (stats != rt::kSimStatsVersion)
        return fail("dataset stats version " + std::to_string(stats) +
                    " != simulator " +
                    std::to_string(rt::kSimStatsVersion) +
                    " (re-run the sweep)");

    const Reader::Value *rows = v.find("rows");
    if (!rows || rows->kind != Reader::Value::Kind::Arr)
        return fail("dataset is missing its 'rows' array");
    std::vector<Row> parsed;
    parsed.reserve(rows->arr.size());
    for (const Reader::Value &rv : rows->arr) {
        Row r;
        if (!familyFromName(rv.strOr("family"), r.family))
            return fail("unknown family '" + rv.strOr("family") + "'");
        const Reader::Value *feats = rv.find("features");
        if (!feats || feats->kind != Reader::Value::Kind::Arr ||
            feats->arr.size() != size_t(kNumFeatures))
            return fail("bad feature vector");
        for (int fi = 0; fi < kNumFeatures; fi++)
            r.feat.v[fi] = feats->arr[fi].num;
        const Reader::Value *tgts = rv.find("targets");
        if (!tgts || tgts->kind != Reader::Value::Kind::Obj)
            return fail("bad targets object");
        for (int ti = 0; ti < kNumTargets; ti++)
            r.target[ti] =
                tgts->numOr(targetName(static_cast<Target>(ti)));
        r.source = rv.strOr("source");
        parsed.push_back(std::move(r));
    }
    out = std::move(parsed);
    return true;
}

} // namespace tango::estimate
