# Empty compiler generated dependencies file for tango.
# This may be replaced when dependencies are built.
