/**
 * @file
 * Fig 3 reproduction: peak power consumption across layers for every
 * network.
 *
 * Paper shape to hold (Observation 3): networks with larger layers show
 * higher peak power — AlexNet and ResNet at the top, CifarNet and the
 * RNNs at the bottom (the paper saw ~5x between AlexNet and CifarNet).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : nn::models::allNames())
        keys.push_back({net});
    bench::prefetch(keys);

    Table t("Fig 3: peak power consumption across layers (W)");
    t.header({"network", "peak power (W)"});
    double cifar = 0.0, alex = 0.0;
    for (const auto &net : nn::models::allNames()) {
        const rt::NetRun &run = bench::netRun({net});
        t.row({net, Table::num(run.peakPowerW, 1)});
        if (net == "cifarnet")
            cifar = run.peakPowerW;
        if (net == "alexnet")
            alex = run.peakPowerW;
        bench::registerValue("fig03/" + net, "peak_W", run.peakPowerW);
    }
    t.print(std::cout);
    std::cout << "Observation 3: AlexNet/CifarNet peak ratio = "
              << Table::num(cifar > 0 ? alex / cifar : 0.0, 2)
              << "x (paper: ~5x)\n";

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
