file(REMOVE_RECURSE
  "../bench/tab02_platforms"
  "../bench/tab02_platforms.pdb"
  "CMakeFiles/tab02_platforms.dir/tab02_platforms.cc.o"
  "CMakeFiles/tab02_platforms.dir/tab02_platforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
