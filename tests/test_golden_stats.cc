/**
 * @file
 * Golden-statistics regression harness.
 *
 * For each of the suite's seven networks a *reduced-geometry* variant
 * (same layer structure, same launch-hint style, tiny planes so the
 * "exact" full simulation finishes in milliseconds; the RNNs are cheap
 * enough to run unreduced) is simulated once and every NetRun counter —
 * cycles, stalls per reason, cache hits/misses, DRAM traffic, energy,
 * instruction mix — is compared field-by-field against a committed JSON
 * fixture in tests/golden/.
 *
 * The fixtures pin the simulator's statistics bit-for-bit: any change to
 * the timing model, the coalescer, the caches or the interpreter that
 * moves a single counter fails here with a per-field diff.  Intentional
 * model changes regenerate the corpus:
 *
 *     TANGO_UPDATE_GOLDEN=1 ctest -L golden
 *
 * (or the `golden-refresh` CMake preset), then commit tests/golden/.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/run_cache.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"
#include "sim/shard.hh"

#ifndef TANGO_GOLDEN_DIR
#error "TANGO_GOLDEN_DIR must point at tests/golden"
#endif

namespace tango {
namespace {

using nn::Layer;
using nn::LayerKind;
using nn::LaunchHint;
using nn::Network;
using rt::NetRun;

// ------------------------------------------------------- reduced networks
//
// Each builder mirrors the real model's structure and Table III launch
// mapping (channel source, pixel map, tile splits, filter partitions) at
// a geometry small enough for exact simulation.  They intentionally
// exercise every layer kind the full suite uses: Conv, Pool, FC, LRN,
// BatchNorm, Scale, ReLU, Eltwise, Softmax and Concat.

/** CifarNet style: one block per layer, filters looped in-thread. */
LaunchHint
loopHint(uint32_t bx, uint32_t by)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::Loop;
    h.pixMap = kern::PixelMap::TileOrigin;
    h.grid = {1, 1, 1};
    h.block = {bx, by, 1};
    return h;
}

/** SqueezeNet style: one block per output row, columns as threads. */
LaunchHint
rowHint(uint32_t p, uint32_t q)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::Loop;
    h.pixMap = kern::PixelMap::RowBlock;
    h.grid = {p, 1, 1};
    h.block = {q, 1, 1};
    return h;
}

/** ResNet style: one block per channel, block strides over the plane. */
LaunchHint
strideHint(uint32_t channels, uint32_t bx, uint32_t by)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::GridX;
    h.pixMap = kern::PixelMap::StrideLoop;
    h.grid = {channels, 1, 1};
    h.block = {bx, by, 1};
    return h;
}

/** VGG style: plane tiled over grid (x,y), channel on grid z. */
LaunchHint
gridXyHint(uint32_t channels, uint32_t p, uint32_t q, uint32_t tile)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::GridZ;
    h.pixMap = kern::PixelMap::FromGridXY;
    h.grid = {(q + tile - 1) / tile, (p + tile - 1) / tile, channels};
    h.block = {tile, tile, 1};
    return h;
}

Network
goldenCifarNet()
{
    // conv -> maxpool -> conv+relu -> avgpool -> fc -> fc -> softmax on a
    // 3x8x8 input (real model: 3x32x32).
    Network net;
    net.name = "cifarnet";
    net.inC = 3;
    net.inH = net.inW = 8;

    int prev = -1;
    auto conv = [&](const std::string &name, uint32_t c, uint32_t hw,
                    uint32_t k, bool relu) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = hw;
        l.K = k;
        l.R = l.S = 5;
        l.stride = 1;
        l.pad = 2;
        l.P = l.Q = hw;
        l.relu = relu;
        l.inputs = {prev};
        l.hint = loopHint(hw, hw);
        prev = net.add(l);
    };
    auto pool = [&](const std::string &name, uint32_t c, uint32_t hw,
                    bool avg) {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = name;
        l.figType = "Pooling";
        l.C = c;
        l.H = l.W = hw;
        l.R = l.S = 3;
        l.stride = 2;
        l.P = l.Q = (hw - 3) / 2 + 1;
        l.avg = avg;
        l.inputs = {prev};
        l.hint = loopHint(hw, hw);
        prev = net.add(l);
    };

    conv("conv1", 3, 8, 8, false);
    pool("pool1", 8, 8, false);   // -> 3x3
    conv("conv2", 8, 3, 8, true);
    pool("pool2", 8, 3, true);    // -> 1x1

    Layer fc1;
    fc1.kind = LayerKind::FC;
    fc1.name = "fc1";
    fc1.figType = "FC";
    fc1.inN = 8;
    fc1.outN = 8;
    fc1.inputs = {prev};
    fc1.hint.grid = {1, 1, 1};
    fc1.hint.block = {8, 1, 1};
    prev = net.add(fc1);

    Layer fc2;
    fc2.kind = LayerKind::FC;
    fc2.name = "fc2";
    fc2.figType = "FC";
    fc2.inN = 8;
    fc2.outN = 4;
    fc2.inputs = {prev};
    fc2.hint.grid = {1, 1, 1};
    fc2.hint.block = {32, 1, 1};
    prev = net.add(fc2);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 4;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);
    return net;
}

Network
goldenAlexNet()
{
    // conv1(+tiles) -> LRN(+tiles) -> pool -> conv2 (filter split) ->
    // fc -> fc -> softmax on a 3x15x15 input (real model: 3x227x227,
    // 55x55 plane split into four tiles).
    Network net;
    net.name = "alexnet";
    net.inC = 3;
    net.inH = net.inW = 15;

    // 6x6 first-stage plane tiled 4+2 in both axes.
    const std::vector<nn::TileSplit> split6 = {
        {0, 0, 4, 4}, {4, 0, 2, 4}, {0, 4, 4, 2}, {4, 4, 2, 2}};

    int prev = -1;
    auto conv = [&](const std::string &name, uint32_t c, uint32_t hw,
                    uint32_t k, uint32_t rs, uint32_t stride, uint32_t pad,
                    uint32_t filtersPerKernel, uint32_t blockHw,
                    const std::vector<nn::TileSplit> &tiles) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = hw;
        l.K = k;
        l.R = l.S = rs;
        l.stride = stride;
        l.pad = pad;
        l.P = l.Q = (hw + 2 * pad - rs) / stride + 1;
        l.relu = true;
        l.inputs = {prev};
        l.hint.chanSrc = kern::ChannelSrc::GridX;
        l.hint.pixMap = kern::PixelMap::TileOrigin;
        l.hint.filtersPerKernel = filtersPerKernel;
        l.hint.grid = {filtersPerKernel ? filtersPerKernel : k, 1, 1};
        l.hint.block = {blockHw, blockHw, 1};
        l.hint.tiles = tiles;
        prev = net.add(l);
    };

    conv("conv1", 3, 15, 8, 5, 2, 0, 0, 4, split6);   // -> 6x6

    Layer lrn;
    lrn.kind = LayerKind::LRN;
    lrn.name = "norm1";
    lrn.figType = "Norm";
    lrn.C = 8;
    lrn.H = lrn.W = 6;
    lrn.localSize = 5;
    lrn.inputs = {prev};
    lrn.hint.chanSrc = kern::ChannelSrc::GridX;
    lrn.hint.pixMap = kern::PixelMap::TileOrigin;
    lrn.hint.grid = {8, 1, 1};
    lrn.hint.block = {4, 4, 1};
    lrn.hint.tiles = split6;
    prev = net.add(lrn);

    Layer pool;
    pool.kind = LayerKind::Pool;
    pool.name = "pool1";
    pool.figType = "Pooling";
    pool.C = 8;
    pool.H = pool.W = 6;
    pool.R = pool.S = 3;
    pool.stride = 2;
    pool.P = pool.Q = 2;
    pool.inputs = {prev};
    pool.hint.chanSrc = kern::ChannelSrc::GridX;
    pool.hint.pixMap = kern::PixelMap::TileOrigin;
    pool.hint.grid = {8, 1, 1};
    pool.hint.block = {2, 2, 1};
    prev = net.add(pool);

    conv("conv2", 8, 2, 8, 3, 1, 1, 4, 2, {});

    auto fc = [&](const std::string &name, uint32_t in, uint32_t out,
                  bool relu) {
        Layer l;
        l.kind = LayerKind::FC;
        l.name = name;
        l.figType = "FC";
        l.inN = in;
        l.outN = out;
        l.relu = relu;
        l.inputs = {prev};
        l.hint.grid = {out, 1, 1};   // one single-thread block per neuron
        l.hint.block = {1, 1, 1};
        prev = net.add(l);
    };
    fc("fc6", 8 * 2 * 2, 8, true);
    fc("fc7", 8, 4, false);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 4;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);
    return net;
}

Network
goldenSqueezeNet()
{
    // conv1 -> pool -> one fire module (squeeze + two expands + Concat)
    // -> conv10 -> global average pool on a 3x9x9 input.
    Network net;
    net.name = "squeezenet";
    net.inC = 3;
    net.inH = net.inW = 9;

    int prev = -1;
    auto conv = [&](const std::string &name, const std::string &fig,
                    uint32_t c, uint32_t hw, uint32_t k, uint32_t rs,
                    uint32_t pad, int from) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = fig;
        l.C = c;
        l.H = l.W = hw;
        l.K = k;
        l.R = l.S = rs;
        l.stride = 1;
        l.pad = pad;
        l.P = l.Q = hw + 2 * pad - rs + 1;
        l.relu = true;
        l.inputs = {from};
        l.hint = rowHint(l.P, l.Q);
        return net.add(l);
    };

    prev = conv("conv1", "Conv", 3, 9, 8, 3, 0, -1);   // -> 7x7

    Layer pl;
    pl.kind = LayerKind::Pool;
    pl.name = "pool1";
    pl.figType = "Pooling";
    pl.C = 8;
    pl.H = pl.W = 7;
    pl.R = pl.S = 3;
    pl.stride = 2;
    pl.P = pl.Q = 3;
    pl.inputs = {prev};
    pl.hint = rowHint(3, 3);
    prev = net.add(pl);

    // fire: squeeze 1x1 (4) -> expand 1x1 (8) || expand 3x3 (8) -> 16.
    const int sq = conv("fire2_squeeze1x1", "Fire_Squeeze", 8, 3, 4, 1, 0,
                        prev);
    const int x1 = conv("fire2_expand1x1", "Fire_Expand", 4, 3, 8, 1, 0,
                        sq);
    const int x3 = conv("fire2_expand3x3", "Fire_Expand", 4, 3, 8, 3, 1,
                        sq);
    Layer cc;
    cc.kind = LayerKind::Concat;
    cc.name = "fire2_concat";
    cc.figType = "Fire_Expand";
    cc.K = 16;
    cc.P = cc.Q = 3;
    cc.inputs = {x1, x3};
    const int cat = net.add(cc);
    net.layers()[x1].concatInto = cat;
    net.layers()[x1].outChannelOffset = 0;
    net.layers()[x3].concatInto = cat;
    net.layers()[x3].outChannelOffset = 8;
    prev = cat;

    prev = conv("conv10", "Conv", 16, 3, 10, 1, 0, prev);

    Layer gap;
    gap.kind = LayerKind::Pool;
    gap.name = "global_avg_pool";
    gap.figType = "Pooling";
    gap.C = 10;
    gap.H = gap.W = 3;
    gap.globalAvg = true;
    gap.avg = true;
    gap.P = gap.Q = 1;
    gap.inputs = {prev};
    gap.hint.grid = {1, 1, 1};
    gap.hint.block = {10, 1, 1};
    net.add(gap);
    return net;
}

Network
goldenResNet()
{
    // conv1 + BN/Scale/ReLU, one bottleneck block with an identity
    // Eltwise shortcut, global average pool, fc, softmax on 3x8x8.
    Network net;
    net.name = "resnet";
    net.inC = 3;
    net.inH = net.inW = 8;

    int prev = -1;
    auto conv = [&](const std::string &name, uint32_t c, uint32_t k,
                    uint32_t rs, uint32_t pad, int from) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = 8;
        l.K = k;
        l.R = l.S = rs;
        l.stride = 1;
        l.pad = pad;
        l.P = l.Q = 8;
        l.bias = false;   // BN carries the bias
        l.inputs = {from};
        l.hint = strideHint(k, 8, 8);
        prev = net.add(l);
    };
    auto bnScale = [&](const std::string &base, uint32_t c, bool relu) {
        Layer bn;
        bn.kind = LayerKind::BatchNorm;
        bn.name = base + "_bn";
        bn.figType = "Norm";
        bn.C = c;
        bn.H = bn.W = 8;
        bn.inputs = {prev};
        bn.hint = strideHint(c, 8, 8);
        prev = net.add(bn);

        Layer sc;
        sc.kind = LayerKind::Scale;
        sc.name = base + "_scale";
        sc.figType = "Scale";
        sc.C = c;
        sc.H = sc.W = 8;
        sc.inputs = {prev};
        sc.hint = strideHint(c, 8, 8);
        prev = net.add(sc);

        if (relu) {
            Layer re;
            re.kind = LayerKind::ReLU;
            re.name = base + "_relu";
            re.figType = "Relu";
            re.C = c;
            re.H = re.W = 8;
            re.inputs = {prev};
            re.hint = strideHint(c, 8, 8);
            prev = net.add(re);
        }
    };

    conv("conv1", 3, 8, 3, 1, -1);
    bnScale("conv1", 8, true);
    const int trunk = prev;

    conv("res2a_branch2a", 8, 4, 1, 0, trunk);
    bnScale("res2a_branch2a", 4, true);
    conv("res2a_branch2b", 4, 4, 3, 1, prev);
    bnScale("res2a_branch2b", 4, true);
    conv("res2a_branch2c", 4, 8, 1, 0, prev);
    bnScale("res2a_branch2c", 8, false);

    Layer el;
    el.kind = LayerKind::Eltwise;
    el.name = "res2a";
    el.figType = "Eltwise";
    el.C = 8;
    el.H = el.W = 8;
    el.inputs = {prev, trunk};
    el.hint = strideHint(8, 8, 8);
    prev = net.add(el);

    Layer re;
    re.kind = LayerKind::ReLU;
    re.name = "res2a_relu";
    re.figType = "Relu";
    re.C = 8;
    re.H = re.W = 8;
    re.inputs = {prev};
    re.hint = strideHint(8, 8, 8);
    prev = net.add(re);

    Layer gap;
    gap.kind = LayerKind::Pool;
    gap.name = "pool5";
    gap.figType = "Pooling";
    gap.C = 8;
    gap.H = gap.W = 8;
    gap.globalAvg = true;
    gap.avg = true;
    gap.P = gap.Q = 1;
    gap.inputs = {prev};
    gap.hint.grid = {2, 1, 1};
    gap.hint.block = {32, 1, 1};
    gap.hint.chanSrc = kern::ChannelSrc::GridX;
    prev = net.add(gap);

    Layer fc;
    fc.kind = LayerKind::FC;
    fc.name = "fc";
    fc.figType = "FC";
    fc.inN = 8;
    fc.outN = 4;
    fc.inputs = {prev};
    fc.hint.grid = {4, 1, 1};
    fc.hint.block = {1, 1, 1};
    prev = net.add(fc);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 4;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);
    return net;
}

Network
goldenVggNet()
{
    // Two conv/pool stages then the 3D-grid FC head on a 3x8x8 input
    // (real model: 13 conv + 3 FC on 3x224x224).
    Network net;
    net.name = "vggnet";
    net.inC = 3;
    net.inH = net.inW = 8;

    int prev = -1;
    uint32_t c = 3, h = 8;
    auto conv = [&](const std::string &name, uint32_t k) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = h;
        l.K = k;
        l.R = l.S = 3;
        l.stride = 1;
        l.pad = 1;
        l.P = l.Q = h;
        l.relu = true;
        l.inputs = {prev};
        l.hint = gridXyHint(k, h, h, 2);
        prev = net.add(l);
        c = k;
    };
    auto pool = [&](const std::string &name) {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = name;
        l.figType = "Pooling";
        l.C = c;
        l.H = l.W = h;
        l.R = l.S = 2;
        l.stride = 2;
        l.P = l.Q = h / 2;
        l.inputs = {prev};
        l.hint = gridXyHint(c, l.P, l.Q, 2);
        prev = net.add(l);
        h /= 2;
    };

    conv("conv1_1", 4);
    conv("conv1_2", 4);
    pool("pool1");        // -> 4
    conv("conv2_1", 8);
    pool("pool2");        // -> 2

    Layer fc6;
    fc6.kind = LayerKind::FC;
    fc6.name = "fc6";
    fc6.figType = "FC";
    fc6.inN = 8 * 2 * 2;
    fc6.outN = 8;
    fc6.relu = true;
    fc6.inputs = {prev};
    fc6.hint.grid = {2, 1, 2};   // 3D FC grid like the real fc6/fc7
    fc6.hint.block = {2, 1, 1};
    prev = net.add(fc6);

    Layer fc7;
    fc7.kind = LayerKind::FC;
    fc7.name = "fc7";
    fc7.figType = "FC";
    fc7.inN = 8;
    fc7.outN = 4;
    fc7.inputs = {prev};
    fc7.hint.grid = {1, 1, 1};
    fc7.hint.block = {2, 2, 1};
    prev = net.add(fc7);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 4;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);
    return net;
}

nn::AnyModel
buildGoldenModel(const std::string &name)
{
    if (name == "cifarnet")
        return nn::AnyModel(goldenCifarNet());
    if (name == "alexnet")
        return nn::AnyModel(goldenAlexNet());
    if (name == "squeezenet")
        return nn::AnyModel(goldenSqueezeNet());
    if (name == "resnet")
        return nn::AnyModel(goldenResNet());
    if (name == "vggnet")
        return nn::AnyModel(goldenVggNet());
    if (name == "gru")
        return nn::AnyModel(nn::models::buildGru());
    if (name == "lstm")
        return nn::AnyModel(nn::models::buildLstm());
    ADD_FAILURE() << "unknown golden network " << name;
    return nn::AnyModel(Network{});
}

// ------------------------------------------------------ field-level diff

/** Accumulates `path: golden=<v> actual=<v>` lines. */
class Diff
{
  public:
    void num(const std::string &path, double golden, double actual)
    {
        // Bit comparison: the fixture format round-trips doubles exactly,
        // so even a 1-ulp drift in any statistic is a failure.
        if (std::memcmp(&golden, &actual, sizeof golden) == 0)
            return;
        char buf[128];
        std::snprintf(buf, sizeof buf, "golden=%.17g actual=%.17g", golden,
                      actual);
        lines.push_back(path + ": " + buf);
    }
    void u64(const std::string &path, uint64_t golden, uint64_t actual)
    {
        if (golden != actual) {
            lines.push_back(path + ": golden=" + std::to_string(golden) +
                            " actual=" + std::to_string(actual));
        }
    }
    void str(const std::string &path, const std::string &golden,
             const std::string &actual)
    {
        if (golden != actual)
            lines.push_back(path + ": golden='" + golden + "' actual='" +
                            actual + "'");
    }
    /** Launch-memoization meta-counters record how launches were *served*
     *  (replayed vs simulated), not what they simulated; they are the one
     *  legitimate difference between memo-on and memo-off runs and are
     *  excluded from every fixture comparison. */
    static bool isMetaStat(const std::string &name)
    {
        return name == "mem.replayed_launches" ||
               name == "mem.simulated_launches";
    }

    void statSet(const std::string &path, const StatSet &golden,
                 const StatSet &actual)
    {
        for (const auto &[name, gv] : golden.all()) {
            if (!isMetaStat(name))
                num(path + "[\"" + name + "\"]", gv, actual.get(name));
        }
        for (const auto &[name, av] : actual.all()) {
            if (!golden.all().count(name) && !isMetaStat(name))
                lines.push_back(path + "[\"" + name +
                                "\"]: golden=<absent> actual=" +
                                std::to_string(av));
        }
    }

    std::vector<std::string> lines;
};

void
diffKernel(Diff &d, const std::string &p, const sim::KernelStats &g,
           const sim::KernelStats &a)
{
    d.str(p + ".name", g.name, a.name);
    d.u64(p + ".grid.x", g.grid.x, a.grid.x);
    d.u64(p + ".grid.y", g.grid.y, a.grid.y);
    d.u64(p + ".grid.z", g.grid.z, a.grid.z);
    d.u64(p + ".block.x", g.block.x, a.block.x);
    d.u64(p + ".block.y", g.block.y, a.block.y);
    d.u64(p + ".block.z", g.block.z, a.block.z);
    d.u64(p + ".totalCtas", g.totalCtas, a.totalCtas);
    d.u64(p + ".sampledCtas", g.sampledCtas, a.sampledCtas);
    d.u64(p + ".totalWarpsPerCta", g.totalWarpsPerCta, a.totalWarpsPerCta);
    d.u64(p + ".sampledWarpsPerCta", g.sampledWarpsPerCta,
          a.sampledWarpsPerCta);
    d.num(p + ".scale", g.scale, a.scale);
    d.u64(p + ".smCycles", g.smCycles, a.smCycles);
    d.num(p + ".gpuCycles", g.gpuCycles, a.gpuCycles);
    d.num(p + ".timeSec", g.timeSec, a.timeSec);
    d.u64(p + ".activeSms", g.activeSms, a.activeSms);
    d.statSet(p + ".stats", g.stats, a.stats);
    d.u64(p + ".regsPerThread", g.regsPerThread, a.regsPerThread);
    d.u64(p + ".maxLiveRegs", g.maxLiveRegs, a.maxLiveRegs);
    d.u64(p + ".smemBytes", g.smemBytes, a.smemBytes);
    d.u64(p + ".cmemBytes", g.cmemBytes, a.cmemBytes);
    d.u64(p + ".residentCtas", g.residentCtas, a.residentCtas);
    d.u64(p + ".occupancyCtas", g.occupancyCtas, a.occupancyCtas);
    d.num(p + ".peakPowerW", g.peakPowerW, a.peakPowerW);
    d.num(p + ".avgPowerW", g.avgPowerW, a.avgPowerW);
    d.num(p + ".energyJ", g.energyJ, a.energyJ);
    d.num(p + ".peakWindowDynW", g.peakWindowDynW, a.peakWindowDynW);
}

std::vector<std::string>
diffNetRun(const NetRun &g, const NetRun &a)
{
    Diff d;
    d.str("netName", g.netName, a.netName);
    d.u64("deviceBytes", g.deviceBytes, a.deviceBytes);
    d.statSet("totals", g.totals, a.totals);
    d.num("totalTimeSec", g.totalTimeSec, a.totalTimeSec);
    d.num("totalEnergyJ", g.totalEnergyJ, a.totalEnergyJ);
    d.num("peakPowerW", g.peakPowerW, a.peakPowerW);
    d.u64("maxRegsPerThread", g.maxRegsPerThread, a.maxRegsPerThread);
    d.u64("maxLiveRegs", g.maxLiveRegs, a.maxLiveRegs);
    d.u64("maxResidentWarps", g.maxResidentWarps, a.maxResidentWarps);
    d.u64("checkFailures", g.checkFailures, a.checkFailures);
    d.u64("layers.size", g.layers.size(), a.layers.size());
    const size_t nl = std::min(g.layers.size(), a.layers.size());
    for (size_t i = 0; i < nl; i++) {
        const auto &gl = g.layers[i];
        const auto &al = a.layers[i];
        const std::string p = "layers[" + std::to_string(i) + "]";
        d.u64(p + ".layerIndex", uint64_t(gl.layerIndex),
              uint64_t(al.layerIndex));
        d.str(p + ".name", gl.name, al.name);
        d.str(p + ".figType", gl.figType, al.figType);
        d.u64(p + ".kernels.size", gl.kernels.size(), al.kernels.size());
        const size_t nk = std::min(gl.kernels.size(), al.kernels.size());
        for (size_t k = 0; k < nk; k++) {
            diffKernel(d, p + ".kernels[" + std::to_string(k) + "]",
                       gl.kernels[k], al.kernels[k]);
        }
    }
    return d.lines;
}

// ------------------------------------------------------------ the driver

std::string
fixturePath(const std::string &name)
{
    // Intra-run sharding (TANGO_SIM_SHARDS, sim/shard.hh) changes the
    // simulated statistics above K=1 by design, so each shard count is
    // pinned by its own fixture corpus: <net>.json for the sequential
    // run, <net>.k<K>.json for K>1.  scripts/ci.sh runs the golden
    // label across the {1,2,4} matrix.
    std::string file = name;
    const uint32_t k = sim::envSimShards();
    if (k > 1)
        file += ".k" + std::to_string(k);
    return std::string(TANGO_GOLDEN_DIR) + "/" + file + ".json";
}

bool
updateMode()
{
    const char *env = std::getenv("TANGO_UPDATE_GOLDEN");
    return env && env[0] && std::string(env) != "0";
}

NetRun
runGolden(const std::string &name)
{
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model = buildGoldenModel(name);
    nn::initWeights(model);

    // "exact": full cycle-accurate simulation of every CTA.  functional
    // keeps the data path deterministic end to end (synthetic inputs,
    // reference outputs re-written after each layer).
    rt::RunPolicy policy = rt::RunPolicy::named("exact");
    policy.functional = true;

    rt::Runtime rtm(gpu);
    return rtm.run(model, policy);
}

void
checkGolden(const std::string &name)
{
    const NetRun actual = runGolden(name);
    const std::string path = fixturePath(name);

    if (updateMode()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << rt::serializeNetRun(actual) << "\n";
        ASSERT_TRUE(out.good()) << "short write to " << path;
        std::printf("[golden] regenerated %s\n", path.c_str());
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden fixture " << path
        << " — regenerate with TANGO_UPDATE_GOLDEN=1 (ctest -L golden)";
    std::stringstream ss;
    ss << in.rdbuf();

    NetRun golden;
    ASSERT_TRUE(rt::parseNetRunJson(ss.str(), golden))
        << "malformed golden fixture " << path;

    const std::vector<std::string> diffs = diffNetRun(golden, actual);
    if (!diffs.empty()) {
        std::string msg = "simulator statistics drifted from " + path +
                          " (" + std::to_string(diffs.size()) +
                          " fields;"
                          " if intentional, TANGO_UPDATE_GOLDEN=1):";
        for (const auto &line : diffs)
            msg += "\n  " + line;
        FAIL() << msg;
    }
}

// The comparator itself must treat a serialize/parse round trip as
// identity, or fixture comparisons would report phantom drift.
TEST(GoldenStats, RoundTripIsIdentity)
{
    const NetRun run = runGolden("cifarnet");
    NetRun back;
    ASSERT_TRUE(rt::parseNetRunJson(rt::serializeNetRun(run), back));
    const std::vector<std::string> diffs = diffNetRun(run, back);
    EXPECT_TRUE(diffs.empty())
        << "round trip changed " << diffs.size() << " fields, e.g. "
        << diffs.front();
}

TEST(GoldenStats, CifarNet) { checkGolden("cifarnet"); }
TEST(GoldenStats, AlexNet) { checkGolden("alexnet"); }
TEST(GoldenStats, SqueezeNet) { checkGolden("squeezenet"); }
TEST(GoldenStats, ResNet) { checkGolden("resnet"); }
TEST(GoldenStats, VggNet) { checkGolden("vggnet"); }
TEST(GoldenStats, Gru) { checkGolden("gru"); }
TEST(GoldenStats, Lstm) { checkGolden("lstm"); }

/** RAII TANGO_NO_MEMO=1: force-disables launch memoization for one run. */
struct ScopedNoMemo
{
    ScopedNoMemo() { setenv("TANGO_NO_MEMO", "1", 1); }
    ~ScopedNoMemo() { unsetenv("TANGO_NO_MEMO"); }
};

/** Every statistic must be bit-identical whether launches were replayed
 *  by the memoization layer (the default) or fully simulated
 *  (TANGO_NO_MEMO=1) — replay is a pure execution shortcut, never a
 *  model change.  Only the mem.*_launches meta-counters may differ. */
TEST(GoldenStats, MemoOnAndOffAreBitIdentical)
{
    for (const std::string name : {"cifarnet", "alexnet", "squeezenet",
                                   "resnet", "vggnet", "gru", "lstm"}) {
        const NetRun on = runGolden(name);
        NetRun off;
        {
            ScopedNoMemo guard;
            off = runGolden(name);
        }
        const std::vector<std::string> diffs = diffNetRun(off, on);
        EXPECT_TRUE(diffs.empty())
            << name << ": memo-on run drifted from memo-off in "
            << diffs.size() << " fields, e.g. " << diffs.front();
        EXPECT_EQ(off.totals.get("mem.replayed_launches"), 0.0)
            << name << ": TANGO_NO_MEMO=1 must fully simulate";
    }
}

/** The RNNs' repeated cell launches must actually be served by replay:
 *  signatures alternate between two h/c ping-pong parities, each parity
 *  arms after three occurrences, so seqLen=32 yields 26 replayed cells. */
TEST(GoldenStats, RnnSteadyStateIsReplayed)
{
    for (const std::string name : {"gru", "lstm"}) {
        const NetRun run = runGolden(name);
        EXPECT_GT(run.totals.get("mem.replayed_launches"), 0.0)
            << name << ": no launch was replayed";
        // 3 warm-up occurrences per parity + 1 FC readout full-sim.
        EXPECT_EQ(run.totals.get("mem.replayed_launches") +
                      run.totals.get("mem.simulated_launches"),
                  double(nn::models::kDefaultRnnSeqLen + 1));
        EXPECT_EQ(run.totals.get("mem.simulated_launches"), 7.0)
            << name << ": steady state should arm after 3 occurrences "
                       "of each launch-signature parity";
        // Replayed kernels are marked; the readout is not.
        EXPECT_TRUE(run.layers.back().kernels.back().replayed == false);
    }
}

} // namespace
} // namespace tango
