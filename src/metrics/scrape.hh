/**
 * @file
 * Prometheus text-format parsing — the read side of metrics.hh.
 *
 * tango-top polls the serve protocol's "metrics" frame, tango-load
 * embeds the final scrape into BENCH_serve.json, and test_metrics
 * round-trips renderPrometheus() through this parser.  Only the subset
 * renderPrometheus() emits is supported: `name value` and
 * `name{k="v",...} value` sample lines, `#` comment lines skipped.
 */

#ifndef TANGO_METRICS_SCRAPE_HH
#define TANGO_METRICS_SCRAPE_HH

#include <string>
#include <vector>

#include "metrics/metrics.hh"

namespace tango::metrics {

/** One parsed sample line. */
struct Sample
{
    std::string name;     ///< family name (includes _bucket/_sum/_count)
    Labels labels;        ///< in line order
    double value = 0.0;

    /** Value of label @p key, or "" when absent. */
    std::string label(const std::string &key) const;
};

/** A parsed scrape with the lookups the consumers need. */
class Scrape
{
  public:
    /** Parse @p text.  @return false with @p err on a malformed line. */
    static bool parse(const std::string &text, Scrape &out,
                      std::string *err = nullptr);

    const std::vector<Sample> &samples() const { return samples_; }

    /** Sum of every sample of family @p name (0 when absent). */
    double sum(const std::string &name) const;

    /** The one sample of @p name whose labels include key=value, or
     *  nullptr.  Empty @p key matches an unlabeled sample. */
    const Sample *find(const std::string &name, const std::string &key = "",
                       const std::string &value = "") const;

    /** Rebuild family @p name's histogram from its cumulative
     *  `_bucket{le=...}` samples (le values must be exact bucket upper
     *  bounds, which is what renderPrometheus emits).  @return false
     *  when the family has no buckets. */
    bool histogram(const std::string &name, HistogramSnapshot &out) const;

  private:
    std::vector<Sample> samples_;
};

} // namespace tango::metrics

#endif // TANGO_METRICS_SCRAPE_HH
