#include "sim/power.hh"

#include <algorithm>

namespace tango::sim {

const char *
powerCompName(PowerComp c)
{
    switch (c) {
      case PowerComp::IB: return "IBP";
      case PowerComp::IC: return "ICP";
      case PowerComp::DC: return "DCP";
      case PowerComp::TC: return "TCP";
      case PowerComp::CC: return "CCP";
      case PowerComp::SHRD: return "SHRDP";
      case PowerComp::RF: return "RFP";
      case PowerComp::SP: return "SPP";
      case PowerComp::SFU: return "SFUP";
      case PowerComp::FPU: return "FPUP";
      case PowerComp::SCHED: return "SCHEDP";
      case PowerComp::L2C: return "L2CP";
      case PowerComp::MC: return "MCP";
      case PowerComp::NOC: return "NOCP";
      case PowerComp::DRAM: return "DRAMP";
      case PowerComp::PIPE: return "PIPEP";
      case PowerComp::IDLE_CORE: return "IDLE_COREP";
      case PowerComp::CONST_DYNAMIC: return "CONST_DYNAMICP";
      case PowerComp::NumComps: break;
    }
    return "?";
}

double
PowerBreakdown::totalJ() const
{
    double t = 0.0;
    for (double e : energyJ)
        t += e;
    return t;
}

void
PowerBreakdown::merge(const PowerBreakdown &other)
{
    for (size_t i = 0; i < numPowerComps; i++)
        energyJ[i] += other.energyJ[i];
}

PowerBreakdown
computeBreakdown(const StatSet &events, const GpuConfig &cfg, double cycles,
                 double active_sms)
{
    const PowerParams &p = cfg.power;
    PowerBreakdown b;
    auto put = [&](PowerComp c, double count, double pj) {
        b.energyJ[static_cast<size_t>(c)] += count * pj * 1e-12;
    };
    put(PowerComp::IB, events.get("evt.ib"), p.ibAccess);
    put(PowerComp::IC, events.get("evt.ic"), p.icAccess);
    put(PowerComp::DC, events.get("evt.l1d"), p.dcAccess);
    put(PowerComp::TC, events.get("evt.tc"), p.tcAccess);
    put(PowerComp::CC, events.get("evt.cc"), p.ccAccess);
    put(PowerComp::SHRD, events.get("evt.shrd"), p.shrdAccess);
    put(PowerComp::RF, events.get("evt.rf_operand"), p.rfOperand);
    put(PowerComp::SP, events.get("evt.sp"), p.spOp);
    put(PowerComp::SFU, events.get("evt.sfu"), p.sfuOp);
    put(PowerComp::FPU, events.get("evt.fpu"), p.fpuOp);
    put(PowerComp::SCHED, events.get("evt.sched"), p.schedCycle);
    put(PowerComp::L2C, events.get("evt.l2"), p.l2Access);
    put(PowerComp::MC, events.get("evt.mc"), p.mcAccess);
    put(PowerComp::NOC, events.get("evt.noc"), p.nocFlit);
    put(PowerComp::DRAM, events.get("evt.dram"), p.dramAccess);
    put(PowerComp::PIPE, events.get("evt.pipe"), p.pipeIssue);

    const double seconds = cycles / (cfg.coreClockGhz * 1e9);
    // Leakage applies to every SM on the die; background dynamic power only
    // to the SMs that are clocked and busy, plus the board-level draw.
    b.energyJ[static_cast<size_t>(PowerComp::IDLE_CORE)] +=
        p.idleCoreW * cfg.numSms * seconds;
    b.energyJ[static_cast<size_t>(PowerComp::CONST_DYNAMIC)] +=
        (p.constDynamicW * std::max(1.0, active_sms) + p.boardStaticW) *
        seconds;
    return b;
}

double
averagePowerW(const PowerBreakdown &b, double seconds)
{
    return seconds > 0.0 ? b.totalJ() / seconds : 0.0;
}

} // namespace tango::sim
