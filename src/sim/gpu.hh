/**
 * @file
 * The top-level virtual GPU: device memory + an SM model + the shared L2
 * and DRAM, with CTA sampling and whole-GPU extrapolation.
 *
 * One SM is simulated in cycle detail; statistics are scaled by
 * (total CTAs / simulated CTAs) and execution time is extrapolated by CTA
 * waves across all SMs, in the spirit of sampled simulation (the paper ran
 * full networks on GPGPU-Sim over many hours; the benches here must finish
 * in seconds).  Small kernels — and anything launched with
 * SimPolicy::fullSim — are simulated exactly and functionally.
 */

#ifndef TANGO_SIM_GPU_HH
#define TANGO_SIM_GPU_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/memory.hh"
#include "sim/power.hh"
#include "sim/shard.hh"

namespace tango::sim {

/** A virtual GPU device. */
class Gpu
{
  public:
    /** @param cfg the platform to model. */
    explicit Gpu(GpuConfig cfg);

    /** @return the device's global memory. */
    DeviceMemory &mem() { return mem_; }
    const DeviceMemory &mem() const { return mem_; }

    /** @return the platform configuration. */
    const GpuConfig &config() const { return cfg_; }

    /**
     * Switch the device to a new platform configuration (config sweeps,
     * worker reuse in rt::Engine).  Rebuilds the L2/DRAM memory system
     * unconditionally and cold-starts it, so no warm state or stale
     * cache geometry survives the switch.  Never call mid-launch.
     */
    void reconfigure(GpuConfig cfg);

    /**
     * Launch a kernel and simulate it under @p policy.
     *
     * With SimPolicy::memoize (the default, unless TANGO_NO_MEMO=1 is
     * set) repeated identical launches that have reached a provable
     * steady state are *replayed*: lanes execute functionally for real
     * values while the cached statistics of the steady-state simulation
     * are spliced in (KernelStats::replayed marks them).  Statistics are
     * bit-identical either way.
     *
     * @return complete, scaled statistics including power.
     */
    KernelStats launch(const KernelLaunch &launch,
                       const SimPolicy &policy = {});

    /** @return the static (always-on) power of the whole device in W. */
    double staticPowerW(uint32_t active_sms) const;

    /** Drop all warm L2/DRAM state (e.g. between unrelated networks).
     *  Also drops every memoized launch baseline: memoization reasons
     *  about state continuity, which a cold start breaks. */
    void coldStart();

  private:
    /**
     * One launch signature's memoization record (see launch()).
     *
     * Lifecycle: occurrence 1 of a signature only counts (`seen`);
     * occurrences 2+ run fully *with* Step-stream hashing and an
     * end-of-launch µ-arch fingerprint; when two consecutive full
     * simulations produce bit-identical statistics, fingerprints and
     * stream hashes the entry arms, and later occurrences replay
     * (functional-only execution + cached statistics).  Any divergence
     * disarms and re-baselines.
     */
    struct MemoEntry
    {
        uint64_t seen = 0;        ///< occurrences of this signature
        bool hasBaseline = false; ///< stats/fingerprint/streamHash valid
        bool armed = false;       ///< steady state confirmed; replay
        uint64_t fingerprint = 0; ///< end-of-launch µ-arch state digest
        uint64_t streamHash = 0;  ///< combined Step-stream digest
        KernelStats stats;        ///< full scaled stats of the steady state
        uint64_t replays = 0;     ///< launches served by replay
    };

    /** (Re)build the shared L2 + DRAM if the config changed. */
    void ensureMemorySystem();

    /**
     * Simulate one launch split across @p plan (>= 2 shards): fork one
     * worker thread per extra shard (shard 0 runs on the caller), each
     * with a private L2 clone / DRAM / SmCore / trace ring, then reduce
     * stats, profiles, stream digests and trace events in fixed shard
     * order (sim/shard.hh).  Returns raw (unscaled) statistics exactly
     * like SmCore::run; launch() applies the common scaling after.
     * @param hashed whether stream digests + fingerprints are wanted
     *        (memo arming); when set, @p stream_hash and @p fingerprint
     *        receive the shard-order folds.
     */
    KernelStats launchSharded(const KernelLaunch &launch,
                              const SimPolicy &policy,
                              const std::vector<CtaShard> &plan,
                              const std::vector<uint64_t> &ids,
                              const std::vector<uint32_t> &warp_ids,
                              uint32_t resident, bool hashed,
                              trace::TraceSink *parent_sink,
                              uint64_t *stream_hash, uint64_t *fingerprint);

    /** Digest of the end-of-launch µ-arch state (L2 + DRAM + SM caches). */
    uint64_t stateFingerprint(const SmCore &core) const;

    GpuConfig cfg_;
    DeviceMemory mem_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Dram> dram_;
    uint32_t l2BytesBuilt_ = 0;
    /** Launch-memoization table, keyed by launch signature.  Cleared on
     *  coldStart()/reconfigure(), so entries never span a config change
     *  (which is why GpuConfig is not part of the signature). */
    std::unordered_map<uint64_t, MemoEntry> memo_;
    /** Scratch snapshot of device memory for replay fallback. */
    std::vector<uint8_t> memoSnapshot_;
};

} // namespace tango::sim

#endif // TANGO_SIM_GPU_HH
