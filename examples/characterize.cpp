/**
 * @file
 * Characterize: the suite's command-line workhorse.
 *
 *     characterize [network] [--platform GP102|GK210|TX1]
 *                  [--sched gto|lrr|tlv] [--l1 KB] [--quant] [--exact]
 *
 * Runs one network (default: all seven) under the chosen configuration
 * and prints the full characterization: per-layer-type time, instruction
 * and data-type mixes, stall breakdown, cache statistics, power and
 * footprint — the per-network view behind every figure in the paper.
 *
 * All requested networks are submitted to the process-wide rt::Engine
 * up front, so they simulate concurrently while the reports print in
 * order.
 */

#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "profiler/profiler.hh"
#include "runtime/engine.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace {

using namespace tango;

struct Options
{
    std::vector<std::string> nets;
    std::string platform = "GP102";
    sim::SchedPolicy sched = sim::SchedPolicy::GTO;
    int l1Kb = -1;
    bool quant = false;
    bool exact = false;
};

void
usage()
{
    std::cout
        << "usage: characterize [network ...] [--platform GP102|GK210|"
           "TX1]\n"
           "                    [--sched gto|lrr|tlv] [--l1 KB] [--quant]"
           " [--exact]\n"
           "networks: gru lstm cifarnet alexnet squeezenet resnet vggnet"
           " mobilenet\n";
}

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--platform") {
            const char *v = next();
            if (!v)
                return false;
            opt.platform = v;
        } else if (a == "--sched") {
            const char *v = next();
            if (!v)
                return false;
            const std::string s = v;
            opt.sched = s == "lrr"   ? sim::SchedPolicy::LRR
                        : s == "tlv" ? sim::SchedPolicy::TLV
                                     : sim::SchedPolicy::GTO;
        } else if (a == "--l1") {
            const char *v = next();
            if (!v)
                return false;
            opt.l1Kb = std::atoi(v);
        } else if (a == "--quant") {
            opt.quant = true;
        } else if (a == "--exact") {
            opt.exact = true;
        } else if (a == "--help" || a == "-h") {
            return false;
        } else {
            opt.nets.push_back(a);
        }
    }
    if (opt.nets.empty())
        opt.nets = nn::models::allNames();
    return true;
}

/** The engine cache key + config for one characterization point. */
rt::RunKey
pointKey(const Options &opt, const std::string &name)
{
    rt::RunKey key{name};
    key.platform = opt.platform;
    key.sched = opt.sched;
    key.policy = opt.exact ? "exact" : "bench";
    // Platform-default L1D unless --l1 overrides it.
    key.l1dBytes = rt::makeConfig(key).l1dBytes;
    if (opt.l1Kb >= 0)
        key.l1dBytes = static_cast<uint32_t>(opt.l1Kb) * 1024;
    return key;
}

/** Enqueue one network's simulation on the engine. */
std::shared_future<const rt::NetRun *>
submitOne(const Options &opt, const std::string &name)
{
    const rt::RunKey key = pointKey(opt, name);
    if (!opt.quant || name == "gru" || name == "lstm")
        return rt::Engine::global().submit(key);

    // Quantized weights are not part of the standard key space: submit
    // a custom job under an extended cache key.
    return rt::Engine::global().submit(
        key.str() + "+quant", rt::makeConfig(key),
        [name, policy = key.policy](sim::Gpu &gpu) {
            nn::AnyModel model = nn::models::buildAny(name);
            nn::initWeights(model);
            nn::quantizeConvWeights(model.cnn());
            rt::Runtime rtm(gpu);
            return rtm.run(model, rt::RunPolicy::named(policy));
        });
}

void
characterize(const Options &opt, const std::string &name,
             const rt::NetRun &run)
{
    const sim::GpuConfig cfg = rt::makeConfig(pointKey(opt, name));

    std::cout << "\n##### " << name << " on " << cfg.name
              << " (l1=" << cfg.l1dBytes / 1024
              << "KB, sched=" << sim::schedName(cfg.scheduler)
              << (opt.quant ? ", quantized" : "") << ")\n";
    rt::printRunSummary(std::cout, run);
    rt::printSeries(std::cout, "time per layer type",
                    prof::layerTimeBreakdown(run), true);
    rt::printSeries(std::cout, "top operations",
                    prof::topN(prof::opBreakdown(run.totals), 10), true);
    rt::printSeries(std::cout, "data types",
                    prof::dtypeBreakdown(run.totals), true);
    rt::printSeries(std::cout, "stall cycles",
                    prof::stallBreakdown(run.totals), true);

    Table mem("memory system");
    mem.header({"metric", "value"});
    const double l1a = run.totals.get("mem.l1d.accesses");
    const double l2a = run.totals.get("mem.l2.accesses");
    mem.row({"L1D accesses", Table::num(l1a, 0)});
    mem.row({"L1D miss ratio",
             Table::pct(l1a > 0 ? run.totals.get("mem.l1d.misses") / l1a
                                : 0.0)});
    mem.row({"L2 accesses", Table::num(l2a, 0)});
    mem.row({"L2 miss ratio",
             Table::pct(l2a > 0 ? run.totals.get("mem.l2.misses") / l2a
                                : 0.0)});
    mem.row({"DRAM bursts", Table::num(run.totals.get("dram.accesses"),
                                       0)});
    mem.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opt;
    if (!parse(argc, argv, opt)) {
        usage();
        return 1;
    }
    // Submit everything first: the engine simulates the networks in
    // parallel while the reports stream out in request order.
    std::vector<std::shared_future<const rt::NetRun *>> futures;
    for (const auto &name : opt.nets)
        futures.push_back(submitOne(opt, name));
    for (size_t i = 0; i < opt.nets.size(); i++)
        characterize(opt, opt.nets[i], *futures[i].get());
    std::cout << "\ncharacterize: OK\n";
    return 0;
}
