/**
 * @file
 * The SM (streaming multiprocessor) timing model.
 *
 * One SmCore simulates a single SM executing a list of CTAs of one kernel:
 * a warp scheduler issues instructions from resident warps, a scoreboard
 * enforces register dependencies, functional units have issue occupancy,
 * and memory instructions walk the L1D -> L2 -> DRAM hierarchy with
 * coalescing and MSHR back-pressure.  Functional execution (real values)
 * happens at issue time through WarpExec.
 *
 * The core also performs the paper's measurement duties: per-opcode and
 * per-dtype instruction counts (Figs 8-10), nvprof-style stall accounting
 * (Fig 7), µ-architectural event counts for the power model (Figs 3-6) and
 * a windowed peak-power tracker (Fig 3).
 */

#ifndef TANGO_SIM_CORE_HH
#define TANGO_SIM_CORE_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/interp.hh"
#include "sim/profile.hh"
#include "sim/program.hh"
#include "sim/scheduler.hh"
#include "sim/stall.hh"
#include "trace/trace.hh"

namespace tango::sim {

/** Controls how much of a kernel the timing model simulates in detail. */
struct SimPolicy
{
    /** Cap on concurrently resident CTAs per SM (0 = occupancy limit). */
    uint32_t maxResidentCtas = 4;
    /** Cap on concurrently resident (simulated) warps per SM
     *  (0 = no cap).  Unlike maxResidentCtas this adapts to the block
     *  size: single-thread blocks (AlexNet FC) keep their parallelism
     *  while kilothread blocks stay cheap to simulate. */
    uint32_t maxResidentWarps = 0;
    /** CTAs to simulate (0 = one full resident wave).  Values >= the grid
     *  size, or fullSim, simulate every CTA. */
    uint64_t maxSampledCtas = 0;
    /** Simulate every CTA (required for functional end-to-end outputs). */
    bool fullSim = false;
    /**
     * Warp sampling within a CTA (0 = all warps).  Only applied to
     * kernels without barriers (warps are then independent); statistics
     * and cycles are extrapolated linearly.  This is what makes the
     * single-CTA CifarNet-style kernels (Table III grid (1,1,1)) cheap
     * enough for config sweeps; it is ignored when fullSim functional
     * outputs are needed.
     */
    uint32_t maxWarpsPerCta = 0;
    /** Safety valve on simulated cycles per kernel. */
    uint64_t maxCycles = 500'000'000;
    /**
     * Steady-state launch memoization (sim/gpu.cc): once consecutive
     * occurrences of an identical launch signature produce bit-identical
     * statistics, identical µ-arch state fingerprints and identical
     * Step streams, later matching launches execute functionally only
     * and splice in the cached statistics.  Self-validating (any
     * divergence falls back to full simulation), on by default; the
     * TANGO_NO_MEMO=1 environment knob force-disables it at runtime.
     * Excluded from the launch signature itself.
     */
    bool memoize = true;
    /**
     * Per-PC attribution profiling (tango::prof): charge issued cycles,
     * per-reason stall cycles, L1D/L2 misses and DRAM transactions to
     * flat per-PC counter arrays and attach a KernelProfile to the
     * launch's KernelStats.  Pure observation: simulated statistics are
     * bit-identical with the flag on or off.  Part of the launch
     * signature (profiled and unprofiled runs memoize separately so
     * replays can splice cached profiles).  TANGO_PROFILE=1 forces it
     * on at runtime.
     */
    bool profile = false;
    /**
     * Intra-run CTA sharding (sim/gpu.cc, sim/shard.hh): partition the
     * launch's sampled CTAs into this many contiguous wave-aligned
     * shards, simulate each on its own SmCore with a private L2/DRAM
     * instance, and reduce the results in fixed shard order.  0 = read
     * the TANGO_SIM_SHARDS environment knob (default 1); 1 = the exact
     * sequential path.  Shard counts > 1 change the simulated sample's
     * memory-system interleaving, so their statistics are pinned by
     * K-parameterized golden fixtures rather than the K=1 set; for a
     * given K the results are bit-identical run to run regardless of
     * thread scheduling (tests/test_parallel_determinism.cc).  Part of
     * the launch memo signature.
     */
    uint32_t shards = 0;
};

/** Results of one kernel launch (scaled to the full grid). */
struct KernelStats
{
    std::string name;
    Dim3 grid, block;
    uint64_t totalCtas = 0;
    uint64_t sampledCtas = 0;
    uint32_t totalWarpsPerCta = 0;
    uint32_t sampledWarpsPerCta = 0;
    double scale = 1.0;          ///< stat scale factor (CTA x warp)

    uint64_t smCycles = 0;       ///< cycles simulated on the one SM
    double gpuCycles = 0.0;      ///< estimated whole-GPU cycles
    double timeSec = 0.0;        ///< gpuCycles / core clock
    uint32_t activeSms = 1;      ///< SMs the grid can keep busy

    /** Scaled counters: op.*, dtype.*, evt.*, stall.*, mem.*. */
    StatSet stats;

    // Resource usage (per-thread / per-CTA, from the program).
    uint32_t regsPerThread = 0;
    uint32_t maxLiveRegs = 0;
    uint32_t smemBytes = 0;
    uint32_t cmemBytes = 0;
    uint32_t residentCtas = 0;   ///< CTAs concurrently simulated on the SM
    uint32_t occupancyCtas = 0;  ///< hardware occupancy limit (uncapped)

    // Power (filled by Gpu::launch).
    double peakPowerW = 0.0;
    double avgPowerW = 0.0;
    double energyJ = 0.0;
    /** Peak per-SM dynamic power over any window, in watts. */
    double peakWindowDynW = 0.0;

    /** Whether these statistics were spliced in by the launch-memoization
     *  layer (functional-only execution; every number is a bit-identical
     *  copy of the steady-state full simulation).  Not a statistic: the
     *  golden fixtures deliberately ignore it. */
    bool replayed = false;

    /** Per-PC attribution profile (only when SimPolicy::profile).  Shared
     *  and treated as immutable once published: replayed launches point
     *  at the armed launch's profile, so never mutate through this
     *  pointer — clone first (runtime work scaling does). */
    std::shared_ptr<KernelProfile> profile;

    /** @return thread-level instruction count. */
    double totalThreadInstructions() const { return stats.sumPrefix("op."); }
};

/** One simulated SM executing a set of CTAs of a single kernel. */
class SmCore
{
  public:
    /**
     * @param cfg   platform configuration.
     * @param gmem  device memory (shared with the host-side setup).
     * @param l2    the GPU-shared L2 (owned by the Gpu).
     * @param dram  the DRAM model (owned by the Gpu).
     */
    SmCore(const GpuConfig &cfg, DeviceMemory &gmem, Cache &l2, Dram &dram);

    /**
     * Run @p cta_ids of @p launch to completion.
     * @param launch   the kernel.
     * @param cta_ids  linear CTA indices to simulate (in launch order).
     * @param warp_ids warp indices (within each CTA) to simulate.
     * @param resident_ctas concurrent CTA slots to use.
     * @param policy   simulation policy (cycle cap).
     * @param stream_hash when non-null, every warp folds its executed
     *        stream into an internal digest (WarpExec::enableStreamHash)
     *        and the combination — per-warp digests in (CTA order, warp
     *        order) position, the same fold runFunctionalOnly() computes
     *        — is written here.  No cost when null (the common case).
     * @return raw (unscaled) statistics for the simulated portion.
     */
    KernelStats run(const KernelLaunch &launch,
                    const std::vector<uint64_t> &cta_ids,
                    const std::vector<uint32_t> &warp_ids,
                    uint32_t resident_ctas, const SimPolicy &policy,
                    uint64_t *stream_hash = nullptr);

    /** Per-SM L1D statistics of the last run. */
    const CacheStats &l1dStats() const { return l1d_->stats(); }

    /** Per-warp Step-stream digests of the last run, one per (sampled
     *  CTA, sampled warp) launch position — populated only when run()
     *  was asked for a stream hash.  The sharded launch path
     *  (sim/gpu.cc) concatenates these across shards to rebuild the
     *  whole launch's digest array. */
    const std::vector<uint64_t> &streamDigests() const
    {
        return streamHashes_;
    }

    /** Deterministic digest of the SM-side µ-arch state (L1D + constant
     *  cache tags, recency order and MSHRs) after the last run.  Both
     *  caches are reset at the start of every run, so this is a pure
     *  function of the launch — one of the fingerprint inputs of the
     *  launch-memoization layer (sim/gpu.cc). */
    uint64_t stateDigest() const;

  private:
    struct CtaSlot
    {
        bool active = false;
        std::vector<uint8_t> smem;
        uint32_t liveWarps = 0;
        uint32_t barrierArrived = 0;
        std::vector<uint32_t> warpSlots;
    };

    struct WarpSlot
    {
        std::unique_ptr<WarpExec> exec;
        std::vector<uint64_t> regReady;
        std::vector<uint8_t> regPendKind;  // 0=alu 1=mem 2=const
        uint64_t fetchReady = 0;
        uint32_t cta = 0;
        bool active = false;
        bool atBarrier = false;
        uint64_t age = 0;
        /** Predecoded form of the next instruction to issue; refreshed
         *  after every issue so the scheduler's scoreboard scans touch no
         *  interpreter state. */
        const DecodedInstr *nextDec = nullptr;
        /** Index into streamHashes_ (launch-position keyed, stable across
         *  slot reuse); only meaningful while hashing_ is set. */
        uint32_t hashSlot = 0;
        /** Per-warp one-entry way predictors (pure lookup accelerators). */
        Cache::WayHint l1Hint, l2Hint, constHint;
    };

    /** Convert a linear CTA index to grid coordinates. */
    static Dim3 ctaCoord(const Dim3 &grid, uint64_t linear);

    void launchCta(const KernelLaunch &launch, uint64_t linear_id,
                   const std::vector<uint32_t> &warp_ids);
    bool issuableSlot(uint32_t slot, uint64_t now, Stall &why,
                      uint64_t &earliest);
    void issue(uint32_t slot, uint64_t now);
    uint64_t memoryLatency(const Step &st, uint64_t now, WarpSlot &w);
    void windowAccum(double pj, uint64_t now);

    const GpuConfig &cfg_;
    DeviceMemory &gmem_;
    Cache &l2_;
    Dram &dram_;
    /** This thread's trace sink (cached at construction; null = off). */
    trace::TraceSink *trace_ = nullptr;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> constCache_;
    std::unique_ptr<WarpScheduler> sched_;

    const KernelLaunch *launch_ = nullptr;
    /** Per-kernel predecoded program, owned by run() for its duration. */
    const DecodedProgram *decoded_ = nullptr;
    std::vector<CtaSlot> ctas_;
    std::vector<WarpSlot> warps_;
    std::vector<uint64_t> pendingCtas_;
    size_t nextPending_ = 0;
    uint64_t warpAgeCounter_ = 0;
    /** Step-stream digests, one per (sampled CTA, sampled warp) launch
     *  position; populated only when run() is asked for a stream hash. */
    std::vector<uint64_t> streamHashes_;
    bool hashing_ = false;
    uint32_t ctaOrderCounter_ = 0;   ///< CTAs launched so far this run
    uint32_t liveWarpTotal_ = 0;
    uint32_t freeCtas_ = 0;

    /** Dense per-slot mirrors of the scheduler-visible warp state.  The
     *  per-cycle loops (eval, pick, stall accounting) touch only these
     *  flat arrays instead of striding over the big WarpSlot structs. */
    std::vector<uint8_t> activeF_;
    std::vector<uint8_t> issuable_;
    std::vector<Stall> why_;
    std::vector<uint64_t> ages_;
    std::vector<uint64_t> earliest_;

    // Unit occupancy (busy-until cycle), indexed by Unit.
    uint64_t unitBusy_[5] = {};
    uint64_t ldstThrottleUntil_ = 0;

    /** Raw event counters, kept as plain arrays for speed and converted to
     *  a StatSet once per kernel. */
    struct RawCounts
    {
        uint64_t op[static_cast<size_t>(Op::NumOps)] = {};
        uint64_t dtype[5] = {};   // F32, U32, S32, U16, S16
        uint64_t ic = 0, ib = 0, pipe = 0, rfOperand = 0;
        uint64_t sp = 0, fpu = 0, sfu = 0, sched = 0;
        uint64_t l1d = 0, cc = 0, shrd = 0, l2 = 0, noc = 0, mc = 0,
                 dram = 0;
        uint64_t issued = 0;
        uint64_t coalescedSegments = 0;
        uint64_t globalMemInsts = 0;
    };

    RawCounts raw_;
    StatSet stats_;
    StallCounts stalls_{};

    /** Per-PC attribution counters (SimPolicy::profile only).  Raw, like
     *  RawCounts; folded into a KernelProfile at the end of run().  All
     *  charging is read-only with respect to simulation state, so the
     *  simulated statistics stay bit-identical either way. */
    bool profiling_ = false;
    uint32_t profPc_ = 0;             ///< pc of the instr being issued
    std::vector<uint32_t> slotPc_;    ///< per-slot current pc mirror
    std::vector<uint64_t> pcIssued_;
    std::vector<uint64_t> pcStalls_;  ///< [pc * numStalls + reason]
    std::vector<uint64_t> pcL1dMiss_;
    std::vector<uint64_t> pcL2Miss_;
    std::vector<uint64_t> pcDram_;

    /** Issuability re-evaluation flags: a warp whose cached stall reason
     *  points to a far-future event is not re-scanned every cycle; it is
     *  marked dirty when it issues, when its CTA's barrier releases, or
     *  when it is (re)launched. */
    std::vector<uint8_t> evalDirty_;

    // Peak-power window tracking.
    uint64_t windowStart_ = 0;
    double windowEnergyPj_ = 0.0;
    double peakWindowDynW_ = 0.0;
    static constexpr uint64_t windowCycles = 4096;
};

} // namespace tango::sim

#endif // TANGO_SIM_CORE_HH
