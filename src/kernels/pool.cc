#include "kernels/kernels.hh"

#include <cstring>

#include "common/logging.hh"
#include "kernels/builder.hh"
#include "kernels/emit_util.hh"

namespace tango::kern {

namespace {

constexpr float negInf = -3.4e38f;

} // namespace

void
PoolDesc::derive()
{
    if (globalAvg) {
        P = Q = 1;
        return;
    }
    if (P == 0)
        P = (H + 2 * pad - win) / stride + 1;
    if (Q == 0)
        Q = (W + 2 * pad - win) / stride + 1;
}

std::shared_ptr<Program>
buildPool(const PoolDesc &desc)
{
    PoolDesc d = desc;
    d.derive();

    Builder b(d.name);
    auto mSetup = b.mark("pool.setup");
    b.constant(20);    // C H W P Q

    Reg pIn = b.param(0);
    Reg pOut = b.param(1);

    Reg rC = b.ldc(DType::U32, 0);
    Reg rH = b.ldc(DType::U32, 4);
    Reg rWd = b.ldc(DType::U32, 8);
    Reg rP = b.ldc(DType::U32, 12);
    Reg rQ = b.ldc(DType::U32, 16);

    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);

    Reg acc = b.reg(), tIy = b.reg(), tIx = b.reg(), tV = b.reg();
    Reg tOff = b.reg(), tAddr = b.reg(), tF1 = b.reg(), tF2 = b.reg();
    Reg tBase = b.reg(), xs = b.reg(), ys = b.reg();
    Reg i = b.reg(), j = b.reg();
    PredReg pLd = b.pred();
    PredReg pSt = b.pred();

    if (d.globalAvg) {
        // One thread per channel: average the whole input plane.
        Reg k = b.movS(SReg::CtaIdX);
        b.emit3i(Op::Mul, DType::U32, k, k, d.block.x);
        b.emit3(Op::Add, DType::U32, k, k, tx);
        PredReg pK = b.pred();
        b.setp(pK, DType::U32, Cmp::Lt, k, rC);
        b.movF(acc, 0.0f);
        {
            // The whole plane sum is the `acc += in[k][i][j]` statement.
            auto m = b.mark("pool.gavg");
            // base = k*H*W
            b.emit3(Op::Mul, DType::U32, tBase, rH, rWd);
            b.emit3(Op::Mul, DType::U32, tBase, tBase, k);
            b.forLoop(i, 0, rH, [&] {
                b.forLoop(j, 0, rWd, [&] {
                    b.emit3(Op::Mul, DType::U32, tOff, i, rWd);
                    b.emit3(Op::Add, DType::U32, tOff, tOff, j);
                    b.emit3(Op::Add, DType::U32, tOff, tOff, tBase);
                    b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
                    b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
                    b.guard(pK);
                    b.ld(DType::F32, Space::Global, tV, tAddr);
                    b.endGuard();
                    b.emit3(Op::Add, DType::F32, acc, acc, tV);
                });
            });
        }
        {
            auto m = b.mark("pool.store");
            b.emit3f(Op::Mul, acc, acc, 1.0f / (float(d.H) * float(d.W)));
            b.emit3i(Op::Shl, DType::U32, tOff, k, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
            b.guard(pK);
            b.st(DType::F32, Space::Global, tAddr, acc);
            b.endGuard();
        }
        return b.finish();
    }

    auto emitOutput = [&](Reg k, Reg x, Reg y) {
        {
            auto m = b.mark("pool.idx");
            b.movF(acc, d.avg ? 0.0f : negInf);
            b.emit3i(Op::Mul, DType::U32, xs, x, d.stride);
            b.emit3i(Op::Add, DType::U32, xs, xs,
                     static_cast<uint32_t>(-static_cast<int32_t>(d.pad)));
            b.emit3i(Op::Mul, DType::U32, ys, y, d.stride);
            b.emit3i(Op::Add, DType::U32, ys, ys,
                     static_cast<uint32_t>(-static_cast<int32_t>(d.pad)));
            // base = k*H (plane row base built per i)
            b.emit3(Op::Mul, DType::U32, tBase, k, rH);
        }
        {
            // The pooling window is small and a build constant, so it is
            // fully unrolled, as the compiler would.  The whole unrolled
            // window is the `acc = max/sum(acc, in[...])` statement.
            auto m = b.mark("pool.acc");
            for (uint32_t i = 0; i < d.win; i++) {
                b.emit3i(Op::Add, DType::U32, tIy, ys, i);
                b.setr(DType::U16, Cmp::Lt, tF1, tIy, rH);
                for (uint32_t j = 0; j < d.win; j++) {
                    b.emit3i(Op::Add, DType::U32, tIx, xs, j);
                    b.setr(DType::U16, Cmp::Lt, tF2, tIx, rWd);
                    b.emit3(Op::And, DType::U16, tF2, tF2, tF1);
                    b.setpi(pLd, DType::U16, Cmp::Ne, tF2, 0);
                    b.emit3(Op::Add, DType::U32, tOff, tBase, tIy);
                    b.mad(DType::U32, tOff, tOff, rWd, tIx);
                    b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
                    b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
                    b.movF(tV, d.avg ? 0.0f : negInf);
                    b.guard(pLd);
                    b.ld(DType::F32, Space::Global, tV, tAddr);
                    b.endGuard();
                    if (d.avg)
                        b.emit3(Op::Add, DType::F32, acc, acc, tV);
                    else
                        b.emit3(Op::Max, DType::F32, acc, acc, tV);
                }
            }
        }
        {
            auto m = b.mark("pool.store");
            if (d.avg)
                b.emit3f(Op::Mul, acc, acc, 1.0f / float(d.win * d.win));
            b.setr(DType::U16, Cmp::Lt, tF1, x, rQ);
            b.setr(DType::U16, Cmp::Lt, tF2, y, rP);
            b.emit3(Op::And, DType::U16, tF1, tF1, tF2);
            b.setpi(pSt, DType::U16, Cmp::Ne, tF1, 0);
            b.mad(DType::U32, tOff, k, rP, y);
            b.emit3(Op::Mul, DType::U32, tOff, tOff, rQ);
            b.emit3(Op::Add, DType::U32, tOff, tOff, x);
            b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
            b.guard(pSt);
            b.st(DType::F32, Space::Global, tAddr, acc);
            b.endGuard();
        }
    };

    Reg k;
    switch (d.channelSrc) {
      case ChannelSrc::GridX:
        k = b.movS(SReg::CtaIdX);
        break;
      case ChannelSrc::GridZ:
        k = b.movS(SReg::CtaIdZ);
        break;
      case ChannelSrc::Loop:
        k = b.reg();
        break;
    }

    auto withPixels = [&](const std::function<void(Reg, Reg)> &body) {
        switch (d.pixelMap) {
          case PixelMap::TileOrigin: {
            Reg x = tx, y = ty;
            if (d.tileX) {
                x = b.reg();
                b.emit3i(Op::Add, DType::U32, x, tx, d.tileX);
            }
            if (d.tileY) {
                y = b.reg();
                b.emit3i(Op::Add, DType::U32, y, ty, d.tileY);
            }
            body(x, y);
            break;
          }
          case PixelMap::FromGridXY: {
            Reg bx = b.movS(SReg::CtaIdX);
            Reg by = b.movS(SReg::CtaIdY);
            Reg x = b.reg(), y = b.reg();
            b.emit3i(Op::Mul, DType::U32, x, bx, d.block.x);
            b.emit3(Op::Add, DType::U32, x, x, tx);
            b.emit3i(Op::Mul, DType::U32, y, by, d.block.y);
            b.emit3(Op::Add, DType::U32, y, y, ty);
            body(x, y);
            break;
          }
          case PixelMap::RowBlock: {
            Reg y = b.movS(SReg::CtaIdX);
            body(tx, y);
            break;
          }
          case PixelMap::StrideLoop: {
            Reg yy = b.reg(), xx = b.reg();
            detail::stridedLoop(b, yy, ty, rP, d.block.y, [&] {
                detail::stridedLoop(b, xx, tx, rQ, d.block.x,
                            [&] { body(xx, yy); }, "pool.pixloop");
            }, "pool.pixloop");
            break;
          }
        }
    };

    if (d.channelSrc == ChannelSrc::Loop) {
        withPixels([&](Reg x, Reg y) {
            b.forLoopI(k, 0, d.C, [&] { emitOutput(k, x, y); });
        });
    } else {
        withPixels([&](Reg x, Reg y) { emitOutput(k, x, y); });
    }

    return b.finish();
}

KernelLaunch
makePoolLaunch(const PoolDesc &desc, uint32_t in, uint32_t out)
{
    PoolDesc d = desc;
    d.derive();
    KernelLaunch l;
    l.program = buildPool(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {in, out};
    l.constData = detail::packConst({d.C, d.H, d.W, d.P, d.Q});
    return l;
}

} // namespace tango::kern
