/**
 * @file
 * Per-PC attribution profiler tests (sim/profile, profiler hotspot
 * rollups, tango-prof plumbing).
 *
 * The profiler is pure observation: with SimPolicy::profile on, every
 * statistic the simulator reports must stay bit-identical, and the
 * per-PC counters must sum *exactly* (same double arithmetic, compared
 * bitwise) to the per-kernel StatSet totals — across all seven paper
 * networks, memoized replays included.  These tests pin that contract,
 * plus the DSL source mapping (builder mark() scopes) and the run-cache
 * round-trip of profiles.
 */

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

#include "kernels/builder.hh"
#include "nn/models/models.hh"
#include "profiler/profiler.hh"
#include "runtime/engine.hh"
#include "runtime/run_cache.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"
#include "sim/profile.hh"

namespace tango {
namespace {

rt::NetRun
runProfiled(const std::string &net)
{
    rt::RunKey key;                       // GP102 / bench defaults
    sim::Gpu gpu(rt::makeConfig(key));
    rt::RunPolicy policy = rt::RunPolicy::named("bench");
    policy.sim.profile = true;
    return rt::runNetworkByName(gpu, net, policy);
}

size_t
profiledKernels(const rt::NetRun &run)
{
    size_t n = 0;
    for (const auto &l : run.layers)
        for (const auto &k : l.kernels)
            n += k.profile != nullptr;
    return n;
}

// Per-PC rollups must sum exactly to the KernelStats totals on every
// network the paper benches, replayed launches included.
TEST(Prof, ConsistentAcrossAllSevenNetworks)
{
    for (const std::string &net : nn::models::allNames()) {
        SCOPED_TRACE(net);
        const rt::NetRun run = runProfiled(net);
        EXPECT_GT(profiledKernels(run), 0u);
        std::string why;
        EXPECT_TRUE(prof::checkProfileConsistency(run, &why)) << why;
    }
}

// Profiling is observation only: every reported statistic stays
// bit-identical with the flag on.  Serialized JSON (17 significant
// digits, bit-exact) is the strongest equality we can ask for.
TEST(Prof, ProfileFlagDoesNotPerturbStatistics)
{
    rt::RunKey key;
    rt::RunPolicy off = rt::RunPolicy::named("bench");
    rt::RunPolicy on = off;
    on.sim.profile = true;

    sim::Gpu gpuOff(rt::makeConfig(key));
    rt::NetRun a = rt::runNetworkByName(gpuOff, "cifarnet", off);
    sim::Gpu gpuOn(rt::makeConfig(key));
    rt::NetRun b = rt::runNetworkByName(gpuOn, "cifarnet", on);

    EXPECT_EQ(profiledKernels(a), 0u);
    EXPECT_GT(profiledKernels(b), 0u);
    for (auto &l : b.layers)
        for (auto &k : l.kernels)
            k.profile = nullptr;
    EXPECT_EQ(rt::serializeNetRun(a), rt::serializeNetRun(b));
}

// Memoized steady-state replays splice the armed launch's cached
// profile instead of re-simulating.
TEST(Prof, MemoReplaySplicesProfile)
{
    const rt::NetRun run = runProfiled("gru");
    size_t replayedWithProfile = 0;
    for (const auto &l : run.layers)
        for (const auto &k : l.kernels)
            replayedWithProfile += k.replayed && k.profile != nullptr;
    EXPECT_GT(run.totals.get("mem.replayed_launches"), 0.0);
    EXPECT_GT(replayedWithProfile, 0u);
    std::string why;
    EXPECT_TRUE(prof::checkProfileConsistency(run, &why)) << why;
}

// Profiles ride on NetRun through the Engine's disk spill format.
TEST(Prof, RunCacheRoundTripsProfiles)
{
    const rt::NetRun run = runProfiled("cifarnet");
    rt::NetRun back;
    ASSERT_TRUE(rt::parseNetRunJson(rt::serializeNetRun(run), back));
    ASSERT_EQ(back.layers.size(), run.layers.size());
    for (size_t li = 0; li < run.layers.size(); li++) {
        const auto &ka = run.layers[li].kernels;
        const auto &kb = back.layers[li].kernels;
        ASSERT_EQ(kb.size(), ka.size());
        for (size_t ki = 0; ki < ka.size(); ki++) {
            ASSERT_EQ(kb[ki].profile != nullptr, ka[ki].profile != nullptr);
            if (ka[ki].profile) {
                EXPECT_EQ(*kb[ki].profile, *ka[ki].profile);
            }
        }
    }
    std::string why;
    EXPECT_TRUE(prof::checkProfileConsistency(back, &why)) << why;
}

// The DSL source mapping: mark() scopes nest, unlabeled code maps to
// the empty label, and pcLabel stays in lock-step with the code.
TEST(Prof, BuilderMarkScopesNest)
{
    kern::Builder b("prof.marks");
    kern::Reg r = b.immU(1);              // before any mark: unlabeled
    {
        auto outer = b.mark("outer");
        b.addi(sim::DType::U32, r, 1);
        {
            auto inner = b.mark("inner");
            b.addi(sim::DType::U32, r, 2);
        }
        b.addi(sim::DType::U32, r, 3);    // outer label resumes
    }
    b.exit();                             // after all marks: unlabeled
    const auto prog = b.finish();
    const sim::Program &p = *prog;

    ASSERT_EQ(p.debug.pcLabel.size(), p.code.size());
    ASSERT_EQ(p.code.size(), 5u);
    EXPECT_EQ(p.debug.labelAt(0), "");
    EXPECT_EQ(p.debug.labelAt(1), "outer");
    EXPECT_EQ(p.debug.labelAt(2), "inner");
    EXPECT_EQ(p.debug.labelAt(3), "outer");
    EXPECT_EQ(p.debug.labelAt(4), "");
    EXPECT_EQ(p.debug.labelAt(1000), "");  // out of range -> unlabeled
}

// Hotspot rollup, annotated disassembly and folded-stack export agree
// with each other on a real network.
TEST(Prof, HotspotRollupAndExports)
{
    const rt::NetRun run = runProfiled("cifarnet");

    const std::vector<prof::Hotspot> rows = prof::hotspots(run);
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows[0].label, "conv.mac");  // MAC inner loop dominates
    for (size_t i = 1; i < rows.size(); i++)
        EXPECT_GE(rows[i - 1].cycles, rows[i].cycles);

    const auto lines = prof::annotateKernel(run, rows[0].kernel);
    ASSERT_FALSE(lines.empty());
    double annotated = 0.0;
    for (const auto &l : lines) {
        EXPECT_FALSE(l.text.empty());
        annotated += l.issued + l.stallCycles;
    }
    EXPECT_GT(annotated, 0.0);

    // Every folded line is "net;layer;kernel;label <integer cycles>".
    const std::string folded = prof::foldedStacks(run);
    ASSERT_FALSE(folded.empty());
    const std::regex line("cifarnet;[^;]+;[^;]+;[^ ;]+ [0-9]+");
    size_t pos = 0, checked = 0;
    while (pos < folded.size()) {
        const size_t nl = folded.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        const std::string one = folded.substr(pos, nl - pos);
        EXPECT_TRUE(std::regex_match(one, line)) << one;
        pos = nl + 1;
        checked++;
    }
    EXPECT_GT(checked, 0u);
    EXPECT_NE(folded.find(";conv.mac "), std::string::npos);
}

} // namespace
} // namespace tango
