/**
 * @file
 * Lowering: turn a network description into device buffers and a sequence
 * of kernel launches, honouring each layer's Table-III launch hint
 * (including AlexNet's four-way output tiling and two-way filter splits,
 * and SqueezeNet's zero-copy expand-into-concat outputs).
 */

#ifndef TANGO_RUNTIME_LOWERING_HH
#define TANGO_RUNTIME_LOWERING_HH

#include <string>
#include <vector>

#include "nn/network.hh"
#include "sim/memory.hh"
#include "sim/program.hh"

namespace tango::rt {

/** One kernel of a lowered network. */
struct LoweredKernel
{
    sim::KernelLaunch launch;
    int layerIndex = -1;
    std::string figType;
    /** Work scale for timing-only loop-channel sampling: the kernel was
     *  lowered with fewer in-thread loop channels; every statistic must
     *  be multiplied by this factor (1.0 = exact). */
    double workScale = 1.0;
};

/** A network lowered onto a device. */
struct LoweredNet
{
    std::vector<LoweredKernel> kernels;
    uint32_t inputAddr = 0;
    std::vector<uint32_t> layerOut;   ///< device address per layer output
    uint64_t deviceBytes = 0;         ///< total footprint (weights + maps)
};

/**
 * Lower a CNN.
 * @param net the network (weights may be absent for timing-only studies).
 * @param mem device memory to allocate from.
 * @param upload_weights copy parameter tensors into device memory
 *        (requires initWeights() to have been called).
 * @param max_loop_channels timing-only: kernels that loop over output
 *        filters/channels *inside each thread* (CifarNet/SqueezeNet
 *        mappings) are lowered with at most this many loop channels and
 *        their statistics scaled back up (0 = exact lowering).  The loop
 *        iterations are homogeneous, so the extrapolation is tight; never
 *        use together with functional output checking.
 */
LoweredNet lower(const nn::Network &net, sim::DeviceMemory &mem,
                 bool upload_weights, uint32_t max_loop_channels = 0);

/** A lowered RNN model: per-time-step cell kernels plus the readout. */
struct LoweredRnn
{
    std::vector<LoweredKernel> kernels;   ///< seqLen cells + 1 FC
    /** Staging slot for the current step's input vector.  One slot shared
     *  by every timestep (the runtime copies x[t] in before each cell
     *  launch) so that all even-t cell launches — and all odd-t ones —
     *  carry identical parameter vectors, which is what lets the
     *  launch-memoization layer (sim/gpu.cc) recognize them as repeats. */
    uint32_t xAddr = 0;
    uint32_t hAddr[2] = {0, 0};           ///< ping-pong hidden state
    uint32_t cAddr[2] = {0, 0};           ///< ping-pong cell state (LSTM)
    uint32_t outAddr = 0;                 ///< predicted value
    uint32_t finalH = 0;                  ///< device address of last hidden
    uint64_t deviceBytes = 0;
};

/** Lower an RNN model (see lower()). */
LoweredRnn lowerRnn(const nn::RnnModel &model, sim::DeviceMemory &mem,
                    bool upload_weights);

/** @return parameter bytes a layer needs on the device. */
uint64_t layerWeightBytes(const nn::Layer &l);

} // namespace tango::rt

#endif // TANGO_RUNTIME_LOWERING_HH
