#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace tango {

uint64_t
envUint(const char *name, uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    // Reject signs and whitespace up front: strtoull accepts "-1" (as a
    // huge wraparound) and leading spaces, neither of which is a sane
    // knob value.
    if (!std::isdigit(static_cast<unsigned char>(v[0])))
        fatal("%s expects a non-negative integer, got '%s'", name, v);
    errno = 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (errno == ERANGE)
        fatal("%s value '%s' is out of range", name, v);
    if (!end || *end != '\0')
        fatal("%s expects a non-negative integer, got '%s'", name, v);
    return n;
}

} // namespace tango
