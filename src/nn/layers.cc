#include "nn/network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace tango::nn {

namespace {

Tensor
convRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.K, l.P, l.Q});
    for (uint32_t k = 0; k < l.K; k++) {
        for (uint32_t y = 0; y < l.P; y++) {
            for (uint32_t x = 0; x < l.Q; x++) {
                float acc = l.bias ? l.biasT[k] : 0.0f;
                for (uint32_t c = 0; c < l.C; c++) {
                    for (uint32_t r = 0; r < l.R; r++) {
                        const int32_t iy =
                            int32_t(y * l.stride) - int32_t(l.pad) +
                            int32_t(r);
                        if (iy < 0 || iy >= int32_t(l.H))
                            continue;
                        for (uint32_t s = 0; s < l.S; s++) {
                            const int32_t ix =
                                int32_t(x * l.stride) - int32_t(l.pad) +
                                int32_t(s);
                            if (ix < 0 || ix >= int32_t(l.W))
                                continue;
                            acc = std::fma(in.at(c, iy, ix),
                                           l.weights.at4(k, c, r, s), acc);
                        }
                    }
                }
                if (l.relu)
                    acc = std::max(acc, 0.0f);
                out.at(k, y, x) = acc;
            }
        }
    }
    return out;
}

Tensor
depthwiseRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.C, l.P, l.Q});
    for (uint32_t c = 0; c < l.C; c++) {
        for (uint32_t y = 0; y < l.P; y++) {
            for (uint32_t x = 0; x < l.Q; x++) {
                float acc = l.bias ? l.biasT[c] : 0.0f;
                for (uint32_t r = 0; r < l.R; r++) {
                    const int32_t iy = int32_t(y * l.stride) -
                                       int32_t(l.pad) + int32_t(r);
                    if (iy < 0 || iy >= int32_t(l.H))
                        continue;
                    for (uint32_t s = 0; s < l.S; s++) {
                        const int32_t ix = int32_t(x * l.stride) -
                                           int32_t(l.pad) + int32_t(s);
                        if (ix < 0 || ix >= int32_t(l.W))
                            continue;
                        acc = std::fma(
                            in.at(c, iy, ix),
                            l.weights[(uint64_t(c) * l.R + r) * l.S + s],
                            acc);
                    }
                }
                if (l.relu)
                    acc = std::max(acc, 0.0f);
                out.at(c, y, x) = acc;
            }
        }
    }
    return out;
}

Tensor
poolRef(const Layer &l, const Tensor &in)
{
    if (l.globalAvg) {
        Tensor out({l.C});
        for (uint32_t c = 0; c < l.C; c++) {
            float acc = 0.0f;
            for (uint32_t y = 0; y < l.H; y++) {
                for (uint32_t x = 0; x < l.W; x++)
                    acc += in.at(c, y, x);
            }
            out[c] = acc * (1.0f / (float(l.H) * float(l.W)));
        }
        return out;
    }
    Tensor out({l.C, l.P, l.Q});
    for (uint32_t c = 0; c < l.C; c++) {
        for (uint32_t y = 0; y < l.P; y++) {
            for (uint32_t x = 0; x < l.Q; x++) {
                float acc = l.avg ? 0.0f : -3.4e38f;
                for (uint32_t i = 0; i < l.R; i++) {
                    const int32_t iy =
                        int32_t(y * l.stride) - int32_t(l.pad) + int32_t(i);
                    for (uint32_t j = 0; j < l.S; j++) {
                        const int32_t ix = int32_t(x * l.stride) -
                                           int32_t(l.pad) + int32_t(j);
                        float v = l.avg ? 0.0f : -3.4e38f;
                        if (iy >= 0 && iy < int32_t(l.H) && ix >= 0 &&
                            ix < int32_t(l.W)) {
                            v = in.at(c, iy, ix);
                        }
                        acc = l.avg ? acc + v : std::max(acc, v);
                    }
                }
                if (l.avg)
                    acc *= 1.0f / float(l.R * l.S);
                out.at(c, y, x) = acc;
            }
        }
    }
    return out;
}

Tensor
fcRef(const Layer &l, const Tensor &in)
{
    TANGO_ASSERT(in.size() == l.inN, "fc input size mismatch");
    Tensor out({l.outN});
    for (uint32_t n = 0; n < l.outN; n++) {
        float acc = l.bias ? l.biasT[n] : 0.0f;
        for (uint32_t i = 0; i < l.inN; i++)
            acc = std::fma(in[i], l.weights[uint64_t(n) * l.inN + i], acc);
        if (l.relu)
            acc = std::max(acc, 0.0f);
        out[n] = acc;
    }
    return out;
}

Tensor
lrnRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.C, l.H, l.W});
    const int half = int(l.localSize) / 2;
    for (uint32_t c = 0; c < l.C; c++) {
        for (uint32_t y = 0; y < l.H; y++) {
            for (uint32_t x = 0; x < l.W; x++) {
                float sum = 0.0f;
                for (int j = int(c) - half; j <= int(c) + half; j++) {
                    if (j < 0 || j >= int(l.C))
                        continue;
                    const float v = in.at(uint32_t(j), y, x);
                    sum = std::fma(v, v, sum);
                }
                const float scale =
                    l.lrnK + l.alpha / float(l.localSize) * sum;
                out.at(c, y, x) =
                    in.at(c, y, x) / std::pow(scale, l.beta);
            }
        }
    }
    return out;
}

Tensor
batchNormRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.C, l.H, l.W});
    for (uint32_t c = 0; c < l.C; c++) {
        const float rstd = 1.0f / std::sqrt(l.var[c] + l.eps);
        for (uint32_t y = 0; y < l.H; y++) {
            for (uint32_t x = 0; x < l.W; x++)
                out.at(c, y, x) = (in.at(c, y, x) - l.mean[c]) * rstd;
        }
    }
    return out;
}

Tensor
scaleRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.C, l.H, l.W});
    for (uint32_t c = 0; c < l.C; c++) {
        for (uint32_t y = 0; y < l.H; y++) {
            for (uint32_t x = 0; x < l.W; x++) {
                float v = std::fma(in.at(c, y, x), l.gamma[c], l.betaT[c]);
                if (l.relu)
                    v = std::max(v, 0.0f);
                out.at(c, y, x) = v;
            }
        }
    }
    return out;
}

Tensor
reluRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.C, l.H, l.W});
    for (uint64_t i = 0; i < in.size(); i++)
        out[i] = std::max(in[i], 0.0f);
    return out;
}

Tensor
eltwiseRef(const Layer &l, const Tensor &a, const Tensor &b)
{
    TANGO_ASSERT(a.size() == b.size(), "eltwise size mismatch");
    Tensor out({l.C, l.H, l.W});
    for (uint64_t i = 0; i < a.size(); i++) {
        float v = a[i] + b[i];
        if (l.relu)
            v = std::max(v, 0.0f);
        out[i] = v;
    }
    return out;
}

Tensor
softmaxRef(const Layer &l, const Tensor &in)
{
    Tensor out({l.outN});
    TANGO_ASSERT(in.size() == l.outN, "softmax size mismatch");
    float m = -std::numeric_limits<float>::infinity();
    for (uint64_t i = 0; i < in.size(); i++)
        m = std::max(m, in[i]);
    float sum = 0.0f;
    for (uint64_t i = 0; i < in.size(); i++) {
        out[i] = std::exp(in[i] - m);
        sum += out[i];
    }
    const float inv = 1.0f / sum;
    for (uint64_t i = 0; i < in.size(); i++)
        out[i] *= inv;
    return out;
}

Tensor
concatRef(const Layer &l, const std::vector<const Tensor *> &ins)
{
    Tensor out({l.K, l.P, l.Q});
    uint32_t cOff = 0;
    for (const Tensor *t : ins) {
        const uint32_t c = t->dim(0);
        for (uint32_t ch = 0; ch < c; ch++) {
            for (uint32_t y = 0; y < l.P; y++) {
                for (uint32_t x = 0; x < l.Q; x++)
                    out.at(cOff + ch, y, x) = t->at(ch, y, x);
            }
        }
        cOff += c;
    }
    TANGO_ASSERT(cOff == l.K, "concat channel mismatch");
    return out;
}

} // namespace

Tensor
referenceForward(const Layer &layer, const std::vector<const Tensor *> &ins)
{
    TANGO_ASSERT(!ins.empty() && ins[0] != nullptr, "layer without input");
    const Tensor &in = *ins[0];
    switch (layer.kind) {
      case LayerKind::Input:
        return in;
      case LayerKind::Conv:
        return convRef(layer, in);
      case LayerKind::Depthwise:
        return depthwiseRef(layer, in);
      case LayerKind::Pool:
        return poolRef(layer, in);
      case LayerKind::FC:
        return fcRef(layer, in);
      case LayerKind::LRN:
        return lrnRef(layer, in);
      case LayerKind::BatchNorm:
        return batchNormRef(layer, in);
      case LayerKind::Scale:
        return scaleRef(layer, in);
      case LayerKind::ReLU:
        return reluRef(layer, in);
      case LayerKind::Eltwise:
        TANGO_ASSERT(ins.size() == 2, "eltwise needs two inputs");
        return eltwiseRef(layer, in, *ins[1]);
      case LayerKind::Softmax:
        return softmaxRef(layer, in);
      case LayerKind::Concat:
        return concatRef(layer, ins);
    }
    panic("unhandled layer kind");
}

} // namespace tango::nn
