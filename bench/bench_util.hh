/**
 * @file
 * Shared infrastructure for the benchmark harness.
 *
 * Every bench binary reproduces one table or figure of the paper: it runs
 * the relevant networks on the virtual GPU (memoized, so repeated queries
 * are free), prints the figure's series as aligned tables, and registers
 * google-benchmark entries whose counters carry the headline numbers (so
 * the values also appear in benchmark-formatted output and JSON).
 */

#ifndef TANGO_BENCH_BENCH_UTIL_HH
#define TANGO_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "kernels/kernels.hh"
#include "nn/models/models.hh"
#include "profiler/profiler.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango::bench {

/** Configuration knobs for a memoized network run. */
struct RunKey
{
    std::string net;
    std::string platform = "GP102";    // GP102 | GK210 | TX1
    uint32_t l1dBytes = 64 * 1024;     // 0 = bypassed
    sim::SchedPolicy sched = sim::SchedPolicy::GTO;
    bool memStudy = false;             // use rt::memStudyPolicy()
    bool stallStudy = false;           // use rt::stallStudyPolicy()

    std::string
    str() const
    {
        return net + "/" + platform + "/l1=" +
               std::to_string(l1dBytes / 1024) + "K/" +
               sim::schedName(sched) + (memStudy ? "/mem" : "") +
               (stallStudy ? "/stall" : "");
    }
    bool
    operator<(const RunKey &o) const
    {
        return str() < o.str();
    }
};

/** @return the GpuConfig for a RunKey. */
inline sim::GpuConfig
makeConfig(const RunKey &key)
{
    sim::GpuConfig cfg = key.platform == "GK210" ? sim::keplerGK210()
                         : key.platform == "TX1" ? sim::maxwellTX1()
                                                 : sim::pascalGP102();
    cfg.l1dBytes = key.l1dBytes;
    cfg.scheduler = key.sched;
    return cfg;
}

/** Run (or recall) a network under a configuration. */
inline const rt::NetRun &
netRun(const RunKey &key)
{
    static std::map<RunKey, std::unique_ptr<rt::NetRun>> cache;
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;
    sim::Gpu gpu(makeConfig(key));
    auto run = std::make_unique<rt::NetRun>(rt::runNetworkByName(
        gpu, key.net,
        key.memStudy     ? rt::memStudyPolicy()
        : key.stallStudy ? rt::stallStudyPolicy()
                         : rt::benchPolicy()));
    auto [pos, inserted] = cache.emplace(key, std::move(run));
    (void)inserted;
    return *pos->second;
}

/** Register a no-op benchmark whose counter carries a reproduced value. */
inline void
registerValue(const std::string &name, const std::string &counter,
              double value)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [counter, value](benchmark::State &state) {
            for (auto _ : state) {
                benchmark::DoNotOptimize(value);
            }
            state.counters[counter] = value;
        })
        ->Iterations(1);
}

/** A real timing benchmark: simulate one small conv kernel end to end
 *  (measures this machine's simulation throughput). */
inline void
registerSimSpeed()
{
    benchmark::RegisterBenchmark(
        "BM_SimulateConvKernel", [](benchmark::State &state) {
            sim::Gpu gpu(sim::pascalGP102());
            kern::ConvDesc d;
            d.C = 3;
            d.H = d.W = 12;
            d.K = 4;
            d.R = d.S = 3;
            d.pad = 1;
            d.filterSrc = kern::ChannelSrc::GridX;
            d.pixelMap = kern::PixelMap::TileOrigin;
            d.grid = {4, 1, 1};
            d.block = {12, 12, 1};
            const uint32_t in = gpu.mem().allocate(4 * 3 * 12 * 12);
            const uint32_t w = gpu.mem().allocate(4 * 4 * 3 * 3 * 3);
            const uint32_t b = gpu.mem().allocate(4 * 4);
            const uint32_t out = gpu.mem().allocate(4 * 4 * 12 * 12);
            auto launch = kern::makeConvLaunch(d, in, w, b, out);
            sim::SimPolicy p;
            p.fullSim = true;
            uint64_t instr = 0;
            for (auto _ : state) {
                auto ks = gpu.launch(launch, p);
                instr += static_cast<uint64_t>(ks.stats.get("issued"));
            }
            state.counters["warp_instrs_per_s"] = benchmark::Counter(
                static_cast<double>(instr), benchmark::Counter::kIsRate);
        });
}

/** Standard bench epilogue: init + run google-benchmark. */
inline int
runHarness(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace tango::bench

#endif // TANGO_BENCH_BENCH_UTIL_HH
