#include "trace/trace.hh"

namespace tango::trace {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::KernelBegin: return "kernel_begin";
      case EventKind::KernelEnd: return "kernel_end";
      case EventKind::LayerBegin: return "layer_begin";
      case EventKind::LayerEnd: return "layer_end";
      case EventKind::OccupancySample: return "occupancy";
      case EventKind::MshrSample: return "mshrs";
      case EventKind::StallTransition: return "stall_transition";
      case EventKind::CacheMiss: return "cache_miss";
      case EventKind::CacheFill: return "cache_fill";
      case EventKind::DramAccess: return "dram_access";
      case EventKind::KernelReplay: return "kernel_replay";
      case EventKind::NumKinds: break;
    }
    return "unknown";
}

// ---------------------------------------------------------------- RingSink

/** One SPSC ring.  The producer is the simulating thread; the consumer
 *  only reads after the run, so acquire/release on the write index is
 *  all the synchronization needed.  No entry is ever overwritten: a full
 *  ring drops the incoming event (drop accounting must be exact, and a
 *  half-overwritten timeline is worse than a truncated one). */
struct RingSink::Ring
{
    explicit Ring(uint32_t capacity) : buf(capacity) {}

    std::vector<Event> buf;
    std::atomic<uint64_t> head{0};     ///< next write slot (producer)
    std::atomic<uint64_t> dropped{0};  ///< events lost to a full ring
};

namespace {

uint32_t
roundUpPow2(uint32_t v)
{
    if (v < 2)
        return 2;
    uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

RingSink::RingSink(RingOptions opt) : capacity_(roundUpPow2(opt.capacity))
{
    setMask(opt.mask);
    setSamplePeriod(opt.samplePeriod);
    names_.push_back("");   // id 0 = unnamed
    nameIds_.emplace("", 0);
}

RingSink::~RingSink() = default;

RingSink::Ring &
RingSink::ring(uint8_t core)
{
    if (rings_.size() <= core)
        rings_.resize(size_t(core) + 1);
    if (!rings_[core])
        rings_[core] = std::make_unique<Ring>(capacity_);
    return *rings_[core];
}

void
RingSink::write(const Event &e)
{
    Ring &r = ring(e.core);
    const uint64_t head = r.head.load(std::memory_order_relaxed);
    if (head >= capacity_) {
        // Ring full.  The consumer never frees slots mid-run (it drains
        // after the run), so "full" is terminal for this ring: count the
        // drop and keep the prefix intact.
        r.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    r.buf[head] = e;
    r.head.store(head + 1, std::memory_order_release);
}

uint32_t
RingSink::intern(const std::string &name)
{
    const auto it = nameIds_.find(name);
    if (it != nameIds_.end())
        return it->second;
    const auto id = static_cast<uint32_t>(names_.size());
    names_.push_back(name);
    nameIds_.emplace(name, id);
    return id;
}

std::vector<uint8_t>
RingSink::cores() const
{
    std::vector<uint8_t> out;
    for (size_t i = 0; i < rings_.size(); i++) {
        if (rings_[i] &&
            rings_[i]->head.load(std::memory_order_acquire) > 0)
            out.push_back(static_cast<uint8_t>(i));
    }
    return out;
}

std::vector<Event>
RingSink::coreEvents(uint8_t core) const
{
    std::vector<Event> out;
    if (core >= rings_.size() || !rings_[core])
        return out;
    const Ring &r = *rings_[core];
    const uint64_t n = r.head.load(std::memory_order_acquire);
    out.assign(r.buf.begin(), r.buf.begin() + static_cast<size_t>(n));
    return out;
}

uint64_t
RingSink::recorded() const
{
    uint64_t n = 0;
    for (const auto &r : rings_) {
        if (r)
            n += r->head.load(std::memory_order_acquire);
    }
    return n;
}

uint64_t
RingSink::dropped() const
{
    uint64_t n = 0;
    for (const auto &r : rings_) {
        if (r)
            n += r->dropped.load(std::memory_order_relaxed);
    }
    return n;
}

uint64_t
RingSink::dropped(uint8_t core) const
{
    if (core >= rings_.size() || !rings_[core])
        return 0;
    return rings_[core]->dropped.load(std::memory_order_relaxed);
}

std::map<EventKind, uint64_t>
RingSink::kindCounts() const
{
    std::map<EventKind, uint64_t> counts;
    for (size_t c = 0; c < rings_.size(); c++) {
        for (const Event &e :
             coreEvents(static_cast<uint8_t>(c)))
            counts[e.kind]++;
    }
    return counts;
}

// ------------------------------------------------------- thread-local sink

namespace {
thread_local TraceSink *tlsSink = nullptr;
}

TraceSink *
threadSink()
{
    return tlsSink;
}

TraceSink *
installThreadSink(TraceSink *sink)
{
    TraceSink *prev = tlsSink;
    tlsSink = sink;
    return prev;
}

} // namespace tango::trace
