/**
 * @file
 * The seven networks of the Tango suite (paper Section III):
 * five CNNs — CifarNet, AlexNet, SqueezeNet v1.0, ResNet-50, VGGNet-16 —
 * and two RNNs — GRU and LSTM (bitcoin price predictors).
 *
 * Each builder returns the full layer structure with the launch hints of
 * the paper's Table III.  Weights are NOT initialized by the builders
 * (initWeights() does that) so timing-only studies can skip the cost of
 * generating hundreds of megabytes of synthetic parameters.
 */

#ifndef TANGO_NN_MODELS_MODELS_HH
#define TANGO_NN_MODELS_MODELS_HH

#include <string>
#include <vector>

#include "nn/network.hh"

namespace tango::nn::models {

/** CifarNet: 3 conv + 2 FC, 3x32x32 input, 9 traffic-sign classes. */
Network buildCifarNet();

/** AlexNet: 5 conv + 3 FC, 3x227x227 input, 1000 classes. */
Network buildAlexNet();

/** SqueezeNet v1.0: conv + 8 fire modules + conv10, 3x227x227 input. */
Network buildSqueezeNet();

/** ResNet-50: 53 conv, bottleneck blocks with shortcuts, 3x224x224. */
Network buildResNet50();

/** VGGNet-16: 13 conv + 3 FC, 3x224x224 input. */
Network buildVgg16();

/** MobileNet v1 (extension; the paper lists it as in development):
 *  depthwise-separable blocks, 3x224x224 input, 1000 classes. */
Network buildMobileNet();

/** Default RNN sequence length.  The paper's Table I model unrolls only
 *  2 time steps; the suite's default is longer so the steady-state
 *  behaviour of the recurrent cell (and the launch-memoization layer
 *  that exploits it) is actually exercised.  Kept *even* so the h/c
 *  ping-pong buffers end on the same parity regardless of whether
 *  launches were replayed (see DESIGN.md, "Launch memoization"). */
inline constexpr uint32_t kDefaultRnnSeqLen = 32;

/** GRU bitcoin price model: hidden 100, @p seq_len steps of 1 price
 *  value.  buildGru(2) is the paper's exact Table I configuration. */
RnnModel buildGru(uint32_t seq_len = kDefaultRnnSeqLen);

/** LSTM bitcoin price model: hidden 100, @p seq_len steps of 1 price
 *  value.  buildLstm(2) is the paper's exact Table I configuration. */
RnnModel buildLstm(uint32_t seq_len = kDefaultRnnSeqLen);

/** All CNN names in the paper's figure order. */
std::vector<std::string> cnnNames();

/** All seven network names (RNNs first, as in Fig 2/3). */
std::vector<std::string> allNames();

/** Every buildable network name: allNames() plus the in-development
 *  extension networks (currently "mobilenet").  The single registry the
 *  CLI tools validate against. */
std::vector<std::string> runnableNames();

/** Build a CNN by name ("cifarnet", "alexnet", ...). */
Network buildCnn(const std::string &name);

/** Build any model by name: "gru"/"lstm" yield RNNs, the rest CNNs. */
AnyModel buildAny(const std::string &name);

/** Deterministic synthetic input image for a network (the "cat image"). */
Tensor makeInputImage(uint32_t c, uint32_t h, uint32_t w,
                      uint64_t seed = 42);

/** Deterministic synthetic scaled stock-price sequence. */
std::vector<float> makeStockSequence(uint32_t steps, uint64_t seed = 42);

} // namespace tango::nn::models

#endif // TANGO_NN_MODELS_MODELS_HH
