# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_weights[1]_include.cmake")
include("/root/repo/build/tests/test_lowering[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_mobilenet[1]_include.cmake")
include("/root/repo/build/tests/test_alu[1]_include.cmake")
include("/root/repo/build/tests/test_quantization[1]_include.cmake")
include("/root/repo/build/tests/test_timing_properties[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
