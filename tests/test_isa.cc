/**
 * @file
 * ISA-level unit tests: opcode metadata, disassembly, program validation
 * and the static register-liveness analysis.
 */

#include <gtest/gtest.h>

#include "kernels/builder.hh"
#include "sim/isa.hh"
#include "sim/program.hh"

namespace tango::sim {
namespace {

TEST(Isa, OpNamesMatchPaperVocabulary)
{
    EXPECT_STREQ(opName(Op::Add), "add");
    EXPECT_STREQ(opName(Op::Mad), "mad");
    EXPECT_STREQ(opName(Op::Shl), "shl");
    EXPECT_STREQ(opName(Op::Ssy), "ssy");
    EXPECT_STREQ(opName(Op::Mad24), "mad24");
    EXPECT_STREQ(opName(Op::Rsqrt), "rsqrt");
    EXPECT_STREQ(opName(Op::Retp), "retp");
    EXPECT_STREQ(opName(Op::Callp), "callp");
}

TEST(Isa, EveryOpcodeHasMetadata)
{
    for (size_t i = 0; i < static_cast<size_t>(Op::NumOps); i++) {
        const Op op = static_cast<Op>(i);
        EXPECT_NE(std::string(opName(op)), "?");
        EXPECT_GT(opLatency(op), 0u);
    }
}

TEST(Isa, UnitAssignment)
{
    EXPECT_EQ(opUnit(Op::Add), Unit::SP);
    EXPECT_EQ(opUnit(Op::Ld), Unit::LDST);
    EXPECT_EQ(opUnit(Op::St), Unit::LDST);
    EXPECT_EQ(opUnit(Op::Rsqrt), Unit::SFU);
    EXPECT_EQ(opUnit(Op::Ex2), Unit::SFU);
    EXPECT_EQ(opUnit(Op::Bra), Unit::CTRL);
}

TEST(Isa, TypedUnitPromotesFloatAluToFpu)
{
    EXPECT_EQ(opUnitTyped(Op::Add, DType::F32), Unit::FPU);
    EXPECT_EQ(opUnitTyped(Op::Mad, DType::F32), Unit::FPU);
    EXPECT_EQ(opUnitTyped(Op::Add, DType::U32), Unit::SP);
    EXPECT_EQ(opUnitTyped(Op::Shl, DType::U32), Unit::SP);
    // Memory and SFU ops keep their unit regardless of type.
    EXPECT_EQ(opUnitTyped(Op::Ld, DType::F32), Unit::LDST);
    EXPECT_EQ(opUnitTyped(Op::Rcp, DType::F32), Unit::SFU);
}

TEST(Isa, DtypeBytes)
{
    EXPECT_EQ(dtypeBytes(DType::F32), 4u);
    EXPECT_EQ(dtypeBytes(DType::U32), 4u);
    EXPECT_EQ(dtypeBytes(DType::S32), 4u);
    EXPECT_EQ(dtypeBytes(DType::U16), 2u);
    EXPECT_EQ(dtypeBytes(DType::S16), 2u);
}

TEST(Isa, SourceRegsAndWrites)
{
    Instr add;
    add.op = Op::Add;
    add.dst = 3;
    add.src[0] = 1;
    add.src[1] = 2;
    uint8_t srcs[3];
    EXPECT_EQ(instrSourceRegs(add, srcs), 2);
    EXPECT_TRUE(instrWritesReg(add));

    Instr st;
    st.op = Op::St;
    st.src[0] = 4;
    st.src[1] = 5;
    EXPECT_EQ(instrSourceRegs(st, srcs), 2);
    EXPECT_FALSE(instrWritesReg(st));

    Instr addImm = add;
    addImm.src[1] = Instr::immReg;
    EXPECT_EQ(instrSourceRegs(addImm, srcs), 1);

    Instr bra;
    bra.op = Op::Bra;
    EXPECT_EQ(instrSourceRegs(bra, srcs), 0);
    EXPECT_FALSE(instrWritesReg(bra));
}

TEST(Isa, DisasmReadable)
{
    Instr mad;
    mad.op = Op::Mad;
    mad.type = DType::F32;
    mad.dst = 7;
    mad.src[0] = 1;
    mad.src[1] = 2;
    mad.src[2] = 3;
    const std::string text = disasm(mad);
    EXPECT_NE(text.find("mad.f32"), std::string::npos);
    EXPECT_NE(text.find("r7"), std::string::npos);
}

TEST(Program, ValidateAcceptsBuilderOutput)
{
    kern::Builder b("ok");
    kern::Reg x = b.immU(1);
    kern::Reg y = b.addi(DType::U32, x, 2);
    (void)y;
    auto p = b.finish();
    EXPECT_GE(p->numRegs, 2u);
    EXPECT_EQ(p->code.back().op, Op::Exit);
}

TEST(Program, ValidateRejectsBadRegister)
{
    Program p;
    p.name = "bad";
    p.numRegs = 1;
    Instr i;
    i.op = Op::Add;
    i.type = DType::U32;
    i.dst = 5;   // out of range
    i.src[0] = 0;
    i.src[1] = 0;
    p.code.push_back(i);
    Instr e;
    e.op = Op::Exit;
    p.code.push_back(e);
    EXPECT_DEATH(p.validate(), "writes");
}

TEST(Program, ValidateRequiresExit)
{
    Program p;
    p.name = "noexit";
    p.numRegs = 1;
    Instr i;
    i.op = Op::Nop;
    p.code.push_back(i);
    EXPECT_DEATH(p.validate(), "exit");
}

TEST(Program, MaxLiveRegsBounded)
{
    kern::Builder b("live");
    kern::Reg a = b.immU(1);
    kern::Reg c = b.immU(2);
    kern::Reg d = b.add(DType::U32, a, c);
    kern::Reg e = b.add(DType::U32, d, d);
    (void)e;
    auto p = b.finish();
    const uint32_t live = p->maxLiveRegs();
    EXPECT_GE(live, 2u);
    EXPECT_LE(live, p->numRegs);
}

TEST(Program, DisassembleListsAllInstructions)
{
    kern::Builder b("dis");
    b.immU(1);
    b.nop();
    auto p = b.finish();
    const std::string text = p->disassemble();
    size_t lines = 0;
    for (char ch : text)
        lines += (ch == '\n');
    EXPECT_EQ(lines, p->code.size());
}

TEST(Builder, LabelsAndBranches)
{
    kern::Builder b("loop");
    kern::Reg i = b.reg();
    b.forLoopI(i, 0, 5, [&] { b.nop(); });
    auto p = b.finish();
    // Must contain a backward branch.
    bool backward = false;
    for (size_t pc = 0; pc < p->code.size(); pc++) {
        const Instr &ins = p->code[pc];
        if (ins.op == Op::Bra && ins.target >= 0 &&
            static_cast<size_t>(ins.target) < pc) {
            backward = true;
        }
    }
    EXPECT_TRUE(backward);
}

TEST(Builder, RegisterReuseAfterRelease)
{
    kern::Builder b("reuse");
    kern::Reg a = b.immU(1);
    const uint8_t idx = a.idx;
    b.release(a);
    kern::Reg c = b.reg();
    EXPECT_EQ(c.idx, idx);
}

TEST(Builder, SharedAndConstantOffsets)
{
    kern::Builder b("mem");
    EXPECT_EQ(b.shared(100), 0u);
    EXPECT_EQ(b.shared(4), 100u);   // aligned to 4
    EXPECT_EQ(b.constant(3), 0u);
    EXPECT_EQ(b.constant(4), 4u);   // 3 rounded up to 4
    b.nop();
    auto p = b.finish();
    EXPECT_EQ(p->smemBytes, 104u);
    EXPECT_EQ(p->cmemBytes, 8u);
}

} // namespace
} // namespace tango::sim
