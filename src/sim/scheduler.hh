/**
 * @file
 * Warp scheduling policies: GTO, LRR and TLV (paper Section IV-F).
 *
 * Each SM cycle the core presents the set of issuable warp slots; the
 * scheduler picks one.  GTO keeps issuing from the same warp until it
 * stalls and then falls back to the oldest warp; LRR rotates; TLV keeps a
 * small active set and swaps out warps that issue long-latency operations.
 */

#ifndef TANGO_SIM_SCHEDULER_HH
#define TANGO_SIM_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hh"

namespace tango::sim {

/** Abstract warp scheduler. */
class WarpScheduler
{
  public:
    virtual ~WarpScheduler() = default;

    /** Resize bookkeeping for @p num_slots warp slots. */
    virtual void reset(uint32_t num_slots) = 0;

    /**
     * Pick a warp to issue.
     * @param issuable issuable[i] != 0 iff slot i can issue this cycle.
     * @param age      age[i] = arrival order (smaller = older).
     * @return slot index, or -1 if none is issuable.
     */
    virtual int pick(const std::vector<uint8_t> &issuable,
                     const std::vector<uint64_t> &age) = 0;

    /**
     * Inform the scheduler that no slot is issuable this cycle.  Must have
     * exactly the state effect of a pick() call over an all-zero issuable
     * vector; the core calls this instead of pick() when it already knows
     * the answer, saving the scan.
     */
    virtual void notifyNoneIssuable() {}

    /** Inform the scheduler a slot issued a long-latency (memory) op. */
    virtual void notifyLongLatency(uint32_t slot) { (void)slot; }

    /** Inform the scheduler a slot retired. */
    virtual void notifyRetired(uint32_t slot) { (void)slot; }
};

/** @return a scheduler implementing @p policy. */
std::unique_ptr<WarpScheduler> makeScheduler(SchedPolicy policy);

} // namespace tango::sim

#endif // TANGO_SIM_SCHEDULER_HH
