#include "runtime/run_cache.hh"

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace tango::rt {

namespace {

// ---------------------------------------------------------------- writer

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    // 17 significant digits round-trip any IEEE-754 double exactly.
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, uint64_t v)
{
    out += std::to_string(v);
}

/** Emits `"name":value` sequences inside one JSON object. */
class ObjWriter
{
  public:
    explicit ObjWriter(std::string &out) : out_(out) { out_ += '{'; }
    void close() { out_ += '}'; }

    void key(const char *name)
    {
        if (!first_)
            out_ += ',';
        first_ = false;
        out_ += '"';
        out_ += name;
        out_ += "\":";
    }
    void num(const char *name, double v) { key(name); appendDouble(out_, v); }
    void u64(const char *name, uint64_t v) { key(name); appendU64(out_, v); }
    void str(const char *name, const std::string &v)
    {
        key(name);
        appendEscaped(out_, v);
    }

  private:
    std::string &out_;
    bool first_ = true;
};

void
appendStatSet(std::string &out, const StatSet &st)
{
    out += '{';
    bool first = true;
    for (const auto &[name, v] : st.all()) {
        if (!first)
            out += ',';
        first = false;
        appendEscaped(out, name);
        out += ':';
        appendDouble(out, v);
    }
    out += '}';
}

void
appendU64Vec(std::string &out, const std::vector<uint64_t> &v)
{
    out += '[';
    for (size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ',';
        appendU64(out, v[i]);
    }
    out += ']';
}

void
appendU16Vec(std::string &out, const std::vector<uint16_t> &v)
{
    out += '[';
    for (size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ',';
        appendU64(out, v[i]);
    }
    out += ']';
}

void
appendStrVec(std::string &out, const std::vector<std::string> &v)
{
    out += '[';
    for (size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ',';
        appendEscaped(out, v[i]);
    }
    out += ']';
}

void
appendProfile(std::string &out, const sim::KernelProfile &p)
{
    ObjWriter o(out);
    o.key("labels");
    appendStrVec(out, p.labels);
    o.key("pcLabel");
    appendU16Vec(out, p.pcLabel);
    o.key("disasm");
    appendStrVec(out, p.disasm);
    o.key("issued");
    appendU64Vec(out, p.issued);
    o.key("stalls");
    appendU64Vec(out, p.stalls);
    o.key("l1dMisses");
    appendU64Vec(out, p.l1dMisses);
    o.key("l2Misses");
    appendU64Vec(out, p.l2Misses);
    o.key("dramTxns");
    appendU64Vec(out, p.dramTxns);
    o.u64("lineBytes", p.lineBytes);
    o.num("scale", p.scale);
    o.num("workScale", p.workScale);
    o.close();
}

void
appendDim3(std::string &out, const sim::Dim3 &d)
{
    out += '[';
    appendU64(out, d.x);
    out += ',';
    appendU64(out, d.y);
    out += ',';
    appendU64(out, d.z);
    out += ']';
}

void
appendKernelStats(std::string &out, const sim::KernelStats &k)
{
    ObjWriter o(out);
    o.str("name", k.name);
    o.key("grid");
    appendDim3(out, k.grid);
    o.key("block");
    appendDim3(out, k.block);
    o.u64("totalCtas", k.totalCtas);
    o.u64("sampledCtas", k.sampledCtas);
    o.u64("totalWarpsPerCta", k.totalWarpsPerCta);
    o.u64("sampledWarpsPerCta", k.sampledWarpsPerCta);
    o.num("scale", k.scale);
    o.u64("smCycles", k.smCycles);
    o.num("gpuCycles", k.gpuCycles);
    o.num("timeSec", k.timeSec);
    o.u64("activeSms", k.activeSms);
    o.key("stats");
    appendStatSet(out, k.stats);
    o.u64("regsPerThread", k.regsPerThread);
    o.u64("maxLiveRegs", k.maxLiveRegs);
    o.u64("smemBytes", k.smemBytes);
    o.u64("cmemBytes", k.cmemBytes);
    o.u64("residentCtas", k.residentCtas);
    o.u64("occupancyCtas", k.occupancyCtas);
    o.num("peakPowerW", k.peakPowerW);
    o.num("avgPowerW", k.avgPowerW);
    o.num("energyJ", k.energyJ);
    o.num("peakWindowDynW", k.peakWindowDynW);
    o.u64("replayed", k.replayed ? 1 : 0);
    if (k.profile) {
        o.key("profile");
        appendProfile(out, *k.profile);
    }
    o.close();
}

void
appendLayerRun(std::string &out, const LayerRun &l)
{
    ObjWriter o(out);
    o.num("layerIndex", l.layerIndex);
    o.str("name", l.name);
    o.str("figType", l.figType);
    o.key("kernels");
    out += '[';
    for (size_t i = 0; i < l.kernels.size(); i++) {
        if (i)
            out += ',';
        appendKernelStats(out, l.kernels[i]);
    }
    out += ']';
    o.close();
}

// ---------------------------------------------------------------- parser

/** A minimal recursive-descent JSON reader over an in-memory buffer.
 *  Parse errors throw std::runtime_error; loadRunCache catches them.
 *  The token-level primitives (peek/next/expect/string/value) are public
 *  so the cache loader can walk the top-level "runs" object entry by
 *  entry and salvage the valid prefix of a damaged file. */
class Json
{
  public:
    struct Value
    {
        enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
        bool b = false;
        double num = 0.0;
        std::string str;
        std::vector<Value> arr;
        std::vector<std::pair<std::string, Value>> obj;

        const Value *find(const char *key) const
        {
            for (const auto &[k, v] : obj) {
                if (k == key)
                    return &v;
            }
            return nullptr;
        }
        double numOr(const char *key, double dflt = 0.0) const
        {
            const Value *v = find(key);
            return v && v->kind == Kind::Num ? v->num : dflt;
        }
        uint64_t u64Or(const char *key, uint64_t dflt = 0) const
        {
            return static_cast<uint64_t>(numOr(key, double(dflt)));
        }
        std::string strOr(const char *key) const
        {
            const Value *v = find(key);
            return v && v->kind == Kind::Str ? v->str : std::string();
        }
    };

    explicit Json(const std::string &text) : s_(text) {}

    Value parse()
    {
        Value v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }
    char next()
    {
        const char c = peek();
        pos_++;
        return c;
    }
    void expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        pos_++;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("bad escape");
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size())
                        fail("bad \\u escape");
                    const unsigned cp = static_cast<unsigned>(std::strtoul(
                        s_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    // Cache strings are ASCII; anything else is replaced.
                    out += cp < 0x80 ? static_cast<char>(cp) : '?';
                    break;
                }
                default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        pos_++;   // closing quote
        return out;
    }

    Value value()
    {
        const char c = peek();
        Value v;
        if (c == '{') {
            pos_++;
            v.kind = Value::Kind::Obj;
            if (peek() == '}') {
                pos_++;
                return v;
            }
            for (;;) {
                std::string key = string();
                expect(':');
                v.obj.emplace_back(std::move(key), value());
                const char n = peek();
                pos_++;
                if (n == '}')
                    return v;
                if (n != ',')
                    fail("expected , or }");
            }
        }
        if (c == '[') {
            pos_++;
            v.kind = Value::Kind::Arr;
            if (peek() == ']') {
                pos_++;
                return v;
            }
            for (;;) {
                v.arr.push_back(value());
                const char n = peek();
                pos_++;
                if (n == ']')
                    return v;
                if (n != ',')
                    fail("expected , or ]");
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::Str;
            v.str = string();
            return v;
        }
        if (c == 't' || c == 'f' || c == 'n') {
            const char *word = c == 't' ? "true" : c == 'f' ? "false" : "null";
            const size_t len = std::strlen(word);
            if (s_.compare(pos_, len, word) != 0)
                fail("bad literal");
            pos_ += len;
            v.kind = c == 'n' ? Value::Kind::Null : Value::Kind::Bool;
            v.b = c == 't';
            return v;
        }
        // Number.
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        v.num = std::strtod(start, &end);
        if (end == start)
            fail("bad number");
        pos_ += static_cast<size_t>(end - start);
        v.kind = Value::Kind::Num;
        return v;
    }

  private:
    [[noreturn]] void fail(const char *what)
    {
        throw std::runtime_error(std::string("json: ") + what + " at " +
                                 std::to_string(pos_));
    }
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            pos_++;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

sim::Dim3
parseDim3(const Json::Value &v)
{
    sim::Dim3 d;
    if (v.kind == Json::Value::Kind::Arr && v.arr.size() == 3) {
        d.x = static_cast<uint32_t>(v.arr[0].num);
        d.y = static_cast<uint32_t>(v.arr[1].num);
        d.z = static_cast<uint32_t>(v.arr[2].num);
    }
    return d;
}

StatSet
parseStatSet(const Json::Value &v)
{
    StatSet st;
    for (const auto &[name, val] : v.obj)
        st.set(name, val.num);
    return st;
}

std::vector<uint64_t>
parseU64Vec(const Json::Value *v)
{
    std::vector<uint64_t> out;
    if (v == nullptr || v->kind != Json::Value::Kind::Arr)
        return out;
    out.reserve(v->arr.size());
    for (const auto &e : v->arr)
        out.push_back(static_cast<uint64_t>(e.num));
    return out;
}

std::vector<std::string>
parseStrVec(const Json::Value *v)
{
    std::vector<std::string> out;
    if (v == nullptr || v->kind != Json::Value::Kind::Arr)
        return out;
    out.reserve(v->arr.size());
    for (const auto &e : v->arr)
        out.push_back(e.str);
    return out;
}

std::shared_ptr<sim::KernelProfile>
parseProfile(const Json::Value &v)
{
    auto p = std::make_shared<sim::KernelProfile>();
    p->labels = parseStrVec(v.find("labels"));
    if (p->labels.empty())
        p->labels.emplace_back();   // id 0 ("") must always exist
    for (uint64_t id : parseU64Vec(v.find("pcLabel")))
        p->pcLabel.push_back(static_cast<uint16_t>(id));
    p->disasm = parseStrVec(v.find("disasm"));
    p->issued = parseU64Vec(v.find("issued"));
    p->stalls = parseU64Vec(v.find("stalls"));
    p->l1dMisses = parseU64Vec(v.find("l1dMisses"));
    p->l2Misses = parseU64Vec(v.find("l2Misses"));
    p->dramTxns = parseU64Vec(v.find("dramTxns"));
    p->lineBytes = static_cast<uint32_t>(v.u64Or("lineBytes", 128));
    p->scale = v.numOr("scale", 1.0);
    p->workScale = v.numOr("workScale", 1.0);
    return p;
}

sim::KernelStats
parseKernelStats(const Json::Value &v)
{
    sim::KernelStats k;
    k.name = v.strOr("name");
    if (const auto *g = v.find("grid"))
        k.grid = parseDim3(*g);
    if (const auto *b = v.find("block"))
        k.block = parseDim3(*b);
    k.totalCtas = v.u64Or("totalCtas");
    k.sampledCtas = v.u64Or("sampledCtas");
    k.totalWarpsPerCta = static_cast<uint32_t>(v.u64Or("totalWarpsPerCta"));
    k.sampledWarpsPerCta =
        static_cast<uint32_t>(v.u64Or("sampledWarpsPerCta"));
    k.scale = v.numOr("scale", 1.0);
    k.smCycles = v.u64Or("smCycles");
    k.gpuCycles = v.numOr("gpuCycles");
    k.timeSec = v.numOr("timeSec");
    k.activeSms = static_cast<uint32_t>(v.u64Or("activeSms", 1));
    if (const auto *st = v.find("stats"))
        k.stats = parseStatSet(*st);
    k.regsPerThread = static_cast<uint32_t>(v.u64Or("regsPerThread"));
    k.maxLiveRegs = static_cast<uint32_t>(v.u64Or("maxLiveRegs"));
    k.smemBytes = static_cast<uint32_t>(v.u64Or("smemBytes"));
    k.cmemBytes = static_cast<uint32_t>(v.u64Or("cmemBytes"));
    k.residentCtas = static_cast<uint32_t>(v.u64Or("residentCtas"));
    k.occupancyCtas = static_cast<uint32_t>(v.u64Or("occupancyCtas"));
    k.peakPowerW = v.numOr("peakPowerW");
    k.avgPowerW = v.numOr("avgPowerW");
    k.energyJ = v.numOr("energyJ");
    k.peakWindowDynW = v.numOr("peakWindowDynW");
    k.replayed = v.u64Or("replayed") != 0;
    if (const auto *pv = v.find("profile"))
        k.profile = parseProfile(*pv);
    return k;
}

NetRun
parseNetRun(const Json::Value &v)
{
    NetRun run;
    run.netName = v.strOr("netName");
    run.deviceBytes = v.u64Or("deviceBytes");
    if (const auto *t = v.find("totals"))
        run.totals = parseStatSet(*t);
    run.totalTimeSec = v.numOr("totalTimeSec");
    run.totalEnergyJ = v.numOr("totalEnergyJ");
    run.peakPowerW = v.numOr("peakPowerW");
    run.maxRegsPerThread = static_cast<uint32_t>(v.u64Or("maxRegsPerThread"));
    run.maxLiveRegs = static_cast<uint32_t>(v.u64Or("maxLiveRegs"));
    run.maxResidentWarps =
        static_cast<uint32_t>(v.u64Or("maxResidentWarps"));
    run.checkFailures = v.u64Or("checkFailures");
    if (const auto *layers = v.find("layers")) {
        for (const auto &lv : layers->arr) {
            LayerRun l;
            l.layerIndex =
                static_cast<int>(static_cast<int64_t>(lv.numOr("layerIndex")));
            l.name = lv.strOr("name");
            l.figType = lv.strOr("figType");
            if (const auto *ks = lv.find("kernels")) {
                for (const auto &kv : ks->arr)
                    l.kernels.push_back(parseKernelStats(kv));
            }
            run.layers.push_back(std::move(l));
        }
    }
    return run;
}

} // namespace

std::string
serializeNetRun(const NetRun &run)
{
    std::string out;
    out.reserve(4096);
    ObjWriter o(out);
    o.str("netName", run.netName);
    o.u64("deviceBytes", run.deviceBytes);
    o.key("totals");
    appendStatSet(out, run.totals);
    o.num("totalTimeSec", run.totalTimeSec);
    o.num("totalEnergyJ", run.totalEnergyJ);
    o.num("peakPowerW", run.peakPowerW);
    o.u64("maxRegsPerThread", run.maxRegsPerThread);
    o.u64("maxLiveRegs", run.maxLiveRegs);
    o.u64("maxResidentWarps", run.maxResidentWarps);
    o.u64("checkFailures", run.checkFailures);
    o.key("layers");
    out += '[';
    for (size_t i = 0; i < run.layers.size(); i++) {
        if (i)
            out += ',';
        appendLayerRun(out, run.layers[i]);
    }
    out += ']';
    o.close();
    return out;
}

bool
parseNetRunJson(const std::string &text, NetRun &out)
{
    try {
        Json parser(text);
        const Json::Value doc = parser.parse();
        if (doc.kind != Json::Value::Kind::Obj)
            return false;
        out = parseNetRun(doc);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

std::map<std::string, NetRun>
loadRunCache(const std::string &path)
{
    std::map<std::string, NetRun> out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    // Walk the document token by token instead of parsing it wholesale:
    // a cache file with a truncated or corrupt tail (interrupted write,
    // disk full) then still yields every entry before the damage instead
    // of being discarded outright.
    Json p(text);
    bool inRuns = false;
    try {
        p.expect('{');
        int version = -1, statsVersion = 0;
        for (;;) {
            const std::string key = p.string();
            p.expect(':');
            if (key == "runs")
                break;
            const Json::Value v = p.value();
            if (key == "version")
                version = static_cast<int>(v.num);
            else if (key == "statsVersion")
                statsVersion = static_cast<int>(v.num);
            const char n = p.next();
            if (n == '}')
                return out;   // document ended without a runs section
            if (n != ',')
                throw std::runtime_error("json: expected , or }");
        }
        // A version mismatch discards the file wholesale (and silently),
        // exactly as before: mixing statistics from two simulator
        // revisions is worse than re-simulating.
        if (version != kRunCacheVersion || statsVersion != kSimStatsVersion)
            return out;

        inRuns = true;
        p.expect('{');
        if (p.peek() == '}')
            return out;
        for (;;) {
            const std::string key = p.string();
            p.expect(':');
            const Json::Value v = p.value();
            out.emplace(key, parseNetRun(v));
            const char n = p.next();
            if (n == '}')
                break;
            if (n != ',')
                throw std::runtime_error("json: expected , or }");
        }
        // Trailing bytes after the runs object carry no entries; damage
        // there cannot invalidate what was parsed.
    } catch (const std::exception &) {
        if (!inRuns) {
            // Damage before the version fields: nothing is trustworthy.
            out.clear();
            return out;
        }
        warn("run cache '%s': corrupt tail discarded, %zu entr%s salvaged",
             path.c_str(), out.size(), out.size() == 1 ? "y" : "ies");
    }
    return out;
}

bool
saveRunCache(const std::string &path,
             const std::map<std::string, NetRun> &runs, uint64_t max_bytes)
{
    std::string out;
    out.reserve(runs.size() * 4096 + 64);
    out += "{\"version\":";
    out += std::to_string(kRunCacheVersion);
    out += ",\"statsVersion\":";
    out += std::to_string(kSimStatsVersion);
    out += ",\"runs\":{";
    bool first = true;
    size_t skipped = 0;
    for (const auto &[key, run] : runs) {
        std::string entry;
        if (!first)
            entry += ',';
        appendEscaped(entry, key);
        entry += ':';
        entry += serializeNetRun(run);
        // +3 for the closing "}}\n": the capped file is still complete,
        // valid JSON — just with fewer entries.
        if (max_bytes > 0 && out.size() + entry.size() + 3 > max_bytes) {
            skipped++;
            continue;
        }
        first = false;
        out += entry;
    }
    out += "}}\n";
    if (skipped > 0) {
        warn("run cache '%s': size cap %llu bytes reached, %zu of %zu "
             "entries not spilled",
             path.c_str(), static_cast<unsigned long long>(max_bytes),
             skipped, runs.size());
    }

    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return false;
        f << out;
        if (!f)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace tango::rt
