/**
 * @file
 * estimate::Estimator — the estimate tier's dispatcher backend.
 *
 * Answers a JobSpec from the fitted per-family models (estimate/model.hh)
 * in microseconds instead of simulating: each layer's feature vector is
 * answered from its family's exact-shape table (or its regressors, for
 * shapes the sweep never saw) and the predictions are composed into a
 * NetRun shaped exactly like a simulated one (per-layer
 * LayerRuns with one synthesized KernelStats each, merged totals), except
 * flagged `estimated = true` and carrying the models' validated relative
 * error bounds.
 *
 * estimate() refuses — returning false with a reason, so the caller falls
 * back to memo-replay / full simulation — whenever the models cannot
 * honour the request: inline (unnamed) policy, no bundle fit for the
 * (policy, platform), a layer whose family is unfitted, or a requested
 * error bound tighter than the bound the models actually validated.
 *
 * Bundles load lazily from a weights directory (one JSON file per
 * (policy, platform), see Bundle::fileName) and are cached for the
 * Estimator's lifetime; a failed load is cached too, so a serve loop
 * missing its weights pays the disk probe once, not per request.
 */

#ifndef TANGO_ESTIMATE_ESTIMATOR_HH
#define TANGO_ESTIMATE_ESTIMATOR_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "estimate/model.hh"
#include "runtime/job.hh"

namespace tango::estimate {

/** Evaluates estimate-tier jobs against a directory of fitted bundles. */
class Estimator
{
  public:
    /** @param weights_dir directory of Bundle::fileName() JSON files. */
    explicit Estimator(std::string weights_dir);

    /**
     * Answer @p spec from the fitted models.
     * @return true with @p run filled (estimated=true, error bounds
     *         attached) — or false with a one-line fallback reason in
     *         @p reason, run untouched.  The spec must already have
     *         passed validate().
     */
    bool estimate(const rt::JobSpec &spec, rt::NetRun &run,
                  std::string *reason = nullptr);

    const std::string &dir() const { return dir_; }

    /**
     * The process-wide estimator.  Weights directory:
     * $TANGO_ESTIMATE_WEIGHTS when set, else the compiled-in default
     * (the source tree's weights/estimate/).
     */
    static Estimator &global();

  private:
    struct Entry
    {
        std::unique_ptr<Bundle> bundle;   ///< null = load failed
        std::string error;
    };

    /** Load (or recall) the bundle for one (policy, platform). */
    const Entry &load(const std::string &policy,
                      const std::string &platform);

    std::string dir_;
    std::mutex mu_;
    std::map<std::string, Entry> cache_;   ///< keyed by bundle file name
};

} // namespace tango::estimate

#endif // TANGO_ESTIMATE_ESTIMATOR_HH
