/**
 * @file
 * The tango-serve wire protocol: length-prefixed JSON frames over TCP.
 *
 * Every message is one frame: a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON.  Requests:
 *
 *   {"type":"run","id":N,"job":{JobSpec}}   run one simulation job
 *   {"type":"stats"}                        server metrics snapshot
 *   {"type":"metrics"}                      Prometheus scrape
 *   {"type":"ping"}                         liveness probe
 *   {"type":"shutdown"}                     begin graceful drain
 *
 * The run response is a JobResult object extended with "type":"result"
 * and the request's "id"; rejections (queue full, draining, invalid
 * spec) arrive as ok=false results with the reason in "error", so a
 * client needs exactly one response shape.  The metrics response is
 * the one deliberate exception to JSON payloads: its frame carries the
 * process-wide metrics registry rendered as Prometheus text exposition
 * (metrics/metrics.hh), so tango-top and any scraper-side tooling read
 * the standard format unmodified.  Connections are
 * request/response sequential: a client sends one frame and reads one
 * frame back (concurrency comes from opening several connections, which
 * is also how tango-load generates load).
 */

#ifndef TANGO_SERVE_PROTOCOL_HH
#define TANGO_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "runtime/job.hh"

namespace tango::serve {

/** Frame payload hard cap (a full VGG NetRun is ~1 MB; 64 MB is a
 *  corrupt length prefix, not a job). */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameStatus
{
    Ok,      ///< one complete frame read
    Eof,     ///< peer closed cleanly at a frame boundary
    Error    ///< short read, oversized length, or socket error
};

/** Read one frame from @p fd (blocking). */
FrameStatus readFrame(int fd, std::string &payload,
                      uint32_t maxBytes = kMaxFrameBytes);

/** Write one frame to @p fd (blocking).  @return false on error. */
bool writeFrame(int fd, const std::string &payload);

// ------------------------------------------------------------- requests

struct Request
{
    enum class Type { Run, Stats, Metrics, Ping, Shutdown } type =
        Type::Ping;
    uint64_t id = 0;     ///< run requests only; echoed in the response
    rt::JobSpec job;     ///< run requests only (parsed, NOT validated)
};

std::string makeRunRequest(uint64_t id, const rt::JobSpec &job);
std::string makeStatsRequest();
std::string makeMetricsRequest();
std::string makePingRequest();
std::string makeShutdownRequest();

/** Parse any request frame.  @return false (out untouched) on malformed
 *  JSON or an unknown "type", with a reason in @p err if given. */
bool parseRequest(const std::string &text, Request &out,
                  std::string *err = nullptr);

// ------------------------------------------------------------ responses

/** A JobResult as a "result" response frame for request @p id. */
std::string makeResultResponse(uint64_t id, const rt::JobResult &r);

/** Parse a "result" response; @p id receives the echoed request id. */
bool parseResultResponse(const std::string &text, uint64_t &id,
                         rt::JobResult &out, std::string *err = nullptr);

// --------------------------------------------------------------- client

/**
 * A blocking protocol client over one TCP connection.  Used by
 * tango-load, the CI drain check and tests; small enough to embed
 * anywhere a tool wants to talk to a running daemon.
 */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept
        : fd_(other.fd_), nextId_(other.nextId_)
    {
        other.fd_ = -1;
    }

    /** Connect to @p host:@p port.  @return false with @p err set on
     *  failure; a connected client must close() before reconnecting. */
    bool connect(const std::string &host, uint16_t port,
                 std::string *err = nullptr);
    void close();
    bool connected() const { return fd_ >= 0; }

    /** Submit one job and wait for its result.  @return false on a
     *  transport/protocol failure (res untouched); a server-side
     *  rejection is a successful round trip with res.ok == false. */
    bool run(const rt::JobSpec &job, rt::JobResult &res,
             std::string *err = nullptr);

    /** Fetch the server metrics snapshot as raw JSON. */
    bool stats(std::string &json, std::string *err = nullptr);

    /** Fetch the process-wide metrics registry as Prometheus text
     *  exposition (parse with metrics::Scrape if needed). */
    bool metrics(std::string &text, std::string *err = nullptr);

    bool ping(std::string *err = nullptr);

    /** Ask the server to drain and exit (acknowledged before it does). */
    bool shutdown(std::string *err = nullptr);

  private:
    bool roundTrip(const std::string &request, std::string &response,
                   std::string *err);

    int fd_ = -1;
    uint64_t nextId_ = 1;
};

} // namespace tango::serve

#endif // TANGO_SERVE_PROTOCOL_HH
