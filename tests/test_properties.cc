/**
 * @file
 * Property-based tests (parameterized sweeps): invariants that must hold
 * across a swept space — conv kernels vs reference over random layer
 * geometries, cache accounting identities, monotonicity of the cache
 * size, coalescing bounds, softmax normalization over sizes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/kernels.hh"
#include "nn/network.hh"
#include "sim/cache.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using kern::ChannelSrc;
using kern::PixelMap;
using nn::Layer;
using nn::LayerKind;
using nn::Tensor;

Tensor
randomT(std::vector<uint32_t> shape, uint64_t seed)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (uint64_t i = 0; i < t.size(); i++)
        t[i] = rng.gaussian() * 0.5f;
    return t;
}

// ---------------------------------------------------------------------
// Conv kernel equals reference over a swept geometry space.

struct ConvGeom
{
    uint32_t C, HW, K, RS, stride, pad;
};

class ConvGeometry : public ::testing::TestWithParam<ConvGeom>
{
};

TEST_P(ConvGeometry, KernelMatchesReference)
{
    const ConvGeom g = GetParam();
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = g.C;
    l.H = l.W = g.HW;
    l.K = g.K;
    l.R = l.S = g.RS;
    l.stride = g.stride;
    l.pad = g.pad;
    l.P = l.Q = (g.HW + 2 * g.pad - g.RS) / g.stride + 1;
    l.weights = randomT({l.K, l.C, l.R, l.S}, g.C * 100 + g.HW);
    l.biasT = randomT({l.K}, g.K);

    const Tensor in = randomT({l.C, l.H, l.W}, g.HW * 7);
    const Tensor ref = referenceForward(l, {&in});

    sim::Gpu gpu(sim::pascalGP102());
    auto up = [&](const Tensor &t) {
        const uint32_t a = gpu.mem().allocate(t.bytes());
        gpu.mem().copyIn(a, t.data(), t.bytes());
        return a;
    };
    const uint32_t inA = up(in);
    const uint32_t wA = up(l.weights);
    const uint32_t bA = up(l.biasT);
    const uint32_t outA =
        gpu.mem().allocate(4ull * l.K * l.P * l.Q);

    kern::ConvDesc d;
    d.C = l.C;
    d.H = l.H;
    d.W = l.W;
    d.K = l.K;
    d.R = l.R;
    d.S = l.S;
    d.stride = l.stride;
    d.pad = l.pad;
    d.filterSrc = ChannelSrc::GridX;
    d.pixelMap = PixelMap::StrideLoop;
    d.grid = {l.K, 1, 1};
    d.block = {4, 4, 1};
    sim::SimPolicy full;
    full.fullSim = true;
    gpu.launch(kern::makeConvLaunch(d, inA, wA, bA, outA), full);

    for (uint64_t i = 0; i < ref.size(); i++) {
        const float got = gpu.mem().read<float>(outA + 4 * i);
        ASSERT_NEAR(got, ref[i],
                    1e-4f * std::max(1.0f, std::fabs(ref[i])))
            << "elem " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGeometry,
    ::testing::Values(ConvGeom{1, 5, 1, 1, 1, 0},
                      ConvGeom{1, 7, 2, 3, 1, 1},
                      ConvGeom{3, 9, 4, 3, 2, 1},
                      ConvGeom{2, 11, 3, 5, 2, 2},
                      ConvGeom{4, 8, 8, 1, 1, 0},
                      ConvGeom{2, 13, 2, 7, 3, 3},
                      ConvGeom{5, 6, 5, 3, 1, 2}),
    [](const auto &info) {
        const ConvGeom &g = info.param;
        return "C" + std::to_string(g.C) + "HW" + std::to_string(g.HW) +
               "K" + std::to_string(g.K) + "RS" + std::to_string(g.RS) +
               "s" + std::to_string(g.stride) + "p" +
               std::to_string(g.pad);
    });

// ---------------------------------------------------------------------
// Cache accounting identities over swept geometries.

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometry, HitsPlusMissesEqualsAccesses)
{
    const auto [sizeKb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = sizeKb * 1024;
    cfg.assoc = assoc;
    cfg.lineBytes = 128;
    sim::Cache c(cfg);
    Rng rng(sizeKb * 31 + assoc);
    for (int i = 0; i < 20000; i++)
        c.access(rng.below(1 << 18), rng.below(4) == 0, i);
    const auto &s = c.stats();
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_GT(s.hits, 0u);
    EXPECT_GT(s.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Combine(::testing::Values(16u, 64u, 256u),
                       ::testing::Values(2u, 4u, 16u)));

TEST(CacheProperty, MissRatioMonotoneInSize)
{
    // Same access trace, growing cache: miss ratio must not increase.
    std::vector<uint32_t> trace;
    Rng rng(99);
    // Mix of hot set + streaming.
    for (int i = 0; i < 30000; i++) {
        trace.push_back(rng.below(2) ? rng.below(16 * 1024)
                                     : rng.below(1 << 20));
    }
    double prev = 1.1;
    for (uint32_t kb : {8u, 32u, 128u, 512u, 2048u}) {
        sim::CacheConfig cfg;
        cfg.sizeBytes = kb * 1024;
        cfg.assoc = 8;
        cfg.lineBytes = 128;
        sim::Cache c(cfg);
        for (size_t i = 0; i < trace.size(); i++)
            c.access(trace[i], false, i);
        const double ratio = c.stats().missRatio();
        EXPECT_LE(ratio, prev + 0.01) << kb << "KB";
        prev = ratio;
    }
}

// ---------------------------------------------------------------------
// Softmax normalization over sizes.

class SoftmaxSizes : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SoftmaxSizes, DeviceOutputSumsToOne)
{
    const uint32_t n = GetParam();
    sim::Gpu gpu(sim::pascalGP102());
    const Tensor in = randomT({n}, n * 13);
    const uint32_t inA = gpu.mem().allocate(in.bytes());
    gpu.mem().copyIn(inA, in.data(), in.bytes());
    const uint32_t outA = gpu.mem().allocate(in.bytes());

    kern::SoftmaxDesc d;
    d.n = n;
    sim::SimPolicy full;
    full.fullSim = true;
    gpu.launch(kern::makeSoftmaxLaunch(d, inA, outA), full);

    double sum = 0.0;
    for (uint32_t i = 0; i < n; i++) {
        const float v = gpu.mem().read<float>(outA + 4 * i);
        EXPECT_GE(v, 0.0f);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoftmaxSizes,
                         ::testing::Values(1u, 2u, 9u, 31u, 32u, 33u,
                                           100u, 1000u));

// ---------------------------------------------------------------------
// Occupancy calculator properties.

class OccupancySweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(OccupancySweep, RespectsEveryLimit)
{
    const uint32_t threads = GetParam();
    const sim::GpuConfig cfg = sim::pascalGP102();
    for (uint32_t regs : {8u, 32u, 64u, 128u}) {
        for (uint32_t smem : {0u, 1024u, 48u * 1024}) {
            const uint32_t ctas = cfg.occupancyCtas(threads, regs, smem);
            EXPECT_GE(ctas, 1u);
            EXPECT_LE(ctas, cfg.maxCtasPerSm);
            EXPECT_LE(uint64_t(ctas) * threads,
                      uint64_t(cfg.maxThreadsPerSm) + threads);
            if (smem > 0 && ctas > 1)
                EXPECT_LE(ctas * smem, cfg.smemBytesPerSm);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OccupancySweep,
                         ::testing::Values(1u, 32u, 100u, 256u, 1024u));

// ---------------------------------------------------------------------
// Pooling result bounds over kinds and strides.

class PoolSweep
    : public ::testing::TestWithParam<std::tuple<bool, uint32_t>>
{
};

TEST_P(PoolSweep, OutputsBoundedByInputRange)
{
    const auto [avg, stride] = GetParam();
    Layer l;
    l.kind = LayerKind::Pool;
    l.C = 2;
    l.H = l.W = 11;
    l.R = l.S = 3;
    l.stride = stride;
    l.avg = avg;
    l.P = l.Q = (11 - 3) / stride + 1;
    const Tensor in = randomT({2, 11, 11}, stride + avg);
    const Tensor out = referenceForward(l, {&in});
    float lo = 1e30f, hi = -1e30f;
    for (uint64_t i = 0; i < in.size(); i++) {
        lo = std::min(lo, in[i]);
        hi = std::max(hi, in[i]);
    }
    for (uint64_t i = 0; i < out.size(); i++) {
        EXPECT_GE(out[i], avg ? std::min(lo, 0.0f) : lo);
        EXPECT_LE(out[i], hi);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1u, 2u,
                                                              3u)));

} // namespace
} // namespace tango
