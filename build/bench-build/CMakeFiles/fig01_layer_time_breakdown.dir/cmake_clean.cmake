file(REMOVE_RECURSE
  "../bench/fig01_layer_time_breakdown"
  "../bench/fig01_layer_time_breakdown.pdb"
  "CMakeFiles/fig01_layer_time_breakdown.dir/fig01_layer_time_breakdown.cc.o"
  "CMakeFiles/fig01_layer_time_breakdown.dir/fig01_layer_time_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_layer_time_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
