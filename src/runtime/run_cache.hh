/**
 * @file
 * On-disk spill of simulation results (rt::Engine's persistent cache).
 *
 * A cache file is a single JSON document mapping RunKey strings to fully
 * serialized NetRun records.  Doubles are written with 17 significant
 * digits so every statistic round-trips bit-exactly — a NetRun recalled
 * from disk is indistinguishable from one the simulator just produced.
 *
 * The format is versioned; a file whose version does not match
 * kRunCacheVersion is ignored wholesale (simulation is cheap enough
 * that migrating stale results is never worth the risk of mixing
 * statistics from two simulator revisions).
 */

#ifndef TANGO_RUNTIME_RUN_CACHE_HH
#define TANGO_RUNTIME_RUN_CACHE_HH

#include <map>
#include <string>

#include "common/json.hh"
#include "runtime/runtime.hh"

namespace tango::rt {

/** Bump when NetRun/KernelStats serialization changes shape. */
constexpr int kRunCacheVersion = 2;   // 2: KernelStats.replayed

/**
 * Revision of the numbers the simulator produces, independent of the
 * serialization shape.  Bump whenever a simulator change intentionally
 * alters any reported statistic, so cached NetRuns from the previous
 * model are not mixed with fresh ones.  Performance-only rewrites that
 * keep every statistic bit-identical (enforced by tests/test_golden_stats)
 * must NOT bump this.
 */
constexpr int kSimStatsVersion = 2;   // 2: default RNN seqLen 2 -> 32,
                                      //    launch meta-counters in totals

/** Serialize one NetRun as a JSON object (no surrounding whitespace). */
std::string serializeNetRun(const NetRun &run);

/**
 * Parse one NetRun from its serializeNetRun() JSON form.
 * Also the golden-fixture format of tests/test_golden_stats.cc.
 * @return false (out untouched) on malformed input; never throws.
 */
bool parseNetRunJson(const std::string &text, NetRun &out);

/** Build a NetRun from an already-parsed JSON object (the embedded
 *  "run" field of a serve protocol result; missing fields default). */
NetRun netRunFromJson(const json::Reader::Value &v);

/**
 * Load a cache file.
 *
 * A file with a truncated or corrupt *tail* (interrupted write, disk
 * full) keeps every entry before the damage: the bad suffix is discarded
 * with a warning.  Damage before the version header, or a version
 * mismatch, still discards the file wholesale.
 *
 * @return key -> NetRun map; empty if the file is missing, unreadable,
 *         malformed before any entry, or of a different version (never
 *         throws).
 */
std::map<std::string, NetRun> loadRunCache(const std::string &path);

/**
 * Atomically write @p runs to @p path (tmp file + rename).
 * @param max_bytes if > 0, stop adding entries once the file would
 *        exceed this size (the skipped entries are re-simulated next
 *        time); the written file is always complete, valid JSON.
 * @return false on I/O failure.
 */
bool saveRunCache(const std::string &path,
                  const std::map<std::string, NetRun> &runs,
                  uint64_t max_bytes = 0);

} // namespace tango::rt

#endif // TANGO_RUNTIME_RUN_CACHE_HH
