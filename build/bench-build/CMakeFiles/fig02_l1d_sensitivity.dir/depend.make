# Empty dependencies file for fig02_l1d_sensitivity.
# This may be replaced when dependencies are built.
