# Empty dependencies file for fig12_register_usage.
# This may be replaced when dependencies are built.
