file(REMOVE_RECURSE
  "../bench/abl_sampling_fidelity"
  "../bench/abl_sampling_fidelity.pdb"
  "CMakeFiles/abl_sampling_fidelity.dir/abl_sampling_fidelity.cc.o"
  "CMakeFiles/abl_sampling_fidelity.dir/abl_sampling_fidelity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sampling_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
