/**
 * @file
 * Fig 6 reproduction: energy consumption of CifarNet and SqueezeNet on
 * the embedded GPU (TX1) vs the embedded FPGA (PynQ-Z1), normalized to
 * PynQ.
 *
 * Paper shape to hold: TX1 runs 1.7-1.8x *faster* but draws 2.28-3.2x
 * more peak power, so its total energy ends up 1.34-1.74x *higher* than
 * the FPGA's.
 */

#include "bench_util.hh"

#include "fpga/pynq.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const char *netName : {"cifarnet", "squeezenet"}) {
        bench::RunKey key{netName};
        key.platform = "TX1";
        key.l1dBytes = sim::maxwellTX1().l1dBytes;
        keys.push_back(key);
    }
    bench::prefetch(keys);

    Table t("Fig 6: energy on embedded GPU (TX1) vs embedded FPGA (PynQ)");
    t.header({"network", "TX1 time(ms)", "PynQ time(ms)", "TX1 peak(W)",
              "PynQ peak(W)", "TX1 energy(mJ)", "PynQ energy(mJ)",
              "TX1/PynQ energy"});

    for (const char *netName : {"cifarnet", "squeezenet"}) {
        bench::RunKey key{netName};
        key.platform = "TX1";
        key.l1dBytes = sim::maxwellTX1().l1dBytes;
        const rt::NetRun &gpuRun = bench::netRun(key);
        // The paper computes energy as peak power x execution time
        // (the Wattsup meter reports power, not energy).
        const double gpuEnergy = gpuRun.peakPowerW * gpuRun.totalTimeSec;

        nn::Network net = nn::models::buildCnn(netName);
        const fpga::FpgaRun fpgaRun = fpga::runOnPynq(net);
        const double fpgaEnergy =
            fpgaRun.peakPowerW * fpgaRun.totalTimeSec;

        t.row({netName, Table::num(gpuRun.totalTimeSec * 1e3, 2),
               Table::num(fpgaRun.totalTimeSec * 1e3, 2),
               Table::num(gpuRun.peakPowerW, 1),
               Table::num(fpgaRun.peakPowerW, 1),
               Table::num(gpuEnergy * 1e3, 1),
               Table::num(fpgaEnergy * 1e3, 1),
               Table::num(fpgaEnergy > 0 ? gpuEnergy / fpgaEnergy : 0.0,
                          2) +
                   "x"});
        bench::registerValue(std::string("fig06/") + netName +
                                 "/energy_ratio",
                             "tx1_over_pynq",
                             fpgaEnergy > 0 ? gpuEnergy / fpgaEnergy : 0.0);
        bench::registerValue(std::string("fig06/") + netName +
                                 "/power_ratio",
                             "tx1_over_pynq",
                             fpgaRun.peakPowerW > 0
                                 ? gpuRun.peakPowerW / fpgaRun.peakPowerW
                                 : 0.0);
    }
    t.print(std::cout);
    std::cout << "Paper: TX1 power 2.28x/3.2x higher, runtime 1.7x/1.8x "
                 "shorter, energy 1.34x/1.74x higher than PynQ.\n";

    tango::bench::registerSimSpeed();
    return tango::bench::runHarness(argc, argv);
}
