/**
 * @file
 * Trace tests: the tango::trace subsystem must be a pure tap on the
 * simulator.  Events must be well-formed and cycle-monotonic per core
 * track, kernel spans must nest inside layer spans and match the NetRun
 * kernel statistics exactly, full rings must report exact drop counts —
 * and a run's statistics must stay bit-identical to the committed golden
 * fixtures whether tracing is off or on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/run_cache.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"
#include "trace/export_chrome.hh"
#include "trace/trace.hh"

namespace tango {
namespace {

using trace::Event;
using trace::EventKind;
using trace::RingOptions;
using trace::RingSink;

Event
mkEvent(EventKind kind, uint64_t cycle, uint8_t core = 0)
{
    Event e;
    e.kind = kind;
    e.cycle = cycle;
    e.core = core;
    return e;
}

// ------------------------------------------------------------ sink units

TEST(RingSink, CapacityRoundsUpToPowerOfTwo)
{
    RingOptions opt;
    opt.capacity = 100;
    EXPECT_EQ(RingSink(opt).capacity(), 128u);
    opt.capacity = 128;
    EXPECT_EQ(RingSink(opt).capacity(), 128u);
    opt.capacity = 1;   // floored: a ring needs room for a span pair
    EXPECT_EQ(RingSink(opt).capacity(), 2u);
}

TEST(RingSink, OverflowReportsExactDropCounts)
{
    RingOptions opt;
    opt.capacity = 16;
    RingSink sink(opt);

    const uint64_t writes = 50;
    for (uint64_t i = 0; i < writes; i++)
        sink.record(mkEvent(EventKind::OccupancySample, i, /*core=*/3));

    EXPECT_EQ(sink.recorded(), 16u);
    EXPECT_EQ(sink.dropped(), writes - 16);
    EXPECT_EQ(sink.dropped(3), writes - 16);
    EXPECT_EQ(sink.dropped(0), 0u);

    // A full ring drops *new* events (never overwrites): the survivors
    // are exactly the first capacity() events, in record order.
    const std::vector<Event> events = sink.coreEvents(3);
    ASSERT_EQ(events.size(), 16u);
    for (uint64_t i = 0; i < events.size(); i++)
        EXPECT_EQ(events[i].cycle, i);

    EXPECT_EQ(sink.cores(), std::vector<uint8_t>{3});
}

TEST(RingSink, InternedNameIdsAreStable)
{
    RingSink sink;
    const uint32_t a = sink.intern("conv1");
    const uint32_t b = sink.intern("fc2");
    EXPECT_NE(a, 0u);   // id 0 is reserved for the empty name
    EXPECT_NE(a, b);
    EXPECT_EQ(sink.intern("conv1"), a);
    EXPECT_EQ(sink.names().at(a), "conv1");
    EXPECT_EQ(sink.names().at(b), "fc2");
    EXPECT_EQ(sink.names().at(0), "");
}

TEST(TraceSink, RecordRebasesKernelCyclesOntoGlobalTimeline)
{
    RingSink sink;
    sink.record(mkEvent(EventKind::KernelBegin, 0));
    sink.record(mkEvent(EventKind::KernelEnd, 100));
    sink.advanceCycles(100);
    sink.record(mkEvent(EventKind::KernelBegin, 0));
    sink.record(mkEvent(EventKind::KernelEnd, 40));
    sink.advanceCycles(40);
    EXPECT_EQ(sink.cycleBase(), 140u);

    const std::vector<Event> events = sink.coreEvents(0);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].cycle, 0u);
    EXPECT_EQ(events[1].cycle, 100u);
    EXPECT_EQ(events[2].cycle, 100u);   // second kernel's local 0
    EXPECT_EQ(events[3].cycle, 140u);
}

TEST(TraceSink, MaskSelectsEventKinds)
{
    RingSink sink;
    EXPECT_EQ(sink.mask(), trace::kAllEvents);
    sink.setMask(trace::kindBit(EventKind::KernelBegin) |
                 trace::kindBit(EventKind::KernelEnd));
    EXPECT_TRUE(sink.wants(EventKind::KernelBegin));
    EXPECT_TRUE(sink.wants(EventKind::KernelEnd));
    EXPECT_FALSE(sink.wants(EventKind::OccupancySample));
    EXPECT_FALSE(sink.wants(EventKind::StallTransition));
}

// ----------------------------------------------------- traced simulation

/** The golden-fixture policy: exact simulation, functional outputs. */
rt::RunPolicy
exactPolicy()
{
    rt::RunPolicy policy = rt::RunPolicy::named("exact");
    policy.functional = true;
    return policy;
}

rt::NetRun
runNet(const std::string &net, trace::TraceSink *sink,
       uint64_t samplePeriod = 4096)
{
    sim::Gpu gpu(sim::pascalGP102());
    if (sink)
        sink->setSamplePeriod(samplePeriod);
    trace::ScopedSink install(sink);
    return rt::runNetworkByName(gpu, net, exactPolicy());
}

/** One traced gru run, shared by the span/monotonicity/export tests. */
struct TracedRun
{
    rt::NetRun run;
    std::unique_ptr<RingSink> sink;
};

const TracedRun &
tracedGru()
{
    static TracedRun *traced = [] {
        auto *t = new TracedRun;
        t->sink = std::make_unique<RingSink>();
        t->run = runNet("gru", t->sink.get());
        return t;
    }();
    return *traced;
}

TEST(Trace, EventsAreWellFormedAndCycleMonotonicPerTrack)
{
    const TracedRun &t = tracedGru();
    ASSERT_EQ(t.sink->dropped(), 0u);
    ASSERT_GT(t.sink->recorded(), 0u);

    for (uint8_t core : t.sink->cores()) {
        uint64_t last = 0;
        for (const Event &e : t.sink->coreEvents(core)) {
            ASSERT_LT(static_cast<unsigned>(e.kind),
                      static_cast<unsigned>(EventKind::NumKinds));
            EXPECT_EQ(e.core, core);
            EXPECT_GE(e.cycle, last);
            last = e.cycle;
            // Name ids must resolve in the interning table.
            if (e.kind == EventKind::KernelBegin ||
                e.kind == EventKind::KernelEnd ||
                e.kind == EventKind::LayerBegin ||
                e.kind == EventKind::LayerEnd) {
                ASSERT_LT(e.arg, t.sink->names().size());
            }
        }
    }
}

TEST(Trace, KernelSpansNestInLayersAndMatchNetRunStats)
{
    const TracedRun &t = tracedGru();

    // Flatten the NetRun's kernels in execution order.
    std::vector<const sim::KernelStats *> kernels;
    for (const auto &layer : t.run.layers)
        for (const auto &ks : layer.kernels)
            kernels.push_back(&ks);
    ASSERT_FALSE(kernels.empty());

    // Walk core 0's span events with a stack: layers at the bottom,
    // kernels strictly inside a layer, and every End matching its Begin.
    size_t next = 0;
    std::vector<Event> stack;
    for (const Event &e : t.sink->coreEvents(0)) {
        switch (e.kind) {
        case EventKind::LayerBegin:
            EXPECT_TRUE(stack.empty());   // layers do not nest
            stack.push_back(e);
            break;
        case EventKind::KernelBegin:
            ASSERT_FALSE(stack.empty());  // kernels run inside a layer
            EXPECT_EQ(stack.back().kind, EventKind::LayerBegin);
            stack.push_back(e);
            break;
        case EventKind::KernelEnd: {
            ASSERT_FALSE(stack.empty());
            const Event begin = stack.back();
            stack.pop_back();
            ASSERT_EQ(begin.kind, EventKind::KernelBegin);
            EXPECT_EQ(begin.arg, e.arg);   // same interned kernel name

            ASSERT_LT(next, kernels.size());
            const sim::KernelStats &ks = *kernels[next++];
            EXPECT_EQ(t.sink->names().at(begin.arg), ks.name);
            EXPECT_EQ(begin.payload, ks.totalCtas);
            EXPECT_EQ(e.cycle - begin.cycle, ks.smCycles);
            break;
        }
        case EventKind::LayerEnd: {
            ASSERT_FALSE(stack.empty());
            const Event begin = stack.back();
            stack.pop_back();
            ASSERT_EQ(begin.kind, EventKind::LayerBegin);
            EXPECT_EQ(begin.arg, e.arg);
            EXPECT_EQ(begin.payload, e.payload);   // same layer index
            break;
        }
        default:
            break;
        }
    }
    EXPECT_TRUE(stack.empty());
    // Exactly one span per kernel launch, none missing, none extra.
    EXPECT_EQ(next, kernels.size());
}

TEST(Trace, HooksHonorTheEventMask)
{
    RingOptions opt;
    opt.mask = trace::kindBit(EventKind::KernelBegin) |
               trace::kindBit(EventKind::KernelEnd);
    RingSink sink(opt);
    const rt::NetRun run = runNet("gru", &sink);

    const auto counts = sink.kindCounts();
    uint64_t kernelEvents = 0;
    for (const auto &[kind, count] : counts) {
        EXPECT_TRUE(kind == EventKind::KernelBegin ||
                    kind == EventKind::KernelEnd)
            << "unselected kind recorded: " << trace::eventKindName(kind);
        kernelEvents += count;
    }
    size_t kernels = 0;
    for (const auto &layer : run.layers)
        kernels += layer.kernels.size();
    EXPECT_EQ(kernelEvents, 2 * kernels);
}

TEST(Trace, FullSimRingOverflowAccountsEveryEvent)
{
    // The reference count: everything the run emits, nothing dropped.
    const TracedRun &t = tracedGru();
    const uint64_t total = t.sink->recorded();
    ASSERT_EQ(t.sink->dropped(), 0u);

    // The same deterministic run into a tiny ring must drop exactly the
    // overflow — recorded + dropped still accounts for every event.
    RingOptions opt;
    opt.capacity = 64;
    RingSink small(opt);
    runNet("gru", &small);
    EXPECT_EQ(small.recorded(), 64u);
    EXPECT_EQ(small.dropped(), total - 64);
}

// ----------------------------------------------- statistics invariance

/** Every statistic, compared exactly: tracing must not move one bit. */
void
expectIdentical(const rt::NetRun &a, const rt::NetRun &b)
{
    EXPECT_EQ(a.netName, b.netName);
    EXPECT_EQ(a.deviceBytes, b.deviceBytes);
    EXPECT_EQ(a.totalTimeSec, b.totalTimeSec);
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
    EXPECT_EQ(a.peakPowerW, b.peakPowerW);
    EXPECT_EQ(a.maxRegsPerThread, b.maxRegsPerThread);
    EXPECT_EQ(a.maxLiveRegs, b.maxLiveRegs);
    EXPECT_EQ(a.maxResidentWarps, b.maxResidentWarps);
    EXPECT_EQ(a.checkFailures, b.checkFailures);
    EXPECT_EQ(a.totals.all(), b.totals.all());
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); i++) {
        EXPECT_EQ(a.layers[i].name, b.layers[i].name);
        EXPECT_EQ(a.layers[i].timeSec(), b.layers[i].timeSec());
        EXPECT_EQ(a.layers[i].gpuCycles(), b.layers[i].gpuCycles());
        ASSERT_EQ(a.layers[i].kernels.size(), b.layers[i].kernels.size());
        for (size_t k = 0; k < a.layers[i].kernels.size(); k++) {
            EXPECT_EQ(a.layers[i].kernels[k].stats.all(),
                      b.layers[i].kernels[k].stats.all());
        }
    }
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

TEST(Trace, DisabledTracingStaysBitIdenticalToGoldenFixtures)
{
    // The committed golden fixtures (tests/golden) were produced with no
    // tracing compiled in; a run with the hooks present but no sink
    // installed must reproduce them bit for bit.
    for (const std::string net : {"gru", "lstm"}) {
        SCOPED_TRACE(net);
        std::string text;
        ASSERT_TRUE(readFile(std::string(TANGO_GOLDEN_DIR) + "/" + net +
                                 ".json",
                             text))
            << "missing golden fixture (run test_golden_stats with "
               "TANGO_UPDATE_GOLDEN=1)";
        rt::NetRun golden;
        ASSERT_TRUE(rt::parseNetRunJson(text, golden));
        const rt::NetRun actual = runNet(net, /*sink=*/nullptr);
        expectIdentical(golden, actual);
    }
}

TEST(Trace, EnabledTracingDoesNotPerturbStatistics)
{
    // An aggressive sink — every event kind, dense counter sampling —
    // must still leave the statistics untouched: the trace is a tap.
    RingSink sink;
    const rt::NetRun traced = runNet("gru", &sink, /*samplePeriod=*/64);
    EXPECT_GT(sink.recorded(), 0u);
    expectIdentical(tracedGru().run, traced);

    const rt::NetRun untraced = runNet("gru", nullptr);
    expectIdentical(untraced, traced);
}

// ------------------------------------------------------- chrome export

TEST(Trace, ChromeExportIsStructurallySane)
{
    const TracedRun &t = tracedGru();
    trace::ChromeExportOptions opt;
    opt.coreClockGhz = sim::pascalGP102().coreClockGhz;
    opt.label = "gru/test";
    const std::string json = trace::chromeTraceJson(*t.sink, opt);

    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Span, counter and metadata records all present.
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"active_warps\""), std::string::npos);
    EXPECT_NE(json.find("\"mshrs_in_flight\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    // Exact drop accounting surfaces in the exported metadata.
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
    // Every kernel name appears as a span name.
    for (const auto &layer : t.run.layers)
        for (const auto &ks : layer.kernels)
            EXPECT_NE(json.find("\"name\":\"" + ks.name + "\""),
                      std::string::npos)
                << ks.name;
}

} // namespace
} // namespace tango
