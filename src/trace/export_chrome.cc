#include "trace/export_chrome.hh"

#include <cstdio>
#include <fstream>

#include "sim/stall.hh"

namespace tango::trace {

namespace {

/** Track (tid) layout inside the single "tango-sim" process. */
constexpr int kPidSim = 1;
constexpr int kTidSpans = 1;       ///< nested layer/kernel spans
constexpr int
tidStalls(uint8_t core)
{
    return 100 + 2 * core;
}
constexpr int
tidMemory(uint8_t core)
{
    return 101 + 2 * core;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** One trace-event emitter: builds `{"name":...,"ph":...}` records and
 *  keeps the comma discipline of the surrounding array. */
class EventWriter
{
  public:
    EventWriter(std::string &out, double cyclesPerUs) : out_(out),
        cyclesPerUs_(cyclesPerUs)
    {
    }

    void begin(const char *ph, const std::string &name, int tid,
               uint64_t cycle)
    {
        next();
        out_ += "{\"name\":";
        appendEscaped(out_, name);
        out_ += ",\"ph\":\"";
        out_ += ph;
        out_ += "\",\"pid\":" + std::to_string(kPidSim) +
                ",\"tid\":" + std::to_string(tid) + ",\"ts\":";
        ts(cycle);
    }

    void dur(uint64_t cycles)
    {
        out_ += ",\"dur\":";
        ts(cycles);
    }

    void scopeThread() { out_ += ",\"s\":\"t\""; }

    void argsOpen() { out_ += ",\"args\":{"; }
    void arg(const char *key, uint64_t v, bool first = false)
    {
        if (!first)
            out_ += ',';
        out_ += '"';
        out_ += key;
        out_ += "\":" + std::to_string(v);
    }
    void argStr(const char *key, const std::string &v, bool first = false)
    {
        if (!first)
            out_ += ',';
        out_ += '"';
        out_ += key;
        out_ += "\":";
        appendEscaped(out_, v);
    }
    void argsClose() { out_ += '}'; }

    void end() { out_ += '}'; }

    /** Metadata record naming a process or thread. */
    void meta(const char *what, int tid, const std::string &name)
    {
        next();
        out_ += "{\"name\":\"";
        out_ += what;
        out_ += "\",\"ph\":\"M\",\"pid\":" + std::to_string(kPidSim) +
                ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":";
        appendEscaped(out_, name);
        out_ += "}}";
    }

  private:
    void next()
    {
        if (!first_)
            out_ += ',';
        first_ = false;
    }

    void ts(uint64_t cycles)
    {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.6f",
                      static_cast<double>(cycles) / cyclesPerUs_);
        out_ += buf;
    }

    std::string &out_;
    double cyclesPerUs_;
    bool first_ = true;
};

const std::string &
eventName(const RingSink &sink, uint32_t id)
{
    static const std::string unnamed = "?";
    const auto &names = sink.names();
    return id < names.size() ? names[id] : unnamed;
}

const char *
cacheLevelName(uint32_t level)
{
    switch (static_cast<CacheLevel>(level)) {
      case CacheLevel::L1D: return "L1D";
      case CacheLevel::L2: return "L2";
      case CacheLevel::Const: return "const";
    }
    return "cache";
}

/** @return the stall-code name for one half of a StallTransition arg
 *  (0 = "issued": the warp left the stall buckets by issuing). */
const char *
stallCodeName(uint32_t code)
{
    if (code == 0)
        return "issued";
    const auto s = static_cast<sim::Stall>(code - 1);
    return code - 1 < sim::numStalls ? sim::stallName(s) : "unknown";
}

} // namespace

std::string
chromeTraceJson(const RingSink &sink, const ChromeExportOptions &opt)
{
    const double ghz = opt.coreClockGhz > 0.0 ? opt.coreClockGhz : 1.0;
    const double cyclesPerUs = ghz * 1000.0;

    std::string out;
    out.reserve(1 << 20);
    out += "{\"traceEvents\":[";
    EventWriter w(out, cyclesPerUs);

    w.meta("process_name", kTidSpans, "tango-sim");
    w.meta("thread_name", kTidSpans, "layers/kernels");
    const std::vector<uint8_t> cores = sink.cores();
    for (uint8_t c : cores) {
        const std::string sm = "SM" + std::to_string(c);
        w.meta("thread_name", tidStalls(c), sm + " stalls");
        w.meta("thread_name", tidMemory(c), sm + " memory");
    }

    for (uint8_t c : cores) {
        for (const Event &e : sink.coreEvents(c)) {
            switch (e.kind) {
              case EventKind::LayerBegin:
              case EventKind::KernelBegin:
                w.begin("B", eventName(sink, e.arg), kTidSpans, e.cycle);
                w.argsOpen();
                w.arg(e.kind == EventKind::LayerBegin ? "layer_index"
                                                      : "total_ctas",
                      e.payload, true);
                w.argsClose();
                w.end();
                break;
              case EventKind::LayerEnd:
              case EventKind::KernelEnd:
                w.begin("E", eventName(sink, e.arg), kTidSpans, e.cycle);
                w.end();
                break;
              case EventKind::OccupancySample:
                w.begin("C", "active_warps", kTidSpans, e.cycle);
                w.argsOpen();
                w.arg("warps", e.payload, true);
                w.arg("ctas", e.arg);
                w.argsClose();
                w.end();
                break;
              case EventKind::MshrSample:
                w.begin("C", "mshrs_in_flight", kTidSpans, e.cycle);
                w.argsOpen();
                w.arg("l1d", e.payload, true);
                w.arg("l2", e.arg);
                w.argsClose();
                w.end();
                break;
              case EventKind::StallTransition: {
                const uint32_t to = e.arg & 0xff;
                const uint32_t from = (e.arg >> 8) & 0xff;
                w.begin("i", stallCodeName(to), tidStalls(c), e.cycle);
                w.scopeThread();
                w.argsOpen();
                w.arg("warp", e.warp, true);
                w.argStr("from", stallCodeName(from));
                w.argsClose();
                w.end();
                break;
              }
              case EventKind::CacheMiss:
                w.begin("i",
                        std::string(cacheLevelName(e.arg)) + " miss",
                        tidMemory(c), e.cycle);
                w.scopeThread();
                w.argsOpen();
                w.arg("line", e.payload, true);
                w.argsClose();
                w.end();
                break;
              case EventKind::CacheFill:
                w.begin("X",
                        std::string(cacheLevelName(e.arg)) + " fill",
                        tidMemory(c), e.cycle);
                w.dur(e.payload);
                w.end();
                break;
              case EventKind::DramAccess:
                w.begin("X", "dram", tidMemory(c), e.cycle);
                w.dur(e.payload);
                w.argsOpen();
                w.arg("queue_cycles", e.arg, true);
                w.argsClose();
                w.end();
                break;
              case EventKind::KernelReplay:
                w.begin("i", "replayed launch", kTidSpans, e.cycle);
                w.scopeThread();
                w.argsOpen();
                w.argStr("kernel", eventName(sink, e.arg).c_str());
                w.argsClose();
                w.end();
                break;
              case EventKind::NumKinds:
                break;
            }
        }
    }

    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    out += "\"tool\":\"tango-trace\",\"label\":";
    appendEscaped(out, opt.label);
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\"core_clock_ghz\":%.6g", ghz);
    out += buf;
    out += ",\"recorded_events\":" + std::to_string(sink.recorded());
    out += ",\"dropped_events\":" + std::to_string(sink.dropped());
    out += "}}\n";
    return out;
}

bool
writeChromeTrace(const RingSink &sink, const std::string &path,
                 const ChromeExportOptions &opt)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    f << chromeTraceJson(sink, opt);
    return static_cast<bool>(f);
}

} // namespace tango::trace
