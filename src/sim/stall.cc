#include "sim/stall.hh"

namespace tango::sim {

const char *
stallName(Stall s)
{
    switch (s) {
      case Stall::InstFetch: return "inst_fetch";
      case Stall::ExecDependency: return "exec_dependency";
      case Stall::MemoryDependency: return "memory_dependency";
      case Stall::Texture: return "texture";
      case Stall::Sync: return "sync";
      case Stall::Other: return "other";
      case Stall::PipeBusy: return "pipe_busy";
      case Stall::ConstantMemoryDependency:
        return "constant_memory_dependency";
      case Stall::MemoryThrottle: return "memory_throttle";
      case Stall::NotSelected: return "not_selected";
      case Stall::NumStalls: break;
    }
    return "?";
}

} // namespace tango::sim
