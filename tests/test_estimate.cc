/**
 * @file
 * tango::estimate unit tests: feature extraction, log-space ridge
 * fitting (recovery of a known multiplicative law, deterministic
 * holdout split), bundle JSON round trips with version guards, the
 * Estimator's dispatch/fallback contract, dataset row archives, the
 * estimated-run NetRun serialization, and — through a private Engine —
 * the property that estimate-tier jobs and sim-tier jobs never share a
 * cache entry.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "estimate/dataset.hh"
#include "estimate/estimator.hh"
#include "estimate/model.hh"
#include "nn/models/models.hh"
#include "runtime/engine.hh"
#include "runtime/job.hh"
#include "runtime/run_cache.hh"

namespace tango {
namespace {

using estimate::Bundle;
using estimate::Family;
using estimate::Features;
using estimate::Row;
using estimate::Target;

// The Engine falls back from the estimate tier through the process-wide
// Estimator; point it at a directory that cannot exist before anything
// constructs it, so every estimate-tier job in this binary deterministically
// falls back to simulation regardless of fitted weights in the source tree.
const bool kEnvPinned = [] {
    setenv("TANGO_ESTIMATE_WEIGHTS", "/nonexistent/tango-estimate-test", 1);
    return true;
}();

// --------------------------------------------------------------- features

TEST(Estimate, FamilyNamesRoundTrip)
{
    for (int fi = 0; fi < estimate::kNumFamilies; fi++) {
        const auto fam = static_cast<Family>(fi);
        Family back;
        ASSERT_TRUE(estimate::familyFromName(estimate::familyName(fam),
                                             back));
        EXPECT_EQ(back, fam);
    }
    Family f;
    EXPECT_FALSE(estimate::familyFromName("warp", f));
}

TEST(Estimate, LayerFeaturesCoverSuiteNetworks)
{
    // Every kernel-emitting layer of every CNN maps to a family and
    // yields a sane feature vector.
    for (const std::string &name : nn::models::runnableNames()) {
        const nn::AnyModel model = nn::models::buildAny(name);
        if (model.isRnn())
            continue;
        for (const nn::Layer &l : model.cnn().layers()) {
            Family fam;
            if (!estimate::layerFamily(l.kind, fam))
                continue;
            const Features f = estimate::layerFeatures(l);
            EXPECT_GT(f.v[1], 0.0) << name << ": outElems";
            EXPECT_GT(f.v[4], 0.0) << name << ": ctas";
            EXPECT_GT(f.v[5], 0.0) << name << ": threads";
            EXPECT_GE(f.v[6], 1.0) << name << ": rs";
        }
    }
}

TEST(Estimate, RnnFeatures)
{
    const nn::RnnModel gru = nn::models::buildGru(8);
    const Features cell = estimate::rnnCellFeatures(gru);
    const Features readout = estimate::rnnReadoutFeatures(gru);
    EXPECT_GT(cell.v[0], 0.0);
    EXPECT_GT(readout.v[0], 0.0);
    EXPECT_NE(cell.key(), readout.key());

    const nn::RnnModel lstm = nn::models::buildLstm(8);
    // Four gates vs three: more MACs per step at equal shapes.
    if (lstm.hidden == gru.hidden && lstm.inputSize == gru.inputSize) {
        EXPECT_GT(estimate::rnnCellFeatures(lstm).v[0], cell.v[0]);
    }
}

TEST(Estimate, FeatureKeyIsIdentity)
{
    Features a, b;
    for (int i = 0; i < estimate::kNumFeatures; i++) {
        a.v[i] = i + 0.5;
        b.v[i] = i + 0.5;
    }
    EXPECT_EQ(a.key(), b.key());
    b.v[3] += 1e-9;
    EXPECT_NE(a.key(), b.key());
}

// ---------------------------------------------------------------- fitting

/** Rows whose targets follow an exact log-linear law the model family
 *  can represent, over a wide dynamic range. */
std::vector<Row>
syntheticRows(int n)
{
    std::vector<Row> rows;
    uint64_t state = 12345;
    const auto next = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((state >> 33) % 1000) / 999.0;
    };
    for (int i = 0; i < n; i++) {
        Row r;
        r.family = Family::Conv;
        for (int fi = 0; fi < estimate::kNumFeatures; fi++)
            r.feat.v[fi] = std::pow(10.0, 1.0 + 5.0 * next());
        // log1p(y) = 0.4 + 0.8*log1p(macs) + 0.1*log1p(ctas)
        const double ly = 0.4 + 0.8 * std::log1p(r.feat.v[0]) +
                          0.1 * std::log1p(r.feat.v[4]);
        r.target[static_cast<int>(Target::Cycles)] = std::expm1(ly);
        for (int t = 1; t < estimate::kNumTargets; t++)
            r.target[t] = r.feat.v[0] * 0.5;
        rows.push_back(r);
    }
    return rows;
}

TEST(Estimate, FitRecoversLogLinearLaw)
{
    const std::vector<Row> rows = syntheticRows(60);
    const Bundle bundle = estimate::fit(rows, "bench", "GP102");
    const estimate::FamilyModel &fm = bundle.family(Family::Conv);
    ASSERT_TRUE(fm.fitted);
    EXPECT_GT(fm.trainRows, 0u);
    EXPECT_GT(fm.holdoutRows, 0u) << "60 distinct shapes must split";

    // A representable law fits essentially exactly.
    EXPECT_LT(fm.targets[static_cast<int>(Target::Cycles)].p95, 0.02);
    for (const Row &r : rows) {
        const double y = r.target[static_cast<int>(Target::Cycles)];
        const double yh = fm.predict(Target::Cycles, r.feat);
        EXPECT_NEAR(yh, y, 0.02 * y + 1.0);
    }

    // Families without rows stay unfitted.
    EXPECT_FALSE(bundle.family(Family::RnnCell).fitted);
}

TEST(Estimate, ShapeTableMemorizesSweptShapes)
{
    std::vector<Row> rows = syntheticRows(30);
    // Observe rows[0]'s shape a second time, 50% hotter: its table entry
    // becomes the log-space mean and the spread shows up in tableP95.
    Row again = rows[0];
    for (double &t : again.target)
        t *= 1.5;
    rows.push_back(again);

    const Bundle bundle = estimate::fit(rows, "bench", "GP102");
    const estimate::FamilyModel &fm = bundle.family(Family::Conv);
    ASSERT_TRUE(fm.fitted);
    EXPECT_EQ(fm.table.size(), 30u);

    // A once-seen shape answers exactly (modulo log1p round-trip).
    double out[estimate::kNumTargets];
    ASSERT_TRUE(fm.lookup(rows[1].feat, out));
    for (int t = 0; t < estimate::kNumTargets; t++)
        EXPECT_NEAR(out[t], rows[1].target[t],
                    1e-9 * rows[1].target[t] + 1e-12);

    // The twice-seen shape answers between its two observations and
    // carries the duplicate spread as the table bound.
    ASSERT_TRUE(fm.lookup(rows[0].feat, out));
    const double lo = rows[0].target[0], hi = again.target[0];
    EXPECT_GT(out[0], lo);
    EXPECT_LT(out[0], hi);
    EXPECT_GT(fm.tableP95, 0.0);
    EXPECT_GE(fm.tableP95, fm.tableP50);

    // A shape the sweep never saw misses the table entirely.
    Features novel = rows[0].feat;
    novel.v[0] *= 1.0001;
    EXPECT_FALSE(fm.lookup(novel, out));

    // The table (entries, per-target means, spread bounds) survives the
    // JSON round-trip.
    Bundle back;
    std::string err;
    ASSERT_TRUE(Bundle::fromJson(bundle.toJson(), back, &err)) << err;
    const estimate::FamilyModel &bfm = back.family(Family::Conv);
    ASSERT_EQ(bfm.table.size(), fm.table.size());
    EXPECT_DOUBLE_EQ(bfm.tableP50, fm.tableP50);
    EXPECT_DOUBLE_EQ(bfm.tableP95, fm.tableP95);
    double out2[estimate::kNumTargets];
    for (const Row &r : rows) {
        ASSERT_TRUE(bfm.lookup(r.feat, out2));
        ASSERT_TRUE(fm.lookup(r.feat, out));
        for (int t = 0; t < estimate::kNumTargets; t++)
            EXPECT_DOUBLE_EQ(out2[t], out[t]);
    }
}

TEST(Estimate, FitIsDeterministic)
{
    const std::vector<Row> rows = syntheticRows(40);
    EXPECT_EQ(estimate::fit(rows, "bench", "GP102").toJson(),
              estimate::fit(rows, "bench", "GP102").toJson());
}

// ------------------------------------------------------------ bundle JSON

TEST(Estimate, BundleJsonRoundTrip)
{
    const Bundle bundle = estimate::fit(syntheticRows(30), "mem", "TX1");
    Bundle back;
    std::string err;
    ASSERT_TRUE(Bundle::fromJson(bundle.toJson(), back, &err)) << err;
    EXPECT_EQ(back.policy, "mem");
    EXPECT_EQ(back.platform, "TX1");
    EXPECT_EQ(back.toJson(), bundle.toJson());

    Features probe;
    for (int i = 0; i < estimate::kNumFeatures; i++)
        probe.v[i] = 100.0 + i;
    EXPECT_DOUBLE_EQ(
        back.family(Family::Conv).predict(Target::Cycles, probe),
        bundle.family(Family::Conv).predict(Target::Cycles, probe));
}

TEST(Estimate, BundleVersionGuards)
{
    std::string text = estimate::fit(syntheticRows(10), "bench", "GP102")
                           .toJson();
    Bundle out;
    std::string err;

    std::string wrongBundle = text;
    const std::string vtag =
        "\"version\":" + std::to_string(estimate::kBundleVersion);
    wrongBundle.replace(wrongBundle.find(vtag), vtag.size(),
                        "\"version\":99");
    EXPECT_FALSE(Bundle::fromJson(wrongBundle, out, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;

    std::string wrongStats = text;
    const std::string stag =
        "\"statsVersion\":" + std::to_string(rt::kSimStatsVersion);
    wrongStats.replace(wrongStats.find(stag), stag.size(),
                       "\"statsVersion\":999");
    EXPECT_FALSE(Bundle::fromJson(wrongStats, out, &err));

    EXPECT_FALSE(Bundle::fromJson("{bad", out, &err));
}

TEST(Estimate, BundleFileName)
{
    EXPECT_EQ(Bundle::fileName("bench", "GP102"), "bench_GP102.json");
}

// ----------------------------------------------------------- dataset rows

TEST(Estimate, DatasetRowsJsonRoundTrip)
{
    std::vector<Row> rows = syntheticRows(3);
    rows[1].family = Family::Pool;
    rows[2].source = "alexnet/GP102/l1=64K/gto/bench:conv1";
    const std::string text = estimate::rowsToJson(rows, "bench", "GP102");

    std::vector<Row> back;
    std::string err;
    ASSERT_TRUE(estimate::rowsFromJson(text, back, &err)) << err;
    ASSERT_EQ(back.size(), rows.size());
    for (size_t i = 0; i < rows.size(); i++) {
        EXPECT_EQ(back[i].family, rows[i].family);
        EXPECT_EQ(back[i].feat.key(), rows[i].feat.key());
        for (int t = 0; t < estimate::kNumTargets; t++)
            EXPECT_DOUBLE_EQ(back[i].target[t], rows[i].target[t]);
    }
    EXPECT_EQ(back[2].source, rows[2].source);

    // A stats-version mismatch is rejected like a stale spill.
    std::string stale = text;
    const std::string stag =
        "\"statsVersion\":" + std::to_string(rt::kSimStatsVersion);
    stale.replace(stale.find(stag), stag.size(), "\"statsVersion\":999");
    EXPECT_FALSE(estimate::rowsFromJson(stale, back, &err));
}

// -------------------------------------------------------------- estimator

/** Fit a bundle covering every family the suite networks use, from
 *  fabricated (but law-following) targets, and write it to @p dir. */
void
writeSuiteBundle(const std::string &dir)
{
    std::vector<Row> rows;
    const auto addRow = [&rows](Family fam, const Features &f) {
        Row r;
        r.family = fam;
        r.feat = f;
        const double work = f.v[0] + f.v[1] + 16.0;
        r.target[static_cast<int>(Target::Cycles)] = 10.0 * work;
        r.target[static_cast<int>(Target::Stalls)] = 2.0 * work;
        r.target[static_cast<int>(Target::L1dMisses)] = 0.1 * work;
        r.target[static_cast<int>(Target::L2Misses)] = 0.05 * work;
        r.target[static_cast<int>(Target::DramAccesses)] = 0.02 * work;
        r.target[static_cast<int>(Target::EnergyJ)] = 1e-9 * work;
        rows.push_back(r);
    };
    for (const std::string &name : nn::models::runnableNames()) {
        const nn::AnyModel model = nn::models::buildAny(name);
        if (model.isRnn()) {
            addRow(Family::RnnCell,
                   estimate::rnnCellFeatures(model.rnn()));
            addRow(Family::Fc, estimate::rnnReadoutFeatures(model.rnn()));
            continue;
        }
        for (const nn::Layer &l : model.cnn().layers()) {
            Family fam;
            if (estimate::layerFamily(l.kind, fam))
                addRow(fam, estimate::layerFeatures(l));
        }
    }
    // Re-observe every shape 20% hotter so each family's table carries a
    // nonzero duplicate-row spread — table hits must report an honest
    // p95, which the tight-bound fallback test below relies on.
    const size_t firstPass = rows.size();
    for (size_t i = 0; i < firstPass; i++) {
        Row again = rows[i];
        for (double &t : again.target)
            t *= 1.2;
        rows.push_back(again);
    }
    const Bundle bundle = estimate::fit(rows, "bench", "GP102");
    std::ofstream f(dir + "/" + Bundle::fileName("bench", "GP102"),
                    std::ios::trunc);
    ASSERT_TRUE(f.good());
    f << bundle.toJson() << "\n";
}

TEST(Estimate, EstimatorAnswersFittedJobs)
{
    const std::string dir = ::testing::TempDir();
    writeSuiteBundle(dir);
    estimate::Estimator est(dir);

    for (const char *net : {"alexnet", "gru"}) {
        rt::JobSpec spec;
        spec.net = net;
        spec.tier = rt::Tier::Estimate;
        ASSERT_EQ(spec.validate(), "");

        rt::NetRun run;
        std::string reason;
        ASSERT_TRUE(est.estimate(spec, run, &reason)) << reason;
        EXPECT_TRUE(run.estimated);
        EXPECT_GE(run.estErrP95, run.estErrP50);
        EXPECT_EQ(run.netName, net);
        EXPECT_FALSE(run.layers.empty());
        EXPECT_GT(run.totalTimeSec, 0.0);
        EXPECT_GT(run.totalEnergyJ, 0.0);
        for (const rt::LayerRun &lr : run.layers) {
            ASSERT_FALSE(lr.kernels.empty());
            EXPECT_GT(lr.gpuCycles(), 0.0) << lr.name;
        }
    }
}

TEST(Estimate, EstimatorFallbackReasons)
{
    rt::JobSpec spec;
    spec.net = "alexnet";
    spec.tier = rt::Tier::Estimate;
    rt::NetRun run;
    std::string reason;

    // No bundle directory at all.
    estimate::Estimator missing("/nonexistent/tango-estimate-test");
    EXPECT_FALSE(missing.estimate(spec, run, &reason));
    EXPECT_FALSE(reason.empty());
    EXPECT_FALSE(run.estimated) << "a refusal must leave run untouched";

    const std::string dir = ::testing::TempDir();
    writeSuiteBundle(dir);
    estimate::Estimator est(dir);

    // Unfitted (policy, platform) pair.
    rt::JobSpec mem = spec;
    mem.policy = "mem";
    EXPECT_FALSE(est.estimate(mem, run, &reason));

    // A bound tighter than the models validated.
    rt::JobSpec tight = spec;
    tight.maxRelErr = 1e-12;
    EXPECT_FALSE(est.estimate(tight, run, &reason));
    EXPECT_NE(reason.find("bound"), std::string::npos) << reason;

    // An inline policy has no fitted bundle by construction.
    rt::JobSpec inl = spec;
    inl.hasInlinePolicy = true;
    inl.inlinePolicy = rt::RunPolicy::named("bench");
    EXPECT_FALSE(est.estimate(inl, run, &reason));
}

// ----------------------------------------------- estimated-run NetRun JSON

TEST(Estimate, EstimatedNetRunSerialization)
{
    rt::NetRun run;
    run.netName = "alexnet";
    run.totalTimeSec = 0.5;
    run.estimated = true;
    run.estErrP50 = 0.031;
    run.estErrP95 = 0.118;

    rt::NetRun back;
    ASSERT_TRUE(rt::parseNetRunJson(rt::serializeNetRun(run), back));
    EXPECT_TRUE(back.estimated);
    EXPECT_DOUBLE_EQ(back.estErrP50, 0.031);
    EXPECT_DOUBLE_EQ(back.estErrP95, 0.118);

    // Simulated runs serialize exactly as before the estimate tier
    // existed — the golden fixtures and old spills stay byte-valid.
    rt::NetRun sim;
    sim.netName = "alexnet";
    EXPECT_EQ(rt::serializeNetRun(sim).find("estimated"),
              std::string::npos);
    ASSERT_TRUE(rt::parseNetRunJson(rt::serializeNetRun(sim), back));
    EXPECT_FALSE(back.estimated);
}

// -------------------------------------------------------- cache separation

TEST(Estimate, EstimateTierNeverSharesSimCache)
{
    rt::EngineOptions opt;
    opt.threads = 1;
    rt::Engine engine(opt);

    rt::JobSpec sim;
    sim.net = "cifarnet";
    rt::JobSpec est = sim;
    est.tier = rt::Tier::Estimate;
    ASSERT_NE(sim.cacheKey().str, est.cacheKey().str);

    using Served = rt::Engine::Submitted::Served;

    // Fill the sim-tier cache first.
    auto s1 = engine.submitJob(sim);
    ASSERT_EQ(s1.served, Served::Simulated);
    const rt::NetRun &simRun = *s1.future.get();
    EXPECT_FALSE(simRun.estimated);

    // The estimate-tier job must not hit that entry: its key differs,
    // so it simulates its own result (here via fallback — this binary
    // pins TANGO_ESTIMATE_WEIGHTS to a nonexistent directory).
    auto e1 = engine.submitJob(est);
    ASSERT_EQ(e1.served, Served::Simulated);
    const rt::NetRun &estRun = *e1.future.get();
    EXPECT_FALSE(estRun.estimated) << "fallback produces a real run";
    EXPECT_GT(estRun.totalTimeSec, 0.0);

    // Each tier hits only its own entry from now on.
    EXPECT_EQ(engine.submitJob(sim).served, Served::MemHit);
    EXPECT_EQ(engine.submitJob(est).served, Served::MemHit);

    const rt::Engine::CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.tierSim, 2u);
    EXPECT_EQ(stats.tierEstimate, 2u);
    EXPECT_EQ(stats.tierReplay, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.memHits, 2u);
}

} // namespace
} // namespace tango

