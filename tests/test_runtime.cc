/**
 * @file
 * Runtime tests: whole networks executed on the virtual GPU in check
 * mode (device outputs vs the CPU reference), CTA sampling behaviour,
 * and per-layer stat collection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using rt::RunPolicy;
using rt::Runtime;

TEST(Runtime, CifarNetFullSimMatchesReference)
{
    // The whole CifarNet inference — every CTA of every kernel — runs on
    // the simulator and must match the CPU reference.
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildCifarNet());
    nn::initWeights(model);

    RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 2e-4f;

    Runtime rtm(gpu);
    const rt::NetRun run = rtm.run(model, p);
    EXPECT_EQ(run.checkFailures, 0u);
    EXPECT_GT(run.totalTimeSec, 0.0);
    EXPECT_GT(run.totals.sumPrefix("op."), 1000.0);
    // One LayerRun per layer with kernels (8 compute + softmax).
    EXPECT_EQ(run.layers.size(), 9u);
}

TEST(Runtime, GruEndToEndPrediction)
{
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildGru());
    nn::initWeights(model);

    RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 1e-3f;

    const auto seq = nn::models::makeStockSequence(model.rnn().seqLen);
    float pred = 0.0f;
    Runtime rtm(gpu);
    const rt::NetRun run =
        rtm.run(model, p, {.sequence = &seq, .prediction = &pred});
    EXPECT_EQ(run.checkFailures, 0u);
    EXPECT_NEAR(pred, model.rnn().forward(seq), 1e-3f);
    // One cell launch per time step + 1 readout.
    EXPECT_EQ(run.layers.size(), model.rnn().seqLen + 1u);
}

TEST(Runtime, LstmEndToEndPrediction)
{
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildLstm());
    nn::initWeights(model);

    RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 1e-3f;

    const auto seq = nn::models::makeStockSequence(model.rnn().seqLen);
    float pred = 0.0f;
    Runtime rtm(gpu);
    const rt::NetRun run =
        rtm.run(model, p, {.sequence = &seq, .prediction = &pred});
    EXPECT_EQ(run.checkFailures, 0u);
    EXPECT_NEAR(pred, model.rnn().forward(seq), 1e-3f);
}

TEST(Runtime, SampledRunProducesScaledStats)
{
    // AlexNet timing-only with CTA sampling: stats must be scaled to the
    // full grid (thread instruction count ~ proportional to total MACs).
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;   // timing-only defaults
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "alexnet", p);

    EXPECT_GT(run.totalTimeSec, 0.0);
    EXPECT_GT(run.peakPowerW, 0.0);
    // AlexNet inference is ~0.7 G MACs; with ~14 instructions per MAC in
    // the naive kernels, expect the right order of magnitude.
    const double instr = run.totals.sumPrefix("op.");
    EXPECT_GT(instr, 1e9);
    EXPECT_LT(instr, 1e12);
}

TEST(Runtime, ConvDominatesCifarNetTime)
{
    // Paper Observation 1 (sampled timing run).
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "cifarnet", p);
    const double convT = run.figTypeTime("Conv");
    EXPECT_GT(convT / run.totalTimeSec, 0.5);
}

TEST(Runtime, FigTypeAccountingConsistent)
{
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "cifarnet", p);
    double sum = 0.0;
    for (const auto &fig : run.figTypes())
        sum += run.figTypeTime(fig);
    EXPECT_NEAR(sum, run.totalTimeSec, 1e-12);
}

TEST(Runtime, UnknownPolicyNameIsFatalAndListsKnownPolicies)
{
    // The clean error path: a typo'd policy name must exit(1) with a
    // diagnostic that names the policies that do exist.
    EXPECT_EXIT(RunPolicy::named("no-such-policy"),
                ::testing::ExitedWithCode(1),
                "unknown run policy 'no-such-policy'.*known policies:.*bench");
}

TEST(Runtime, NamedPolicyRoundTripsThroughNames)
{
    // Every advertised name must resolve without dying.
    const auto names = RunPolicy::names();
    EXPECT_FALSE(names.empty());
    EXPECT_NE(std::find(names.begin(), names.end(), "bench"), names.end());
    for (const auto &n : names)
        (void)RunPolicy::named(n);
}

TEST(Runtime, ReconfigureRejectsInvalidConfig)
{
    sim::Gpu gpu(sim::pascalGP102());

    sim::GpuConfig noSms = sim::pascalGP102();
    noSms.numSms = 0;
    EXPECT_EXIT(gpu.reconfigure(noSms), ::testing::ExitedWithCode(1),
                "invalid GPU config: numSms");

    sim::GpuConfig tinyL2 = sim::pascalGP102();
    tinyL2.l2Bytes = 64;   // smaller than one set of 16-way 128B lines
    EXPECT_EXIT(gpu.reconfigure(tinyL2), ::testing::ExitedWithCode(1),
                "invalid GPU config: l2Bytes");

    sim::GpuConfig zeroClock = sim::pascalGP102();
    zeroClock.coreClockGhz = 0.0;
    EXPECT_EXIT(gpu.reconfigure(zeroClock), ::testing::ExitedWithCode(1),
                "invalid GPU config: coreClockGhz");
}

TEST(Runtime, ConstructingGpuWithInvalidConfigIsFatal)
{
    sim::GpuConfig bad = sim::pascalGP102();
    bad.dramIssueInterval = 0.0;
    EXPECT_EXIT(sim::Gpu{bad}, ::testing::ExitedWithCode(1),
                "invalid GPU config: dramIssueInterval");
}

TEST(Runtime, ReconfigureValidConfigStillRuns)
{
    // A legitimate reconfigure (the config-sweep path) keeps working.
    sim::Gpu gpu(sim::pascalGP102());
    sim::GpuConfig cfg = sim::keplerGK210();
    gpu.reconfigure(cfg);
    EXPECT_EQ(gpu.config().name, cfg.name);

    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "gru", p);
    EXPECT_GT(run.totalTimeSec, 0.0);
}

TEST(Runtime, DeviceFootprintTracksModelSize)
{
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun gru = rt::runNetworkByName(gpu, "gru", p);
    const rt::NetRun cifar = rt::runNetworkByName(gpu, "cifarnet", p);
    // Paper Fig 11: RNNs < 500KB, CNNs >= 1MB.
    EXPECT_LT(gru.deviceBytes, 500ull * 1024);
    EXPECT_GT(cifar.deviceBytes, 500ull * 1024);
}

} // namespace
} // namespace tango
