/**
 * @file
 * Profiler aggregation tests: breakdowns normalize, orderings hold,
 * topN folds correctly.
 */

#include <gtest/gtest.h>

#include "profiler/profiler.hh"

namespace tango::prof {
namespace {

TEST(Profiler, OpBreakdownNormalizesAndSorts)
{
    StatSet s;
    s.set("op.add", 60.0);
    s.set("op.mul", 30.0);
    s.set("op.ld", 10.0);
    const Series b = opBreakdown(s);
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(b[0].first, "add");
    EXPECT_DOUBLE_EQ(b[0].second, 0.6);
    EXPECT_EQ(b[2].first, "ld");
    double sum = 0.0;
    for (const auto &[k, v] : b)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Profiler, OpBreakdownEmptyInput)
{
    StatSet s;
    EXPECT_TRUE(opBreakdown(s).empty());
}

TEST(Profiler, DtypeBreakdownKeepsLegendOrder)
{
    StatSet s;
    s.set("dtype.u32", 50.0);
    s.set("dtype.f32", 30.0);
    s.set("dtype.s32", 20.0);
    const Series b = dtypeBreakdown(s);
    ASSERT_EQ(b.size(), 5u);
    EXPECT_EQ(b[0].first, "f32");
    EXPECT_DOUBLE_EQ(b[0].second, 0.3);
    EXPECT_EQ(b[1].first, "u32");
    EXPECT_EQ(b[2].first, "u16");
    EXPECT_DOUBLE_EQ(b[2].second, 0.0);
}

TEST(Profiler, StallBreakdownCoversAllCategories)
{
    StatSet s;
    s.set("stall.memory_dependency", 70.0);
    s.set("stall.not_selected", 30.0);
    const Series b = stallBreakdown(s);
    EXPECT_EQ(b.size(), sim::numStalls);
    double sum = 0.0;
    for (const auto &[k, v] : b)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (const auto &[k, v] : b) {
        if (k == "memory_dependency")
            EXPECT_DOUBLE_EQ(v, 0.7);
    }
}

TEST(Profiler, TopNFoldsTail)
{
    Series s = {{"a", 0.5}, {"b", 0.3}, {"c", 0.1}, {"d", 0.06},
                {"e", 0.04}};
    const Series t = topN(s, 3);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[3].first, "Others");
    EXPECT_NEAR(t[3].second, 0.1, 1e-12);
}

TEST(Profiler, TopNShorterThanN)
{
    Series s = {{"a", 1.0}};
    const Series t = topN(s, 10);
    EXPECT_EQ(t.size(), 1u);
}

TEST(Profiler, MergeTotalsAccumulates)
{
    rt::NetRun a, b;
    a.totals.set("op.add", 5.0);
    b.totals.set("op.add", 7.0);
    b.totals.set("op.mul", 1.0);
    const StatSet m = mergeTotals({&a, &b});
    EXPECT_DOUBLE_EQ(m.get("op.add"), 12.0);
    EXPECT_DOUBLE_EQ(m.get("op.mul"), 1.0);
}

TEST(Profiler, LayerBreakdownsUseFigTypes)
{
    rt::NetRun run;
    rt::LayerRun conv;
    conv.figType = "Conv";
    sim::KernelStats k1;
    k1.timeSec = 0.75;
    k1.energyJ = 1.0;
    conv.kernels.push_back(k1);
    rt::LayerRun pool;
    pool.figType = "Pooling";
    sim::KernelStats k2;
    k2.timeSec = 0.25;
    k2.energyJ = 3.0;
    pool.kernels.push_back(k2);
    run.layers.push_back(conv);
    run.layers.push_back(pool);

    const Series t = layerTimeBreakdown(run);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0].second, 0.75);
    EXPECT_DOUBLE_EQ(t[1].second, 0.25);

    const Series e = layerEnergyBreakdown(run);
    EXPECT_DOUBLE_EQ(e[0].second, 0.25);
    EXPECT_DOUBLE_EQ(e[1].second, 0.75);
}

} // namespace
} // namespace tango::prof
