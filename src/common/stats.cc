#include "common/stats.hh"

namespace tango {

void
StatSet::add(const std::string &name, double v)
{
    stats_[name] += v;
}

void
StatSet::set(const std::string &name, double v)
{
    stats_[name] = v;
}

double
StatSet::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[k, v] : other.stats_)
        stats_[k] += v;
}

void
StatSet::scale(double factor)
{
    for (auto &[k, v] : stats_)
        v *= factor;
}

double
StatSet::sumPrefix(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second;
    }
    return total;
}

} // namespace tango
