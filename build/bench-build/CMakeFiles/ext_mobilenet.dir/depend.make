# Empty dependencies file for ext_mobilenet.
# This may be replaced when dependencies are built.
