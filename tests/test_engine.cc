/**
 * @file
 * Engine tests: the parallel simulation engine must be a drop-in
 * replacement for serial simulation — bit-identical statistics no
 * matter how many workers run the jobs — and its keyed cache must
 * memoize in memory, spill to disk, and survive failing jobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "runtime/engine.hh"
#include "runtime/run_cache.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using rt::Engine;
using rt::EngineOptions;
using rt::RunKey;

Engine
makeEngine(unsigned threads, const std::string &cachePath = "")
{
    EngineOptions opt;
    opt.threads = threads;
    opt.cachePath = cachePath;
    return Engine(opt);
}

/** Every statistic the suite reports, compared exactly (no epsilon):
 *  parallel execution must not change a single bit. */
void
expectIdentical(const rt::NetRun &a, const rt::NetRun &b)
{
    EXPECT_EQ(a.netName, b.netName);
    EXPECT_EQ(a.deviceBytes, b.deviceBytes);
    EXPECT_EQ(a.totalTimeSec, b.totalTimeSec);
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
    EXPECT_EQ(a.peakPowerW, b.peakPowerW);
    EXPECT_EQ(a.maxRegsPerThread, b.maxRegsPerThread);
    EXPECT_EQ(a.maxLiveRegs, b.maxLiveRegs);
    EXPECT_EQ(a.maxResidentWarps, b.maxResidentWarps);
    EXPECT_EQ(a.checkFailures, b.checkFailures);
    EXPECT_EQ(a.totals.all(), b.totals.all());
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); i++) {
        EXPECT_EQ(a.layers[i].name, b.layers[i].name);
        EXPECT_EQ(a.layers[i].timeSec(), b.layers[i].timeSec());
        EXPECT_EQ(a.layers[i].gpuCycles(), b.layers[i].gpuCycles());
        ASSERT_EQ(a.layers[i].kernels.size(), b.layers[i].kernels.size());
        for (size_t k = 0; k < a.layers[i].kernels.size(); k++) {
            EXPECT_EQ(a.layers[i].kernels[k].stats.all(),
                      b.layers[i].kernels[k].stats.all());
        }
    }
}

/** Accounting invariant: every admitted submission lands in exactly one
 *  cache bucket (memory hit, disk hit, or miss = actually simulated).
 *  failures is not a bucket of its own — a failed job was first
 *  admitted as a miss — so it bounds the miss count instead. */
void
expectCacheAccounted(const Engine &e, uint64_t submissions)
{
    const Engine::CacheStats s = e.cacheStats();
    EXPECT_EQ(s.memHits + s.diskHits + s.misses, submissions)
        << "memHits=" << s.memHits << " diskHits=" << s.diskHits
        << " misses=" << s.misses;
    EXPECT_LE(s.failures, s.misses);
}

TEST(Engine, ParallelRunsAreBitIdenticalToSerial)
{
    // One CNN and one RNN, each simulated by a 1-worker and a 4-worker
    // engine alongside enough sibling jobs to actually exercise the
    // pool's interleaving.
    const std::vector<RunKey> keys = {
        {"cifarnet"}, {"gru"}, {"lstm"}, {"squeezenet"}};

    Engine serial = makeEngine(1);
    Engine parallel = makeEngine(4);
    EXPECT_EQ(serial.threads(), 1u);
    EXPECT_EQ(parallel.threads(), 4u);

    const auto serialRuns = serial.runAll(keys);
    const auto parallelRuns = parallel.runAll(keys);
    ASSERT_EQ(serialRuns.size(), parallelRuns.size());
    for (size_t i = 0; i < keys.size(); i++) {
        SCOPED_TRACE(keys[i].str());
        expectIdentical(*serialRuns[i], *parallelRuns[i]);
    }
    expectCacheAccounted(serial, keys.size());
    expectCacheAccounted(parallel, keys.size());
}

TEST(Engine, CacheHitReturnsTheSameObject)
{
    Engine e = makeEngine(2);
    const RunKey key{"cifarnet"};
    const rt::NetRun &first = e.run(key);
    const rt::NetRun &second = e.run(key);
    EXPECT_EQ(&first, &second);

    const auto stats = e.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GE(stats.memHits, 1u);
    expectCacheAccounted(e, 2);
}

TEST(Engine, RunKeyOrderingAndNames)
{
    RunKey a{"alexnet"};
    RunKey b{"alexnet"};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a < b);
    EXPECT_FALSE(b < a);

    b.l1dBytes = 128 * 1024;
    EXPECT_TRUE(a < b || b < a);
    EXPECT_FALSE(a == b);

    EXPECT_EQ(a.str(), "alexnet/GP102/l1=64K/gto/bench");
    RunKey noL1{"vggnet"};
    noL1.l1dBytes = 0;
    noL1.policy = "mem";
    EXPECT_EQ(noL1.str(), "vggnet/GP102/l1=off/gto/mem");
}

TEST(Engine, ThrowingJobDoesNotPoisonThePool)
{
    Engine e = makeEngine(2);

    auto boom = [](sim::Gpu &) -> rt::NetRun {
        throw std::runtime_error("job failed on purpose");
    };
    EXPECT_THROW(e.run("test/boom", sim::pascalGP102(), boom),
                 std::runtime_error);
    EXPECT_EQ(e.cacheStats().failures, 1u);

    // The failed key was evicted: a retry runs the (new) job...
    const rt::NetRun &retried = e.run(
        "test/boom", sim::pascalGP102(), [](sim::Gpu &gpu) {
            return rt::runNetworkByName(gpu, "cifarnet",
                                        rt::RunPolicy::named("bench"));
        });
    EXPECT_GT(retried.totalTimeSec, 0.0);

    // ...and unrelated jobs keep flowing through the same workers.
    const rt::NetRun &after = e.run(RunKey{"gru"});
    EXPECT_GT(after.totalTimeSec, 0.0);

    // Three submissions (boom, retry, gru), each a miss; the failed one
    // also counted a failure but not a second bucket.
    expectCacheAccounted(e, 3);
}

TEST(Engine, DiskSpillRoundTrips)
{
    const std::string path =
        testing::TempDir() + "tango_engine_test.runcache.json";
    std::remove(path.c_str());

    rt::NetRun fresh;
    {
        Engine writer = makeEngine(2, path);
        fresh = writer.run(RunKey{"cifarnet"});
        EXPECT_EQ(writer.cacheStats().misses, 1u);
    }   // destructor flushes the spill

    Engine reader = makeEngine(2, path);
    const rt::NetRun &recalled = reader.run(RunKey{"cifarnet"});
    EXPECT_EQ(reader.cacheStats().diskHits, 1u);
    EXPECT_EQ(reader.cacheStats().misses, 0u);
    expectIdentical(fresh, recalled);
    expectCacheAccounted(reader, 1);

    std::remove(path.c_str());
}

// ------------------------------------------------- spill-file resilience

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** One simulated NetRun, shared by the spill-file tests below (the
 *  file-format tests only need *a* real record, not a fresh one each). */
const rt::NetRun &
sampleRun()
{
    static const rt::NetRun *run = [] {
        sim::Gpu gpu(sim::pascalGP102());
        return new rt::NetRun(rt::runNetworkByName(
            gpu, "cifarnet", rt::RunPolicy::named("bench")));
    }();
    return *run;
}

TEST(RunCache, CorruptTailKeepsEveryEntryBeforeTheDamage)
{
    const std::string path =
        testing::TempDir() + "tango_runcache_corrupt.json";
    std::remove(path.c_str());

    std::map<std::string, rt::NetRun> runs;
    runs["a/first"] = sampleRun();
    runs["b/second"] = sampleRun();
    ASSERT_TRUE(rt::saveRunCache(path, runs));
    ASSERT_EQ(rt::loadRunCache(path).size(), 2u);

    // Truncate mid-way through the second entry — an interrupted write.
    const std::string text = readFile(path);
    const size_t second = text.find("\"b/second\"");
    ASSERT_NE(second, std::string::npos);
    writeFile(path, text.substr(0, second + 40));

    testing::internal::CaptureStderr();
    const auto salvaged = rt::loadRunCache(path);
    const std::string err = testing::internal::GetCapturedStderr();

    // The valid prefix survives, bit-identical; the tail is reported.
    ASSERT_EQ(salvaged.size(), 1u);
    ASSERT_EQ(salvaged.count("a/first"), 1u);
    expectIdentical(sampleRun(), salvaged.at("a/first"));
    EXPECT_NE(err.find("corrupt tail"), std::string::npos);

    std::remove(path.c_str());
}

TEST(RunCache, DamageBeforeAnyEntryDiscardsTheFile)
{
    const std::string path =
        testing::TempDir() + "tango_runcache_header.json";
    writeFile(path, "{\"version\":1,\"statsVer");
    EXPECT_TRUE(rt::loadRunCache(path).empty());
    std::remove(path.c_str());
}

TEST(RunCache, SizeCapSkipsEntriesButStaysValidJson)
{
    const std::string path = testing::TempDir() + "tango_runcache_cap.json";
    std::remove(path.c_str());

    std::map<std::string, rt::NetRun> one;
    one["a/first"] = sampleRun();
    ASSERT_TRUE(rt::saveRunCache(path, one));
    const uint64_t oneEntryBytes = readFile(path).size();

    // A cap that fits one entry but not two: the second is skipped with
    // a warning and the written file is complete, valid JSON.
    std::map<std::string, rt::NetRun> two = one;
    two["b/second"] = sampleRun();
    testing::internal::CaptureStderr();
    ASSERT_TRUE(rt::saveRunCache(path, two, oneEntryBytes + 16));
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("size cap"), std::string::npos);
    EXPECT_LE(readFile(path).size(), oneEntryBytes + 16);

    const auto reloaded = rt::loadRunCache(path);
    ASSERT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.count("a/first"), 1u);

    // An uncapped save (max_bytes = 0) keeps everything.
    ASSERT_TRUE(rt::saveRunCache(path, two));
    EXPECT_EQ(rt::loadRunCache(path).size(), 2u);

    std::remove(path.c_str());
}

TEST(Engine, CacheCapBoundsTheSpillFile)
{
    const std::string path =
        testing::TempDir() + "tango_engine_capped.runcache.json";
    std::remove(path.c_str());

    EngineOptions opt;
    opt.threads = 2;
    opt.cachePath = path;
    opt.maxCacheBytes = 64;   // header fits, no entry does
    {
        Engine writer{std::move(opt)};
        testing::internal::CaptureStderr();
        writer.run(RunKey{"cifarnet"});
        writer.flush();
        EXPECT_NE(testing::internal::GetCapturedStderr().find("size cap"),
                  std::string::npos);
    }
    EXPECT_LE(readFile(path).size(), 64u);

    // The capped spill recalls nothing: the entry is re-simulated.
    Engine reader = makeEngine(2, path);
    reader.run(RunKey{"cifarnet"});
    EXPECT_EQ(reader.cacheStats().diskHits, 0u);
    EXPECT_EQ(reader.cacheStats().misses, 1u);

    std::remove(path.c_str());
}

TEST(Engine, CacheMaxBytesComesFromTheEnvironment)
{
    setenv("TANGO_ENGINE_CACHE_MAX_MB", "2", 1);
    EXPECT_EQ(EngineOptions::fromEnv().maxCacheBytes, 2ull * 1024 * 1024);
    setenv("TANGO_ENGINE_CACHE_MAX_MB", "0", 1);
    EXPECT_EQ(EngineOptions::fromEnv().maxCacheBytes, 0ull);
    unsetenv("TANGO_ENGINE_CACHE_MAX_MB");
    EXPECT_EQ(EngineOptions::fromEnv().maxCacheBytes, 0ull);
}

} // namespace
} // namespace tango
