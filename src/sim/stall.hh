/**
 * @file
 * Issue-stall classification, using the same ten-category taxonomy nvprof
 * reports and the paper plots in Fig 7.
 *
 * Every cycle, every resident warp that does not issue is charged one stall
 * in exactly one category; warps that issue are charged nothing.  The
 * resulting distribution is the per-layer "stall cycle breakdown".
 */

#ifndef TANGO_SIM_STALL_HH
#define TANGO_SIM_STALL_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace tango::sim {

/** nvprof-style issue stall reasons. */
enum class Stall : uint8_t {
    InstFetch,              ///< next instruction not yet fetched (post-branch)
    ExecDependency,         ///< waiting on an ALU/SFU result
    MemoryDependency,       ///< waiting on a load result
    Texture,                ///< texture unit busy (unused by these kernels)
    Sync,                   ///< waiting at a barrier
    Other,                  ///< miscellaneous (drain, startup)
    PipeBusy,               ///< required functional unit busy
    ConstantMemoryDependency, ///< waiting on a constant-cache fill
    MemoryThrottle,         ///< MSHR/queue back-pressure
    NotSelected,            ///< issuable but another warp was picked
    NumStalls
};

inline constexpr size_t numStalls = static_cast<size_t>(Stall::NumStalls);

/** @return nvprof-style name ("memory_dependency", ...). */
const char *stallName(Stall s);

/** Fixed-size stall counter array. */
using StallCounts = std::array<uint64_t, numStalls>;

} // namespace tango::sim

#endif // TANGO_SIM_STALL_HH
