/**
 * @file
 * tango::estimate — learned per-kernel-family performance models.
 *
 * The cycle-level simulator answers one (net, policy, platform) query in
 * seconds; a serve query budget is microseconds.  This module closes the
 * gap with per-kernel-family models (conv / fc / pool / norm /
 * activation / rnn-cell) fit on training rows the simulator itself
 * produced (estimate/dataset.hh): an exact-shape lookup table covering
 * every swept shape, backed by small least-squares regressors for
 * shapes the sweep never saw.  Each maps a layer's shape-derived
 * feature vector to the six statistics the figures are built from
 * (cycles, stalls, L1D/L2 misses, DRAM accesses, energy).
 *
 * Models are linear in log space — phi = [1, log1p(feature)...] against
 * log1p(target) — which is the right family for this simulator: every
 * target is a near-multiplicative function of work (MACs), parallelism
 * (CTAs x threads) and footprint, and log space keeps a 1e4x dynamic
 * range across layers fittable by one 9-weight regressor.  Fitting is
 * ridge-regularized ordinary least squares (tools/tango-fit, offline);
 * each family model carries the p50/p95 *relative* error it achieved on
 * a held-out split vs cycle-level truth, and those validated bounds are
 * what the dispatcher (estimate/estimator.hh) compares against a job's
 * requested accuracy.
 *
 * A Bundle is one (policy, platform) set of family models, serialized as
 * versioned JSON under weights/estimate/.  Bundles embed the simulator's
 * kSimStatsVersion: a bundle fit against another statistics revision is
 * rejected at load, exactly like a stale run-cache spill.
 */

#ifndef TANGO_ESTIMATE_MODEL_HH
#define TANGO_ESTIMATE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "nn/network.hh"

namespace tango::estimate {

/** Bundle format version (independent of the stats version it embeds). */
inline constexpr int kBundleVersion = 1;

// ---------------------------------------------------------------- families

/** Kernel families, one model each.  Every layer kind that lowers to at
 *  least one kernel maps to exactly one family. */
enum class Family : uint8_t
{
    Conv,         ///< Conv + Depthwise
    Fc,           ///< FC + the RNN dense readout
    Pool,
    Norm,         ///< LRN + BatchNorm + Scale
    Activation,   ///< ReLU + Eltwise + Softmax
    RnnCell       ///< GRU / LSTM cell step
};
inline constexpr int kNumFamilies = 6;

const char *familyName(Family f);
bool familyFromName(const std::string &name, Family &out);

/** Map a CNN layer kind to its family.
 *  @return false for kinds that emit no kernels (Input, Concat). */
bool layerFamily(nn::LayerKind kind, Family &out);

// ---------------------------------------------------------------- features

/** Feature count (excluding the intercept the model adds itself). */
inline constexpr int kNumFeatures = 8;

/**
 * The feature vector of one layer, in RAW (not log) units:
 *   [0] macs          multiply-accumulates
 *   [1] outElems      output element count
 *   [2] inElems       input element count
 *   [3] params        weight + bias element count
 *   [4] ctas          total CTAs across the layer's kernels
 *   [5] threads       threads per CTA
 *   [6] rs            filter plane R*S (1 when not applicable)
 *   [7] chanIn        input channels (C, or inN for FC-shaped layers)
 * Everything is statically known from the layer description and its
 * launch hint — extraction never touches the simulator.
 */
struct Features
{
    double v[kNumFeatures] = {0};

    /** Deterministic identity key (exact raw values) used to dedupe
     *  training rows and to split train/holdout without leakage. */
    std::string key() const;
};

/** Features of a CNN layer (kind must map to a family). */
Features layerFeatures(const nn::Layer &layer);

/** Features of one recurrent cell step (family RnnCell). */
Features rnnCellFeatures(const nn::RnnModel &model);

/** Features of the RNN dense readout (family Fc). */
Features rnnReadoutFeatures(const nn::RnnModel &model);

// ----------------------------------------------------------------- targets

/** The statistics each family model predicts. */
enum class Target : uint8_t
{
    Cycles,         ///< kernel gpuCycles
    Stalls,         ///< sum of all stall.* counters
    L1dMisses,      ///< mem.l1d.misses
    L2Misses,       ///< mem.l2.misses
    DramAccesses,   ///< dram.accesses
    EnergyJ         ///< kernel energy (joules)
};
inline constexpr int kNumTargets = 6;

const char *targetName(Target t);

// ------------------------------------------------------------------ models

/** One fitted regressor: weights over [1, log1p(features)...] plus the
 *  relative-error bounds it validated on the holdout split. */
struct TargetModel
{
    double w[kNumFeatures + 1] = {0};
    double p50 = 0.0;   ///< holdout median relative error
    double p95 = 0.0;   ///< holdout p95 relative error
};

/** One memorized shape: the log1p-mean of every target over all sweep
 *  rows that shared this exact feature vector. */
struct TableEntry
{
    Features feat;
    std::string key;   ///< feat.key(), rebuilt on load (not serialized)
    double logTarget[kNumTargets] = {0};
    uint32_t rows = 0;
};

/**
 * All targets of one kernel family: an exact-shape lookup table over
 * every shape the sweep simulated, plus log-space regressors for shapes
 * it did not.
 *
 * The split matters for accuracy: per-kernel cycle cost in this
 * simulator switches regimes (latency-bound small launches vs
 * throughput-bound waves of CTAs), which no smooth 8-feature model
 * captures to a few percent across families.  Shapes the sweep has seen
 * — in practice every suite-network layer — answer from the table with
 * only replay/memoization spread as error (tableP50/tableP95); novel
 * shapes fall to the regressor and carry its (much looser, honestly
 * holdout-measured) p50/p95 bounds instead.
 */
struct FamilyModel
{
    bool fitted = false;
    uint64_t trainRows = 0;
    uint64_t holdoutRows = 0;   ///< 0 = bounds measured on the train set
    TargetModel targets[kNumTargets];

    std::vector<TableEntry> table;   ///< sorted by key
    /** Relative cycle spread of duplicate-shape rows around their table
     *  entry (0 when every shape was observed once). */
    double tableP50 = 0.0;
    double tableP95 = 0.0;

    /** Exact-shape table probe.  @return true with all targets (raw
     *  units) in @p out on a hit.  Requires fitted. */
    bool lookup(const Features &f, double out[kNumTargets]) const;

    /** Evaluate one target by regression (ignoring the table); clamped
     *  to >= 0.  Requires fitted. */
    double predict(Target t, const Features &f) const;
};

/** One (policy, platform) set of family models. */
struct Bundle
{
    std::string policy;     ///< named RunPolicy the rows ran under
    std::string platform;   ///< GP102 | GK210 | TX1
    FamilyModel families[kNumFamilies];

    const FamilyModel &family(Family f) const
    {
        return families[static_cast<int>(f)];
    }
    FamilyModel &family(Family f)
    {
        return families[static_cast<int>(f)];
    }

    /** Versioned JSON (kBundleVersion + the simulator's stats version). */
    std::string toJson() const;

    /** Parse; fails (with @p err) on malformed JSON, a bundle-version
     *  mismatch, or a stats-version mismatch — a bundle fit against
     *  another simulator revision predicts the wrong statistics. */
    static bool fromJson(const std::string &text, Bundle &out,
                         std::string *err = nullptr);

    /** Canonical bundle file name, e.g. "bench_GP102.json". */
    static std::string fileName(const std::string &policy,
                                const std::string &platform);
};

// ----------------------------------------------------------------- fitting

/** One training row: what the simulator measured for one layer. */
struct Row
{
    Family family = Family::Conv;
    Features feat;
    double target[kNumTargets] = {0};
    std::string source;   ///< provenance: "<cacheKey>:<layer>" (logs only)
};

/**
 * Fit every family that has rows.  Rows are grouped by exact feature
 * vector; groups are split ~80/20 train/holdout by a deterministic hash
 * of the feature key (identical shapes can never leak across the
 * split).  Families whose holdout would be empty fit on everything and
 * report train-set error with holdoutRows = 0.
 */
Bundle fit(const std::vector<Row> &rows, const std::string &policy,
           const std::string &platform);

} // namespace tango::estimate

#endif // TANGO_ESTIMATE_MODEL_HH
