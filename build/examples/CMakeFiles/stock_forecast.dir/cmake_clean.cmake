file(REMOVE_RECURSE
  "CMakeFiles/stock_forecast.dir/stock_forecast.cpp.o"
  "CMakeFiles/stock_forecast.dir/stock_forecast.cpp.o.d"
  "stock_forecast"
  "stock_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
