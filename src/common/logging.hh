/**
 * @file
 * Logging and error-reporting helpers in the gem5 fatal/panic/warn style.
 *
 * fatal()  — the run cannot continue because of a user error (bad config,
 *            invalid arguments).  Exits with status 1.
 * panic()  — an internal invariant was violated (a bug in tango itself).
 *            Aborts so a core dump / debugger can catch it.
 * warn()   — something is suspicious but the run continues.
 * inform() — plain status output.
 *
 * Every line carries a UTC timestamp:
 *
 *   [2026-08-09T12:00:00.123Z] warn: message
 *
 * and TANGO_LOG_JSON=1 switches all four to one JSON object per line
 * ({"ts":...,"level":...,"msg":...}) for log shippers.  The knob is
 * read per message, deliberately NOT through the strict env parser:
 * logging must never fatal() from inside logging.
 */

#ifndef TANGO_COMMON_LOGGING_HH
#define TANGO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tango {

/** Terminate the run due to a user-facing error (exit(1)). */
[[noreturn]] void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Terminate the run due to an internal bug (abort()). */
[[noreturn]] void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** @return "YYYY-MM-DDTHH:MM:SS.mmmZ" — the wall clock, UTC. */
std::string logTimestampUtc();

/** @return whether TANGO_LOG_JSON=1 (read per call). */
bool logJsonMode();

/** Format one finished log line (no trailing newline) for level @p tag:
 *  the timestamped plain form, or a JSON object under TANGO_LOG_JSON=1.
 *  Exposed for tests; fatal()/warn()/inform() route through it. */
std::string logLine(const char *tag, const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

/** panic() unless the condition holds. */
#define TANGO_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::tango::panic("assertion failed: %s: " #cond, __func__);     \
    } while (0)

} // namespace tango

#endif // TANGO_COMMON_LOGGING_HH
