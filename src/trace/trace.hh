/**
 * @file
 * tango::trace — cycle-level event tracing for the simulator and runtime.
 *
 * The paper's figures are end-of-run aggregates; diagnosing a regression
 * or an anomaly needs the *timeline* those aggregates collapse.  This
 * subsystem records typed events — kernel and layer spans, per-window SM
 * occupancy and active-warp samples, stall-transition events, cache
 * miss/fill and DRAM transactions — each stamped with the simulation
 * cycle and core/warp ids, into per-core lock-free ring buffers that the
 * Chrome/Perfetto exporter (trace/export_chrome.hh) drains after the run.
 *
 * Overhead contract: tracing is off by default and *observational only*.
 * Every instrumentation hook is guarded by a single null-pointer test on
 * a cached sink pointer (a predictable branch), no hook mutates any
 * simulator state, and no event is allocated or formatted unless a sink
 * is installed — so with tracing disabled the golden statistics
 * (tests/golden) stay bit-identical and wall clock is unaffected, and
 * with tracing enabled the statistics still do not move (the trace is a
 * pure tap; tests/test_trace.cc pins both properties).
 *
 * Threading: a sink is installed per *thread* (installThreadSink), so an
 * rt::Engine worker pool can run untraced jobs concurrently with one
 * traced thread.  Each ring is single-producer (the simulating thread)
 * single-consumer (whoever drains after the run) and never blocks: a
 * full ring drops the event and counts the drop exactly.
 */

#ifndef TANGO_TRACE_TRACE_HH
#define TANGO_TRACE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tango::trace {

/** Typed trace events.  Payload field meanings are per kind (below). */
enum class EventKind : uint8_t {
    KernelBegin,      ///< arg = kernel name id, payload = total CTAs
    KernelEnd,        ///< arg = kernel name id, payload = issued warp instrs
    LayerBegin,       ///< arg = layer name id, payload = layer index
    LayerEnd,         ///< arg = layer name id, payload = layer index
    OccupancySample,  ///< payload = live warps on the SM, arg = active CTAs
    MshrSample,       ///< payload = L1D MSHRs in flight, arg = L2 MSHRs
    StallTransition,  ///< warp slot; arg = ((old+1) << 8) | (new+1), 0 = none
    CacheMiss,        ///< arg = cache level, payload = line address
    CacheFill,        ///< arg = cache level, payload = cycles until the fill
    DramAccess,       ///< payload = total service latency, arg = queue delay
    KernelReplay,     ///< memoized launch replay; arg = kernel name id
    NumKinds
};

/** Cache levels reported by CacheMiss/CacheFill events. */
enum class CacheLevel : uint8_t { L1D = 0, L2 = 1, Const = 2 };

/** @return "kernel_begin", "occupancy", ... */
const char *eventKindName(EventKind k);

/** @return the mask bit of one event kind. */
constexpr uint32_t
kindBit(EventKind k)
{
    return 1u << static_cast<unsigned>(k);
}

/** Mask with every event kind enabled. */
constexpr uint32_t kAllEvents =
    (1u << static_cast<unsigned>(EventKind::NumKinds)) - 1;

/** Span + counter events only — the default tango-trace selection:
 *  bounded volume on any network, and everything Perfetto needs for a
 *  layer/kernel timeline with an occupancy track. */
constexpr uint32_t kDefaultEvents =
    kindBit(EventKind::KernelBegin) | kindBit(EventKind::KernelEnd) |
    kindBit(EventKind::LayerBegin) | kindBit(EventKind::LayerEnd) |
    kindBit(EventKind::OccupancySample) | kindBit(EventKind::MshrSample) |
    kindBit(EventKind::KernelReplay);

/** Sentinel warp id for events not tied to one warp. */
constexpr uint16_t kNoWarp = 0xffff;

/** One recorded event (24 bytes).  `cycle` is on the run's *global*
 *  timeline: each kernel's local clock (which restarts at zero) is
 *  rebased by the sink's running cycle base, so cycles are monotonic
 *  across the whole network run. */
struct Event
{
    uint64_t cycle = 0;
    uint64_t payload = 0;
    uint32_t arg = 0;
    EventKind kind = EventKind::NumKinds;
    uint8_t core = 0;
    uint16_t warp = kNoWarp;
};

/**
 * Where events go.  The base class owns the pieces every hook needs
 * non-virtually on the fast path: the event mask, the cycle rebase and
 * the counter sample period.  Concrete sinks implement write().
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** @return whether @p k is selected (hooks skip the event otherwise). */
    bool wants(EventKind k) const { return (mask_ & kindBit(k)) != 0; }

    /** Restrict recording to the kinds in @p mask. */
    void setMask(uint32_t mask) { mask_ = mask & kAllEvents; }
    uint32_t mask() const { return mask_; }

    /** Cycles between occupancy/MSHR counter samples. */
    uint64_t samplePeriod() const { return samplePeriod_; }
    void setSamplePeriod(uint64_t p) { samplePeriod_ = p ? p : 1; }

    /** The global cycle corresponding to the current kernel's cycle 0. */
    uint64_t cycleBase() const { return cycleBase_; }

    /** Advance the base past a finished kernel of @p cycles. */
    void advanceCycles(uint64_t cycles) { cycleBase_ += cycles; }

    /** Record @p e, rebasing its (kernel-local) cycle onto the global
     *  timeline.  May drop (the sink accounts for it); never blocks. */
    void record(Event e)
    {
        e.cycle += cycleBase_;
        write(e);
    }

    /** Map a name to a stable id for Event::arg (producer thread only). */
    virtual uint32_t intern(const std::string &name) = 0;

  protected:
    virtual void write(const Event &e) = 0;

  private:
    uint32_t mask_ = kAllEvents;
    uint64_t samplePeriod_ = 4096;
    uint64_t cycleBase_ = 0;
};

/** RingSink construction knobs. */
struct RingOptions
{
    /** Events per core ring (rounded up to a power of two). */
    uint32_t capacity = 1u << 20;
    /** Event selection (kAllEvents / kDefaultEvents / custom). */
    uint32_t mask = kAllEvents;
    /** Counter sample period in cycles. */
    uint64_t samplePeriod = 4096;
};

/**
 * The standard collector: one lock-free single-producer single-consumer
 * ring buffer per simulated core, plus a name-interning table.  A full
 * ring drops new events and counts every drop, so the exporter can
 * report exact loss instead of silently truncating.
 */
class RingSink : public TraceSink
{
  public:
    explicit RingSink(RingOptions opt = {});
    ~RingSink() override;

    uint32_t intern(const std::string &name) override;

    /** @return the interned string table (index = name id). */
    const std::vector<std::string> &names() const { return names_; }

    /** @return ids of cores that recorded at least one event. */
    std::vector<uint8_t> cores() const;

    /** Snapshot one core's events in record order (consumer side). */
    std::vector<Event> coreEvents(uint8_t core) const;

    /** @return events successfully recorded (all cores). */
    uint64_t recorded() const;

    /** @return events dropped to full rings (all cores). */
    uint64_t dropped() const;

    /** @return drops on one core's ring. */
    uint64_t dropped(uint8_t core) const;

    /** Per-kind recorded-event histogram (consumer side). */
    std::map<EventKind, uint64_t> kindCounts() const;

    /** Ring capacity actually used (capacity rounded up to 2^n). */
    uint32_t capacity() const { return capacity_; }

  protected:
    void write(const Event &e) override;

  private:
    struct Ring;
    Ring &ring(uint8_t core);

    uint32_t capacity_ = 0;
    std::vector<std::unique_ptr<Ring>> rings_;
    std::vector<std::string> names_;
    std::map<std::string, uint32_t> nameIds_;
};

/** @return this thread's installed sink, or nullptr (tracing off). */
TraceSink *threadSink();

/** Install (or with nullptr, remove) this thread's sink.
 *  @return the previously installed sink. */
TraceSink *installThreadSink(TraceSink *sink);

/** RAII sink installation for the current thread. */
class ScopedSink
{
  public:
    explicit ScopedSink(TraceSink *sink) : prev_(installThreadSink(sink)) {}
    ~ScopedSink() { installThreadSink(prev_); }
    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    TraceSink *prev_;
};

} // namespace tango::trace

#endif // TANGO_TRACE_TRACE_HH
