#include "runtime/runtime.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "trace/trace.hh"

namespace tango::rt {

double
LayerRun::timeSec() const
{
    double t = 0.0;
    for (const auto &k : kernels)
        t += k.timeSec;
    return t;
}

double
LayerRun::energyJ() const
{
    double e = 0.0;
    for (const auto &k : kernels)
        e += k.energyJ;
    return e;
}

double
LayerRun::gpuCycles() const
{
    double c = 0.0;
    for (const auto &k : kernels)
        c += k.gpuCycles;
    return c;
}

double
NetRun::figTypeStat(const std::string &fig, const std::string &stat) const
{
    double total = 0.0;
    for (const auto &l : layers) {
        if (l.figType != fig)
            continue;
        for (const auto &k : l.kernels)
            total += k.stats.get(stat);
    }
    return total;
}

double
NetRun::figTypeTime(const std::string &fig) const
{
    double total = 0.0;
    for (const auto &l : layers) {
        if (l.figType == fig)
            total += l.timeSec();
    }
    return total;
}

std::vector<std::string>
NetRun::figTypes() const
{
    std::vector<std::string> out;
    for (const auto &l : layers) {
        if (std::find(out.begin(), out.end(), l.figType) == out.end())
            out.push_back(l.figType);
    }
    return out;
}

namespace {

/** Compare a device buffer against a reference tensor. */
uint64_t
checkBuffer(const sim::DeviceMemory &mem, uint32_t addr,
            const nn::Tensor &ref, float tol, const std::string &what)
{
    uint64_t failures = 0;
    for (uint64_t i = 0; i < ref.size(); i++) {
        const float got = mem.read<float>(addr + 4 * i);
        const float want = ref[i];
        const float err = std::fabs(got - want);
        const float lim = tol * std::max(1.0f, std::fabs(want));
        if (!(err <= lim)) {   // catches NaN too
            if (failures < 3) {
                warn("%s[%llu]: got %g want %g", what.c_str(),
                     static_cast<unsigned long long>(i), got, want);
            }
            failures++;
        }
    }
    return failures;
}

void
finalizeTotals(NetRun &run)
{
    uint64_t replayed = 0, simulated = 0;
    for (const auto &l : run.layers) {
        for (const auto &k : l.kernels) {
            run.totals.merge(k.stats);
            run.totalTimeSec += k.timeSec;
            run.totalEnergyJ += k.energyJ;
            run.peakPowerW = std::max(run.peakPowerW, k.peakPowerW);
            run.maxRegsPerThread =
                std::max(run.maxRegsPerThread, k.regsPerThread);
            run.maxLiveRegs = std::max(run.maxLiveRegs, k.maxLiveRegs);
            const uint32_t warps =
                k.residentCtas *
                ((static_cast<uint32_t>(k.block.count()) + 31) / 32);
            run.maxResidentWarps = std::max(run.maxResidentWarps, warps);
            (k.replayed ? replayed : simulated)++;
        }
    }
    // Launch-memoization meta-counters: how the launches were *served*,
    // not what they simulated.  The golden-fixture diff deliberately
    // ignores mem.replayed_launches / mem.simulated_launches — they are
    // the one legitimate difference between memo-on and memo-off runs.
    run.totals.set("mem.replayed_launches", static_cast<double>(replayed));
    run.totals.set("mem.simulated_launches",
                   static_cast<double>(simulated));
}

/**
 * Record a layer span edge at the *current* global trace cycle (the sink
 * rebases cycle 0).  Layer begins are recorded before the first kernel
 * launch and ends after the last, so kernel spans nest strictly inside.
 */
void
traceLayerEdge(trace::EventKind kind, const std::string &name,
               int layer_index)
{
    trace::TraceSink *ts = trace::threadSink();
    if (!ts || !ts->wants(kind))
        return;
    trace::Event e;
    e.kind = kind;
    e.cycle = 0;
    e.payload = layer_index >= 0 ? static_cast<uint64_t>(layer_index) : 0;
    e.arg = ts->intern(name);
    ts->record(e);
}

} // namespace

NetRun
Runtime::run(const nn::AnyModel &model, const RunPolicy &policy,
             const RunIo &io)
{
    if (model.isRnn())
        return rnnRun(model.rnn(), policy, io.sequence, io.prediction);
    return cnnRun(model.cnn(), policy, io.image);
}

NetRun
Runtime::cnnRun(const nn::Network &net, const RunPolicy &policy,
                const nn::Tensor *input)
{
    NetRun run;
    run.netName = net.name;

    sim::DeviceMemory &mem = gpu_.mem();
    mem.reset();
    gpu_.coldStart();   // addresses are being reused for new data
    const bool upload = policy.functional || policy.check;
    LoweredNet low = lower(net, mem, upload,
                           upload ? 0 : policy.maxLoopChannels);
    run.deviceBytes = low.deviceBytes;

    // Functional preparation: reference outputs for every layer.
    nn::Tensor localInput;
    std::vector<nn::Tensor> refOuts;
    if (upload) {
        if (!input) {
            localInput =
                nn::models::makeInputImage(net.inC, net.inH, net.inW);
            input = &localInput;
        }
        mem.copyIn(low.inputAddr, input->data(), input->bytes());
        refOuts = net.forwardAll(*input);
    }

    // Group kernels by layer, preserving launch order.
    const auto &layers = net.layers();
    run.layers.reserve(layers.size());
    size_t ki = 0;
    for (size_t li = 0; li < layers.size(); li++) {
        LayerRun lr;
        lr.layerIndex = static_cast<int>(li);
        lr.name = layers[li].name;
        lr.figType = layers[li].figType;
        const bool hasKernels =
            ki < low.kernels.size() &&
            low.kernels[ki].layerIndex == static_cast<int>(li);
        if (hasKernels) {
            traceLayerEdge(trace::EventKind::LayerBegin, lr.name,
                           lr.layerIndex);
        }
        while (ki < low.kernels.size() &&
               low.kernels[ki].layerIndex == static_cast<int>(li)) {
            sim::KernelStats ks =
                gpu_.launch(low.kernels[ki].launch, policy.sim);
            const double ws = low.kernels[ki].workScale;
            if (ws != 1.0) {
                // Loop-channel sampling: extrapolate to the full layer.
                ks.stats.scale(ws);
                ks.scale *= ws;
                ks.smCycles = static_cast<uint64_t>(ks.smCycles * ws);
                ks.gpuCycles *= ws;
                ks.timeSec *= ws;
                ks.energyJ *= ws;
                if (ks.profile) {
                    // Replays share the memo entry's profile object: clone
                    // before recording the extra scale factor.
                    auto p = std::make_shared<sim::KernelProfile>(*ks.profile);
                    p->workScale *= ws;
                    ks.profile = std::move(p);
                }
            }
            lr.kernels.push_back(std::move(ks));
            ki++;
        }
        if (hasKernels) {
            traceLayerEdge(trace::EventKind::LayerEnd, lr.name,
                           lr.layerIndex);
        }
        if (upload && layers[li].kind != nn::LayerKind::Input) {
            const nn::Tensor &ref = refOuts[li];
            if (policy.check && !lr.kernels.empty() &&
                layers[li].concatInto < 0) {
                run.checkFailures +=
                    checkBuffer(mem, low.layerOut[li], ref,
                                policy.tolerance,
                                net.name + "." + layers[li].name);
            }
            // Overwrite with the exact reference so CTA sampling cannot
            // corrupt downstream layers.
            mem.copyIn(low.layerOut[li], ref.data(), ref.bytes());
        }
        if (!lr.kernels.empty() ||
            layers[li].kind == nn::LayerKind::Concat) {
            run.layers.push_back(std::move(lr));
        }
    }
    TANGO_ASSERT(ki == low.kernels.size(), "unconsumed kernels");

    finalizeTotals(run);
    return run;
}

NetRun
Runtime::rnnRun(const nn::RnnModel &model, const RunPolicy &policy,
                const std::vector<float> *sequence, float *prediction)
{
    NetRun run;
    run.netName = model.name;

    sim::DeviceMemory &mem = gpu_.mem();
    mem.reset();
    gpu_.coldStart();   // addresses are being reused for new data
    const bool upload = policy.functional || policy.check;
    LoweredRnn low = lowerRnn(model, mem, upload);
    run.deviceBytes = low.deviceBytes;

    std::vector<float> localSeq;
    if (upload) {
        if (!sequence) {
            localSeq = nn::models::makeStockSequence(model.seqLen *
                                                     model.inputSize);
            sequence = &localSeq;
        }
        TANGO_ASSERT(sequence->size() ==
                         size_t(model.seqLen) * model.inputSize,
                     "sequence length mismatch");
        // Zero the initial hidden/cell state.  (The inputs are staged
        // into low.xAddr one step at a time inside the launch loop.)
        std::vector<float> zeros(model.hidden, 0.0f);
        mem.copyIn(low.hAddr[0], zeros.data(), 4ull * model.hidden);
        mem.copyIn(low.cAddr[0], zeros.data(), 4ull * model.hidden);
    }

    for (const auto &lk : low.kernels) {
        // Stage this step's input vector into the shared slot.  A
        // value-only host write between launches: the cell kernel's
        // control flow and addresses are input-independent, so the
        // launch-memoization layer keeps replaying through it.
        const bool isCell = lk.layerIndex < static_cast<int>(model.seqLen);
        if (upload && isCell) {
            mem.copyIn(low.xAddr,
                       sequence->data() +
                           size_t(lk.layerIndex) * model.inputSize,
                       4ull * model.inputSize);
        }
        LayerRun lr;
        lr.layerIndex = lk.layerIndex;
        lr.name = lk.launch.program->name + "#" +
                  std::to_string(lk.layerIndex);
        lr.figType = lk.figType;
        traceLayerEdge(trace::EventKind::LayerBegin, lr.name,
                       lr.layerIndex);
        lr.kernels.push_back(gpu_.launch(lk.launch, policy.sim));
        traceLayerEdge(trace::EventKind::LayerEnd, lr.name, lr.layerIndex);
        run.layers.push_back(std::move(lr));
    }

    if (upload) {
        if (policy.check && sequence) {
            // Reference hidden state after the full sequence.
            std::vector<float> h(model.hidden, 0.0f), c(model.hidden, 0.0f);
            std::vector<float> x(model.inputSize);
            for (uint32_t t = 0; t < model.seqLen; t++) {
                std::copy_n(sequence->begin() +
                                size_t(t) * model.inputSize,
                            model.inputSize, x.begin());
                model.step(x, h, c);
            }
            nn::Tensor refH({model.hidden});
            std::copy(h.begin(), h.end(), refH.data());
            run.checkFailures += checkBuffer(mem, low.finalH, refH,
                                             policy.tolerance,
                                             model.name + ".h");
            const float refPred = model.forward(*sequence);
            const float got = mem.read<float>(low.outAddr);
            if (std::fabs(got - refPred) >
                policy.tolerance * std::max(1.0f, std::fabs(refPred))) {
                warn("%s prediction: got %g want %g", model.name.c_str(),
                     got, refPred);
                run.checkFailures++;
            }
        }
        if (prediction)
            *prediction = mem.read<float>(low.outAddr);
    }

    finalizeTotals(run);
    return run;
}

namespace {

/** The named-policy registry (guarded: Engine workers call named()
 *  concurrently). */
struct PolicyRegistry
{
    std::mutex mu;
    std::map<std::string, RunPolicy> policies;

    PolicyRegistry()
    {
        RunPolicy bench;
        bench.sim.maxResidentCtas = 0;   // let the warp budget decide
        bench.sim.maxResidentWarps = 16;
        bench.sim.maxSampledCtas = 0;    // one resident wave
        bench.sim.maxWarpsPerCta = 6;
        bench.maxLoopChannels = 8;
        policies["bench"] = bench;

        RunPolicy mem;
        mem.sim.maxResidentCtas = 0;
        mem.sim.maxResidentWarps = 32;
        mem.sim.maxSampledCtas = 0;
        mem.sim.maxWarpsPerCta = 2;
        mem.maxLoopChannels = 8;
        policies["mem"] = mem;

        RunPolicy stall;
        stall.sim.maxResidentCtas = 0;
        stall.sim.maxResidentWarps = 48;
        stall.sim.maxSampledCtas = 0;
        stall.sim.maxWarpsPerCta = 12;
        stall.maxLoopChannels = 8;
        policies["stall"] = stall;

        RunPolicy exact;
        exact.sim.fullSim = true;
        exact.sim.maxResidentCtas = 0;
        policies["exact"] = exact;
    }

    static PolicyRegistry &instance()
    {
        static PolicyRegistry reg;
        return reg;
    }
};

} // namespace

RunPolicy
RunPolicy::named(const std::string &name)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.policies.find(name);
    if (it == reg.policies.end()) {
        std::string known;
        for (const auto &[n, p] : reg.policies) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown run policy '%s' (known policies: %s)", name.c_str(),
              known.c_str());
    }
    return it->second;
}

void
RunPolicy::registerPolicy(const std::string &name, const RunPolicy &p)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.policies[name] = p;
}

std::vector<std::string>
RunPolicy::names()
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<std::string> out;
    for (const auto &[name, p] : reg.policies)
        out.push_back(name);
    return out;
}

NetRun
runNetworkByName(sim::Gpu &gpu, const std::string &name,
                 const RunPolicy &policy)
{
    Runtime rt(gpu);
    nn::AnyModel model = nn::models::buildAny(name);
    if (policy.functional || policy.check)
        nn::initWeights(model);
    return rt.run(model, policy);
}

} // namespace tango::rt
