/**
 * @file
 * Fig 1 reproduction: execution-time breakdown per layer type for the
 * CNNs (CifarNet, AlexNet, SqueezeNet, ResNet).
 *
 * Paper shape to hold: convolution layers dominate every network
 * (Observation 1); in SqueezeNet the fire-expand layers take more time
 * than the plain convolutions; VGGNet is reported too for completeness.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

const std::vector<std::string> figNets = {"cifarnet", "alexnet",
                                          "squeezenet", "resnet", "vggnet"};
const std::vector<std::string> figLayers = {
    "Conv", "Pooling", "FC", "Norm", "Fire_Squeeze", "Fire_Expand",
    "Eltwise", "Scale", "Relu", "Others"};

} // namespace

int
main(int argc, char **argv)
{
    tango::setVerbose(false);

    // One engine job per network; the pool simulates them concurrently.
    std::vector<bench::RunKey> keys;
    for (const auto &net : figNets)
        keys.push_back({net});
    bench::prefetch(keys);

    std::vector<std::vector<double>> values;   // [net][layer]
    for (const auto &net : figNets) {
        const rt::NetRun &run = bench::netRun({net});
        std::vector<double> col;
        for (const auto &fig : figLayers) {
            const double frac = run.totalTimeSec > 0
                                    ? run.figTypeTime(fig) / run.totalTimeSec
                                    : 0.0;
            col.push_back(frac);
        }
        values.push_back(col);

        bench::registerValue("fig01/" + net + "/conv_fraction",
                             "conv_time_frac", col[0]);
    }

    rt::printStacked(std::cout,
                     "Fig 1: execution time breakdown w.r.t. layer type",
                     figNets, figLayers, values, /*as_percent=*/true);

    // Headline check (Observation 1): conv + fire dominate.
    Table obs("Observation 1: convolution share of execution time");
    obs.header({"network", "conv(+fire) time share"});
    for (size_t i = 0; i < figNets.size(); i++) {
        const double conv =
            values[i][0] + values[i][4] + values[i][5];   // Conv + Fire_*
        obs.row({figNets[i], Table::pct(conv)});
    }
    obs.print(std::cout);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
