# Empty compiler generated dependencies file for fig16_alexnet_scheduler_layers.
# This may be replaced when dependencies are built.
