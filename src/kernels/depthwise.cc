#include "kernels/kernels.hh"

#include "common/logging.hh"
#include "kernels/builder.hh"
#include "kernels/emit_util.hh"

namespace tango::kern {

void
DepthwiseDesc::derive()
{
    if (P == 0)
        P = (H + 2 * pad - R) / stride + 1;
    if (Q == 0)
        Q = (W + 2 * pad - S) / stride + 1;
}

std::shared_ptr<Program>
buildDepthwise(const DepthwiseDesc &desc)
{
    // Depthwise convolution (MobileNet): channel c of the output is the
    // spatial convolution of channel c of the input with its own RxS
    // filter — no cross-channel reduction.  Mapping: one block per
    // channel, the block striding over the output plane (ResNet style).
    DepthwiseDesc d = desc;
    d.derive();

    Builder b(d.name);
    auto mSetup = b.mark("dw.setup");
    b.constant(20);    // C H W P Q

    Reg pIn = b.param(0);
    Reg pW = b.param(1);
    Reg pB = b.param(2);
    Reg pOut = b.param(3);

    Reg rC = b.ldc(DType::U32, 0);
    Reg rH = b.ldc(DType::U32, 4);
    Reg rWd = b.ldc(DType::U32, 8);
    Reg rP = b.ldc(DType::U32, 12);
    Reg rQ = b.ldc(DType::U32, 16);
    (void)rC;

    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);
    Reg k = b.movS(SReg::CtaIdX);

    Reg acc = b.reg(), tIy = b.reg(), tIx = b.reg(), tRow = b.reg();
    Reg tV = b.reg(), tWv = b.reg(), tOff = b.reg(), tAddr = b.reg();
    Reg tF1 = b.reg(), tF2 = b.reg(), xs = b.reg(), ys = b.reg();
    Reg tBase = b.reg(), tWBase = b.reg();
    PredReg pLd = b.pred();
    PredReg pSt = b.pred();

    auto emitOutput = [&](Reg x, Reg y) {
        {
            auto m = b.mark("dw.bias");
            if (d.bias) {
                b.emit3i(Op::Shl, DType::U32, tOff, k, 2);
                b.emit3(Op::Add, DType::U32, tAddr, pB, tOff);
                b.ld(DType::F32, Space::Global, acc, tAddr);
            } else {
                b.movF(acc, 0.0f);
            }
        }
        {
            auto m = b.mark("dw.idx");
            b.emit3i(Op::Mul, DType::U32, xs, x, d.stride);
            b.emit3i(Op::Add, DType::U32, xs, xs,
                     static_cast<uint32_t>(-static_cast<int32_t>(d.pad)));
            b.emit3i(Op::Mul, DType::U32, ys, y, d.stride);
            b.emit3i(Op::Add, DType::U32, ys, ys,
                     static_cast<uint32_t>(-static_cast<int32_t>(d.pad)));
            // Input plane base: k*H; filter base: k*R*S.
            b.emit3(Op::Mul, DType::U32, tBase, k, rH);
            b.emit3i(Op::Mul, DType::U32, tWBase, k, d.R * d.S);
        }
        {
            // The fully unrolled RxS window is the `acc += in * w`
            // statement.
            auto m = b.mark("dw.mac");
            for (uint32_t r = 0; r < d.R; r++) {
                b.emit3i(Op::Add, DType::U32, tIy, ys, r);
                b.setr(DType::U16, Cmp::Lt, tF1, tIy, rH);
                b.emit3(Op::Add, DType::U32, tRow, tBase, tIy);
                b.emit3(Op::Mul, DType::U32, tRow, tRow, rWd);
                for (uint32_t s = 0; s < d.S; s++) {
                    b.emit3i(Op::Add, DType::U32, tIx, xs, s);
                    b.setr(DType::U16, Cmp::Lt, tF2, tIx, rWd);
                    b.emit3(Op::And, DType::U16, tF2, tF2, tF1);
                    b.setpi(pLd, DType::U16, Cmp::Ne, tF2, 0);
                    b.emit3(Op::Add, DType::U32, tOff, tRow, tIx);
                    b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
                    b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
                    b.movF(tV, 0.0f);
                    b.guard(pLd);
                    b.ld(DType::F32, Space::Global, tV, tAddr);
                    b.endGuard();
                    b.emit3i(Op::Add, DType::U32, tOff, tWBase,
                             r * d.S + s);
                    b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
                    b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
                    b.ld(DType::F32, Space::Global, tWv, tAddr);
                    b.mad(DType::F32, acc, tV, tWv, acc);
                }
            }
        }
        if (d.relu) {
            auto m = b.mark("dw.relu");
            b.emit3f(Op::Max, acc, acc, 0.0f);
        }
        {
            auto m = b.mark("dw.store");
            b.setr(DType::U16, Cmp::Lt, tF1, x, rQ);
            b.setr(DType::U16, Cmp::Lt, tF2, y, rP);
            b.emit3(Op::And, DType::U16, tF1, tF1, tF2);
            b.setpi(pSt, DType::U16, Cmp::Ne, tF1, 0);
            b.mad(DType::U32, tOff, k, rP, y);
            b.emit3(Op::Mul, DType::U32, tOff, tOff, rQ);
            b.emit3(Op::Add, DType::U32, tOff, tOff, x);
            b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
            b.guard(pSt);
            b.st(DType::F32, Space::Global, tAddr, acc);
            b.endGuard();
        }
    };

    Reg yy = b.reg(), xx = b.reg();
    detail::stridedLoop(b, yy, ty, rP, d.block.y, [&] {
        detail::stridedLoop(b, xx, tx, rQ, d.block.x,
                            [&] { emitOutput(xx, yy); }, "dw.pixloop");
    }, "dw.pixloop");

    return b.finish();
}

KernelLaunch
makeDepthwiseLaunch(const DepthwiseDesc &desc, uint32_t in,
                    uint32_t weights, uint32_t bias, uint32_t out)
{
    DepthwiseDesc d = desc;
    d.derive();
    KernelLaunch l;
    l.program = buildDepthwise(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {in, weights, bias, out};
    l.constData = detail::packConst({d.C, d.H, d.W, d.P, d.Q});
    return l;
}

} // namespace tango::kern
