/**
 * @file
 * tango-trace — run a network under tracing and export a Chrome
 * trace-event / Perfetto-compatible JSON timeline.
 *
 *   tango-trace [options] [<policy>] <network>...
 *
 * The first positional argument may name a RunPolicy ("bench", "mem",
 * "stall", "exact", or the alias "fig" for the policy the figure benches
 * use); the remaining positionals are networks ("alexnet", "gru", ...,
 * case-insensitive).  Each network is simulated once with a trace sink
 * installed and written to <net>.trace.json — open it at
 * https://ui.perfetto.dev or chrome://tracing.
 *
 * Event volume is controlled by --events (span/counter events only by
 * default, so the default ring never overflows), --window (counter
 * sample period) and --max-events (per-core ring capacity).  Drops are
 * never silent: the exact dropped-event count is printed and recorded in
 * the JSON's otherData.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "common/logging.hh"
#include "nn/models/models.hh"
#include "runtime/job.hh"
#include "sim/gpu.hh"
#include "trace/export_chrome.hh"
#include "trace/trace.hh"

namespace {

using namespace tango;

struct Options
{
    tools::JobSpecArgs args;
    std::string outDir = ".";
    uint64_t window = 4096;
    uint32_t maxEvents = 1u << 20;
    uint32_t mask = trace::kDefaultEvents;
    bool summary = false;
    std::vector<std::string> nets;
};

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-trace [options] [<policy>] <network>...\n"
        "\n"
        "networks: %s\n"
        "policies: bench (alias: fig), mem, stall, exact\n"
        "\n"
        "options:\n"
        "  --events LIST    comma list of event groups to record:\n"
        "                   default | all | kernel | layer | occupancy |\n"
        "                   mshr | stall | cache | dram\n"
        "                   (default: kernel,layer,occupancy,mshr)\n"
        "  --window N       counter sample period in cycles (default 4096)\n"
        "  --max-events N   per-core ring capacity, rounded up to a power\n"
        "                   of two (default %u)\n"
        "  --platform P     GP102 | GK210 | TX1 (default GP102)\n"
        "  --out DIR        output directory (default .)\n"
        "  --summary        also print a launch-serving summary line\n"
        "                   (replayed vs fully simulated launches)\n"
        "  -h, --help       this message\n",
        tools::knownNetworksLine().c_str(), 1u << 20);
}

using tools::lower;

/** @return the mask bits of one --events group name, or 0 if unknown. */
uint32_t
eventGroupMask(const std::string &group)
{
    using trace::EventKind;
    using trace::kindBit;
    if (group == "default")
        return trace::kDefaultEvents;
    if (group == "all")
        return trace::kAllEvents;
    if (group == "kernel")
        return kindBit(EventKind::KernelBegin) |
               kindBit(EventKind::KernelEnd);
    if (group == "layer")
        return kindBit(EventKind::LayerBegin) |
               kindBit(EventKind::LayerEnd);
    if (group == "occupancy" || group == "occ")
        return kindBit(EventKind::OccupancySample);
    if (group == "mshr")
        return kindBit(EventKind::MshrSample);
    if (group == "stall")
        return kindBit(EventKind::StallTransition);
    if (group == "cache")
        return kindBit(EventKind::CacheMiss) |
               kindBit(EventKind::CacheFill);
    if (group == "dram")
        return kindBit(EventKind::DramAccess);
    return 0;
}

uint32_t
parseEvents(const std::string &list)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string group = lower(
            list.substr(pos, comma == std::string::npos ? comma
                                                        : comma - pos));
        if (!group.empty()) {
            const uint32_t bits = eventGroupMask(group);
            if (!bits)
                fatal("unknown --events group '%s'", group.c_str());
            mask |= bits;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (!mask)
        fatal("--events selected no event kinds");
    return mask;
}

using tools::parseUint;

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--events") {
            opt.mask = parseEvents(value());
        } else if (arg == "--window") {
            opt.window = parseUint("--window", value());
            if (opt.window == 0)
                fatal("--window must be > 0");
        } else if (arg == "--max-events") {
            const uint64_t n = parseUint("--max-events", value());
            if (n == 0 || n > (1u << 28))
                fatal("--max-events must be in [1, %u]", 1u << 28);
            opt.maxEvents = static_cast<uint32_t>(n);
        } else if (arg == "--platform") {
            opt.args.platform = value();
            tools::validatePlatform(opt.args.platform);
        } else if (arg == "--out") {
            opt.outDir = value();
        } else if (arg == "--summary") {
            opt.summary = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        } else {
            positional.push_back(arg);
        }
    }

    if (positional.empty()) {
        usage(stderr);
        fatal("no network given");
    }
    // A leading positional naming a policy selects it ("fig" is the
    // policy of the paper-figure benches, i.e. "bench").
    const tools::NetSelection sel = tools::parseNetArgs(positional);
    opt.args.policy = sel.policy;
    opt.args.trace = true;
    opt.nets = sel.nets;
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    const sim::GpuConfig cfg =
        tools::makeJobSpec(opt.nets[0], opt.args).gpuConfig();
    sim::Gpu gpu(cfg);

    int failures = 0;
    for (const std::string &net : opt.nets) {
        trace::RingOptions ropt;
        ropt.capacity = opt.maxEvents;
        ropt.mask = opt.mask;
        ropt.samplePeriod = opt.window;
        trace::RingSink sink(ropt);

        rt::NetRun run;
        {
            // Installed for this thread only, and removed before export
            // so the exporter's own work cannot be traced.
            trace::ScopedSink install(&sink);
            run = rt::runJob(gpu, tools::makeJobSpec(net, opt.args));
        }

        const std::string path = opt.outDir + "/" + net + ".trace.json";
        trace::ChromeExportOptions eopt;
        eopt.coreClockGhz = cfg.coreClockGhz;
        eopt.label = net + "/" + opt.args.platform + "/" + opt.args.policy;
        if (!trace::writeChromeTrace(sink, path, eopt)) {
            std::fprintf(stderr, "tango-trace: cannot write '%s'\n",
                         path.c_str());
            failures++;
            continue;
        }

        uint64_t kernels = 0;
        for (const auto &l : run.layers)
            kernels += l.kernels.size();
        std::printf("%-12s policy=%s  layers=%zu kernels=%llu  "
                    "sim_time=%.3gs\n",
                    net.c_str(), opt.args.policy.c_str(), run.layers.size(),
                    static_cast<unsigned long long>(kernels),
                    run.totalTimeSec);
        if (opt.summary) {
            // How the launches were served by the memoization layer
            // (sim/gpu.cc): replayed = steady-state launches whose
            // statistics were spliced from cache.
            std::printf("  launches: replayed=%llu simulated=%llu\n",
                        static_cast<unsigned long long>(
                            run.totals.get("mem.replayed_launches")),
                        static_cast<unsigned long long>(
                            run.totals.get("mem.simulated_launches")));
        }
        std::printf("  events recorded: %llu   dropped: %llu\n",
                    static_cast<unsigned long long>(sink.recorded()),
                    static_cast<unsigned long long>(sink.dropped()));
        for (const auto &[kind, count] : sink.kindCounts()) {
            std::printf("    %-16s %llu\n", trace::eventKindName(kind),
                        static_cast<unsigned long long>(count));
        }
        if (sink.dropped() > 0) {
            std::printf("  warning: ring full (capacity %u) — raise "
                        "--max-events or narrow --events\n",
                        sink.capacity());
        }
        std::printf("  wrote %s\n", path.c_str());
    }
    return failures == 0 ? 0 : 1;
}
