#include "sim/memory.hh"

#include <sys/mman.h>

#include <algorithm>

#include "common/logging.hh"

namespace tango::sim {

DeviceMemory::DeviceMemory(uint64_t capacity) : capacity_(capacity)
{
    // Anonymous, lazily-committed mapping: untouched pages (e.g. weight
    // buffers in timing-only runs) cost no RAM and read as zero.
    void *p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED)
        fatal("cannot map %llu bytes of device memory",
              static_cast<unsigned long long>(capacity_));
    store_ = static_cast<uint8_t *>(p);
    // Leave address 0 unused so a zero address can act as "null".
    top_ = 256;
    peak_ = top_;
}

DeviceMemory::~DeviceMemory()
{
    if (store_)
        ::munmap(store_, capacity_);
}

uint32_t
DeviceMemory::allocate(uint64_t bytes, const std::string &label)
{
    const uint64_t aligned = (bytes + 255) & ~uint64_t(255);
    if (top_ + aligned > capacity_) {
        fatal("device out of memory allocating %llu bytes for '%s' "
              "(used %llu of %llu)",
              static_cast<unsigned long long>(bytes), label.c_str(),
              static_cast<unsigned long long>(top_),
              static_cast<unsigned long long>(capacity_));
    }
    const uint64_t addr = top_;
    top_ += aligned;
    peak_ = std::max(peak_, top_);
    return static_cast<uint32_t>(addr);
}

void
DeviceMemory::reset()
{
    top_ = 256;
}

void
DeviceMemory::resetAll()
{
    reset();
    peak_ = top_;
}

void
DeviceMemory::copyIn(uint32_t addr, const void *src, uint64_t bytes)
{
    TANGO_ASSERT(addr + bytes <= capacity_, "copyIn out of range");
    std::memcpy(store_ + addr, src, bytes);
}

void
DeviceMemory::copyOut(void *dst, uint32_t addr, uint64_t bytes) const
{
    TANGO_ASSERT(addr + bytes <= capacity_, "copyOut out of range");
    std::memcpy(dst, store_ + addr, bytes);
}

} // namespace tango::sim
