# Empty compiler generated dependencies file for imagenet_classify.
# This may be replaced when dependencies are built.
