#include "nn/models/models.hh"

#include "common/logging.hh"

namespace tango::nn::models {

namespace {

/** SqueezeNet / Table III mapping: one block per output row, columns as
 *  threads, filters looped in-thread. */
LaunchHint
rowHint(uint32_t p, uint32_t q)
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::Loop;
    h.pixMap = kern::PixelMap::RowBlock;
    h.grid = {p, 1, 1};
    h.block = {q, 1, 1};
    return h;
}

} // namespace

Network
buildSqueezeNet()
{
    // SqueezeNet v1.0: conv1(7x7/2,96) -> pool -> fire2..fire9 -> conv10
    // (1x1, 1000) -> global average pool, 3x227x227 input.
    Network net;
    net.name = "squeezenet";
    net.inC = 3;
    net.inH = net.inW = 227;

    int prev = -1;

    auto conv = [&](const std::string &name, const std::string &fig,
                    uint32_t c, uint32_t hw, uint32_t k, uint32_t rs,
                    uint32_t stride, uint32_t pad) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = fig;
        l.C = c;
        l.H = l.W = hw;
        l.K = k;
        l.R = l.S = rs;
        l.stride = stride;
        l.pad = pad;
        l.P = l.Q = (hw + 2 * pad - rs) / stride + 1;
        l.relu = true;
        l.inputs = {prev};
        l.hint = rowHint(l.P, l.Q);
        prev = net.add(l);
        return l.P;
    };
    auto pool = [&](const std::string &name, uint32_t c, uint32_t hw) {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = name;
        l.figType = "Pooling";
        l.C = c;
        l.H = l.W = hw;
        l.R = l.S = 3;
        l.stride = 2;
        l.P = l.Q = (hw - 3) / 2 + 1;
        l.inputs = {prev};
        l.hint = rowHint(l.P, l.Q);
        l.hint.chanSrc = kern::ChannelSrc::Loop;
        prev = net.add(l);
        return l.P;
    };

    // fire module: squeeze 1x1 (s) -> expand 1x1 (e) || expand 3x3 (e),
    // outputs concatenated to 2e channels.
    auto fire = [&](const std::string &name, uint32_t c, uint32_t hw,
                    uint32_t s, uint32_t e) {
        conv(name + "_squeeze1x1", "Fire_Squeeze", c, hw, s, 1, 1, 0);
        const int sq = prev;

        Layer e1;
        e1.kind = LayerKind::Conv;
        e1.name = name + "_expand1x1";
        e1.figType = "Fire_Expand";
        e1.C = s;
        e1.H = e1.W = hw;
        e1.K = e;
        e1.R = e1.S = 1;
        e1.P = e1.Q = hw;
        e1.relu = true;
        e1.inputs = {sq};
        e1.hint = rowHint(hw, hw);
        const int x1 = net.add(e1);

        Layer e3;
        e3.kind = LayerKind::Conv;
        e3.name = name + "_expand3x3";
        e3.figType = "Fire_Expand";
        e3.C = s;
        e3.H = e3.W = hw;
        e3.K = e;
        e3.R = e3.S = 3;
        e3.pad = 1;
        e3.P = e3.Q = hw;
        e3.relu = true;
        e3.inputs = {sq};
        e3.hint = rowHint(hw, hw);
        const int x3 = net.add(e3);

        Layer cc;
        cc.kind = LayerKind::Concat;
        cc.name = name + "_concat";
        cc.figType = "Fire_Expand";
        cc.K = 2 * e;
        cc.P = cc.Q = hw;
        cc.inputs = {x1, x3};
        const int cat = net.add(cc);
        // Device path: the expands write straight into the concat buffer.
        net.layers()[x1].concatInto = cat;
        net.layers()[x1].outChannelOffset = 0;
        net.layers()[x3].concatInto = cat;
        net.layers()[x3].outChannelOffset = e;
        prev = cat;
    };

    conv("conv1", "Conv", 3, 227, 96, 7, 2, 0);   // -> 111
    pool("pool1", 96, 111);                       // -> 55
    fire("fire2", 96, 55, 16, 64);
    fire("fire3", 128, 55, 16, 64);
    fire("fire4", 128, 55, 32, 128);
    pool("pool4", 256, 55);                       // -> 27
    fire("fire5", 256, 27, 32, 128);
    fire("fire6", 256, 27, 48, 192);
    fire("fire7", 384, 27, 48, 192);
    fire("fire8", 384, 27, 64, 256);
    pool("pool8", 512, 27);                       // -> 13
    fire("fire9", 512, 13, 64, 256);
    conv("conv10", "Conv", 512, 13, 1000, 1, 1, 0);   // 13x13x1000

    Layer gap;
    gap.kind = LayerKind::Pool;
    gap.name = "global_avg_pool";
    gap.figType = "Pooling";
    gap.C = 1000;
    gap.H = gap.W = 13;
    gap.globalAvg = true;
    gap.avg = true;
    gap.P = gap.Q = 1;
    gap.inputs = {prev};
    gap.hint.grid = {1, 1, 1};
    gap.hint.block = {1000, 1, 1};
    net.add(gap);

    return net;
}

} // namespace tango::nn::models
