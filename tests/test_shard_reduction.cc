/**
 * @file
 * Property tests for the intra-run shard plan and its deterministic
 * reduction (sim/shard.hh).  The determinism contract rests on three
 * algebraic facts, each checked here over randomized inputs with a
 * fixed seed:
 *
 *   1. planCtaShards() is a total, deterministic partition: contiguous,
 *      gap-free coverage of [0, sampled), wave-aligned in the wave
 *      regime, never more shards than requested (or than available
 *      work), and K=1 is the exact sequential identity.
 *
 *   2. Folding KernelStats / KernelProfile fragments in fixed shard
 *      order is ASSOCIATIVE and equal to a scalar reference fold —
 *      StatSet counters are integer-valued doubles below 2^53 and the
 *      profile arrays are uint64, so shard-order addition is exact, and
 *      any bracketing of the fold produces bit-identical results.
 *      The scale x workScale double-arithmetic path from the per-PC
 *      profiler rides on top: scaling is applied exactly once, after
 *      the raw fold, and profileConsistent() must accept the folded
 *      profile against the scaled totals bit-for-bit.
 *
 *   3. combineStreamDigests() over shard-partitioned per-warp digest
 *      vectors equals the digest fold of the flat (unsharded) launch
 *      order, no matter where the shard boundaries fall — which is why
 *      memo fingerprints and functional replay work unchanged at K>1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "sim/core.hh"
#include "sim/digest.hh"
#include "sim/profile.hh"
#include "sim/shard.hh"

namespace tango {
namespace {

using sim::CtaShard;
using sim::KernelProfile;
using sim::KernelStats;
using sim::planCtaShards;

// ------------------------------------------------------------- shard plans

void
expectPlanPartitions(const std::vector<CtaShard> &plan, uint64_t sampled,
                     uint32_t resident, uint32_t k)
{
    ASSERT_FALSE(plan.empty());
    EXPECT_LE(plan.size(), size_t(k));
    EXPECT_EQ(plan.front().begin, 0u);
    EXPECT_EQ(plan.back().end, sampled);
    const uint64_t waves = (sampled + resident - 1) / resident;
    for (size_t i = 0; i < plan.size(); i++) {
        EXPECT_LT(plan[i].begin, plan[i].end) << "empty shard " << i;
        if (i + 1 < plan.size())
            EXPECT_EQ(plan[i].end, plan[i + 1].begin)
                << "gap/overlap between shards " << i << " and " << i + 1;
        if (waves >= 2) {
            // Wave regime: whole waves at launch residency.
            EXPECT_EQ(plan[i].begin % resident, 0u)
                << "shard " << i << " not wave-aligned";
            EXPECT_EQ(plan[i].resident, resident);
        } else {
            // Intra-wave regime: each slice is its own one-wave core.
            EXPECT_EQ(plan[i].resident, plan[i].count());
        }
    }
}

TEST(ShardPlan, PartitionsAreContiguousAlignedAndClamped)
{
    std::mt19937 rng(0xc7a5);
    for (int trial = 0; trial < 2000; trial++) {
        const uint32_t resident = 1 + rng() % 64;
        const uint64_t sampled = 1 + rng() % 4096;
        const uint32_t k = 1 + rng() % sim::kMaxShards;
        SCOPED_TRACE("sampled=" + std::to_string(sampled) +
                     " resident=" + std::to_string(resident) +
                     " k=" + std::to_string(k));
        expectPlanPartitions(planCtaShards(sampled, resident, k), sampled,
                             resident, k);
    }
}

TEST(ShardPlan, IsDeterministic)
{
    std::mt19937 rng(0x7a40);
    for (int trial = 0; trial < 200; trial++) {
        const uint32_t resident = 1 + rng() % 64;
        const uint64_t sampled = 1 + rng() % 4096;
        const uint32_t k = 1 + rng() % sim::kMaxShards;
        EXPECT_EQ(planCtaShards(sampled, resident, k),
                  planCtaShards(sampled, resident, k));
    }
}

TEST(ShardPlan, KOneIsTheSequentialIdentity)
{
    for (const uint64_t sampled : {1ull, 7ull, 64ull, 4097ull}) {
        for (const uint32_t resident : {1u, 8u, 48u}) {
            const auto plan = planCtaShards(sampled, resident, 1);
            ASSERT_EQ(plan.size(), 1u);
            EXPECT_EQ(plan[0].begin, 0u);
            EXPECT_EQ(plan[0].end, sampled);
            EXPECT_EQ(plan[0].resident, resident);
        }
    }
}

TEST(ShardPlan, NeverExceedsAvailableWork)
{
    // More shards than waves (wave regime): clamped to waves.
    EXPECT_EQ(planCtaShards(96, 32, 64).size(), 3u);
    // More shards than CTAs (intra-wave regime): clamped to CTAs.
    EXPECT_EQ(planCtaShards(3, 48, 64).size(), 3u);
    // A single CTA can never split.
    EXPECT_EQ(planCtaShards(1, 16, 64).size(), 1u);
}

// ------------------------------------------------------ KernelStats folds

/** A random stat fragment as one shard would produce it: integer-valued
 *  doubles (raw, unscaled counters) over a fixed key set. */
KernelStats
randomFragment(std::mt19937 &rng, bool withProfile, uint32_t numPcs)
{
    KernelStats ks;
    ks.smCycles = rng() % (1u << 20);
    ks.peakWindowDynW = double(rng() % 1000);
    for (const char *key : {"issued", "op.mac", "stall.mem",
                            "mem.l1d.misses", "mem.l2.misses", "evt.dram"})
        ks.stats.add(key, double(rng() % (1u << 24)));
    if (withProfile) {
        auto p = std::make_shared<KernelProfile>();
        p->issued.resize(numPcs);
        p->stalls.resize(size_t(numPcs) * sim::numStalls);
        p->l1dMisses.resize(numPcs);
        p->l2Misses.resize(numPcs);
        p->dramTxns.resize(numPcs);
        for (auto *vec : {&p->issued, &p->stalls, &p->l1dMisses,
                          &p->l2Misses, &p->dramTxns}) {
            for (auto &x : *vec)
                x = rng() % (1u << 16);
        }
        ks.profile = std::move(p);
    }
    return ks;
}

void
expectStatsEqual(const KernelStats &a, const KernelStats &b)
{
    EXPECT_EQ(a.smCycles, b.smCycles);
    EXPECT_EQ(a.peakWindowDynW, b.peakWindowDynW);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    ASSERT_EQ(bool(a.profile), bool(b.profile));
    if (a.profile)
        EXPECT_TRUE(*a.profile == *b.profile);
}

/** Deep copy: foldShardStats mutates its accumulator (and the shared
 *  profile it points at), so every bracketing needs private storage. */
KernelStats
cloneStats(const KernelStats &ks)
{
    KernelStats out = ks;
    if (ks.profile)
        out.profile = std::make_shared<KernelProfile>(*ks.profile);
    return out;
}

TEST(ShardReduction, FoldMatchesScalarReferenceAndIsAssociative)
{
    std::mt19937 rng(0x5eed);
    for (int trial = 0; trial < 50; trial++) {
        const size_t shards = 2 + rng() % 7;
        const uint32_t numPcs = 4 + rng() % 60;
        std::vector<KernelStats> frags;
        for (size_t i = 0; i < shards; i++)
            frags.push_back(randomFragment(rng, true, numPcs));

        // Scalar reference: per-key sums in plain uint64 arithmetic.
        uint64_t refCycles = 0;
        double refPeak = 0.0;
        std::map<std::string, uint64_t> refStats;
        std::vector<uint64_t> refIssued(numPcs, 0);
        for (const KernelStats &f : frags) {
            refCycles += f.smCycles;
            refPeak = std::max(refPeak, f.peakWindowDynW);
            for (const auto &[k, v] : f.stats.all())
                refStats[k] += static_cast<uint64_t>(v);
            for (uint32_t pc = 0; pc < numPcs; pc++)
                refIssued[pc] += f.profile->issued[pc];
        }

        // Left fold in shard order.
        KernelStats left = cloneStats(frags[0]);
        for (size_t i = 1; i < shards; i++)
            sim::foldShardStats(left, frags[i]);

        EXPECT_EQ(left.smCycles, refCycles);
        EXPECT_EQ(left.peakWindowDynW, refPeak);
        for (const auto &[k, v] : refStats)
            EXPECT_EQ(left.stats.get(k), double(v)) << k;
        for (uint32_t pc = 0; pc < numPcs; pc++)
            EXPECT_EQ(left.profile->issued[pc], refIssued[pc]);

        // Any other bracketing gives the bit-identical result: fold
        // pairs first, then fold the partial sums.
        KernelStats tree = cloneStats(frags[0]);
        sim::foldShardStats(tree, frags[1]);
        for (size_t i = 2; i + 1 < shards; i += 2) {
            KernelStats pair = cloneStats(frags[i]);
            sim::foldShardStats(pair, frags[i + 1]);
            sim::foldShardStats(tree, pair);
        }
        if (shards > 2 && shards % 2 == 1)
            sim::foldShardStats(tree, frags[shards - 1]);
        expectStatsEqual(left, tree);
    }
}

TEST(ShardReduction, ScaleIsAppliedOnceAfterTheRawFold)
{
    // The PR-5 double-arithmetic contract: the StatSet totals are
    // (double)rawSum * scale * workScale in that exact order, and the
    // folded profile must reproduce them bit-for-bit through
    // profileConsistent() — which is only possible if the launch scaled
    // once after reduction rather than per shard.
    std::mt19937 rng(0x0dd5);
    for (int trial = 0; trial < 50; trial++) {
        const size_t shards = 2 + rng() % 7;
        const uint32_t numPcs = 4 + rng() % 60;
        std::vector<KernelStats> frags;
        for (size_t i = 0; i < shards; i++)
            frags.push_back(randomFragment(rng, true, numPcs));

        KernelStats acc = cloneStats(frags[0]);
        for (size_t i = 1; i < shards; i++)
            sim::foldShardStats(acc, frags[i]);

        // Mirror Gpu::launch + runtime work scaling: one multiply each,
        // after the fold.
        const double scale = double(1 + rng() % 37) / 3.0;
        const double workScale = double(1 + rng() % 11);
        acc.profile->scale = scale;
        acc.profile->workScale = workScale;

        StatSet scaled;
        for (size_t s = 0; s < sim::numStalls; s++) {
            uint64_t raw = 0;
            for (uint32_t pc = 0; pc < numPcs; pc++)
                raw += acc.profile->stallAt(pc, s);
            double v = double(raw);
            v *= scale;
            v *= workScale;
            scaled.set(std::string("stall.") +
                           sim::stallName(static_cast<sim::Stall>(s)),
                       v);
        }
        // The profile's own counters drive issued/misses/txns: rebuild
        // those four totals from the folded arrays, like SmCore does.
        auto sum = [](const std::vector<uint64_t> &v) {
            uint64_t t = 0;
            for (uint64_t x : v)
                t += x;
            return t;
        };
        for (const auto &[key, vec] :
             std::initializer_list<
                 std::pair<const char *, const std::vector<uint64_t> *>>{
                 {"issued", &acc.profile->issued},
                 {"mem.l1d.misses", &acc.profile->l1dMisses},
                 {"mem.l2.misses", &acc.profile->l2Misses},
                 {"evt.dram", &acc.profile->dramTxns}}) {
            double v = double(sum(*vec));
            v *= scale;
            v *= workScale;
            scaled.set(key, v);
        }

        std::string why;
        EXPECT_TRUE(sim::profileConsistent(*acc.profile, scaled, &why))
            << why;
    }
}

TEST(ShardReduction, ProfileShapeMismatchIsFatal)
{
    std::mt19937 rng(0xface);
    KernelStats a = randomFragment(rng, true, 8);
    KernelStats b = randomFragment(rng, true, 9);
    EXPECT_DEATH(sim::foldShardStats(a, b), "shape mismatch");
}

// ------------------------------------------------------- stream digests

TEST(ShardReduction, ShardedStreamDigestEqualsFlatFold)
{
    std::mt19937_64 rng(0xd16e);
    for (int trial = 0; trial < 200; trial++) {
        // A launch's per-warp digest vector in launch order...
        const size_t warps = 1 + rng() % 200;
        std::vector<uint64_t> flat(warps);
        for (auto &h : flat)
            h = rng();

        // ...split at arbitrary shard boundaries.
        const size_t shards = 1 + rng() % 8;
        std::vector<std::vector<uint64_t>> parts(shards);
        size_t at = 0;
        for (size_t i = 0; i < shards; i++) {
            const size_t take = i + 1 == shards
                                    ? flat.size() - at
                                    : rng() % (flat.size() - at + 1);
            parts[i].assign(flat.begin() + at, flat.begin() + at + take);
            at += take;
        }

        uint64_t ref = sim::digest::kInit;
        for (uint64_t h : flat)
            sim::digest::mix(ref, h);
        EXPECT_EQ(sim::combineStreamDigests(parts), ref);
    }
}

} // namespace
} // namespace tango
