#include "profiler/profiler.hh"

#include <algorithm>

#include "sim/isa.hh"

namespace tango::prof {

Series
stallBreakdown(const StatSet &stats)
{
    Series out;
    double total = 0.0;
    for (size_t i = 0; i < sim::numStalls; i++) {
        const std::string key =
            std::string("stall.") +
            sim::stallName(static_cast<sim::Stall>(i));
        total += stats.get(key);
    }
    for (size_t i = 0; i < sim::numStalls; i++) {
        const char *name = sim::stallName(static_cast<sim::Stall>(i));
        const double v = stats.get(std::string("stall.") + name);
        out.emplace_back(name, total > 0 ? v / total : 0.0);
    }
    return out;
}

Series
opBreakdown(const StatSet &stats)
{
    Series out;
    const double total = stats.sumPrefix("op.");
    if (total <= 0)
        return out;
    for (const auto &[k, v] : stats.all()) {
        if (k.rfind("op.", 0) == 0 && v > 0)
            out.emplace_back(k.substr(3), v / total);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

Series
dtypeBreakdown(const StatSet &stats)
{
    Series out;
    const double total = stats.sumPrefix("dtype.");
    if (total <= 0)
        return out;
    // Keep the paper's legend order: f32, u32, u16, s32, s16.
    for (const char *t : {"f32", "u32", "u16", "s32", "s16"}) {
        const double v = stats.get(std::string("dtype.") + t);
        out.emplace_back(t, v / total);
    }
    return out;
}

Series
topN(const Series &s, size_t n)
{
    Series out;
    double rest = 0.0;
    for (size_t i = 0; i < s.size(); i++) {
        if (i < n)
            out.push_back(s[i]);
        else
            rest += s[i].second;
    }
    if (rest > 0.0)
        out.emplace_back("Others", rest);
    return out;
}

Series
layerTimeBreakdown(const rt::NetRun &run)
{
    Series out;
    double total = 0.0;
    for (const std::string &fig : run.figTypes())
        total += run.figTypeTime(fig);
    for (const std::string &fig : run.figTypes()) {
        out.emplace_back(fig,
                         total > 0 ? run.figTypeTime(fig) / total : 0.0);
    }
    return out;
}

Series
layerEnergyBreakdown(const rt::NetRun &run)
{
    Series out;
    double total = 0.0;
    std::vector<std::pair<std::string, double>> vals;
    for (const std::string &fig : run.figTypes()) {
        double e = 0.0;
        for (const auto &l : run.layers) {
            if (l.figType == fig)
                e += l.energyJ();
        }
        vals.emplace_back(fig, e);
        total += e;
    }
    for (auto &[fig, e] : vals)
        out.emplace_back(fig, total > 0 ? e / total : 0.0);
    return out;
}

Series
layerStat(const rt::NetRun &run, const std::string &stat)
{
    Series out;
    for (const std::string &fig : run.figTypes())
        out.emplace_back(fig, run.figTypeStat(fig, stat));
    return out;
}

StatSet
mergeTotals(const std::vector<const rt::NetRun *> &runs)
{
    StatSet out;
    for (const rt::NetRun *r : runs)
        out.merge(r->totals);
    return out;
}

} // namespace tango::prof
