/**
 * @file
 * Training-set generation for the estimate-tier models (tango-fit).
 *
 * A sweep pushes jobs through the existing rt::Engine — the named suite
 * networks plus randomized single-layer synthetic networks built from
 * the same launch-hint styles the real models use (Table III: in-thread
 * channel loop, row blocks, stride loops, grid-tiled planes) — and
 * flattens each NetRun into per-layer training rows: the layer's
 * shape-derived feature vector (estimate/model.hh) against the six
 * statistics the simulator measured for it.  Rows are plain data; the
 * JSON form exists so a sweep can be archived and refit without
 * re-simulating.
 */

#ifndef TANGO_ESTIMATE_DATASET_HH
#define TANGO_ESTIMATE_DATASET_HH

#include <string>
#include <vector>

#include "estimate/model.hh"
#include "runtime/engine.hh"

namespace tango::estimate {

/** What to sweep for one (policy, platform) training set. */
struct SweepOptions
{
    /** Suite networks to run; empty = every runnable network. */
    std::vector<std::string> nets;
    /** Randomized single-layer synthetic networks (shape coverage the
     *  suite alone does not reach). */
    uint32_t synthetic = 24;
    /** Extra RNN cell shapes (hidden-size sweep) per RNN kind. */
    uint32_t rnnHiddenSweep = 3;
    /** Sequence length for the sweep's RNN runs.  Short on purpose: a
     *  cell step's features are identical across timesteps, so extra
     *  steps add simulation time but no new training information. */
    uint32_t rnnSeqLen = 8;
    uint64_t seed = 1;
};

/**
 * Run the sweep through @p engine (blocking; jobs are submitted up
 * front so the worker pool runs them concurrently) and return one Row
 * per simulated layer with kernels.
 */
std::vector<Row> generate(rt::Engine &engine, const SweepOptions &opt,
                          const std::string &policy,
                          const std::string &platform);

/** Serialize rows (with their sweep provenance) as a JSON document. */
std::string rowsToJson(const std::vector<Row> &rows,
                       const std::string &policy,
                       const std::string &platform);

/** Parse a rowsToJson() document; fails on malformed JSON or a stats
 *  version other than the current simulator's. */
bool rowsFromJson(const std::string &text, std::vector<Row> &out,
                  std::string *err = nullptr);

} // namespace tango::estimate

#endif // TANGO_ESTIMATE_DATASET_HH
