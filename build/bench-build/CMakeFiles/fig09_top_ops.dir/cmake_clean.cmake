file(REMOVE_RECURSE
  "../bench/fig09_top_ops"
  "../bench/fig09_top_ops.pdb"
  "CMakeFiles/fig09_top_ops.dir/fig09_top_ops.cc.o"
  "CMakeFiles/fig09_top_ops.dir/fig09_top_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_top_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
