/**
 * @file
 * tango-top — live view of a running tango-serve daemon.
 *
 *   tango-top --port N [options]
 *
 * Polls the serve protocol's "metrics" frame (the process-wide
 * Prometheus scrape, see metrics/metrics.hh) and renders the serving
 * picture a screenful at a time: request rate, served/reject mix,
 * accuracy-tier mix, engine cache hit rate, queue depth and latency
 * percentiles.  Rates are computed from counter deltas between polls;
 * everything else is read straight off the scrape, so what tango-top
 * prints is exactly what any Prometheus-side consumer would ingest.
 *
 * --raw prints one raw scrape and exits — the scriptable escape hatch
 * (ci.sh uses it to assert cross-metric invariants after a load run).
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cli_common.hh"
#include "common/logging.hh"
#include "metrics/scrape.hh"
#include "serve/protocol.hh"

namespace {

using namespace tango;

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-top --port N [options]\n"
        "\n"
        "options:\n"
        "  --host H         daemon address (default 127.0.0.1)\n"
        "  --port N         daemon TCP port (required)\n"
        "  --interval MS    poll period in milliseconds (default 2000)\n"
        "  --samples N      exit after N polls; 0 = until the daemon\n"
        "                   goes away (default 0)\n"
        "  --raw            print one raw Prometheus scrape and exit\n"
        "  --no-clear       append screens instead of redrawing in place\n"
        "  -h, --help       this message\n");
}

/** Counter families read every poll; deltas between polls give rates. */
struct Totals
{
    double runRequests = 0;
    double served = 0;
    double servedSim = 0, servedJoin = 0, servedMem = 0, servedDisk = 0;
    double rejects = 0;
    double tierSim = 0, tierReplay = 0, tierEstimate = 0;
    double cacheHits = 0, cacheLookups = 0;
    double queueDepth = 0;
    metrics::HistogramSnapshot latency;
};

double
familyValue(const metrics::Scrape &s, const char *name, const char *key,
            const char *value)
{
    const metrics::Sample *sample = s.find(name, key, value);
    return sample ? sample->value : 0.0;
}

Totals
read(const metrics::Scrape &s)
{
    Totals t;
    t.runRequests = s.sum("tango_serve_run_requests_total");
    t.servedSim = familyValue(s, "tango_serve_served_total", "how", "sim");
    t.servedJoin = familyValue(s, "tango_serve_served_total", "how", "join");
    t.servedMem = familyValue(s, "tango_serve_served_total", "how", "mem");
    t.servedDisk = familyValue(s, "tango_serve_served_total", "how", "disk");
    t.served = s.sum("tango_serve_served_total");
    t.rejects = s.sum("tango_serve_rejects_total");
    t.tierSim = familyValue(s, "tango_serve_tier_total", "tier", "sim");
    t.tierReplay = familyValue(s, "tango_serve_tier_total", "tier", "replay");
    t.tierEstimate =
        familyValue(s, "tango_serve_tier_total", "tier", "estimate");
    const double mem =
        familyValue(s, "tango_engine_cache_total", "result", "mem_hit");
    const double disk =
        familyValue(s, "tango_engine_cache_total", "result", "disk_hit");
    const double miss =
        familyValue(s, "tango_engine_cache_total", "result", "miss");
    t.cacheHits = mem + disk;
    t.cacheLookups = mem + disk + miss;
    t.queueDepth = familyValue(s, "tango_engine_inflight_sims", "", "");
    s.histogram("tango_serve_latency_us", t.latency);
    return t;
}

double
pct(double part, double whole)
{
    return whole > 0 ? 100.0 * part / whole : 0.0;
}

void
render(const Totals &now, const Totals &prev, double intervalSec,
       bool first)
{
    const double qps =
        first ? 0.0 : (now.runRequests - prev.runRequests) / intervalSec;
    const double served = now.served;
    std::printf("tango-top — %.1f req/s  (run requests %.0f, "
                "served %.0f, rejected %.0f)\n",
                qps, now.runRequests, served, now.rejects);
    std::printf("  served   sim %5.1f%%  join %5.1f%%  mem %5.1f%%  "
                "disk %5.1f%%\n",
                pct(now.servedSim, served), pct(now.servedJoin, served),
                pct(now.servedMem, served), pct(now.servedDisk, served));
    const double tiers = now.tierSim + now.tierReplay + now.tierEstimate;
    std::printf("  tier mix sim %5.1f%%  replay %5.1f%%  "
                "estimate %5.1f%%\n",
                pct(now.tierSim, tiers), pct(now.tierReplay, tiers),
                pct(now.tierEstimate, tiers));
    std::printf("  cache    hit rate %5.1f%%  (%.0f of %.0f lookups)   "
                "queue depth %.0f\n",
                pct(now.cacheHits, now.cacheLookups), now.cacheHits,
                now.cacheLookups, now.queueDepth);
    const metrics::HistogramSnapshot &lat = now.latency;
    std::printf("  latency  p50 %.3f ms  p99 %.3f ms  (%" PRIu64
                " samples)\n",
                lat.percentileUpper(0.50) / 1000.0,
                lat.percentileUpper(0.99) / 1000.0, lat.count());
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    uint64_t intervalMs = 2000;
    uint64_t samples = 0;
    bool raw = false;
    bool clear = true;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--host") {
            host = value();
        } else if (arg == "--port") {
            port = static_cast<uint16_t>(
                tools::parseUint("--port", value()));
        } else if (arg == "--interval") {
            intervalMs = tools::parseUint("--interval", value());
            if (intervalMs == 0)
                fatal("--interval must be > 0");
        } else if (arg == "--samples") {
            samples = tools::parseUint("--samples", value());
        } else if (arg == "--raw") {
            raw = true;
        } else if (arg == "--no-clear") {
            clear = false;
        } else {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (port == 0) {
        usage(stderr);
        fatal("--port is required");
    }

    serve::Client client;
    std::string err;
    if (!client.connect(host, port, &err))
        fatal("tango-top: %s", err.c_str());

    if (raw) {
        std::string text;
        if (!client.metrics(text, &err))
            fatal("tango-top: %s", err.c_str());
        std::fputs(text.c_str(), stdout);
        return 0;
    }

    Totals prev;
    for (uint64_t n = 0; samples == 0 || n < samples; n++) {
        std::string text;
        if (!client.metrics(text, &err)) {
            // Normal end of a session: the daemon drained and closed.
            inform("tango-top: daemon gone (%s)", err.c_str());
            return 0;
        }
        metrics::Scrape scrape;
        if (!metrics::Scrape::parse(text, scrape, &err))
            fatal("tango-top: bad scrape: %s", err.c_str());
        const Totals now = read(scrape);
        if (clear)
            std::fputs("\033[H\033[2J", stdout);   // home + clear screen
        render(now, prev, double(intervalMs) / 1000.0, n == 0);
        prev = now;
        if (samples == 0 || n + 1 < samples)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(intervalMs));
    }
    return 0;
}
