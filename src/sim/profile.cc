#include "sim/profile.hh"

#include <sstream>

#include "common/logging.hh"

namespace tango::sim {

uint64_t
KernelProfile::stallTotalAt(uint32_t pc) const
{
    uint64_t total = 0;
    for (size_t s = 0; s < numStalls; s++)
        total += stallAt(pc, s);
    return total;
}

namespace {

/**
 * Compare a scaled per-PC counter sum against one StatSet total.  An
 * absent key means the total never got a non-zero increment, so the sum
 * must scale to exactly 0.
 */
bool
checkTotal(const KernelProfile &prof, const StatSet &stats,
           const std::string &key, uint64_t rawSum, std::string *why)
{
    const double want = stats.get(key);    // absent -> 0
    const double got = prof.scaled(rawSum);
    if (got == want)
        return true;
    if (why) {
        std::ostringstream os;
        os.precision(17);
        os << "profile mismatch on '" << key << "': per-PC sum " << got
           << " (raw " << rawSum << " x scale " << prof.scale << " x workScale "
           << prof.workScale << ") != stat " << want;
        *why = os.str();
    }
    return false;
}

uint64_t
sumVec(const std::vector<uint64_t> &v)
{
    uint64_t total = 0;
    for (uint64_t x : v)
        total += x;
    return total;
}

} // namespace

bool
profileConsistent(const KernelProfile &prof, const StatSet &stats,
                  std::string *why)
{
    const uint32_t n = prof.numPcs();
    if (prof.stalls.size() != size_t(n) * numStalls ||
        prof.l1dMisses.size() != n || prof.l2Misses.size() != n ||
        prof.dramTxns.size() != n) {
        if (why)
            *why = "profile counter arrays have inconsistent sizes";
        return false;
    }

    if (!checkTotal(prof, stats, "issued", sumVec(prof.issued), why))
        return false;

    for (size_t s = 0; s < numStalls; s++) {
        uint64_t rawSum = 0;
        for (uint32_t pc = 0; pc < n; pc++)
            rawSum += prof.stallAt(pc, s);
        const std::string key =
            std::string("stall.") + stallName(static_cast<Stall>(s));
        if (!checkTotal(prof, stats, key, rawSum, why))
            return false;
    }

    if (!checkTotal(prof, stats, "mem.l1d.misses", sumVec(prof.l1dMisses),
                    why))
        return false;
    if (!checkTotal(prof, stats, "mem.l2.misses", sumVec(prof.l2Misses), why))
        return false;
    if (!checkTotal(prof, stats, "evt.dram", sumVec(prof.dramTxns), why))
        return false;

    return true;
}

} // namespace tango::sim
