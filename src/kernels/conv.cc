#include "kernels/kernels.hh"

#include <cstring>

#include "common/logging.hh"
#include "kernels/builder.hh"
#include "kernels/emit_util.hh"

namespace tango::kern {

void
ConvDesc::derive()
{
    if (P == 0)
        P = (H + 2 * pad - R) / stride + 1;
    if (Q == 0)
        Q = (W + 2 * pad - S) / stride + 1;
}

std::shared_ptr<Program>
buildConv(const ConvDesc &desc)
{
    ConvDesc d = desc;
    d.derive();

    Builder b(d.name);
    auto mSetup = b.mark("conv.setup");
    b.constant(d.quantWeights ? 36 : 32);    // C H W K R S P Q [wscale]

    // Pointer parameters.
    Reg pIn = b.param(0);
    Reg pW = b.param(1);
    Reg pB = b.param(2);
    Reg pOut = b.param(3);

    // Dimensions from constant memory (uniform across the warp).
    Reg rC = b.ldc(DType::U32, 0);
    Reg rH = b.ldc(DType::U32, 4);
    Reg rWd = b.ldc(DType::U32, 8);
    Reg rK = b.ldc(DType::U32, 12);
    Reg rR = b.ldc(DType::U32, 16);
    Reg rS = b.ldc(DType::U32, 20);
    Reg rP = b.ldc(DType::U32, 24);
    Reg rQ = b.ldc(DType::U32, 28);

    Reg tx = b.movS(SReg::TidX);
    Reg ty = b.movS(SReg::TidY);
    // Quantization extension: per-layer weight scale (Q15 dequantize).
    Reg rWs;
    if (d.quantWeights)
        rWs = b.ldc(DType::F32, 32);

    // Temporaries reused across iterations (fixed register budget).
    Reg acc = b.reg(), tIy = b.reg(), tRow = b.reg(), tIx = b.reg();
    Reg tV = b.reg(), tWv = b.reg(), tOff = b.reg(), tAddr = b.reg();
    Reg tF1 = b.reg(), tF2 = b.reg();
    Reg tKC = b.reg(), tKc = b.reg(), tWRow = b.reg();
    Reg xs = b.reg(), ys = b.reg();
    Reg c = b.reg(), r = b.reg();
    PredReg pLd = b.pred();
    PredReg pSt = b.pred();

    // One output value: out[k, y, x].
    auto emitOutput = [&](Reg k, Reg x, Reg y) {
        {
            auto m = b.mark("conv.bias");
            if (d.bias) {
                b.emit3i(Op::Shl, DType::U32, tOff, k, 2);
                b.emit3(Op::Add, DType::U32, tAddr, pB, tOff);
                b.ld(DType::F32, Space::Global, acc, tAddr);
            } else {
                b.movF(acc, 0.0f);
            }
        }
        {
            auto m = b.mark("conv.idx");
            // xs = x*stride - pad; ys = y*stride - pad (u32 wraparound is
            // the idiomatic unsigned bounds trick: iy >= H also catches
            // iy < 0).
            b.emit3i(Op::Mul, DType::U32, xs, x, d.stride);
            b.emit3i(Op::Add, DType::U32, xs, xs,
                     static_cast<uint32_t>(-static_cast<int32_t>(d.pad)));
            b.emit3i(Op::Mul, DType::U32, ys, y, d.stride);
            b.emit3i(Op::Add, DType::U32, ys, ys,
                     static_cast<uint32_t>(-static_cast<int32_t>(d.pad)));
            b.emit3(Op::Mul, DType::U32, tKC, k, rC);
        }

        auto mLoop = b.mark("conv.loop");
        b.forLoop(c, 0, rC, [&] {
            {
                auto m = b.mark("conv.idx");
                // kc = (k*C + c) * R
                b.emit3(Op::Add, DType::U32, tKc, tKC, c);
                b.emit3(Op::Mul, DType::U32, tKc, tKc, rR);
            }
            b.forLoop(r, 0, rR, [&] {
                Label reconv;
                {
                    auto m = b.mark("conv.idx");
                    b.emit3(Op::Add, DType::U32, tIy, ys, r);
                    // rowBase = (c*H + iy) * W          (mad + mul)
                    b.mad(DType::U32, tRow, c, rH, tIy);
                    b.emit3(Op::Mul, DType::U32, tRow, tRow, rWd);
                    // wRow = ((k*C + c)*R + r) * S      (mad)
                    b.emit3(Op::Add, DType::U32, tWRow, tKc, r);
                    b.emit3(Op::Mul, DType::U32, tWRow, tWRow, rS);
                    b.setr(DType::U16, Cmp::Lt, tF1, tIy, rH);
                    reconv = b.label();
                    b.ssy(reconv);
                }
                // The filter-width loop is fully unrolled (S is a build
                // constant), as the CUDA compiler does for small bounds.
                // The whole unrolled body is the `acc += in * w` statement,
                // so it carries one label.
                auto mMac = b.mark("conv.mac");
                for (uint32_t sIdx = 0; sIdx < d.S; sIdx++) {
                    b.emit3i(Op::Add, DType::U32, tIx, xs, sIdx);
                    b.setr(DType::U16, Cmp::Lt, tF2, tIx, rWd);
                    b.emit3(Op::And, DType::U16, tF2, tF2, tF1);
                    b.setpi(pLd, DType::U16, Cmp::Ne, tF2, 0);
                    // in[(rowBase + ix) * 4]
                    b.emit3(Op::Add, DType::U32, tOff, tRow, tIx);
                    b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
                    b.emit3(Op::Add, DType::U32, tAddr, pIn, tOff);
                    b.movF(tV, 0.0f);
                    b.guard(pLd);
                    b.ld(DType::F32, Space::Global, tV, tAddr);
                    b.endGuard();
                    if (d.quantWeights) {
                        // w is s16 Q-format: w[(wRow + s) * 2], then
                        // dequantize: f32(w) * scale.
                        b.emit3i(Op::Add, DType::U32, tOff, tWRow, sIdx);
                        b.emit3i(Op::Shl, DType::U32, tOff, tOff, 1);
                        b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
                        b.ld(DType::S16, Space::Global, tWv, tAddr);
                        b.cvtTo(DType::F32, DType::S16, tWv, tWv);
                        b.emit3(Op::Mul, DType::F32, tWv, tWv, rWs);
                        b.mad(DType::F32, acc, tV, tWv, acc);
                    } else {
                        // w[(wRow + s) * 4]
                        b.emit3i(Op::Add, DType::U32, tOff, tWRow, sIdx);
                        b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
                        b.emit3(Op::Add, DType::U32, tAddr, pW, tOff);
                        b.ld(DType::F32, Space::Global, tWv, tAddr);
                        b.mad(DType::F32, acc, tV, tWv, acc);
                    }
                }
                b.retp();
                b.bind(reconv);
            });
        });

        if (d.relu) {
            auto m = b.mark("conv.relu");
            b.emit3f(Op::Max, acc, acc, 0.0f);
        }

        {
            auto m = b.mark("conv.store");
            // Guarded store of out[((k*P + y)*Q + x) * 4].
            b.setr(DType::U16, Cmp::Lt, tF1, x, rQ);
            b.setr(DType::U16, Cmp::Lt, tF2, y, rP);
            b.emit3(Op::And, DType::U16, tF1, tF1, tF2);
            b.setpi(pSt, DType::U16, Cmp::Ne, tF1, 0);
            b.mad(DType::U32, tOff, k, rP, y);
            b.emit3(Op::Mul, DType::U32, tOff, tOff, rQ);
            b.emit3(Op::Add, DType::U32, tOff, tOff, x);
            b.emit3i(Op::Shl, DType::U32, tOff, tOff, 2);
            b.emit3(Op::Add, DType::U32, tAddr, pOut, tOff);
            b.guard(pSt);
            b.st(DType::F32, Space::Global, tAddr, acc);
            b.endGuard();
        }
    };

    // Resolve the filter index.
    Reg k;
    switch (d.filterSrc) {
      case ChannelSrc::GridX:
        k = b.movS(SReg::CtaIdX);
        if (d.filterBase)
            b.emit3i(Op::Add, DType::U32, k, k, d.filterBase);
        break;
      case ChannelSrc::GridZ:
        k = b.movS(SReg::CtaIdZ);
        break;
      case ChannelSrc::Loop:
        k = b.reg();
        break;
    }

    // Resolve pixel coordinates and emit the body (possibly under loops).
    auto withPixels = [&](const std::function<void(Reg, Reg)> &body) {
        switch (d.pixelMap) {
          case PixelMap::TileOrigin: {
            Reg x = tx, y = ty;
            if (d.tileX) {
                x = b.reg();
                b.emit3i(Op::Add, DType::U32, x, tx, d.tileX);
            }
            if (d.tileY) {
                y = b.reg();
                b.emit3i(Op::Add, DType::U32, y, ty, d.tileY);
            }
            body(x, y);
            break;
          }
          case PixelMap::FromGridXY: {
            Reg bx = b.movS(SReg::CtaIdX);
            Reg by = b.movS(SReg::CtaIdY);
            Reg x = b.reg(), y = b.reg();
            b.emit3i(Op::Mul, DType::U32, x, bx, d.block.x);
            b.emit3(Op::Add, DType::U32, x, x, tx);
            b.emit3i(Op::Mul, DType::U32, y, by, d.block.y);
            b.emit3(Op::Add, DType::U32, y, y, ty);
            body(x, y);
            break;
          }
          case PixelMap::RowBlock: {
            Reg y = b.movS(SReg::CtaIdX);
            body(tx, y);
            break;
          }
          case PixelMap::StrideLoop: {
            Reg yy = b.reg(), xx = b.reg();
            detail::stridedLoop(b, yy, ty, rP, d.block.y, [&] {
                detail::stridedLoop(b, xx, tx, rQ, d.block.x,
                            [&] { body(xx, yy); }, "conv.pixloop");
            }, "conv.pixloop");
            break;
          }
        }
    };

    if (d.filterSrc == ChannelSrc::Loop) {
        withPixels([&](Reg x, Reg y) {
            b.forLoop(k, 0, rK, [&] { emitOutput(k, x, y); });
        });
    } else {
        withPixels([&](Reg x, Reg y) { emitOutput(k, x, y); });
    }

    return b.finish();
}

KernelLaunch
makeConvLaunch(const ConvDesc &desc, uint32_t in, uint32_t weights,
               uint32_t bias, uint32_t out, float weight_scale)
{
    ConvDesc d = desc;
    d.derive();
    KernelLaunch l;
    l.program = buildConv(d);
    l.grid = d.grid;
    l.block = d.block;
    l.params = {in, weights, bias, out};
    l.constData = detail::packConst({d.C, d.H, d.W, d.K, d.R, d.S, d.P, d.Q});
    if (d.quantWeights) {
        l.constData.resize(36);
        std::memcpy(l.constData.data() + 32, &weight_scale, 4);
    }
    return l;
}

} // namespace tango::kern
