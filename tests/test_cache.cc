/**
 * @file
 * Cache model unit tests: hits/misses, LRU replacement, set mapping,
 * MSHR behaviour, bypass mode, and DRAM queueing.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/dram.hh"

namespace tango::sim {
namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.sizeBytes = 1024;   // 2 sets x 4 ways x 128B
    c.assoc = 4;
    c.lineBytes = 128;
    c.mshrs = 2;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false, 0).hit);
    EXPECT_TRUE(c.access(0x1000, false, 1).hit);
    EXPECT_TRUE(c.access(0x1040, false, 2).hit);   // same line
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // 2 sets: lines with even line index map to set 0.  Fill set 0's four
    // ways, then a fifth line evicts the least recently used.
    const uint32_t setStride = 2 * 128;   // same set every 2 lines
    for (uint32_t i = 0; i < 4; i++)
        c.access(i * setStride, false, i);
    // Touch line 0 so line 1 becomes LRU.
    c.access(0, false, 10);
    // New line evicts line at setStride (the LRU).
    c.access(4 * setStride, false, 11);
    EXPECT_TRUE(c.access(0, false, 12).hit);
    EXPECT_FALSE(c.access(1 * setStride, false, 13).hit);   // evicted
}

TEST(Cache, WriteNoAllocateLeavesLineCold)
{
    CacheConfig cfg = smallCache();
    cfg.writeAllocate = false;
    Cache c(cfg);
    c.access(0x2000, true, 0);   // write miss, no allocate
    EXPECT_FALSE(c.access(0x2000, false, 1).hit);
    EXPECT_EQ(c.stats().writeAccesses, 1u);
}

TEST(Cache, WriteAllocateWarmsLine)
{
    CacheConfig cfg = smallCache();
    cfg.writeAllocate = true;
    Cache c(cfg);
    c.access(0x2000, true, 0);
    EXPECT_TRUE(c.access(0x2000, false, 1).hit);
}

TEST(Cache, BypassAlwaysMisses)
{
    CacheConfig cfg = smallCache();
    cfg.sizeBytes = 0;
    Cache c(cfg);
    EXPECT_TRUE(c.bypassed());
    for (int i = 0; i < 5; i++)
        EXPECT_FALSE(c.access(0x1000, false, i).hit);
    EXPECT_EQ(c.stats().misses, 5u);
}

TEST(Cache, MshrFillAndMerge)
{
    Cache c(smallCache());
    EXPECT_TRUE(c.mshrAvailable(0x1000, 0));
    c.allocateMshr(0x1000, 100, 0);
    c.allocateMshr(0x2000, 100, 0);
    // Full for a third distinct line...
    EXPECT_FALSE(c.mshrAvailable(0x3000, 10));
    // ...but a miss on an in-flight line merges.
    EXPECT_TRUE(c.mshrAvailable(0x1000, 10));
    // After the fill time everything frees up.
    EXPECT_TRUE(c.mshrAvailable(0x3000, 101));
    EXPECT_EQ(c.stats().mshrFullEvents, 1u);
}

TEST(Cache, MshrMergeVisibleInAccess)
{
    Cache c(smallCache());
    c.access(0x1000, false, 0);
    c.allocateMshr(0x1000, 50, 0);
    // Evict the (already allocated) line so the next access misses, then
    // check that the in-flight MSHR is reported as a merge.
    const uint32_t setStride = 2 * 128;
    for (uint32_t i = 1; i <= 4; i++)
        c.access(0x1000 + i * setStride, false, i);
    const Cache::Result r = c.access(0x1000, false, 10);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.mshrMerged);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(smallCache());
    c.access(0x1000, false, 0);
    c.allocateMshr(0x1000, 1000, 0);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0x1000, false, 0).hit);
    EXPECT_TRUE(c.mshrAvailable(0x2000, 0));
    EXPECT_TRUE(c.mshrAvailable(0x3000, 0));
}

TEST(Cache, MissRatioArithmetic)
{
    CacheStats s;
    EXPECT_EQ(s.missRatio(), 0.0);
    s.accesses = 10;
    s.misses = 3;
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.3);
}

TEST(Dram, LatencyAndQueueing)
{
    Dram d(100, 4.0);
    EXPECT_EQ(d.schedule(0), 100u);     // first burst: just latency
    EXPECT_EQ(d.schedule(0), 104u);     // second queues behind it
    EXPECT_EQ(d.schedule(0), 108u);
    EXPECT_EQ(d.accesses(), 3u);
    EXPECT_GT(d.totalQueueCycles(), 0u);
}

TEST(Dram, IdleQueueDrains)
{
    Dram d(100, 4.0);
    d.schedule(0);
    // Far in the future the queue is empty again.
    EXPECT_EQ(d.schedule(1000), 1100u);
    EXPECT_EQ(d.queueDelay(2000), 0u);
}

TEST(Dram, ResetClearsState)
{
    Dram d(50, 2.0);
    d.schedule(0);
    d.schedule(0);
    d.reset();
    EXPECT_EQ(d.accesses(), 0u);
    EXPECT_EQ(d.schedule(0), 50u);
}

} // namespace
} // namespace tango::sim
