/**
 * @file
 * Profiler-style aggregation of simulator statistics into the series the
 * paper's figures plot: stall-cycle fractions (Fig 7), opcode mixes
 * (Figs 8-9), data-type mixes (Fig 10) and layer-type breakdowns
 * (Figs 1, 4, 13, 14).
 */

#ifndef TANGO_PROFILER_PROFILER_HH
#define TANGO_PROFILER_PROFILER_HH

#include <string>
#include <utility>
#include <vector>

#include "runtime/runtime.hh"
#include "sim/stall.hh"

namespace tango::prof {

/** (label, value) series. */
using Series = std::vector<std::pair<std::string, double>>;

/** Stall-cycle fractions per nvprof category (sums to 1). */
Series stallBreakdown(const StatSet &stats);

/** Opcode mix as fractions of executed thread instructions, sorted
 *  descending. */
Series opBreakdown(const StatSet &stats);

/** Data-type mix as fractions of typed instructions. */
Series dtypeBreakdown(const StatSet &stats);

/** Top-N entries of a series, with the rest folded into "Others". */
Series topN(const Series &s, size_t n);

/** Exec-time fraction per figure layer type for a network run. */
Series layerTimeBreakdown(const rt::NetRun &run);

/** Energy fraction per figure layer type. */
Series layerEnergyBreakdown(const rt::NetRun &run);

/** Sum of a raw counter per figure layer type. */
Series layerStat(const rt::NetRun &run, const std::string &stat);

/** Merge several stat sets (e.g. across networks for Fig 9). */
StatSet mergeTotals(const std::vector<const rt::NetRun *> &runs);

// ------------------------------------------------------------------------
// Per-PC attribution rollups (SimPolicy::profile runs).  Every launch's
// KernelProfile charges issued cycles, stall cycles, cache misses and
// DRAM traffic per program counter; the statement labels recorded by the
// kernel DSL's mark() API roll those up per label -> kernel -> layer ->
// network.  All values here are scaled (profile scale x workScale), so
// they live in the same units as KernelStats.stats; replayed launches
// contribute their spliced profile like any other launch.

/** One (kernel, label) hotspot row aggregated over a network run,
 *  sorted descending by cycles in hotspots(). */
struct Hotspot
{
    std::string kernel;          ///< kernel (program) name
    std::string label;           ///< DSL statement label ("" = unlabeled)
    double cycles = 0.0;         ///< issued + stall cycles
    double issued = 0.0;         ///< instruction issues
    double stallCycles = 0.0;    ///< warp-cycles stalled at this label
    double replayedCycles = 0.0; ///< cycles from memo-replayed launches
    double l1dMisses = 0.0;
    double l2Misses = 0.0;
    double dramBytes = 0.0;      ///< DRAM transactions x line size
};

/** Aggregate every profiled launch of @p run into per-(kernel, label)
 *  hotspot rows, sorted by cycles descending.  Launches without a
 *  profile (profiling off) contribute nothing. */
std::vector<Hotspot> hotspots(const rt::NetRun &run);

/** One disassembly line of an annotated kernel listing. */
struct AnnotatedLine
{
    uint32_t pc = 0;
    std::string label;           ///< statement label of this pc
    std::string text;            ///< disassembled instruction
    double issued = 0.0;
    double stallCycles = 0.0;
    double l1dMisses = 0.0;
    double l2Misses = 0.0;
    double dramBytes = 0.0;
};

/** Per-PC annotated disassembly of every launch of kernel @p kernel in
 *  @p run, merged (perf-annotate style).  Empty when the kernel never
 *  ran with profiling on. */
std::vector<AnnotatedLine> annotateKernel(const rt::NetRun &run,
                                          const std::string &kernel);

/** Folded-stack flamegraph lines, one per (layer, kernel, label):
 *  `net;layer;kernel;label cycles\n` with cycles rounded to integers —
 *  the input format of the usual flamegraph tools. */
std::string foldedStacks(const rt::NetRun &run);

/**
 * Verify every profiled kernel of @p run: the per-PC counters must sum
 * exactly (bit-for-bit after scaling) to the kernel's own stats totals.
 * @param why when non-null, receives "<layer>/<kernel>: <detail>" of the
 *        first mismatch.
 * @return false if any profiled kernel is inconsistent (kernels without
 *         profiles are skipped).
 */
bool checkProfileConsistency(const rt::NetRun &run,
                             std::string *why = nullptr);

} // namespace tango::prof

#endif // TANGO_PROFILER_PROFILER_HH
