/**
 * @file
 * Quickstart: run one CifarNet inference *entirely on the simulated GPU*
 * and print the class probabilities plus the architectural statistics
 * the suite collects along the way.
 *
 * This is the smallest end-to-end use of the public API:
 *   1. build a network model (nn::models),
 *   2. generate its deterministic pre-trained weights (nn::initWeights),
 *   3. create a virtual GPU (sim::Gpu) and a Runtime,
 *   4. run with full simulation + functional checking,
 *   5. read statistics from the returned NetRun.
 */

#include <cstdio>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "profiler/profiler.hh"
#include "runtime/report.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

int
main()
{
    using namespace tango;

    // 1. The network: CifarNet trained (synthetically) for 9 traffic
    //    signals, as in the paper's Table I.  AnyModel is the uniform
    //    wrapper Runtime::run() accepts for both CNNs and RNNs.
    nn::AnyModel model(nn::models::buildCifarNet());
    nn::initWeights(model);

    // 2. A synthetic "speed limit 35" input image.
    const nn::Tensor image = nn::models::makeInputImage(3, 32, 32);

    // 3. The virtual GPU: the paper's GPGPU-Sim Pascal configuration.
    sim::Gpu gpu(sim::pascalGP102());
    rt::Runtime runtime(gpu);

    // 4. Full cycle-level simulation of every CTA, with the device
    //    outputs checked against the CPU reference as we go.
    rt::RunPolicy policy;
    policy.sim.fullSim = true;
    policy.functional = true;
    policy.check = true;
    policy.tolerance = 2e-4f;

    inform("simulating CifarNet on %s (%u SMs)...",
           gpu.config().name.c_str(), gpu.config().numSms);
    const rt::NetRun run = runtime.run(model, policy, {.image = &image});

    if (run.checkFailures != 0) {
        warn("%llu device/reference mismatches!",
             static_cast<unsigned long long>(run.checkFailures));
        return 1;
    }

    // 5a. The network's answer (softmax output of the last layer).
    const nn::Tensor probs = model.cnn().forward(image);
    std::printf("\nclass probabilities (9 traffic signals):\n");
    for (uint32_t c = 0; c < probs.size(); c++)
        std::printf("  class %u: %.4f\n", c, probs[c]);
    std::printf("predicted class: %u\n\n",
                static_cast<unsigned>(probs.argmax()));

    // 5b. Architectural statistics, exactly as the benches report them.
    rt::printRunSummary(std::cout, run);

    const prof::Series ops = prof::topN(prof::opBreakdown(run.totals), 8);
    rt::printSeries(std::cout, "top operations", ops, true);

    const prof::Series stalls = prof::stallBreakdown(run.totals);
    rt::printSeries(std::cout, "stall cycle breakdown", stalls, true);

    std::printf("quickstart: OK (device outputs matched the CPU "
                "reference)\n");
    return 0;
}
