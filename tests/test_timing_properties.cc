/**
 * @file
 * Timing-model property tests: invariants the performance model must
 * satisfy regardless of workload — monotonicities, conservation laws and
 * scaling identities.
 */

#include <gtest/gtest.h>

#include "kernels/builder.hh"
#include "kernels/kernels.hh"
#include "sim/gpu.hh"

namespace tango::sim {
namespace {

/** A conv launch whose footprint/intensity scale with the parameter. */
KernelLaunch
convLaunch(Gpu &gpu, uint32_t channels)
{
    kern::ConvDesc d;
    d.C = channels;
    d.H = d.W = 16;
    d.K = 4;
    d.R = d.S = 3;
    d.pad = 1;
    d.filterSrc = kern::ChannelSrc::GridX;
    d.pixelMap = kern::PixelMap::TileOrigin;
    d.grid = {4, 1, 1};
    d.block = {16, 16, 1};
    const uint32_t in = gpu.mem().allocate(4ull * channels * 16 * 16);
    const uint32_t w = gpu.mem().allocate(4ull * 4 * channels * 9);
    const uint32_t b = gpu.mem().allocate(16);
    const uint32_t out = gpu.mem().allocate(4ull * 4 * 16 * 16);
    return kern::makeConvLaunch(d, in, w, b, out);
}

TEST(TimingProps, MoreWorkTakesLongerMonotonically)
{
    SimPolicy p;
    p.fullSim = true;
    uint64_t prev = 0;
    for (uint32_t c : {1u, 2u, 4u, 8u, 16u}) {
        Gpu gpu(pascalGP102());
        const auto ks = gpu.launch(convLaunch(gpu, c), p);
        EXPECT_GT(ks.smCycles, prev) << "C=" << c;
        prev = ks.smCycles;
    }
}

TEST(TimingProps, InstructionCountIndependentOfTimingConfig)
{
    // The functional instruction stream must not depend on caches or
    // schedulers — only timing may change.
    SimPolicy p;
    p.fullSim = true;
    double baseline = 0.0;
    for (int variant = 0; variant < 4; variant++) {
        GpuConfig cfg = pascalGP102();
        if (variant == 1)
            cfg.l1dBytes = 0;
        if (variant == 2)
            cfg.scheduler = SchedPolicy::LRR;
        if (variant == 3) {
            cfg.l2Bytes = 256 * 1024;
            cfg.scheduler = SchedPolicy::TLV;
        }
        Gpu gpu(cfg);
        const auto ks = gpu.launch(convLaunch(gpu, 4), p);
        const double instr = ks.stats.sumPrefix("op.");
        if (variant == 0)
            baseline = instr;
        else
            EXPECT_DOUBLE_EQ(instr, baseline) << "variant " << variant;
    }
}

TEST(TimingProps, BiggerL1NeverSlowsReuseKernels)
{
    // A kernel that re-walks a small buffer must be monotone (not
    // strictly, but never significantly worse) in the L1 size.
    kern::Builder b("rewalk");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg base = b.shli(tx, 2);
    kern::Reg v = b.reg();
    kern::Reg sum = b.immF(0.0f);
    for (int pass = 0; pass < 6; pass++) {
        for (int i = 0; i < 32; i++) {
            b.ld(DType::F32, Space::Global, v, base, 256 + i * 512);
            b.emit3(Op::Add, DType::F32, sum, sum, v);
        }
    }
    auto prog = b.finish();

    SimPolicy p;
    p.fullSim = true;
    uint64_t prev = ~0ull;
    for (uint32_t kb : {0u, 16u, 64u, 256u}) {
        GpuConfig cfg = pascalGP102();
        cfg.l1dBytes = kb * 1024;
        Gpu gpu(cfg);
        gpu.mem().allocate(1 << 20);
        KernelLaunch l;
        l.program = prog;
        l.grid = {1, 1, 1};
        l.block = {64, 1, 1};
        const auto ks = gpu.launch(l, p);
        EXPECT_LE(ks.smCycles, prev + prev / 10) << kb << "KB";
        prev = ks.smCycles;
    }
}

TEST(TimingProps, StallsPlusIssuesCoverActiveCycles)
{
    // Conservation: per warp-slot, every resident non-issuing cycle is
    // charged exactly one stall; totals must be consistent with cycles.
    Gpu gpu(pascalGP102());
    SimPolicy p;
    p.fullSim = true;
    const auto ks = gpu.launch(convLaunch(gpu, 4), p);
    double stalls = 0.0;
    for (size_t i = 0; i < numStalls; i++) {
        stalls += ks.stats.get(std::string("stall.") +
                               stallName(static_cast<Stall>(i)));
    }
    const double issued = ks.stats.get("issued");
    // Each cycle, each of the resident warps either issues or stalls, so
    // issued + stalls >= cycles (and <= cycles * warps).
    EXPECT_GE(issued + stalls, static_cast<double>(ks.smCycles));
    EXPECT_LE(issued + stalls,
              static_cast<double>(ks.smCycles) *
                  gpu.config().maxWarpsPerSm);
}

TEST(TimingProps, EnergyScalesWithScaledStats)
{
    // Energy from sampled+scaled stats equals (approximately) the energy
    // of the full run for a homogeneous grid.
    const auto mk = [](Gpu &gpu) {
        kern::ConvDesc d;
        d.C = 2;
        d.H = d.W = 8;
        d.K = 32;
        d.R = d.S = 3;
        d.pad = 1;
        d.filterSrc = kern::ChannelSrc::GridX;
        d.pixelMap = kern::PixelMap::TileOrigin;
        d.grid = {32, 1, 1};
        d.block = {8, 8, 1};
        const uint32_t in = gpu.mem().allocate(4ull * 2 * 64);
        const uint32_t w = gpu.mem().allocate(4ull * 32 * 2 * 9);
        const uint32_t b = gpu.mem().allocate(4ull * 32);
        const uint32_t out = gpu.mem().allocate(4ull * 32 * 64);
        return kern::makeConvLaunch(d, in, w, b, out);
    };
    Gpu g1(pascalGP102());
    SimPolicy full;
    full.fullSim = true;
    full.maxResidentCtas = 4;
    const auto kf = g1.launch(mk(g1), full);

    Gpu g2(pascalGP102());
    SimPolicy sampled;
    sampled.maxResidentCtas = 4;
    sampled.maxSampledCtas = 8;
    const auto ks = g2.launch(mk(g2), sampled);

    EXPECT_NEAR(ks.energyJ, kf.energyJ, kf.energyJ * 0.3);
    EXPECT_NEAR(ks.stats.get("evt.rf_operand"),
                kf.stats.get("evt.rf_operand"),
                kf.stats.get("evt.rf_operand") * 0.02);
}

TEST(TimingProps, SlowerClockLongerTime)
{
    GpuConfig fast = pascalGP102();
    GpuConfig slow = pascalGP102();
    slow.coreClockGhz = fast.coreClockGhz / 2.0;
    SimPolicy p;
    p.fullSim = true;

    Gpu g1(fast);
    const auto k1 = g1.launch(convLaunch(g1, 4), p);
    Gpu g2(slow);
    const auto k2 = g2.launch(convLaunch(g2, 4), p);
    // Same cycle count, double the wall time.
    EXPECT_EQ(k1.smCycles, k2.smCycles);
    EXPECT_NEAR(k2.timeSec, 2.0 * k1.timeSec, k1.timeSec * 1e-9);
}

TEST(TimingProps, DeterministicAcrossRuns)
{
    SimPolicy p;
    p.fullSim = true;
    Gpu g1(pascalGP102());
    const auto a = g1.launch(convLaunch(g1, 3), p);
    Gpu g2(pascalGP102());
    const auto b = g2.launch(convLaunch(g2, 3), p);
    EXPECT_EQ(a.smCycles, b.smCycles);
    EXPECT_EQ(a.stats.get("issued"), b.stats.get("issued"));
    EXPECT_EQ(a.stats.get("mem.l2.misses"), b.stats.get("mem.l2.misses"));
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
}

} // namespace
} // namespace tango::sim
