/**
 * @file
 * Cross-module integration tests: every network runs end to end on the
 * virtual GPU and reproduces the paper's headline observations in
 * miniature (the benches reproduce them at full scale).
 */

#include <gtest/gtest.h>

#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "profiler/profiler.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using rt::RunPolicy;

rt::NetRun
benchRun(const std::string &net, sim::GpuConfig cfg = sim::pascalGP102())
{
    sim::Gpu gpu(std::move(cfg));
    return rt::runNetworkByName(gpu, net, rt::RunPolicy::named("bench"));
}

TEST(Integration, EveryNetworkRunsAndReportsSaneStats)
{
    for (const auto &name : nn::models::allNames()) {
        const rt::NetRun run = benchRun(name);
        EXPECT_GT(run.totalTimeSec, 0.0) << name;
        EXPECT_GT(run.totalEnergyJ, 0.0) << name;
        EXPECT_GT(run.peakPowerW, 10.0) << name;
        EXPECT_GT(run.totals.sumPrefix("op."), 1e5) << name;
        EXPECT_GT(run.deviceBytes, 0u) << name;
        // Stall fractions sum to ~1.
        double sum = 0.0;
        for (const auto &[k, v] : prof::stallBreakdown(run.totals))
            sum += v;
        EXPECT_NEAR(sum, 1.0, 1e-9) << name;
    }
}

TEST(Integration, Observation2_L1HelpsCnnsNotRnns)
{
    sim::GpuConfig noL1 = sim::pascalGP102();
    noL1.l1dBytes = 0;
    // AlexNet: clear speedup with L1.
    const double alexWith = benchRun("alexnet").totalTimeSec;
    const double alexWithout = benchRun("alexnet", noL1).totalTimeSec;
    EXPECT_LT(alexWith, alexWithout * 0.95);
    // GRU: negligible effect.
    const double gruWith = benchRun("gru").totalTimeSec;
    const double gruWithout = benchRun("gru", noL1).totalTimeSec;
    EXPECT_NEAR(gruWith / gruWithout, 1.0, 0.15);
}

TEST(Integration, Observation3_BiggerLayersHigherPeakPower)
{
    const double cifar = benchRun("cifarnet").peakPowerW;
    const double alex = benchRun("alexnet").peakPowerW;
    const double gru = benchRun("gru").peakPowerW;
    EXPECT_GT(alex, 2.0 * cifar);
    EXPECT_LE(gru, cifar * 1.1);
}

TEST(Integration, Observation7_TopOpsDominate)
{
    std::vector<const rt::NetRun *> ptrs;
    std::vector<rt::NetRun> runs;
    runs.reserve(3);
    for (const char *n : {"gru", "cifarnet", "alexnet"})
        runs.push_back(benchRun(n));
    for (const auto &r : runs)
        ptrs.push_back(&r);
    const prof::Series ops =
        prof::opBreakdown(prof::mergeTotals(ptrs));
    double top4 = 0.0, top10 = 0.0;
    for (size_t i = 0; i < ops.size(); i++) {
        if (i < 4)
            top4 += ops[i].second;
        if (i < 10)
            top10 += ops[i].second;
    }
    EXPECT_GT(top4, 0.5);
    EXPECT_GT(top10, 0.9);
}

TEST(Integration, Observation8_IntegerHeavyDespiteF32Data)
{
    const rt::NetRun run = benchRun("resnet");
    const prof::Series d = prof::dtypeBreakdown(run.totals);
    double f32 = 0.0, ints = 0.0;
    for (const auto &[name, frac] : d) {
        if (name == "f32")
            f32 = frac;
        else
            ints += frac;
    }
    EXPECT_LT(f32, 0.5);
    EXPECT_GT(ints, 0.5);
}

TEST(Integration, Observation11_ConvLocalityBeatsFc)
{
    // Locality studies need many co-resident CTAs (the "mem" policy) so
    // the cross-CTA input reuse of convolution reaches the shared L2.
    sim::GpuConfig noL1 = sim::pascalGP102();
    noL1.l1dBytes = 0;
    sim::Gpu gpu(noL1);
    const rt::NetRun run =
        rt::runNetworkByName(gpu, "alexnet", rt::RunPolicy::named("mem"));
    const double convAcc = run.figTypeStat("Conv", "mem.l2.accesses");
    const double convMiss = run.figTypeStat("Conv", "mem.l2.misses");
    const double fcAcc = run.figTypeStat("FC", "mem.l2.accesses");
    const double fcMiss = run.figTypeStat("FC", "mem.l2.misses");
    ASSERT_GT(convAcc, 0.0);
    ASSERT_GT(fcAcc, 0.0);
    EXPECT_LT(convMiss / convAcc, fcMiss / fcAcc);
}

TEST(Integration, Gk210SlowerThanGp102)
{
    // Same workload, older/slower machine: more wall time.
    const double pascal = benchRun("cifarnet").totalTimeSec;
    const double kepler =
        benchRun("cifarnet", sim::keplerGK210()).totalTimeSec;
    EXPECT_GT(kepler, pascal);
}

TEST(Integration, Tx1SlowerThanServerParts)
{
    const double tx1 =
        benchRun("squeezenet", sim::maxwellTX1()).totalTimeSec;
    const double gp102 = benchRun("squeezenet").totalTimeSec;
    EXPECT_GT(tx1, gp102 * 2.0);
}

TEST(Integration, SchedulerChoiceChangesTiming)
{
    sim::GpuConfig lrr = sim::pascalGP102();
    lrr.scheduler = sim::SchedPolicy::LRR;
    const double gto = benchRun("alexnet").totalTimeSec;
    const double lrrT = benchRun("alexnet", lrr).totalTimeSec;
    EXPECT_NE(gto, lrrT);
    EXPECT_NEAR(lrrT / gto, 1.0, 0.35);   // same ballpark
}

TEST(Integration, RnnFootprintTiny)
{
    EXPECT_LT(benchRun("gru").deviceBytes, 500u * 1024);
    EXPECT_LT(benchRun("lstm").deviceBytes, 500u * 1024);
}

} // namespace
} // namespace tango
