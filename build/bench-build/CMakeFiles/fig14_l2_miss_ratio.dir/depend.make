# Empty dependencies file for fig14_l2_miss_ratio.
# This may be replaced when dependencies are built.
