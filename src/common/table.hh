/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harness to print the
 * paper's figure/table series in a uniform format.
 */

#ifndef TANGO_COMMON_TABLE_HH
#define TANGO_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tango {

/** A simple column-aligned ASCII table with an optional title. */
class Table
{
  public:
    /** @param title heading printed above the table. */
    explicit Table(std::string title = "");

    /** Set the column headers; defines the column count. */
    void header(std::vector<std::string> cols);

    /** Append one row (cells beyond the header width are dropped). */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec digits after the point. */
    static std::string num(double v, int prec = 3);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string pct(double fraction, int prec = 1);

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma separated, title as comment). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tango

#endif // TANGO_COMMON_TABLE_HH
