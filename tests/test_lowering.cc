/**
 * @file
 * Lowering tests: buffer allocation, concat aliasing, kernel counts and
 * Table III geometry propagation, weight-byte accounting, RNN lowering.
 */

#include <gtest/gtest.h>

#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/lowering.hh"
#include "sim/memory.hh"

namespace tango::rt {
namespace {

using nn::models::buildAlexNet;
using nn::models::buildCifarNet;
using nn::models::buildSqueezeNet;

TEST(Lowering, CifarNetKernelCount)
{
    sim::DeviceMemory mem(1 << 28);
    const nn::Network net = buildCifarNet();
    const LoweredNet low = lower(net, mem, false);
    // 3 conv + 3 pool + 2 fc + softmax = 9 kernels (no tiling).
    EXPECT_EQ(low.kernels.size(), 9u);
}

TEST(Lowering, AlexNetTilingAndFilterSplits)
{
    sim::DeviceMemory mem(1 << 30);
    const nn::Network net = buildAlexNet();
    const LoweredNet low = lower(net, mem, false);
    // conv1: 4 tile kernels; norm1: 4 tile kernels; conv2: 2 filter
    // partitions; conv4: 2; conv5: 2; the rest single kernels.
    size_t conv1 = 0, norm1 = 0, conv2 = 0;
    for (const auto &k : low.kernels) {
        const std::string &n = k.launch.program->name;
        conv1 += n.rfind("alexnet.conv1", 0) == 0;
        norm1 += n.rfind("alexnet.norm1", 0) == 0;
        conv2 += n.rfind("alexnet.conv2", 0) == 0;
    }
    EXPECT_EQ(conv1, 4u);
    EXPECT_EQ(norm1, 4u);
    EXPECT_EQ(conv2, 2u);
    // Table III: conv1 kernels have 96 blocks of 32x32 / 32x23 / ...
    for (const auto &k : low.kernels) {
        if (k.launch.program->name.rfind("alexnet.conv1", 0) == 0) {
            EXPECT_EQ(k.launch.grid.x, 96u);
            EXPECT_TRUE(k.launch.block.x == 32 || k.launch.block.x == 23);
        }
    }
}

TEST(Lowering, SqueezeNetConcatAliasing)
{
    sim::DeviceMemory mem(1 << 30);
    const nn::Network net = buildSqueezeNet();
    const LoweredNet low = lower(net, mem, false);
    const auto &ls = net.layers();
    for (size_t i = 0; i < ls.size(); i++) {
        if (ls[i].concatInto < 0)
            continue;
        const size_t target = static_cast<size_t>(ls[i].concatInto);
        // The member's output lands inside the concat buffer.
        EXPECT_GE(low.layerOut[i], low.layerOut[target]);
        EXPECT_LT(low.layerOut[i],
                  low.layerOut[target] + 4 * ls[target].outputSize());
        // Offset is exactly channelOffset * plane.
        EXPECT_EQ(low.layerOut[i] - low.layerOut[target],
                  4u * ls[i].outChannelOffset * ls[target].P *
                      ls[target].Q);
    }
}

TEST(Lowering, WeightBytesAnalytic)
{
    nn::Layer conv;
    conv.kind = nn::LayerKind::Conv;
    conv.K = 8;
    conv.C = 3;
    conv.R = conv.S = 5;
    conv.bias = true;
    EXPECT_EQ(layerWeightBytes(conv), 4u * (8 * 3 * 25) + 4u * 8);
    conv.bias = false;
    EXPECT_EQ(layerWeightBytes(conv), 4u * (8 * 3 * 25));

    nn::Layer fc;
    fc.kind = nn::LayerKind::FC;
    fc.inN = 10;
    fc.outN = 4;
    fc.bias = true;
    EXPECT_EQ(layerWeightBytes(fc), 4u * 40 + 16u);

    nn::Layer relu;
    relu.kind = nn::LayerKind::ReLU;
    EXPECT_EQ(layerWeightBytes(relu), 0u);
}

TEST(Lowering, FootprintScalesWithModel)
{
    sim::DeviceMemory m1(2ULL << 30), m2(2ULL << 30);
    const LoweredNet cifar = lower(buildCifarNet(), m1, false);
    const LoweredNet alex = lower(buildAlexNet(), m2, false);
    EXPECT_GT(alex.deviceBytes, 100 * cifar.deviceBytes);
}

TEST(Lowering, LoopChannelSamplingShrinksConstK)
{
    sim::DeviceMemory mem(1 << 28);
    const nn::Network net = buildCifarNet();
    const LoweredNet low = lower(net, mem, false, /*max_loop_channels=*/8);
    // CifarNet convs loop over K in-thread; conv1 has K=32 -> scale 4.
    bool found = false;
    for (const auto &k : low.kernels) {
        if (k.launch.program->name == "cifarnet.conv1") {
            found = true;
            EXPECT_DOUBLE_EQ(k.workScale, 4.0);
            uint32_t constK = 0;
            std::memcpy(&constK, k.launch.constData.data() + 12, 4);
            EXPECT_EQ(constK, 8u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Lowering, RnnPingPongBuffers)
{
    sim::DeviceMemory mem(1 << 24);
    nn::RnnModel gru = nn::models::buildGru();
    const LoweredRnn low = lowerRnn(gru, mem, false);
    // seqLen cell kernels + 1 readout.
    EXPECT_EQ(low.kernels.size(), gru.seqLen + 1u);
    EXPECT_NE(low.hAddr[0], low.hAddr[1]);
    // Step t reads h[t&1] and writes h[(t+1)&1].
    EXPECT_EQ(low.kernels[0].launch.params[1], low.hAddr[0]);
    EXPECT_EQ(low.kernels[0].launch.params[4], low.hAddr[1]);
    EXPECT_EQ(low.kernels[1].launch.params[1], low.hAddr[1]);
    EXPECT_EQ(low.kernels[1].launch.params[4], low.hAddr[0]);
    // The readout consumes the final hidden state.
    EXPECT_EQ(low.finalH, low.hAddr[gru.seqLen & 1]);
    EXPECT_EQ(low.kernels.back().launch.params[0], low.finalH);
}

TEST(Lowering, UploadRequiresWeights)
{
    sim::DeviceMemory mem(1 << 28);
    nn::Network net = buildCifarNet();
    nn::initWeights(net);
    const LoweredNet low = lower(net, mem, true);
    // Uploaded conv1 weights should be readable back from the device.
    // (Find the conv1 kernel's weight pointer: params[1].)
    for (const auto &k : low.kernels) {
        if (k.launch.program->name == "cifarnet.conv1") {
            const uint32_t w = k.launch.params[1];
            EXPECT_EQ(mem.read<float>(w), net.layers()[0].weights[0]);
        }
    }
}

} // namespace
} // namespace tango::rt
