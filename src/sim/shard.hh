/**
 * @file
 * Intra-run CTA sharding: partition one kernel launch's sampled CTAs into
 * K deterministic shards and reduce the per-shard results in fixed shard
 * order.
 *
 * The shard *plan* is a pure function of (sampled CTA count, resident CTAs
 * per wave, requested shard count): contiguous, wave-aligned index ranges
 * into the sampled CTA list, never more shards than waves.  Each shard is
 * simulated on its own SmCore with a private L2/DRAM model instance
 * (sim/gpu.cc), so shards share no mutable µ-arch state and the per-shard
 * results are independent of thread scheduling.  The *reduction* here is
 * the other half of the determinism contract: every merge is performed in
 * shard order over raw (unscaled) counters — integer-valued doubles and
 * uint64 arrays, whose addition is exact and associative — so the reduced
 * result is a pure function of the plan, not of which shard finished
 * first.  tests/test_parallel_determinism.cc pins the end-to-end property;
 * the reduction helpers are exposed here so the property tests can drive
 * them with synthetic fragments.
 */

#ifndef TANGO_SIM_SHARD_HH
#define TANGO_SIM_SHARD_HH

#include <cstdint>
#include <vector>

#include "sim/core.hh"
#include "sim/profile.hh"

namespace tango::sim {

/** One shard: the half-open range [begin, end) of *positions* in the
 *  sampled CTA id list (not raw CTA ids), plus the CTA residency its
 *  SmCore simulates with. */
struct CtaShard
{
    uint64_t begin = 0;
    uint64_t end = 0;
    /** Concurrent CTA slots for this shard's core: the launch residency
     *  in the wave regime, the shard's own CTA count in the intra-wave
     *  regime (the slice is then exactly one private wave). */
    uint32_t resident = 1;

    uint64_t count() const { return end - begin; }
    bool operator==(const CtaShard &o) const = default;
};

/** Upper bound on the shard count (sanity valve; Event::core is a u8 and
 *  nobody has 64 spare cores per run). */
inline constexpr uint32_t kMaxShards = 64;

/** Read TANGO_SIM_SHARDS (default 1; 0 is treated as 1).  fatal()s on
 *  malformed values or anything above kMaxShards. */
uint32_t envSimShards();

/** @return the shard count a policy asks for: SimPolicy::shards when
 *  nonzero, else the TANGO_SIM_SHARDS environment knob.  This is a pure
 *  function of policy + environment — never of runtime thread
 *  availability — so a run's shard plan (and therefore its statistics)
 *  cannot depend on machine load. */
uint32_t effectiveShards(const SimPolicy &policy);

/**
 * Plan the shards for one launch: split @p sampled CTA positions into at
 * most @p k contiguous ranges.  Two regimes, picked deterministically
 * from the geometry alone:
 *
 *  - *Wave regime* (multiple waves, waves >= 2): boundaries fall on
 *    multiples of @p resident (wave boundaries — a shard simulates whole
 *    waves with the launch residency, so its CTA slot reuse matches the
 *    sequential simulation of those waves).  Waves are distributed as
 *    evenly as possible, earlier shards taking the remainder; @p k is
 *    clamped to the wave count.
 *
 *  - *Intra-wave regime* (a single wave — the bench/mem/stall policies
 *    sample exactly one resident wave): the wave's CTAs are split into
 *    at most @p k contiguous even ranges, and each shard simulates its
 *    slice as one whole wave of its own core (resident = slice size).
 *    This models what the hardware actually does with a wave — spread
 *    its CTAs across SMs — where the sequential path time-multiplexes
 *    them onto one SM; the per-shard cycle counts sum to roughly the
 *    sequential count, which is exactly how foldShardStats reduces them.
 *
 * K=1 (or a single sampled CTA) always yields one shard with the launch
 * residency — byte-identical to the sequential path.
 */
std::vector<CtaShard> planCtaShards(uint64_t sampled, uint32_t resident,
                                    uint32_t k);

/**
 * Fold one shard's raw KernelStats fragment into the accumulator, in
 * shard order (@p acc must hold the preceding shards' fold; initialize it
 * with the first shard's fragment).  Raw counters are integer-valued
 * doubles well below 2^53, so the StatSet addition is exact and
 * associative; smCycles add (the reduced timeline models the shards'
 * waves back-to-back, exactly where the sequential simulation would run
 * them); peakWindowDynW takes the max (a peak over disjoint windows).
 * Scaling (CTA x warp extrapolation) is applied once, after the fold.
 */
void foldShardStats(KernelStats &acc, const KernelStats &frag);

/** Elementwise-add @p frag's per-PC counters into @p acc (same program,
 *  so identical array shapes; fatal() on a shape mismatch). */
void foldShardProfile(KernelProfile &acc, const KernelProfile &frag);

/**
 * Combine per-shard Step-stream digest vectors into the single launch
 * digest.  Shard ranges are contiguous in launch position, so the
 * concatenation in shard order *is* the per-(CTA, warp) launch-position
 * digest array of the whole sample; folding it with digest::mix yields
 * exactly what a sequential SmCore::run — and runFunctionalOnly(), which
 * the memo replay path compares against — computes.
 */
uint64_t combineStreamDigests(
    const std::vector<std::vector<uint64_t>> &per_shard);

} // namespace tango::sim

#endif // TANGO_SIM_SHARD_HH
