file(REMOVE_RECURSE
  "CMakeFiles/test_quantization.dir/test_quantization.cc.o"
  "CMakeFiles/test_quantization.dir/test_quantization.cc.o.d"
  "test_quantization"
  "test_quantization.pdb"
  "test_quantization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
